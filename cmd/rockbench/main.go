// Command rockbench regenerates the tables and figures of the paper's
// evaluation (and the DESIGN.md ablations) on the synthetic stand-in
// datasets. Run with no arguments for the full suite, or name experiment
// ids (E1..E8, A1..A5).
//
//	rockbench              # everything, paper-scale
//	rockbench -quick E6    # shrunken timing sweep
//	rockbench -list
//	rockbench -links       # serial-vs-parallel link sweep → BENCH_links.json
//	rockbench -merge       # map-vs-arena agglomeration sweep → BENCH_merge.json
//	rockbench -label       # pairwise-vs-indexed labeling sweep → BENCH_label.json
//	rockbench -assign      # frozen-model serving sweep → BENCH_assign.json
//	rockbench -serve       # HTTP serving sweep → BENCH_serve.json
//	rockbench -neighbors   # exact-vs-LSH neighbor sweep → BENCH_neighbors.json
//	rockbench -stream      # streaming ingestion sweep → BENCH_stream.json
//	rockbench -zoo         # algorithm-zoo shootout → BENCH_zoo.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/rockclust/rock/internal/expt"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "shrink dataset sizes and sweeps")
		seed   = flag.Int64("seed", 0, "base seed for all generators")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		out    = flag.String("out", "", "write reports to this file instead of stdout")
		links  = flag.Bool("links", false, "run the serial-vs-parallel link builder sweep and write BENCH_links.json (or -out)")
		merge  = flag.Bool("merge", false, "run the agglomeration engine sweep (map vs arena vs batched-parallel) and write BENCH_merge.json (or -out)")
		label  = flag.Bool("label", false, "run the labeling sweep (pairwise reference vs indexed vs sharded) and write BENCH_label.json (or -out)")
		assign = flag.Bool("assign", false, "run the frozen-model serving sweep (pairwise reference vs Model.Assign/AssignBatch + save/load cost) and write BENCH_assign.json (or -out)")
		srv    = flag.Bool("serve", false, "run the HTTP serving sweep (concurrent load against an in-process rockserve stack) and write BENCH_serve.json (or -out)")
		nbrs   = flag.Bool("neighbors", false, "run the neighbor-phase sweep (exact index vs prototype LSH vs sort-based LSH pipeline) and write BENCH_neighbors.json (or -out)")
		strm   = flag.Bool("stream", false, "run the streaming-ingestion sweep (sustained ingest through a regime change with background refresh) and write BENCH_stream.json (or -out)")
		zoos   = flag.Bool("zoo", false, "run the algorithm-zoo shootout (every registered engine vs ROCK on the labeled/votes/mushroom workloads) and write BENCH_zoo.json (or -out)")
		long   = flag.Bool("long", false, "with -neighbors: add the million-point rows (10⁶ LSH neighbor run + chunked clustering end-to-end); minutes of runtime")
	)
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, id := range expt.IDs() {
			fmt.Printf("%-4s %s\n", id, expt.Title(id))
		}
		return
	}

	sweepOpts := expt.Options{Quick: *quick, Seed: *seed, Long: *long}
	if *links {
		runSweep(*out, "BENCH_links.json", sweepOpts, expt.BenchLinks)
		return
	}
	if *merge {
		runSweep(*out, "BENCH_merge.json", sweepOpts, expt.BenchMerge)
		return
	}
	if *label {
		runSweep(*out, "BENCH_label.json", sweepOpts, expt.BenchLabel)
		return
	}
	if *assign {
		runSweep(*out, "BENCH_assign.json", sweepOpts, expt.BenchAssign)
		return
	}
	if *srv {
		runSweep(*out, "BENCH_serve.json", sweepOpts, expt.BenchServe)
		return
	}
	if *nbrs {
		runSweep(*out, "BENCH_neighbors.json", sweepOpts, expt.BenchNeighbors)
		return
	}
	if *strm {
		runSweep(*out, "BENCH_stream.json", sweepOpts, expt.BenchStream)
		return
	}
	if *zoos {
		runSweep(*out, "BENCH_zoo.json", sweepOpts, expt.BenchZoo)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rockbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	opts := expt.Options{Quick: *quick, Seed: *seed}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = expt.IDs()
	}
	for _, id := range ids {
		if err := expt.Run(id, w, opts); err != nil {
			fmt.Fprintln(os.Stderr, "rockbench:", err)
			os.Exit(1)
		}
	}
}

// usage explains what each flag regenerates — in particular which
// BENCH_*.json perf record belongs to which sweep — instead of the bare
// flag dump flag.PrintDefaults would produce.
func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintf(w, `Usage: rockbench [flags] [experiment ids...]

Regenerates the tables and figures of the paper's evaluation (E1..E8) and
the repo's ablations (A1..A6) on the synthetic stand-in datasets, plus
the performance-trajectory records — one bench mode per record:

  -links   serial-vs-parallel link builder sweep   → BENCH_links.json
  -merge   agglomeration engine sweep              → BENCH_merge.json
           (map reference vs serial arena vs parallel batched rounds)
  -label   labeling-phase sweep                    → BENCH_label.json
           (pairwise reference vs inverted-index vs sharded workers)
  -assign  frozen-model serving sweep              → BENCH_assign.json
           (pairwise reference vs Model.Assign/AssignBatch, plus the
           model file's size and save/load cost)
  -serve   HTTP serving sweep                      → BENCH_serve.json
           (concurrent clients against an in-process rockserve stack:
           client-side p50/p95/p99 latency, throughput, and batching
           effectiveness at two worker and two concurrency settings)
  -neighbors  neighbor-phase sweep                 → BENCH_neighbors.json
           (exact inverted index vs prototype map-based LSH vs the
           sort-based sharded LSH pipeline on hub-heavy baskets, with
           measured edge recall; add -long for the million-point rows
           including an end-to-end chunked clustering run)
  -stream  streaming-ingestion sweep               → BENCH_stream.json
           (sustained Ingest throughput through a regime change: stable,
           drift-until-refreshed, and post-refresh phases, plus the
           refresh ledger — detection delay, re-cluster cost, the atomic
           swap pause, post-swap admission accuracy, and the outlier
           conservation check points_lost=0 — at two worker settings,
           each in both refresh modes: full re-cluster of the retained
           sample vs incremental re-cluster seeded with the serving
           model's clusters)
  -zoo     algorithm-zoo shootout                  → BENCH_zoo.json
           (every registered engine — COOLCAT, Squeezer, k-histograms,
           k-modes, hierarchical, STIRR, and ROCK through its adapter —
           scored purity/NMI/ARI against ground truth, with wall-clock
           per Fit, on the labeled, votes and mushroom workloads)

With no flags and no ids, every experiment runs at paper scale to stdout.

Flags:
  -quick   shrink dataset sizes and sweeps (recorded in the JSON)
  -long    unlock the 10⁶-point rows of -neighbors (minutes of runtime)
  -seed N  base seed for all generators (default 0)
  -list    list experiment ids and exit
  -out F   write reports (or the named sweep) to F instead of the default

Caveat for the BENCH_*.json sweeps: parallel speedups are only visible
when GOMAXPROCS exceeds one. On a single-CPU host the worker goroutines
serialize, so the recorded "parallel" columns show only the algorithmic
differences (array counting vs map inserts for links; round-level heap
repair for merges; inverted-index counting vs pairwise similarity for
labeling and model serving). Regenerate on a multi-core host to capture
the scaling curve; the current GOMAXPROCS is recorded in each file.
`)
}

// runSweep writes one JSON perf sweep to out (or the default path).
func runSweep(out, def string, opts expt.Options, sweep func(w io.Writer, opts expt.Options) error) {
	path := out
	if path == "" {
		path = def
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rockbench:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := sweep(f, opts); err != nil {
		fmt.Fprintln(os.Stderr, "rockbench:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rockbench: wrote", path)
}
