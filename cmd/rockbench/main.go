// Command rockbench regenerates the tables and figures of the paper's
// evaluation (and the DESIGN.md ablations) on the synthetic stand-in
// datasets. Run with no arguments for the full suite, or name experiment
// ids (E1..E8, A1..A5).
//
//	rockbench              # everything, paper-scale
//	rockbench -quick E6    # shrunken timing sweep
//	rockbench -list
//	rockbench -links       # serial-vs-parallel link sweep → BENCH_links.json
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/rockclust/rock/internal/expt"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "shrink dataset sizes and sweeps")
		seed  = flag.Int64("seed", 0, "base seed for all generators")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		out   = flag.String("out", "", "write reports to this file instead of stdout")
		links = flag.Bool("links", false, "run the serial-vs-parallel link builder sweep and write BENCH_links.json (or -out)")
	)
	flag.Parse()

	if *list {
		for _, id := range expt.IDs() {
			fmt.Printf("%-4s %s\n", id, expt.Title(id))
		}
		return
	}

	if *links {
		path := *out
		if path == "" {
			path = "BENCH_links.json"
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rockbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := expt.BenchLinks(f, expt.Options{Quick: *quick, Seed: *seed}); err != nil {
			fmt.Fprintln(os.Stderr, "rockbench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "rockbench: wrote", path)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rockbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	opts := expt.Options{Quick: *quick, Seed: *seed}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = expt.IDs()
	}
	for _, id := range ids {
		if err := expt.Run(id, w, opts); err != nil {
			fmt.Fprintln(os.Stderr, "rockbench:", err)
			os.Exit(1)
		}
	}
}
