// Command rockserve serves assignment queries over HTTP from a frozen
// rock model file — the serving half of the paper's scaling story: the
// clusterer runs once over a Chernoff-sized sample, rockserve answers
// "which cluster is this basket?" for everyone else.
//
//	rockserve -model shop.rock -addr :8080
//
// Endpoints:
//
//	POST /assign    {"queries": [["milk","bread"], ...]} or {"ids": [[0,4,7], ...]}
//	GET  /healthz   liveness + serving generation
//	GET  /stats     traffic counters, batching effectiveness, latency quantiles
//	POST /-/reload  hot-swap the model, optionally {"path": "other.rock"}
//
// SIGHUP also reloads from -model: retrain offline, overwrite the file,
// `kill -HUP`, and the server swaps generations without dropping a
// request. SIGINT/SIGTERM shut down gracefully, draining in-flight
// requests up to -drain-timeout.
//
// With -stream the server becomes a streaming ingestion daemon: two more
// endpoints appear and the model maintains itself.
//
//	POST /ingest    admit arriving points (same body shape as /assign);
//	                outliers are parked and tracked for drift
//	GET  /streamz   admission counters, drift estimate, refresh ledger
//
// When the windowed outlier rate crosses -refresh-threshold, the daemon
// re-clusters in the background and atomically swaps the refreshed model
// in — no ingest or assign request is dropped across the swap, and no
// outlier parked while the refresh runs is discarded (survivors re-admit
// through the new generation). By default the refresh is incremental:
// the serving model's clusters seed the re-cluster and only the parked
// outliers are new input; -incremental=false re-clusters the retained
// sample plus the outliers from scratch instead. In stream mode the daemon
// owns the model lifecycle, so SIGHUP reloads are disabled (an externally
// loaded model would not share the streamer's item id space).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/serve"
	"github.com/rockclust/rock/internal/stream"
)

func main() {
	var (
		modelPath    = flag.String("model", "", "frozen model file to serve (required)")
		addr         = flag.String("addr", ":8080", "listen address")
		maxBatch     = flag.Int("max-batch", 0, "flush a coalesced batch at this many queries (0 = default 256)")
		flushEvery   = flag.Duration("flush", 0, "flush a coalesced batch this long after it opens (0 = default 1ms)")
		workers      = flag.Int("workers", 0, "AssignBatch workers per flush (0 = GOMAXPROCS)")
		drainTimeout = flag.Duration("drain-timeout", 0, "how long reload and shutdown wait for in-flight requests (0 = default 30s)")
		maxBody      = flag.Int64("max-body-bytes", 0, "reject POST bodies larger than this with 413 (0 = default 8MiB; negative disables)")

		streamMode  = flag.Bool("stream", false, "streaming ingestion mode: serve POST /ingest + GET /streamz and refresh the model on drift")
		refresh     = flag.Float64("refresh-threshold", 0, "outlier rate that triggers a background re-cluster (0 = default 0.5; >1 disables)")
		window      = flag.Int("drift-window", 0, "effective width in points of the outlier-rate estimate (0 = default 512)")
		outBuf      = flag.Int("outlier-buffer", 0, "max parked outliers retained for the next refresh (0 = default 4096)")
		retain      = flag.Int("retain", 0, "max admitted points retained as re-clustering context (0 = default 4096)")
		incremental = flag.Bool("incremental", true, "seed drift refreshes with the serving model's clusters instead of re-clustering the retained sample from scratch (falls back to a full re-cluster if the seeded run fails)")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "rockserve: -model is required")
		flag.Usage()
		os.Exit(2)
	}

	m, err := loadModel(*modelPath)
	if err != nil {
		log.Fatalf("rockserve: %v", err)
	}
	cfg := serve.Config{
		ModelPath:    *modelPath,
		MaxBatch:     *maxBatch,
		FlushEvery:   *flushEvery,
		Workers:      *workers,
		DrainTimeout: *drainTimeout,
		MaxBodyBytes: *maxBody,
	}

	var (
		handler http.Handler
		s       *serve.Server
		st      *stream.Streamer
	)
	if *streamMode {
		st, err = stream.New(m, stream.Config{
			Serve:            cfg,
			RefreshThreshold: *refresh,
			Window:           *window,
			OutlierBuffer:    *outBuf,
			RetainSample:     *retain,
			Incremental:      *incremental,
			OnSwap: func(gen uint64, m *core.Model) {
				if gen > 1 {
					log.Printf("rockserve: drift refresh swapped in generation %d (%s)", gen, m)
				}
			},
		})
		if err != nil {
			log.Fatalf("rockserve: %v", err)
		}
		s = st.Server()
		handler = st.Handler()
		mode := "incremental"
		if !*incremental {
			mode = "full"
		}
		log.Printf("rockserve: streaming %s (generation 1, %s refresh) on %s", m, mode, *addr)
	} else {
		s = serve.New(m, cfg)
		handler = s.Handler()
		log.Printf("rockserve: serving %s (generation 1) on %s", m, *addr)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	// SIGHUP hot-swaps the model from -model; a failed load logs and keeps
	// the current generation serving. In stream mode the streamer owns the
	// model lifecycle, so SIGHUP only logs.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if *streamMode {
				log.Printf("rockserve: ignoring SIGHUP in -stream mode; the streamer refreshes its own model (generation %d)", s.Generation())
				continue
			}
			gen, drained, err := s.Reload(*modelPath)
			if err != nil {
				log.Printf("rockserve: SIGHUP reload failed, still serving generation %d: %v", s.Generation(), err)
				continue
			}
			log.Printf("rockserve: SIGHUP reloaded %s → generation %d (drained=%v)", *modelPath, gen, drained)
		}
	}()

	// SIGINT/SIGTERM drain and exit.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		timeout := cfg.DrainTimeout
		if timeout <= 0 {
			timeout = 30 * time.Second
		}
		log.Printf("rockserve: %v, draining for up to %v", sig, timeout)
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("rockserve: shutdown: %v", err)
		}
	}()

	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("rockserve: %v", err)
	}
	<-done
	if st != nil {
		st.Quiesce() // join any in-flight background refresh before reporting
		ss := st.Stats()
		log.Printf("rockserve: ingested %d points (%d assigned, %d outliers), %d refreshes (%d failed), final generation %d",
			ss.Seen, ss.Assigned, ss.Outliers, ss.Refreshes, ss.FailedRefreshes, ss.Generation)
	}
	sst := s.Stats()
	log.Printf("rockserve: served %d requests (%d queries, %d batches) over %.0fs",
		sst.Requests, sst.Queries, sst.Batches, sst.UptimeSec)
}

// loadModel opens and validates a frozen model file.
func loadModel(path string) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadModel(f)
}
