// Command rockserve serves assignment queries over HTTP from a frozen
// rock model file — the serving half of the paper's scaling story: the
// clusterer runs once over a Chernoff-sized sample, rockserve answers
// "which cluster is this basket?" for everyone else.
//
//	rockserve -model shop.rock -addr :8080
//
// Endpoints:
//
//	POST /assign    {"queries": [["milk","bread"], ...]} or {"ids": [[0,4,7], ...]}
//	GET  /healthz   liveness + serving generation
//	GET  /stats     traffic counters, batching effectiveness, latency quantiles
//	POST /-/reload  hot-swap the model, optionally {"path": "other.rock"}
//
// SIGHUP also reloads from -model: retrain offline, overwrite the file,
// `kill -HUP`, and the server swaps generations without dropping a
// request. SIGINT/SIGTERM shut down gracefully, draining in-flight
// requests up to -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/serve"
)

func main() {
	var (
		modelPath    = flag.String("model", "", "frozen model file to serve (required)")
		addr         = flag.String("addr", ":8080", "listen address")
		maxBatch     = flag.Int("max-batch", 0, "flush a coalesced batch at this many queries (0 = default 256)")
		flushEvery   = flag.Duration("flush", 0, "flush a coalesced batch this long after it opens (0 = default 1ms)")
		workers      = flag.Int("workers", 0, "AssignBatch workers per flush (0 = GOMAXPROCS)")
		drainTimeout = flag.Duration("drain-timeout", 0, "how long reload and shutdown wait for in-flight requests (0 = default 30s)")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "rockserve: -model is required")
		flag.Usage()
		os.Exit(2)
	}

	m, err := loadModel(*modelPath)
	if err != nil {
		log.Fatalf("rockserve: %v", err)
	}
	cfg := serve.Config{
		ModelPath:    *modelPath,
		MaxBatch:     *maxBatch,
		FlushEvery:   *flushEvery,
		Workers:      *workers,
		DrainTimeout: *drainTimeout,
	}
	s := serve.New(m, cfg)
	log.Printf("rockserve: serving %s (generation 1) on %s", m, *addr)

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	// SIGHUP hot-swaps the model from -model; a failed load logs and keeps
	// the current generation serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			gen, drained, err := s.Reload(*modelPath)
			if err != nil {
				log.Printf("rockserve: SIGHUP reload failed, still serving generation %d: %v", s.Generation(), err)
				continue
			}
			log.Printf("rockserve: SIGHUP reloaded %s → generation %d (drained=%v)", *modelPath, gen, drained)
		}
	}()

	// SIGINT/SIGTERM drain and exit.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		timeout := cfg.DrainTimeout
		if timeout <= 0 {
			timeout = 30 * time.Second
		}
		log.Printf("rockserve: %v, draining for up to %v", sig, timeout)
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("rockserve: shutdown: %v", err)
		}
	}()

	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("rockserve: %v", err)
	}
	<-done
	st := s.Stats()
	log.Printf("rockserve: served %d requests (%d queries, %d batches) over %.0fs",
		st.Requests, st.Queries, st.Batches, st.UptimeSec)
}

// loadModel opens and validates a frozen model file.
func loadModel(path string) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadModel(f)
}
