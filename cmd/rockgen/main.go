// Command rockgen emits the synthetic datasets used by the reproduction:
// the votes, mushroom and funds stand-ins, market-basket streams, and
// generic labeled categorical data. Output is CSV (record datasets) or
// the basket text format.
//
//	rockgen -kind votes > votes.csv
//	rockgen -kind basket -n 5000 -clusters 10 -format basket > baskets.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/rockclust/rock"
)

func main() {
	var (
		kind     = flag.String("kind", "votes", "dataset: votes, mushroom, funds, basket, labeled")
		n        = flag.Int("n", 1000, "records (basket/labeled)")
		clusters = flag.Int("clusters", 5, "clusters/classes (basket/labeled)")
		days     = flag.Int("days", 550, "trading days (funds)")
		seed     = flag.Int64("seed", 1, "generator seed")
		format   = flag.String("format", "", "output format: csv or basket (default per kind)")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var d *rock.Dataset
	defFormat := "csv"
	switch *kind {
	case "votes":
		d = rock.GenerateVotes(rock.VotesConfig{Seed: *seed})
	case "mushroom":
		d = rock.GenerateMushroom(rock.MushroomConfig{Seed: *seed})
	case "funds":
		d = rock.GenerateFunds(rock.FundsConfig{Days: *days, Seed: *seed})
		defFormat = "basket"
	case "basket":
		d = rock.GenerateBasket(rock.BasketConfig{Transactions: *n, Clusters: *clusters, Seed: *seed})
		defFormat = "basket"
	case "labeled":
		d = rock.GenerateLabeled(rock.LabeledConfig{Records: *n, Classes: *clusters, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "rockgen: unknown kind %q\n", *kind)
		os.Exit(1)
	}
	if *format == "" {
		*format = defFormat
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rockgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	var err error
	switch *format {
	case "csv":
		err = rock.WriteCSV(w, d)
	case "basket":
		err = rock.WriteBasket(w, d)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rockgen:", err)
		os.Exit(1)
	}
}
