package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/rockclust/rock"
)

// TestRoundTrip drives the CLI's full "cluster once, serve forever" loop
// the way a user would: cluster a basket file with -save, inspect the
// frozen file with -load, then label a fresh file of queries with
// -load -assign -members — asserting the assignment summary and that
// the -members output buckets the queries with their own kind.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, lines []string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	baskets := write("baskets.txt", []string{
		"# two cleanly separated basket templates",
		"milk bread butter",
		"milk bread jam",
		"milk butter jam",
		"bread butter jam",
		"beer chips salsa",
		"beer chips dip",
		"beer salsa dip",
		"chips salsa dip",
	})
	// Queries: two per template plus one of unseen items (an outlier).
	queries := write("queries.txt", []string{
		"milk bread honey",
		"bread jam honey",
		"beer chips guac",
		"chips dip guac",
		"quinoa kale sprouts",
	})
	modelPath := filepath.Join(dir, "model.rock")

	// rock -input baskets.txt -format basket -theta 0.3 -k 2 -save model.rock
	// LabelFraction 1 freezes every member, so each query's θ-neighbor is
	// guaranteed to be in the model rather than subject to the sampling.
	cfg := rock.Config{Theta: 0.3, K: 2, Seed: 1, LabelFraction: 1, MaxLabelPoints: 10}
	var clusterOut bytes.Buffer
	if err := run(&clusterOut, baskets, "basket", cfg, modelPath, -1, -1, true, false, false, 0, 40); err != nil {
		t.Fatalf("cluster+save: %v", err)
	}
	if !strings.Contains(clusterOut.String(), "points=8 clusters=2 outliers=0") {
		t.Fatalf("cluster summary:\n%s", clusterOut.String())
	}

	// rock -load model.rock — the inspection path.
	var inspectOut bytes.Buffer
	if err := runModel(&inspectOut, modelPath, false, "", "", 1, -1, -1, true, false, false, 40); err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, want := range []string{"cluster 0: frozen-size=", "cluster 1: frozen-size="} {
		if !strings.Contains(inspectOut.String(), want) {
			t.Fatalf("inspect output missing %q:\n%s", want, inspectOut.String())
		}
	}

	// rock -load model.rock -assign -input queries.txt -format basket -members
	var assignOut bytes.Buffer
	if err := runModel(&assignOut, modelPath, true, queries, "basket", 1, -1, -1, true, false, true, 40); err != nil {
		t.Fatalf("load+assign: %v", err)
	}
	if !strings.Contains(assignOut.String(), "assigned 5 points: 4 matched a cluster, 1 outliers") {
		t.Fatalf("assignment summary:\n%s", assignOut.String())
	}

	// The -members listing must bucket queries with their own template:
	// #0/#1 (dairy) share a cluster, #2/#3 (snacks) share the other, and
	// #4 (unseen items) appears under neither.
	buckets := parseMembers(t, assignOut.String())
	if len(buckets) != 2 {
		t.Fatalf("parsed %d member buckets, want 2:\n%s", len(buckets), assignOut.String())
	}
	var dairy, snacks []string
	for _, members := range buckets {
		switch {
		case contains(members, "#0"):
			dairy = members
		case contains(members, "#2"):
			snacks = members
		}
	}
	if fmt.Sprint(dairy) != "[#0 #1]" {
		t.Fatalf("dairy queries bucketed as %v, want [#0 #1]", dairy)
	}
	if fmt.Sprint(snacks) != "[#2 #3]" {
		t.Fatalf("snack queries bucketed as %v, want [#2 #3]", snacks)
	}
}

// parseMembers reads the `cluster N: assigned=…` sections of the -members
// output into per-cluster member-name lists.
func parseMembers(t *testing.T, out string) map[string][]string {
	t.Helper()
	header := regexp.MustCompile(`^cluster (\d+): assigned=`)
	buckets := map[string][]string{}
	current := ""
	for _, line := range strings.Split(out, "\n") {
		if m := header.FindStringSubmatch(line); m != nil {
			current = m[1]
			continue
		}
		if strings.HasPrefix(line, "  ") && current != "" {
			buckets[current] = append(buckets[current], strings.TrimSpace(line))
			continue
		}
		current = ""
	}
	for id, members := range buckets {
		if len(members) == 0 {
			delete(buckets, id)
		}
	}
	return buckets
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
