// Command rock clusters a categorical dataset with ROCK and prints the
// clusters. Input is either CSV (categorical records, one row each) or
// the market-basket text format (one transaction per line).
//
// Examples:
//
//	rock -input votes.csv -label-col 0 -theta 0.73 -k 2
//	rock -input baskets.txt -format basket -theta 0.5 -k 8 -sample 2000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/rockclust/rock"
)

func main() {
	var (
		input    = flag.String("input", "", "input file (default stdin)")
		format   = flag.String("format", "csv", "input format: csv or basket")
		theta    = flag.Float64("theta", 0.5, "neighbor threshold θ in [0,1]")
		k        = flag.Int("k", 2, "target number of clusters")
		sample   = flag.Int("sample", 0, "cluster a uniform sample of this size and label the rest (0 = all)")
		minNbr   = flag.Int("min-neighbors", 0, "prune points with fewer neighbors")
		weedAt   = flag.Float64("weed-at", 0, "weed tiny clusters when this fraction of clusters remains (0 = off)")
		weedMax  = flag.Int("weed-max", 2, "largest cluster size weeded")
		seed     = flag.Int64("seed", 1, "random seed (sampling, labeling)")
		labelCol = flag.Int("label-col", -1, "csv: ground-truth label column (enables quality metrics)")
		nameCol  = flag.Int("name-col", -1, "csv: record name column")
		noHeader = flag.Bool("no-header", false, "csv: no header row")
		firstLab = flag.Bool("first-token-label", false, "basket: first token of each line is the label")
		members  = flag.Bool("members", false, "print cluster members")
		topItems = flag.Int("top-items", 0, "print this many top items per cluster")
		lsh      = flag.Bool("lsh", false, "approximate neighbors via MinHash LSH (large inputs)")
		workers  = flag.Int("workers", 0, "goroutines for the neighbor, link, and merge phases (0 = GOMAXPROCS); results are identical for every value")
		maxRows  = flag.Int("max-rows", 40, "clusters shown in the summary table")
	)
	flag.Parse()

	if err := run(*input, *format, rock.Config{
		Theta:        *theta,
		K:            *k,
		SampleSize:   *sample,
		MinNeighbors: *minNbr,
		WeedAt:       *weedAt,
		WeedMaxSize:  *weedMax,
		Seed:         *seed,
		LSHNeighbors: *lsh,
		Workers:      *workers,
	}, *labelCol, *nameCol, !*noHeader, *firstLab, *members, *topItems, *maxRows); err != nil {
		fmt.Fprintln(os.Stderr, "rock:", err)
		os.Exit(1)
	}
}

func run(input, format string, cfg rock.Config, labelCol, nameCol int, header, firstLab, members bool, topItems, maxRows int) error {
	var in io.Reader = os.Stdin
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	var d *rock.Dataset
	var err error
	switch format {
	case "csv":
		opts := rock.DefaultCSVOptions()
		opts.HasHeader = header
		opts.LabelCol = labelCol
		opts.NameCol = nameCol
		d, err = rock.ReadCSV(in, opts)
	case "basket":
		d, err = rock.ReadBasket(in, rock.BasketOptions{FirstTokenIsLabel: firstLab, Comment: '#'})
	default:
		return fmt.Errorf("unknown format %q (want csv or basket)", format)
	}
	if err != nil {
		return err
	}

	res, err := rock.ClusterDataset(d, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("points=%d clusters=%d outliers=%d merges=%d m_a=%.1f link-pairs=%d\n",
		d.Len(), res.K(), len(res.Outliers), res.Stats.Merges, res.Stats.AvgNeighbors, res.Stats.LinkPairs)
	for ci, ms := range res.Clusters {
		if ci >= maxRows {
			fmt.Printf("... %d more clusters\n", res.K()-maxRows)
			break
		}
		fmt.Printf("cluster %d: size=%d", ci, len(ms))
		if d.Labels != nil {
			counts := map[string]int{}
			for _, p := range ms {
				counts[d.Labels[p]]++
			}
			best, bestN := "", 0
			for l, n := range counts {
				if n > bestN || (n == bestN && l < best) {
					best, bestN = l, n
				}
			}
			fmt.Printf(" majority=%s purity=%.3f", best, float64(bestN)/float64(len(ms)))
		}
		fmt.Println()
		if topItems > 0 {
			h := rock.BuildHistogram(d.Trans, ms)
			fmt.Printf("  top items:")
			for _, ic := range h.Top(topItems) {
				fmt.Printf(" %s(%.0f%%)", d.Vocab.Name(ic.Item), 100*h.Support(ic.Item))
			}
			fmt.Println()
		}
		if members {
			for _, p := range ms {
				name := fmt.Sprintf("#%d", p)
				if d.Names != nil {
					name = d.Names[p]
				}
				fmt.Printf("  %s\n", name)
			}
		}
	}
	if d.Labels != nil {
		ev := rock.Evaluate(res.Assign, d.Labels)
		fmt.Printf("accuracy r=%.4f error e=%.4f ace=%d ARI=%.4f NMI=%.4f\n",
			ev.Accuracy, ev.Error, ev.AbsoluteError, ev.ARI, ev.NMI)
	}
	return nil
}
