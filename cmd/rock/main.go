// Command rock clusters a categorical dataset with ROCK and prints the
// clusters. Input is either CSV (categorical records, one row each) or
// the market-basket text format (one transaction per line).
//
// Examples:
//
//	rock -input votes.csv -label-col 0 -theta 0.73 -k 2
//	rock -input baskets.txt -format basket -theta 0.5 -k 8 -sample 2000
//
// A clustering can be frozen into a servable model file and queried
// later without re-clustering ("cluster once, serve forever"):
//
//	rock -input baskets.txt -format basket -theta 0.5 -k 8 -save model.rock
//	rock -load model.rock                                  # inspect the model
//	rock -load model.rock -assign -input new.txt -format basket
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/rockclust/rock"
)

func main() {
	var (
		input    = flag.String("input", "", "input file (default stdin)")
		format   = flag.String("format", "csv", "input format: csv or basket")
		theta    = flag.Float64("theta", 0.5, "neighbor threshold θ in [0,1]")
		k        = flag.Int("k", 2, "target number of clusters")
		sample   = flag.Int("sample", 0, "cluster a uniform sample of this size and label the rest (0 = all)")
		minNbr   = flag.Int("min-neighbors", 0, "prune points with fewer neighbors")
		weedAt   = flag.Float64("weed-at", 0, "weed tiny clusters when this fraction of clusters remains (0 = off)")
		weedMax  = flag.Int("weed-max", 2, "largest cluster size weeded")
		seed     = flag.Int64("seed", 1, "random seed (sampling, labeling)")
		labelCol = flag.Int("label-col", -1, "csv: ground-truth label column (enables quality metrics)")
		nameCol  = flag.Int("name-col", -1, "csv: record name column")
		noHeader = flag.Bool("no-header", false, "csv: no header row")
		firstLab = flag.Bool("first-token-label", false, "basket: first token of each line is the label")
		members  = flag.Bool("members", false, "print cluster members")
		topItems = flag.Int("top-items", 0, "print this many top items per cluster")
		lsh      = flag.Bool("lsh", false, "approximate neighbors via MinHash LSH (large inputs)")
		workers  = flag.Int("workers", 0, "goroutines for the neighbor, link, merge, labeling, and assign phases (0 = GOMAXPROCS); results are identical for every value")
		maxRows  = flag.Int("max-rows", 40, "clusters shown in the summary table")
		saveTo   = flag.String("save", "", "after clustering, freeze a servable model to this file")
		loadFrom = flag.String("load", "", "load a frozen model instead of clustering (with -assign: label the input against it)")
		assign   = flag.Bool("assign", false, "with -load: assign every input point through the model and print the distribution")
	)
	flag.Parse()

	cfg := rock.Config{
		Theta:        *theta,
		K:            *k,
		SampleSize:   *sample,
		MinNeighbors: *minNbr,
		WeedAt:       *weedAt,
		WeedMaxSize:  *weedMax,
		Seed:         *seed,
		LSHNeighbors: *lsh,
		Workers:      *workers,
	}
	var err error
	switch {
	case *assign && *loadFrom == "":
		err = fmt.Errorf("-assign needs -load: there is no model to assign through")
	case *loadFrom != "" && *saveTo != "":
		err = fmt.Errorf("-save conflicts with -load: a loaded model is already frozen (clustering, which -save would freeze, does not run)")
	case *loadFrom != "":
		err = runModel(os.Stdout, *loadFrom, *assign, *input, *format, *workers, *labelCol, *nameCol, !*noHeader, *firstLab, *members, *maxRows)
	default:
		err = run(os.Stdout, *input, *format, cfg, *saveTo, *labelCol, *nameCol, !*noHeader, *firstLab, *members, *topItems, *maxRows)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rock:", err)
		os.Exit(1)
	}
}

// readInput parses the input dataset per the -format flag.
func readInput(input, format string, labelCol, nameCol int, header, firstLab bool) (*rock.Dataset, error) {
	var in io.Reader = os.Stdin
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	switch format {
	case "csv":
		opts := rock.DefaultCSVOptions()
		opts.HasHeader = header
		opts.LabelCol = labelCol
		opts.NameCol = nameCol
		return rock.ReadCSV(in, opts)
	case "basket":
		return rock.ReadBasket(in, rock.BasketOptions{FirstTokenIsLabel: firstLab, Comment: '#'})
	default:
		return nil, fmt.Errorf("unknown format %q (want csv or basket)", format)
	}
}

// runModel is the -load path: print the model to w, and with -assign
// label the input dataset through it. It takes the writer (rather than
// printing to stdout) so the round-trip test can capture the output.
func runModel(w io.Writer, path string, assign bool, input, format string, workers, labelCol, nameCol int, header, firstLab, members bool, maxRows int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	m, err := rock.LoadModel(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, m)
	if !assign {
		sizes := m.ClusterSizes()
		for ci, sz := range sizes {
			if ci >= maxRows {
				fmt.Fprintf(w, "... %d more clusters\n", len(sizes)-maxRows)
				break
			}
			fmt.Fprintf(w, "cluster %d: frozen-size=%d\n", ci, sz)
		}
		return nil
	}

	d, err := readInput(input, format, labelCol, nameCol, header, firstLab)
	if err != nil {
		return err
	}
	assigned, err := m.AssignDataset(d, workers)
	if err != nil {
		return err
	}
	byCluster := make([][]int, m.K())
	outliers := 0
	for p, ci := range assigned {
		if ci < 0 {
			outliers++
		} else {
			byCluster[ci] = append(byCluster[ci], p)
		}
	}
	fmt.Fprintf(w, "assigned %d points: %d matched a cluster, %d outliers\n",
		len(assigned), len(assigned)-outliers, outliers)
	for ci, ms := range byCluster {
		if ci >= maxRows {
			fmt.Fprintf(w, "... %d more clusters\n", m.K()-maxRows)
			break
		}
		fmt.Fprintf(w, "cluster %d: assigned=%d\n", ci, len(ms))
		if members {
			for _, p := range ms {
				name := fmt.Sprintf("#%d", p)
				if d.Names != nil {
					name = d.Names[p]
				}
				fmt.Fprintf(w, "  %s\n", name)
			}
		}
	}
	if d.Labels != nil {
		ev := rock.Evaluate(assigned, d.Labels)
		fmt.Fprintf(w, "accuracy r=%.4f error e=%.4f ace=%d ARI=%.4f NMI=%.4f\n",
			ev.Accuracy, ev.Error, ev.AbsoluteError, ev.ARI, ev.NMI)
	}
	return nil
}

// run is the clustering path: read, cluster, optionally freeze to
// saveTo, and print the summary to w.
func run(w io.Writer, input, format string, cfg rock.Config, saveTo string, labelCol, nameCol int, header, firstLab, members bool, topItems, maxRows int) error {
	d, err := readInput(input, format, labelCol, nameCol, header, firstLab)
	if err != nil {
		return err
	}

	res, err := rock.ClusterDataset(d, cfg)
	if err != nil {
		return err
	}

	if saveTo != "" {
		m, err := rock.FreezeDataset(d, res, cfg)
		if err != nil {
			return err
		}
		f, err := os.Create(saveTo)
		if err != nil {
			return err
		}
		if err := m.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rock: froze %s to %s\n", m, saveTo)
	}

	fmt.Fprintf(w, "points=%d clusters=%d outliers=%d merges=%d m_a=%.1f link-pairs=%d\n",
		d.Len(), res.K(), len(res.Outliers), res.Stats.Merges, res.Stats.AvgNeighbors, res.Stats.LinkPairs)
	for ci, ms := range res.Clusters {
		if ci >= maxRows {
			fmt.Fprintf(w, "... %d more clusters\n", res.K()-maxRows)
			break
		}
		fmt.Fprintf(w, "cluster %d: size=%d", ci, len(ms))
		if d.Labels != nil {
			counts := map[string]int{}
			for _, p := range ms {
				counts[d.Labels[p]]++
			}
			best, bestN := "", 0
			for l, n := range counts {
				if n > bestN || (n == bestN && l < best) {
					best, bestN = l, n
				}
			}
			fmt.Fprintf(w, " majority=%s purity=%.3f", best, float64(bestN)/float64(len(ms)))
		}
		fmt.Fprintln(w)
		if topItems > 0 {
			h := rock.BuildHistogram(d.Trans, ms)
			fmt.Fprintf(w, "  top items:")
			for _, ic := range h.Top(topItems) {
				fmt.Fprintf(w, " %s(%.0f%%)", d.Vocab.Name(ic.Item), 100*h.Support(ic.Item))
			}
			fmt.Fprintln(w)
		}
		if members {
			for _, p := range ms {
				name := fmt.Sprintf("#%d", p)
				if d.Names != nil {
					name = d.Names[p]
				}
				fmt.Fprintf(w, "  %s\n", name)
			}
		}
	}
	if d.Labels != nil {
		ev := rock.Evaluate(res.Assign, d.Labels)
		fmt.Fprintf(w, "accuracy r=%.4f error e=%.4f ace=%d ARI=%.4f NMI=%.4f\n",
			ev.Accuracy, ev.Error, ev.AbsoluteError, ev.ARI, ev.NMI)
	}
	return nil
}
