package rock

import (
	"io"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/serve"
	"github.com/rockclust/rock/internal/stream"
)

// Core clustering types, re-exported from the engine.
type (
	// Config holds every ROCK parameter; Theta and K are mandatory.
	Config = core.Config
	// Result is the outcome of a clustering run: assignments, clusters,
	// outliers and run statistics.
	Result = core.Result
	// Stats reports the quantities of the paper's analysis (neighbor
	// densities, link pairs, merges, prunings).
	Stats = core.Stats
	// FTheta maps θ to the criterion exponent f(θ).
	FTheta = core.FTheta
	// GoodnessFunc scores candidate merges.
	GoodnessFunc = core.GoodnessFunc
	// QRockConfig parameterizes the QROCK variant.
	QRockConfig = core.QRockConfig
	// MergeStep is one dendrogram entry recorded with Config.TraceMerges.
	MergeStep = core.MergeStep
)

// CutTrace replays a merge trace (Result.MergeTrace over
// len(Result.TracePoints) singletons) and stops at k clusters, returning
// members by trace singleton index — clusterings at every granularity
// from a single run.
func CutTrace(n int, steps []MergeStep, k int) ([][]int, error) {
	return core.CutTrace(n, steps, k)
}

// Cluster runs the full ROCK pipeline over the transactions: optional
// Chernoff-scale sampling, θ-neighbor computation, link computation,
// outlier pruning, heap-driven agglomeration and — when sampling — the
// labeling pass for the remaining points.
func Cluster(ts []Transaction, cfg Config) (*Result, error) {
	return core.Cluster(ts, cfg)
}

// ClusterDataset is a convenience wrapper over Cluster for a Dataset.
func ClusterDataset(d *Dataset, cfg Config) (*Result, error) {
	return core.Cluster(d.Trans, cfg)
}

// QRock clusters by connected components of the θ-neighbor graph — the
// QROCK simplification of ROCK for workloads where the component
// structure is the clustering.
func QRock(ts []Transaction, cfg QRockConfig) (*Result, error) {
	return core.QRock(ts, cfg)
}

// ChunkedConfig parameterizes ChunkedCluster.
type ChunkedConfig = core.ChunkedConfig

// ChunkedCluster adapts ROCK to datasets that cannot be clustered
// wholesale: cluster each chunk independently, keep representative points
// per chunk cluster, cluster the representatives down to the final K, and
// let every point inherit its chunk cluster's final assignment. Memory is
// bounded by chunk size plus the representative set.
func ChunkedCluster(ts []Transaction, cfg ChunkedConfig) (*Result, error) {
	return core.ChunkedCluster(ts, cfg)
}

// WriteResult serializes a clustering result as versioned JSON.
func WriteResult(w io.Writer, res *Result) error { return core.WriteResult(w, res) }

// ReadResult deserializes a result written by WriteResult.
func ReadResult(r io.Reader) (*Result, error) { return core.ReadResult(r) }

// Model is an immutable, goroutine-safe snapshot of a clustering run:
// the labeled points, their inverted item postings, and the (measure, θ,
// f) metadata the labeling score needs — everything required to answer
// Assign queries forever without re-clustering. Build one with Freeze or
// FreezeDataset, persist it with Model.Save, and reload it in any later
// process with LoadModel; Assign and AssignBatch are bit-identical to
// the pipeline's labeling phase over the frozen subsets.
type Model = core.Model

// Freeze snapshots a clustering run into a servable Model. The labeled
// subsets are the run's own (Result.LabelSets) whenever the run drew
// them — a model frozen from a sampled run reproduces that run's
// labeling exactly — and otherwise are drawn fresh from res.Clusters by
// the same pass the labeling phase uses (cfg.LabelFraction /
// cfg.MaxLabelPoints, seeded by cfg.Seed). cfg.Measure must be nil or a
// built-in measure — custom similarity functions cannot be serialized.
func Freeze(ts []Transaction, res *Result, cfg Config) (*Model, error) {
	return core.Freeze(ts, res, cfg)
}

// FreezeDataset is Freeze for a Dataset: the model additionally freezes
// the dataset's vocabulary, enabling Model.AssignDataset on inputs read
// under a different vocabulary (the CLI's -save / -load flow).
func FreezeDataset(d *Dataset, res *Result, cfg Config) (*Model, error) {
	return core.FreezeDataset(d, res, cfg)
}

// LoadModel reads a model written by Model.Save, verifying magic,
// version and checksum. Failures wrap the ErrModel* sentinels.
func LoadModel(r io.Reader) (*Model, error) { return core.LoadModel(r) }

// Load failure sentinels, re-exported so callers can branch with
// errors.Is on the exact failure mode LoadModel reports.
var (
	ErrModelTruncated = core.ErrModelTruncated
	ErrModelMagic     = core.ErrModelMagic
	ErrModelVersion   = core.ErrModelVersion
	ErrModelChecksum  = core.ErrModelChecksum
	ErrModelMeasure   = core.ErrModelMeasure
	ErrModelCorrupt   = core.ErrModelCorrupt
)

// Serving stack, re-exported from the serve package: an HTTP server over
// a frozen Model with request coalescing and atomic hot-swap reload (the
// machinery behind cmd/rockserve).
type (
	// ServeConfig parameterizes a Server (batch size, flush deadline,
	// workers, drain timeout, reload path). The zero value uses the
	// documented defaults.
	ServeConfig = serve.Config
	// Server answers assignment traffic from a hot-swappable frozen
	// model. Mount Server.Handler on any http.Server; Server.Swap or
	// POST /-/reload replaces the model without dropping a request.
	Server = serve.Server
	// ServeStats is the GET /stats snapshot: traffic counters, batching
	// effectiveness, and latency quantiles.
	ServeStats = serve.Stats
	// AssignRequest is the POST /assign body (item names or raw ids).
	AssignRequest = serve.AssignRequest
	// AssignResponse answers POST /assign: one cluster index per query
	// plus the model generation that answered.
	AssignResponse = serve.AssignResponse
	// ReloadResponse answers POST /-/reload.
	ReloadResponse = serve.ReloadResponse
)

// NewServer builds a Server serving the given frozen model.
func NewServer(m *Model, cfg ServeConfig) *Server { return serve.New(m, cfg) }

// Streaming ingestion, re-exported from the stream package: a long-lived
// loop over the serving stack that admits arriving points via the frozen
// θ-test, parks what the model cannot place, watches the outlier rate for
// distribution drift, and re-clusters + hot-swaps in the background when
// the model has gone stale (the machinery behind rockserve -stream).
type (
	// StreamConfig parameterizes a Streamer (drift window, refresh
	// threshold, buffer bounds, the embedded ServeConfig). The zero value
	// uses the documented defaults and inherits θ, K, and the measure
	// from the initial model.
	StreamConfig = stream.Config
	// Streamer admits arriving points against the live model, detects
	// drift, and refreshes the model without dropping a request. Mount
	// Streamer.Handler for the HTTP surface (POST /ingest, GET /streamz,
	// plus the embedded serving endpoints).
	Streamer = stream.Streamer
	// StreamStats is the GET /streamz snapshot: admission counters, the
	// drift estimate, and the refresh ledger.
	StreamStats = stream.Stats
	// IngestResult answers one Streamer.Ingest call: assignments, the
	// generation that answered, and the drift estimate.
	IngestResult = stream.IngestResult
	// IngestRequest is the POST /ingest body (item names or raw ids).
	IngestRequest = stream.IngestRequest
	// IngestResponse answers POST /ingest.
	IngestResponse = stream.IngestResponse
)

// NewStreamer builds a Streamer serving the given frozen model at
// generation 1.
func NewStreamer(m *Model, cfg StreamConfig) (*Streamer, error) { return stream.New(m, cfg) }

// MarketBasketF is the paper's exponent choice f(θ) = (1−θ)/(1+θ).
func MarketBasketF(theta float64) float64 { return core.MarketBasketF(theta) }

// ConstantF returns an exponent function that ignores θ.
func ConstantF(c float64) FTheta { return core.ConstantF(c) }

// RockGoodness is the paper's goodness measure: cross links normalized by
// their expectation under the f(θ) neighbor model.
func RockGoodness(links, ni, nj int, f float64) float64 {
	return core.RockGoodness(links, ni, nj, f)
}

// LinkCountGoodness merges by raw cross-link count (ablation).
func LinkCountGoodness(links, ni, nj int, f float64) float64 {
	return core.LinkCountGoodness(links, ni, nj, f)
}

// AverageLinkGoodness merges by links per cross pair (ablation).
func AverageLinkGoodness(links, ni, nj int, f float64) float64 {
	return core.AverageLinkGoodness(links, ni, nj, f)
}

// Criterion evaluates the paper's criterion function E_l over a
// clustering given a pairwise link oracle.
func Criterion(clusters [][]int, links func(i, j int) int, f float64) float64 {
	return core.Criterion(clusters, links, f)
}

// ChernoffSampleSize returns the sample size guaranteeing, with
// probability 1−delta, at least frac·clusterSize points of a cluster in a
// uniform sample from n points — the paper's bound for sizing the
// clustering sample.
func ChernoffSampleSize(n, clusterSize int, frac, delta float64) int {
	return core.ChernoffSampleSize(n, clusterSize, frac, delta)
}

// ensure the facade types stay aliases of the dataset model (compile-time
// check that ClusterDataset accepts what ReadCSV produces).
var _ = func(d *dataset.Dataset) []Transaction { return d.Trans }
