// Serve: cluster once, freeze the run into a model file, then serve
// assignment queries from the frozen model — first in-process with
// AssignBatch, then over HTTP with the rockserve stack, including a hot
// model reload that swaps generations without dropping a request. This
// is the paper's "cluster a sample, label the rest" scaling story turned
// into a persistable, servable artifact.
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"github.com/rockclust/rock"
)

func main() {
	// A synthetic "historical" basket log: the expensive, once-per-deploy
	// part. Cluster a Chernoff-sized sample; the labeling phase assigns
	// the rest.
	history := rock.GenerateBasket(rock.BasketConfig{
		Transactions:    20000,
		Clusters:        8,
		TemplateItems:   15,
		TransactionSize: 12,
		Seed:            1,
	})
	sample := rock.ChernoffSampleSize(history.Len(), history.Len()/8, 0.25, 0.001)
	cfg := rock.Config{
		Theta:      0.5,
		K:          8,
		SampleSize: sample,
		Seed:       1,
		Workers:    0,
		// The paper's outlier devices keep noise fragments from becoming
		// clusters of their own.
		MinNeighbors: 2,
		WeedAt:       0.1,
		WeedMaxSize:  20,
	}
	res, err := rock.Cluster(history.Trans, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered: %d points, sample=%d, k=%d, %d labeled in phase 6\n",
		res.Stats.N, res.Stats.Sampled, res.K(), res.Stats.Labeled)

	// Freeze the run. FreezeDataset also freezes the vocabulary, so a
	// later process can assign inputs read under their own vocabularies.
	model, err := rock.FreezeDataset(history, res, cfg)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "serve-example.rock")
	defer os.Remove(path)
	if err := saveModel(model, path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("frozen: %v (%d bytes at %s)\n", model, info.Size(), path)

	// ...time passes; a serving process starts and loads the model. The
	// file is versioned and checksummed — a corrupted or incompatible
	// model fails loudly at load, never silently at query time.
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	served, err := rock.LoadModel(g)
	g.Close()
	if err != nil {
		log.Fatal(err)
	}

	// "Live traffic", generated under its own vocabulary (a different
	// seed interns items in a different order), translated into the
	// model's frozen id space by item name — the once-per-ingest step.
	traffic := rock.GenerateBasket(rock.BasketConfig{
		Transactions:    8000,
		Clusters:        8,
		TemplateItems:   15,
		TransactionSize: 12,
		Seed:            99, // unseen data
	})
	queries, err := served.RemapDataset(traffic)
	if err != nil {
		log.Fatal(err)
	}

	// In-process serving: AssignBatch shards the queries across workers
	// internally and returns one assignment per query, bit-identical to
	// the pipeline's labeling phase over the frozen subsets.
	assigned := served.AssignBatch(queries, 8)
	counts := make([]int, served.K()+1) // last slot: outliers
	for _, ci := range assigned {
		if ci >= 0 {
			counts[ci]++
		} else {
			counts[served.K()]++
		}
	}
	fmt.Printf("served %d queries in-process via AssignBatch:\n", len(queries))
	for ci := 0; ci < served.K(); ci++ {
		fmt.Printf("  cluster %d: %d\n", ci, counts[ci])
	}
	fmt.Printf("  outliers: %d\n", counts[served.K()])

	// The same model over HTTP: the rockserve stack coalesces concurrent
	// POST /assign requests into shared AssignBatch flushes and hot-swaps
	// the model on POST /-/reload without dropping a request.
	srv := rock.NewServer(served, rock.ServeConfig{ModelPath: path})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// Queries travel as item names; the server translates them through
	// the model's frozen vocabulary exactly like RemapDataset above.
	names := make([][]string, 0, 3)
	for _, t := range traffic.Trans[:3] {
		row := make([]string, 0, len(t))
		for _, it := range t {
			row = append(row, traffic.Vocab.Name(it))
		}
		names = append(names, row)
	}
	var resp rock.AssignResponse
	postJSON(base+"/assign", rock.AssignRequest{Queries: names}, &resp)
	fmt.Printf("HTTP /assign (generation %d): %v\n", resp.Generation, resp.Assignments)
	for i, ci := range resp.Assignments {
		if ci != assigned[i] {
			log.Fatalf("HTTP answer %d disagrees with AssignBatch (%d vs %d)", i, ci, assigned[i])
		}
	}

	// Retrain offline — here just a re-freeze — overwrite the file, and
	// reload. In-flight generation-1 requests drain to completion while
	// generation 2 answers everything new.
	if err := saveModel(model, path); err != nil {
		log.Fatal(err)
	}
	var rl rock.ReloadResponse
	postJSON(base+"/-/reload", struct{}{}, &rl)
	fmt.Printf("HTTP /-/reload: generation %d, drained=%v\n", rl.Generation, rl.Drained)

	postJSON(base+"/assign", rock.AssignRequest{Queries: names}, &resp)
	fmt.Printf("HTTP /assign (generation %d): %v\n", resp.Generation, resp.Assignments)

	var stats rock.ServeStats
	getJSON(base+"/stats", &stats)
	fmt.Printf("HTTP /stats: %d requests, %d queries, %d batches, %d reloads\n",
		stats.Requests, stats.Queries, stats.Batches, stats.Reloads)
}

// saveModel freezes the model to a file.
func saveModel(m *rock.Model, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// postJSON posts a JSON body and decodes the JSON response.
func postJSON(url string, req, resp any) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %s", url, r.Status)
	}
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		log.Fatal(err)
	}
}

// getJSON fetches a URL and decodes the JSON response.
func getJSON(url string, resp any) {
	r, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		log.Fatal(err)
	}
}
