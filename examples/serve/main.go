// Serve: cluster once, freeze the run into a model file, then serve
// assignment queries from the frozen model — concurrently, without ever
// re-clustering. This is the paper's "cluster a sample, label the rest"
// scaling story turned into a persistable serving artifact.
//
//	go run ./examples/serve
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"github.com/rockclust/rock"
)

func main() {
	// A synthetic "historical" basket log: the expensive, once-per-deploy
	// part. Cluster a Chernoff-sized sample; the labeling phase assigns
	// the rest.
	history := rock.GenerateBasket(rock.BasketConfig{
		Transactions:    20000,
		Clusters:        8,
		TemplateItems:   15,
		TransactionSize: 12,
		Seed:            1,
	})
	sample := rock.ChernoffSampleSize(history.Len(), history.Len()/8, 0.25, 0.001)
	cfg := rock.Config{
		Theta:      0.5,
		K:          8,
		SampleSize: sample,
		Seed:       1,
		Workers:    0,
		// The paper's outlier devices keep noise fragments from becoming
		// clusters of their own.
		MinNeighbors: 2,
		WeedAt:       0.1,
		WeedMaxSize:  20,
	}
	res, err := rock.Cluster(history.Trans, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered: %d points, sample=%d, k=%d, %d labeled in phase 6\n",
		res.Stats.N, res.Stats.Sampled, res.K(), res.Stats.Labeled)

	// Freeze the run. FreezeDataset also freezes the vocabulary, so a
	// later process can assign inputs read under their own vocabularies.
	model, err := rock.FreezeDataset(history, res, cfg)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "serve-example.rock")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("frozen: %v (%d bytes at %s)\n", model, info.Size(), path)

	// ...time passes; a serving process starts and loads the model. The
	// file is versioned and checksummed — a corrupted or incompatible
	// model fails loudly at load, never silently at query time.
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	served, err := rock.LoadModel(g)
	g.Close()
	if err != nil {
		log.Fatal(err)
	}

	// Serve "live traffic": many goroutines querying one shared model.
	// The traffic was generated under its own vocabulary (a different
	// seed interns items in a different order), so it is translated into
	// the model's frozen id space by item name first — the once-per-
	// ingest step; RemapDataset errors if the model froze no vocabulary.
	// After that, Assign is goroutine-safe and bit-identical to the
	// pipeline's labeling phase over the frozen subsets.
	traffic := rock.GenerateBasket(rock.BasketConfig{
		Transactions:    8000,
		Clusters:        8,
		TemplateItems:   15,
		TransactionSize: 12,
		Seed:            99, // unseen data
	})
	queries, err := served.RemapDataset(traffic)
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	counts := make([]int, served.K()+1) // last slot: outliers
	var mu sync.Mutex
	const handlers = 8
	per := len(queries) / handlers
	for h := 0; h < handlers; h++ {
		lo, hi := h*per, (h+1)*per
		if h == handlers-1 {
			hi = len(queries)
		}
		wg.Add(1)
		go func(batch []rock.Transaction) {
			defer wg.Done()
			local := make([]int, served.K()+1)
			for _, t := range batch {
				if ci := served.Assign(t); ci >= 0 {
					local[ci]++
				} else {
					local[served.K()]++
				}
			}
			mu.Lock()
			for i, n := range local {
				counts[i] += n
			}
			mu.Unlock()
		}(queries[lo:hi])
	}
	wg.Wait()

	fmt.Printf("served %d queries across %d handlers:\n", len(queries), handlers)
	for ci := 0; ci < served.K(); ci++ {
		fmt.Printf("  cluster %d: %d\n", ci, counts[ci])
	}
	fmt.Printf("  outliers: %d\n", counts[served.K()])
	os.Remove(path)
}
