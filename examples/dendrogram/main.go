// Dendrogram: run ROCK once with merge tracing, then cut the dendrogram
// at several cluster counts without re-running the pipeline, and profile
// each cluster with its item-frequency histogram.
//
//	go run ./examples/dendrogram
package main

import (
	"fmt"
	"log"

	"github.com/rockclust/rock"
)

func main() {
	d := rock.GenerateBasket(rock.BasketConfig{
		Transactions:    600,
		Clusters:        6,
		TemplateItems:   15,
		TransactionSize: 10,
		Seed:            21,
	})

	res, err := rock.ClusterDataset(d, rock.Config{
		Theta:       0.4,
		K:           2, // merge far past the natural structure...
		Seed:        1,
		TraceMerges: true, // ...and keep the whole dendrogram
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one run, %d merges traced; cutting at several k:\n\n", len(res.MergeTrace))

	for _, k := range []int{2, 4, 6, 9} {
		cut, err := rock.CutTrace(len(res.TracePoints), res.MergeTrace, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%d:", k)
		for _, members := range cut {
			// Majority ground-truth template per cluster.
			counts := map[string]int{}
			for _, l := range members {
				counts[d.Labels[res.TracePoints[l]]]++
			}
			best, bestN := "", 0
			for l, n := range counts {
				if n > bestN {
					best, bestN = l, n
				}
			}
			fmt.Printf("  [%d×%s %.0f%%]", len(members), best, 100*float64(bestN)/float64(len(members)))
		}
		fmt.Println()
	}

	// Profile the natural clustering (k=6) with histograms.
	fmt.Println("\ncluster profiles at k=6 (top items by support):")
	cut, err := rock.CutTrace(len(res.TracePoints), res.MergeTrace, 6)
	if err != nil {
		log.Fatal(err)
	}
	for ci, members := range cut {
		orig := make([]int, len(members))
		for i, l := range members {
			orig[i] = res.TracePoints[l]
		}
		h := rock.BuildHistogram(d.Trans, orig)
		fmt.Printf("  cluster %d (size %d):", ci, len(members))
		for _, ic := range h.Top(5) {
			fmt.Printf(" %s(%.0f%%)", d.Vocab.Name(ic.Item), 100*h.Support(ic.Item))
		}
		fmt.Println()
	}
}
