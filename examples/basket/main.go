// Basket: large-scale market-basket segmentation with the sampling +
// labeling pipeline, and a comparison with QROCK (clusters as connected
// components of the neighbor graph) showing where the cheap variant is
// enough and where it collapses.
//
//	go run ./examples/basket
package main

import (
	"fmt"
	"log"

	"github.com/rockclust/rock"
)

func main() {
	// Ten thousand transactions from eight overlapping templates.
	d := rock.GenerateBasket(rock.BasketConfig{
		Transactions:    10000,
		Clusters:        8,
		TemplateItems:   15,
		TransactionSize: 10,
		OverlapItems:    4,
		Seed:            3,
	})
	fmt.Printf("dataset: %d transactions, %d distinct items\n", d.Len(), d.Vocab.Len())

	res, err := rock.ClusterDataset(d, rock.Config{
		Theta:      0.4,
		K:          8,
		SampleSize: 1500,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	ev := rock.Evaluate(res.Assign, d.Labels)
	fmt.Printf("ROCK  (sample 1500 + labeling): clusters=%d accuracy=%.3f ARI=%.3f outliers=%d\n",
		res.K(), ev.Accuracy, ev.ARI, len(res.Outliers))

	// QROCK on the same data: template overlap bridges the neighbor
	// graph, so components collapse — the goodness-driven merge order is
	// what keeps ROCK's clusters apart.
	q, err := rock.QRock(d.Trans, rock.QRockConfig{Theta: 0.4, MinClusterSize: 5})
	if err != nil {
		log.Fatal(err)
	}
	evQ := rock.Evaluate(q.Assign, d.Labels)
	fmt.Printf("QROCK (connected components):   clusters=%d accuracy=%.3f ARI=%.3f\n",
		q.K(), evQ.Accuracy, evQ.ARI)

	// Per-cluster majority templates for the ROCK run.
	for ci, members := range res.Clusters {
		counts := map[string]int{}
		for _, p := range members {
			counts[d.Labels[p]]++
		}
		best, bestN := "", 0
		for l, n := range counts {
			if n > bestN {
				best, bestN = l, n
			}
		}
		fmt.Printf("  cluster %d: size=%d majority=%s purity=%.3f\n",
			ci, len(members), best, float64(bestN)/float64(len(members)))
	}
}
