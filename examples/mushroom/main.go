// Mushroom: the paper's headline experiment at full scale — cluster a
// Chernoff-sized sample of the 8124-record mushroom stand-in with ROCK at
// θ=0.8, label the rest, and inspect the result: ~21 clusters of wildly
// uneven size, all pure except the single genuinely mixed
// edible/poisonous region.
//
//	go run ./examples/mushroom
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/rockclust/rock"
)

func main() {
	d := rock.GenerateMushroom(rock.MushroomConfig{Seed: 7})
	fmt.Printf("dataset: %d records, %d attributes, %d species, classes %v\n",
		d.Len(), len(d.Attrs), rock.MushroomSpeciesCount(), d.ClassCounts())

	// How large must the sample be to catch at least half of a 192-record
	// species with 99% confidence?
	bound := rock.ChernoffSampleSize(d.Len(), 192, 0.5, 0.01)
	fmt.Printf("Chernoff bound for a 192-record species: %d\n", bound)

	res, err := rock.ClusterDataset(d, rock.Config{
		Theta:        0.8,
		K:            20,
		SampleSize:   1800,
		MinNeighbors: 1,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}

	type row struct{ size, edible, poisonous int }
	rows := make([]row, 0, res.K())
	for _, members := range res.Clusters {
		var r row
		for _, p := range members {
			r.size++
			if d.Labels[p] == "edible" {
				r.edible++
			} else {
				r.poisonous++
			}
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].size > rows[j].size })

	fmt.Printf("\n%-8s %-8s %-10s %s\n", "size", "edible", "poisonous", "pure?")
	for _, r := range rows {
		pure := "yes"
		if r.edible > 0 && r.poisonous > 0 {
			pure = "MIXED"
		}
		fmt.Printf("%-8d %-8d %-10d %s\n", r.size, r.edible, r.poisonous, pure)
	}
	ev := rock.Evaluate(res.Assign, d.Labels)
	fmt.Printf("\nclusters=%d outliers=%d accuracy=%.4f error=%.4f\n",
		res.K(), len(res.Outliers), ev.Accuracy, ev.Error)
}
