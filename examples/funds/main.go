// Funds: the paper's mutual-fund case study — convert each fund's NAV
// time series into the transaction of its up-days and cluster with ROCK.
// Funds group by what drives their returns: the bond sectors, the equity
// sectors, precious metals alone.
//
//	go run ./examples/funds
package main

import (
	"fmt"
	"log"

	"github.com/rockclust/rock"
)

func main() {
	d := rock.GenerateFunds(rock.FundsConfig{Days: 550, Seed: 9})
	fmt.Printf("universe: %d funds over %d sectors; transaction = set of NAV up-days\n",
		d.Len(), rock.FundSectorCount())

	res, err := rock.ClusterDataset(d, rock.Config{
		Theta:        0.8,
		K:            rock.FundSectorCount(),
		MinNeighbors: 2,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}

	for ci, members := range res.Clusters {
		counts := map[string]int{}
		for _, p := range members {
			counts[d.Labels[p]]++
		}
		best, bestN := "", 0
		for s, n := range counts {
			if n > bestN {
				best, bestN = s, n
			}
		}
		fmt.Printf("cluster %d: %-22s size=%d purity=%.3f  e.g.", ci, best, len(members), float64(bestN)/float64(len(members)))
		for i, p := range members {
			if i == 3 {
				break
			}
			fmt.Printf(" %s", d.Names[p])
		}
		fmt.Println()
	}
	if len(res.Outliers) > 0 {
		fmt.Printf("outliers: %d funds\n", len(res.Outliers))
	}
	ev := rock.Evaluate(res.Assign, d.Labels)
	fmt.Printf("sector agreement: accuracy=%.3f ARI=%.3f\n", ev.Accuracy, ev.ARI)
}
