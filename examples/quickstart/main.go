// Quickstart: cluster a handful of market-basket transactions with ROCK.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/rockclust/rock"
)

func main() {
	// A tiny shopping log: a dairy crowd, a barbecue crowd, and one
	// customer who only bought batteries.
	baskets := `
milk bread butter eggs
milk bread butter
bread butter eggs cheese
milk eggs cheese
charcoal beer sausage buns
beer sausage buns ketchup
charcoal beer sausage ketchup
charcoal buns ketchup sausage
batteries
`
	d, err := rock.ReadBasket(strings.NewReader(baskets), rock.BasketOptions{})
	if err != nil {
		log.Fatal(err)
	}

	res, err := rock.Cluster(d.Trans, rock.Config{
		Theta:        0.3, // neighbors share ≥ 30% of their union
		K:            2,   // stop at two clusters (or when links run out)
		MinNeighbors: 1,   // records with no neighbors are outliers
	})
	if err != nil {
		log.Fatal(err)
	}

	for ci, members := range res.Clusters {
		fmt.Printf("cluster %d:\n", ci)
		for _, p := range members {
			var items []string
			for _, it := range d.Trans[p] {
				items = append(items, d.Vocab.Name(it))
			}
			fmt.Printf("  %s\n", strings.Join(items, " "))
		}
	}
	for _, p := range res.Outliers {
		var items []string
		for _, it := range d.Trans[p] {
			items = append(items, d.Vocab.Name(it))
		}
		fmt.Printf("outlier: %s\n", strings.Join(items, " "))
	}
}
