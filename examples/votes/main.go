// Votes: the paper's first quality experiment — ROCK versus traditional
// centroid-based hierarchical clustering on (a stand-in for) the UCI
// Congressional Voting Records dataset. ROCK recovers near-pure party
// clusters and sets a minority of centrist/absentee records aside as
// outliers; centroid merging chains the parties together.
//
//	go run ./examples/votes
package main

import (
	"fmt"
	"log"

	"github.com/rockclust/rock"
)

func main() {
	d := rock.GenerateVotes(rock.VotesConfig{Seed: 42})

	fmt.Printf("dataset: %d records (%v)\n\n", d.Len(), d.ClassCounts())

	// ROCK: θ recalibrated for the synthetic data (see EXPERIMENTS.md),
	// with the paper's outlier handling.
	res, err := rock.ClusterDataset(d, rock.Config{
		Theta:        0.56,
		K:            2,
		MinNeighbors: 2,
		WeedAt:       0.03,
		WeedMaxSize:  2,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ROCK:")
	printComposition(d, res.Assign)
	ev := rock.Evaluate(res.Assign, d.Labels)
	fmt.Printf("  accuracy=%.3f ARI=%.3f outliers=%d\n\n", ev.Accuracy, ev.ARI, ev.Outliers)

	// The traditional comparator.
	trad, err := rock.Hierarchical(d.Trans, rock.HierarchicalConfig{K: 2, Linkage: rock.CentroidLinkage})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("traditional centroid hierarchical:")
	printComposition(d, trad.Assign)
	ev = rock.Evaluate(trad.Assign, d.Labels)
	fmt.Printf("  accuracy=%.3f ARI=%.3f\n", ev.Accuracy, ev.ARI)
}

func printComposition(d *rock.Dataset, assign []int) {
	classes, counts := rock.ContingencyTable(assign, d.Labels)
	k := 0
	for _, a := range assign {
		if a+1 > k {
			k = a + 1
		}
	}
	for ci := 0; ci < k; ci++ {
		fmt.Printf("  cluster %d:", ci)
		for j, cls := range classes {
			fmt.Printf(" %s=%d", cls, counts[ci][j])
		}
		fmt.Println()
	}
	out := 0
	for _, a := range assign {
		if a < 0 {
			out++
		}
	}
	if out > 0 {
		fmt.Printf("  outliers: %d\n", out)
	}
}
