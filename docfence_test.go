package rock_test

import (
	"fmt"
	"go/format"
	"os"
	"strings"
	"testing"
)

// docFenceFiles are the documents whose ```go fences the lint guards.
var docFenceFiles = []string{"README.md", "ARCHITECTURE.md"}

// goFences extracts the contents of every ```go fence, with the line
// number the fence opened on.
func goFences(doc string) []struct {
	line int
	code string
} {
	var out []struct {
		line int
		code string
	}
	lines := strings.Split(doc, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		start := i + 1
		var body []string
		for i++; i < len(lines) && strings.TrimSpace(lines[i]) != "```"; i++ {
			body = append(body, lines[i])
		}
		out = append(out, struct {
			line int
			code string
		}{start, strings.Join(body, "\n") + "\n"})
	}
	return out
}

// TestDocFencesGofmt is the doc-health lint CI runs: every Go code fence
// in README.md and ARCHITECTURE.md must parse as Go (a source file, or a
// list of declarations or statements) and already be in gofmt form —
// documentation examples are not allowed to rot into pseudo-code.
func TestDocFencesGofmt(t *testing.T) {
	for _, file := range docFenceFiles {
		doc, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		fences := goFences(string(doc))
		if file == "README.md" && len(fences) == 0 {
			t.Errorf("%s: no ```go fences found — the quick start should have at least one", file)
		}
		for _, f := range fences {
			formatted, err := format.Source([]byte(f.code))
			if err != nil {
				t.Errorf("%s: fence at line %d is not valid Go: %v\n%s", file, f.line, err, f.code)
				continue
			}
			if string(formatted) != f.code {
				t.Errorf("%s: fence at line %d is not gofmt-clean; want:\n%s\ngot:\n%s",
					file, f.line, formatted, f.code)
			}
		}
	}
}

// TestDocFenceExtractor pins the extractor itself, so a silent zero-fence
// pass cannot hide a broken scanner.
func TestDocFenceExtractor(t *testing.T) {
	doc := "x\n```go\na := 1\n```\ntext\n```\nnot go\n```\n```go\nb := 2\n```\n"
	fences := goFences(doc)
	if len(fences) != 2 {
		t.Fatalf("extracted %d fences, want 2", len(fences))
	}
	if fences[0].code != "a := 1\n" || fences[1].code != "b := 2\n" {
		t.Fatalf("wrong fence contents: %q", fmt.Sprint(fences))
	}
}
