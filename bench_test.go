package rock_test

// One benchmark per table and figure of the paper's evaluation (E1..E8)
// and per DESIGN.md ablation (A1..A5), each regenerating its experiment
// through the harness in quick mode — run `cmd/rockbench` for the
// paper-scale tables. Micro-benchmarks for the pipeline stages follow.

import (
	"bytes"
	"io"
	"runtime"
	"strconv"
	"testing"

	"github.com/rockclust/rock"
	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/expt"
	"github.com/rockclust/rock/internal/linkage"
	"github.com/rockclust/rock/internal/similarity"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := expt.Run(id, io.Discard, expt.Options{Quick: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1VotesTraditional(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2VotesROCK(b *testing.B)           { benchExperiment(b, "E2") }
func BenchmarkE3MushroomTraditional(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4MushroomROCK(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5Funds(b *testing.B)               { benchExperiment(b, "E5") }
func BenchmarkE6ScaleUp(b *testing.B)             { benchExperiment(b, "E6") }
func BenchmarkE7SampleQuality(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8Motivating(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkA1GoodnessAblation(b *testing.B)    { benchExperiment(b, "A1") }
func BenchmarkA2QROCK(b *testing.B)               { benchExperiment(b, "A2") }
func BenchmarkA3FTheta(b *testing.B)              { benchExperiment(b, "A3") }
func BenchmarkA4Outliers(b *testing.B)            { benchExperiment(b, "A4") }
func BenchmarkA5STIRR(b *testing.B)               { benchExperiment(b, "A5") }
func BenchmarkA6LSHNeighbors(b *testing.B)        { benchExperiment(b, "A6") }

// --- pipeline-stage micro-benchmarks ---

func benchBasket(n int) *rock.Dataset {
	return rock.GenerateBasket(rock.BasketConfig{
		Transactions:    n,
		Clusters:        10,
		TemplateItems:   15,
		TransactionSize: 12,
		Seed:            1,
	})
}

func BenchmarkJaccard(b *testing.B) {
	d := benchBasket(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rock.Jaccard(d.Trans[i%32], d.Trans[32+i%32])
	}
}

func BenchmarkNeighborsIndexed(b *testing.B) {
	for _, n := range []int{1000, 2000} {
		d := benchBasket(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				similarity.ComputeIndexed(d.Trans, 0.6, similarity.Options{})
			}
		})
	}
}

func BenchmarkNeighborsBrute(b *testing.B) {
	d := benchBasket(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		similarity.Compute(d.Trans, 0.6, similarity.Options{})
	}
}

func BenchmarkNeighborsLSH(b *testing.B) {
	for _, n := range []int{1000, 2000} {
		d := benchBasket(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				similarity.ComputeLSH(d.Trans, 0.6, similarity.LSHOptions{Seed: 1})
			}
		})
	}
}

func BenchmarkLinksSerial(b *testing.B) {
	for _, n := range []int{1000, 2000} {
		d := benchBasket(n)
		nb := similarity.ComputeIndexed(d.Trans, 0.6, similarity.Options{})
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				linkage.FromNeighbors(nb)
			}
		})
	}
}

func BenchmarkLinksParallel(b *testing.B) {
	workerCounts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		workerCounts = append(workerCounts, g)
	}
	for _, n := range []int{1000, 2000} {
		d := benchBasket(n)
		nb := similarity.ComputeIndexed(d.Trans, 0.6, similarity.Options{})
		for _, w := range workerCounts {
			b.Run(sizeName(n)+"/workers="+strconv.Itoa(w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					linkage.FromNeighborsCSR(nb, w)
				}
			})
		}
	}
}

// benchLabelFixture builds the labeling workload shared with the
// `rockbench -label` sweep: a strided sample of a basket dataset
// clustered with full ROCK, deterministic L_i sets carved from the
// clusters, and the remaining 4n/5 points as candidates (see
// expt.LabelFixture).
func benchLabelFixture(b *testing.B, n int) (ts []rock.Transaction, candidates []int, sets [][]int) {
	b.Helper()
	ts, candidates, sets, err := expt.LabelFixture(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	return ts, candidates, sets
}

func BenchmarkLabelReference(b *testing.B) {
	for _, n := range []int{2000, 10000} {
		ts, candidates, sets := benchLabelFixture(b, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.BenchLabelReference(ts, candidates, sets, 0.6, rock.MarketBasketF(0.6))
			}
		})
	}
}

func BenchmarkLabelIndexed(b *testing.B) {
	for _, n := range []int{2000, 10000} {
		ts, candidates, sets := benchLabelFixture(b, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.BenchLabelIndexed(ts, candidates, sets, 0.6, rock.MarketBasketF(0.6))
			}
		})
	}
}

func BenchmarkLabelParallel(b *testing.B) {
	workerCounts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		workerCounts = append(workerCounts, g)
	}
	for _, n := range []int{2000, 10000} {
		ts, candidates, sets := benchLabelFixture(b, n)
		for _, w := range workerCounts {
			b.Run(sizeName(n)+"/workers="+strconv.Itoa(w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					core.BenchLabelParallel(ts, candidates, sets, 0.6, rock.MarketBasketF(0.6), w)
				}
			})
		}
	}
}

// benchAssignFixture freezes a model from the labeling workload and
// returns it with the out-of-sample points as queries — the serving
// workload shared with the `rockbench -assign` sweep.
func benchAssignFixture(b *testing.B, n int) (*rock.Model, []rock.Transaction) {
	b.Helper()
	ts, candidates, sets, err := expt.LabelFixture(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.FreezeSets(ts, sets, nil, 0.6, rock.MarketBasketF(0.6), nil)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]rock.Transaction, len(candidates))
	for i, p := range candidates {
		queries[i] = ts[p]
	}
	return m, queries
}

func BenchmarkAssignReference(b *testing.B) {
	for _, n := range []int{2000, 10000} {
		m, queries := benchAssignFixture(b, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.BenchAssignReference(m, queries)
			}
		})
	}
}

func BenchmarkAssign(b *testing.B) {
	for _, n := range []int{2000, 10000} {
		m, queries := benchAssignFixture(b, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.AssignBatch(queries, 1)
			}
		})
	}
}

func BenchmarkAssignParallel(b *testing.B) {
	workerCounts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		workerCounts = append(workerCounts, g)
	}
	for _, n := range []int{2000, 10000} {
		m, queries := benchAssignFixture(b, n)
		for _, w := range workerCounts {
			b.Run(sizeName(n)+"/workers="+strconv.Itoa(w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m.AssignBatch(queries, w)
				}
			})
		}
	}
}

func BenchmarkModelSaveLoad(b *testing.B) {
	m, _ := benchAssignFixture(b, 2000)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		b.Fatal(err)
	}
	b.Run("save", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := m.Save(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.LoadModel(bytes.NewReader(buf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkClusterPipeline(b *testing.B) {
	for _, n := range []int{500, 1000, 2000} {
		d := benchBasket(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rock.Cluster(d.Trans, rock.Config{Theta: 0.6, K: 10, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterPipelineWorkers runs the full pipeline across worker
// counts. workers=1 is the all-serial baseline (the dispatcher always
// takes the serial engines at one worker); workers≥2 run the parallel
// link builder and batched merge engine, with MergeSerialBelow -1
// forcing the batched engine even below its crossover. Output is
// byte-identical across worker counts; only wall-clock may differ.
func BenchmarkClusterPipelineWorkers(b *testing.B) {
	d := benchBasket(2000)
	for _, w := range []int{1, 2, 4} {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			cfg := rock.Config{Theta: 0.6, K: 10, Seed: 1, Workers: w, MergeSerialBelow: -1}
			for i := 0; i < b.N; i++ {
				if _, err := rock.Cluster(d.Trans, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkClusterSampled(b *testing.B) {
	d := benchBasket(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rock.Cluster(d.Trans, rock.Config{Theta: 0.6, K: 10, SampleSize: 1000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQRock(b *testing.B) {
	d := benchBasket(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rock.QRock(d.Trans, rock.QRockConfig{Theta: 0.6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHierarchicalBaseline(b *testing.B) {
	d := benchBasket(400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rock.Hierarchical(d.Trans, rock.HierarchicalConfig{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKModesBaseline(b *testing.B) {
	d := rock.GenerateLabeled(rock.LabeledConfig{Records: 1000, Classes: 10, Seed: 1})
	records := rock.RecordsOf(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rock.KModes(records, rock.KModesConfig{K: 10, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(n int) string { return "n=" + strconv.Itoa(n) }
