package rock_test

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"

	"github.com/rockclust/rock"
)

// ExampleCluster clusters eight hand-built transactions into the two
// groups their shared items imply. Two transactions are θ-neighbors when
// their Jaccard similarity reaches Theta; clusters merge by the paper's
// link-based goodness until K remain.
func ExampleCluster() {
	ts := []rock.Transaction{
		rock.NewTransaction(1, 2, 3),
		rock.NewTransaction(1, 2, 4),
		rock.NewTransaction(1, 3, 4),
		rock.NewTransaction(2, 3, 4),
		rock.NewTransaction(5, 6, 7),
		rock.NewTransaction(5, 6, 8),
		rock.NewTransaction(5, 7, 8),
		rock.NewTransaction(6, 7, 8),
	}
	res, err := rock.Cluster(ts, rock.Config{Theta: 0.5, K: 2})
	if err != nil {
		panic(err)
	}
	for i, members := range res.Clusters {
		fmt.Printf("cluster %d: %v\n", i, members)
	}
	// Output:
	// cluster 0: [0 1 2 3]
	// cluster 1: [4 5 6 7]
}

// ExampleReadBasket parses the classic market-basket text format — one
// transaction per line, whitespace-separated items — and clusters the
// result. The vocabulary interns item tokens as dense ids, so clusters
// can be decoded back to item names.
func ExampleReadBasket() {
	basket := `milk bread butter
milk bread jam
bread butter jam
beer chips salsa
beer chips dip
chips salsa dip
`
	d, err := rock.ReadBasket(strings.NewReader(basket), rock.BasketOptions{})
	if err != nil {
		panic(err)
	}
	res, err := rock.ClusterDataset(d, rock.Config{Theta: 0.2, K: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d transactions over %d items in %d clusters\n",
		len(d.Trans), d.Vocab.Len(), res.K())
	for i, members := range res.Clusters {
		fmt.Printf("cluster %d: lines %v\n", i, members)
	}
	// Output:
	// 6 transactions over 8 items in 2 clusters
	// cluster 0: lines [0 1 2]
	// cluster 1: lines [3 4 5]
}

// ExampleConfig_sampling clusters a uniform random sample and assigns
// the remaining points in the labeling pass — the paper's recipe for
// datasets too large to cluster wholesale. Every phase is driven by
// Seed, so the run is reproducible.
func ExampleConfig_sampling() {
	d := rock.GenerateBasket(rock.BasketConfig{
		Transactions:    2000,
		Clusters:        4,
		TemplateItems:   15,
		TransactionSize: 12,
		Seed:            1,
	})
	res, err := rock.Cluster(d.Trans, rock.Config{
		Theta:      0.3,
		K:          4,
		SampleSize: 500, // cluster 500 points, label the other 1500
		Seed:       1,
	})
	if err != nil {
		panic(err)
	}
	assigned := 0
	for _, ci := range res.Assign {
		if ci >= 0 {
			assigned++
		}
	}
	fmt.Printf("sampled %d of %d; %d clusters; %d points assigned\n",
		res.Stats.Sampled, res.Stats.N, res.K(), assigned)
	// Output:
	// sampled 500 of 2000; 4 clusters; 2000 points assigned
}

// ExampleModel_assign freezes a clustering run into an immutable Model
// and serves assignment queries from it. Assign is goroutine-safe and
// bit-identical to the pipeline's labeling phase over the frozen
// subsets; AssignBatch shards queries across workers with byte-identical
// output for every worker count.
func ExampleModel_assign() {
	d := rock.GenerateBasket(rock.BasketConfig{
		Transactions:    1000,
		Clusters:        4,
		TemplateItems:   15,
		TransactionSize: 12,
		Seed:            3,
	})
	cfg := rock.Config{Theta: 0.3, K: 4, Seed: 3}
	res, err := rock.Cluster(d.Trans, cfg)
	if err != nil {
		panic(err)
	}
	model, err := rock.Freeze(d.Trans, res, cfg)
	if err != nil {
		panic(err)
	}
	assign := model.AssignBatch(d.Trans, 4) // any worker count: same output
	agree := 0
	for i, ci := range assign {
		if ci == res.Assign[i] {
			agree++
		}
	}
	fmt.Printf("model: k=%d labeled-points=%d\n", model.K(), model.LabeledPoints())
	fmt.Printf("%d of %d points assigned to their original cluster\n", agree, len(assign))
	// Output:
	// model: k=4 labeled-points=200
	// 1000 of 1000 points assigned to their original cluster
}

// ExampleModel_saveLoad persists a frozen model and reloads it in what
// could be another process: the file is versioned and checksummed, the
// round trip is byte-identical, and the loaded model answers queries
// exactly as the original — "cluster once, serve forever".
func ExampleModel_saveLoad() {
	d := rock.GenerateBasket(rock.BasketConfig{
		Transactions: 500,
		Clusters:     3,
		Seed:         4,
	})
	cfg := rock.Config{Theta: 0.35, K: 3, Seed: 4}
	res, err := rock.Cluster(d.Trans, cfg)
	if err != nil {
		panic(err)
	}
	// FreezeDataset also freezes the vocabulary, so a later process can
	// assign datasets read under their own vocabularies (AssignDataset).
	model, err := rock.FreezeDataset(d, res, cfg)
	if err != nil {
		panic(err)
	}
	var file bytes.Buffer // stands in for the model file on disk
	if err := model.Save(&file); err != nil {
		panic(err)
	}
	loaded, err := rock.LoadModel(&file)
	if err != nil {
		panic(err)
	}
	same := reflect.DeepEqual(model.AssignBatch(d.Trans, 1), loaded.AssignBatch(d.Trans, 2))
	fmt.Printf("reloaded: k=%d measure=%s\n", loaded.K(), loaded.MeasureName())
	fmt.Printf("identical assignments after the round trip: %v\n", same)
	// Output:
	// reloaded: k=3 measure=jaccard
	// identical assignments after the round trip: true
}

// ExampleConfig_workers runs the same clustering serially and with every
// phase parallel. Workers bounds the goroutines in the neighbor, link,
// and merge phases; results are byte-identical for every worker count —
// parallelism trades only wall-clock, never output.
func ExampleConfig_workers() {
	d := rock.GenerateBasket(rock.BasketConfig{
		Transactions:    1500,
		Clusters:        6,
		TemplateItems:   15,
		TransactionSize: 12,
		Seed:            2,
	})
	serial, err := rock.Cluster(d.Trans, rock.Config{Theta: 0.4, K: 6, Seed: 2, Workers: 1})
	if err != nil {
		panic(err)
	}
	parallel, err := rock.Cluster(d.Trans, rock.Config{
		Theta:   0.4,
		K:       6,
		Seed:    2,
		Workers: 4,
		// Force the parallel link builder and batched merge engine even
		// below their built-in crossovers, just for the demonstration.
		LinkSerialBelow:  -1,
		MergeSerialBelow: -1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d clusters; identical across worker counts: %v\n",
		parallel.K(), reflect.DeepEqual(serial, parallel))
	// Output:
	// 6 clusters; identical across worker counts: true
}
