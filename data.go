package rock

import (
	"io"

	"github.com/rockclust/rock/internal/dataset"
)

// Data-model types, re-exported.
type (
	// Item is an interned categorical token.
	Item = dataset.Item
	// Transaction is a sorted, duplicate-free set of items.
	Transaction = dataset.Transaction
	// Dataset binds transactions to an item vocabulary and optional
	// ground-truth labels and display names.
	Dataset = dataset.Dataset
	// Vocabulary interns string tokens as dense item ids.
	Vocabulary = dataset.Vocabulary
	// Record is one categorical tuple (one value per attribute).
	Record = dataset.Record
	// EncodeOptions control record→transaction encoding.
	EncodeOptions = dataset.EncodeOptions
	// CSVOptions control ReadCSV.
	CSVOptions = dataset.CSVOptions
	// BasketOptions control ReadBasket.
	BasketOptions = dataset.BasketOptions
	// Histogram is the item-frequency profile of a group of transactions
	// — a compact cluster summary.
	Histogram = dataset.Histogram
	// ItemCount pairs an item with its frequency in a histogram.
	ItemCount = dataset.ItemCount
)

// BuildHistogram profiles the transactions at the given indices — e.g. a
// Result cluster's members — as an item-frequency histogram.
func BuildHistogram(ts []Transaction, members []int) *Histogram {
	return dataset.BuildHistogram(ts, members)
}

// Missing is the conventional marker for a missing attribute value.
const Missing = dataset.Missing

// NewTransaction builds a canonical transaction from items.
func NewTransaction(items ...Item) Transaction { return dataset.NewTransaction(items...) }

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary { return dataset.NewVocabulary() }

// EncodeRecords converts categorical records to transactions of
// "attribute=value" items, the paper's reduction of categorical data to
// the market-basket domain. Missing values contribute no items unless
// opts.MissingAsValue is set.
func EncodeRecords(attrs []string, records []Record, labels []string, opts EncodeOptions) *Dataset {
	return dataset.EncodeRecords(attrs, records, labels, opts)
}

// DecodeRecord reverses EncodeRecords for one transaction.
func DecodeRecord(d *Dataset, t Transaction) Record { return dataset.DecodeRecord(d, t) }

// DefaultCSVOptions returns the options used by the command-line tools.
func DefaultCSVOptions() CSVOptions { return dataset.DefaultCSVOptions() }

// ReadCSV parses categorical records from CSV into a Dataset.
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) { return dataset.ReadCSV(r, opts) }

// WriteCSV writes a record-encoded dataset back to CSV.
func WriteCSV(w io.Writer, d *Dataset) error { return dataset.WriteCSV(w, d) }

// ReadBasket parses the market-basket text format: one transaction per
// line, whitespace-separated items.
func ReadBasket(r io.Reader, opts BasketOptions) (*Dataset, error) {
	return dataset.ReadBasket(r, opts)
}

// WriteBasket writes transactions in the basket text format.
func WriteBasket(w io.Writer, d *Dataset) error { return dataset.WriteBasket(w, d) }
