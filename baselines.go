package rock

import (
	"github.com/rockclust/rock/internal/baseline"
	"github.com/rockclust/rock/internal/stirr"
)

// Baseline types, re-exported for head-to-head comparisons against ROCK.
type (
	// Linkage selects the hierarchical cluster-distance rule.
	Linkage = baseline.Linkage
	// HierarchicalConfig parameterizes Hierarchical.
	HierarchicalConfig = baseline.HierarchicalConfig
	// BaselineResult is a flat clustering from a baseline algorithm.
	BaselineResult = baseline.Result
	// KModesConfig parameterizes KModes.
	KModesConfig = baseline.KModesConfig
	// KModesResult carries a k-modes clustering with its modes and cost.
	KModesResult = baseline.KModesResult
)

// Linkage rules for Hierarchical.
const (
	CentroidLinkage = baseline.Centroid
	AverageLinkage  = baseline.Average
	SingleLinkage   = baseline.Single
	CompleteLinkage = baseline.Complete
)

// Hierarchical runs traditional agglomerative clustering over the binary
// embedding of the transactions — the comparator of the paper's
// experiments.
func Hierarchical(ts []Transaction, cfg HierarchicalConfig) (*BaselineResult, error) {
	return baseline.Hierarchical(ts, cfg)
}

// HierarchicalSampled clusters a sample hierarchically and assigns the
// remaining points to the nearest centroid.
func HierarchicalSampled(ts []Transaction, sampleIdx []int, cfg HierarchicalConfig) (*BaselineResult, error) {
	return baseline.HierarchicalSampled(ts, sampleIdx, cfg)
}

// KModes runs Huang's k-modes algorithm over categorical records.
func KModes(records []Record, cfg KModesConfig) (*KModesResult, error) {
	return baseline.KModes(records, cfg)
}

// RecordsOf reconstructs the categorical records of a dataset built with
// EncodeRecords (for record-based algorithms like KModes and STIRR).
func RecordsOf(d *Dataset) []Record { return baseline.RecordsOf(d) }

// STIRR types, re-exported. STIRR is the weight-propagation dynamical
// system of Gibson, Kleinberg and Raghavan; the Revised option is the
// convergence-guaranteed linear iteration in the spirit of Zhang et al.
// (ICDE 2000).
type (
	// STIRRConfig parameterizes a STIRR run.
	STIRRConfig = stirr.Config
	// STIRRResult carries the converged weight vectors.
	STIRRResult = stirr.Result
)

// STIRR combiners.
const (
	STIRRSum     = stirr.Sum
	STIRRProduct = stirr.Product
)

// STIRR executes the dynamical system over categorical records.
func STIRR(records []Record, nattrs int, cfg STIRRConfig) (*STIRRResult, error) {
	return stirr.Run(records, nattrs, cfg)
}

// STIRRClusters splits records in two by the sign of their total weight
// under the given basin.
func STIRRClusters(res *STIRRResult, records []Record, basin int) []int {
	return stirr.ClusterRecords(res, records, basin)
}
