package rock_test

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/rockclust/rock"
)

// The façade must support the full quickstart flow with public names only.
func TestPublicQuickstart(t *testing.T) {
	in := "milk bread butter\nmilk bread eggs\nmilk butter eggs\nbeer chips salsa\nbeer chips dip\nbeer salsa dip\n"
	d, err := rock.ReadBasket(strings.NewReader(in), rock.BasketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rock.Cluster(d.Trans, rock.Config{Theta: 0.3, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 2 {
		t.Fatalf("k = %d", res.K())
	}
	if res.Assign[0] != res.Assign[1] || res.Assign[3] != res.Assign[5] || res.Assign[0] == res.Assign[3] {
		t.Fatalf("assignments wrong: %v", res.Assign)
	}
}

func TestPublicCSVPipeline(t *testing.T) {
	csv := "class,a,b\nx,1,2\nx,1,2\ny,8,9\ny,8,9\n"
	opts := rock.DefaultCSVOptions()
	opts.LabelCol = 0
	d, err := rock.ReadCSV(strings.NewReader(csv), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rock.ClusterDataset(d, rock.Config{Theta: 0.5, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	ev := rock.Evaluate(res.Assign, d.Labels)
	if ev.Accuracy != 1 {
		t.Fatalf("accuracy = %g", ev.Accuracy)
	}
	var buf bytes.Buffer
	if err := rock.WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "class") {
		t.Fatal("WriteCSV lost the label column")
	}
}

func TestPublicEncodeRecords(t *testing.T) {
	d := rock.EncodeRecords([]string{"p", "q"},
		[]rock.Record{{"1", "2"}, {"1", rock.Missing}}, []string{"a", "b"}, rock.EncodeOptions{})
	if d.Trans[1].Len() != 1 {
		t.Fatal("missing value not dropped")
	}
	rec := rock.DecodeRecord(d, d.Trans[1])
	if rec[1] != rock.Missing {
		t.Fatalf("DecodeRecord = %v", rec)
	}
}

func TestPublicMeasures(t *testing.T) {
	a := rock.NewTransaction(1, 2, 3)
	b := rock.NewTransaction(2, 3, 4)
	if got := rock.Jaccard(a, b); got != 0.5 {
		t.Fatalf("Jaccard = %g", got)
	}
	if rock.Dice(a, b) <= rock.Jaccard(a, b) {
		t.Fatal("Dice should exceed Jaccard on partial overlap")
	}
	if rock.Cosine(a, b) <= 0 || rock.Overlap(a, b) <= 0 {
		t.Fatal("measures broken")
	}
	if got := rock.AttributeMeasure(4)(a, b); got != 0.5 {
		t.Fatalf("AttributeMeasure = %g", got)
	}
}

func TestPublicGoodnessAndCriterion(t *testing.T) {
	if rock.MarketBasketF(0.5) != 1.0/3.0 {
		t.Fatal("MarketBasketF wrong")
	}
	if rock.ConstantF(0.2)(0.9) != 0.2 {
		t.Fatal("ConstantF wrong")
	}
	if rock.RockGoodness(5, 2, 3, 0.3) <= 0 {
		t.Fatal("RockGoodness should be positive")
	}
	if rock.LinkCountGoodness(5, 2, 3, 0.3) != 5 {
		t.Fatal("LinkCountGoodness wrong")
	}
	if rock.AverageLinkGoodness(6, 2, 3, 0.3) != 1 {
		t.Fatal("AverageLinkGoodness wrong")
	}
	links := func(i, j int) int { return 1 }
	if got := rock.Criterion([][]int{{0, 1}}, links, 0.5); got <= 0 {
		t.Fatalf("Criterion = %g", got)
	}
}

// The façade must support the full freeze → save → load → assign flow
// with public names only, including the errors.Is sentinels.
func TestPublicModelServing(t *testing.T) {
	d := rock.GenerateBasket(rock.BasketConfig{Transactions: 400, Clusters: 4, Seed: 9})
	cfg := rock.Config{Theta: 0.4, K: 4, Seed: 9}
	res, err := rock.Cluster(d.Trans, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := rock.FreezeDataset(d, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := rock.LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	serial := m.AssignBatch(d.Trans, 1)
	parallel := loaded.AssignBatch(d.Trans, 4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("assignment %d diverges across save/load and worker counts", i)
		}
		if loaded.Assign(d.Trans[i]) != serial[i] {
			t.Fatalf("Assign(%d) diverges from AssignBatch", i)
		}
	}
	if loaded.K() != res.K() || loaded.MeasureName() != "jaccard" {
		t.Fatalf("model metadata lost: %v", loaded)
	}
	if _, err := rock.LoadModel(strings.NewReader("not a model")); !errors.Is(err, rock.ErrModelTruncated) && !errors.Is(err, rock.ErrModelMagic) {
		t.Fatalf("garbage load error not a sentinel: %v", err)
	}
	if _, err := rock.Freeze(d.Trans, res, rock.Config{Theta: 0.4, K: 4, Measure: func(a, b rock.Transaction) float64 { return 1 }}); err == nil {
		t.Fatal("custom measure froze")
	}
}

func TestPublicChernoff(t *testing.T) {
	s := rock.ChernoffSampleSize(10000, 500, 0.5, 0.01)
	if s <= 0 || s > 10000 {
		t.Fatalf("bound = %d", s)
	}
}

func TestPublicQRock(t *testing.T) {
	d := rock.GenerateBasket(rock.BasketConfig{Transactions: 100, Clusters: 2, Seed: 4})
	res, err := rock.QRock(d.Trans, rock.QRockConfig{Theta: 0.25, MinClusterSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() < 2 {
		t.Fatalf("components = %d", res.K())
	}
}

func TestPublicBaselines(t *testing.T) {
	d := rock.GenerateLabeled(rock.LabeledConfig{Records: 80, Classes: 2, Noise: 0.05, Seed: 5})
	h, err := rock.Hierarchical(d.Trans, rock.HierarchicalConfig{K: 2, Linkage: rock.AverageLinkage})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Clusters) != 2 {
		t.Fatalf("hierarchical k = %d", len(h.Clusters))
	}
	records := rock.RecordsOf(d)
	km, err := rock.KModes(records, rock.KModesConfig{K: 2, Seed: 1, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(km.Clusters) != 2 || km.Cost < 0 {
		t.Fatalf("kmodes: %d clusters cost %d", len(km.Clusters), km.Cost)
	}
	sampled, err := rock.HierarchicalSampled(d.Trans, []int{0, 10, 20, 40, 50, 70}, rock.HierarchicalConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range sampled.Clusters {
		total += len(c)
	}
	if total != d.Len() {
		t.Fatalf("sampled labeling covered %d of %d", total, d.Len())
	}
}

func TestPublicSTIRR(t *testing.T) {
	// Asymmetric blocks: equal-sized symmetric blocks pair up the top
	// eigenvalues and stall the direction of the power iteration.
	records := []rock.Record{
		{"A1", "A2"}, {"A1", "A2"}, {"A1", "A2b"}, {"A1", "A2"},
		{"B1", "B2"}, {"B1", "B2"}, {"B1", "B2b"},
	}
	res, err := rock.STIRR(records, 2, rock.STIRRConfig{Revised: true, Seed: 1, Iters: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("revised STIRR did not converge")
	}
	assign := rock.STIRRClusters(res, records, 1)
	for i := 1; i < 4; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("A-block split: %v", assign)
		}
	}
	for i := 5; i < 7; i++ {
		if assign[i] != assign[4] {
			t.Fatalf("B-block split: %v", assign)
		}
	}
	if assign[0] == assign[4] {
		t.Fatalf("blocks merged: %v", assign)
	}
}

func TestPublicGeneratorsDeterministic(t *testing.T) {
	a := rock.GenerateVotes(rock.VotesConfig{Seed: 11})
	b := rock.GenerateVotes(rock.VotesConfig{Seed: 11})
	if a.Len() != 435 || b.Len() != 435 {
		t.Fatal("votes size wrong")
	}
	for i := range a.Trans {
		if !a.Trans[i].Equal(b.Trans[i]) {
			t.Fatal("generator not deterministic")
		}
	}
	if rock.FundSectorCount() < 2 || rock.MushroomSpeciesCount() != 22 {
		t.Fatal("universe constants wrong")
	}
}

func TestPublicEntropyAndContingency(t *testing.T) {
	assign := []int{0, 0, 1, 1}
	labels := []string{"a", "b", "a", "b"}
	if rock.ClusterEntropy(assign, labels) <= 0 {
		t.Fatal("mixed clustering should have positive entropy")
	}
	classes, counts := rock.ContingencyTable(assign, labels)
	if len(classes) != 2 || len(counts) != 2 {
		t.Fatal("contingency shape wrong")
	}
	if math.Abs(rock.Evaluate(assign, labels).Accuracy-0.5) > 1e-12 {
		t.Fatal("accuracy wrong")
	}
}
