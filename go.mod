module github.com/rockclust/rock

go 1.24
