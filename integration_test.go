package rock_test

import (
	"bytes"
	"testing"

	"github.com/rockclust/rock"
)

// The votes pipeline end to end: ROCK with outlier handling must beat the
// traditional centroid baseline on clustering error, produce two near-pure
// party clusters, and set aside a minority of records — the paper's E1/E2
// shape.
func TestIntegrationVotesShape(t *testing.T) {
	d := rock.GenerateVotes(rock.VotesConfig{Seed: 42})
	res, err := rock.ClusterDataset(d, rock.Config{
		Theta: 0.56, K: 2, MinNeighbors: 2, WeedAt: 0.03, WeedMaxSize: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 2 {
		t.Fatalf("k = %d", res.K())
	}
	evRock := rock.Evaluate(res.Assign, d.Labels)
	if evRock.Error > 0.25 {
		t.Fatalf("ROCK votes error %.3f too high", evRock.Error)
	}
	if evRock.Outliers == 0 || evRock.Outliers > d.Len()/5 {
		t.Fatalf("outliers = %d, want a small minority", evRock.Outliers)
	}
	// Each cluster near-pure.
	for ci, members := range res.Clusters {
		counts := map[string]int{}
		for _, p := range members {
			counts[d.Labels[p]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		if purity := float64(best) / float64(len(members)); purity < 0.75 {
			t.Fatalf("cluster %d purity %.3f", ci, purity)
		}
	}

	trad, err := rock.Hierarchical(d.Trans, rock.HierarchicalConfig{K: 2, Linkage: rock.CentroidLinkage})
	if err != nil {
		t.Fatal(err)
	}
	evTrad := rock.Evaluate(trad.Assign, d.Labels)
	if evRock.Error >= evTrad.Error {
		t.Fatalf("ROCK error %.3f not below traditional %.3f", evRock.Error, evTrad.Error)
	}
	if evRock.ARI <= evTrad.ARI {
		t.Fatalf("ROCK ARI %.3f not above traditional %.3f", evRock.ARI, evTrad.ARI)
	}
}

// The mushroom pipeline with sampling + labeling: wildly uneven near-pure
// clusters, early stop past k, at most a couple of mixed clusters — the
// paper's E4 shape at reduced sample scale.
func TestIntegrationMushroomSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("mushroom integration is a second-scale test")
	}
	d := rock.GenerateMushroom(rock.MushroomConfig{Seed: 7})
	res, err := rock.ClusterDataset(d, rock.Config{
		Theta: 0.8, K: 20, SampleSize: 900, MinNeighbors: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := rock.Evaluate(res.Assign, d.Labels)
	if ev.Error > 0.08 {
		t.Fatalf("mushroom error %.3f", ev.Error)
	}
	if res.K() < 18 {
		t.Fatalf("found only %d clusters", res.K())
	}
	mixed := 0
	var sizes []int
	for _, members := range res.Clusters {
		e, p := 0, 0
		for _, pt := range members {
			if d.Labels[pt] == "edible" {
				e++
			} else {
				p++
			}
		}
		if e > 0 && p > 0 {
			mixed++
		}
		sizes = append(sizes, len(members))
	}
	if mixed > 3 {
		t.Fatalf("%d mixed clusters, want ≤ 3", mixed)
	}
	// Size skew: largest cluster must dwarf the smallest.
	minS, maxS := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if maxS < 10*minS {
		t.Fatalf("sizes not skewed: min %d max %d", minS, maxS)
	}
}

// The fund universe clusters perfectly by sector at θ=0.8.
func TestIntegrationFunds(t *testing.T) {
	d := rock.GenerateFunds(rock.FundsConfig{Days: 300, Seed: 9})
	res, err := rock.ClusterDataset(d, rock.Config{
		Theta: 0.8, K: rock.FundSectorCount(), MinNeighbors: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := rock.Evaluate(res.Assign, d.Labels)
	if ev.Accuracy < 0.97 {
		t.Fatalf("fund sector accuracy %.3f", ev.Accuracy)
	}
}

// Round-trip: a dataset written to the basket format and read back
// clusters identically.
func TestIntegrationBasketRoundTrip(t *testing.T) {
	d := rock.GenerateBasket(rock.BasketConfig{Transactions: 200, Clusters: 3, Seed: 6})
	var buf bytes.Buffer
	if err := rock.WriteBasket(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := rock.ReadBasket(&buf, rock.BasketOptions{FirstTokenIsLabel: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := rock.Config{Theta: 0.3, K: 3, Seed: 2}
	a, err := rock.ClusterDataset(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rock.ClusterDataset(d2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.K() != b.K() {
		t.Fatalf("cluster counts differ after round trip: %d vs %d", a.K(), b.K())
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("assignments differ after round trip")
		}
	}
}

// Bit-for-bit determinism of the full pipeline through the public API.
func TestIntegrationDeterminism(t *testing.T) {
	d := rock.GenerateLabeled(rock.LabeledConfig{Records: 300, Classes: 3, Seed: 8})
	cfg := rock.Config{Theta: 0.35, K: 3, SampleSize: 120, MinNeighbors: 1, WeedAt: 0.1, Seed: 99}
	a, err := rock.ClusterDataset(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		b, err := rock.ClusterDataset(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Assign {
			if a.Assign[i] != b.Assign[i] {
				t.Fatalf("trial %d: nondeterministic at point %d", trial, i)
			}
		}
	}
}

// The labeling phase's stats ledger must reconcile exactly with the
// observable output: every candidate entering the phase is either labeled
// into a cluster or emitted as an outlier, and the cluster mass grows by
// exactly the labeled count. Regression test for the Labeled /
// LabelCandidates counters (Unlabeled used to be the only observable).
func TestIntegrationLabelingLedger(t *testing.T) {
	d := rock.GenerateBasket(rock.BasketConfig{Transactions: 2500, Clusters: 5, TemplateItems: 15, TransactionSize: 10, Seed: 12})
	for _, labelOutliers := range []bool{false, true} {
		res, err := rock.ClusterDataset(d, rock.Config{
			Theta: 0.4, K: 5, SampleSize: 600, MinNeighbors: 2, WeedAt: 0.2, Seed: 4,
			LabelOutliers: labelOutliers,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := res.Stats
		if s.Labeled+s.Unlabeled != s.LabelCandidates {
			t.Fatalf("labelOutliers=%v: Labeled %d + Unlabeled %d != LabelCandidates %d",
				labelOutliers, s.Labeled, s.Unlabeled, s.LabelCandidates)
		}
		wantCandidates := s.N - s.Sampled
		wantOutliers := s.Pruned + s.Weeded + s.Unlabeled
		if labelOutliers {
			// Pruned and weeded sample points re-enter as candidates…
			wantCandidates += s.Pruned + s.Weeded
			// …so the only terminal outliers are the unlabeled.
			wantOutliers = s.Unlabeled
		}
		if s.LabelCandidates != wantCandidates {
			t.Fatalf("labelOutliers=%v: LabelCandidates = %d, want %d (N %d, Sampled %d, Pruned %d, Weeded %d)",
				labelOutliers, s.LabelCandidates, wantCandidates, s.N, s.Sampled, s.Pruned, s.Weeded)
		}
		if len(res.Outliers) != wantOutliers {
			t.Fatalf("labelOutliers=%v: len(Outliers) = %d, want %d", labelOutliers, len(res.Outliers), wantOutliers)
		}
		clustered := 0
		for _, members := range res.Clusters {
			clustered += len(members)
		}
		// Cluster growth: the agglomerated sample mass plus exactly the
		// labeled candidates.
		sampleMass := s.Sampled - s.Pruned - s.Weeded
		if clustered != sampleMass+s.Labeled {
			t.Fatalf("labelOutliers=%v: clustered mass %d != sample mass %d + labeled %d",
				labelOutliers, clustered, sampleMass, s.Labeled)
		}
		if clustered+len(res.Outliers) != s.N {
			t.Fatalf("labelOutliers=%v: clustered %d + outliers %d != N %d",
				labelOutliers, clustered, len(res.Outliers), s.N)
		}
		if s.LabelCandidates == 0 || s.Labeled == 0 {
			t.Fatalf("labelOutliers=%v: degenerate fixture (candidates %d, labeled %d) — the ledger was not exercised",
				labelOutliers, s.LabelCandidates, s.Labeled)
		}
	}
}

// The sampling + labeling pipeline degrades gracefully: a larger sample
// never makes the clustering dramatically worse (E7's monotone trend, in
// coarse form).
func TestIntegrationSampleQualityTrend(t *testing.T) {
	d := rock.GenerateBasket(rock.BasketConfig{Transactions: 3000, Clusters: 5, TemplateItems: 15, TransactionSize: 10, Seed: 10})
	var errs []float64
	for _, n := range []int{300, 1200} {
		res, err := rock.ClusterDataset(d, rock.Config{Theta: 0.4, K: 5, SampleSize: n, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, rock.Evaluate(res.Assign, d.Labels).Error)
	}
	if errs[1] > errs[0]+0.05 {
		t.Fatalf("larger sample much worse: %.3f -> %.3f", errs[0], errs[1])
	}
}
