package bitset

import (
	"math/rand"
	"testing"
)

func TestSetGetClear(t *testing.T) {
	s := New(130) // crosses word boundaries
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("Get(%d) false after Set", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Clear(64)
	if s.Get(64) || s.Count() != 7 {
		t.Fatal("Clear failed")
	}
	if s.Get(2) {
		t.Fatal("unset bit reads true")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, f := range []func(){func() { s.Set(10) }, func() { s.Get(-1) }, func() { s.Clear(99) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAndOrCounts(t *testing.T) {
	a, b := New(200), New(200)
	for i := 0; i < 200; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 200; i += 3 {
		b.Set(i)
	}
	// multiples of 6 in [0,200): 34 values (0..198).
	if got := a.AndCount(b); got != 34 {
		t.Fatalf("AndCount = %d, want 34", got)
	}
	// |A|=100, |B|=67, |A∩B|=34 → union 133.
	if got := a.OrCount(b); got != 133 {
		t.Fatalf("OrCount = %d, want 133", got)
	}
}

func TestMismatchedCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched capacities")
		}
	}()
	New(10).AndCount(New(20))
}

func TestOrAndCloneAndOnes(t *testing.T) {
	a, b := New(70), New(70)
	a.Set(1)
	b.Set(69)
	c := a.Clone()
	a.Or(b)
	if !a.Get(69) || !a.Get(1) {
		t.Fatal("Or failed")
	}
	if c.Get(69) {
		t.Fatal("Clone not independent")
	}
	ones := a.Ones()
	if len(ones) != 2 || ones[0] != 1 || ones[1] != 69 {
		t.Fatalf("Ones = %v", ones)
	}
}

func TestAgainstMapModel(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	const n = 300
	s := New(n)
	model := map[int]bool{}
	for step := 0; step < 4000; step++ {
		i := r.Intn(n)
		if r.Intn(2) == 0 {
			s.Set(i)
			model[i] = true
		} else {
			s.Clear(i)
			delete(model, i)
		}
	}
	if s.Count() != len(model) {
		t.Fatalf("Count = %d, model %d", s.Count(), len(model))
	}
	for i := 0; i < n; i++ {
		if s.Get(i) != model[i] {
			t.Fatalf("bit %d: set %v model %v", i, s.Get(i), model[i])
		}
	}
	for _, i := range s.Ones() {
		if !model[i] {
			t.Fatalf("Ones reported unset bit %d", i)
		}
	}
}
