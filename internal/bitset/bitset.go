// Package bitset provides a fixed-size bit set with the population-count
// operations needed for dense link computation (link(p,q) is the popcount
// of the AND of two neighbor rows) and for binary encodings of
// transactions in the centroid baseline.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. The zero value has capacity 0; use New.
type Set struct {
	words []uint64
	n     int
}

// New returns a set of capacity n bits, all clear.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len reports the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set turns bit i on. It panics if i is out of range, mirroring slice
// indexing.
func (s *Set) Set(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear turns bit i off.
func (s *Set) Clear(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports whether bit i is on.
func (s *Set) Get(i int) bool {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AndCount returns |s ∩ t| without allocating. The sets must have the same
// capacity.
func (s *Set) AndCount(t *Set) int {
	if s.n != t.n {
		panic("bitset: mismatched capacities")
	}
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & t.words[i])
	}
	return c
}

// OrCount returns |s ∪ t|.
func (s *Set) OrCount(t *Set) int {
	if s.n != t.n {
		panic("bitset: mismatched capacities")
	}
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w | t.words[i])
	}
	return c
}

// Or sets s to s ∪ t.
func (s *Set) Or(t *Set) {
	if s.n != t.n {
		panic("bitset: mismatched capacities")
	}
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Ones returns the indices of set bits in ascending order.
func (s *Set) Ones() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}
