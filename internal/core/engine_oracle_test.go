package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/linkage"
	"github.com/rockclust/rock/internal/similarity"
)

// asymGoodness depends asymmetrically on the cluster sizes: it pins down
// the arena engine's size-argument convention (more recently created
// cluster first), which the symmetric built-ins cannot distinguish.
func asymGoodness(links int, ni, nj int, f float64) float64 {
	return float64(links) / (float64(ni) + 0.5*float64(nj) + f)
}

// oracleWorkerCounts are the worker counts every oracle configuration
// exercises through the batched engine, per the acceptance criteria.
var oracleWorkerCounts = []int{1, 2, 4, 8}

// checkEnginesAgree runs the arena engine, the map-based reference, and
// the parallel batched engine (at every oracle worker count) on one
// configuration and fails on any divergence, field by field.
func checkEnginesAgree(t *testing.T, label string, n int, lt *linkage.Compact, k int, good GoodnessFunc, f float64, weedTrigger, weedMaxSize int, trace bool) {
	t.Helper()
	ref := agglomerateMap(n, lt, k, good, f, weedTrigger, weedMaxSize, trace)
	arena := agglomerate(n, lt, k, good, f, weedTrigger, weedMaxSize, trace)
	checkResultsEqual(t, label+" [arena]", &arena, &ref)
	for _, workers := range oracleWorkerCounts {
		par := agglomerateParallel(n, lt, k, good, f, weedTrigger, weedMaxSize, trace, workers)
		checkResultsEqual(t, fmt.Sprintf("%s [batched workers=%d]", label, workers), &par, &ref)
	}
}

// checkResultsEqual fails on any field-level divergence between an
// engine's result and the reference's.
func checkResultsEqual(t *testing.T, label string, got, ref *engineResult) {
	t.Helper()
	if !reflect.DeepEqual(got.clusters, ref.clusters) {
		t.Fatalf("%s: clusters diverge\ngot: %v\nref: %v", label, got.clusters, ref.clusters)
	}
	if !reflect.DeepEqual(got.weeded, ref.weeded) {
		t.Fatalf("%s: weeded diverge: got %v, ref %v", label, got.weeded, ref.weeded)
	}
	if got.merges != ref.merges {
		t.Fatalf("%s: merges %d vs %d", label, got.merges, ref.merges)
	}
	if got.stoppedEarly != ref.stoppedEarly {
		t.Fatalf("%s: stoppedEarly %v vs %v", label, got.stoppedEarly, ref.stoppedEarly)
	}
	if !reflect.DeepEqual(got.trace, ref.trace) {
		if len(got.trace) != len(ref.trace) {
			t.Fatalf("%s: trace length %d vs %d", label, len(got.trace), len(ref.trace))
		}
		for i := range got.trace {
			if got.trace[i] != ref.trace[i] {
				t.Fatalf("%s: trace step %d diverges\ngot: %+v\nref: %+v", label, i, got.trace[i], ref.trace[i])
			}
		}
	}
}

// TestEngineOracleRandom proves the arena engine byte-identical to the
// map-based reference across ≥50 seeded configurations varying n, the
// link structure, k, f(θ), the goodness function (including an asymmetric
// one), weeding, and tracing.
func TestEngineOracleRandom(t *testing.T) {
	goodFuncs := []struct {
		name string
		fn   GoodnessFunc
	}{
		{"rock", RockGoodness},
		{"linkcount", LinkCountGoodness},
		{"avglink", AverageLinkGoodness},
		{"asym", asymGoodness},
	}
	for seed := int64(0); seed < 64; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(120)
		lt := randomLinkTable(r, n)
		k := 1 + r.Intn(6)
		theta := 0.05 + 0.9*r.Float64()
		f := MarketBasketF(theta)
		good := goodFuncs[int(seed)%len(goodFuncs)]
		weedTrigger, weedMaxSize := 0, 0
		if seed%2 == 1 {
			weedTrigger = 1 + r.Intn(n)
			weedMaxSize = 1 + r.Intn(3)
		}
		trace := seed%3 != 0
		label := fmt.Sprintf("seed=%d n=%d k=%d good=%s weed=%d/%d trace=%v",
			seed, n, k, good.name, weedTrigger, weedMaxSize, trace)
		checkEnginesAgree(t, label, n, lt, k, good.fn, f, weedTrigger, weedMaxSize, trace)
	}
}

// TestEngineOracleDense exercises the engines on denser structured link
// tables than the sparse random ones above: cliques with noise edges,
// where long merge chains and frequent best-partner invalidations stress
// the incremental repair paths.
func TestEngineOracleDense(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 30 + r.Intn(40)
		groups := 2 + r.Intn(4)
		tb := &linkage.Table{Adj: make([]map[int32]int32, n)}
		for i := 0; i < n; i++ {
			tb.Adj[i] = make(map[int32]int32)
		}
		link := func(i, j, c int) {
			if i != j {
				tb.Adj[i][int32(j)] = int32(c)
				tb.Adj[j][int32(i)] = int32(c)
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if i%groups == j%groups {
					link(i, j, 1+r.Intn(4))
				}
			}
		}
		for e := 0; e < n/2; e++ {
			link(r.Intn(n), r.Intn(n), 1+r.Intn(2))
		}
		lt := linkage.CompactFrom(tb)
		label := fmt.Sprintf("dense seed=%d n=%d groups=%d", seed, n, groups)
		checkEnginesAgree(t, label, n, lt, groups, RockGoodness, 1.0/3.0, 0, 0, true)
		checkEnginesAgree(t, label+" weed", n, lt, groups, RockGoodness, 1.0/3.0, n/2, 2, true)
	}
}

// TestEngineOraclePipelineData runs both engines on link tables produced
// by the real pipeline (θ-neighbors of transaction data) rather than
// synthetic adjacency.
func TestEngineOraclePipelineData(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		n := 40 + r.Intn(60)
		ts := make([]dataset.Transaction, n)
		for i := range ts {
			items := make([]dataset.Item, 2+r.Intn(6))
			for k := range items {
				items[k] = dataset.Item(r.Intn(18))
			}
			ts[i] = dataset.NewTransaction(items...)
		}
		theta := 0.2 + 0.3*r.Float64()
		nb := similarity.Compute(ts, theta, similarity.Options{})
		lt := linkage.Build(nb, linkage.Options{})
		label := fmt.Sprintf("pipeline trial=%d n=%d theta=%.2f", trial, n, theta)
		checkEnginesAgree(t, label, n, lt, 1+r.Intn(4), RockGoodness, MarketBasketF(theta), 0, 0, true)
	}
}

// TestAddCountsOverflow: an aggregated cross-link count past int32 must
// fail loudly, never wrap into a corrupt goodness value.
func TestAddCountsOverflow(t *testing.T) {
	if got := addCounts(1<<30, 1<<30-1); got != 1<<31-1 {
		t.Fatalf("addCounts at the boundary = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing addCounts did not panic")
		}
	}()
	addCounts(1<<30, 1<<30)
}

// staleScenarioTable builds the link structure for the stale-entry
// regression tests: cliques A={0,1,2}, B={3,4,5}, C={8,9,10} (links 2
// within), a straggler pair {6,7} with the strongest links in the graph,
// and weak bridges 6–0 and 3–8. The straggler merges first (goodness
// ≈7.66 vs ≈1.70 for clique pairs), the cliques complete over the next
// six merges, and at 4 active clusters weeding discards {6,7} — while the
// heap array still physically holds its superseded entries plus the
// invalidated entries of cluster A, whose only remaining link the weed
// severed. The pops that follow must skip all of them.
func staleScenarioTable() (int, *linkage.Compact) {
	pairs := map[[2]int]int{
		{0, 1}: 2, {0, 2}: 2, {1, 2}: 2,
		{3, 4}: 2, {3, 5}: 2, {4, 5}: 2,
		{8, 9}: 2, {8, 10}: 2, {9, 10}: 2,
		{6, 7}: 9,
		{6, 0}: 1, {3, 8}: 1,
	}
	return 11, tableFromPairs(11, pairs)
}

// TestEngineStaleGlobalEntryRegression pins the replacement of the
// reference engine's defensive `continue` (popping a global entry whose
// cluster lost all links): under the lazy heap such entries are
// superseded in place and must never surface. Weeding fires with the
// straggler's entries still inside the heap array and empties cluster A's
// row; the next pop has to discard those stale entries and still find the
// live B–C pair, matching the reference engine exactly.
func TestEngineStaleGlobalEntryRegression(t *testing.T) {
	n, lt := staleScenarioTable()
	res := agglomerate(n, lt, 2, RockGoodness, 1.0/3.0, 4, 2, false)
	ref := agglomerateMap(n, lt, 2, RockGoodness, 1.0/3.0, 4, 2, false)
	if !reflect.DeepEqual(res.clusters, ref.clusters) || !reflect.DeepEqual(res.weeded, ref.weeded) {
		t.Fatalf("arena %v/%v, reference %v/%v", res.clusters, res.weeded, ref.clusters, ref.weeded)
	}
	if !reflect.DeepEqual(res.weeded, []int{6, 7}) {
		t.Fatalf("weeded = %v, want the straggler pair", res.weeded)
	}
	want := [][]int{{0, 1, 2}, {3, 4, 5, 8, 9, 10}}
	if !reflect.DeepEqual(res.clusters, want) {
		t.Fatalf("clusters = %v, want %v", res.clusters, want)
	}
	if res.stoppedEarly || ref.stoppedEarly {
		t.Fatal("run must reach k=2 without stopping early")
	}
}

// TestEngineStaleEntriesExhaustHeap drives the same scenario to k=1: once
// B and C merge, only stale and invalidated entries remain in the lazy
// heap's array (cluster A has no links left), so the engine must report
// stoppedEarly rather than popping a dead cluster — the exact situation
// the reference engine's defensive branch guarded against.
func TestEngineStaleEntriesExhaustHeap(t *testing.T) {
	n, lt := staleScenarioTable()
	res := agglomerate(n, lt, 1, RockGoodness, 1.0/3.0, 4, 2, false)
	ref := agglomerateMap(n, lt, 1, RockGoodness, 1.0/3.0, 4, 2, false)
	if !res.stoppedEarly || !ref.stoppedEarly {
		t.Fatalf("stoppedEarly: arena %v, reference %v — want both true", res.stoppedEarly, ref.stoppedEarly)
	}
	if !reflect.DeepEqual(res.clusters, ref.clusters) || !reflect.DeepEqual(res.weeded, ref.weeded) {
		t.Fatalf("arena %v/%v, reference %v/%v", res.clusters, res.weeded, ref.clusters, ref.weeded)
	}
	if len(res.clusters) != 2 {
		t.Fatalf("clusters = %v, want the two unlinked survivors", res.clusters)
	}
}
