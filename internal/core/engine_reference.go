package core

import (
	"sort"

	"github.com/rockclust/rock/internal/linkage"
	"github.com/rockclust/rock/internal/pqueue"
)

// This file preserves the original map-based agglomeration engine —
// map[int]*clus cluster storage, per-cluster link maps rebuilt on every
// merge, one indexed heap per cluster plus a global heap — as the oracle
// the arena engine (engine.go) is verified against, and as the "before"
// side of BenchmarkAgglomerateMap and the `rockbench -merge` sweep. It is
// not called by the production pipeline.

// mapClus is one active cluster in the reference agglomeration: its
// members (local point indices), its cross-link counts to every other
// linked cluster, and a local max-heap of those clusters ordered by merge
// goodness — the paper's q[i].
type mapClus struct {
	size    int
	members []int32
	links   map[int]int
	heap    *pqueue.Heap
}

// agglomerateMap is the reference implementation of agglomerate: the
// paper's algorithm transcribed directly. A global heap holds, for every
// cluster, the goodness of its best local pair; each merge rebuilds the
// merged cluster's link map as the sum of its parents' and updates both
// heaps of every affected cluster — O(n² log n) worst case, with heavy
// allocation traffic (a fresh cluster struct, link map, and heap per
// merge).
func agglomerateMap(n int, lt *linkage.Compact, k int, good GoodnessFunc, f float64, weedTrigger, weedMaxSize int, trace bool) engineResult {
	clusters := make(map[int]*mapClus, n)
	global := pqueue.New()
	for i := 0; i < n; i++ {
		clusters[i] = &mapClus{
			size:    1,
			members: []int32{int32(i)},
			links:   make(map[int]int, lt.Degree(i)),
			heap:    pqueue.New(),
		}
	}
	for i := 0; i < n; i++ {
		c := clusters[i]
		lt.Row(i, func(j, cnt int) {
			c.links[j] = cnt
			c.heap.Set(j, good(cnt, 1, 1, f))
		})
		updateGlobal(global, i, c)
	}

	var res engineResult
	nextID := n
	active := n
	weedDone := weedTrigger <= 0

	for active > k {
		u, g, ok := global.Pop()
		if !ok || g <= 0 {
			res.stoppedEarly = true
			break
		}
		cu := clusters[u]
		v, _, ok := cu.heap.Peek()
		if !ok {
			continue // defensively skip clusters that lost all links
		}
		cv := clusters[v]
		global.Remove(v)

		w := nextID
		nextID++
		if trace {
			res.trace = append(res.trace, MergeStep{
				A: u, B: v, Into: w,
				Goodness: g, Links: cu.links[v],
				SizeA: cu.size, SizeB: cv.size,
				Remaining: active - 1,
			})
		}
		cw := &mapClus{
			size:    cu.size + cv.size,
			members: append(cu.members, cv.members...),
			links:   make(map[int]int, len(cu.links)+len(cv.links)),
			heap:    pqueue.New(),
		}
		for x, cnt := range cu.links {
			if x != v {
				cw.links[x] = cnt
			}
		}
		for x, cnt := range cv.links {
			if x != u {
				cw.links[x] += cnt
			}
		}
		delete(clusters, u)
		delete(clusters, v)
		clusters[w] = cw

		for x, cnt := range cw.links {
			cx := clusters[x]
			delete(cx.links, u)
			delete(cx.links, v)
			cx.links[w] = cnt
			cx.heap.Remove(u)
			cx.heap.Remove(v)
			gx := good(cnt, cw.size, cx.size, f)
			cx.heap.Set(w, gx)
			cw.heap.Set(x, gx)
			updateGlobal(global, x, cx)
		}
		updateGlobal(global, w, cw)

		active--
		res.merges++

		if !weedDone && active <= weedTrigger {
			weedDone = true
			active -= weedMap(clusters, global, weedMaxSize, &res)
		}
	}

	// Collect surviving clusters deterministically: members ascending,
	// clusters ordered by their smallest member.
	for _, c := range clusters {
		m := make([]int, len(c.members))
		for i, v := range c.members {
			m[i] = int(v)
		}
		sort.Ints(m)
		res.clusters = append(res.clusters, m)
	}
	sort.Slice(res.clusters, func(i, j int) bool { return res.clusters[i][0] < res.clusters[j][0] })
	sort.Ints(res.weeded)
	return res
}

// weedMap removes clusters of size ≤ maxSize, detaching them from every
// surviving cluster's link map and heaps. It returns the number of
// clusters removed.
func weedMap(clusters map[int]*mapClus, global *pqueue.Heap, maxSize int, res *engineResult) int {
	var victims []int
	for id, c := range clusters {
		if c.size <= maxSize {
			victims = append(victims, id)
		}
	}
	sort.Ints(victims)
	for _, id := range victims {
		c := clusters[id]
		for _, m := range c.members {
			res.weeded = append(res.weeded, int(m))
		}
		for x := range c.links {
			cx, ok := clusters[x]
			if !ok {
				continue // x is itself a victim already removed
			}
			delete(cx.links, id)
			cx.heap.Remove(id)
			updateGlobal(global, x, cx)
		}
		global.Remove(id)
		delete(clusters, id)
	}
	return len(victims)
}

// updateGlobal synchronizes cluster x's entry in the global heap with the
// top of its local heap.
func updateGlobal(global *pqueue.Heap, x int, c *mapClus) {
	if _, p, ok := c.heap.Peek(); ok {
		global.Set(x, p)
	} else {
		global.Remove(x)
	}
}

// BenchAgglomerateMap runs the reference engine over a prebuilt CSR link
// table, exported for the `rockbench -merge` sweep (internal/expt); the
// production pipeline never calls it.
func BenchAgglomerateMap(n int, lt *linkage.Compact, k int, f float64) (clusters, merges int) {
	res := agglomerateMap(n, lt, k, RockGoodness, f, 0, 0, false)
	return len(res.clusters), res.merges
}
