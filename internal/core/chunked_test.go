package core

import (
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

func TestChunkedClusterRecoversGroups(t *testing.T) {
	// Interleave three groups so every chunk sees all of them.
	tsA, truthA := groupedData(3, 120, 71)
	ts := make([]dataset.Transaction, 0, len(tsA))
	truth := make([]int, 0, len(truthA))
	for i := 0; i < 120; i++ {
		for g := 0; g < 3; g++ {
			ts = append(ts, tsA[g*120+i])
			truth = append(truth, g)
		}
	}
	res, err := ChunkedCluster(ts, ChunkedConfig{
		Base:      Config{Theta: 0.3, K: 3, Seed: 5},
		ChunkSize: 60,
		Reps:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, len(ts))
	if res.K() != 3 {
		t.Fatalf("found %d clusters, want 3", res.K())
	}
	mis := 0
	for _, members := range res.Clusters {
		counts := map[int]int{}
		for _, p := range members {
			counts[truth[p]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		mis += len(members) - best
	}
	if mis > len(ts)/50 {
		t.Fatalf("%d of %d points misassigned", mis, len(ts))
	}
}

func TestChunkedClusterDeterminism(t *testing.T) {
	ts, _ := groupedData(2, 80, 73)
	cfg := ChunkedConfig{Base: Config{Theta: 0.3, K: 2, Seed: 9}, ChunkSize: 50}
	a, err := ChunkedCluster(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChunkedCluster(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("chunked clustering nondeterministic")
		}
	}
}

func TestChunkedClusterValidation(t *testing.T) {
	ts, _ := groupedData(1, 10, 74)
	if _, err := ChunkedCluster(ts, ChunkedConfig{Base: Config{Theta: 0.3, K: 1}, ChunkSize: 1}); err == nil {
		t.Fatal("chunk size 1 accepted")
	}
	if _, err := ChunkedCluster(ts, ChunkedConfig{Base: Config{Theta: 2, K: 1}, ChunkSize: 5}); err == nil {
		t.Fatal("invalid base config accepted")
	}
	res, err := ChunkedCluster(nil, ChunkedConfig{Base: Config{Theta: 0.3, K: 2}, ChunkSize: 5})
	if err != nil || res.K() != 0 {
		t.Fatal("empty input mishandled")
	}
}

func TestChunkedClusterOutliersPropagate(t *testing.T) {
	ts, _ := groupedData(2, 30, 75)
	// Junk points with unique items in every chunk position.
	for j := 0; j < 6; j++ {
		ts = append(ts, dataset.NewTransaction(dataset.Item(900+2*j), dataset.Item(901+2*j)))
	}
	res, err := ChunkedCluster(ts, ChunkedConfig{
		Base:      Config{Theta: 0.3, K: 2, MinNeighbors: 2, Seed: 3},
		ChunkSize: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, len(ts))
	if len(res.Outliers) < 6 {
		t.Fatalf("outliers = %d, want ≥ 6 junk points", len(res.Outliers))
	}
}

// ChunkedCluster folds every sub-run's LSH quality ledger (per-chunk
// runs plus the representative run) into the aggregate Stats, so a
// million-point chunked run still reports candidate volume and recall.
func TestChunkedClusterLSHLedgerAggregates(t *testing.T) {
	ts, _ := groupedData(3, 120, 75)
	res, err := ChunkedCluster(ts, ChunkedConfig{
		Base:      Config{Theta: 0.3, K: 3, Seed: 7, LSHNeighbors: true, LSHHashes: 128, LSHBands: 64},
		ChunkSize: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, len(ts))
	st := res.Stats
	if st.LSHCandidatePairs <= 0 || st.LSHVerifiedEdges <= 0 || st.LSHCandidatePairs < st.LSHVerifiedEdges {
		t.Fatalf("implausible aggregated ledger: %+v", st)
	}
	// 360 points in chunks of 90 → four chunk runs plus the
	// representative run, each sampling up to DefaultRecallSample rows.
	if st.LSHRecallSampled <= 64 {
		t.Fatalf("sampled %d rows, want more than one sub-run's worth", st.LSHRecallSampled)
	}
	if st.LSHRecall <= 0 || st.LSHRecall > 1 {
		t.Fatalf("aggregated recall %g outside (0,1]", st.LSHRecall)
	}
}
