package core

import (
	"math"
	"math/rand"
	"sort"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/linkage"
	"github.com/rockclust/rock/internal/similarity"
)

// Result is the outcome of a ROCK run over a dataset of n transactions.
type Result struct {
	// Assign maps each input index to its cluster index in Clusters, or
	// -1 for outliers.
	Assign []int
	// Clusters lists member input indices, ascending; clusters are
	// ordered by smallest member.
	Clusters [][]int
	// Outliers lists input indices assigned to no cluster: points pruned
	// for having too few neighbors, members of weeded clusters, and
	// out-of-sample points with no labeled neighbor.
	Outliers []int
	// SampleIdx lists the input indices that formed the clustered sample,
	// or nil when the whole dataset was clustered.
	SampleIdx []int
	// MergeTrace is the dendrogram of the agglomeration when
	// Config.TraceMerges was set: ids 0..len(TracePoints)-1 are the
	// clustered points in TracePoints order, later ids are merge
	// products. Cut it at any k with CutTrace.
	MergeTrace []MergeStep
	// TracePoints maps trace singleton ids to input indices.
	TracePoints []int
	// LabelSets records the labeled subsets L_i the labeling phase drew
	// (one per cluster, dataset-global indices into the clustered
	// sample), or nil when no labeling pass ran. Freeze reuses them, so
	// a model frozen from a sampled run reproduces that run's labeling
	// exactly.
	LabelSets [][]int
	Stats     Stats
}

// Stats reports what happened during a run, mirroring the quantities in
// the paper's analysis (average/maximum neighbor-list size m_a and m_m,
// link pairs, merge count).
type Stats struct {
	N       int // input points
	Sampled int // points in the clustered sample (== N when unsampled)
	Pruned  int // points dropped by the MinNeighbors filter
	Weeded  int // points dropped at the weeding checkpoint
	// The labeling phase's ledger: every candidate entering the phase is
	// either labeled into a cluster or left unlabeled, so
	// LabelCandidates == Labeled + Unlabeled always holds (all three are
	// zero when no sample was drawn and LabelOutliers is off).
	LabelCandidates int     // points entering the labeling phase
	Labeled         int     // candidates assigned to a cluster by labeling
	Unlabeled       int     // candidates no cluster would accept
	AvgNeighbors    float64 // m_a over the sample
	MaxNeighbors    int     // m_m over the sample
	LinkPairs       int     // undirected pairs with positive link count
	LinkEntries     int64   // directed CSR link entries (2×LinkPairs; int64 — big tables pass 2³¹)
	Merges          int
	// The LSH quality ledger, populated when the neighbor phase ran the
	// approximate pipeline (Config.LSHNeighbors / QRockConfig.LSHNeighbors;
	// ChunkedCluster aggregates its sub-runs). Zero otherwise.
	LSHCandidatePairs int64   // unique unordered candidate pairs banding generated
	LSHVerifiedEdges  int64   // candidates that passed the exact θ-test
	LSHRecallSampled  int     // rows sampled for the recall estimate (0 = not measured)
	LSHRecall         float64 // sampled edge recall vs the exact neighbor relation
	StoppedEarly      bool    // ran out of cross links before reaching K
	ClustersFound     int
	FVal              float64 // the exponent f(θ) in effect
}

// addLSH folds one neighbor run's LSH ledger into the stats.
func (s *Stats) addLSH(l *similarity.LSHStats) {
	if l == nil {
		return
	}
	s.foldLSH(l.CandidatePairs, l.VerifiedEdges, l.RecallSampled, l.Recall)
}

// foldLSH accumulates ledger counts; the recall estimate is averaged
// weighted by sampled rows, so an aggregate run (ChunkedCluster) reports
// the recall over every sample its sub-runs drew.
func (s *Stats) foldLSH(pairs, edges int64, sampled int, recall float64) {
	s.LSHCandidatePairs += pairs
	s.LSHVerifiedEdges += edges
	if sampled > 0 {
		tot := s.LSHRecallSampled + sampled
		s.LSHRecall = (s.LSHRecall*float64(s.LSHRecallSampled) + recall*float64(sampled)) / float64(tot)
		s.LSHRecallSampled = tot
	}
}

// K returns the number of clusters found.
func (r *Result) K() int { return len(r.Clusters) }

// Sizes returns the cluster sizes in cluster order.
func (r *Result) Sizes() []int {
	s := make([]int, len(r.Clusters))
	for i, c := range r.Clusters {
		s[i] = len(c)
	}
	return s
}

// Cluster runs the full ROCK pipeline on ts: optional uniform sampling,
// θ-neighbor computation, link computation, outlier pruning, heap-driven
// agglomeration down to cfg.K clusters with optional weeding, and — when a
// sample was used — labeling of the remaining points.
func Cluster(ts []dataset.Transaction, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := len(ts)
	res := &Result{Assign: make([]int, n), Stats: Stats{N: n, FVal: cfg.fval()}}
	for i := range res.Assign {
		res.Assign[i] = -1
	}
	if n == 0 {
		return res, nil
	}

	rng := rand.New(rand.NewSource(cfg.Seed))

	// Phase 1: sample.
	sample := make([]int, n)
	for i := range sample {
		sample[i] = i
	}
	sampled := false
	if cfg.SampleSize > 0 && cfg.SampleSize < n {
		sample = SampleIndices(n, cfg.SampleSize, rng)
		sampled = true
		res.SampleIdx = sample
	}
	res.Stats.Sampled = len(sample)
	local := make([]dataset.Transaction, len(sample))
	for i, j := range sample {
		local[i] = ts[j]
	}

	// Phase 2: θ-neighbors over the sample.
	simOpts := similarity.Options{Measure: cfg.Measure, IncludeSelf: cfg.IncludeSelf, Workers: cfg.Workers}
	var nb *similarity.Neighbors
	switch {
	case cfg.LSHNeighbors:
		nb = similarity.ComputeLSH(local, cfg.Theta, similarity.LSHOptions{
			Hashes:      cfg.LSHHashes,
			Bands:       cfg.LSHBands,
			Seed:        cfg.Seed,
			Measure:     cfg.Measure,
			IncludeSelf: cfg.IncludeSelf,
			Workers:     cfg.Workers,
		})
	case cfg.BruteNeighbors:
		nb = similarity.Compute(local, cfg.Theta, simOpts)
	default:
		nb = similarity.ComputeIndexed(local, cfg.Theta, simOpts)
	}
	res.Stats.AvgNeighbors, res.Stats.MaxNeighbors, _ = nb.Stats()
	res.Stats.addLSH(nb.LSH)

	// Phase 3: prune sparse points (paper: outliers have few neighbors).
	kept, prunedLocal := pruneByDegree(nb, cfg.MinNeighbors)
	res.Stats.Pruned = len(prunedLocal)
	for _, l := range prunedLocal {
		res.Outliers = append(res.Outliers, sample[l])
	}
	keptNb := filterNeighbors(nb, kept)

	// Phase 4: links over the kept sample, built directly in CSR form.
	// The sharded builder splits the O(Σ m_i²) pair counting across
	// cfg.Workers goroutines; small samples take the serial reference
	// path. Either way the table is bit-identical and deterministic.
	lt := linkage.Build(keptNb, linkage.Options{Workers: cfg.Workers, SerialBelow: cfg.LinkSerialBelow})
	res.Stats.LinkPairs = lt.Pairs()
	res.Stats.LinkEntries = int64(lt.Entries())

	// Phase 5: agglomerate. Small samples take the serial arena engine;
	// larger ones (under Workers > 1) run parallel batched merge rounds.
	// Either way the clustering is byte-identical and deterministic.
	weedTrigger := 0
	if cfg.WeedAt > 0 {
		weedTrigger = int(math.Ceil(cfg.WeedAt * float64(len(kept))))
		if weedTrigger < cfg.K {
			weedTrigger = cfg.K
		}
	}
	eng := agglomerateAuto(len(kept), lt, cfg.K, cfg.Goodness, cfg.fval(), weedTrigger, cfg.WeedMaxSize, cfg.TraceMerges, cfg.Workers, cfg.MergeSerialBelow)
	res.Stats.Merges = eng.merges
	res.Stats.StoppedEarly = eng.stoppedEarly
	res.Stats.Weeded = len(eng.weeded)
	for _, l := range eng.weeded {
		res.Outliers = append(res.Outliers, sample[kept[l]])
	}
	if cfg.TraceMerges {
		res.MergeTrace = eng.trace
		res.TracePoints = make([]int, len(kept))
		for i, l := range kept {
			res.TracePoints[i] = sample[l]
		}
	}

	// Map engine clusters (kept-local indices) back to input indices.
	res.Clusters = make([][]int, len(eng.clusters))
	for ci, members := range eng.clusters {
		global := make([]int, len(members))
		for i, l := range members {
			global[i] = sample[kept[l]]
		}
		res.Clusters[ci] = global
		for _, g := range global {
			res.Assign[g] = ci
		}
	}
	res.Stats.ClustersFound = len(res.Clusters)

	// Phase 6: label the rest of the dataset (and, with LabelOutliers,
	// the sample's pruned/weeded points) against cluster subsets, on the
	// inverted-index labeler sharded across cfg.Workers (pairwise
	// fallback for custom measures; assignments byte-identical to the
	// serial pairwise reference either way).
	var candidates []int
	if sampled {
		inSample := make([]bool, n)
		for _, j := range sample {
			inSample[j] = true
		}
		for p := 0; p < n; p++ {
			if !inSample[p] {
				candidates = append(candidates, p)
			}
		}
	}
	if cfg.LabelOutliers {
		candidates = append(candidates, res.Outliers...)
		res.Outliers = nil
	}
	sort.Ints(candidates)
	res.Stats.LabelCandidates = len(candidates)
	if len(candidates) > 0 {
		if len(res.Clusters) == 0 {
			res.Stats.Unlabeled += len(candidates)
			res.Outliers = append(res.Outliers, candidates...)
		} else {
			sets := labelSets(res.Clusters, cfg, rng)
			res.LabelSets = sets
			assign := labelCandidates(ts, candidates, sets, cfg)
			for i, p := range candidates {
				ci := assign[i]
				if ci < 0 {
					res.Stats.Unlabeled++
					res.Outliers = append(res.Outliers, p)
					continue
				}
				res.Stats.Labeled++
				res.Assign[p] = ci
				res.Clusters[ci] = append(res.Clusters[ci], p)
			}
			for _, c := range res.Clusters {
				sort.Ints(c)
			}
		}
	}

	sort.Ints(res.Outliers)
	return res, nil
}

// pruneByDegree splits points into those with at least minNeighbors
// neighbors (kept, ascending) and the rest (pruned, ascending).
func pruneByDegree(nb *similarity.Neighbors, minNeighbors int) (kept, pruned []int) {
	n := nb.Len()
	if minNeighbors <= 0 {
		kept = make([]int, n)
		for i := range kept {
			kept[i] = i
		}
		return kept, nil
	}
	for i := 0; i < n; i++ {
		if nb.Degree(i) >= minNeighbors {
			kept = append(kept, i)
		} else {
			pruned = append(pruned, i)
		}
	}
	return kept, pruned
}

// filterNeighbors renumbers neighbor lists onto the kept subset, dropping
// pruned points from every list.
func filterNeighbors(nb *similarity.Neighbors, kept []int) *similarity.Neighbors {
	if len(kept) == nb.Len() {
		return nb
	}
	newID := make([]int32, nb.Len())
	for i := range newID {
		newID[i] = -1
	}
	for ni, old := range kept {
		newID[old] = int32(ni)
	}
	out := &similarity.Neighbors{Lists: make([][]int32, len(kept))}
	for ni, old := range kept {
		var l []int32
		for _, j := range nb.Lists[old] {
			if nj := newID[j]; nj >= 0 {
				l = append(l, nj)
			}
		}
		out.Lists[ni] = l
	}
	return out
}
