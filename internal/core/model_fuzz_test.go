package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

// modelSentinels lists every failure mode LoadModel is allowed to report.
var modelSentinels = []error{
	ErrModelTruncated, ErrModelMagic, ErrModelVersion,
	ErrModelChecksum, ErrModelMeasure, ErrModelCorrupt,
}

// fuzzSeedMutants are the deterministic mutations of the golden model the
// fuzzer starts from (and the corpus generator persists): each targets a
// distinct section of the format, so the fuzzer begins past the trivial
// magic/CRC rejections. Offsets follow TestModelLoadFailures.
func fuzzSeedMutants(golden []byte) [][]byte {
	const measureOff = 8 + 4 + 8 + 8 + 4
	reseals := []func(b []byte) []byte{
		// Version nobody reads.
		func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:12], 7); return b },
		// The (2³¹, 2⁶³) cluster-size regression this fuzzer exists for.
		func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[measureOff+7+4:], uint64(1)<<40)
			return b
		},
		// A set size claiming more points than the payload holds.
		func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[measureOff+7+4+8:], 1<<30)
			return b
		},
		// A labeled-point item id at the top of the int32 range — the
		// over-allocation probe for the postings index.
		func(b []byte) []byte {
			itemOff := measureOff + 7 + 4 + 48 + 4 + 8
			binary.LittleEndian.PutUint32(b[itemOff:], 1<<31-2)
			return b
		},
	}
	mutants := [][]byte{
		golden,
		{},
		[]byte("ROCKMODL"),
		golden[:len(golden)/2],
		append([]byte("NOTAMODL"), golden[8:]...),
	}
	for _, m := range reseals {
		mutants = append(mutants, reseal(m(append([]byte(nil), golden...))))
	}
	return mutants
}

// FuzzLoadModel feeds LoadModel arbitrary bytes — raw, and resealed with
// a fresh CRC so the payload parser past the checksum gate is actually
// explored. The contract under fuzz: every rejection wraps one of the
// ErrModel* sentinels (never a panic), allocations stay bounded by the
// input size (an over-allocation shows up as the fuzz process dying on a
// multi-gigabyte make), and anything that loads is coherent — it assigns
// without panicking and survives a byte-identical Save→Load round trip.
func FuzzLoadModel(f *testing.F) {
	for _, seed := range fuzzSeedMutants(goldenModelBytes(f)) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzLoadOnce(t, data)
		// Reseal so a mutated payload reaches the section parsers instead
		// of dying at the CRC gate. The frame needs magic + version + CRC.
		if len(data) >= 16 {
			fuzzLoadOnce(t, reseal(data))
		}
	})
}

// fuzzLoadOnce drives one LoadModel call and checks the fuzz contract.
func fuzzLoadOnce(t *testing.T, data []byte) {
	m, err := LoadModel(bytes.NewReader(data))
	if err != nil {
		for _, sentinel := range modelSentinels {
			if errors.Is(err, sentinel) {
				return
			}
		}
		t.Fatalf("LoadModel error wraps no ErrModel* sentinel: %v", err)
	}
	// Accepted files must be fully coherent, not just parseable.
	if m.Assign(dataset.NewTransaction(0, 1, 2)) >= m.K() {
		t.Fatal("Assign returned a cluster index past K")
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("accepted model does not re-save: %v", err)
	}
	again, err := LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("accepted model does not round-trip: %v", err)
	}
	var buf2 bytes.Buffer
	if err := again.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("accepted model's Save→Load→Save is not byte-identical")
	}
}

// TestWriteFuzzCorpus regenerates the committed FuzzLoadModel seed corpus
// under testdata/fuzz (run with WRITE_FUZZ_CORPUS=1 after a format
// change; the committed files make every `go test` run a short fuzz pass
// over them). Skipped otherwise.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to rewrite testdata/fuzz/FuzzLoadModel")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzLoadModel")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeedMutants(goldenModelBytes(t)) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
