package core

import (
	"fmt"
	"sort"

	"github.com/rockclust/rock/internal/unionfind"
)

// MergeStep records one agglomeration step: clusters A and B (ids as
// defined below) merged into cluster Into with the given goodness and
// cross-link count, at the point where `Remaining` active clusters were
// left *after* the merge.
//
// Cluster ids follow the engine's convention: ids 0..n-1 are the initial
// singletons (n = points clustered, in input order of the clustered
// sample), and each merge allocates the next id. The trace is therefore a
// dendrogram: cutting it at any number of clusters reproduces the
// clustering ROCK would have returned for that k (weeding aside).
type MergeStep struct {
	A, B      int
	Into      int
	Goodness  float64
	Links     int
	SizeA     int
	SizeB     int
	Remaining int
}

// CutTrace replays a merge trace over n initial singletons and stops when
// the number of clusters reaches k (or the trace is exhausted — ROCK may
// stop early when links run out). It returns the members of each cluster
// by initial singleton index, clusters ordered by smallest member. Steps
// must be a prefix-consistent trace as produced by the engine.
func CutTrace(n int, steps []MergeStep, k int) ([][]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: cut at k=%d", k)
	}
	uf := unionfind.New(n)
	// Map engine cluster ids to a representative singleton.
	rep := make(map[int]int, n)
	for i := 0; i < n; i++ {
		rep[i] = i
	}
	remaining := n
	for _, s := range steps {
		if remaining <= k {
			break
		}
		ra, oka := rep[s.A]
		rb, okb := rep[s.B]
		if !oka || !okb {
			return nil, fmt.Errorf("core: trace references unknown cluster %d or %d", s.A, s.B)
		}
		uf.Union(ra, rb)
		delete(rep, s.A)
		delete(rep, s.B)
		rep[s.Into] = ra
		remaining--
	}
	comps := uf.Components()
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps, nil
}
