package core

import (
	"sort"

	"github.com/rockclust/rock/internal/linkage"
	"github.com/rockclust/rock/internal/pqueue"
)

// clus is one active cluster in the agglomeration: its members (local
// point indices), its cross-link counts to every other linked cluster, and
// a local max-heap of those clusters ordered by merge goodness — the
// paper's q[i].
type clus struct {
	size    int
	members []int32
	links   map[int]int
	heap    *pqueue.Heap
}

// engineResult is the raw outcome of agglomeration over local indices
// [0,n).
type engineResult struct {
	clusters     [][]int // members, each sorted ascending; ordered by first member
	weeded       []int   // members of clusters discarded at the weeding checkpoint
	merges       int
	stoppedEarly bool        // ran out of cross links before reaching k clusters
	trace        []MergeStep // populated when tracing is requested
}

// agglomerate runs ROCK's clustering phase: starting from n singleton
// clusters whose pairwise links are given by the CSR table lt, repeatedly
// merge the pair with maximal goodness until k clusters remain or no two
// clusters share a link. A global heap holds, for every cluster, the
// goodness of its best local pair; each merge rebuilds the merged
// cluster's link map as the sum of its parents' and updates both heaps of
// every affected cluster — exactly the paper's algorithm, O(n² log n)
// worst case. Seeding the singleton heaps is a cache-friendly scan of
// each CSR row rather than a map iteration.
//
// If weedTrigger > 0, the first time the number of active clusters falls
// to weedTrigger, clusters of size ≤ weedMaxSize are discarded as outliers
// (the paper's device for isolating stray points that merge with nothing).
func agglomerate(n int, lt *linkage.Compact, k int, good GoodnessFunc, f float64, weedTrigger, weedMaxSize int, trace bool) engineResult {
	clusters := make(map[int]*clus, n)
	global := pqueue.New()
	for i := 0; i < n; i++ {
		clusters[i] = &clus{
			size:    1,
			members: []int32{int32(i)},
			links:   make(map[int]int, lt.Degree(i)),
			heap:    pqueue.New(),
		}
	}
	for i := 0; i < n; i++ {
		c := clusters[i]
		lt.Row(i, func(j, cnt int) {
			c.links[j] = cnt
			c.heap.Set(j, good(cnt, 1, 1, f))
		})
		updateGlobal(global, i, c)
	}

	var res engineResult
	nextID := n
	active := n
	weedDone := weedTrigger <= 0

	for active > k {
		u, g, ok := global.Pop()
		if !ok || g <= 0 {
			res.stoppedEarly = true
			break
		}
		cu := clusters[u]
		v, _, ok := cu.heap.Peek()
		if !ok {
			continue // defensively skip clusters that lost all links
		}
		cv := clusters[v]
		global.Remove(v)

		w := nextID
		nextID++
		if trace {
			res.trace = append(res.trace, MergeStep{
				A: u, B: v, Into: w,
				Goodness: g, Links: cu.links[v],
				SizeA: cu.size, SizeB: cv.size,
				Remaining: active - 1,
			})
		}
		cw := &clus{
			size:    cu.size + cv.size,
			members: append(cu.members, cv.members...),
			links:   make(map[int]int, len(cu.links)+len(cv.links)),
			heap:    pqueue.New(),
		}
		for x, cnt := range cu.links {
			if x != v {
				cw.links[x] = cnt
			}
		}
		for x, cnt := range cv.links {
			if x != u {
				cw.links[x] += cnt
			}
		}
		delete(clusters, u)
		delete(clusters, v)
		clusters[w] = cw

		for x, cnt := range cw.links {
			cx := clusters[x]
			delete(cx.links, u)
			delete(cx.links, v)
			cx.links[w] = cnt
			cx.heap.Remove(u)
			cx.heap.Remove(v)
			gx := good(cnt, cw.size, cx.size, f)
			cx.heap.Set(w, gx)
			cw.heap.Set(x, gx)
			updateGlobal(global, x, cx)
		}
		updateGlobal(global, w, cw)

		active--
		res.merges++

		if !weedDone && active <= weedTrigger {
			weedDone = true
			active -= weed(clusters, global, weedMaxSize, &res)
		}
	}

	// Collect surviving clusters deterministically: members ascending,
	// clusters ordered by their smallest member.
	for _, c := range clusters {
		m := make([]int, len(c.members))
		for i, v := range c.members {
			m[i] = int(v)
		}
		sort.Ints(m)
		res.clusters = append(res.clusters, m)
	}
	sort.Slice(res.clusters, func(i, j int) bool { return res.clusters[i][0] < res.clusters[j][0] })
	sort.Ints(res.weeded)
	return res
}

// weed removes clusters of size ≤ maxSize, detaching them from every
// surviving cluster's link map and heaps. It returns the number of
// clusters removed.
func weed(clusters map[int]*clus, global *pqueue.Heap, maxSize int, res *engineResult) int {
	var victims []int
	for id, c := range clusters {
		if c.size <= maxSize {
			victims = append(victims, id)
		}
	}
	sort.Ints(victims)
	for _, id := range victims {
		c := clusters[id]
		for _, m := range c.members {
			res.weeded = append(res.weeded, int(m))
		}
		for x := range c.links {
			cx, ok := clusters[x]
			if !ok {
				continue // x is itself a victim already removed
			}
			delete(cx.links, id)
			cx.heap.Remove(id)
			updateGlobal(global, x, cx)
		}
		global.Remove(id)
		delete(clusters, id)
	}
	return len(victims)
}

// updateGlobal synchronizes cluster x's entry in the global heap with the
// top of its local heap.
func updateGlobal(global *pqueue.Heap, x int, c *clus) {
	if _, p, ok := c.heap.Peek(); ok {
		global.Set(x, p)
	} else {
		global.Remove(x)
	}
}
