package core

import (
	"math"
	"sort"

	"github.com/rockclust/rock/internal/linkage"
	"github.com/rockclust/rock/internal/pqueue"
)

// The agglomeration engine keeps its clusters in a flat arena: parallel
// arrays indexed by slot instead of a map of heap-allocated structs. A
// merge reuses the popped cluster's slot for the product, member lists
// are an intrusive linked list over point indices, and per-cluster links
// are sorted []linkEntry rows merged with a two-pointer pass into pooled
// buffers — the hot loop neither allocates nor touches a hash map. The
// per-cluster heaps of the reference engine collapse into one cached
// best-partner per slot plus a single lazy indexed heap (pqueue.Lazy)
// over those bests. Output is byte-identical to the reference
// (engine_reference.go); the oracle test enforces it configuration by
// configuration.

// linkEntry is one cross-link in a cluster's adjacency row: the arena
// slot of the linked cluster and the aggregated cross-link count. Rows
// stay sorted by slot, so merging two rows is a two-pointer pass and
// point lookups are binary searches. int32 counts cap one cluster pair at
// ~2.1B aggregated links.
type linkEntry struct {
	to  int32
	cnt int32
}

// engineResult is the raw outcome of agglomeration over local indices
// [0,n).
type engineResult struct {
	clusters     [][]int // members, each sorted ascending; ordered by first member
	weeded       []int   // members of clusters discarded at the weeding checkpoint
	merges       int
	stoppedEarly bool        // ran out of cross links before reaching k clusters
	trace        []MergeStep // populated when tracing is requested
}

// arena is the flat agglomeration state. Slots [0, n) are live cluster
// storage; a merged cluster reuses one parent's slot, so `alive` plus the
// logical `id` array replace the reference engine's map[int]*clus.
// Logical ids follow the reference convention — singletons are 0..n-1 and
// each merge allocates the next id — because the paper's tie-breaks (and
// the trace) are defined over those ids, not over storage slots.
type arena struct {
	good GoodnessFunc
	f    float64

	alive []bool
	id    []int32 // slot -> logical cluster id
	size  []int32
	// Intrusive member lists: head/tail index points, next chains them.
	// Merging is two pointer writes; no member slice is ever copied.
	head, tail, next []int32

	rows [][]linkEntry // slot -> adjacency row, sorted by slot

	// Cached best merge partner per slot — the top of the reference
	// engine's per-cluster heap — and the lazy global heap over them.
	bestTo []int32 // slot of best partner, -1 when unlinked
	bestG  []float64
	heap   *pqueue.Lazy

	pool [][]linkEntry // retired row buffers, reused for merged rows
}

// agglomerate runs ROCK's clustering phase: starting from n singleton
// clusters whose pairwise links are given by the CSR table lt, repeatedly
// merge the pair with maximal goodness until k clusters remain or no two
// clusters share a link — the paper's O(n² log n) algorithm on the arena
// representation above. Each merge touches only the merged row and the
// rows of its neighbors.
//
// If weedTrigger > 0, the first time the number of active clusters falls
// to weedTrigger, clusters of size ≤ weedMaxSize are discarded as outliers
// (the paper's device for isolating stray points that merge with nothing).
func agglomerate(n int, lt *linkage.Compact, k int, good GoodnessFunc, f float64, weedTrigger, weedMaxSize int, trace bool) engineResult {
	return runAgglomeration(newArena(n, lt, good, f), k, weedTrigger, weedMaxSize, trace)
}

// runAgglomeration drives the merge loop over an already-seeded arena —
// shared by agglomerate (every slot a singleton) and the seeded path
// (seeded.go: slots are pre-formed groups). Logical ids continue from the
// initial slot count, so the tie-break convention holds for both.
func runAgglomeration(a *arena, k, weedTrigger, weedMaxSize int, trace bool) engineResult {
	var res engineResult
	nextID := len(a.alive)
	active := 0
	for _, live := range a.alive {
		if live {
			active++
		}
	}
	weedDone := weedTrigger <= 0

	for active > k {
		ui, g, ok := a.heap.Pop()
		if !ok || g <= 0 {
			res.stoppedEarly = true
			break
		}
		// A popped entry is never stale — pqueue.Lazy discards superseded
		// entries internally — so the best partner is always present,
		// unlike the reference engine's defensive empty-heap skip.
		u := int32(ui)
		v := a.bestTo[u]
		w := int32(nextID)
		nextID++
		if trace {
			res.trace = append(res.trace, MergeStep{
				A: int(a.id[u]), B: int(a.id[v]), Into: int(w),
				Goodness: g, Links: int(a.rowCount(u, v)),
				SizeA: int(a.size[u]), SizeB: int(a.size[v]),
				Remaining: active - 1,
			})
		}
		a.merge(u, v, w)

		active--
		res.merges++

		if !weedDone && active <= weedTrigger {
			weedDone = true
			active -= a.weed(weedMaxSize, &res)
		}
	}

	a.collect(&res)
	return res
}

// newArena seeds the arena from the CSR link table: one slot per point,
// rows materialized into a single backing array, and the lazy heap bulk-
// initialized in O(n) from each slot's best partner.
func newArena(n int, lt *linkage.Compact, good GoodnessFunc, f float64) *arena {
	a := &arena{
		good:   good,
		f:      f,
		alive:  make([]bool, n),
		id:     make([]int32, n),
		size:   make([]int32, n),
		head:   make([]int32, n),
		tail:   make([]int32, n),
		next:   make([]int32, n),
		rows:   make([][]linkEntry, n),
		bestTo: make([]int32, n),
		bestG:  make([]float64, n),
		heap:   pqueue.NewLazy(n),
	}
	backing := make([]linkEntry, 0, lt.Entries())
	for i := 0; i < n; i++ {
		a.alive[i] = true
		a.id[i] = int32(i)
		a.size[i] = 1
		a.head[i], a.tail[i], a.next[i] = int32(i), int32(i), -1
		start := len(backing)
		bt, bg := int32(-1), 0.0
		lt.Row(i, func(j, cnt int) {
			backing = append(backing, linkEntry{to: int32(j), cnt: int32(cnt)})
			// Ascending j, strict >: ties keep the smaller partner id,
			// matching the reference heap's tie-break.
			if g := good(cnt, 1, 1, f); bt < 0 || g > bg {
				bt, bg = int32(j), g
			}
		})
		// Capacity-clamp each row to its own region so a stray append can
		// never stomp a neighbor's row.
		a.rows[i] = backing[start:len(backing):len(backing)]
		a.bestTo[i], a.bestG[i] = bt, bg
		if bt >= 0 {
			a.heap.BulkSet(i, int32(i), bg)
		}
	}
	a.heap.Fix()
	return a
}

// merge folds cluster v into cluster u's slot as the new cluster with
// logical id w: rows are two-pointer merged into a pooled buffer, every
// neighbor's row is patched in place, and affected cached bests are
// repaired.
func (a *arena) merge(u, v, w int32) {
	a.heap.Invalidate(int(v)) // u's entry was consumed by the pop

	merged := mergeRows(a.rows[u], a.rows[v], u, v, a.takeBuf())
	a.pool = append(a.pool, a.rows[u][:0], a.rows[v][:0])
	a.rows[u] = merged
	a.rows[v] = nil

	a.alive[v] = false
	a.id[u] = w
	a.size[u] += a.size[v]
	a.next[a.tail[u]] = a.head[v]
	a.tail[u] = a.tail[v]

	for _, e := range merged {
		a.patchNeighbor(e.to, u, v, e.cnt)
	}
	a.rescanBest(u)
	a.publish(u)
}

// patchNeighbor rewrites x's row after slots u and v merged into slot u
// with combined count cnt, then repairs x's cached best.
func (a *arena) patchNeighbor(x, u, v, cnt int32) {
	a.patchRow(x, u, v, cnt)

	if bt := a.bestTo[x]; bt == u || bt == v {
		// The cached best was a merge participant; rescan the row.
		old := a.bestG[x]
		a.rescanBest(x)
		if a.bestG[x] != old {
			a.publish(x)
		}
	} else if g := a.pairGoodness(x, u, cnt); g > a.bestG[x] {
		// The merged cluster has the youngest id, so on a tie the cached
		// best keeps winning — only a strictly better goodness displaces it.
		a.bestTo[x], a.bestG[x] = u, g
		a.publish(x)
	}
}

// patchRow is the structural half of patchNeighbor: rewrite x's row after
// slots u and v merged into slot u with combined count cnt, leaving the
// cached best untouched. Rows never grow: the patch is a count update, an
// in-place deletion, or an in-place shifted replacement. The batched
// engine calls it concurrently for neighbors of different merges, which is
// safe because conflict-free batches have disjoint closed neighborhoods.
func (a *arena) patchRow(x, u, v, cnt int32) {
	row := a.rows[x]
	pu := lowerBound(row, u)
	hasU := pu < len(row) && row[pu].to == u
	pv := lowerBound(row, v)
	hasV := pv < len(row) && row[pv].to == v
	switch {
	case hasU && hasV:
		row[pu].cnt = cnt
		copy(row[pv:], row[pv+1:])
		row = row[:len(row)-1]
	case hasU:
		row[pu].cnt = cnt // x was linked to u only; the count is unchanged
	case u < v:
		// Only v: its entry moves down to u's sorted position.
		copy(row[pu+1:pv+1], row[pu:pv])
		row[pu] = linkEntry{to: u, cnt: cnt}
	default:
		// Only v, and u sorts after it: shift the gap up instead.
		copy(row[pv:pu-1], row[pv+1:pu])
		row[pu-1] = linkEntry{to: u, cnt: cnt}
	}
	a.rows[x] = row
}

// weed removes clusters of size ≤ maxSize, detaching them from every
// surviving cluster's row and repairing the survivors' bests. It returns
// the number of clusters removed.
func (a *arena) weed(maxSize int, res *engineResult) int {
	n := len(a.alive)
	var victims []int32
	for s := int32(0); int(s) < n; s++ {
		if a.alive[s] && int(a.size[s]) <= maxSize {
			victims = append(victims, s)
		}
	}
	for _, s := range victims {
		a.alive[s] = false
		a.heap.Invalidate(int(s))
		for m := a.head[s]; m >= 0; m = a.next[m] {
			res.weeded = append(res.weeded, int(m))
		}
	}
	dirty := make([]bool, n)
	for _, s := range victims {
		for _, e := range a.rows[s] {
			x := e.to
			if !a.alive[x] {
				continue // a fellow victim
			}
			row := a.rows[x]
			p := lowerBound(row, s)
			copy(row[p:], row[p+1:])
			a.rows[x] = row[:len(row)-1]
			dirty[x] = true
		}
		a.pool = append(a.pool, a.rows[s][:0])
		a.rows[s] = nil
	}
	for x := int32(0); int(x) < n; x++ {
		if !dirty[x] {
			continue
		}
		old := a.bestG[x]
		a.rescanBest(x)
		if a.bestTo[x] < 0 || a.bestG[x] != old {
			a.publish(x)
		}
	}
	return len(victims)
}

// collect gathers surviving clusters deterministically: members
// ascending, clusters ordered by their smallest member.
func (a *arena) collect(res *engineResult) {
	for s := range a.alive {
		if !a.alive[s] {
			continue
		}
		m := make([]int, 0, a.size[s])
		for p := a.head[s]; p >= 0; p = a.next[p] {
			m = append(m, int(p))
		}
		sort.Ints(m)
		res.clusters = append(res.clusters, m)
	}
	sort.Slice(res.clusters, func(i, j int) bool { return res.clusters[i][0] < res.clusters[j][0] })
	sort.Ints(res.weeded)
}

// pairGoodness evaluates the goodness of merging the clusters in slots x
// and y over cnt cross links, passing sizes in the order the reference
// engine used when it stored the pair: the more recently created cluster
// (higher logical id) first. The built-in goodness functions are
// symmetric in the sizes; reproducing the convention keeps output
// byte-identical even for custom asymmetric ones.
func (a *arena) pairGoodness(x, y, cnt int32) float64 {
	if a.id[y] > a.id[x] {
		return a.good(int(cnt), int(a.size[y]), int(a.size[x]), a.f)
	}
	return a.good(int(cnt), int(a.size[x]), int(a.size[y]), a.f)
}

// rescanBest recomputes slot x's cached best partner from its row: max
// goodness, ties toward the smaller logical id — exactly the top of the
// reference engine's per-cluster heap.
func (a *arena) rescanBest(x int32) {
	bt, bg, bid := int32(-1), 0.0, int32(0)
	for _, e := range a.rows[x] {
		g := a.pairGoodness(x, e.to, e.cnt)
		if bt < 0 || g > bg || (g == bg && a.id[e.to] < bid) {
			bt, bg, bid = e.to, g, a.id[e.to]
		}
	}
	a.bestTo[x], a.bestG[x] = bt, bg
}

// publish syncs slot x's global-heap entry with its cached best.
func (a *arena) publish(x int32) {
	if a.bestTo[x] < 0 {
		a.heap.Invalidate(int(x))
	} else {
		a.heap.Update(int(x), a.id[x], a.bestG[x])
	}
}

// rowCount returns the link count between slots x and y (y must be in
// x's row).
func (a *arena) rowCount(x, y int32) int32 {
	return a.rows[x][lowerBound(a.rows[x], y)].cnt
}

// takeBuf returns a retired row buffer, or nil (the subsequent appends
// then allocate).
func (a *arena) takeBuf() []linkEntry {
	if n := len(a.pool); n > 0 {
		b := a.pool[n-1][:0]
		a.pool = a.pool[:n-1]
		return b
	}
	return nil
}

// mergeRows two-pointer merges the rows of u and v into out, dropping
// their entries for each other and summing counts of common neighbors.
func mergeRows(ru, rv []linkEntry, u, v int32, out []linkEntry) []linkEntry {
	i, j := 0, 0
	for i < len(ru) && j < len(rv) {
		switch {
		case ru[i].to == v:
			i++
		case rv[j].to == u:
			j++
		case ru[i].to < rv[j].to:
			out = append(out, ru[i])
			i++
		case rv[j].to < ru[i].to:
			out = append(out, rv[j])
			j++
		default:
			out = append(out, linkEntry{to: ru[i].to, cnt: addCounts(ru[i].cnt, rv[j].cnt)})
			i++
			j++
		}
	}
	for ; i < len(ru); i++ {
		if ru[i].to != v {
			out = append(out, ru[i])
		}
	}
	for ; j < len(rv); j++ {
		if rv[j].to != u {
			out = append(out, rv[j])
		}
	}
	return out
}

// addCounts sums two link counts, failing loudly if the aggregate
// overflows linkEntry's int32 — silent wraparound would corrupt goodness
// values and diverge from the reference engine undetectably.
func addCounts(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s > math.MaxInt32 {
		panic("core: aggregated cross-link count exceeds 2^31; the arena engine's int32 link rows cannot represent this workload")
	}
	return int32(s)
}

// lowerBound returns the first index in row whose slot is ≥ slot.
func lowerBound(row []linkEntry, slot int32) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid].to < slot {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// BenchAgglomerateArena runs the production arena engine over a prebuilt
// CSR link table, exported for the `rockbench -merge` sweep
// (internal/expt); it is the same agglomerate the pipeline calls.
func BenchAgglomerateArena(n int, lt *linkage.Compact, k int, f float64) (clusters, merges int) {
	res := agglomerate(n, lt, k, RockGoodness, f, 0, 0, false)
	return len(res.clusters), res.merges
}
