package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestResultJSONRoundTrip(t *testing.T) {
	ts, _ := groupedData(2, 25, 81)
	res, err := Cluster(ts, Config{Theta: 0.3, K: 2, Seed: 1, MinNeighbors: 1, TraceMerges: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Assign, res.Assign) ||
		!reflect.DeepEqual(got.Clusters, res.Clusters) ||
		!reflect.DeepEqual(got.Outliers, res.Outliers) ||
		!reflect.DeepEqual(got.MergeTrace, res.MergeTrace) ||
		!reflect.DeepEqual(got.TracePoints, res.TracePoints) {
		t.Fatal("round trip changed the result")
	}
	if got.Stats != res.Stats {
		t.Fatalf("stats changed: %+v vs %+v", got.Stats, res.Stats)
	}
}

func TestReadResultRejectsGarbage(t *testing.T) {
	if _, err := ReadResult(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadResult(strings.NewReader(`{"version": 99, "result": {}}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := ReadResult(strings.NewReader(`{"version": 1}`)); err == nil {
		t.Fatal("missing payload accepted")
	}
}
