package core

import (
	"math"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/similarity"
)

// Indexed labeling.
//
// The reference labeler (labelPoint, kept in label.go as the oracle
// fixture) evaluates the measure on every (candidate, labeled point)
// pair: O(|candidates| × Σ|Lᵢ|) similarity calls, each a linear merge of
// two transactions. This file replaces that with an inverted index over
// the labeled points: one pass over a candidate's items accumulates the
// intersection size c = |t ∩ q| for exactly the labeled points q sharing
// an item with t, and the θ-test sim(t,q) ≥ θ is then decided from
// (c, |t|, |q|) alone through the measure's CountedMeasure form.
//
// Exactness argument: every built-in measure (Jaccard, Dice, Cosine,
// Overlap) is a pure function of those three numbers, and the counted
// form IS the Measure's implementation (similarity/counted.go), so the
// decision is bit-identical to the pairwise evaluation. Pairs the index
// never touches have c = 0, where all four measures are ≤ 0 < θ — so for
// θ > 0 skipping them cannot change any neighbor count. Custom Measure
// funcs (similarity.Counted returns nil) and θ ≤ 0 (a disjoint pair is
// then a neighbor) take the pairwise fallback automatically; the choice
// never changes results, only cost.
type labeler struct {
	ts    []dataset.Transaction
	sets  [][]int // L_i per cluster, dataset-global indices
	theta float64
	f     float64
	sim   similarity.Measure

	// denom[i] is (|L_i|+1)^f, hoisted out of the per-candidate loop.
	// math.Pow is pure, so the hoist preserves the reference's bits.
	denom []float64

	// Indexed path (indexed == false ⇒ pairwise fallback).
	indexed  bool
	cm       similarity.CountedMeasure
	ptGlobal []int32   // flattened labeled points: dataset index
	ptSet    []int32   // flattened labeled points: owning cluster index
	postings [][]int32 // item → flattened labeled-point ids holding it

	// postingsMap replaces the dense postings array when the labeled
	// points' item ids are sparse: the dense array is sized by the MAX id,
	// so a single huge id (legal in a FreezeSets call, and reachable from
	// a checksummed-but-mutated model file) would balloon it far past the
	// data. Non-nil ⇔ postings is nil; the lookup is the only difference.
	postingsMap map[dataset.Item][]int32
}

// newLabeler prepares the labeling phase for the given cluster subsets.
// A nil sim selects Jaccard, mirroring Config.withDefaults.
func newLabeler(ts []dataset.Transaction, sets [][]int, theta, f float64, sim similarity.Measure) *labeler {
	if sim == nil {
		sim = similarity.Jaccard
	}
	lb := &labeler{ts: ts, sets: sets, theta: theta, f: f, sim: sim}
	lb.denom = make([]float64, len(sets))
	for i, li := range sets {
		lb.denom[i] = math.Pow(float64(len(li)+1), f)
	}
	cm := similarity.Counted(sim)
	if cm == nil || theta <= 0 {
		return lb
	}
	lb.indexed = true
	lb.cm = cm

	npts := 0
	for _, li := range sets {
		npts += len(li)
	}
	lb.ptGlobal = make([]int32, 0, npts)
	lb.ptSet = make([]int32, 0, npts)
	nitems := 0
	occurrences := 0
	for i, li := range sets {
		for _, q := range li {
			lb.ptGlobal = append(lb.ptGlobal, int32(q))
			lb.ptSet = append(lb.ptSet, int32(i))
			occurrences += len(ts[q])
			for _, it := range ts[q] {
				if int(it) >= nitems {
					nitems = int(it) + 1
				}
			}
		}
	}
	// Dense array when the id space is within a small factor of the data
	// it indexes (always true for vocabulary-interned ids); map otherwise,
	// so the index stays linear in the labeled points no matter how large
	// an id a caller — or a corrupted-but-checksummed model file — throws
	// at it. The two lookups return the same lists, so the choice is
	// invisible to results.
	if nitems <= 4*occurrences+1024 {
		lb.postings = make([][]int32, nitems)
		for pid, q := range lb.ptGlobal {
			for _, it := range ts[q] {
				lb.postings[it] = append(lb.postings[it], int32(pid))
			}
		}
	} else {
		lb.postingsMap = make(map[dataset.Item][]int32, occurrences)
		for pid, q := range lb.ptGlobal {
			for _, it := range ts[q] {
				lb.postingsMap[it] = append(lb.postingsMap[it], int32(pid))
			}
		}
	}
	return lb
}

// labelScratch is one worker's reusable per-candidate state: intersection
// counters over the flattened labeled points and θ-neighbor counters over
// the sets, each paired with a touched list so clearing costs O(touched),
// not O(total).
type labelScratch struct {
	counts      []int32 // per flattened labeled point: |t ∩ q| so far
	touched     []int32 // flattened ids with counts > 0
	setN        []int32 // per set: θ-neighbors of the candidate found
	touchedSets []int32 // sets with setN > 0
}

func (lb *labeler) newScratch() *labelScratch {
	return &labelScratch{
		counts:      make([]int32, len(lb.ptGlobal)),
		touched:     make([]int32, 0, 256),
		setN:        make([]int32, len(lb.sets)),
		touchedSets: make([]int32, 0, len(lb.sets)),
	}
}

// label assigns one candidate: the cluster index maximizing
// N_i / (|L_i|+1)^f, ties toward the smaller index, or -1 when the
// candidate has no θ-neighbor in any L_i.
func (lb *labeler) label(t dataset.Transaction, sc *labelScratch) int {
	if !lb.indexed {
		return labelPoint(t, lb.ts, lb.sets, lb.theta, lb.f, lb.sim)
	}
	return lb.labelIndexed(t, sc)
}

// labelIndexed is the index-driven scoring pass for one candidate.
func (lb *labeler) labelIndexed(t dataset.Transaction, sc *labelScratch) int {
	// Accumulate |t ∩ q| for every labeled point q sharing an item.
	// Items outside the postings range — above it, or negative (invalid
	// per the data model, but the pairwise reference tolerates them in
	// candidates) — occur in no labeled point and cannot contribute.
	for _, it := range t {
		var plist []int32
		if lb.postings != nil {
			if it < 0 || int(it) >= len(lb.postings) {
				continue
			}
			plist = lb.postings[it]
		} else {
			plist = lb.postingsMap[it]
		}
		for _, pid := range plist {
			if sc.counts[pid] == 0 {
				sc.touched = append(sc.touched, pid)
			}
			sc.counts[pid]++
		}
	}
	// Threshold each touched pair from (c, |t|, |q|) and tally N_i.
	for _, pid := range sc.touched {
		c := sc.counts[pid]
		sc.counts[pid] = 0
		q := lb.ptGlobal[pid]
		if lb.cm(int(c), len(t), len(lb.ts[q])) >= lb.theta {
			si := lb.ptSet[pid]
			if sc.setN[si] == 0 {
				sc.touchedSets = append(sc.touchedSets, si)
			}
			sc.setN[si]++
		}
	}
	sc.touched = sc.touched[:0]

	// Argmax over the touched sets. The reference scans sets in ascending
	// index with a strict >, keeping the smallest index on score ties;
	// touchedSets is unordered, so the tie goes to the smaller index
	// explicitly — same winner, since both paths compute identical
	// score floats.
	best := -1
	bestScore := 0.0
	for _, si := range sc.touchedSets {
		score := float64(sc.setN[si]) / lb.denom[si]
		sc.setN[si] = 0
		i := int(si)
		if best == -1 || score > bestScore || (score == bestScore && i < best) {
			best, bestScore = i, score
		}
	}
	sc.touchedSets = sc.touchedSets[:0]
	return best
}

// labelCandidatesReference is the serial pairwise labeling loop — the
// oracle fixture the indexed/parallel labeler is proven byte-identical
// to, in the same role engine_reference.go plays for the merge phase.
func labelCandidatesReference(ts []dataset.Transaction, candidates []int, sets [][]int, theta, f float64, sim similarity.Measure) []int {
	if sim == nil {
		sim = similarity.Jaccard
	}
	out := make([]int, len(candidates))
	for i, p := range candidates {
		out[i] = labelPoint(ts[p], ts, sets, theta, f, sim)
	}
	return out
}
