package core

import (
	"runtime"

	"github.com/rockclust/rock/internal/chunkwork"
	"github.com/rockclust/rock/internal/dataset"
)

// Parallel labeling.
//
// Candidates are independent: each one's assignment reads only the
// immutable index (or the transactions, on the pairwise fallback) and
// writes its own slot of the output, so sharding them across workers
// cannot reorder or change anything — output is byte-identical for every
// worker count by construction, with no validation machinery needed.
// Workers claim fixed-size chunks off an atomic cursor (the shared
// chunkwork.Run loop), so a candidate with an expensive neighborhood
// doesn't stall a whole static shard.

// DefaultLabelSerialBelow is the default crossover for the labeling
// phase: below this many candidates the goroutine handoff costs more
// than the sharded scan saves, so labeling runs on the serial loop.
const DefaultLabelSerialBelow = 1024

// labelChunk is the unit of work a worker claims at a time.
const labelChunk = 64

// run labels every candidate, returning the chosen cluster index (or -1)
// per candidate in candidate order. workers and serialBelow follow the
// link/merge-phase conventions: workers 0 = GOMAXPROCS, serialBelow 0 =
// DefaultLabelSerialBelow, negative = always parallel. Workers ≤ 1
// always takes the serial loop.
func (lb *labeler) run(candidates []int, workers, serialBelow int) []int {
	if serialBelow == 0 {
		serialBelow = DefaultLabelSerialBelow
	}
	return lb.runEach(len(candidates), func(i int) dataset.Transaction { return lb.ts[candidates[i]] },
		workers, serialBelow, lb.newScratch, func(*labelScratch) {})
}

// runEach is the sharded assignment loop shared by the labeling phase
// and Model.AssignBatch: query i's transaction comes from at(i), its
// assignment lands in slot i of the result. get/put bracket each
// worker's scratch (the model routes them through its pool; the
// pipeline allocates fresh per worker). workers ≤ 1, or n below a
// positive serialBelow, takes the serial loop; the parallel path is
// chunkwork.Run, the claim loop shared with the neighbor and LSH
// stages. Either way the output is byte-identical, queries being
// independent.
func (lb *labeler) runEach(n int, at func(int) dataset.Transaction, workers, serialBelow int, get func() *labelScratch, put func(*labelScratch)) []int {
	out := make([]int, n)
	if n == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || (serialBelow > 0 && n < serialBelow) {
		sc := get()
		for i := range out {
			out[i] = lb.label(at(i), sc)
		}
		put(sc)
		return out
	}

	chunkwork.Run(n, workers, labelChunk, func(next func() (int, int, bool)) {
		sc := get()
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			for i := lo; i < hi; i++ {
				out[i] = lb.label(at(i), sc)
			}
		}
		put(sc)
	})
	return out
}

// labelCandidates is the phase-6 entry point: builds the labeler (index
// or fallback per the measure and θ) and shards the candidates per the
// config. cfg must already carry defaults.
func labelCandidates(ts []dataset.Transaction, candidates []int, sets [][]int, cfg Config) []int {
	if cfg.labelReference {
		return labelCandidatesReference(ts, candidates, sets, cfg.Theta, cfg.fval(), cfg.Measure)
	}
	return newLabeler(ts, sets, cfg.Theta, cfg.fval(), cfg.Measure).run(candidates, cfg.Workers, cfg.LabelSerialBelow)
}

// BenchLabelReference runs the serial pairwise reference labeler —
// exported for the `rockbench -label` sweep and the Label benchmarks.
func BenchLabelReference(ts []dataset.Transaction, candidates []int, sets [][]int, theta, f float64) []int {
	return labelCandidatesReference(ts, candidates, sets, theta, f, nil)
}

// BenchLabelIndexed runs the indexed labeler on the serial path.
func BenchLabelIndexed(ts []dataset.Transaction, candidates []int, sets [][]int, theta, f float64) []int {
	return newLabeler(ts, sets, theta, f, nil).run(candidates, 1, 0)
}

// BenchLabelParallel runs the indexed labeler sharded across the given
// worker count (forced past the serial crossover).
func BenchLabelParallel(ts []dataset.Transaction, candidates []int, sets [][]int, theta, f float64, workers int) []int {
	return newLabeler(ts, sets, theta, f, nil).run(candidates, workers, -1)
}
