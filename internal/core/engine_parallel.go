package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/rockclust/rock/internal/linkage"
)

// Parallel batched merge rounds over the arena engine.
//
// The serial engine pops the best pair, merges it, repairs the heap, and
// repeats. This file batches that loop: per round it pops a conflict-free
// prefix of the heap's pop order — pairs whose closed neighborhoods
// (the pair plus every cluster linked to either side) are mutually
// disjoint, detected with per-round stamp arrays — computes every
// batched merge concurrently across workers, commits the disjoint row
// rewrites concurrently, and repairs the affected heap entries once per
// round (pqueue.Lazy.BulkUpdate + Fix, or per-entry sifts when the round
// touched only a few).
//
// Output is byte-identical to the serial engine, and therefore to the
// reference engine. The argument, enforced piecewise by the oracle tests:
//
//   - Selection pops candidates in exactly the heap's (goodness desc,
//     id asc) order, so accepted pairs c1..cm are the serial engine's
//     next pops *provided no merge in the batch disturbs a later
//     candidate*. Disjoint closed neighborhoods guarantee a later
//     candidate's links, sizes, and cached bests are untouched by
//     earlier merges in the batch.
//   - The one remaining hazard is that merge cj's heap repairs can
//     *create* an entry better than candidate ci (i > j) — goodness is
//     not monotone under merging — in which case the serial engine would
//     have popped that new entry first. Each merge's repairs are
//     computed read-only in phase A, and a validation pass truncates the
//     batch at the first candidate beaten by an earlier merge's best
//     repaired entry. Truncated candidates are pushed back verbatim.
//   - Entries popped during selection for the partner v of an accepted
//     pair are exactly the entries the serial merge would invalidate;
//     they are dropped, and restored verbatim if validation truncates
//     their pair.
//
// Every round commits at least one merge (the first candidate is by
// construction the serial engine's next pop), so progress is guaranteed.

// DefaultMergeSerialBelow is the default crossover for the merge phase:
// below this many points the per-round selection, validation, and
// goroutine overheads of the batched engine outweigh its parallelism, so
// agglomeration takes the serial arena path.
const DefaultMergeSerialBelow = 2048

// agglomerateAuto dispatches between the serial arena engine and the
// parallel batched engine: workers (0 = GOMAXPROCS) and serialBelow (0 =
// DefaultMergeSerialBelow, negative = always batched) follow the same
// conventions as the link phase. Both paths produce byte-identical
// results; the knobs trade constant factors only.
func agglomerateAuto(n int, lt *linkage.Compact, k int, good GoodnessFunc, f float64, weedTrigger, weedMaxSize int, trace bool, workers, serialBelow int) engineResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if serialBelow == 0 {
		serialBelow = DefaultMergeSerialBelow
	}
	if workers <= 1 || (serialBelow > 0 && n < serialBelow) {
		return agglomerate(n, lt, k, good, f, weedTrigger, weedMaxSize, trace)
	}
	return agglomerateParallel(n, lt, k, good, f, weedTrigger, weedMaxSize, trace, workers)
}

// bestSet is one pending bestTo/bestG write computed in phase A and
// applied at commit.
type bestSet struct {
	slot int32
	to   int32
	g    float64
}

// heapPub is one pending heap publication for a slot whose cached best
// changed (or, for drop, whose row emptied).
type heapPub struct {
	slot int32
	id   int32
	prio float64
	drop bool // Invalidate instead of Update
}

// mergeCand is one accepted merge of a round: the pair (u, v), the
// logical id w assigned to the product, the popped goodness, and the
// phase-A outputs — the merged row, the deferred bestTo/bestG writes,
// and the heap publications the merge will make.
type mergeCand struct {
	u, v    int32
	w       int32
	g       float64
	merged  []linkEntry
	sets    []bestSet
	pubs    []heapPub
	retired [2][]linkEntry // row buffers freed by the commit
}

// batcher drives batched merge rounds over an arena. The stamp arrays
// implement per-round conflict detection without clearing: a slot is
// marked iff its stamp equals the current epoch.
type batcher struct {
	a       *arena
	workers int

	epoch      int32
	mergeStamp []int32 // slot is u or v of an accepted pair this round
	nbStamp    []int32 // slot is in the closed neighborhood of an accepted pair

	cands   []mergeCand
	dropped []int32 // slots whose heap entries selection dropped as pair partners

	// Persistent helper goroutines: spawned on the first parallel phase,
	// fed one phaseRun per phase, alive until the run ends — rounds are
	// numerous and short, so per-round spawning would dominate.
	phaseCh chan *phaseRun

	stats batchStats
}

// phaseRun is one parallel phase of a round (phase A or commit): a work
// function over candidate indices [0, m), drained cooperatively by the
// coordinator and the helper goroutines via an atomic cursor.
type phaseRun struct {
	fn   func(int)
	m    int32
	next atomic.Int32
	done sync.WaitGroup
}

// drain processes work items until the cursor passes m.
func (p *phaseRun) drain() {
	for {
		i := p.next.Add(1) - 1
		if i >= p.m {
			return
		}
		p.fn(int(i))
	}
}

// batchStats instruments the round structure — exposed to tests (which
// assert that clustered workloads genuinely batch) and cheap enough to
// collect unconditionally.
type batchStats struct {
	rounds    int // merge rounds executed
	maxBatch  int // largest committed batch
	truncated int // candidates pushed back by validation
}

// agglomerateParallel is the batched counterpart of agglomerate: same
// inputs, byte-identical outputs, merges executed in conflict-free
// concurrent rounds across the given number of workers (≥ 2).
func agglomerateParallel(n int, lt *linkage.Compact, k int, good GoodnessFunc, f float64, weedTrigger, weedMaxSize int, trace bool, workers int) engineResult {
	return newBatcher(n, lt, good, f, workers).run(k, weedTrigger, weedMaxSize, trace)
}

// newBatcher seeds an arena and the round state around it.
func newBatcher(n int, lt *linkage.Compact, good GoodnessFunc, f float64, workers int) *batcher {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &batcher{
		a:          newArena(n, lt, good, f),
		workers:    workers,
		mergeStamp: make([]int32, n),
		nbStamp:    make([]int32, n),
	}
}

// run executes batched merge rounds until k clusters remain or the links
// run out, mirroring the serial agglomerate loop round by round.
func (b *batcher) run(k, weedTrigger, weedMaxSize int, trace bool) engineResult {
	a := b.a
	n := len(a.alive)
	defer b.stopWorkers()

	var res engineResult
	nextID := n
	active := n
	weedDone := weedTrigger <= 0

	for active > k {
		// The serial engine checks the weeding trigger after every merge,
		// so a batch must not step past it: cap the round at the merge
		// where active first reaches the trigger (and always at k).
		limit := active - k
		if !weedDone {
			if c := active - weedTrigger; c < limit {
				if c < 1 {
					c = 1
				}
				limit = c
			}
		}

		if b.selectBatch(limit, nextID) {
			res.stoppedEarly = true
			break
		}
		kept := len(b.cands)

		// Record trace steps before the commit mutates ids and sizes;
		// candidate i sees the arena exactly as the serial engine's i-th
		// merge of the round would (disjointness).
		recordTrace := func(kept int) {
			if !trace {
				return
			}
			for i := 0; i < kept; i++ {
				c := &b.cands[i]
				res.trace = append(res.trace, MergeStep{
					A: int(a.id[c.u]), B: int(a.id[c.v]), Into: int(c.w),
					Goodness: c.g, Links: int(a.rowCount(c.u, c.v)),
					SizeA: int(a.size[c.u]), SizeB: int(a.size[c.v]),
					Remaining: active - (i + 1),
				})
			}
		}

		if kept == 1 {
			// A single candidate is trivially a valid serial prefix: skip
			// the simulation and validation machinery and merge in place,
			// exactly like one serial engine step.
			c := &b.cands[0]
			recordTrace(1)
			a.pool = append(a.pool, c.merged[:0])
			c.merged = nil
			a.merge(c.u, c.v, c.w)
		} else {
			b.computeAll()
			kept = b.validate()
			recordTrace(kept)
			b.commitAll(kept)
			b.repairHeap(kept)
		}

		b.stats.rounds++
		if kept > b.stats.maxBatch {
			b.stats.maxBatch = kept
		}

		nextID += kept
		active -= kept
		res.merges += kept

		if !weedDone && active <= weedTrigger {
			weedDone = true
			active -= a.weed(weedMaxSize, &res)
		}
	}

	a.collect(&res)
	return res
}

// selectBatch pops up to limit conflict-free candidates off the heap,
// stamping each accepted pair's closed neighborhood. It returns true when
// the round's first pop ends agglomeration (empty heap or non-positive
// goodness) — the serial engine's stoppedEarly condition, checked at the
// identical point in the pop order.
func (b *batcher) selectBatch(limit, nextID int) (stop bool) {
	a := b.a
	b.epoch++
	e := b.epoch
	b.cands = b.cands[:0]
	b.dropped = b.dropped[:0]

	for len(b.cands) < limit {
		ui, g, ok := a.heap.Pop()
		if !ok {
			return len(b.cands) == 0
		}
		u := int32(ui)
		if g <= 0 {
			if len(b.cands) == 0 {
				return true
			}
			// The serial engine would reach this entry only after the
			// batch's merges and their repairs; hand it back untouched.
			a.publish(u)
			return false
		}
		if b.mergeStamp[u] == e {
			// u is the partner of an accepted pair: the serial merge
			// invalidates this entry before ever popping it. Drop it, and
			// remember the slot in case validation truncates its pair.
			b.dropped = append(b.dropped, u)
			continue
		}
		v := a.bestTo[u]
		if b.conflicts(u, v, e) {
			a.publish(u)
			return false
		}
		b.accept(u, v, int32(nextID+len(b.cands)), g, e)
	}
	return false
}

// conflicts reports whether pair (u, v) touches the closed neighborhood
// of any candidate accepted earlier this round. Two merges with disjoint
// closed neighborhoods read and write disjoint arena state, and neither
// can change the other's goodness or cached bests.
func (b *batcher) conflicts(u, v, e int32) bool {
	if b.nbStamp[u] == e || b.mergeStamp[v] == e || b.nbStamp[v] == e {
		return true
	}
	for _, f := range b.a.rows[u] {
		if b.mergeStamp[f.to] == e || b.nbStamp[f.to] == e {
			return true
		}
	}
	for _, f := range b.a.rows[v] {
		if b.mergeStamp[f.to] == e || b.nbStamp[f.to] == e {
			return true
		}
	}
	return false
}

// accept records (u, v) → w as a candidate and stamps its closed
// neighborhood. The merged-row buffer is drawn from the pool here, in the
// serial selection phase, so phase A never contends for it; candidate
// structs are recycled across rounds so their sets/pubs slices keep their
// capacity.
func (b *batcher) accept(u, v, w int32, g float64, e int32) {
	a := b.a
	b.mergeStamp[u], b.mergeStamp[v] = e, e
	for _, f := range a.rows[u] {
		b.nbStamp[f.to] = e
	}
	for _, f := range a.rows[v] {
		b.nbStamp[f.to] = e
	}
	if len(b.cands) < cap(b.cands) {
		b.cands = b.cands[:len(b.cands)+1]
	} else {
		b.cands = append(b.cands, mergeCand{})
	}
	c := &b.cands[len(b.cands)-1]
	c.u, c.v, c.w, c.g = u, v, w, g
	c.merged = a.takeBuf()
}

// runPhase executes fn(i) for i in [0, m) across the workers. The
// coordinator participates; helpers are spawned once per run and handed
// phases over a channel (a completed phase's WaitGroup orders its writes
// before the coordinator's next serial step). m ≤ 1 runs inline.
func (b *batcher) runPhase(fn func(int), m int) {
	nw := b.workers
	if nw > m {
		nw = m
	}
	if nw <= 1 {
		for i := 0; i < m; i++ {
			fn(i)
		}
		return
	}
	if b.phaseCh == nil {
		ch := make(chan *phaseRun)
		b.phaseCh = ch
		for w := 0; w < b.workers-1; w++ {
			go func() {
				for p := range ch {
					p.drain()
					p.done.Done()
				}
			}()
		}
	}
	p := &phaseRun{fn: fn, m: int32(m)}
	helpers := nw - 1
	p.done.Add(helpers)
	for i := 0; i < helpers; i++ {
		b.phaseCh <- p
	}
	p.drain()
	p.done.Wait()
}

// stopWorkers releases the helper goroutines at the end of a run.
func (b *batcher) stopWorkers() {
	if b.phaseCh != nil {
		close(b.phaseCh)
		b.phaseCh = nil
	}
}

// computeAll runs phase A — the read-only computation of every
// candidate's merged row, deferred best-repairs, and heap publications —
// across the workers. Candidates touch disjoint state, so the only shared
// access is reads of arena arrays no candidate writes this phase.
func (b *batcher) computeAll() {
	b.runPhase(func(i int) { b.compute(&b.cands[i]) }, len(b.cands))
}

// compute fills in one candidate: the two-pointer merged row, then — for
// every neighbor x of the product — exactly the cached-best repair the
// serial patchNeighbor would make, recorded instead of applied. The
// product's own best (the serial rescanBest(u) + publish(u)) comes last.
// All reads are of pre-round state; disjointness makes that identical to
// the state the serial engine's corresponding merge would observe.
func (b *batcher) compute(c *mergeCand) {
	a := b.a
	u, v, w := c.u, c.v, c.w
	sizeW := a.size[u] + a.size[v]
	c.merged = mergeRows(a.rows[u], a.rows[v], u, v, c.merged)
	c.sets, c.pubs = c.sets[:0], c.pubs[:0]

	for _, eM := range c.merged {
		x := eM.to
		// The product carries the youngest id, so pairGoodness(x, w) puts
		// the product's size first for every neighbor.
		gw := a.good(int(eM.cnt), int(sizeW), int(a.size[x]), a.f)
		oldTo, oldG := a.bestTo[x], a.bestG[x]
		if oldTo == u || oldTo == v {
			bt, bg := b.rescanWith(x, u, v, w, gw)
			c.sets = append(c.sets, bestSet{slot: x, to: bt, g: bg})
			if bg != oldG {
				c.pubs = append(c.pubs, heapPub{slot: x, id: a.id[x], prio: bg})
			}
		} else if gw > oldG {
			// Strict >: on a tie the incumbent keeps winning because the
			// product's id is the youngest — mirrors patchNeighbor.
			c.sets = append(c.sets, bestSet{slot: x, to: u, g: gw})
			c.pubs = append(c.pubs, heapPub{slot: x, id: a.id[x], prio: gw})
		}
	}

	// The product's best over its merged row: max goodness, ties toward
	// the smaller logical id — rescanBest on the row the commit installs.
	bt, bg, bid := int32(-1), 0.0, int32(0)
	for _, eM := range c.merged {
		g := a.good(int(eM.cnt), int(sizeW), int(a.size[eM.to]), a.f)
		if bt < 0 || g > bg || (g == bg && a.id[eM.to] < bid) {
			bt, bg, bid = eM.to, g, a.id[eM.to]
		}
	}
	c.sets = append(c.sets, bestSet{slot: u, to: bt, g: bg})
	if bt < 0 {
		c.pubs = append(c.pubs, heapPub{slot: u, drop: true})
	} else {
		c.pubs = append(c.pubs, heapPub{slot: u, id: w, prio: bg})
	}
}

// rescanWith computes what rescanBest(x) returns after u and v merge into
// slot u with logical id w and neighbor goodness gw, without touching x's
// row: iterate the current row, collapsing the u and v entries into one
// logical entry for the product. Order-independent because live logical
// ids are distinct.
func (b *batcher) rescanWith(x, u, v, w int32, gw float64) (int32, float64) {
	a := b.a
	bt, bg, bid := int32(-1), 0.0, int32(0)
	seenW := false
	for _, f := range a.rows[x] {
		var yslot, yid int32
		var g float64
		if f.to == u || f.to == v {
			if seenW {
				continue
			}
			seenW = true
			yslot, yid, g = u, w, gw
		} else {
			yslot, yid, g = f.to, a.id[f.to], a.pairGoodness(x, f.to, f.cnt)
		}
		if bt < 0 || g > bg || (g == bg && yid < bid) {
			bt, bg, bid = yslot, g, yid
		}
	}
	return bt, bg
}

// validate returns the length of the longest batch prefix that matches
// the serial pop order: candidate i survives iff no heap entry published
// by merges 1..i-1 would beat its popped entry (goodness desc, id asc).
// Truncated candidates are pushed back verbatim — including any partner
// entries selection dropped on their behalf — and their buffers recycled.
func (b *batcher) validate() int {
	a := b.a
	m := len(b.cands)
	kept := m
	haveMax := false
	var maxPrio float64
	var maxID int32
	for i := 0; i < m; i++ {
		c := &b.cands[i]
		if i > 0 && haveMax {
			if uid := a.id[c.u]; maxPrio > c.g || (maxPrio == c.g && maxID < uid) {
				kept = i
				break
			}
		}
		for _, p := range c.pubs {
			if p.drop {
				continue
			}
			if !haveMax || p.prio > maxPrio || (p.prio == maxPrio && p.id < maxID) {
				haveMax, maxPrio, maxID = true, p.prio, p.id
			}
		}
	}
	if kept == m {
		return kept
	}
	b.stats.truncated += m - kept
	for i := kept; i < m; i++ {
		c := &b.cands[i]
		a.publish(c.u) // restore the popped entry; nothing was committed
		a.pool = append(a.pool, c.merged[:0])
		c.merged = nil
	}
	// Partner entries dropped during selection belonged to specific
	// pairs; restore the ones whose pair was truncated. A truncated v is
	// never inside a kept candidate's neighborhood (stamps are checked
	// before acceptance), so the restored entry's values are still
	// current.
	for _, z := range b.dropped {
		for i := kept; i < len(b.cands); i++ {
			if b.cands[i].v == z {
				a.publish(z)
				break
			}
		}
	}
	b.cands = b.cands[:kept]
	return kept
}

// commitAll applies the kept candidates' merges to the arena. Each commit
// writes only its own closed neighborhood — rows, member lists, sizes,
// ids, cached bests — so the batch commits concurrently; heap repair is
// deferred to repairHeap.
func (b *batcher) commitAll(kept int) {
	b.runPhase(func(i int) { b.a.commitMerge(&b.cands[i]) }, kept)
}

// commitMerge is merge() with the heap interactions stripped out: install
// the merged row, fold v's member list into u's, rewrite every neighbor's
// row, and apply the deferred bestTo/bestG writes. Freed row buffers are
// parked on the candidate and pooled serially in repairHeap.
func (a *arena) commitMerge(c *mergeCand) {
	u, v := c.u, c.v
	c.retired[0], c.retired[1] = a.rows[u][:0], a.rows[v][:0]
	a.rows[u] = c.merged
	a.rows[v] = nil

	a.alive[v] = false
	a.id[u] = c.w
	a.size[u] += a.size[v]
	a.next[a.tail[u]] = a.head[v]
	a.tail[u] = a.tail[v]

	for _, e := range c.merged {
		a.patchRow(e.to, u, v, e.cnt)
	}
	for _, s := range c.sets {
		a.bestTo[s.slot], a.bestG[s.slot] = s.to, s.g
	}
}

// bulkRepairFraction: a round's heap repair switches from per-entry sifts
// to BulkUpdate + one Fix when the publications amount to at least 1/8 of
// the heap array — below that, n·log sifts beat an O(len) heapify.
const bulkRepairFraction = 8

// repairHeap applies the round's heap mutations serially: invalidate each
// merged-away partner, publish every repaired best. Large rounds use the
// lazy heap's bulk path (append all entries, heapify once).
func (b *batcher) repairHeap(kept int) {
	a := b.a
	total := 0
	for i := 0; i < kept; i++ {
		total += len(b.cands[i].pubs)
	}
	bulk := total*bulkRepairFraction >= a.heap.Len()
	for i := 0; i < kept; i++ {
		c := &b.cands[i]
		a.heap.Invalidate(int(c.v))
		for _, p := range c.pubs {
			switch {
			case p.drop:
				a.heap.Invalidate(int(p.slot))
			case bulk:
				a.heap.BulkUpdate(int(p.slot), p.id, p.prio)
			default:
				a.heap.Update(int(p.slot), p.id, p.prio)
			}
		}
		a.pool = append(a.pool, c.retired[0], c.retired[1])
		c.retired[0], c.retired[1] = nil, nil
		c.merged = nil
	}
	if bulk {
		a.heap.Fix()
	}
}

// BenchAgglomerateParallel runs the batched merge engine over a prebuilt
// CSR link table with the given worker count, exported for the
// `rockbench -merge` sweep; it is the same agglomerateParallel the
// pipeline dispatches to when Config.Workers exceeds one.
func BenchAgglomerateParallel(n int, lt *linkage.Compact, k int, f float64, workers int) (clusters, merges int) {
	res := agglomerateParallel(n, lt, k, RockGoodness, f, 0, 0, false, workers)
	return len(res.clusters), res.merges
}
