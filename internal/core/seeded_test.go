package core

import (
	"reflect"
	"strings"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

// TestClusterSeededEmptySeedOracle proves the degenerate case: with no
// seed groups every point starts as a singleton, so ClusterSeeded must
// reproduce Cluster byte-for-byte — same clusters, same outliers, same
// stats — across pruning, weeding, and labeling configurations.
func TestClusterSeededEmptySeedOracle(t *testing.T) {
	ts, _ := groupedData(3, 40, 7)
	for j := 0; j < 4; j++ {
		ts = append(ts, dataset.NewTransaction(dataset.Item(2000+10*j), dataset.Item(2001+10*j)))
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{Theta: 0.3, K: 3, Seed: 1}},
		{"pruned", Config{Theta: 0.3, K: 3, MinNeighbors: 2, Seed: 2}},
		{"weeded", Config{Theta: 0.3, K: 3, WeedAt: 0.5, WeedMaxSize: 2, Seed: 3}},
		{"label-outliers", Config{Theta: 0.3, K: 3, MinNeighbors: 2, LabelOutliers: true, Seed: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := Cluster(ts, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ClusterSeeded(ts, nil, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seeded run with empty seed diverged from Cluster:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestClusterSeededPreservesGroups feeds a finished clustering back in as
// the seed: the engine starts at K groups, performs no merges, and
// returns the seed unchanged.
func TestClusterSeededPreservesGroups(t *testing.T) {
	ts, _ := groupedData(3, 40, 11)
	cfg := Config{Theta: 0.3, K: 3, Seed: 11}
	base, err := Cluster(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusterSeeded(ts, base.Clusters, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, len(ts))
	if res.Stats.Merges != 0 {
		t.Fatalf("seeding at K performed %d merges, want 0", res.Stats.Merges)
	}
	if !reflect.DeepEqual(res.Clusters, base.Clusters) {
		t.Fatalf("seed groups not preserved:\n got %v\nwant %v", res.Clusters, base.Clusters)
	}
}

// TestClusterSeededAbsorbsNewPoints is the incremental-refresh shape: the
// input is the old model's points plus fresh arrivals — some from known
// regimes, some from a brand-new one. Seeded agglomeration must fold the
// known-regime arrivals into their seed groups, form a new cluster for
// the new regime, and never split a seed group.
func TestClusterSeededAbsorbsNewPoints(t *testing.T) {
	ts, truth := groupedData(3, 40, 13)
	cfg := Config{Theta: 0.3, K: 3, Seed: 13}
	base, err := Cluster(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Arrivals: 10 more from group 0 and a 20-point fourth regime.
	all := append([]dataset.Transaction(nil), ts...)
	more, moreTruth := groupedData(1, 10, 17)
	all = append(all, more...)
	truth = append(truth, moreTruth...) // group 0 again
	fresh, _ := groupedData(4, 20, 19)
	fresh = fresh[3*20:] // keep only the 4th regime's 20 points
	for range fresh {
		truth = append(truth, 3)
	}
	all = append(all, fresh...)

	res, err := ClusterSeeded(all, base.Clusters, Config{Theta: 0.3, K: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, len(all))
	if res.K() != 4 {
		t.Fatalf("found %d clusters, want 4", res.K())
	}
	// Every cluster pure w.r.t. truth, and every seed group intact inside
	// a single output cluster.
	for ci, members := range res.Clusters {
		g0 := truth[members[0]]
		for _, p := range members {
			if truth[p] != g0 {
				t.Fatalf("cluster %d mixes regimes %d and %d", ci, g0, truth[p])
			}
		}
	}
	for gi, group := range base.Clusters {
		ci := res.Assign[group[0]]
		for _, p := range group {
			if res.Assign[p] != ci {
				t.Fatalf("seed group %d split: point %d in cluster %d, point %d in cluster %d",
					gi, group[0], ci, p, res.Assign[p])
			}
		}
	}
	// The fresh regime formed its own cluster.
	base3 := len(ts) + 10
	ci := res.Assign[base3]
	if ci < 0 {
		t.Fatalf("fresh-regime point %d left outlier", base3)
	}
	for p := base3; p < len(all); p++ {
		if res.Assign[p] != ci {
			t.Fatalf("fresh regime split across clusters %d and %d", ci, res.Assign[p])
		}
	}
}

// TestClusterSeededValidation exercises every rejection path.
func TestClusterSeededValidation(t *testing.T) {
	ts, _ := groupedData(2, 10, 3)
	ok := Config{Theta: 0.3, K: 2, Seed: 3}
	cases := []struct {
		name string
		seed [][]int
		cfg  Config
		want string
	}{
		{"sampling", nil, Config{Theta: 0.3, K: 2, SampleSize: 5}, "does not sample"},
		{"tracing", nil, Config{Theta: 0.3, K: 2, TraceMerges: true}, "cannot trace"},
		{"empty-group", [][]int{{0, 1}, {}}, ok, "group 1 is empty"},
		{"out-of-range", [][]int{{0, len(ts)}}, ok, "outside the input"},
		{"negative", [][]int{{-1}}, ok, "outside the input"},
		{"overlap", [][]int{{0, 1}, {1, 2}}, ok, "more than one seed group"},
		{"bad-theta", nil, Config{Theta: 2, K: 2}, "outside [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ClusterSeeded(ts, tc.seed, tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want one containing %q", err, tc.want)
			}
		})
	}
}

// TestClusterSeededAllPruned drives the degenerate arena with zero slots:
// every point unseeded and below MinNeighbors.
func TestClusterSeededAllPruned(t *testing.T) {
	var ts []dataset.Transaction
	for j := 0; j < 5; j++ {
		ts = append(ts, dataset.NewTransaction(dataset.Item(100*j), dataset.Item(100*j+1)))
	}
	res, err := ClusterSeeded(ts, nil, Config{Theta: 0.5, K: 2, MinNeighbors: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 0 || len(res.Outliers) != len(ts) {
		t.Fatalf("got %d clusters, %d outliers; want 0 clusters, all outliers", res.K(), len(res.Outliers))
	}
}

// TestModelLabeledGroups round-trips a frozen model's labeled points into
// ClusterSeeded — the exact hand-off the incremental refresh performs —
// and checks the accessor's copies are detached from the model.
func TestModelLabeledGroups(t *testing.T) {
	ts, _ := groupedData(3, 40, 5)
	cfg := Config{Theta: 0.3, K: 3, Seed: 5, LabelFraction: 1, MaxLabelPoints: 20}
	res, err := Cluster(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Freeze(ts, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts, groups := m.LabeledGroups()
	if len(groups) != m.K() {
		t.Fatalf("%d groups for a k=%d model", len(groups), m.K())
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != m.LabeledPoints() || len(pts) != m.LabeledPoints() {
		t.Fatalf("groups cover %d of %d labeled points (len(pts)=%d)", total, m.LabeledPoints(), len(pts))
	}

	// Mutating the returned slices must not corrupt the model.
	groups[0] = append(groups[0], -99)
	pts2, groups2 := m.LabeledGroups()
	if len(groups2[0]) == len(groups[0]) {
		t.Fatal("LabeledGroups returned aliased group slices")
	}
	groups[0] = groups[0][:len(groups[0])-1]
	_ = pts2

	// The hand-off itself: seeded re-cluster of reps + fresh arrivals.
	arrivals, _ := groupedData(1, 8, 23)
	input := append(append([]dataset.Transaction(nil), pts...), arrivals...)
	res2, err := ClusterSeeded(input, groups, Config{Theta: 0.3, K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res2.K() != 3 {
		t.Fatalf("seeded re-cluster found %d clusters, want 3", res2.K())
	}
	for gi, g := range groups {
		ci := res2.Assign[g[0]]
		for _, p := range g {
			if res2.Assign[p] != ci {
				t.Fatalf("model group %d split in seeded re-cluster", gi)
			}
		}
	}
}
