package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

// weedTraceTable: two strong 4-cliques plus a straggler pair that merges
// early (strongest links) and is then weeded. Tracing is on, so the
// straggler's merge IS in the dendrogram even though its product is
// discarded — the combination under test.
func weedTraceTable() (int, map[[2]int]int) {
	pairs := map[[2]int]int{
		{0, 1}: 2, {0, 2}: 2, {0, 3}: 2, {1, 2}: 2, {1, 3}: 2, {2, 3}: 2,
		{4, 5}: 2, {4, 6}: 2, {4, 7}: 2, {5, 6}: 2, {5, 7}: 2, {6, 7}: 2,
		{8, 9}: 9,
	}
	return 10, pairs
}

// TestTraceWithWeeding verifies the engine-level contract when TraceMerges
// and weeding are combined: the trace records every merge (including
// merges whose product is later weeded), weeded points appear in no
// cluster, and replaying the full trace over a union-find yields exactly
// the surviving clusters plus the weeded groups as separate components.
func TestTraceWithWeeding(t *testing.T) {
	n, pairs := weedTraceTable()
	lt := tableFromPairs(n, pairs)
	// The straggler pair merges first; cliques complete after 6 more
	// merges; at 3 active clusters weeding discards the size-2 straggler.
	res := agglomerate(n, lt, 2, RockGoodness, 1.0/3.0, 3, 2, true)
	if !reflect.DeepEqual(res.weeded, []int{8, 9}) {
		t.Fatalf("weeded = %v, want [8 9]", res.weeded)
	}
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	if !reflect.DeepEqual(res.clusters, want) {
		t.Fatalf("clusters = %v, want %v", res.clusters, want)
	}
	if len(res.trace) != res.merges {
		t.Fatalf("trace has %d steps, merges = %d", len(res.trace), res.merges)
	}
	// The weeded pair's merge is part of the dendrogram.
	foundStraggler := false
	for _, s := range res.trace {
		if s.A == 8 && s.B == 9 {
			foundStraggler = true
		}
	}
	if !foundStraggler {
		t.Fatal("trace omits the weeded pair's merge")
	}

	// Replaying the whole trace: every surviving cluster is a component,
	// and the weeded pair is its own component disjoint from all clusters.
	comps, err := CutTrace(n, res.trace, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != n-res.merges {
		t.Fatalf("full replay has %d components, want %d", len(comps), n-res.merges)
	}
	for _, cl := range res.clusters {
		found := false
		for _, comp := range comps {
			if reflect.DeepEqual(comp, cl) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("cluster %v is not a component of the replay %v", cl, comps)
		}
	}
	found := false
	for _, comp := range comps {
		if reflect.DeepEqual(comp, []int{8, 9}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("weeded group {8,9} missing from replay %v", comps)
	}
}

// TestCutTraceOnWeededDendrogram documents CutTrace's semantics over a
// weeded run: the cut counts weeded groups as components (CutTrace knows
// merges, not discards), so cutting at the result's k returns k plus the
// number of weeded groups, and cutting coarser stops at that floor
// because no further merge steps exist.
func TestCutTraceOnWeededDendrogram(t *testing.T) {
	n, pairs := weedTraceTable()
	lt := tableFromPairs(n, pairs)
	res := agglomerate(n, lt, 2, RockGoodness, 1.0/3.0, 3, 2, true)
	floor := n - res.merges // 2 clusters + 1 weeded group

	cut, err := CutTrace(n, res.trace, len(res.clusters))
	if err != nil {
		t.Fatal(err)
	}
	if len(cut) != floor {
		t.Fatalf("cut at k=%d gives %d components, want the weeded floor %d",
			len(res.clusters), len(cut), floor)
	}
	// Cutting finer than the floor splits clusters but never resurrects
	// weeded members into them.
	finer, err := CutTrace(n, res.trace, floor+2)
	if err != nil {
		t.Fatal(err)
	}
	if len(finer) != floor+2 {
		t.Fatalf("finer cut gives %d components, want %d", len(finer), floor+2)
	}
	for _, comp := range finer {
		hasWeeded, hasClustered := false, false
		for _, p := range comp {
			if p == 8 || p == 9 {
				hasWeeded = true
			} else {
				hasClustered = true
			}
		}
		if hasWeeded && hasClustered {
			t.Fatalf("component %v mixes weeded and clustered points", comp)
		}
	}
}

// TestClusterTraceWithWeedingPipeline runs the full pipeline with
// TraceMerges and WeedAt together — previously untested — and checks the
// result-level contract: the trace pairs with TracePoints, weeded points
// are outliers, and replaying the trace reproduces every final cluster.
func TestClusterTraceWithWeedingPipeline(t *testing.T) {
	ts, _ := groupedData(3, 25, 41)
	// A few isolated points that weeding should discard: items from a
	// pool no group uses.
	for i := 0; i < 3; i++ {
		ts = append(ts, dataset.NewTransaction(
			dataset.Item(100+10*i), dataset.Item(101+10*i), dataset.Item(102+10*i)))
	}
	res, err := Cluster(ts, Config{
		Theta: 0.3, K: 3, Seed: 5,
		TraceMerges: true,
		WeedAt:      0.2, WeedMaxSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, len(ts))
	if res.Stats.Weeded == 0 {
		t.Fatal("weeding did not fire; the isolated points should be weeded (or pruned earlier)")
	}
	if len(res.MergeTrace) != res.Stats.Merges {
		t.Fatalf("trace %d steps, stats %d merges", len(res.MergeTrace), res.Stats.Merges)
	}
	if len(res.TracePoints) == 0 {
		t.Fatal("TracePoints empty with TraceMerges set")
	}
	// Replay the dendrogram: each result cluster must be a component.
	comps, err := CutTrace(len(res.TracePoints), res.MergeTrace, 1)
	if err != nil {
		t.Fatal(err)
	}
	for ci, members := range res.Clusters {
		mapped := map[int]bool{}
		for _, p := range members {
			mapped[p] = true
		}
		found := false
		for _, comp := range comps {
			global := make([]int, len(comp))
			for i, l := range comp {
				global[i] = res.TracePoints[l]
			}
			if len(global) == len(members) {
				all := true
				for _, g := range global {
					if !mapped[g] {
						all = false
						break
					}
				}
				if all {
					found = true
					break
				}
			}
		}
		if !found {
			t.Fatalf("cluster %d (%v) is not a replay component", ci, members)
		}
	}
}

// TestWeedingDeterministicWithTrace reruns a weeded, traced agglomeration
// and requires identical traces — the weeding path must not perturb merge
// ids or ordering.
func TestWeedingDeterministicWithTrace(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 10 + r.Intn(40)
		lt := randomLinkTable(r, n)
		trigger := 1 + r.Intn(n)
		a := agglomerate(n, lt, 1, RockGoodness, 0.3, trigger, 2, true)
		b := agglomerate(n, lt, 1, RockGoodness, 0.3, trigger, 2, true)
		if !reflect.DeepEqual(a.trace, b.trace) || !reflect.DeepEqual(a.weeded, b.weeded) {
			t.Fatalf("trial %d: nondeterministic weeded trace", trial)
		}
	}
}
