package core

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/rockclust/rock/internal/dataset"
)

// ChunkedConfig parameterizes ChunkedCluster, the two-phase adaptation of
// ROCK to datasets that cannot be clustered wholesale (the classic
// strategy for scaling multi-pass clusterers: cluster each arriving chunk
// independently, keep only representatives, then cluster the
// representatives).
type ChunkedConfig struct {
	// Base configures each per-chunk ROCK run and the final run over
	// representatives (Theta, K, Goodness, outlier handling, ...).
	// Base.K is the final target; per-chunk runs use ChunkK.
	Base Config
	// ChunkSize is the number of points per chunk (mandatory, ≥ 2).
	ChunkSize int
	// ChunkK is the per-chunk cluster target; 0 defaults to 2×Base.K
	// (over-cluster the chunks, let the representative phase consolidate).
	ChunkK int
	// Reps is the number of representative points kept per chunk cluster
	// (default 4).
	Reps int
}

// ChunkedCluster runs ROCK chunk by chunk: each chunk is clustered
// independently, Reps random members of every chunk cluster survive as
// representatives, the representatives are clustered down to Base.K, and
// every point inherits the final cluster of its chunk cluster (by
// majority vote of that chunk cluster's representatives). Chunk-level
// outliers stay outliers. Memory is bounded by the chunk size plus the
// representative set — the property that makes the strategy stream-able.
func ChunkedCluster(ts []dataset.Transaction, cfg ChunkedConfig) (*Result, error) {
	if cfg.ChunkSize < 2 {
		return nil, fmt.Errorf("core: chunk size %d, need at least 2", cfg.ChunkSize)
	}
	if err := cfg.Base.Validate(); err != nil {
		return nil, err
	}
	if cfg.ChunkK <= 0 {
		cfg.ChunkK = 2 * cfg.Base.K
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 4
	}

	n := len(ts)
	res := &Result{Assign: make([]int, n), Stats: Stats{N: n, FVal: cfg.Base.withDefaults().fval()}}
	for i := range res.Assign {
		res.Assign[i] = -1
	}
	if n == 0 {
		return res, nil
	}
	rng := rand.New(rand.NewSource(cfg.Base.Seed))

	// Phase 1: per-chunk clustering; collect representatives and remember
	// each point's chunk cluster.
	type chunkCluster struct {
		members []int // global indices
		reps    []int // global indices of representatives
	}
	var ccs []chunkCluster
	var repIdx []int // global indices, concatenated reps of all chunk clusters
	for lo := 0; lo < n; lo += cfg.ChunkSize {
		hi := lo + cfg.ChunkSize
		if hi > n {
			hi = n
		}
		chunkCfg := cfg.Base
		chunkCfg.K = cfg.ChunkK
		chunkCfg.SampleSize = 0 // chunks are already memory-sized
		chunkCfg.Seed = cfg.Base.Seed + int64(lo)
		sub, err := Cluster(ts[lo:hi], chunkCfg)
		if err != nil {
			return nil, err
		}
		res.Stats.foldLSH(sub.Stats.LSHCandidatePairs, sub.Stats.LSHVerifiedEdges, sub.Stats.LSHRecallSampled, sub.Stats.LSHRecall)
		for _, members := range sub.Clusters {
			cc := chunkCluster{members: make([]int, len(members))}
			for i, p := range members {
				cc.members[i] = lo + p
			}
			pick := SampleIndices(len(cc.members), cfg.Reps, rng)
			for _, pi := range pick {
				cc.reps = append(cc.reps, cc.members[pi])
				repIdx = append(repIdx, cc.members[pi])
			}
			ccs = append(ccs, cc)
		}
		for _, p := range sub.Outliers {
			res.Outliers = append(res.Outliers, lo+p)
		}
	}
	if len(ccs) == 0 {
		sort.Ints(res.Outliers)
		return res, nil
	}

	// Phase 2: cluster the representatives down to Base.K.
	repTrans := make([]dataset.Transaction, len(repIdx))
	for i, p := range repIdx {
		repTrans[i] = ts[p]
	}
	finalCfg := cfg.Base
	finalCfg.SampleSize = 0
	finalCfg.MinNeighbors = 0 // representatives were already vetted
	finalCfg.WeedAt = 0
	final, err := Cluster(repTrans, finalCfg)
	if err != nil {
		return nil, err
	}
	res.Stats.foldLSH(final.Stats.LSHCandidatePairs, final.Stats.LSHVerifiedEdges, final.Stats.LSHRecallSampled, final.Stats.LSHRecall)

	// Phase 3: each chunk cluster inherits the majority final cluster of
	// its representatives; its members follow.
	repAssign := make(map[int]int, len(repIdx)) // global rep index -> final cluster
	for i, p := range repIdx {
		repAssign[p] = final.Assign[i]
	}
	res.Clusters = make([][]int, len(final.Clusters))
	for _, cc := range ccs {
		votes := map[int]int{}
		for _, r := range cc.reps {
			if ci := repAssign[r]; ci >= 0 {
				votes[ci]++
			}
		}
		best, bestN := -1, 0
		for ci, v := range votes {
			if v > bestN || (v == bestN && ci < best) {
				best, bestN = ci, v
			}
		}
		if best < 0 {
			// All representatives ended as outliers of the final phase.
			res.Outliers = append(res.Outliers, cc.members...)
			continue
		}
		for _, p := range cc.members {
			res.Assign[p] = best
		}
		res.Clusters[best] = append(res.Clusters[best], cc.members...)
	}
	// Drop final clusters that attracted no chunk cluster and renumber.
	compact := res.Clusters[:0]
	for _, members := range res.Clusters {
		if len(members) > 0 {
			sort.Ints(members)
			compact = append(compact, members)
		}
	}
	res.Clusters = compact
	sort.Slice(res.Clusters, func(i, j int) bool { return res.Clusters[i][0] < res.Clusters[j][0] })
	for ci, members := range res.Clusters {
		for _, p := range members {
			res.Assign[p] = ci
		}
	}
	res.Stats.ClustersFound = len(res.Clusters)
	sort.Ints(res.Outliers)
	return res, nil
}
