package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/similarity"
)

// modelOracleMeasures are the four serializable built-ins every model
// oracle configuration cycles through.
var modelOracleMeasures = []struct {
	name string
	fn   similarity.Measure
}{
	{"jaccard", similarity.Jaccard},
	{"dice", similarity.Dice},
	{"cosine", similarity.Cosine},
	{"overlap", similarity.Overlap},
}

// modelWorkerCounts mirrors labelWorkerCounts, per the acceptance
// criteria.
var modelWorkerCounts = []int{1, 2, 4, 8}

// modelFixture builds a random frozen model plus the global data it was
// frozen from: transactions, the labeled subsets (dataset-global
// indices), and a query set disjoint from the labeled points.
func modelFixture(r *rand.Rand, m similarity.Measure) (*Model, []dataset.Transaction, [][]int, []dataset.Transaction, float64, float64) {
	n := 40 + r.Intn(220)
	ts := randomTransactionsCore(r, n, 1+r.Intn(8), 4+r.Intn(30))
	split := 1 + r.Intn(n-1)
	k := 1 + r.Intn(6)
	clusters := make([][]int, 0, k)
	for i := 0; i < k; i++ {
		clusters = append(clusters, nil)
	}
	for p := 0; p < split; p++ {
		ci := r.Intn(k)
		clusters[ci] = append(clusters[ci], p)
	}
	nonEmpty := clusters[:0]
	for _, c := range clusters {
		if len(c) > 0 {
			nonEmpty = append(nonEmpty, c)
		}
	}
	cfg := Config{
		Theta:          0.05 + 0.9*r.Float64(),
		K:              len(nonEmpty),
		LabelFraction:  0.05 + 0.9*r.Float64(),
		MaxLabelPoints: 1 + r.Intn(25),
	}.withDefaults()
	sets := labelSets(nonEmpty, cfg, r)
	f := MarketBasketF(cfg.Theta)
	model, err := FreezeSets(ts, sets, nil, cfg.Theta, f, m)
	if err != nil {
		panic(err)
	}
	// The fixtures sit far below the AssignBatch serial crossover; force
	// the sharded path so the oracle actually exercises it.
	model.batchSerialBelow = -1
	queries := ts[split:]
	return model, ts, sets, queries, cfg.Theta, f
}

// TestModelOracleAssign proves Model.Assign and Model.AssignBatch
// bit-identical to the serial pairwise reference labelPoint over the
// global transactions and sets the model was frozen from — all four
// built-in measures, workers 1/2/4/8 (run under -race in CI).
func TestModelOracleAssign(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := modelOracleMeasures[int(seed)%len(modelOracleMeasures)]
		model, ts, sets, queries, theta, f := modelFixture(r, m.fn)

		ref := make([]int, len(queries))
		for i, q := range queries {
			ref[i] = labelPoint(q, ts, sets, theta, f, m.fn)
		}
		for i, q := range queries {
			if got := model.Assign(q); got != ref[i] {
				t.Fatalf("seed=%d measure=%s query %d: Assign = %d, labelPoint = %d", seed, m.name, i, got, ref[i])
			}
		}
		for _, workers := range modelWorkerCounts {
			if got := model.AssignBatch(queries, workers); !reflect.DeepEqual(got, ref) {
				t.Fatalf("seed=%d measure=%s workers=%d: AssignBatch diverges from labelPoint", seed, m.name, workers)
			}
		}
		if !model.denomEqual() {
			t.Fatalf("seed=%d: frozen denominators diverge from (|L_i|+1)^f", seed)
		}
	}
}

// TestModelReproducesSampledRun pins Freeze's strongest contract: a
// model frozen from a sampled run reuses the run's own labeled subsets
// (Result.LabelSets), so Assign on every labeling candidate returns
// exactly the cluster the run assigned it to — across measures and
// LabelOutliers, and identically after a save/load round trip.
func TestModelReproducesSampledRun(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		n := 150 + r.Intn(200)
		ts := randomTransactionsCore(r, n, 2+r.Intn(7), 6+r.Intn(24))
		m := modelOracleMeasures[trial%len(modelOracleMeasures)]
		cfg := Config{
			Theta:          0.1 + 0.6*r.Float64(),
			K:              1 + r.Intn(5),
			Measure:        m.fn,
			Seed:           r.Int63(),
			SampleSize:     30 + r.Intn(n-30),
			LabelFraction:  0.05 + 0.9*r.Float64(),
			MaxLabelPoints: 1 + r.Intn(30),
			LabelOutliers:  trial%2 == 0,
		}
		res, err := Cluster(ts, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.Clusters) == 0 {
			continue
		}
		if res.Stats.LabelCandidates > 0 && len(res.LabelSets) != len(res.Clusters) {
			t.Fatalf("trial %d: run recorded %d label sets for %d clusters", trial, len(res.LabelSets), len(res.Clusters))
		}
		model, err := Freeze(ts, res, cfg)
		if err != nil {
			t.Fatalf("trial %d: freeze: %v", trial, err)
		}
		var buf bytes.Buffer
		if err := model.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadModel(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		inSample := make(map[int]bool, len(res.SampleIdx))
		for _, p := range res.SampleIdx {
			inSample[p] = true
		}
		checked := 0
		for p := 0; p < n; p++ {
			if inSample[p] {
				continue // sample members were clustered, not labeled
			}
			if got := model.Assign(ts[p]); got != res.Assign[p] {
				t.Fatalf("trial %d measure=%s candidate %d: model assigns %d, the run assigned %d",
					trial, m.name, p, got, res.Assign[p])
			}
			if got := loaded.Assign(ts[p]); got != res.Assign[p] {
				t.Fatalf("trial %d measure=%s candidate %d: reloaded model diverges from the run", trial, m.name, p)
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("trial %d: no out-of-sample candidates checked", trial)
		}
	}
}

// TestModelFreezeDrawsLabelSets pins Freeze's fallback for runs that
// never labeled (no sampling, so Result.LabelSets is nil): the subsets
// are drawn fresh from Result.Clusters by the same labelSets pass the
// labeling phase uses, seeded by cfg.Seed — so a frozen model's answers
// equal a labelPoint pass over exactly those subsets.
func TestModelFreezeDrawsLabelSets(t *testing.T) {
	ts, _ := groupedData(3, 40, 7)
	cfg := Config{Theta: 0.4, K: 3, Seed: 11, LabelFraction: 0.3, MaxLabelPoints: 20}
	res, err := Cluster(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Freeze(ts, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSets := labelSets(res.Clusters, cfg.withDefaults(), rand.New(rand.NewSource(cfg.Seed)))
	queries := randomTransactionsCore(rand.New(rand.NewSource(3)), 60, 6, 40)
	f := cfg.withDefaults().fval()
	for i, q := range queries {
		want := labelPoint(q, ts, wantSets, cfg.Theta, f, similarity.Jaccard)
		if got := model.Assign(q); got != want {
			t.Fatalf("query %d: Assign = %d, labelPoint over the drawn sets = %d", i, got, want)
		}
	}
	if got, want := model.ClusterSizes(), res.Sizes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ClusterSizes = %v, want %v", got, want)
	}
	if model.K() != res.K() || model.Theta() != cfg.Theta || model.F() != f || model.MeasureName() != "jaccard" {
		t.Fatalf("metadata wrong: %v", model)
	}
}

// TestModelAssignConcurrent hammers one shared model from many
// goroutines (meaningful under -race: the frozen index must be
// read-only and every query's scratch its own).
func TestModelAssignConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	model, ts, sets, queries, theta, f := modelFixture(r, similarity.Jaccard)
	ref := make([]int, len(queries))
	for i, q := range queries {
		ref[i] = labelPoint(q, ts, sets, theta, f, similarity.Jaccard)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				if g%2 == 0 {
					for i, q := range queries {
						if got := model.Assign(q); got != ref[i] {
							t.Errorf("goroutine %d: query %d: %d != %d", g, i, got, ref[i])
							return
						}
					}
				} else if got := model.AssignBatch(queries, 4); !reflect.DeepEqual(got, ref) {
					t.Errorf("goroutine %d: AssignBatch diverged", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestModelSaveLoadRoundTrip: Save → Load → Save must be byte-identical,
// and the loaded model must answer every query exactly as the original —
// with and without a frozen vocabulary.
func TestModelSaveLoadRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(100 + seed))
		m := modelOracleMeasures[int(seed)%len(modelOracleMeasures)]
		model, _, _, queries, _, _ := modelFixture(r, m.fn)
		if seed%2 == 0 {
			items := make([]string, 64)
			for i := range items {
				items[i] = fmt.Sprintf("item-%d", i)
			}
			model.items = items
		}

		var a bytes.Buffer
		if err := model.Save(&a); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadModel(bytes.NewReader(a.Bytes()))
		if err != nil {
			t.Fatalf("seed=%d: load: %v", seed, err)
		}
		loaded.batchSerialBelow = -1 // exercise the sharded path post-load
		var b bytes.Buffer
		if err := loaded.Save(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("seed=%d: save→load→save not byte-identical (%d vs %d bytes)", seed, a.Len(), b.Len())
		}
		if !reflect.DeepEqual(model.AssignBatch(queries, 1), loaded.AssignBatch(queries, 3)) {
			t.Fatalf("seed=%d: loaded model assigns differently", seed)
		}
		if loaded.Theta() != model.Theta() || loaded.F() != model.F() ||
			loaded.MeasureName() != model.MeasureName() || loaded.K() != model.K() ||
			loaded.LabeledPoints() != model.LabeledPoints() ||
			!reflect.DeepEqual(loaded.ClusterSizes(), model.ClusterSizes()) ||
			!reflect.DeepEqual(loaded.Items(), model.Items()) {
			t.Fatalf("seed=%d: metadata changed across the round trip:\n  %v\n  %v", seed, model, loaded)
		}
	}
}

// goldenModelBytes freezes a small deterministic model (with vocabulary)
// and returns its serialized form — the base the load-failure table
// mutates.
func goldenModelBytes(t testing.TB) []byte {
	t.Helper()
	v := dataset.NewVocabulary()
	d := &dataset.Dataset{Vocab: v}
	for _, line := range []string{"a b c", "a b d", "e f g", "e f h"} {
		var items []dataset.Item
		for _, tok := range strings.Fields(line) {
			items = append(items, v.Intern(tok))
		}
		d.Trans = append(d.Trans, dataset.NewTransaction(items...))
	}
	res, err := Cluster(d.Trans, Config{Theta: 0.4, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := FreezeDataset(d, res, Config{Theta: 0.4, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reseal recomputes the trailing CRC over a mutated body, so a test can
// corrupt the payload without tripping the checksum gate.
func reseal(b []byte) []byte {
	body := b[:len(b)-4]
	out := append([]byte(nil), body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	return append(out, crc[:]...)
}

// TestModelLoadFailures drives every Load failure path over mutations of
// one golden model file: each must return an error wrapping the right
// sentinel with an actionable message, never a panic or a silent zero
// model.
func TestModelLoadFailures(t *testing.T) {
	golden := goldenModelBytes(t)
	if _, err := LoadModel(bytes.NewReader(golden)); err != nil {
		t.Fatalf("golden model does not load: %v", err)
	}
	// The measure name "jaccard" sits at a fixed offset: magic(8) +
	// version(4) + theta(8) + f(8) + strlen(4).
	const measureOff = 8 + 4 + 8 + 8 + 4

	cases := []struct {
		name     string
		mutate   func([]byte) []byte
		sentinel error
		mention  string // a substring the message must carry to be actionable
	}{
		{
			name:     "truncated below the fixed frame",
			mutate:   func(b []byte) []byte { return b[:10] },
			sentinel: ErrModelTruncated,
			mention:  "bytes",
		},
		{
			name:     "empty file",
			mutate:   func(b []byte) []byte { return nil },
			sentinel: ErrModelTruncated,
			mention:  "truncated",
		},
		{
			name:     "truncated mid-payload",
			mutate:   func(b []byte) []byte { return b[:len(b)/2] },
			sentinel: ErrModelChecksum,
			mention:  "truncated or corrupted",
		},
		{
			name: "flipped payload byte",
			mutate: func(b []byte) []byte {
				b = append([]byte(nil), b...)
				b[len(b)/2] ^= 0xFF
				return b
			},
			sentinel: ErrModelChecksum,
			mention:  "hash",
		},
		{
			name:     "wrong magic",
			mutate:   func(b []byte) []byte { return append([]byte("NOTAMODL"), b[8:]...) },
			sentinel: ErrModelMagic,
			mention:  "not a rock model",
		},
		{
			name: "unknown version",
			mutate: func(b []byte) []byte {
				b = append([]byte(nil), b...)
				binary.LittleEndian.PutUint32(b[8:12], 99)
				return reseal(b)
			},
			sentinel: ErrModelVersion,
			mention:  "version 99",
		},
		{
			name: "unknown measure metadata",
			mutate: func(b []byte) []byte {
				b = append([]byte(nil), b...)
				copy(b[measureOff:measureOff+7], "hamming")
				return reseal(b)
			},
			sentinel: ErrModelMeasure,
			mention:  "hamming",
		},
		{
			name: "non-finite exponent",
			mutate: func(b []byte) []byte {
				b = append([]byte(nil), b...)
				// f sits after magic(8) + version(4) + theta(8).
				binary.LittleEndian.PutUint64(b[20:28], math.Float64bits(math.NaN()))
				return reseal(b)
			},
			sentinel: ErrModelCorrupt,
			mention:  "f not finite",
		},
		{
			name: "labeled point item outside the vocabulary",
			mutate: func(b []byte) []byte {
				b = append([]byte(nil), b...)
				// First point's last item (keeping the ascending order
				// intact): after measure(7) + k(4) + 4 cluster entries
				// (4×12: the golden run finds 4 singleton clusters) +
				// nitems(4) + two preceding items (2×4).
				itemOff := measureOff + 7 + 4 + 48 + 4 + 8
				binary.LittleEndian.PutUint32(b[itemOff:itemOff+4], 1000)
				return reseal(b)
			},
			sentinel: ErrModelCorrupt,
			mention:  "vocabulary",
		},
		{
			name: "trailing bytes after the payload",
			mutate: func(b []byte) []byte {
				return reseal(append(append([]byte(nil), b[:len(b)-4]...), 0, 0, 0, 0, 0, 0, 0, 0))
			},
			sentinel: ErrModelCorrupt,
			mention:  "trailing",
		},
		{
			name: "set sizes exceed the stored points",
			mutate: func(b []byte) []byte {
				b = append([]byte(nil), b...)
				// k's offset: measure "jaccard" (7 bytes) precedes it.
				kOff := measureOff + 7
				// First cluster entry follows k: size uint64, setSize uint32.
				setOff := kOff + 4 + 8
				binary.LittleEndian.PutUint32(b[setOff:setOff+4], 1<<30)
				return reseal(b)
			},
			sentinel: ErrModelCorrupt,
			mention:  "cluster table",
		},
		{
			name: "cluster size overflows int",
			mutate: func(b []byte) []byte {
				b = append([]byte(nil), b...)
				// First cluster entry's clusterSize uint64 follows k.
				sizeOff := measureOff + 7 + 4
				binary.LittleEndian.PutUint64(b[sizeOff:sizeOff+8], ^uint64(0))
				return reseal(b)
			},
			sentinel: ErrModelCorrupt,
			mention:  "cluster size",
		},
		{
			// The regression this PR's fuzzer shook out: a value in
			// (2³¹, 2⁶³) stays positive through the uint64 → int
			// conversion on 64-bit hosts, so the old `< 0` check let it
			// through as a "valid" multi-terapoint cluster.
			name: "cluster size in (2^31, 2^63)",
			mutate: func(b []byte) []byte {
				b = append([]byte(nil), b...)
				sizeOff := measureOff + 7 + 4
				binary.LittleEndian.PutUint64(b[sizeOff:sizeOff+8], 1<<40)
				return reseal(b)
			},
			sentinel: ErrModelCorrupt,
			mention:  "plausible point count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadModel(bytes.NewReader(tc.mutate(append([]byte(nil), golden...))))
			if err == nil {
				t.Fatal("mutated model loaded without error")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("error %q does not wrap %q", err, tc.sentinel)
			}
			if !strings.Contains(err.Error(), tc.mention) {
				t.Fatalf("error %q does not mention %q", err, tc.mention)
			}
		})
	}
}

// TestModelFreezeRejects pins the freeze-time error paths: custom
// measures cannot serialize, and empty runs have nothing to freeze.
func TestModelFreezeRejects(t *testing.T) {
	ts, _ := groupedData(2, 20, 3)
	res, err := Cluster(ts, Config{Theta: 0.4, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	custom := func(a, b dataset.Transaction) float64 { return 1 }
	if _, err := Freeze(ts, res, Config{Theta: 0.4, K: 2, Measure: custom}); err == nil || !strings.Contains(err.Error(), "custom") {
		t.Fatalf("custom measure: err = %v", err)
	}
	if _, err := Freeze(ts, &Result{}, Config{Theta: 0.4, K: 2}); err == nil || !strings.Contains(err.Error(), "no clusters") {
		t.Fatalf("empty result: err = %v", err)
	}
	if _, err := FreezeSets(ts, [][]int{{0, 99}}, nil, 0.4, 0.3, nil); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("out-of-range set index: err = %v", err)
	}
	if _, err := FreezeSets(ts, [][]int{{0}}, nil, math.NaN(), 0.3, nil); err == nil || !strings.Contains(err.Error(), "theta") {
		t.Fatalf("NaN theta: err = %v", err)
	}
	if _, err := FreezeSets(ts, [][]int{{0}}, nil, 0.4, math.Inf(1), nil); err == nil || !strings.Contains(err.Error(), "finite") {
		t.Fatalf("infinite f: err = %v", err)
	}
}

// TestModelAssignDataset proves cross-vocabulary assignment exact: a
// query dataset read under a different vocabulary (different id order,
// plus items the model has never seen) must assign identically to the
// same records interned under the model's own vocabulary.
func TestModelAssignDataset(t *testing.T) {
	lines := []string{
		"milk bread butter", "milk bread jam", "bread butter jam",
		"beer chips salsa", "beer chips dip", "chips salsa dip",
	}
	build := func(order []string) *dataset.Dataset {
		v := dataset.NewVocabulary()
		d := &dataset.Dataset{Vocab: v}
		for _, name := range order {
			v.Intern(name)
		}
		for _, line := range lines {
			var items []dataset.Item
			for _, tok := range strings.Fields(line) {
				items = append(items, v.Intern(tok))
			}
			d.Trans = append(d.Trans, dataset.NewTransaction(items...))
		}
		return d
	}
	d := build(nil)
	res, err := Cluster(d.Trans, Config{Theta: 0.2, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Theta: 0.2, K: 2, Seed: 1, LabelFraction: 1, MaxLabelPoints: 10}
	m, err := FreezeDataset(d, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same-vocabulary baseline.
	want := m.AssignBatch(d.Trans, 1)

	// Reversed interning order scrambles every item id; extra never-seen
	// items must count toward |t| without matching anything.
	rev := build([]string{"dip", "salsa", "chips", "beer", "jam", "butter", "bread", "milk"})
	got, err := m.AssignDataset(rev, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reordered vocabulary changes assignments: %v vs %v", got, want)
	}

	// A record with unknown items alongside known ones: the unknowns
	// must dilute the similarity exactly as a fresh in-process item would.
	v2 := dataset.NewVocabulary()
	q := &dataset.Dataset{Vocab: v2}
	q.Trans = append(q.Trans, dataset.NewTransaction(v2.Intern("milk"), v2.Intern("bread"), v2.Intern("quinoa"), v2.Intern("kale")))
	gotQ, err := m.AssignDataset(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	v3 := dataset.NewVocabulary()
	for _, name := range m.Items() {
		v3.Intern(name)
	}
	wantQ := m.Assign(dataset.NewTransaction(v3.Intern("milk"), v3.Intern("bread"), v3.Intern("quinoa"), v3.Intern("kale")))
	if gotQ[0] != wantQ {
		t.Fatalf("unknown items handled differently: %d vs %d", gotQ[0], wantQ)
	}

	// Models frozen from raw ids cannot translate names.
	raw, err := FreezeSets(d.Trans, [][]int{{0, 1}, {3, 4}}, nil, 0.2, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.AssignDataset(rev, 1); err == nil || !strings.Contains(err.Error(), "vocabulary") {
		t.Fatalf("vocabless model: err = %v", err)
	}
}

// TestModelSparseItemIDs pins the labeler's sparse-postings fallback: a
// model whose labeled points carry item ids far beyond the data (legal
// through FreezeSets, and reachable from a checksummed model file) must
// neither over-allocate a dense max-id-sized postings array nor change a
// single assignment, in-process or across a save/load round trip.
func TestModelSparseItemIDs(t *testing.T) {
	huge := dataset.Item(1<<31 - 2)
	ts := []dataset.Transaction{
		dataset.NewTransaction(1, 2, 3, huge),
		dataset.NewTransaction(1, 2, 4, huge-1),
		dataset.NewTransaction(5_000_000, 6_000_000, 7_000_000),
		dataset.NewTransaction(5_000_000, 6_000_000, 8_000_000),
		dataset.NewTransaction(1, 2, 3, 4),
		dataset.NewTransaction(5_000_000, 6_000_000, 7_000_000, 8_000_000),
		dataset.NewTransaction(9, 10, 11),
	}
	m, err := FreezeSets(ts, [][]int{{0, 1}, {2, 3}}, nil, 0.4, MarketBasketF(0.4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.lb.postings != nil {
		t.Fatalf("dense postings array built over a %d-wide id space", huge)
	}
	if !m.lb.indexed {
		t.Fatal("sparse ids fell back to the pairwise path; the map index should serve them")
	}
	queries := ts[4:]
	want := BenchAssignReference(m, queries)
	if got := m.AssignBatch(queries, 2); !reflect.DeepEqual(got, want) {
		t.Fatalf("sparse postings disagree with the pairwise reference: %v vs %v", got, want)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 4096 {
		t.Fatalf("sparse-id model serialized to %d bytes; the ids should cost 4 bytes each", buf.Len())
	}
	loaded, err := LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.AssignBatch(queries, 1); !reflect.DeepEqual(got, want) {
		t.Fatalf("reloaded sparse-id model disagrees: %v vs %v", got, want)
	}
}

// TestLabelerDensePostingsStayDense guards the crossover: ordinary
// vocabulary-interned ids must keep the dense array (the hot path the
// oracle tests measure), not quietly degrade to map lookups.
func TestLabelerDensePostingsStayDense(t *testing.T) {
	ts, _ := groupedData(3, 30, 7)
	m, err := FreezeSets(ts, [][]int{{0, 1, 2}, {30, 31}, {60, 61, 62}}, nil, 0.3, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.lb.postings == nil {
		t.Fatal("dense ids built a sparse postings map")
	}
}
