package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/linkage"
	"github.com/rockclust/rock/internal/pqueue"
	"github.com/rockclust/rock/internal/similarity"
)

// Seeded clustering: the incremental-refresh entry point.
//
// A streaming refresh does not need to re-discover the clusters it
// already has — it needs to decide where the newly parked outliers fit
// relative to them. ClusterSeeded runs the same pipeline as Cluster but
// initializes the agglomeration arena from pre-formed groups (the frozen
// model's labeled clusters) instead of singletons: θ-neighbors and
// point-level links are computed over the whole input, the point-level
// link table is folded to the initial-cluster level, and the merge loop
// starts from len(seed) groups plus one singleton per unseeded point.
// The paper's "cluster a sample, label the rest" economics applied
// online: the expensive O(Σ mᵢ²) phases run over reps+outliers (a few
// hundred points) instead of the full retained sample.

// ClusterSeeded runs the ROCK pipeline with the agglomeration seeded
// from pre-formed groups. seed[i] lists input indices of initial group
// i; groups must be non-empty and disjoint (points may be left out —
// they start as singletons). An empty seed degenerates to Cluster over
// the full input: the oracle test proves that case byte-identical.
//
// Differences from Cluster, by construction of the use case:
//   - No sampling (SampleSize must be 0) — the input already is the
//     reduced set.
//   - No merge tracing (TraceMerges must be false) — trace singleton
//     ids are undefined when slots start as groups.
//   - MinNeighbors prunes only unseeded points: seeded points earned
//     membership in the generation being refreshed, and the arena needs
//     every group intact.
//   - The merge phase always runs the serial arena engine; seeded
//     inputs are refresh-sized, far below the parallel crossover.
//
// Weeding (WeedAt/WeedMaxSize) triggers on the count of initial
// clusters (groups + singletons), and cluster size is measured in
// points — a pre-formed group is normally bigger than WeedMaxSize and
// thus immune, which is the intended asymmetry: only stray outlier
// singletons and micro-clusters get discarded.
func ClusterSeeded(ts []dataset.Transaction, seed [][]int, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SampleSize > 0 {
		return nil, fmt.Errorf("core: seeded clustering does not sample (SampleSize=%d); pass the reduced input directly", cfg.SampleSize)
	}
	if cfg.TraceMerges {
		return nil, fmt.Errorf("core: seeded clustering cannot trace merges: trace singleton ids are undefined for pre-formed groups")
	}
	cfg = cfg.withDefaults()
	n := len(ts)

	seeded := make([]bool, n)
	for gi, group := range seed {
		if len(group) == 0 {
			return nil, fmt.Errorf("core: seed group %d is empty", gi)
		}
		for _, p := range group {
			if p < 0 || p >= n {
				return nil, fmt.Errorf("core: seed group %d references point %d outside the input (n=%d)", gi, p, n)
			}
			if seeded[p] {
				return nil, fmt.Errorf("core: point %d appears in more than one seed group", p)
			}
			seeded[p] = true
		}
	}

	res := &Result{Assign: make([]int, n), Stats: Stats{N: n, Sampled: n, FVal: cfg.fval()}}
	for i := range res.Assign {
		res.Assign[i] = -1
	}
	if n == 0 {
		return res, nil
	}

	rng := rand.New(rand.NewSource(cfg.Seed))

	// θ-neighbors over the whole input — the same switch as Cluster.
	simOpts := similarity.Options{Measure: cfg.Measure, IncludeSelf: cfg.IncludeSelf, Workers: cfg.Workers}
	var nb *similarity.Neighbors
	switch {
	case cfg.LSHNeighbors:
		nb = similarity.ComputeLSH(ts, cfg.Theta, similarity.LSHOptions{
			Hashes:      cfg.LSHHashes,
			Bands:       cfg.LSHBands,
			Seed:        cfg.Seed,
			Measure:     cfg.Measure,
			IncludeSelf: cfg.IncludeSelf,
			Workers:     cfg.Workers,
		})
	case cfg.BruteNeighbors:
		nb = similarity.Compute(ts, cfg.Theta, simOpts)
	default:
		nb = similarity.ComputeIndexed(ts, cfg.Theta, simOpts)
	}
	res.Stats.AvgNeighbors, res.Stats.MaxNeighbors, _ = nb.Stats()
	res.Stats.addLSH(nb.LSH)

	// Prune sparse unseeded points; seeded points are never pruned.
	var kept, pruned []int
	for i := 0; i < n; i++ {
		if seeded[i] || cfg.MinNeighbors <= 0 || nb.Degree(i) >= cfg.MinNeighbors {
			kept = append(kept, i)
		} else {
			pruned = append(pruned, i)
		}
	}
	res.Stats.Pruned = len(pruned)
	res.Outliers = append(res.Outliers, pruned...)
	keptNb := filterNeighbors(nb, kept)

	// Point-level links over the kept input, then folded to the
	// initial-cluster level: initial cluster ids are seed groups
	// 0..len(seed)-1 in seed order, then one singleton per unseeded kept
	// point in ascending order. The fold sums point-level counts between
	// distinct initial clusters; intra-group links vanish, exactly as
	// they would had the groups been merged pairwise.
	plt := linkage.Build(keptNb, linkage.Options{Workers: cfg.Workers, SerialBelow: cfg.LinkSerialBelow})
	res.Stats.LinkPairs = plt.Pairs()
	res.Stats.LinkEntries = int64(plt.Entries())

	keptLocal := make([]int32, n)
	for i := range keptLocal {
		keptLocal[i] = -1
	}
	for l, p := range kept {
		keptLocal[p] = int32(l)
	}
	members := make([][]int32, len(seed), len(seed)+len(kept))
	clusterOf := make([]int32, len(kept))
	for gi, group := range seed {
		ms := make([]int32, len(group))
		for i, p := range group {
			l := keptLocal[p]
			ms[i] = l
			clusterOf[l] = int32(gi)
		}
		members[gi] = ms
	}
	for l, p := range kept {
		if !seeded[p] {
			clusterOf[l] = int32(len(members))
			members = append(members, []int32{int32(l)})
		}
	}
	m := len(members)

	acc := make([]map[int32]int64, m)
	for l := range kept {
		ci := clusterOf[l]
		plt.Row(l, func(j, cnt int) {
			cj := clusterOf[j]
			if cj == ci {
				return
			}
			if acc[ci] == nil {
				acc[ci] = make(map[int32]int64)
			}
			acc[ci][cj] += int64(cnt)
		})
	}
	tab := &linkage.Table{Adj: make([]map[int32]int32, m)}
	for i := range tab.Adj {
		row := make(map[int32]int32, len(acc[i]))
		for j, c := range acc[i] {
			if c > math.MaxInt32 {
				return nil, fmt.Errorf("core: aggregated cross-link count %d between seed clusters exceeds 2^31", c)
			}
			row[j] = int32(c)
		}
		tab.Adj[i] = row
	}
	clt := linkage.CompactFrom(tab)

	// Agglomerate from the seeded arena, always on the serial engine.
	weedTrigger := 0
	if cfg.WeedAt > 0 {
		weedTrigger = int(math.Ceil(cfg.WeedAt * float64(m)))
		if weedTrigger < cfg.K {
			weedTrigger = cfg.K
		}
	}
	eng := runAgglomeration(newArenaSeeded(members, len(kept), clt, cfg.Goodness, cfg.fval()),
		cfg.K, weedTrigger, cfg.WeedMaxSize, false)
	res.Stats.Merges = eng.merges
	res.Stats.StoppedEarly = eng.stoppedEarly
	res.Stats.Weeded = len(eng.weeded)
	for _, l := range eng.weeded {
		res.Outliers = append(res.Outliers, kept[l])
	}

	res.Clusters = make([][]int, len(eng.clusters))
	for ci, ms := range eng.clusters {
		global := make([]int, len(ms))
		for i, l := range ms {
			global[i] = kept[l]
		}
		res.Clusters[ci] = global
		for _, g := range global {
			res.Assign[g] = ci
		}
	}
	res.Stats.ClustersFound = len(res.Clusters)

	// Labeling: with no sampling the only candidates are the outliers,
	// and only under LabelOutliers — the same tail Cluster runs.
	if cfg.LabelOutliers && len(res.Outliers) > 0 {
		candidates := res.Outliers
		res.Outliers = nil
		sort.Ints(candidates)
		res.Stats.LabelCandidates = len(candidates)
		if len(res.Clusters) == 0 {
			res.Stats.Unlabeled += len(candidates)
			res.Outliers = append(res.Outliers, candidates...)
		} else {
			sets := labelSets(res.Clusters, cfg, rng)
			res.LabelSets = sets
			assign := labelCandidates(ts, candidates, sets, cfg)
			for i, p := range candidates {
				ci := assign[i]
				if ci < 0 {
					res.Stats.Unlabeled++
					res.Outliers = append(res.Outliers, p)
					continue
				}
				res.Stats.Labeled++
				res.Assign[p] = ci
				res.Clusters[ci] = append(res.Clusters[ci], p)
			}
			for _, c := range res.Clusters {
				sort.Ints(c)
			}
		}
	}

	sort.Ints(res.Outliers)
	return res, nil
}

// newArenaSeeded builds the arena with one slot per pre-formed group:
// members[s] lists the kept-local point indices of slot s, npts the
// total kept points (the intrusive next chains index points, not slots),
// and lt the cluster-level CSR over slots. Bests are computed in a
// second pass because pairGoodness needs every slot's size in place.
func newArenaSeeded(members [][]int32, npts int, lt *linkage.Compact, good GoodnessFunc, f float64) *arena {
	m := len(members)
	a := &arena{
		good:   good,
		f:      f,
		alive:  make([]bool, m),
		id:     make([]int32, m),
		size:   make([]int32, m),
		head:   make([]int32, m),
		tail:   make([]int32, m),
		next:   make([]int32, npts),
		rows:   make([][]linkEntry, m),
		bestTo: make([]int32, m),
		bestG:  make([]float64, m),
		heap:   pqueue.NewLazy(m),
	}
	backing := make([]linkEntry, 0, lt.Entries())
	for s, ms := range members {
		a.alive[s] = true
		a.id[s] = int32(s)
		a.size[s] = int32(len(ms))
		a.head[s], a.tail[s] = ms[0], ms[len(ms)-1]
		for i := 0; i+1 < len(ms); i++ {
			a.next[ms[i]] = ms[i+1]
		}
		a.next[ms[len(ms)-1]] = -1
		start := len(backing)
		lt.Row(s, func(j, cnt int) {
			backing = append(backing, linkEntry{to: int32(j), cnt: int32(cnt)})
		})
		a.rows[s] = backing[start:len(backing):len(backing)]
	}
	for s := 0; s < m; s++ {
		a.rescanBest(int32(s))
		if a.bestTo[s] >= 0 {
			a.heap.BulkSet(s, int32(s), a.bestG[s])
		}
	}
	a.heap.Fix()
	return a
}
