package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/similarity"
)

// customLabelMeasure is deliberately NOT a function of (|a∩b|, |a|, |b|)
// alone — it is positive on disjoint transactions — so the indexed path
// would be wrong for it. similarity.Counted must return nil and the
// labeler must take the pairwise fallback, which this file proves against
// the reference on the same footing as the built-ins.
func customLabelMeasure(a, b dataset.Transaction) float64 {
	d := len(a) - len(b)
	if d < 0 {
		d = -d
	}
	return 1 / (1 + float64(d))
}

// labelWorkerCounts mirrors oracleWorkerCounts for the labeling phase,
// per the acceptance criteria.
var labelWorkerCounts = []int{1, 2, 4, 8}

// labelOracleMeasures are the measures every label-oracle configuration
// cycles through: all four counted built-ins plus the pairwise-only
// custom one.
var labelOracleMeasures = []struct {
	name string
	fn   similarity.Measure
}{
	{"jaccard", similarity.Jaccard},
	{"dice", similarity.Dice},
	{"cosine", similarity.Cosine},
	{"overlap", similarity.Overlap},
	{"custom", customLabelMeasure},
}

// TestLabelOracleRandom proves the indexed/parallel labeler assignment-
// identical to the serial pairwise reference on randomized labeled-set
// structures: every measure, worker counts 1/2/4/8, and both sides of the
// serial crossover (forced-parallel and forced-serial).
func TestLabelOracleRandom(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 30 + r.Intn(250)
		ts := randomTransactionsCore(r, n, 1+r.Intn(8), 4+r.Intn(30))

		// A random partition prefix becomes the "clusters"; the rest are
		// candidates. Clusters need not be exhaustive or contiguous —
		// labeling only sees the L_i subsets.
		split := 1 + r.Intn(n-1)
		k := 1 + r.Intn(6)
		clusters := make([][]int, k)
		for p := 0; p < split; p++ {
			ci := r.Intn(k)
			clusters[ci] = append(clusters[ci], p)
		}
		var nonEmpty [][]int
		for _, c := range clusters {
			if len(c) > 0 {
				nonEmpty = append(nonEmpty, c)
			}
		}
		// Draw the L_i through the real labelSets, so the tested subset
		// shapes are exactly the pipeline's (LabelFraction and
		// MaxLabelPoints both random).
		cfg := Config{
			Theta:          0.05 + 0.9*r.Float64(),
			K:              k,
			LabelFraction:  0.05 + 0.9*r.Float64(),
			MaxLabelPoints: 1 + r.Intn(25),
		}.withDefaults()
		sets := labelSets(nonEmpty, cfg, r)

		candidates := make([]int, 0, n-split)
		for p := split; p < n; p++ {
			candidates = append(candidates, p)
		}
		theta := cfg.Theta
		f := MarketBasketF(theta)
		m := labelOracleMeasures[int(seed)%len(labelOracleMeasures)]

		ref := labelCandidatesReference(ts, candidates, sets, theta, f, m.fn)
		for _, workers := range labelWorkerCounts {
			for _, serialBelow := range []int{-1, n + 1} {
				got := newLabeler(ts, sets, theta, f, m.fn).run(candidates, workers, serialBelow)
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("seed=%d n=%d sets=%d measure=%s workers=%d serialBelow=%d: assignments diverge\ngot: %v\nref: %v",
						seed, n, len(sets), m.name, workers, serialBelow, got, ref)
				}
			}
		}
	}
}

// TestLabelOracleCluster proves the whole pipeline byte-identical when
// labeling runs indexed/parallel vs the serial pairwise reference, across
// randomized configs (θ, sample size, LabelFraction, MaxLabelPoints,
// LabelOutliers, pruning, weeding, every measure) and worker counts
// 1/2/4/8 — Assign, Clusters, Outliers, Stats, and serialized bytes.
func TestLabelOracleCluster(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 24; trial++ {
		n := 120 + r.Intn(200)
		ts := randomTransactionsCore(r, n, 2+r.Intn(7), 6+r.Intn(24))
		m := labelOracleMeasures[trial%len(labelOracleMeasures)]
		cfg := Config{
			Theta:          0.1 + 0.7*r.Float64(),
			K:              1 + r.Intn(5),
			Measure:        m.fn,
			Seed:           r.Int63(),
			SampleSize:     20 + r.Intn(n-20),
			LabelFraction:  0.05 + 0.9*r.Float64(),
			MaxLabelPoints: 1 + r.Intn(30),
			LabelOutliers:  trial%2 == 0,
		}
		if trial%3 == 0 {
			cfg.MinNeighbors = 1 + r.Intn(2)
		}
		if trial%4 == 0 {
			cfg.WeedAt = 0.1 + 0.4*r.Float64()
		}

		refCfg := cfg
		refCfg.labelReference = true
		ref, err := Cluster(ts, refCfg)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		var refBuf bytes.Buffer
		if err := WriteResult(&refBuf, ref); err != nil {
			t.Fatalf("trial %d: serialize reference: %v", trial, err)
		}

		for _, workers := range labelWorkerCounts {
			for _, serialBelow := range []int{0, -1} {
				label := fmt.Sprintf("trial=%d measure=%s workers=%d serialBelow=%d", trial, m.name, workers, serialBelow)
				runCfg := cfg
				runCfg.Workers = workers
				runCfg.LabelSerialBelow = serialBelow
				got, err := Cluster(ts, runCfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !reflect.DeepEqual(got.Assign, ref.Assign) {
					t.Fatalf("%s: Assign diverges", label)
				}
				if !reflect.DeepEqual(got.Clusters, ref.Clusters) {
					t.Fatalf("%s: Clusters diverge", label)
				}
				if !reflect.DeepEqual(got.Outliers, ref.Outliers) {
					t.Fatalf("%s: Outliers diverge", label)
				}
				if got.Stats != ref.Stats {
					t.Fatalf("%s: Stats diverge\ngot: %+v\nref: %+v", label, got.Stats, ref.Stats)
				}
				var buf bytes.Buffer
				if err := WriteResult(&buf, got); err != nil {
					t.Fatalf("%s: serialize: %v", label, err)
				}
				if !bytes.Equal(buf.Bytes(), refBuf.Bytes()) {
					t.Fatalf("%s: serialized bytes diverge from the reference labeler's", label)
				}
			}
		}
	}
}

// TestLabelIndexedFallbackSelection pins the dispatch rule: built-in
// measures at θ > 0 label through the index; custom measures and θ ≤ 0
// (where disjoint pairs are neighbors, invisible to the index) must fall
// back to pairwise.
func TestLabelIndexedFallbackSelection(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ts := randomTransactionsCore(r, 40, 5, 12)
	sets := [][]int{{0, 1, 2}, {3, 4}}
	cases := []struct {
		name    string
		theta   float64
		m       similarity.Measure
		indexed bool
	}{
		{"jaccard", 0.4, similarity.Jaccard, true},
		{"dice", 0.4, similarity.Dice, true},
		{"cosine", 0.4, similarity.Cosine, true},
		{"overlap", 0.4, similarity.Overlap, true},
		{"nil=jaccard", 0.4, nil, true},
		{"custom", 0.4, customLabelMeasure, false},
		{"attribute-closure", 0.4, similarity.Attribute(6), false},
		{"theta-zero", 0, similarity.Jaccard, false},
	}
	for _, tc := range cases {
		lb := newLabeler(ts, sets, tc.theta, 0.5, tc.m)
		if lb.indexed != tc.indexed {
			t.Errorf("%s: indexed = %v, want %v", tc.name, lb.indexed, tc.indexed)
		}
	}
}

// TestLabelThetaZeroOracle: at θ = 0 every labeled point is a neighbor of
// every candidate (sim ≥ 0 always), the regime the index cannot see. The
// fallback must reproduce the reference exactly, including at θ = 0 ties
// resolved toward the larger-score (smaller |L_i|+1 under positive f) set.
func TestLabelThetaZeroOracle(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	ts := randomTransactionsCore(r, 80, 6, 15)
	sets := [][]int{{0, 1, 2, 3}, {4, 5}, {6, 7, 8}}
	candidates := []int{10, 11, 12, 40, 79}
	ref := labelCandidatesReference(ts, candidates, sets, 0, 0.5, similarity.Jaccard)
	for _, workers := range labelWorkerCounts {
		got := newLabeler(ts, sets, 0, 0.5, similarity.Jaccard).run(candidates, workers, -1)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: got %v, ref %v", workers, got, ref)
		}
	}
	for i := range candidates {
		if ref[i] != 0 {
			t.Fatalf("candidate %d: assigned to %d; at θ=0 every set scores |L_i|/(|L_i|+1)^f, increasing in |L_i| for f<1 — want the largest set (index 0)", i, ref[i])
		}
	}
}
