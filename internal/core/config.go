package core

import (
	"fmt"

	"github.com/rockclust/rock/internal/similarity"
)

// Config holds every ROCK parameter. The zero value is not directly
// usable — Theta and K are mandatory — but all other fields have sensible
// defaults applied by withDefaults.
type Config struct {
	// Theta is the neighbor threshold: points with similarity ≥ Theta are
	// neighbors. Must lie in [0,1].
	Theta float64
	// K is the target number of clusters. Merging stops at K clusters, or
	// earlier if no cross-cluster links remain.
	K int
	// F maps θ to the exponent f(θ); nil selects MarketBasketF.
	F FTheta
	// Goodness scores candidate merges; nil selects RockGoodness.
	Goodness GoodnessFunc
	// Measure is the similarity; nil selects Jaccard.
	Measure similarity.Measure
	// IncludeSelf makes every point its own neighbor, as some ROCK
	// descriptions assume. Default false (matches pyclustering/cba).
	IncludeSelf bool
	// BruteNeighbors forces O(n²) neighbor computation instead of the
	// inverted index. The index is exact for the built-in measures; set
	// this when supplying a Measure that can be positive on disjoint
	// transactions.
	BruteNeighbors bool
	// LSHNeighbors switches the neighbor phase to MinHash banded LSH
	// with exact verification of candidates: no false-positive
	// neighbors, tunably-rare false negatives, near-linear candidate
	// generation — for samples too large for the exact index. LSHHashes
	// and LSHBands tune the S-curve (defaults 96/24, threshold ≈ 0.45);
	// the run stays deterministic under Seed.
	LSHNeighbors bool
	LSHHashes    int
	LSHBands     int

	// SampleSize, when positive and smaller than the dataset, clusters a
	// uniform random sample of that size and assigns the remaining points
	// in the labeling phase, exactly as the paper prescribes for large
	// datasets. Zero clusters every point.
	SampleSize int
	// Seed drives all randomized steps (sampling, labeling subsets).
	Seed int64

	// MinNeighbors prunes points with fewer than this many neighbors
	// before links are computed; the paper observes that outliers have
	// few or no neighbors. Zero keeps everything.
	MinNeighbors int
	// WeedAt, in (0,1], enables the paper's second outlier device: when
	// the number of active clusters first falls to WeedAt × (initial
	// clusters), clusters of size ≤ WeedMaxSize are discarded as
	// outliers. Zero disables weeding.
	WeedAt float64
	// WeedMaxSize is the largest cluster size weeded; default 2.
	WeedMaxSize int

	// LabelFraction is the fraction of each cluster sampled into L_i for
	// the labeling phase; default 0.25.
	LabelFraction float64
	// MaxLabelPoints caps |L_i| per cluster; default 50.
	MaxLabelPoints int

	// Workers bounds parallelism in the neighbor, link, and merge phases;
	// 0 = GOMAXPROCS. Results are byte-identical for every worker count:
	// the batched merge engine commits conflict-free rounds whose output
	// is provably the serial merge sequence.
	Workers int
	// LinkSerialBelow overrides the link-phase crossover: samples with
	// fewer kept points than this use the serial map-based link builder,
	// larger ones the sharded parallel CSR builder. 0 picks the built-in
	// crossover; negative forces the parallel builder at every size. Both
	// builders produce bit-identical tables — this knob only trades
	// constant factors.
	LinkSerialBelow int
	// MergeSerialBelow overrides the merge-phase crossover: samples with
	// fewer kept points than this agglomerate on the serial arena engine,
	// larger ones on the parallel batched engine. 0 picks the built-in
	// crossover; negative forces batched merge rounds at every size.
	// Workers <= 1 always takes the serial engine regardless of this
	// knob. Both engines produce byte-identical clusterings — the choice
	// only trades constant factors.
	MergeSerialBelow int
	// LabelSerialBelow overrides the labeling-phase crossover: runs with
	// fewer labeling candidates than this label on the serial loop,
	// larger ones shard candidates across the workers. 0 picks the
	// built-in crossover; negative forces sharding at every size.
	// Workers <= 1 always takes the serial loop. Candidates are
	// independent, so every path produces byte-identical assignments —
	// the knob only trades constant factors. Independently of sharding,
	// the labeler consults an inverted index over the labeled points for
	// the built-in measures (exact — see label_indexed.go) and falls
	// back to pairwise evaluation for custom Measure funcs.
	LabelSerialBelow int

	// TraceMerges records every merge step into Result.MergeTrace,
	// turning the run into a dendrogram that CutTrace can cut at any
	// cluster count without re-running the pipeline.
	TraceMerges bool
	// LabelOutliers includes sample points pruned or weeded as outliers
	// in the labeling phase, giving them a second chance to join a
	// cluster through the L_i scoring instead of being discarded. The
	// paper discards them; this is an extension.
	LabelOutliers bool

	// labelReference forces the labeling phase onto the serial pairwise
	// reference loop (labelPoint). Unexported: reachable only from this
	// package's oracle tests, which prove the indexed/parallel labeler
	// byte-identical to it through the full pipeline.
	labelReference bool
}

// withDefaults returns a copy with all optional fields populated.
func (c Config) withDefaults() Config {
	if c.F == nil {
		c.F = MarketBasketF
	}
	if c.Goodness == nil {
		c.Goodness = RockGoodness
	}
	if c.Measure == nil {
		c.Measure = similarity.Jaccard
	}
	if c.WeedAt > 0 && c.WeedMaxSize == 0 {
		c.WeedMaxSize = 2
	}
	if c.LabelFraction <= 0 || c.LabelFraction > 1 {
		c.LabelFraction = 0.25
	}
	if c.MaxLabelPoints <= 0 {
		c.MaxLabelPoints = 50
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Theta < 0 || c.Theta > 1 {
		return fmt.Errorf("core: theta %g outside [0,1]", c.Theta)
	}
	if c.K < 1 {
		return fmt.Errorf("core: k = %d, need at least 1", c.K)
	}
	if c.SampleSize < 0 {
		return fmt.Errorf("core: negative sample size %d", c.SampleSize)
	}
	if c.WeedAt < 0 || c.WeedAt > 1 {
		return fmt.Errorf("core: weed-at fraction %g outside [0,1]", c.WeedAt)
	}
	if c.MinNeighbors < 0 {
		return fmt.Errorf("core: negative min-neighbors %d", c.MinNeighbors)
	}
	return nil
}

// fval computes the exponent f(θ) for the configuration.
func (c Config) fval() float64 { return c.F(c.Theta) }
