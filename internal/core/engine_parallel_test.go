package core

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/rockclust/rock/internal/linkage"
	"github.com/rockclust/rock/internal/similarity"
	"github.com/rockclust/rock/internal/synth"
)

// parallelLinkTable builds the link table of a clustered basket workload
// big enough for batches to form.
func parallelLinkTable(t testing.TB, n, clusters int) *linkage.Compact {
	t.Helper()
	d := synth.Basket(synth.BasketConfig{
		Transactions:    n,
		Clusters:        clusters,
		TemplateItems:   15,
		TransactionSize: 12,
		Seed:            7,
	})
	nb := similarity.ComputeIndexed(d.Trans, 0.6, similarity.Options{})
	return linkage.Build(nb, linkage.Options{})
}

// TestEngineOracleParallelPipeline runs the batched engine on real
// pipeline link tables at sizes where rounds hold many merges, comparing
// against the serial arena (itself oracle-verified byte-identical to the
// reference) across worker counts, with and without weeding and tracing.
func TestEngineOracleParallelPipeline(t *testing.T) {
	for _, n := range []int{800, 2000} {
		lt := parallelLinkTable(t, n, n/100)
		k := n / 100
		f := MarketBasketF(0.6)
		configs := []struct {
			name        string
			weedTrigger int
			weedMaxSize int
			trace       bool
		}{
			{"plain", 0, 0, false},
			{"trace", 0, 0, true},
			{"weed+trace", n / 2, 2, true},
		}
		for _, cfg := range configs {
			want := agglomerate(n, lt, k, RockGoodness, f, cfg.weedTrigger, cfg.weedMaxSize, cfg.trace)
			for _, workers := range oracleWorkerCounts {
				label := fmt.Sprintf("n=%d %s workers=%d", n, cfg.name, workers)
				got := agglomerateParallel(n, lt, k, RockGoodness, f, cfg.weedTrigger, cfg.weedMaxSize, cfg.trace, workers)
				checkResultsEqual(t, label, &got, &want)
			}
		}
	}
}

// TestBatchedEngineBatches pins the engine's reason to exist: on a
// clustered workload the conflict-free rounds must hold more than one
// merge, so the round count stays well below the merge count.
func TestBatchedEngineBatches(t *testing.T) {
	n := 2000
	lt := parallelLinkTable(t, n, n/100)
	b := newBatcher(n, lt, RockGoodness, MarketBasketF(0.6), 4)
	res := b.run(n/100, 0, 0, false)
	if res.merges == 0 {
		t.Fatal("workload produced no merges")
	}
	if b.stats.maxBatch < 2 {
		t.Fatalf("max batch = %d; the batched engine never batched (merges=%d, rounds=%d)",
			b.stats.maxBatch, res.merges, b.stats.rounds)
	}
	if b.stats.rounds >= res.merges {
		t.Fatalf("rounds %d >= merges %d; every round degenerated to a single merge",
			b.stats.rounds, res.merges)
	}
	t.Logf("merges=%d rounds=%d maxBatch=%d truncated=%d",
		res.merges, b.stats.rounds, b.stats.maxBatch, b.stats.truncated)
}

// TestBatchedEngineDeterministic: two runs at the same worker count, and
// runs across worker counts, must produce identical traces — worker
// scheduling must never leak into output.
func TestBatchedEngineDeterministic(t *testing.T) {
	n := 800
	lt := parallelLinkTable(t, n, 8)
	f := MarketBasketF(0.6)
	base := agglomerateParallel(n, lt, 8, RockGoodness, f, n/2, 2, true, 4)
	for trial := 0; trial < 3; trial++ {
		again := agglomerateParallel(n, lt, 8, RockGoodness, f, n/2, 2, true, 4)
		if !reflect.DeepEqual(base, again) {
			t.Fatalf("trial %d: repeated run diverged", trial)
		}
	}
	for _, workers := range []int{2, 8} {
		other := agglomerateParallel(n, lt, 8, RockGoodness, f, n/2, 2, true, workers)
		if !reflect.DeepEqual(base, other) {
			t.Fatalf("workers=%d: output depends on worker count", workers)
		}
	}
}

// TestAgglomerateAutoEquivalence drives the dispatcher through the
// public knobs: every (Workers, MergeSerialBelow) combination must yield
// the serial arena's exact result.
func TestAgglomerateAutoEquivalence(t *testing.T) {
	n := 600
	lt := parallelLinkTable(t, n, 6)
	f := MarketBasketF(0.6)
	want := agglomerate(n, lt, 6, RockGoodness, f, 0, 0, true)
	for _, workers := range []int{0, 1, 2, 4} {
		for _, below := range []int{0, -1, 100, 100000} {
			got := agglomerateAuto(n, lt, 6, RockGoodness, f, 0, 0, true, workers, below)
			label := fmt.Sprintf("workers=%d serialBelow=%d", workers, below)
			checkResultsEqual(t, label, &got, &want)
		}
	}
}

// TestBatchedEngineStaleScenario replays the stale-entry regression
// scenario (weeding severs a cluster's last link while superseded entries
// sit in the heap array) through the batched engine.
func TestBatchedEngineStaleScenario(t *testing.T) {
	n, lt := staleScenarioTable()
	for _, workers := range oracleWorkerCounts {
		for _, k := range []int{1, 2} {
			want := agglomerateMap(n, lt, k, RockGoodness, 1.0/3.0, 4, 2, false)
			got := agglomerateParallel(n, lt, k, RockGoodness, 1.0/3.0, 4, 2, false, workers)
			checkResultsEqual(t, fmt.Sprintf("k=%d workers=%d", k, workers), &got, &want)
		}
	}
}

// TestBatchedEngineEdgeCases: empty and single-point inputs.
func TestBatchedEngineEdgeCases(t *testing.T) {
	res := agglomerateParallel(0, linkage.CompactFrom(&linkage.Table{}), 1, RockGoodness, 0.3, 0, 0, false, 4)
	if len(res.clusters) != 0 || res.merges != 0 {
		t.Fatalf("n=0: %+v", res)
	}
	res = agglomerateParallel(1, tableFromPairs(1, nil), 1, RockGoodness, 0.3, 0, 0, false, 4)
	if len(res.clusters) != 1 || res.merges != 0 {
		t.Fatalf("n=1: %+v", res)
	}
}
