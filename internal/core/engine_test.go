package core

import (
	"reflect"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/linkage"
	"github.com/rockclust/rock/internal/similarity"
)

// tableFromPairs builds a symmetric CSR link table from explicit pair
// counts.
func tableFromPairs(n int, pairs map[[2]int]int) *linkage.Compact {
	t := &linkage.Table{Adj: make([]map[int32]int32, n)}
	for i := 0; i < n; i++ {
		t.Adj[i] = make(map[int32]int32)
	}
	for p, c := range pairs {
		t.Adj[p[0]][int32(p[1])] = int32(c)
		t.Adj[p[1]][int32(p[0])] = int32(c)
	}
	return linkage.CompactFrom(t)
}

func TestAgglomerateTwoCliques(t *testing.T) {
	// Points 0-2 pairwise linked, 3-5 pairwise linked, nothing across.
	pairs := map[[2]int]int{
		{0, 1}: 3, {0, 2}: 3, {1, 2}: 3,
		{3, 4}: 3, {3, 5}: 3, {4, 5}: 3,
	}
	lt := tableFromPairs(6, pairs)
	res := agglomerate(6, lt, 2, RockGoodness, 1.0/3.0, 0, 0, false)
	want := [][]int{{0, 1, 2}, {3, 4, 5}}
	if !reflect.DeepEqual(res.clusters, want) {
		t.Fatalf("clusters = %v, want %v", res.clusters, want)
	}
	if res.stoppedEarly {
		t.Fatal("should reach k=2 without stopping early")
	}
	if res.merges != 4 {
		t.Fatalf("merges = %d, want 4", res.merges)
	}
}

func TestAgglomerateStopsWithoutCrossLinks(t *testing.T) {
	pairs := map[[2]int]int{{0, 1}: 1, {2, 3}: 1}
	res := agglomerate(4, tableFromPairs(4, pairs), 1, RockGoodness, 0.3, 0, 0, false)
	if !res.stoppedEarly {
		t.Fatal("must stop early when no links connect the components")
	}
	if len(res.clusters) != 2 {
		t.Fatalf("clusters = %v, want two components", res.clusters)
	}
}

func TestAgglomerateGoodnessOrder(t *testing.T) {
	// A chain where the strongest pair must merge first: link(1,2)=5,
	// link(0,1)=1, link(2,3)=1. With k=2 the result must be {0} merged
	// last; check final shape {0,1,2} / {3} or {0}/{1,2,3} by goodness.
	pairs := map[[2]int]int{{0, 1}: 1, {1, 2}: 5, {2, 3}: 1}
	res := agglomerate(4, tableFromPairs(4, pairs), 2, RockGoodness, 1.0/3.0, 0, 0, false)
	// First merge is certainly {1,2}. The second merge picks between
	// attaching 0 or 3 (identical goodness by symmetry) — the tie breaks
	// deterministically toward the smaller cluster id (0 joined earlier).
	if len(res.clusters) != 2 {
		t.Fatalf("clusters = %v", res.clusters)
	}
	sizes := map[int]bool{len(res.clusters[0]): true, len(res.clusters[1]): true}
	if !sizes[1] || !sizes[3] {
		t.Fatalf("want a 3-1 split, got %v", res.clusters)
	}
}

func TestAgglomerateDeterministic(t *testing.T) {
	pairs := map[[2]int]int{
		{0, 1}: 2, {1, 2}: 2, {0, 2}: 1, {2, 3}: 1,
		{4, 5}: 2, {5, 6}: 2, {3, 4}: 1,
	}
	a := agglomerate(7, tableFromPairs(7, pairs), 2, RockGoodness, 0.25, 0, 0, false)
	for trial := 0; trial < 10; trial++ {
		b := agglomerate(7, tableFromPairs(7, pairs), 2, RockGoodness, 0.25, 0, 0, false)
		if !reflect.DeepEqual(a.clusters, b.clusters) || a.merges != b.merges {
			t.Fatalf("nondeterministic agglomeration: %v vs %v", a.clusters, b.clusters)
		}
	}
}

func TestAgglomerateWeeding(t *testing.T) {
	// Two strong 3-cliques plus a weakly attached straggler pair 6,7
	// linked only to each other.
	pairs := map[[2]int]int{
		{0, 1}: 4, {0, 2}: 4, {1, 2}: 4,
		{3, 4}: 4, {3, 5}: 4, {4, 5}: 4,
		{6, 7}: 1,
	}
	// weedTrigger 4: when active clusters reach 4 (after 4 merges of the
	// cliques), clusters of size ≤ 2 — the {6,7} pair — are discarded.
	res := agglomerate(8, tableFromPairs(8, pairs), 2, RockGoodness, 1.0/3.0, 4, 2, false)
	if !reflect.DeepEqual(res.weeded, []int{6, 7}) {
		t.Fatalf("weeded = %v, want [6 7]", res.weeded)
	}
	want := [][]int{{0, 1, 2}, {3, 4, 5}}
	if !reflect.DeepEqual(res.clusters, want) {
		t.Fatalf("clusters = %v, want %v", res.clusters, want)
	}
}

func TestAgglomerateKOne(t *testing.T) {
	pairs := map[[2]int]int{{0, 1}: 1, {1, 2}: 1, {0, 2}: 1}
	res := agglomerate(3, tableFromPairs(3, pairs), 1, RockGoodness, 0.3, 0, 0, false)
	if len(res.clusters) != 1 || len(res.clusters[0]) != 3 {
		t.Fatalf("clusters = %v", res.clusters)
	}
}

// The paper's worked example: size-3 subsets of {1,2,3,4,5} form one
// cluster, the {1,2,6,7} family another. With θ=0.5 several cross pairs
// are neighbors (sim exactly 0.5), so naive similarity-based merging is
// confused — but links separate the two groups.
func TestPaperExampleSeparation(t *testing.T) {
	tr := func(items ...dataset.Item) dataset.Transaction { return dataset.NewTransaction(items...) }
	ts := []dataset.Transaction{
		tr(1, 2, 3), tr(1, 2, 4), tr(1, 2, 5), tr(1, 3, 4), tr(1, 3, 5),
		tr(1, 4, 5), tr(2, 3, 4), tr(2, 3, 5), tr(2, 4, 5), tr(3, 4, 5),
		tr(1, 2, 6), tr(1, 2, 7), tr(1, 6, 7), tr(2, 6, 7),
	}
	nb := similarity.Compute(ts, 0.5, similarity.Options{})
	lt := linkage.Build(nb, linkage.Options{})
	res := agglomerate(len(ts), lt, 2, RockGoodness, MarketBasketF(0.5), 0, 0, false)
	if len(res.clusters) != 2 {
		t.Fatalf("clusters = %v", res.clusters)
	}
	// Transactions 10 ({1,2,6}) and 11 ({1,2,7}) straddle the border —
	// they are θ-neighbors of several {1,2,x} subsets — so ROCK may pull
	// them either way. The robust claims are: the {1..5}-cluster stays
	// together, and the {1,6,7}/{2,6,7} core of the family is never
	// absorbed into it.
	big := res.clusters[0]
	if len(big) < 10 {
		t.Fatalf("first cluster lost {1..5}-subsets: %v", res.clusters)
	}
	for _, p := range big {
		if p == 12 || p == 13 {
			t.Fatalf("family core absorbed into the wrong cluster: %v", res.clusters)
		}
	}
	for _, p := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9} {
		if res.clusters[0][p] != p {
			t.Fatalf("{1..5}-subsets split: %v", res.clusters)
		}
	}
	// The criterion value of what greedy ROCK found must be at least that
	// of the ground-truth split — greedy optimizes E_l and on this
	// instance absorbing the border transactions is genuinely E_l-better.
	truth := [][]int{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {10, 11, 12, 13}}
	f := MarketBasketF(0.5)
	if got, want := CriterionCSR(res.clusters, lt, f), CriterionCSR(truth, lt, f); got < want-1e-9 {
		t.Fatalf("greedy criterion %g below ground truth %g", got, want)
	}
}

func TestAgglomerateEmptyAndSingle(t *testing.T) {
	res := agglomerate(0, linkage.CompactFrom(&linkage.Table{}), 1, RockGoodness, 0.3, 0, 0, false)
	if len(res.clusters) != 0 {
		t.Fatal("empty input should give no clusters")
	}
	res = agglomerate(1, tableFromPairs(1, nil), 1, RockGoodness, 0.3, 0, 0, false)
	if len(res.clusters) != 1 || res.clusters[0][0] != 0 {
		t.Fatalf("single point: %v", res.clusters)
	}
}
