package core

import (
	"strconv"
	"testing"

	"github.com/rockclust/rock/internal/linkage"
	"github.com/rockclust/rock/internal/similarity"
	"github.com/rockclust/rock/internal/synth"
)

// benchLinkTable builds the link table of an n-point basket workload with
// enough clusters that cluster degree stays realistic as n grows.
func benchLinkTable(b *testing.B, n int) *linkage.Compact {
	b.Helper()
	d := synth.Basket(synth.BasketConfig{
		Transactions:    n,
		Clusters:        n / 100,
		TemplateItems:   15,
		TransactionSize: 12,
		Seed:            1,
	})
	nb := similarity.ComputeIndexed(d.Trans, 0.6, similarity.Options{})
	return linkage.Build(nb, linkage.Options{})
}

func benchAgglomerate(b *testing.B, engine func(n int, lt *linkage.Compact, k int, good GoodnessFunc, f float64, weedTrigger, weedMaxSize int, trace bool) engineResult) {
	for _, n := range []int{1000, 10000} {
		lt := benchLinkTable(b, n)
		k := n / 100
		f := MarketBasketF(0.6)
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine(n, lt, k, RockGoodness, f, 0, 0, false)
			}
		})
	}
}

// BenchmarkAgglomerateMap times the reference map-based engine.
func BenchmarkAgglomerateMap(b *testing.B) { benchAgglomerate(b, agglomerateMap) }

// BenchmarkAgglomerateArena times the production arena engine on the
// identical workload; the oracle test guarantees identical output.
func BenchmarkAgglomerateArena(b *testing.B) { benchAgglomerate(b, agglomerate) }

// BenchmarkAgglomerateParallel times the batched merge engine across
// worker counts on the identical workload (workers=1 exercises the round
// machinery without concurrency; the Workers<=1 production path instead
// dispatches to the serial arena engine). Run on a multi-core host — at
// GOMAXPROCS=1 the goroutines serialize and only the round-level heap
// repair can win.
func BenchmarkAgglomerateParallel(b *testing.B) {
	for _, n := range []int{1000, 5000, 10000} {
		lt := benchLinkTable(b, n)
		k := n / 100
		f := MarketBasketF(0.6)
		for _, workers := range []int{1, 2, 4} {
			b.Run("n="+strconv.Itoa(n)+"/workers="+strconv.Itoa(workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					agglomerateParallel(n, lt, k, RockGoodness, f, 0, 0, false, workers)
				}
			})
		}
	}
}
