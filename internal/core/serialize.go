package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// resultEnvelope versions the serialized form so future layout changes
// stay detectable.
type resultEnvelope struct {
	Version int     `json:"version"`
	Result  *Result `json:"result"`
}

const resultVersion = 1

// WriteResult serializes a clustering result as versioned JSON — the
// hand-off format between a clustering run and downstream analysis or a
// later labeling pass.
func WriteResult(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(resultEnvelope{Version: resultVersion, Result: res}); err != nil {
		return fmt.Errorf("core: encoding result: %w", err)
	}
	return nil
}

// ReadResult deserializes a result written by WriteResult.
func ReadResult(r io.Reader) (*Result, error) {
	var env resultEnvelope
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("core: decoding result: %w", err)
	}
	if env.Version != resultVersion {
		return nil, fmt.Errorf("core: result version %d, this build reads %d", env.Version, resultVersion)
	}
	if env.Result == nil {
		return nil, fmt.Errorf("core: result payload missing")
	}
	return env.Result, nil
}
