// Serialization for clustering artifacts.
//
// Two formats live here, with different jobs:
//
//   - Results (WriteResult/ReadResult) serialize as versioned JSON — the
//     human-inspectable hand-off between a clustering run and downstream
//     analysis.
//   - Models (Model.Save/LoadModel) serialize as a versioned, checksummed
//     little-endian binary format — the durable artifact behind
//     "cluster once, serve forever".
//
// # Model file format (version 1)
//
// All integers are little-endian; floats are IEEE-754 bit patterns
// written as uint64. Strings are a uint32 byte length followed by the
// UTF-8 bytes.
//
//	header:
//	  magic    [8]byte  "ROCKMODL"
//	  version  uint32   format version (currently 1)
//	payload:
//	  theta    float64  frozen neighbor threshold θ
//	  f        float64  frozen criterion exponent f(θ)
//	  measure  string   canonical similarity name (similarity.Name)
//	  k        uint32   number of clusters
//	  k × {            per cluster, in cluster order:
//	    clusterSize  uint64   full cluster size at freeze time
//	    setSize      uint32   |L_i|, the frozen labeled-subset size
//	  }
//	  Σ setSize × {    labeled points, grouped by cluster, set order:
//	    nitems  uint32
//	    items   nitems × int32   sorted ascending, non-negative
//	  }
//	  hasVocab uint8   1 when a vocabulary section follows
//	  [vocab]:
//	    count  uint32
//	    names  count × string   item names in id order
//	trailer:
//	  checksum uint32  CRC-32 (IEEE) of header + payload
//
// The encoding is deterministic — the same model always produces the
// same bytes, so Save → Load → Save round-trips byte-identically (a
// property the model tests enforce). The inverted item postings are NOT
// stored: LoadModel rebuilds them from the labeled points with the same
// deterministic pass Freeze uses, which keeps files small and cannot
// diverge from the stored transactions.
//
// # Forward compatibility
//
// Readers accept exactly the versions they know: LoadModel returns
// ErrModelVersion (wrapped, with both version numbers in the message) for
// anything else, rather than guessing at an unknown layout. Any change to
// the payload — new sections, wider integers, reordered fields — must
// bump modelVersion and either teach LoadModel the old layout or reject
// it explicitly. The magic and version fields must never move: they are
// what lets every future reader identify a file it cannot parse.
package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/rockclust/rock/internal/dataset"
)

// resultEnvelope versions the serialized form so future layout changes
// stay detectable.
type resultEnvelope struct {
	Version int     `json:"version"`
	Result  *Result `json:"result"`
}

const resultVersion = 1

// WriteResult serializes a clustering result as versioned JSON — the
// hand-off format between a clustering run and downstream analysis or a
// later labeling pass.
func WriteResult(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(resultEnvelope{Version: resultVersion, Result: res}); err != nil {
		return fmt.Errorf("core: encoding result: %w", err)
	}
	return nil
}

// ReadResult deserializes a result written by WriteResult.
func ReadResult(r io.Reader) (*Result, error) {
	var env resultEnvelope
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("core: decoding result: %w", err)
	}
	if env.Version != resultVersion {
		return nil, fmt.Errorf("core: result version %d, this build reads %d", env.Version, resultVersion)
	}
	if env.Result == nil {
		return nil, fmt.Errorf("core: result payload missing")
	}
	return env.Result, nil
}

// --- model binary format ---

// modelMagic identifies a rock model file; it must never change.
var modelMagic = [8]byte{'R', 'O', 'C', 'K', 'M', 'O', 'D', 'L'}

// modelVersion is the format version this build writes and reads. Bump it
// on any payload layout change (see the package comment).
const modelVersion = 1

// maxModelClusterSize bounds the stored full-cluster sizes. Point indices
// are int32 everywhere a cluster's members are enumerated (CSR columns,
// the labeling postings), so no writer can have counted a cluster past
// 2³¹−1 points — a larger value survives the uint64 → int conversion on
// 64-bit hosts but is corruption all the same.
const maxModelClusterSize = math.MaxInt32

// Minimum encoded widths, used to bound every length-prefixed allocation
// by what the remaining payload could actually hold: a section that
// declares more entries than the bytes after it can encode is corrupt,
// and the check runs BEFORE the allocation, so a crafted length cannot
// balloon memory past a small constant factor of the file size.
const (
	clusterEntryBytes = 12 // clusterSize uint64 + setSize uint32
	pointMinBytes     = 4  // nitems uint32 (items may be empty)
	itemBytes         = 4  // one item id uint32
	strMinBytes       = 4  // length uint32 (the bytes may be empty)
)

// Load failure modes, each wrapped with context by LoadModel so callers
// can both print an actionable message and branch with errors.Is.
var (
	// ErrModelTruncated: the file ends before the fixed header and
	// checksum could even be present, or mid-read.
	ErrModelTruncated = errors.New("model file truncated")
	// ErrModelMagic: the leading bytes are not the rock model magic.
	ErrModelMagic = errors.New("not a rock model file")
	// ErrModelVersion: the file's format version is one this build does
	// not read.
	ErrModelVersion = errors.New("unsupported model version")
	// ErrModelChecksum: the trailing CRC-32 does not match the contents —
	// the file was corrupted in storage or transit.
	ErrModelChecksum = errors.New("model checksum mismatch")
	// ErrModelMeasure: the file names a similarity measure this build
	// does not know, so its assignments could not be reproduced.
	ErrModelMeasure = errors.New("model frozen with an unknown similarity measure")
	// ErrModelCorrupt: the checksum holds but the payload is internally
	// inconsistent (lengths disagree, values out of range).
	ErrModelCorrupt = errors.New("model payload corrupt")
)

// Save writes the model in the versioned, checksummed binary format
// documented in the package comment. The encoding is deterministic: the
// same model always produces the same bytes.
func (m *Model) Save(w io.Writer) error {
	var buf bytes.Buffer
	buf.Write(modelMagic[:])
	putU32(&buf, modelVersion)

	putU64(&buf, math.Float64bits(m.theta))
	putU64(&buf, math.Float64bits(m.fval))
	putStr(&buf, m.measure)
	putU32(&buf, uint32(len(m.sets)))
	for i := range m.sets {
		putU64(&buf, uint64(m.clusterSizes[i]))
		putU32(&buf, uint32(len(m.sets[i])))
	}
	for _, t := range m.pts {
		putU32(&buf, uint32(len(t)))
		for _, it := range t {
			putU32(&buf, uint32(int32(it)))
		}
	}
	if m.items != nil {
		buf.WriteByte(1)
		putU32(&buf, uint32(len(m.items)))
		for _, name := range m.items {
			putStr(&buf, name)
		}
	} else {
		buf.WriteByte(0)
	}

	putU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("core: writing model: %w", err)
	}
	return nil
}

// LoadModel reads a model written by Save, verifying magic, version and
// checksum before touching the payload and rebuilding the inverted item
// postings. Every failure mode wraps one of the ErrModel* sentinels.
func LoadModel(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading model: %w", err)
	}
	// Fixed frame: magic + version + at least an empty payload + CRC.
	if len(data) < len(modelMagic)+4+4 {
		return nil, fmt.Errorf("core: loading model: %w (%d bytes, need at least %d for the header and checksum)",
			ErrModelTruncated, len(data), len(modelMagic)+4+4)
	}
	if !bytes.Equal(data[:len(modelMagic)], modelMagic[:]) {
		return nil, fmt.Errorf("core: loading model: %w (magic %q)", ErrModelMagic, data[:len(modelMagic)])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("core: loading model: %w (file says %08x, contents hash to %08x — truncated or corrupted?)",
			ErrModelChecksum, got, want)
	}
	cur := &cursor{data: body[len(modelMagic):]}
	if v := cur.u32(); v != modelVersion {
		return nil, fmt.Errorf("core: loading model: %w (file is version %d, this build reads %d)",
			ErrModelVersion, v, modelVersion)
	}

	theta := math.Float64frombits(cur.u64())
	f := math.Float64frombits(cur.u64())
	measure := cur.str()
	k := int(cur.u32())
	if cur.err != nil || k < 1 || k > cur.remaining()/clusterEntryBytes {
		return nil, corruptModel(cur.err, "cluster table")
	}
	clusterSizes := make([]int, k)
	setSizes := make([]int, k)
	npts := 0
	for i := 0; i < k; i++ {
		sz := cur.u64()
		if sz > maxModelClusterSize {
			return nil, corruptModel(nil, "cluster size beyond any plausible point count")
		}
		clusterSizes[i] = int(sz)
		setSizes[i] = int(cur.u32())
		if setSizes[i] > cur.remaining()/pointMinBytes {
			return nil, corruptModel(cur.err, "cluster table")
		}
		npts += setSizes[i]
	}
	if cur.err != nil || npts > cur.remaining()/pointMinBytes {
		return nil, corruptModel(cur.err, "cluster table")
	}
	pts := make([]dataset.Transaction, npts)
	for p := range pts {
		n := int(cur.u32())
		if cur.err != nil || n > cur.remaining()/itemBytes {
			return nil, corruptModel(cur.err, "labeled points")
		}
		t := make(dataset.Transaction, n)
		for j := range t {
			it := int32(cur.u32())
			if it < 0 {
				return nil, corruptModel(nil, "labeled points")
			}
			// Transactions are canonically sorted and deduplicated; the
			// index and the measures both rely on it.
			if j > 0 && dataset.Item(it) <= t[j-1] {
				return nil, corruptModel(nil, "labeled point items not sorted")
			}
			t[j] = dataset.Item(it)
		}
		pts[p] = t
	}
	var items []string
	switch cur.u8() {
	case 0:
	case 1:
		n := int(cur.u32())
		if cur.err != nil || n > cur.remaining()/strMinBytes {
			return nil, corruptModel(cur.err, "vocabulary")
		}
		items = make([]string, n)
		for i := range items {
			items[i] = cur.str()
		}
	default:
		return nil, corruptModel(nil, "vocabulary flag")
	}
	if cur.err != nil {
		return nil, corruptModel(cur.err, "payload")
	}
	if cur.remaining() != 0 {
		return nil, corruptModel(nil, "trailing bytes after the payload")
	}
	if math.IsNaN(theta) || theta < 0 || theta > 1 {
		return nil, corruptModel(nil, "theta outside [0,1]")
	}
	// A non-finite exponent would make every denominator NaN and every
	// query silently an outlier — fail loudly at load instead.
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, corruptModel(nil, "exponent f not finite")
	}
	// A model frozen with a vocabulary interns every labeled point's
	// items in it, so an id at or past the vocabulary is corruption.
	if items != nil {
		for _, t := range pts {
			for _, it := range t {
				if int(it) >= len(items) {
					return nil, corruptModel(nil, "labeled point item outside the vocabulary")
				}
			}
		}
	}

	m, err := newModel(pts, setSizes, clusterSizes, theta, f, measure)
	if err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	m.items = items
	return m, nil
}

// corruptModel wraps a payload-parsing failure: an unexpected end of a
// section while the checksum held, or a value no valid writer produces.
func corruptModel(err error, section string) error {
	if err != nil {
		return fmt.Errorf("core: loading model: %w: %s ends early (%v)", ErrModelCorrupt, section, err)
	}
	return fmt.Errorf("core: loading model: %w: %s", ErrModelCorrupt, section)
}

// putU32/putU64/putStr append little-endian primitives to the buffer.
func putU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func putU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func putStr(buf *bytes.Buffer, s string) {
	putU32(buf, uint32(len(s)))
	buf.WriteString(s)
}

// cursor decodes little-endian primitives from a byte slice, latching the
// first overrun instead of panicking — the payload is checksummed, so an
// overrun means internal inconsistency, reported once by the caller.
type cursor struct {
	data []byte
	off  int
	err  error
}

func (c *cursor) remaining() int { return len(c.data) - c.off }

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if c.off+n > len(c.data) {
		c.err = io.ErrUnexpectedEOF
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u8() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) str() string {
	n := int(c.u32())
	if c.err != nil || n < 0 || n > c.remaining() {
		if c.err == nil {
			c.err = io.ErrUnexpectedEOF
		}
		return ""
	}
	return string(c.take(n))
}
