package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/similarity"
)

// Frozen servable models.
//
// The paper's route to large data is "cluster a Chernoff-sized sample,
// then label everything else" — but the labeling index (label_indexed.go)
// lives only as long as the clustering process, so serving assignment
// queries used to mean re-clustering on every start. A Model freezes the
// artifacts the labeling phase needs — the labeled points' transactions,
// their inverted item postings, the per-cluster normalization
// denominators, and the (measure, θ, f) metadata — into an immutable,
// goroutine-safe structure that can be saved to disk (serialize.go) and
// loaded into any later process.
//
// Invariant: Model.Assign is bit-identical to the serial pairwise
// reference labelPoint over the frozen sets. The model reuses the very
// labeler the pipeline's phase 6 runs (so the exactness argument in
// label_indexed.go carries over unchanged), and the model oracle test
// enforces the identity across all four built-in measures and worker
// counts under the race detector.

// Model is an immutable snapshot of a clustering run, queryable for
// assignments. All methods are safe for concurrent use: the frozen index
// is read-only and every query carries its own scratch state.
//
// Build one with Freeze (from a Result), FreezeSets (from explicit
// labeled subsets), or LoadModel (from a file written by Save).
type Model struct {
	theta   float64
	fval    float64
	measure string // canonical similarity name (similarity.Name)

	// clusterSizes[i] is the full size of cluster i when the model was
	// frozen — metadata for reporting; assignment uses only setSizes.
	clusterSizes []int

	// The frozen labeled points, grouped by cluster: pts[sets[i][j]] is
	// the j-th labeled point of cluster i. sets holds consecutive ranges,
	// so the grouping serializes as the per-cluster set sizes alone.
	pts  []dataset.Transaction
	sets [][]int

	// items, when non-nil, is the frozen vocabulary (item id → name),
	// letting AssignDataset translate queries read under a different
	// vocabulary. nil when the model was frozen from raw ids.
	items []string

	lb      *labeler
	scratch sync.Pool

	// batchSerialBelow overrides AssignBatch's serial crossover: 0 picks
	// DefaultLabelSerialBelow, negative always shards. Unexported — the
	// oracle tests force the sharded path below the crossover; callers
	// get the labeling phase's tuned default.
	batchSerialBelow int
}

// Freeze snapshots a clustering run into a servable Model, with the
// frozen (measure, θ, f) taken from cfg. The labeled subsets L_i are the
// run's own (Result.LabelSets) whenever the run drew them — so a model
// frozen from a sampled run reproduces that run's labeling phase
// exactly: Assign on any labeling candidate returns the cluster the run
// assigned it to. Runs that never labeled (no sampling) carry no
// subsets, so Freeze draws them fresh from res.Clusters with the same
// labelSets pass the labeling phase uses (cfg.LabelFraction /
// cfg.MaxLabelPoints, seeded by cfg.Seed — deterministic, but a new
// draw, not a replay). cfg.Measure must be nil or one of the four
// built-in measures; a custom similarity function cannot be serialized,
// and Freeze rejects it.
func Freeze(ts []dataset.Transaction, res *Result, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	name := similarity.Name(cfg.Measure)
	if name == "" {
		return nil, fmt.Errorf("core: cannot freeze a model over a custom similarity measure: only the built-in measures (%s, %s, %s, %s) serialize",
			similarity.NameJaccard, similarity.NameDice, similarity.NameCosine, similarity.NameOverlap)
	}
	if res == nil || len(res.Clusters) == 0 {
		return nil, fmt.Errorf("core: cannot freeze a model from a run with no clusters")
	}
	cfg = cfg.withDefaults()
	sets := res.LabelSets
	if len(sets) != len(res.Clusters) {
		sets = labelSets(res.Clusters, cfg, rand.New(rand.NewSource(cfg.Seed)))
	}
	sizes := make([]int, len(res.Clusters))
	for i, c := range res.Clusters {
		sizes[i] = len(c)
	}
	return FreezeSets(ts, sets, sizes, cfg.Theta, cfg.fval(), cfg.Measure)
}

// FreezeDataset is Freeze for a Dataset: the model additionally freezes
// the dataset's vocabulary, enabling AssignDataset on inputs read under a
// different (or later-grown) vocabulary.
func FreezeDataset(d *dataset.Dataset, res *Result, cfg Config) (*Model, error) {
	m, err := Freeze(d.Trans, res, cfg)
	if err != nil {
		return nil, err
	}
	m.items = append([]string(nil), d.Vocab.Names()...)
	return m, nil
}

// FreezeSets builds a Model from explicit labeled subsets: sets[i] lists
// the dataset-global indices of cluster i's labeled points, clusterSizes
// the full cluster sizes (nil defaults to the set sizes), and theta / f /
// m the labeling parameters (nil m selects Jaccard). The transactions are
// deep-copied; the model shares no memory with the caller afterwards.
func FreezeSets(ts []dataset.Transaction, sets [][]int, clusterSizes []int, theta, f float64, m similarity.Measure) (*Model, error) {
	name := similarity.Name(m)
	if name == "" {
		return nil, fmt.Errorf("core: cannot freeze a model over a custom similarity measure")
	}
	if math.IsNaN(theta) || theta < 0 || theta > 1 {
		return nil, fmt.Errorf("core: theta %g outside [0,1]", theta)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("core: exponent f %g is not finite", f)
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("core: cannot freeze a model with no clusters")
	}
	if clusterSizes == nil {
		clusterSizes = make([]int, len(sets))
		for i, li := range sets {
			clusterSizes[i] = len(li)
		}
	}
	if len(clusterSizes) != len(sets) {
		return nil, fmt.Errorf("core: %d cluster sizes for %d labeled subsets", len(clusterSizes), len(sets))
	}
	setSizes := make([]int, len(sets))
	pts := make([]dataset.Transaction, 0)
	for i, li := range sets {
		setSizes[i] = len(li)
		for _, q := range li {
			if q < 0 || q >= len(ts) {
				return nil, fmt.Errorf("core: labeled point index %d outside the dataset (n=%d)", q, len(ts))
			}
			pts = append(pts, ts[q].Clone())
		}
	}
	return newModel(pts, setSizes, append([]int(nil), clusterSizes...), theta, f, name)
}

// newModel assembles a Model from already-frozen parts: pts grouped by
// cluster, setSizes giving the per-cluster group lengths. Shared by
// FreezeSets and LoadModel.
func newModel(pts []dataset.Transaction, setSizes, clusterSizes []int, theta, f float64, measure string) (*Model, error) {
	sim := similarity.ByName(measure)
	if sim == nil {
		return nil, fmt.Errorf("%w: %q", ErrModelMeasure, measure)
	}
	m := &Model{
		theta:        theta,
		fval:         f,
		measure:      measure,
		clusterSizes: clusterSizes,
		pts:          pts,
		sets:         make([][]int, len(setSizes)),
	}
	at := 0
	for i, sz := range setSizes {
		li := make([]int, sz)
		for j := range li {
			li[j] = at
			at++
		}
		m.sets[i] = li
	}
	if at != len(pts) {
		return nil, fmt.Errorf("%w: %d labeled points for set sizes summing to %d", ErrModelCorrupt, len(pts), at)
	}
	m.lb = newLabeler(m.pts, m.sets, theta, f, sim)
	m.scratch.New = func() any { return m.lb.newScratch() }
	return m, nil
}

// K returns the number of clusters the model assigns into.
func (m *Model) K() int { return len(m.sets) }

// Theta returns the frozen neighbor threshold θ.
func (m *Model) Theta() float64 { return m.theta }

// F returns the frozen criterion exponent f(θ).
func (m *Model) F() float64 { return m.fval }

// MeasureName returns the canonical name of the frozen similarity
// measure (similarity.ByName turns it back into the function).
func (m *Model) MeasureName() string { return m.measure }

// LabeledPoints returns the total number of frozen labeled points Σ|L_i|.
func (m *Model) LabeledPoints() int { return len(m.pts) }

// ClusterSizes returns a copy of the full cluster sizes at freeze time.
func (m *Model) ClusterSizes() []int { return append([]int(nil), m.clusterSizes...) }

// Items returns the frozen vocabulary (item id → name), or nil when the
// model was frozen from raw ids. The returned slice is a copy.
func (m *Model) Items() []string { return append([]string(nil), m.items...) }

// LabeledGroups returns the model's frozen labeled points and their
// grouping: pts is the flat labeled-point slice and groups[i] lists
// indices into pts belonging to cluster i — the pre-formed seed an
// incremental re-cluster (ClusterSeeded) starts from. The slices are
// fresh copies (the transactions themselves are shared; they are
// immutable), so the caller may append outliers after the reps and hand
// the result straight to ClusterSeeded.
func (m *Model) LabeledGroups() (pts []dataset.Transaction, groups [][]int) {
	pts = append([]dataset.Transaction(nil), m.pts...)
	groups = make([][]int, len(m.sets))
	for i, li := range m.sets {
		groups[i] = append([]int(nil), li...)
	}
	return pts, groups
}

// String summarizes the model for logs and the CLI.
func (m *Model) String() string {
	vocab := "none"
	if m.items != nil {
		vocab = fmt.Sprintf("%d items", len(m.items))
	}
	return fmt.Sprintf("rock model: k=%d theta=%g f=%g measure=%s labeled-points=%d vocab=%s",
		m.K(), m.theta, m.fval, m.measure, len(m.pts), vocab)
}

// Assign returns the cluster index for one query transaction — the
// cluster maximizing N_i / (|L_i|+1)^f over the frozen subsets, ties to
// the smaller index, or -1 when the query has no θ-neighbor among the
// labeled points. Bit-identical to labelPoint over the frozen sets, and
// safe to call from any number of goroutines concurrently.
//
// The query must use the model's item id space; for a dataset read under
// its own vocabulary, use AssignDataset.
func (m *Model) Assign(t dataset.Transaction) int {
	sc := m.scratch.Get().(*labelScratch)
	ci := m.lb.label(t, sc)
	m.scratch.Put(sc)
	return ci
}

// AssignBatch assigns every query transaction, sharding across workers
// (0 = GOMAXPROCS) on the same chunked-claim loop the labeling phase
// uses; batches below the labeling phase's serial crossover take the
// serial loop, where goroutine handoff would cost more than it saves.
// Queries are independent, so the output is byte-identical for every
// worker count and either path — assignments in query order, exactly as
// if Assign had been called serially.
func (m *Model) AssignBatch(ts []dataset.Transaction, workers int) []int {
	serialBelow := m.batchSerialBelow
	if serialBelow == 0 {
		serialBelow = DefaultLabelSerialBelow
	}
	return m.lb.runEach(len(ts), func(i int) dataset.Transaction { return ts[i] }, workers, serialBelow,
		func() *labelScratch { return m.scratch.Get().(*labelScratch) },
		func(sc *labelScratch) { m.scratch.Put(sc) })
}

// AssignDataset assigns every transaction of a dataset that was read
// under its own vocabulary: RemapDataset followed by AssignBatch.
func (m *Model) AssignDataset(d *dataset.Dataset, workers int) ([]int, error) {
	mapped, err := m.RemapDataset(d)
	if err != nil {
		return nil, err
	}
	return m.AssignBatch(mapped, workers), nil
}

// RemapDataset translates a dataset's transactions by item name into the
// model's frozen item id space, ready for Assign/AssignBatch — the
// once-per-ingest step of a serving loop over data read under its own
// vocabulary. Item names the model has never seen stay in the query
// (they count toward |t|, exactly as an unseen item would in-process)
// but can match no labeled point. Requires a model frozen with
// FreezeDataset (or loaded from one); models frozen from raw ids carry
// no vocabulary to translate through.
func (m *Model) RemapDataset(d *dataset.Dataset) ([]dataset.Transaction, error) {
	if m.items == nil {
		return nil, fmt.Errorf("core: model was frozen without a vocabulary; freeze with FreezeDataset to enable vocabulary translation")
	}
	byName := make(map[string]dataset.Item, len(m.items))
	for id, name := range m.items {
		byName[name] = dataset.Item(id)
	}
	// Unknown names get fresh ids past the frozen vocabulary — distinct
	// per name, outside every posting list — so |t| and all intersection
	// sizes match what an in-process labeling of the same records would
	// see.
	unknown := map[string]dataset.Item{}
	next := dataset.Item(len(m.items))
	mapped := make([]dataset.Transaction, len(d.Trans))
	items := make([]dataset.Item, 0, 64)
	for i, t := range d.Trans {
		items = items[:0]
		for _, it := range t {
			name := d.Vocab.Name(it)
			id, ok := byName[name]
			if !ok {
				id, ok = unknown[name]
				if !ok {
					id = next
					next++
					unknown[name] = id
				}
			}
			items = append(items, id)
		}
		mapped[i] = dataset.NewTransaction(items...)
	}
	return mapped, nil
}

// assignReference is the oracle fixture for the model: a serial loop of
// labelPoint over the frozen points and sets — the same reference the
// pipeline's labeling phase is proven against. Unexported; reachable from
// this package's tests and benchmarks via BenchAssignReference.
func (m *Model) assignReference(ts []dataset.Transaction) []int {
	out := make([]int, len(ts))
	sim := similarity.ByName(m.measure)
	for i, t := range ts {
		out[i] = labelPoint(t, m.pts, m.sets, m.theta, m.fval, sim)
	}
	return out
}

// BenchAssignReference runs the serial pairwise reference assignment —
// exported for the `rockbench -assign` sweep and the Assign benchmarks.
func BenchAssignReference(m *Model, ts []dataset.Transaction) []int {
	return m.assignReference(ts)
}

// denomEqual reports whether the model's frozen normalization matches a
// freshly computed (|L_i|+1)^f table — a consistency probe used by tests.
func (m *Model) denomEqual() bool {
	for i, li := range m.sets {
		if m.lb.denom[i] != math.Pow(float64(len(li)+1), m.fval) {
			return false
		}
	}
	return true
}
