package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/linkage"
)

// randomLinkTable builds a random symmetric CSR link table over n points.
func randomLinkTable(r *rand.Rand, n int) *linkage.Compact {
	t := &linkage.Table{Adj: make([]map[int32]int32, n)}
	for i := 0; i < n; i++ {
		t.Adj[i] = make(map[int32]int32)
	}
	pairs := r.Intn(n * 2)
	for p := 0; p < pairs; p++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		c := int32(1 + r.Intn(5))
		t.Adj[i][int32(j)] = c
		t.Adj[j][int32(i)] = c
	}
	return linkage.CompactFrom(t)
}

// Engine invariants over random link structures: the output partitions
// the points, weeded points never appear in clusters, the merge count
// accounts for the cluster count, and reruns are identical.
func TestAgglomerateInvariantsQuick(t *testing.T) {
	type inputs struct {
		n, k, weedTrigger, weedMaxSize int
		table                          *linkage.Compact
	}
	cfg := &quick.Config{
		MaxCount: 120,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(40)
			in := inputs{
				n:     n,
				k:     1 + r.Intn(5),
				table: randomLinkTable(r, n),
			}
			if r.Intn(2) == 0 {
				in.weedTrigger = 1 + r.Intn(n)
				in.weedMaxSize = 1 + r.Intn(3)
			}
			vals[0] = reflect.ValueOf(in)
		},
	}
	prop := func(in inputs) bool {
		res := agglomerate(in.n, in.table, in.k, RockGoodness, 0.3, in.weedTrigger, in.weedMaxSize, true)

		seen := make([]bool, in.n)
		clustered := 0
		for _, members := range res.clusters {
			last := -1
			for _, p := range members {
				if p <= last || p < 0 || p >= in.n || seen[p] {
					return false // unsorted, out of range, or duplicated
				}
				last = p
				seen[p] = true
				clustered++
			}
		}
		for _, p := range res.weeded {
			if seen[p] {
				return false // weeded point also clustered
			}
			seen[p] = true
		}
		for _, s := range seen {
			if !s {
				return false // point lost
			}
		}
		// Merges: n points collapse into len(clusters) clusters plus
		// weeded groups; every merge reduces the count by one.
		if res.merges != len(res.trace) {
			return false
		}
		if clustered+len(res.weeded) != in.n {
			return false
		}
		// Determinism.
		rerun := agglomerate(in.n, in.table, in.k, RockGoodness, 0.3, in.weedTrigger, in.weedMaxSize, true)
		return reflect.DeepEqual(rerun.clusters, res.clusters) &&
			reflect.DeepEqual(rerun.weeded, res.weeded) &&
			reflect.DeepEqual(rerun.trace, res.trace)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Pipeline invariants over random transactions and configurations.
func TestClusterInvariantsQuick(t *testing.T) {
	type inputs struct {
		ts  []dataset.Transaction
		cfg Config
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := r.Intn(60)
			ts := make([]dataset.Transaction, n)
			for i := range ts {
				items := make([]dataset.Item, r.Intn(7))
				for k := range items {
					items[k] = dataset.Item(r.Intn(20))
				}
				ts[i] = dataset.NewTransaction(items...)
			}
			c := Config{
				Theta: float64(r.Intn(10)) / 10,
				K:     1 + r.Intn(4),
				Seed:  r.Int63(),
			}
			if r.Intn(2) == 0 {
				c.SampleSize = 1 + r.Intn(n+1)
			}
			if r.Intn(2) == 0 {
				c.MinNeighbors = r.Intn(3)
			}
			if r.Intn(3) == 0 {
				c.WeedAt = 0.1 + 0.4*r.Float64()
			}
			if r.Intn(2) == 0 {
				c.LabelOutliers = true
			}
			vals[0] = reflect.ValueOf(inputs{ts, c})
		},
	}
	prop := func(in inputs) bool {
		res, err := Cluster(in.ts, in.cfg)
		if err != nil {
			return false
		}
		n := len(in.ts)
		seen := make([]int, n)
		for ci, members := range res.Clusters {
			if len(members) == 0 {
				return false // empty cluster emitted
			}
			for _, p := range members {
				if p < 0 || p >= n || seen[p] != 0 {
					return false
				}
				seen[p] = 1
				if res.Assign[p] != ci {
					return false
				}
			}
		}
		for _, p := range res.Outliers {
			if seen[p] != 0 || res.Assign[p] != -1 {
				return false
			}
			seen[p] = 2
		}
		for _, s := range seen {
			if s == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
