package core

import (
	"math/rand"
	"testing"
)

func TestSampleIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := SampleIndices(100, 30, rng)
	if len(s) != 30 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[int]bool{}
	for i, v := range s {
		if v < 0 || v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
		if i > 0 && s[i-1] >= v {
			t.Fatal("not ascending")
		}
	}
}

func TestSampleIndicesWholeSet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := SampleIndices(5, 99, rng)
	if len(s) != 5 {
		t.Fatalf("len = %d, want 5", len(s))
	}
	for i, v := range s {
		if v != i {
			t.Fatalf("s = %v, want identity", s)
		}
	}
}

func TestSampleIndicesDeterministicPerSeed(t *testing.T) {
	a := SampleIndices(1000, 100, rand.New(rand.NewSource(7)))
	b := SampleIndices(1000, 100, rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}

// Coarse uniformity check: across many draws, every index should be
// sampled with frequency near size/n.
func TestSampleIndicesRoughlyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n, size, reps = 50, 10, 4000
	counts := make([]int, n)
	for r := 0; r < reps; r++ {
		for _, v := range SampleIndices(n, size, rng) {
			counts[v]++
		}
	}
	want := float64(size) / float64(n) * reps // 800
	for i, c := range counts {
		if float64(c) < want*0.8 || float64(c) > want*1.2 {
			t.Fatalf("index %d drawn %d times, want ≈ %.0f", i, c, want)
		}
	}
}

func TestChernoffSampleSize(t *testing.T) {
	// The bound must shrink as the smallest cluster grows...
	small := ChernoffSampleSize(10000, 100, 0.5, 0.01)
	big := ChernoffSampleSize(10000, 2000, 0.5, 0.01)
	if big >= small {
		t.Fatalf("bound not decreasing in cluster size: %d vs %d", small, big)
	}
	// ...grow with the required fraction...
	lo := ChernoffSampleSize(10000, 500, 0.1, 0.01)
	hi := ChernoffSampleSize(10000, 500, 0.9, 0.01)
	if hi <= lo {
		t.Fatalf("bound not increasing in fraction: %d vs %d", lo, hi)
	}
	// ...and grow as delta shrinks.
	loose := ChernoffSampleSize(10000, 500, 0.5, 0.1)
	tight := ChernoffSampleSize(10000, 500, 0.5, 0.001)
	if tight <= loose {
		t.Fatalf("bound not increasing in confidence: %d vs %d", loose, tight)
	}
	// Cap and degenerate cases.
	if got := ChernoffSampleSize(100, 5, 0.99, 0.0001); got != 100 {
		t.Fatalf("uncappable bound should clamp to n, got %d", got)
	}
	if ChernoffSampleSize(0, 10, 0.5, 0.01) != 0 || ChernoffSampleSize(10, 0, 0.5, 0.01) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
	if ChernoffSampleSize(100, 10, 0.5, 0) != 100 {
		t.Fatal("delta=0 should demand the full dataset")
	}
	// Sanity: the bound is at least the expected count frac·u scaled up.
	if got := ChernoffSampleSize(1000, 100, 0.5, 0.05); got < 500 {
		t.Fatalf("bound %d implausibly small", got)
	}
}
