package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/similarity"
)

// Cluster output must be byte-identical for a fixed seed regardless of
// the worker count: parallelism in the neighbor and link phases must not
// leak into results. Checked both structurally and on serialized bytes.
func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	configs := []Config{
		{Theta: 0.5, K: 4, Seed: 11, TraceMerges: true},
		{Theta: 0.6, K: 3, Seed: 7, SampleSize: 150, MinNeighbors: 2, WeedAt: 0.3},
		{Theta: 0.3, K: 5, Seed: 23, LabelOutliers: true},
		// LinkSerialBelow: -1 forces the sharded parallel CSR link
		// builder even at this test's n, so link-phase parallelism is
		// exercised, not just the neighbor phase.
		{Theta: 0.5, K: 4, Seed: 13, LinkSerialBelow: -1, TraceMerges: true},
		// LabelSerialBelow: -1 forces candidate sharding in the labeling
		// phase even at this test's candidate count, so label-phase
		// parallelism is exercised alongside sampling.
		{Theta: 0.5, K: 4, Seed: 17, SampleSize: 120, LabelSerialBelow: -1, LabelOutliers: true},
	}
	for ci, base := range configs {
		ts := randomTransactionsCore(r, 220, 7, 25)
		workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}

		var ref *Result
		var refBytes []byte
		for _, w := range workerCounts {
			cfg := base
			cfg.Workers = w
			res, err := Cluster(ts, cfg)
			if err != nil {
				t.Fatalf("config %d workers %d: %v", ci, w, err)
			}
			var buf bytes.Buffer
			if err := WriteResult(&buf, res); err != nil {
				t.Fatalf("config %d workers %d: serialize: %v", ci, w, err)
			}
			if ref == nil {
				ref, refBytes = res, buf.Bytes()
				continue
			}
			if !reflect.DeepEqual(res.Assign, ref.Assign) ||
				!reflect.DeepEqual(res.Clusters, ref.Clusters) ||
				!reflect.DeepEqual(res.Outliers, ref.Outliers) ||
				!reflect.DeepEqual(res.Stats, ref.Stats) ||
				!reflect.DeepEqual(res.MergeTrace, ref.MergeTrace) {
				t.Fatalf("config %d: workers=%d output differs structurally from workers=%d",
					ci, w, workerCounts[0])
			}
			if !bytes.Equal(buf.Bytes(), refBytes) {
				t.Fatalf("config %d: workers=%d serialized bytes differ from workers=%d",
					ci, w, workerCounts[0])
			}
		}
	}
}

// ChunkedCluster output must be byte-identical for a fixed seed
// regardless of the worker count — the scale-out variant inherits every
// parallel phase (neighbors, links, merges, labeling) through its
// per-chunk and representative runs, and none may leak into results.
func TestChunkedClusterDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	configs := []ChunkedConfig{
		{Base: Config{Theta: 0.5, K: 3, Seed: 5}, ChunkSize: 60},
		{Base: Config{Theta: 0.4, K: 4, Seed: 11, MinNeighbors: 1}, ChunkSize: 45, ChunkK: 6, Reps: 3},
		// Force the parallel link and label paths inside every sub-run.
		{Base: Config{Theta: 0.5, K: 3, Seed: 23, LinkSerialBelow: -1, LabelSerialBelow: -1}, ChunkSize: 80},
	}
	for ci, base := range configs {
		ts := randomTransactionsCore(r, 260, 6, 22)
		var ref *Result
		var refBytes []byte
		for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
			cfg := base
			cfg.Base.Workers = w
			res, err := ChunkedCluster(ts, cfg)
			if err != nil {
				t.Fatalf("config %d workers %d: %v", ci, w, err)
			}
			var buf bytes.Buffer
			if err := WriteResult(&buf, res); err != nil {
				t.Fatalf("config %d workers %d: serialize: %v", ci, w, err)
			}
			if ref == nil {
				ref, refBytes = res, buf.Bytes()
				// Determinism: an identical rerun must match byte for byte.
				rerun, err := ChunkedCluster(ts, cfg)
				if err != nil {
					t.Fatalf("config %d rerun: %v", ci, err)
				}
				var rbuf bytes.Buffer
				if err := WriteResult(&rbuf, rerun); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(rbuf.Bytes(), refBytes) {
					t.Fatalf("config %d: rerun with identical config differs", ci)
				}
				continue
			}
			if !reflect.DeepEqual(res.Assign, ref.Assign) ||
				!reflect.DeepEqual(res.Clusters, ref.Clusters) ||
				!reflect.DeepEqual(res.Outliers, ref.Outliers) {
				t.Fatalf("config %d: workers=%d output differs structurally from workers=1", ci, w)
			}
			if !bytes.Equal(buf.Bytes(), refBytes) {
				t.Fatalf("config %d: workers=%d serialized bytes differ from workers=1", ci, w)
			}
		}
	}
}

// QRock output must be byte-identical for every worker count: its only
// parallel phase is the indexed neighbor computation, which must not
// reorder the union-find of components.
func TestQRockDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	configs := []QRockConfig{
		{Theta: 0.5},
		{Theta: 0.35, MinClusterSize: 3},
		{Theta: 0.6, Measure: similarity.Dice},
	}
	for ci, base := range configs {
		ts := randomTransactionsCore(r, 300, 6, 20)
		var ref *Result
		var refBytes []byte
		for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
			cfg := base
			cfg.Workers = w
			res, err := QRock(ts, cfg)
			if err != nil {
				t.Fatalf("config %d workers %d: %v", ci, w, err)
			}
			var buf bytes.Buffer
			if err := WriteResult(&buf, res); err != nil {
				t.Fatalf("config %d workers %d: serialize: %v", ci, w, err)
			}
			if ref == nil {
				ref, refBytes = res, buf.Bytes()
				rerun, err := QRock(ts, cfg)
				if err != nil {
					t.Fatalf("config %d rerun: %v", ci, err)
				}
				var rbuf bytes.Buffer
				if err := WriteResult(&rbuf, rerun); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(rbuf.Bytes(), refBytes) {
					t.Fatalf("config %d: rerun with identical config differs", ci)
				}
				continue
			}
			if !reflect.DeepEqual(res.Assign, ref.Assign) ||
				!reflect.DeepEqual(res.Clusters, ref.Clusters) ||
				!reflect.DeepEqual(res.Outliers, ref.Outliers) {
				t.Fatalf("config %d: workers=%d output differs structurally from workers=1", ci, w)
			}
			if !bytes.Equal(buf.Bytes(), refBytes) {
				t.Fatalf("config %d: workers=%d serialized bytes differ from workers=1", ci, w)
			}
		}
	}
}

// randomTransactionsCore mirrors the linkage test helper locally.
func randomTransactionsCore(r *rand.Rand, n, maxItems, vocab int) []dataset.Transaction {
	ts := make([]dataset.Transaction, n)
	for i := range ts {
		items := make([]dataset.Item, 1+r.Intn(maxItems))
		for k := range items {
			items[k] = dataset.Item(r.Intn(vocab))
		}
		ts[i] = dataset.NewTransaction(items...)
	}
	return ts
}

// CriterionCSR must agree exactly with the pairwise-probing Criterion on
// the same table.
func TestCriterionCSRMatchesCriterion(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 5 + r.Intn(60)
		lt := randomLinkTable(r, n)
		// Random partition of a random subset of points into clusters.
		k := 1 + r.Intn(5)
		clusters := make([][]int, k)
		for p := 0; p < n; p++ {
			if r.Intn(4) == 0 {
				continue // leave some points unclustered, as after pruning
			}
			ci := r.Intn(k)
			clusters[ci] = append(clusters[ci], p)
		}
		var nonEmpty [][]int
		for _, c := range clusters {
			if len(c) > 0 {
				nonEmpty = append(nonEmpty, c)
			}
		}
		f := 0.1 + r.Float64()
		got := CriterionCSR(nonEmpty, lt, f)
		want := Criterion(nonEmpty, lt.Get, f)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: CriterionCSR=%g Criterion=%g", trial, got, want)
		}
	}
}
