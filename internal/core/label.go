package core

import (
	"math"
	"math/rand"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/similarity"
)

// labelSets draws the per-cluster labeling subsets L_i: a uniform random
// LabelFraction of each cluster's members (at least one, at most
// MaxLabelPoints). Members are dataset-global indices.
func labelSets(clusters [][]int, cfg Config, rng *rand.Rand) [][]int {
	out := make([][]int, len(clusters))
	for i, members := range clusters {
		want := int(math.Ceil(cfg.LabelFraction * float64(len(members))))
		if want < 1 {
			want = 1
		}
		if want > cfg.MaxLabelPoints {
			want = cfg.MaxLabelPoints
		}
		if want > len(members) {
			want = len(members)
		}
		pick := SampleIndices(len(members), want, rng)
		li := make([]int, len(pick))
		for j, p := range pick {
			li[j] = members[p]
		}
		out[i] = li
	}
	return out
}

// labelPoint assigns one out-of-sample point to the cluster maximizing the
// paper's labeling score N_i / (|L_i|+1)^f, where N_i is the number of
// θ-neighbors of the point inside L_i. It returns -1 when the point has no
// neighbor in any L_i (an outlier with respect to the discovered
// clusters). Ties break toward the smaller cluster index, keeping the
// phase deterministic.
//
// This is the reference implementation, kept as the oracle fixture (the
// label-phase counterpart of engine_reference.go): the pipeline labels
// through the indexed, sharded labeler in label_indexed.go /
// label_parallel.go, and the oracle tests prove that path byte-identical
// to a serial loop of labelPoint over the candidates.
func labelPoint(t dataset.Transaction, ts []dataset.Transaction, sets [][]int, theta, f float64, sim similarity.Measure) int {
	best := -1
	bestScore := 0.0
	for i, li := range sets {
		n := 0
		for _, q := range li {
			if sim(t, ts[q]) >= theta {
				n++
			}
		}
		if n == 0 {
			continue
		}
		score := float64(n) / math.Pow(float64(len(li)+1), f)
		if best == -1 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}
