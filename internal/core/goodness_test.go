package core

import (
	"math"
	"testing"
)

func TestMarketBasketF(t *testing.T) {
	tests := []struct{ theta, want float64 }{
		{0, 1},
		{1, 0},
		{0.5, 1.0 / 3.0},
		{0.73, 0.27 / 1.73},
		{0.8, 0.2 / 1.8},
	}
	for _, tc := range tests {
		if got := MarketBasketF(tc.theta); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("f(%g) = %g, want %g", tc.theta, got, tc.want)
		}
	}
}

func TestConstantF(t *testing.T) {
	f := ConstantF(0.42)
	if f(0.1) != 0.42 || f(0.9) != 0.42 {
		t.Fatal("ConstantF not constant")
	}
}

func TestRockGoodnessHandComputed(t *testing.T) {
	// Singleton merge with one link at f = 1/3:
	// denom = 2^(5/3) − 1 − 1.
	want := 1 / (math.Pow(2, 5.0/3.0) - 2)
	if got := RockGoodness(1, 1, 1, 1.0/3.0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("g = %g, want %g", got, want)
	}
	if got := RockGoodness(0, 3, 4, 0.5); got != 0 {
		t.Fatalf("zero links should give zero goodness, got %g", got)
	}
}

func TestRockGoodnessNormalizationPenalizesLargeClusters(t *testing.T) {
	// Same cross-link count: merging two large clusters must score below
	// merging two small ones — the whole point of the normalization.
	small := RockGoodness(10, 3, 3, 1.0/3.0)
	large := RockGoodness(10, 50, 50, 1.0/3.0)
	if large >= small {
		t.Fatalf("goodness does not penalize size: small=%g large=%g", small, large)
	}
	// And more links is always better at fixed sizes.
	if RockGoodness(11, 5, 7, 0.25) <= RockGoodness(10, 5, 7, 0.25) {
		t.Fatal("goodness not monotone in links")
	}
}

func TestRockGoodnessDegenerateExponent(t *testing.T) {
	// f = 0 gives exponent 1 and a zero denominator; the fallback is the
	// raw link count.
	if got := RockGoodness(7, 2, 3, 0); got != 7 {
		t.Fatalf("degenerate-exponent fallback = %g, want 7", got)
	}
}

func TestAblationGoodnesses(t *testing.T) {
	if LinkCountGoodness(9, 100, 100, 0.3) != 9 {
		t.Fatal("LinkCountGoodness must ignore sizes")
	}
	if got := AverageLinkGoodness(8, 2, 4, 0.3); got != 1 {
		t.Fatalf("AverageLinkGoodness = %g, want 1", got)
	}
}

func TestCriterion(t *testing.T) {
	// Two clusters: {0,1,2} with pairwise links all 2, {3,4} with link 1.
	links := map[[2]int]int{
		{0, 1}: 2, {0, 2}: 2, {1, 2}: 2,
		{3, 4}: 1,
	}
	get := func(i, j int) int {
		if i > j {
			i, j = j, i
		}
		return links[[2]int{i, j}]
	}
	f := 1.0 / 3.0
	exp := 1 + 2*f
	want := 3*6/math.Pow(3, exp) + 2*1/math.Pow(2, exp)
	got := Criterion([][]int{{0, 1, 2}, {3, 4}}, get, f)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Criterion = %g, want %g", got, want)
	}
	// Splitting the linked triple must lower the criterion.
	split := Criterion([][]int{{0, 1}, {2}, {3, 4}}, get, f)
	if split >= got {
		t.Fatalf("split criterion %g not below joined %g", split, got)
	}
	// Singletons contribute nothing.
	if Criterion([][]int{{0}, {1}}, get, f) != 0 {
		t.Fatal("singleton clusters must contribute 0")
	}
}
