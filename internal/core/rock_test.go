package core

import (
	"math/rand"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

// groupedData synthesizes ngroups well-separated transaction groups of the
// given size: group g draws its items from a private pool. Returns the
// transactions and the ground-truth group of each.
func groupedData(ngroups, size int, seed int64) ([]dataset.Transaction, []int) {
	r := rand.New(rand.NewSource(seed))
	var ts []dataset.Transaction
	var truth []int
	const poolSize = 12
	for g := 0; g < ngroups; g++ {
		base := g * poolSize
		for i := 0; i < size; i++ {
			// 6 items from the group pool: any two transactions of a group
			// share ≥ 1 item with high probability, and Jaccard within the
			// group is far above across groups (which share nothing).
			items := make([]dataset.Item, 0, 6)
			for len(items) < 6 {
				items = append(items, dataset.Item(base+r.Intn(poolSize)))
			}
			ts = append(ts, dataset.NewTransaction(items...))
			truth = append(truth, g)
		}
	}
	return ts, truth
}

// checkPartition verifies the structural invariants every Result must
// satisfy: Assign, Clusters and Outliers together partition the input.
func checkPartition(t *testing.T, res *Result, n int) {
	t.Helper()
	seen := make([]int, n) // 0 unseen, 1 cluster, 2 outlier
	for ci, members := range res.Clusters {
		for _, p := range members {
			if seen[p] != 0 {
				t.Fatalf("point %d appears twice", p)
			}
			seen[p] = 1
			if res.Assign[p] != ci {
				t.Fatalf("Assign[%d] = %d, want %d", p, res.Assign[p], ci)
			}
		}
	}
	for _, p := range res.Outliers {
		if seen[p] != 0 {
			t.Fatalf("outlier %d also clustered", p)
		}
		seen[p] = 2
		if res.Assign[p] != -1 {
			t.Fatalf("outlier %d has Assign %d", p, res.Assign[p])
		}
	}
	for p := 0; p < n; p++ {
		if seen[p] == 0 {
			t.Fatalf("point %d neither clustered nor outlier", p)
		}
	}
}

func TestClusterSeparableGroups(t *testing.T) {
	ts, truth := groupedData(3, 40, 1)
	res, err := Cluster(ts, Config{Theta: 0.3, K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, len(ts))
	if res.K() != 3 {
		t.Fatalf("found %d clusters, want 3", res.K())
	}
	// Each discovered cluster must be pure with respect to truth.
	for ci, members := range res.Clusters {
		g0 := truth[members[0]]
		for _, p := range members {
			if truth[p] != g0 {
				t.Fatalf("cluster %d mixes groups %d and %d", ci, g0, truth[p])
			}
		}
		if len(members) != 40 {
			t.Fatalf("cluster %d has %d members, want 40", ci, len(members))
		}
	}
	if res.Stats.StoppedEarly {
		t.Fatal("unexpected early stop")
	}
}

func TestClusterPrunesIsolatedPoints(t *testing.T) {
	ts, _ := groupedData(2, 20, 2)
	// Append junk points with items no one else has: zero neighbors.
	for j := 0; j < 3; j++ {
		ts = append(ts, dataset.NewTransaction(dataset.Item(1000+10*j), dataset.Item(1001+10*j)))
	}
	res, err := Cluster(ts, Config{Theta: 0.3, K: 2, MinNeighbors: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, len(ts))
	if res.Stats.Pruned < 3 {
		t.Fatalf("pruned %d, want at least the 3 junk points", res.Stats.Pruned)
	}
	for _, p := range []int{40, 41, 42} {
		if res.Assign[p] != -1 {
			t.Fatalf("junk point %d was clustered", p)
		}
	}
}

func TestClusterSamplingAndLabeling(t *testing.T) {
	ts, truth := groupedData(3, 200, 4)
	// A generous labeling fraction keeps the per-point miss probability
	// negligible on this moderately fuzzy data.
	res, err := Cluster(ts, Config{Theta: 0.3, K: 3, SampleSize: 90, Seed: 5, LabelFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, len(ts))
	if len(res.SampleIdx) != 90 {
		t.Fatalf("sample size = %d", len(res.SampleIdx))
	}
	if res.K() != 3 {
		t.Fatalf("found %d clusters, want 3", res.K())
	}
	// Labeling must put ≥ 99% of points into the correct group.
	misassigned := 0
	for ci, members := range res.Clusters {
		counts := map[int]int{}
		for _, p := range members {
			counts[truth[p]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		misassigned += len(members) - best
		_ = ci
	}
	if total := len(ts); misassigned > total/100 {
		t.Fatalf("%d of %d points mislabeled", misassigned, total)
	}
	if res.Stats.Unlabeled > 6 {
		t.Fatalf("unlabeled = %d", res.Stats.Unlabeled)
	}
}

func TestClusterSampledDegenerateAllPruned(t *testing.T) {
	// Mutually disjoint transactions: no neighbors anywhere; MinNeighbors
	// prunes the whole sample, and out-of-sample points become outliers.
	var ts []dataset.Transaction
	for i := 0; i < 30; i++ {
		ts = append(ts, dataset.NewTransaction(dataset.Item(3*i), dataset.Item(3*i+1)))
	}
	res, err := Cluster(ts, Config{Theta: 0.5, K: 2, SampleSize: 10, MinNeighbors: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, len(ts))
	if res.K() != 0 || len(res.Outliers) != 30 {
		t.Fatalf("k=%d outliers=%d, want 0/30", res.K(), len(res.Outliers))
	}
}

func TestClusterDeterminism(t *testing.T) {
	ts, _ := groupedData(3, 60, 7)
	cfg := Config{Theta: 0.35, K: 3, SampleSize: 100, Seed: 11, MinNeighbors: 1, WeedAt: 0.5}
	a, err := Cluster(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.K() != b.K() {
		t.Fatal("nondeterministic cluster count")
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("nondeterministic assignment at %d", i)
		}
	}
}

func TestClusterSeedChangesSample(t *testing.T) {
	ts, _ := groupedData(2, 100, 8)
	a, _ := Cluster(ts, Config{Theta: 0.3, K: 2, SampleSize: 50, Seed: 1})
	b, _ := Cluster(ts, Config{Theta: 0.3, K: 2, SampleSize: 50, Seed: 2})
	same := true
	for i := range a.SampleIdx {
		if a.SampleIdx[i] != b.SampleIdx[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical samples")
	}
}

func TestClusterValidation(t *testing.T) {
	ts, _ := groupedData(1, 5, 9)
	bad := []Config{
		{Theta: -0.1, K: 2},
		{Theta: 1.5, K: 2},
		{Theta: 0.5, K: 0},
		{Theta: 0.5, K: 2, SampleSize: -1},
		{Theta: 0.5, K: 2, WeedAt: 2},
		{Theta: 0.5, K: 2, MinNeighbors: -3},
	}
	for i, cfg := range bad {
		if _, err := Cluster(ts, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestClusterEmptyInput(t *testing.T) {
	res, err := Cluster(nil, Config{Theta: 0.5, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 0 || len(res.Assign) != 0 {
		t.Fatal("empty input should give empty result")
	}
}

func TestClusterStoppedEarlyReported(t *testing.T) {
	// Two groups, ask for k=1: no cross links exist, so ROCK must stop at
	// two clusters and say so.
	ts, _ := groupedData(2, 20, 10)
	res, err := Cluster(ts, Config{Theta: 0.3, K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.StoppedEarly {
		t.Fatal("early stop not reported")
	}
	if res.K() != 2 {
		t.Fatalf("k = %d, want 2", res.K())
	}
}

func TestResultSizes(t *testing.T) {
	res := &Result{Clusters: [][]int{{1, 2, 3}, {4}}}
	s := res.Sizes()
	if len(s) != 2 || s[0] != 3 || s[1] != 1 {
		t.Fatalf("Sizes = %v", s)
	}
}

func TestClusterWithLSHNeighbors(t *testing.T) {
	ts, truth := groupedData(3, 50, 61)
	exact, err := Cluster(ts, Config{Theta: 0.3, K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lsh, err := Cluster(ts, Config{Theta: 0.3, K: 3, Seed: 1, LSHNeighbors: true, LSHHashes: 128, LSHBands: 64})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, lsh, len(ts))
	if lsh.K() != exact.K() {
		t.Fatalf("LSH found %d clusters, exact %d", lsh.K(), exact.K())
	}
	// The approximate run must still recover the group structure.
	for _, members := range lsh.Clusters {
		g := truth[members[0]]
		for _, p := range members {
			if truth[p] != g {
				t.Fatal("LSH clustering mixed groups")
			}
		}
	}
	// Determinism holds for the LSH path too.
	again, err := Cluster(ts, Config{Theta: 0.3, K: 3, Seed: 1, LSHNeighbors: true, LSHHashes: 128, LSHBands: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := range lsh.Assign {
		if lsh.Assign[i] != again.Assign[i] {
			t.Fatal("LSH path nondeterministic")
		}
	}

	// The run's quality ledger must be populated — and absent on the
	// exact run.
	st := lsh.Stats
	if st.LSHCandidatePairs <= 0 || st.LSHVerifiedEdges <= 0 || st.LSHCandidatePairs < st.LSHVerifiedEdges {
		t.Fatalf("implausible LSH ledger: %+v", st)
	}
	if st.LSHRecallSampled <= 0 || st.LSHRecall <= 0 || st.LSHRecall > 1 {
		t.Fatalf("recall estimate missing from ledger: %+v", st)
	}
	if e := exact.Stats; e.LSHCandidatePairs != 0 || e.LSHVerifiedEdges != 0 || e.LSHRecallSampled != 0 || e.LSHRecall != 0 {
		t.Fatalf("exact run carries an LSH ledger: %+v", e)
	}
	if st.LinkEntries != 2*int64(st.LinkPairs) {
		t.Fatalf("LinkEntries %d != 2×LinkPairs %d", st.LinkEntries, st.LinkPairs)
	}
}

func TestStatsFoldLSHWeightsRecall(t *testing.T) {
	var s Stats
	s.foldLSH(100, 40, 60, 1.0)
	s.foldLSH(50, 10, 0, 0) // sub-run with the estimator disabled
	s.foldLSH(200, 80, 20, 0.6)
	if s.LSHCandidatePairs != 350 || s.LSHVerifiedEdges != 130 {
		t.Fatalf("counts not summed: %+v", s)
	}
	if s.LSHRecallSampled != 80 {
		t.Fatalf("sampled rows = %d, want 80", s.LSHRecallSampled)
	}
	if want := (1.0*60 + 0.6*20) / 80; s.LSHRecall < want-1e-12 || s.LSHRecall > want+1e-12 {
		t.Fatalf("recall = %g, want weighted mean %g", s.LSHRecall, want)
	}
}
