// Package core implements the ROCK clustering algorithm: the goodness
// measure and criterion function, the agglomerative merge engines,
// outlier handling, Chernoff-bound random sampling, the labeling phase for
// out-of-sample points, and the QROCK connected-components variant.
//
// Three merge engines share one contract. engine_reference.go holds the
// map-based reference (map[int]*clus, one indexed heap per cluster);
// engine.go holds the serial arena engine; engine_parallel.go batches the
// arena's merges into conflict-free concurrent rounds. All three produce
// byte-identical results — clusters, weeded set, merge count, and the
// full trace — which a randomized oracle test enforces configuration by
// configuration, so the fast engines are refactors of the slow one in
// the strictest sense.
//
// Arena invariants (engine.go): clusters live in slots [0, n); a merge
// reuses one parent's slot for the product and the other slot dies, so
// `alive` plus the logical `id` array replace the reference engine's
// map. Logical ids — singletons 0..n-1, each merge minting the next id —
// are the paper's tie-break and trace currency; slots are storage only.
// Adjacency rows are sorted by slot, reference only live slots (merges
// and weeding scrub dead entries), and are recycled through a buffer
// pool; member lists are intrusive (head/tail/next over point indices),
// so merging is two pointer writes. Each slot caches its best merge
// partner (bestTo/bestG); the global lazy heap orders slots by that
// cached best, tie-breaking on logical id.
package core

import (
	"math"

	"github.com/rockclust/rock/internal/linkage"
)

// FTheta maps the neighbor threshold θ to the exponent function f(θ) used
// by the criterion and goodness measures: a point in cluster C_i is
// heuristically expected to have n_i^{f(θ)} neighbors within the cluster.
type FTheta func(theta float64) float64

// MarketBasketF is the paper's choice f(θ) = (1−θ)/(1+θ) for market-basket
// and categorical data.
func MarketBasketF(theta float64) float64 { return (1 - theta) / (1 + theta) }

// ConstantF returns an FTheta that ignores θ — useful in ablations probing
// the sensitivity of the criterion to the exponent.
func ConstantF(c float64) FTheta { return func(float64) float64 { return c } }

// GoodnessFunc scores a candidate merge of clusters with sizes ni and nj
// joined by links cross links, given the exponent value f = f(θ). Higher
// is better. ROCK merges the pair with maximal goodness.
type GoodnessFunc func(links int, ni, nj int, f float64) float64

// RockGoodness is the paper's goodness measure
//
//	g(Ci,Cj) = link[Ci,Cj] / ((ni+nj)^(1+2f) − ni^(1+2f) − nj^(1+2f)),
//
// the observed cross-link count normalized by its expectation, which
// prevents large clusters from absorbing everything simply because they
// have many links in aggregate.
func RockGoodness(links int, ni, nj int, f float64) float64 {
	if links == 0 {
		return 0
	}
	exp := 1 + 2*f
	denom := math.Pow(float64(ni+nj), exp) - math.Pow(float64(ni), exp) - math.Pow(float64(nj), exp)
	if denom <= 0 {
		// exp ≤ 1 can produce a non-positive expectation; fall back to the
		// raw link count so merging still prefers strongly linked pairs.
		return float64(links)
	}
	return float64(links) / denom
}

// LinkCountGoodness merges by raw cross-link count — the unnormalized
// ablation of RockGoodness. Large clusters dominate.
func LinkCountGoodness(links int, ni, nj int, f float64) float64 {
	return float64(links)
}

// AverageLinkGoodness merges by links/(ni·nj), the mean number of links
// per cross pair — a plausible but weaker normalization used as an
// ablation in DESIGN.md (A1).
func AverageLinkGoodness(links int, ni, nj int, f float64) float64 {
	return float64(links) / (float64(ni) * float64(nj))
}

// Criterion evaluates the paper's criterion function
//
//	E_l = Σ_i n_i · Σ_{p,q ∈ C_i} link(p,q) / n_i^(1+2f)
//
// over a clustering, where clusters lists member point ids and get
// returns link counts between points. Maximizing E_l is the formal goal
// the greedy goodness-driven merging approximates.
func Criterion(clusters [][]int, get func(i, j int) int, f float64) float64 {
	exp := 1 + 2*f
	total := 0.0
	for _, members := range clusters {
		n := len(members)
		if n < 2 {
			continue
		}
		links := 0
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				links += get(members[a], members[b])
			}
		}
		// Each unordered pair counted once; the paper's double sum over
		// ordered pairs is twice that, a constant factor that does not
		// change the argmax. We keep unordered counts throughout.
		total += float64(n) * float64(links) / math.Pow(float64(n), exp)
	}
	return total
}

// CriterionCSR evaluates the same criterion directly over a CSR link
// table: each member's row is scanned once against a cluster-membership
// array, so a cluster costs O(Σ_{p∈C_i} deg(p)) instead of the O(n_i²)
// pair probes of Criterion. Values agree exactly with
// Criterion(clusters, c.Get, f).
func CriterionCSR(clusters [][]int, c *linkage.Compact, f float64) float64 {
	cluster := make([]int32, c.Len())
	for i := range cluster {
		cluster[i] = -1
	}
	for ci, members := range clusters {
		for _, p := range members {
			cluster[p] = int32(ci)
		}
	}
	exp := 1 + 2*f
	total := 0.0
	for ci, members := range clusters {
		n := len(members)
		if n < 2 {
			continue
		}
		links := 0
		for _, p := range members {
			c.Row(p, func(j, count int) {
				// Count each unordered intra-cluster pair once.
				if j > p && cluster[j] == int32(ci) {
					links += count
				}
			})
		}
		total += float64(n) * float64(links) / math.Pow(float64(n), exp)
	}
	return total
}
