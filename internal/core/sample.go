package core

import (
	"math"
	"math/rand"
	"sort"
)

// SampleIndices draws size indices uniformly without replacement from
// [0,n), returned in ascending order. If size ≥ n it returns all indices.
func SampleIndices(n, size int, rng *rand.Rand) []int {
	if size >= n {
		size = n
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// Partial Fisher–Yates: the first `size` entries are a uniform sample.
	for i := 0; i < size; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := perm[:size]
	sort.Ints(out)
	return out
}

// ChernoffSampleSize returns the minimum random-sample size s such that,
// with probability at least 1−delta, the sample contains at least
// frac·|u| points of a cluster u with clusterSize points out of N total —
// the bound ROCK inherits from CURE for sizing its clustering sample:
//
//	s ≥ frac·N + (N/|u|)·log(1/δ) + (N/|u|)·√(log²(1/δ) + 2·frac·|u|·log(1/δ))
//
// The result is capped at N.
func ChernoffSampleSize(n, clusterSize int, frac, delta float64) int {
	if n <= 0 || clusterSize <= 0 {
		return 0
	}
	if delta <= 0 || delta >= 1 {
		return n
	}
	nf := float64(n)
	u := float64(clusterSize)
	l := math.Log(1 / delta)
	s := frac*nf + nf/u*l + nf/u*math.Sqrt(l*l+2*frac*u*l)
	size := int(math.Ceil(s))
	if size > n {
		size = n
	}
	if size < 0 {
		size = 0
	}
	return size
}
