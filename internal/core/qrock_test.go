package core

import (
	"reflect"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

func TestQRockComponents(t *testing.T) {
	ts, truth := groupedData(3, 25, 21)
	res, err := QRock(ts, QRockConfig{Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, len(ts))
	if res.K() != 3 {
		t.Fatalf("components = %d, want 3", res.K())
	}
	for _, members := range res.Clusters {
		g := truth[members[0]]
		for _, p := range members {
			if truth[p] != g {
				t.Fatal("component mixes groups")
			}
		}
	}
}

func TestQRockMinClusterSize(t *testing.T) {
	// Deterministic components: two 4-cliques of near-identical
	// transactions plus an isolated pair.
	tr := func(items ...dataset.Item) dataset.Transaction { return dataset.NewTransaction(items...) }
	ts := []dataset.Transaction{
		tr(1, 2, 3), tr(1, 2, 3, 4), tr(1, 2, 4), tr(2, 3, 4),
		tr(10, 11, 12), tr(10, 11, 13), tr(10, 12, 13), tr(11, 12, 13),
		tr(500, 501), tr(500, 501),
	}
	res, err := QRock(ts, QRockConfig{Theta: 0.4, MinClusterSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 2 {
		t.Fatalf("k = %d, want 2 (clusters %v)", res.K(), res.Clusters)
	}
	if len(res.Outliers) != 2 || res.Outliers[0] != 8 || res.Outliers[1] != 9 {
		t.Fatalf("outliers = %v, want [8 9]", res.Outliers)
	}
}

func TestQRockValidation(t *testing.T) {
	if _, err := QRock(nil, QRockConfig{Theta: -1}); err == nil {
		t.Fatal("invalid theta accepted")
	}
	res, err := QRock(nil, QRockConfig{Theta: 0.5})
	if err != nil || res.K() != 0 {
		t.Fatal("empty input mishandled")
	}
}

// QROCK's defining property: with self-inclusive neighbor lists, ROCK run
// to k=1 without pruning/weeding merges exactly the connected components
// of the θ-neighbor graph. (Self-inclusion makes every neighbor edge a
// positive link: the two endpoints are common neighbors of the pair.)
func TestQRockMatchesRockAtKOne(t *testing.T) {
	ts, _ := groupedData(4, 15, 23)
	rockRes, err := Cluster(ts, Config{Theta: 0.3, K: 1, IncludeSelf: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	qRes, err := QRock(ts, QRockConfig{Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rockRes.Clusters, qRes.Clusters) {
		t.Fatalf("ROCK(k=1, self) %v != QROCK %v", rockRes.Clusters, qRes.Clusters)
	}
}

// QROCK over approximate neighbors: the LSH pipeline's recovered edges
// must still yield the group components on well-separated data, and the
// quality ledger must land in Stats.
func TestQRockLSHNeighbors(t *testing.T) {
	ts, truth := groupedData(3, 50, 27)
	res, err := QRock(ts, QRockConfig{Theta: 0.3, Seed: 3, LSHNeighbors: true, LSHHashes: 128, LSHBands: 64})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, len(ts))
	if res.K() != 3 {
		t.Fatalf("components = %d, want 3", res.K())
	}
	for _, members := range res.Clusters {
		g := truth[members[0]]
		for _, p := range members {
			if truth[p] != g {
				t.Fatal("component mixes groups")
			}
		}
	}
	st := res.Stats
	if st.LSHCandidatePairs <= 0 || st.LSHVerifiedEdges <= 0 || st.LSHRecallSampled <= 0 {
		t.Fatalf("LSH ledger not populated: %+v", st)
	}
	again, err := QRock(ts, QRockConfig{Theta: 0.3, Seed: 3, LSHNeighbors: true, LSHHashes: 128, LSHBands: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Clusters, again.Clusters) {
		t.Fatal("QROCK LSH path nondeterministic")
	}
}
