package core

import (
	"reflect"
	"testing"
)

func TestTraceRecordsMerges(t *testing.T) {
	pairs := map[[2]int]int{
		{0, 1}: 3, {0, 2}: 3, {1, 2}: 3,
		{3, 4}: 3, {3, 5}: 3, {4, 5}: 3,
	}
	res := agglomerate(6, tableFromPairs(6, pairs), 2, RockGoodness, 1.0/3.0, 0, 0, true)
	if len(res.trace) != 4 {
		t.Fatalf("trace has %d steps, want 4", len(res.trace))
	}
	// Steps allocate fresh ids in order and record pre-merge sizes.
	for i, s := range res.trace {
		if s.Into != 6+i {
			t.Fatalf("step %d Into = %d, want %d", i, s.Into, 6+i)
		}
		if s.SizeA < 1 || s.SizeB < 1 || s.Links < 1 || s.Goodness <= 0 {
			t.Fatalf("step %d implausible: %+v", i, s)
		}
		if s.Remaining != 6-(i+1) {
			t.Fatalf("step %d Remaining = %d", i, s.Remaining)
		}
	}
}

func TestCutTraceReproducesEveryK(t *testing.T) {
	pairs := map[[2]int]int{
		{0, 1}: 4, {1, 2}: 3, {0, 2}: 3, {2, 3}: 1,
		{4, 5}: 4, {5, 6}: 3, {3, 4}: 1,
	}
	full := agglomerate(7, tableFromPairs(7, pairs), 1, RockGoodness, 0.3, 0, 0, true)
	// Cutting at k must match a fresh run at that k, for every reachable k.
	for k := 1; k <= 7; k++ {
		fresh := agglomerate(7, tableFromPairs(7, pairs), k, RockGoodness, 0.3, 0, 0, false)
		cut, err := CutTrace(7, full.trace, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cut, fresh.clusters) {
			t.Fatalf("k=%d: cut %v != fresh %v", k, cut, fresh.clusters)
		}
	}
}

func TestCutTraceErrors(t *testing.T) {
	if _, err := CutTrace(3, nil, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	bad := []MergeStep{{A: 40, B: 41, Into: 42}}
	if _, err := CutTrace(3, bad, 1); err == nil {
		t.Fatal("corrupt trace accepted")
	}
}

func TestClusterTraceThroughPipeline(t *testing.T) {
	ts, _ := groupedData(3, 20, 31)
	res, err := Cluster(ts, Config{Theta: 0.3, K: 3, Seed: 1, TraceMerges: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TracePoints) != len(ts) {
		t.Fatalf("TracePoints = %d, want %d", len(res.TracePoints), len(ts))
	}
	if len(res.MergeTrace) != res.Stats.Merges {
		t.Fatalf("trace %d steps, stats %d merges", len(res.MergeTrace), res.Stats.Merges)
	}
	// Cutting the trace at the final k reproduces the result's clusters
	// (mapped through TracePoints).
	cut, err := CutTrace(len(res.TracePoints), res.MergeTrace, res.K())
	if err != nil {
		t.Fatal(err)
	}
	if len(cut) != res.K() {
		t.Fatalf("cut k = %d, want %d", len(cut), res.K())
	}
	for ci, members := range cut {
		mapped := make([]int, len(members))
		for i, l := range members {
			mapped[i] = res.TracePoints[l]
		}
		if !reflect.DeepEqual(mapped, res.Clusters[ci]) {
			t.Fatalf("cluster %d: cut %v != result %v", ci, mapped, res.Clusters[ci])
		}
	}
	// Cutting higher gives a finer partition of the same points.
	finer, err := CutTrace(len(res.TracePoints), res.MergeTrace, res.K()+2)
	if err != nil {
		t.Fatal(err)
	}
	if len(finer) != res.K()+2 {
		t.Fatalf("finer cut k = %d", len(finer))
	}
}

func TestLabelOutliersRecoversPrunedPoints(t *testing.T) {
	ts, truth := groupedData(2, 30, 33)
	// Aggressive pruning without LabelOutliers: pruned points stay out.
	strict, err := Cluster(ts, Config{Theta: 0.3, K: 2, MinNeighbors: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Outliers) == 0 {
		t.Skip("pruning did not fire; tighten MinNeighbors")
	}
	relabel, err := Cluster(ts, Config{Theta: 0.3, K: 2, MinNeighbors: 12, Seed: 1, LabelOutliers: true, LabelFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, relabel, len(ts))
	if len(relabel.Outliers) >= len(strict.Outliers) {
		t.Fatalf("LabelOutliers recovered nothing: %d -> %d", len(strict.Outliers), len(relabel.Outliers))
	}
	// Recovered points must land in the right group.
	for p, ci := range relabel.Assign {
		if ci < 0 || strict.Assign[p] >= 0 {
			continue
		}
		members := relabel.Clusters[ci]
		if truth[members[0]] != truth[p] {
			t.Fatalf("point %d relabeled into wrong group", p)
		}
	}
}

func TestLabelOutliersWithSampling(t *testing.T) {
	ts, _ := groupedData(3, 100, 35)
	res, err := Cluster(ts, Config{Theta: 0.3, K: 3, SampleSize: 120, MinNeighbors: 5,
		Seed: 2, LabelOutliers: true, LabelFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res, len(ts))
	if res.K() != 3 {
		t.Fatalf("k = %d", res.K())
	}
}
