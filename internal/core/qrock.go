package core

import (
	"sort"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/similarity"
	"github.com/rockclust/rock/internal/unionfind"
)

// QRockConfig parameterizes the QROCK variant.
type QRockConfig struct {
	// Theta is the neighbor threshold, as in ROCK.
	Theta float64
	// MinClusterSize discards components smaller than this as outliers;
	// values below 1 keep everything.
	MinClusterSize int
	// Measure is the similarity; nil selects Jaccard.
	Measure similarity.Measure
	// Workers bounds parallelism in neighbor computation.
	Workers int
	// Seed drives the LSH hash family and recall sampler when
	// LSHNeighbors is set; it has no other effect (QROCK draws no sample).
	Seed int64
	// LSHNeighbors switches the neighbor phase to the approximate
	// MinHash/LSH pipeline (similarity.ComputeLSH). The component
	// structure then reflects the recovered edges; the run's quality
	// ledger lands in Stats.
	LSHNeighbors bool
	// LSHHashes and LSHBands tune the banding; zero means the
	// similarity package defaults.
	LSHHashes int
	LSHBands  int
}

// QRock implements the QROCK observation (a well-known follow-on
// simplification of ROCK): when the requested number of clusters is
// allowed to float, ROCK's merging — which joins any two clusters with a
// positive cross link — terminates exactly at the connected components of
// the θ-neighbor graph. QROCK therefore computes those components
// directly with a disjoint-set forest, skipping the link phase (even the
// sharded CSR builder) and heaps entirely. It serves as the A2 ablation:
// where component structure is enough, QROCK is dramatically cheaper;
// where cluster counts must be driven down to k, full ROCK's goodness
// ordering matters.
func QRock(ts []dataset.Transaction, cfg QRockConfig) (*Result, error) {
	rcfg := Config{Theta: cfg.Theta, K: 1, Measure: cfg.Measure, Workers: cfg.Workers}
	if err := rcfg.Validate(); err != nil {
		return nil, err
	}
	rcfg = rcfg.withDefaults()
	n := len(ts)
	res := &Result{Assign: make([]int, n), Stats: Stats{N: n, Sampled: n, FVal: rcfg.fval()}}
	for i := range res.Assign {
		res.Assign[i] = -1
	}
	if n == 0 {
		return res, nil
	}

	var nb *similarity.Neighbors
	if cfg.LSHNeighbors {
		nb = similarity.ComputeLSH(ts, cfg.Theta, similarity.LSHOptions{
			Hashes:  cfg.LSHHashes,
			Bands:   cfg.LSHBands,
			Seed:    cfg.Seed,
			Measure: rcfg.Measure,
			Workers: cfg.Workers,
		})
	} else {
		nb = similarity.ComputeIndexed(ts, cfg.Theta, similarity.Options{Measure: rcfg.Measure, Workers: cfg.Workers})
	}
	res.Stats.AvgNeighbors, res.Stats.MaxNeighbors, _ = nb.Stats()
	res.Stats.addLSH(nb.LSH)

	uf := unionfind.New(n)
	for i := 0; i < n; i++ {
		for _, j := range nb.Lists[i] {
			uf.Union(i, int(j))
		}
	}

	for _, comp := range uf.Components() {
		if len(comp) < cfg.MinClusterSize {
			res.Outliers = append(res.Outliers, comp...)
			continue
		}
		ci := len(res.Clusters)
		res.Clusters = append(res.Clusters, comp)
		for _, p := range comp {
			res.Assign[p] = ci
		}
	}
	res.Stats.ClustersFound = len(res.Clusters)
	sort.Ints(res.Outliers)
	return res, nil
}
