package core

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

// tsWithItems builds a canonical transaction from raw item ids.
func tsWithItems(items ...int) dataset.Transaction {
	ds := make([]dataset.Item, len(items))
	for i, it := range items {
		ds[i] = dataset.Item(it)
	}
	return dataset.NewTransaction(ds...)
}

// Labeling properties, checked brute-force against the production
// labeler (indexed where eligible, sharded across a few worker counts):
//
//   - the winning cluster maximizes N_i / (|L_i|+1)^f, ties toward the
//     smaller cluster index;
//   - a candidate with no θ-neighbor in any L_i is always assigned -1;
//   - a candidate with at least one θ-neighbor is never assigned -1.
func TestLabelArgmaxProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		n := 40 + r.Intn(120)
		ts := randomTransactionsCore(r, n, 1+r.Intn(7), 5+r.Intn(20))
		k := 1 + r.Intn(5)
		sets := make([][]int, k)
		next := 0
		for i := range sets {
			sz := 1 + r.Intn(8)
			for j := 0; j < sz && next < n/2; j++ {
				sets[i] = append(sets[i], next)
				next++
			}
			if len(sets[i]) == 0 {
				sets[i] = append(sets[i], next%n)
			}
		}
		candidates := make([]int, 0, n-n/2)
		for p := n / 2; p < n; p++ {
			candidates = append(candidates, p)
		}
		theta := 0.05 + 0.9*r.Float64()
		f := MarketBasketF(theta)
		m := labelOracleMeasures[int(seed)%len(labelOracleMeasures)]

		got := newLabeler(ts, sets, theta, f, m.fn).run(candidates, 1+int(seed)%4, -1)
		for i, p := range candidates {
			// Brute-force scores straight from the definition.
			best, bestScore := -1, 0.0
			for si, li := range sets {
				nn := 0
				for _, q := range li {
					if m.fn(ts[p], ts[q]) >= theta {
						nn++
					}
				}
				if nn == 0 {
					continue
				}
				score := float64(nn) / math.Pow(float64(len(li)+1), f)
				if best == -1 || score > bestScore {
					best, bestScore = si, score
				}
			}
			if got[i] != best {
				t.Fatalf("seed=%d candidate %d (measure=%s θ=%.3f): labeled %d, brute-force argmax %d",
					seed, p, m.name, theta, got[i], best)
			}
			if best >= 0 {
				// Maximality + tie-break: no set may strictly beat the
				// winner, and no smaller-indexed set may tie it.
				for si, li := range sets {
					nn := 0
					for _, q := range li {
						if m.fn(ts[p], ts[q]) >= theta {
							nn++
						}
					}
					if nn == 0 {
						continue
					}
					score := float64(nn) / math.Pow(float64(len(li)+1), f)
					if score > bestScore || (score == bestScore && si < best) {
						t.Fatalf("seed=%d candidate %d: set %d (score %g) beats winner %d (score %g)",
							seed, p, si, score, best, bestScore)
					}
				}
			}
		}
	}
}

// A sampled Cluster run must route every unlabeled candidate to Outliers
// and never cluster a candidate with no θ-neighbor in any L_i: outliers
// of the labeling phase are exactly the no-neighbor candidates of the
// final subsets. Verified through the Stats ledger (LabelCandidates ==
// Labeled + Unlabeled) plus membership reconciliation.
func TestLabelNoNeighborIsOutlier(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ts := randomTransactionsCore(r, 300, 5, 18)
	// A few guaranteed-isolated candidates: items far outside every other
	// transaction's vocabulary, so no L_i can contain a θ-neighbor.
	for _, p := range []int{290, 295, 299} {
		ts[p] = tsWithItems(1000+p, 1001+p, 1002+p)
	}
	res, err := Cluster(ts, Config{Theta: 0.4, K: 3, SampleSize: 150, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LabelCandidates != res.Stats.Labeled+res.Stats.Unlabeled {
		t.Fatalf("ledger: candidates %d != labeled %d + unlabeled %d",
			res.Stats.LabelCandidates, res.Stats.Labeled, res.Stats.Unlabeled)
	}
	inSample := make(map[int]bool)
	for _, p := range res.SampleIdx {
		inSample[p] = true
	}
	outlier := make(map[int]bool)
	for _, p := range res.Outliers {
		outlier[p] = true
	}
	for _, p := range []int{290, 295, 299} {
		if inSample[p] {
			continue // clustered as a sample member is out of labeling's scope
		}
		if !outlier[p] {
			t.Fatalf("isolated candidate %d (no possible θ-neighbor) was labeled into cluster %d", p, res.Assign[p])
		}
	}
}

// Labeling must be a no-op when no sample is drawn (SampleSize ≥ n or 0)
// and LabelOutliers is off: zero candidates, zero labeled/unlabeled, and
// the labeling knobs (LabelFraction, MaxLabelPoints, LabelSerialBelow)
// must not perturb a single output byte.
func TestLabelNoopWithoutSampling(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	ts := randomTransactionsCore(r, 150, 6, 20)
	for _, sampleSize := range []int{0, 150, 400} {
		base := Config{Theta: 0.45, K: 4, SampleSize: sampleSize, Seed: 31}
		ref, err := Cluster(ts, base)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Stats.LabelCandidates != 0 || ref.Stats.Labeled != 0 || ref.Stats.Unlabeled != 0 {
			t.Fatalf("SampleSize=%d: labeling ran without a sample: %+v", sampleSize, ref.Stats)
		}
		var refBuf bytes.Buffer
		if err := WriteResult(&refBuf, ref); err != nil {
			t.Fatal(err)
		}
		perturbed := base
		perturbed.LabelFraction = 0.9
		perturbed.MaxLabelPoints = 3
		perturbed.LabelSerialBelow = -1
		res, err := Cluster(ts, perturbed)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteResult(&buf, res); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), refBuf.Bytes()) {
			t.Fatalf("SampleSize=%d: labeling knobs changed output bytes despite no candidates", sampleSize)
		}
	}
}

// Labeling zero candidates must be a cheap no-op on every path —
// regression test: forced sharding (negative serialBelow) used to cap
// the workers to zero and panic the coordinator's WaitGroup.
func TestLabelEmptyCandidates(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ts := randomTransactionsCore(r, 20, 5, 12)
	sets := [][]int{{0, 1}, {2}}
	for _, workers := range []int{1, 4} {
		for _, serialBelow := range []int{0, -1} {
			got := newLabeler(ts, sets, 0.5, 0.5, nil).run(nil, workers, serialBelow)
			if len(got) != 0 {
				t.Fatalf("workers=%d serialBelow=%d: %v assignments for zero candidates", workers, serialBelow, got)
			}
		}
	}
}

// A candidate transaction carrying items no labeled point has — above
// the postings range or negative (invalid per the data model, but
// tolerated by the pairwise reference) — must label identically on the
// indexed path, not panic. Regression test for the negative-item guard.
func TestLabelIndexedOutOfRangeItems(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	ts := randomTransactionsCore(r, 30, 5, 10)
	ts = append(ts, dataset.Transaction{-3, 2, 5, 9000}) // non-canonical but reference-tolerated
	sets := [][]int{{0, 1, 2}, {3, 4, 5}}
	candidates := []int{20, 25, 30}
	theta, f := 0.3, 0.5
	ref := labelCandidatesReference(ts, candidates, sets, theta, f, nil)
	for _, workers := range []int{1, 4} {
		got := newLabeler(ts, sets, theta, f, nil).run(candidates, workers, -1)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: got %v, ref %v", workers, got, ref)
		}
	}
}
