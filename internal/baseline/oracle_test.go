package baseline

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

// naiveCentroidCluster is an independent oracle for the Lance–Williams
// centroid path: it keeps explicit mean vectors, recomputes every
// centroid distance from scratch each step, and merges the globally
// closest pair with the same tie-break (smallest indices). The
// Lance–Williams recurrence is an algebraic identity for squared
// centroid distances, so the two implementations must agree bit-for-bit
// up to floating-point noise.
func naiveCentroidCluster(ts []dataset.Transaction, k int) [][]int {
	n := len(ts)
	dim := 0
	for _, t := range ts {
		for _, it := range t {
			if int(it) >= dim {
				dim = int(it) + 1
			}
		}
	}
	type blob struct {
		sum     []float64
		members []int
	}
	blobs := make([]*blob, n)
	for i, t := range ts {
		b := &blob{sum: make([]float64, dim), members: []int{i}}
		for _, it := range t {
			b.sum[it] = 1
		}
		blobs[i] = b
	}
	dist := func(a, b *blob) float64 {
		na, nb := float64(len(a.members)), float64(len(b.members))
		d := 0.0
		for x := 0; x < dim; x++ {
			diff := a.sum[x]/na - b.sum[x]/nb
			d += diff * diff
		}
		return d
	}
	active := n
	for active > k {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if blobs[i] == nil {
				continue
			}
			for j := i + 1; j < n; j++ {
				if blobs[j] == nil {
					continue
				}
				if d := dist(blobs[i], blobs[j]); d < best-1e-12 {
					bi, bj, best = i, j, d
				}
			}
		}
		if bi < 0 {
			break
		}
		a, b := blobs[bi], blobs[bj]
		for x := 0; x < dim; x++ {
			a.sum[x] += b.sum[x]
		}
		a.members = append(a.members, b.members...)
		blobs[bj] = nil
		active--
	}
	var out [][]int
	for _, b := range blobs {
		if b == nil {
			continue
		}
		ms := append([]int(nil), b.members...)
		sortInts(ms)
		out = append(out, ms)
	}
	sortGroups(out)
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortGroups(g [][]int) {
	for i := 1; i < len(g); i++ {
		for j := i; j > 0 && g[j][0] < g[j-1][0]; j-- {
			g[j], g[j-1] = g[j-1], g[j]
		}
	}
}

func TestHierarchicalAgainstExplicitCentroidOracle(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for trial := 0; trial < 8; trial++ {
		n := 8 + r.Intn(16)
		ts := make([]dataset.Transaction, n)
		for i := range ts {
			items := make([]dataset.Item, 3+r.Intn(4))
			for k := range items {
				items[k] = dataset.Item(r.Intn(25))
			}
			ts[i] = dataset.NewTransaction(items...)
		}
		k := 2 + r.Intn(3)
		got, err := Hierarchical(ts, HierarchicalConfig{K: k, Linkage: Centroid})
		if err != nil {
			t.Fatal(err)
		}
		want := naiveCentroidCluster(ts, k)
		if !reflect.DeepEqual(got.Clusters, want) {
			t.Fatalf("trial %d (n=%d k=%d):\nLance-Williams: %v\noracle:         %v", trial, n, k, got.Clusters, want)
		}
	}
}

// Average linkage has its own identity: d(A∪B, C) is the size-weighted
// mean of d(A,C), d(B,C) — verify against explicit all-pairs averaging.
func TestAverageLinkageAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	n := 14
	ts := make([]dataset.Transaction, n)
	for i := range ts {
		items := make([]dataset.Item, 3+r.Intn(3))
		for k := range items {
			items[k] = dataset.Item(r.Intn(20))
		}
		ts[i] = dataset.NewTransaction(items...)
	}
	got, err := Hierarchical(ts, HierarchicalConfig{K: 3, Linkage: Average})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveAverageCluster(ts, 3)
	if !reflect.DeepEqual(got.Clusters, want) {
		t.Fatalf("average linkage:\nLance-Williams: %v\noracle:         %v", got.Clusters, want)
	}
}

func naiveAverageCluster(ts []dataset.Transaction, k int) [][]int {
	n := len(ts)
	d0 := make([][]float64, n)
	for i := range d0 {
		d0[i] = make([]float64, n)
		for j := range d0[i] {
			d0[i][j] = float64(len(ts[i]) + len(ts[j]) - 2*ts[i].IntersectSize(ts[j]))
		}
	}
	groups := make([][]int, n)
	for i := range groups {
		groups[i] = []int{i}
	}
	dist := func(a, b []int) float64 {
		s := 0.0
		for _, x := range a {
			for _, y := range b {
				s += d0[x][y]
			}
		}
		return s / float64(len(a)*len(b))
	}
	for len(activeGroups(groups)) > k {
		act := activeGroups(groups)
		bi, bj, best := -1, -1, math.Inf(1)
		for ai := 0; ai < len(act); ai++ {
			for aj := ai + 1; aj < len(act); aj++ {
				if d := dist(groups[act[ai]], groups[act[aj]]); d < best-1e-12 {
					bi, bj, best = act[ai], act[aj], d
				}
			}
		}
		if bi < 0 {
			break
		}
		groups[bi] = append(groups[bi], groups[bj]...)
		groups[bj] = nil
	}
	var out [][]int
	for _, g := range groups {
		if g == nil {
			continue
		}
		ms := append([]int(nil), g...)
		sortInts(ms)
		out = append(out, ms)
	}
	sortGroups(out)
	return out
}

func activeGroups(groups [][]int) []int {
	var out []int
	for i, g := range groups {
		if g != nil {
			out = append(out, i)
		}
	}
	return out
}
