package baseline

import (
	"reflect"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/synth"
)

func TestKModesTwoGroups(t *testing.T) {
	records := []dataset.Record{
		{"a", "x", "1"}, {"a", "x", "2"}, {"a", "x", "1"},
		{"b", "y", "9"}, {"b", "y", "8"}, {"b", "y", "9"},
	}
	res, err := KModes(records, KModesConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2}, {3, 4, 5}}
	if !reflect.DeepEqual(res.Clusters, want) {
		t.Fatalf("clusters = %v", res.Clusters)
	}
	// Modes are the attribute-wise majorities.
	if res.Modes[0][0] != "a" || res.Modes[0][1] != "x" || res.Modes[0][2] != "1" {
		t.Fatalf("mode 0 = %v", res.Modes[0])
	}
	// Cost: each cluster has one record off by one attribute.
	if res.Cost != 2 {
		t.Fatalf("cost = %d, want 2", res.Cost)
	}
}

func TestKModesFirstKDistinctInit(t *testing.T) {
	records := []dataset.Record{
		{"a", "x"}, {"a", "x"}, {"b", "y"}, {"b", "y"},
	}
	res, err := KModes(records, KModesConfig{K: 2, FirstKDistinct: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %v", res.Clusters)
	}
}

func TestKModesDeterministicPerSeed(t *testing.T) {
	d := synth.Labeled(synth.LabeledConfig{Records: 200, Classes: 4, Seed: 9})
	records := RecordsOf(d)
	a, _ := KModes(records, KModesConfig{K: 4, Seed: 5})
	b, _ := KModes(records, KModesConfig{K: 4, Seed: 5})
	if !reflect.DeepEqual(a.Clusters, b.Clusters) || a.Cost != b.Cost {
		t.Fatal("same seed produced different k-modes runs")
	}
}

func TestKModesRecoversSeparableClasses(t *testing.T) {
	d := synth.Labeled(synth.LabeledConfig{Records: 400, Classes: 4, Noise: 0.05, Seed: 11})
	records := RecordsOf(d)
	res, err := KModes(records, KModesConfig{K: 4, Seed: 3, Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Majority-class accuracy should be high on well-separated data.
	correct := 0
	for _, members := range res.Clusters {
		counts := map[string]int{}
		for _, p := range members {
			counts[d.Labels[p]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	if acc := float64(correct) / float64(len(records)); acc < 0.9 {
		t.Fatalf("k-modes accuracy %g < 0.9", acc)
	}
}

// The k-modes objective never increases across a full run: compare cost at
// convergence against the cost after a single iteration.
func TestKModesCostImproves(t *testing.T) {
	d := synth.Labeled(synth.LabeledConfig{Records: 300, Classes: 3, Noise: 0.2, Seed: 13})
	records := RecordsOf(d)
	one, _ := KModes(records, KModesConfig{K: 3, Seed: 2, MaxIter: 1})
	full, _ := KModes(records, KModesConfig{K: 3, Seed: 2})
	if full.Cost > one.Cost {
		t.Fatalf("cost rose from %d to %d", one.Cost, full.Cost)
	}
	if full.Iters < 1 {
		t.Fatal("no iterations recorded")
	}
}

func TestKModesEdges(t *testing.T) {
	if _, err := KModes(nil, KModesConfig{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	res, err := KModes(nil, KModesConfig{K: 2})
	if err != nil || len(res.Clusters) != 0 {
		t.Fatal("empty input mishandled")
	}
	// K > n clamps.
	res, err = KModes([]dataset.Record{{"a"}, {"b"}}, KModesConfig{K: 5, Seed: 1})
	if err != nil || len(res.Clusters) != 2 {
		t.Fatalf("k>n mishandled: %v", res.Clusters)
	}
	// Ragged records are padded with empty values.
	res, err = KModes([]dataset.Record{{"a", "x"}, {"a"}}, KModesConfig{K: 1, Seed: 1})
	if err != nil || len(res.Clusters) != 1 {
		t.Fatal("ragged records mishandled")
	}
}

func TestRecordsOfRoundTrip(t *testing.T) {
	attrs := []string{"p", "q"}
	in := []dataset.Record{{"1", "2"}, {"3", dataset.Missing}}
	d := dataset.EncodeRecords(attrs, in, nil, dataset.EncodeOptions{})
	out := RecordsOf(d)
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("RecordsOf = %v, want %v", out, in)
	}
}
