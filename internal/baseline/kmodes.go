package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/rockclust/rock/internal/dataset"
)

// KModesConfig parameterizes KModes.
type KModesConfig struct {
	K       int
	MaxIter int // default 100
	Seed    int64
	// FirstKDistinct seeds the modes with the first K distinct records in
	// input order (the initialization used when comparing against ROCK's
	// published numbers); otherwise K random records are picked.
	FirstKDistinct bool
	// Restarts runs the algorithm this many times with seeds Seed,
	// Seed+1, ... and keeps the lowest-cost clustering, the standard
	// mitigation for k-modes' sensitivity to initialization. Default 1;
	// ignored with FirstKDistinct (which is deterministic).
	Restarts int
}

// KModesResult is a k-modes clustering with its final cost (total
// mismatch distance of records to their modes).
type KModesResult struct {
	Result
	Modes []dataset.Record
	Cost  int
	Iters int
}

// KModes implements Huang's k-modes algorithm: k-means over categorical
// records with the simple-matching dissimilarity (count of mismatched
// attributes) and cluster "modes" (attribute-wise most frequent values)
// in place of means. Assignment ties break toward the lower cluster
// index; mode ties toward the lexicographically smaller value — the run
// is deterministic given the seed.
func KModes(records []dataset.Record, cfg KModesConfig) (*KModesResult, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("baseline: k-modes k = %d, need at least 1", cfg.K)
	}
	if cfg.Restarts > 1 && !cfg.FirstKDistinct {
		var best *KModesResult
		for r := 0; r < cfg.Restarts; r++ {
			c := cfg
			c.Restarts = 1
			c.Seed = cfg.Seed + int64(r)
			res, err := KModes(records, c)
			if err != nil {
				return nil, err
			}
			if best == nil || res.Cost < best.Cost {
				best = res
			}
		}
		return best, nil
	}
	n := len(records)
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	res := &KModesResult{Result: Result{Assign: make([]int, n)}}
	if n == 0 {
		return res, nil
	}
	if cfg.K > n {
		cfg.K = n
	}
	width := 0
	for _, r := range records {
		if len(r) > width {
			width = len(r)
		}
	}

	// Initialize modes.
	modes := initModes(records, cfg, width)
	k := len(modes)

	assign := res.Assign
	for i := range assign {
		assign[i] = -1
	}
	var iters int
	for iters = 0; iters < cfg.MaxIter; iters++ {
		changed := false
		for i, r := range records {
			best, bestD := 0, width+1
			for c := 0; c < k; c++ {
				if d := mismatch(r, modes[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		modes = updateModes(records, assign, k, width, modes)
	}

	res.Iters = iters
	res.Modes = modes
	for i, r := range records {
		res.Cost += mismatch(r, modes[assign[i]])
	}
	// Compact clusters (drop empties) and re-number deterministically,
	// keeping modes aligned with the renumbered clusters.
	groups := make([][]int, k)
	for i, c := range assign {
		groups[c] = append(groups[c], i)
	}
	type pair struct {
		members []int
		mode    dataset.Record
	}
	var pairs []pair
	for c, g := range groups {
		if len(g) > 0 {
			pairs = append(pairs, pair{g, modes[c]})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].members[0] < pairs[b].members[0] })
	res.Modes = res.Modes[:0]
	for ci, p := range pairs {
		res.Clusters = append(res.Clusters, p.members)
		res.Modes = append(res.Modes, p.mode)
		for _, pt := range p.members {
			assign[pt] = ci
		}
	}
	return res, nil
}

// mismatch is the simple-matching dissimilarity: the number of attributes
// on which the record and mode differ. Missing values ("?") compare like
// ordinary values, following Huang's treatment of missing data as a
// category of its own.
func mismatch(r, m dataset.Record) int {
	d := 0
	for a := 0; a < len(m); a++ {
		var v string
		if a < len(r) {
			v = r[a]
		}
		if v != m[a] {
			d++
		}
	}
	return d
}

func initModes(records []dataset.Record, cfg KModesConfig, width int) []dataset.Record {
	var picks []int
	if cfg.FirstKDistinct {
		seen := map[string]bool{}
		for i, r := range records {
			key := fmt.Sprint([]string(r))
			if !seen[key] {
				seen[key] = true
				picks = append(picks, i)
				if len(picks) == cfg.K {
					break
				}
			}
		}
	} else {
		rng := rand.New(rand.NewSource(cfg.Seed))
		perm := rng.Perm(len(records))
		picks = perm[:cfg.K]
		sort.Ints(picks)
	}
	modes := make([]dataset.Record, len(picks))
	for c, i := range picks {
		m := make(dataset.Record, width)
		copy(m, records[i])
		modes[c] = m
	}
	return modes
}

// updateModes recomputes each cluster's attribute-wise most frequent
// values. Empty clusters keep their previous mode.
func updateModes(records []dataset.Record, assign []int, k, width int, prev []dataset.Record) []dataset.Record {
	counts := make([]map[string]int, k*width)
	sizes := make([]int, k)
	for i := range counts {
		counts[i] = map[string]int{}
	}
	for i, r := range records {
		c := assign[i]
		sizes[c]++
		for a := 0; a < width; a++ {
			var v string
			if a < len(r) {
				v = r[a]
			}
			counts[c*width+a][v]++
		}
	}
	modes := make([]dataset.Record, k)
	for c := 0; c < k; c++ {
		if sizes[c] == 0 {
			modes[c] = prev[c]
			continue
		}
		m := make(dataset.Record, width)
		for a := 0; a < width; a++ {
			bestV, bestN := "", -1
			cnt := counts[c*width+a]
			keys := make([]string, 0, len(cnt))
			for v := range cnt {
				keys = append(keys, v)
			}
			sort.Strings(keys)
			for _, v := range keys {
				if cnt[v] > bestN {
					bestV, bestN = v, cnt[v]
				}
			}
			m[a] = bestV
		}
		modes[c] = m
	}
	return modes
}

// RecordsOf reconstructs the categorical records of a dataset built with
// dataset.EncodeRecords, for feeding record-based baselines like k-modes.
func RecordsOf(d *dataset.Dataset) []dataset.Record {
	records := make([]dataset.Record, d.Len())
	for i, t := range d.Trans {
		records[i] = dataset.DecodeRecord(d, t)
	}
	return records
}
