package baseline

import (
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

// The zoo conformance suite (internal/zoo) hammers the baselines through
// their adapters; these tests pin the same hostile shapes at the native
// APIs, where the adapters' clamping cannot paper over a panic.

func TestKModesOverKInitVariants(t *testing.T) {
	records := []dataset.Record{{"a", "x"}, {"b", "y"}, {"a", "x"}}

	// k > n with FirstKDistinct: only two distinct records exist, so the
	// clamp to n and the distinct scan must both engage without panicking.
	res, err := KModes(records, KModesConfig{K: 7, FirstKDistinct: true})
	if err != nil {
		t.Fatalf("FirstKDistinct k>n: %v", err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("FirstKDistinct k>n found %d clusters, want 2 (two distinct records)", len(res.Clusters))
	}

	// k > n with restarts: every restart re-enters the clamp path.
	res, err = KModes(records, KModesConfig{K: 7, Seed: 3, Restarts: 4})
	if err != nil {
		t.Fatalf("Restarts k>n: %v", err)
	}
	if len(res.Clusters) < 1 || len(res.Clusters) > 3 {
		t.Fatalf("Restarts k>n found %d clusters", len(res.Clusters))
	}
	if res.Cost != 0 {
		t.Fatalf("k>=distinct records must reach cost 0, got %d", res.Cost)
	}

	// Restarts over an empty input terminates immediately.
	if _, err := KModes(nil, KModesConfig{K: 2, Restarts: 3}); err != nil {
		t.Fatalf("Restarts on empty input: %v", err)
	}
}

func TestHierarchicalSingleTransaction(t *testing.T) {
	ts := []dataset.Transaction{{1, 2, 3}}
	for _, k := range []int{1, 3} {
		res, err := Hierarchical(ts, HierarchicalConfig{K: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(res.Clusters) != 1 || res.Assign[0] != 0 {
			t.Fatalf("k=%d: clusters=%v assign=%v, want one singleton", k, res.Clusters, res.Assign)
		}
	}
}

func TestHierarchicalAllIdentical(t *testing.T) {
	// Identical transactions are at pairwise distance 0: every merge is a
	// tie, which the index-order tie-break must resolve deterministically.
	ts := make([]dataset.Transaction, 6)
	for i := range ts {
		ts[i] = dataset.Transaction{1, 2}
	}
	for _, linkage := range []Linkage{Centroid, Average, Single, Complete} {
		res, err := Hierarchical(ts, HierarchicalConfig{K: 2, Linkage: linkage})
		if err != nil {
			t.Fatalf("%v: %v", linkage, err)
		}
		if len(res.Clusters) != 2 {
			t.Fatalf("%v: %d clusters, want 2", linkage, len(res.Clusters))
		}
		again, _ := Hierarchical(ts, HierarchicalConfig{K: 2, Linkage: linkage})
		for p := range res.Assign {
			if res.Assign[p] != again.Assign[p] {
				t.Fatalf("%v: tie-breaking not deterministic at point %d", linkage, p)
			}
		}
	}
}

func TestHierarchicalSampledEmptySample(t *testing.T) {
	// An empty sample clusters nothing and leaves no centroids to label
	// the out-of-sample points against; this used to index Clusters[-1]
	// and panic, now it is a clean error. An empty input stays fine.
	ts := []dataset.Transaction{{1}, {2}}
	if _, err := HierarchicalSampled(ts, nil, HierarchicalConfig{K: 2}); err == nil {
		t.Fatal("empty sample over non-empty input accepted")
	}
	res, err := HierarchicalSampled(nil, nil, HierarchicalConfig{K: 2})
	if err != nil || len(res.Clusters) != 0 {
		t.Fatalf("empty input mishandled: %v %v", err, res)
	}
}
