// Package baseline implements the comparison algorithms of the paper's
// evaluation: the traditional centroid-based agglomerative hierarchical
// clustering that ROCK is measured against (records embedded as binary
// vectors, clusters merged by centroid distance), together with the
// average/single/complete linkage variants, nearest-centroid labeling for
// out-of-sample points, and the k-modes algorithm of Huang (1998) as an
// era-standard categorical baseline.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"github.com/rockclust/rock/internal/dataset"
)

// Linkage selects the cluster-distance update rule.
type Linkage int

const (
	// Centroid merges the pair with closest centroids in the binary
	// embedding — the "traditional hierarchical algorithm" of the paper's
	// experiments.
	Centroid Linkage = iota
	// Average is UPGMA: mean pairwise distance.
	Average
	// Single is nearest-neighbor linkage.
	Single
	// Complete is farthest-neighbor linkage.
	Complete
)

// String names the linkage for reports.
func (l Linkage) String() string {
	switch l {
	case Centroid:
		return "centroid"
	case Average:
		return "average"
	case Single:
		return "single"
	case Complete:
		return "complete"
	}
	return fmt.Sprintf("linkage(%d)", int(l))
}

// Result is a flat clustering produced by a baseline algorithm.
type Result struct {
	Assign   []int   // cluster per point; never -1 for baselines
	Clusters [][]int // members ascending, clusters ordered by first member
}

// HierarchicalConfig parameterizes Hierarchical.
type HierarchicalConfig struct {
	K       int
	Linkage Linkage // default Centroid
}

// Hierarchical runs agglomerative clustering over transactions embedded
// as binary item vectors, merging by the configured linkage until K
// clusters remain. Squared Euclidean distances between binary vectors are
// d²(i,j) = |Ti| + |Tj| − 2|Ti ∩ Tj|; merges update distances with the
// Lance–Williams recurrences, so centroids are never materialized. Ties
// break toward smaller indices for determinism. O(n²) space, roughly
// O(n²·k̄) time — intended for the sample sizes the paper's comparator ran
// at.
func Hierarchical(ts []dataset.Transaction, cfg HierarchicalConfig) (*Result, error) {
	n := len(ts)
	if cfg.K < 1 {
		return nil, fmt.Errorf("baseline: k = %d, need at least 1", cfg.K)
	}
	res := &Result{Assign: make([]int, n)}
	if n == 0 {
		return res, nil
	}

	// Distance matrix (squared Euclidean) and cluster sizes.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := float64(len(ts[i]) + len(ts[j]) - 2*ts[i].IntersectSize(ts[j]))
			dist[i][j], dist[j][i] = d, d
		}
	}

	active := make([]bool, n)
	size := make([]int, n)
	members := make([][]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
		members[i] = []int{i}
	}

	nearest := make([]int, n)
	recomputeNearest := func(i int) {
		nearest[i] = -1
		best := math.Inf(1)
		for j := 0; j < n; j++ {
			if j == i || !active[j] {
				continue
			}
			if dist[i][j] < best || (dist[i][j] == best && j < nearest[i]) {
				best = dist[i][j]
				nearest[i] = j
			}
		}
	}
	for i := 0; i < n; i++ {
		recomputeNearest(i)
	}

	remaining := n
	for remaining > cfg.K {
		// Global closest pair via the nearest-neighbor cache.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] || nearest[i] < 0 {
				continue
			}
			d := dist[i][nearest[i]]
			if d < best || (d == best && (i < bi || (i == bi && nearest[i] < bj))) {
				bi, bj, best = i, nearest[i], d
			}
		}
		if bi < 0 {
			break // fewer than two active clusters
		}
		if bj < bi {
			bi, bj = bj, bi
		}

		// Lance–Williams update of row bi (the merged cluster).
		ni, nj := float64(size[bi]), float64(size[bj])
		dij := dist[bi][bj]
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			dik, djk := dist[bi][k], dist[bj][k]
			var d float64
			switch cfg.Linkage {
			case Centroid:
				d = (ni*dik+nj*djk)/(ni+nj) - ni*nj*dij/((ni+nj)*(ni+nj))
			case Average:
				d = (ni*dik + nj*djk) / (ni + nj)
			case Single:
				d = math.Min(dik, djk)
			case Complete:
				d = math.Max(dik, djk)
			}
			dist[bi][k], dist[k][bi] = d, d
		}
		active[bj] = false
		size[bi] += size[bj]
		members[bi] = append(members[bi], members[bj]...)
		members[bj] = nil
		remaining--

		// Refresh nearest caches invalidated by the merge.
		recomputeNearest(bi)
		for i := 0; i < n; i++ {
			if !active[i] || i == bi {
				continue
			}
			if nearest[i] == bi || nearest[i] == bj {
				recomputeNearest(i)
			} else if dist[i][bi] < dist[i][nearest[i]] ||
				(dist[i][bi] == dist[i][nearest[i]] && bi < nearest[i]) {
				nearest[i] = bi
			}
		}
	}

	// Emit clusters ordered by smallest member.
	for i := 0; i < n; i++ {
		if active[i] {
			sort.Ints(members[i])
			res.Clusters = append(res.Clusters, members[i])
		}
	}
	sort.Slice(res.Clusters, func(a, b int) bool { return res.Clusters[a][0] < res.Clusters[b][0] })
	for ci, m := range res.Clusters {
		for _, p := range m {
			res.Assign[p] = ci
		}
	}
	return res, nil
}

// sparseCentroid is the mean binary vector of a cluster, stored sparsely.
type sparseCentroid struct {
	weights map[dataset.Item]float64
	sqNorm  float64
}

// Centroids materializes cluster centroids in the binary embedding, for
// nearest-centroid labeling of out-of-sample points.
func Centroids(ts []dataset.Transaction, clusters [][]int) []sparseCentroid {
	out := make([]sparseCentroid, len(clusters))
	for ci, members := range clusters {
		w := make(map[dataset.Item]float64)
		for _, p := range members {
			for _, it := range ts[p] {
				w[it]++
			}
		}
		inv := 1 / float64(len(members))
		var sq float64
		for it := range w {
			w[it] *= inv
			sq += w[it] * w[it]
		}
		out[ci] = sparseCentroid{weights: w, sqNorm: sq}
	}
	return out
}

// NearestCentroid returns the index of the centroid closest (squared
// Euclidean) to transaction t, breaking ties toward the lower index.
func NearestCentroid(t dataset.Transaction, cents []sparseCentroid) int {
	best, bestD := -1, math.Inf(1)
	for ci, c := range cents {
		dot := 0.0
		for _, it := range t {
			dot += c.weights[it]
		}
		d := float64(len(t)) - 2*dot + c.sqNorm
		if d < bestD {
			best, bestD = ci, d
		}
	}
	return best
}

// HierarchicalSampled clusters a prefix-free uniform sample of ts and
// assigns the remaining points to the nearest centroid — the scalable
// variant used when the comparator cannot run on the full dataset.
// sampleIdx must be ascending and non-empty when ts is non-empty: with
// no sample there are no centroids to label the rest against.
func HierarchicalSampled(ts []dataset.Transaction, sampleIdx []int, cfg HierarchicalConfig) (*Result, error) {
	if len(sampleIdx) == 0 && len(ts) > 0 {
		return nil, fmt.Errorf("baseline: empty sample for %d transactions", len(ts))
	}
	local := make([]dataset.Transaction, len(sampleIdx))
	for i, j := range sampleIdx {
		local[i] = ts[j]
	}
	sub, err := Hierarchical(local, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Assign: make([]int, len(ts)), Clusters: make([][]int, len(sub.Clusters))}
	for ci, m := range sub.Clusters {
		for _, l := range m {
			res.Clusters[ci] = append(res.Clusters[ci], sampleIdx[l])
		}
	}
	cents := Centroids(ts, res.Clusters)
	inSample := make(map[int]bool, len(sampleIdx))
	for _, j := range sampleIdx {
		inSample[j] = true
	}
	for p := range ts {
		if inSample[p] {
			continue
		}
		ci := NearestCentroid(ts[p], cents)
		res.Clusters[ci] = append(res.Clusters[ci], p)
	}
	for ci := range res.Clusters {
		sort.Ints(res.Clusters[ci])
		for _, p := range res.Clusters[ci] {
			res.Assign[p] = ci
		}
	}
	return res, nil
}
