package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

func tr(items ...dataset.Item) dataset.Transaction { return dataset.NewTransaction(items...) }

func TestHierarchicalTwoBlobs(t *testing.T) {
	// Two tight groups in the binary embedding.
	ts := []dataset.Transaction{
		tr(1, 2, 3), tr(1, 2, 3, 4), tr(1, 2, 4),
		tr(10, 11, 12), tr(10, 11, 13), tr(10, 12, 13),
	}
	for _, link := range []Linkage{Centroid, Average, Single, Complete} {
		res, err := Hierarchical(ts, HierarchicalConfig{K: 2, Linkage: link})
		if err != nil {
			t.Fatal(err)
		}
		want := [][]int{{0, 1, 2}, {3, 4, 5}}
		if !reflect.DeepEqual(res.Clusters, want) {
			t.Fatalf("%v linkage: clusters = %v", link, res.Clusters)
		}
		for p, c := range res.Assign {
			if c != p/3 {
				t.Fatalf("%v linkage: Assign = %v", link, res.Assign)
			}
		}
	}
}

// The paper's motivating failure case: with transactions from two logical
// clusters whose binary vectors are close in Euclidean terms, centroid
// merging chains across the boundary. ROCK's links fix this; here we only
// pin down that the baseline behaves as the baseline (it splits the data
// somehow and is deterministic).
func TestHierarchicalDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var ts []dataset.Transaction
	for i := 0; i < 40; i++ {
		items := make([]dataset.Item, 5)
		for k := range items {
			items[k] = dataset.Item(r.Intn(30))
		}
		ts = append(ts, dataset.NewTransaction(items...))
	}
	a, err := Hierarchical(ts, HierarchicalConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		b, _ := Hierarchical(ts, HierarchicalConfig{K: 4})
		if !reflect.DeepEqual(a.Clusters, b.Clusters) {
			t.Fatal("nondeterministic hierarchical clustering")
		}
	}
	if len(a.Clusters) != 4 {
		t.Fatalf("k = %d", len(a.Clusters))
	}
	// Partition check.
	seen := map[int]bool{}
	for _, c := range a.Clusters {
		for _, p := range c {
			if seen[p] {
				t.Fatal("duplicate point")
			}
			seen[p] = true
		}
	}
	if len(seen) != len(ts) {
		t.Fatal("not a partition")
	}
}

func TestHierarchicalValidationAndEdges(t *testing.T) {
	if _, err := Hierarchical(nil, HierarchicalConfig{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	res, err := Hierarchical(nil, HierarchicalConfig{K: 3})
	if err != nil || len(res.Clusters) != 0 {
		t.Fatal("empty input mishandled")
	}
	res, err = Hierarchical([]dataset.Transaction{tr(1)}, HierarchicalConfig{K: 5})
	if err != nil || len(res.Clusters) != 1 {
		t.Fatal("k larger than n mishandled")
	}
}

func TestCentroidsAndNearest(t *testing.T) {
	ts := []dataset.Transaction{tr(1, 2), tr(1, 2, 3), tr(10, 11), tr(10, 12)}
	cents := Centroids(ts, [][]int{{0, 1}, {2, 3}})
	if got := NearestCentroid(tr(1, 2, 3), cents); got != 0 {
		t.Fatalf("NearestCentroid = %d, want 0", got)
	}
	if got := NearestCentroid(tr(10, 11, 12), cents); got != 1 {
		t.Fatalf("NearestCentroid = %d, want 1", got)
	}
	// Centroid weights: item 1 appears in both members of cluster 0.
	if w := cents[0].weights[dataset.Item(tr(1)[0])]; w != 1 {
		t.Fatalf("weight = %g, want 1", w)
	}
}

func TestHierarchicalSampled(t *testing.T) {
	// 30 points in two groups; cluster a 10-point sample, label the rest.
	var ts []dataset.Transaction
	for i := 0; i < 15; i++ {
		ts = append(ts, tr(1, 2, dataset.Item(3+i%3)))
	}
	for i := 0; i < 15; i++ {
		ts = append(ts, tr(20, 21, dataset.Item(22+i%3)))
	}
	sample := []int{0, 2, 4, 6, 8, 15, 17, 19, 21, 23}
	res, err := HierarchicalSampled(ts, sample, HierarchicalConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("k = %d", len(res.Clusters))
	}
	total := 0
	for ci, c := range res.Clusters {
		total += len(c)
		for _, p := range c {
			want := 0
			if p >= 15 {
				want = 1
			}
			if ci != want {
				t.Fatalf("point %d in cluster %d", p, ci)
			}
		}
	}
	if total != 30 {
		t.Fatalf("labeled %d of 30", total)
	}
}
