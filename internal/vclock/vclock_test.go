package vclock

import (
	"testing"
	"time"
)

// TestRealClock smokes the production clock: Now moves, AfterFunc fires.
func TestRealClock(t *testing.T) {
	c := Real()
	t0 := c.Now()
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
	if !c.Now().After(t0) {
		t.Fatal("real clock did not advance")
	}
}

// TestFakeOrdering proves timers fire in deadline order with creation
// order breaking ties, and only when Advance traverses their deadline.
func TestFakeOrdering(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var fired []int
	f.AfterFunc(30*time.Millisecond, func() { fired = append(fired, 3) })
	f.AfterFunc(10*time.Millisecond, func() { fired = append(fired, 1) })
	f.AfterFunc(10*time.Millisecond, func() { fired = append(fired, 2) }) // same deadline, later creation
	f.AfterFunc(50*time.Millisecond, func() { fired = append(fired, 4) })

	f.Advance(5 * time.Millisecond)
	if len(fired) != 0 {
		t.Fatalf("timers fired before their deadline: %v", fired)
	}
	f.Advance(25 * time.Millisecond) // now at 30ms: timers 1, 2, 3 due
	if want := []int{1, 2, 3}; len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if f.Pending() != 1 {
		t.Fatalf("pending %d, want 1", f.Pending())
	}
	f.Advance(20 * time.Millisecond)
	if len(fired) != 4 || fired[3] != 4 {
		t.Fatalf("fired %v, want trailing 4", fired)
	}
}

// TestFakeCallbackSeesDeadline proves a callback observes the clock at
// its own deadline, not the Advance target — timers scheduled from inside
// a callback land relative to the deadline and still fire in the same
// Advance when due.
func TestFakeCallbackSeesDeadline(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var at []time.Duration
	f.AfterFunc(10*time.Millisecond, func() {
		at = append(at, f.Now().Sub(time.Unix(0, 0)))
		f.AfterFunc(5*time.Millisecond, func() {
			at = append(at, f.Now().Sub(time.Unix(0, 0)))
		})
	})
	f.Advance(time.Hour)
	if len(at) != 2 || at[0] != 10*time.Millisecond || at[1] != 15*time.Millisecond {
		t.Fatalf("callback instants %v, want [10ms 15ms]", at)
	}
	if got := f.Now().Sub(time.Unix(0, 0)); got != time.Hour {
		t.Fatalf("clock at %v after Advance, want 1h", got)
	}
}

// TestFakeStop proves a stopped timer never fires and Stop reports the
// time.Timer contract (true once, false after firing or re-stopping).
func TestFakeStop(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	fired := false
	tm := f.AfterFunc(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	f.Advance(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if f.Pending() != 0 {
		t.Fatalf("pending %d after stop+advance", f.Pending())
	}

	tm2 := f.AfterFunc(time.Millisecond, func() {})
	f.Advance(time.Second)
	if tm2.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

// TestFakeZeroDelay proves a non-positive delay schedules at now and
// still fires only on the next Advance — never inline from AfterFunc,
// which would deadlock callers that schedule while holding a lock.
func TestFakeZeroDelay(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	fired := false
	f.AfterFunc(0, func() { fired = true })
	if fired {
		t.Fatal("zero-delay timer fired inline from AfterFunc")
	}
	f.Advance(0)
	if !fired {
		t.Fatal("zero-delay timer did not fire on Advance(0)")
	}
}
