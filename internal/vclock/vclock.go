// Package vclock abstracts the two time operations the serving and
// streaming stacks perform — reading the current instant and scheduling a
// callback — behind an injectable Clock, so that every timer-driven code
// path (the coalescing batcher's flush deadline, the streamer's refresh
// bookkeeping) can run under a deterministic fake in tests.
//
// Real() returns the production clock backed by package time. NewFake
// returns a manually advanced clock whose timers fire synchronously, in
// deadline order, inside Advance — a test that advances the fake clock
// observes exactly one interleaving, every run, which is what makes the
// soak and deadline-pathology tests deterministic instead of sleep-raced.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Timer is the handle AfterFunc returns. Stop prevents the callback from
// firing and reports whether it did (false means the callback already ran
// or was already stopped) — the contract of time.Timer.Stop.
type Timer interface {
	Stop() bool
}

// Clock is the minimal time surface the serving stack consumes.
type Clock interface {
	// Now returns the clock's current instant.
	Now() time.Time
	// AfterFunc schedules f to run once, d after now. The callback runs
	// on its own goroutine under the real clock and synchronously inside
	// Advance under the fake one; it MUST NOT be invoked inline from
	// AfterFunc itself, because callers schedule timers while holding
	// the very locks the callbacks take.
	AfterFunc(d time.Duration, f func()) Timer
}

// Real returns the production clock, delegating to package time.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

// Fake is a manually advanced Clock for deterministic tests. Timers fire
// synchronously inside Advance, ordered by deadline and then by creation
// order, never inline from AfterFunc. All methods are safe for concurrent
// use, but determinism is the caller's: advance from one goroutine.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers fakeTimerHeap
}

// NewFake returns a fake clock reading start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now returns the fake clock's current instant.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// AfterFunc schedules fn at now+d (a non-positive d schedules it at now;
// it still fires only on the next Advance, never inline).
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{clock: f, when: f.now.Add(d), seq: f.seq, f: fn}
	f.seq++
	heap.Push(&f.timers, t)
	return t
}

// Advance moves the clock forward by d, firing every timer whose deadline
// falls within the traversed window, in (deadline, creation) order. Each
// callback runs synchronously with the clock set to its own deadline and
// no lock held, so a callback may schedule further timers — those fire in
// the same Advance when they land inside the window.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		if len(f.timers) == 0 || f.timers[0].when.After(target) {
			break
		}
		t := heap.Pop(&f.timers).(*fakeTimer)
		if t.stopped {
			continue
		}
		t.fired = true
		if t.when.After(f.now) {
			f.now = t.when
		}
		f.mu.Unlock()
		t.f()
		f.mu.Lock()
	}
	if target.After(f.now) {
		f.now = target
	}
	f.mu.Unlock()
}

// Pending reports how many scheduled timers have neither fired nor been
// stopped — a test probe for "a deadline timer is parked".
func (f *Fake) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, t := range f.timers {
		if !t.stopped {
			n++
		}
	}
	return n
}

// fakeTimer is one scheduled callback on a Fake clock.
type fakeTimer struct {
	clock   *Fake
	when    time.Time
	seq     uint64
	f       func()
	idx     int // heap index, -1 once popped
	stopped bool
	fired   bool
}

// Stop cancels the timer; it reports false when the callback already ran
// or Stop was already called.
func (t *fakeTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// fakeTimerHeap orders timers by deadline, ties broken by creation order.
type fakeTimerHeap []*fakeTimer

func (h fakeTimerHeap) Len() int { return len(h) }

func (h fakeTimerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}

func (h fakeTimerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}

func (h *fakeTimerHeap) Push(x any) {
	t := x.(*fakeTimer)
	t.idx = len(*h)
	*h = append(*h, t)
}

func (h *fakeTimerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	*h = old[:n-1]
	return t
}
