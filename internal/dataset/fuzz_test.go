package dataset_test

import (
	"bytes"
	"strings"
	"testing"
	"unicode"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/synth"
)

// seedCSV renders a synthetic dataset — the same generators the examples
// use — through WriteCSV, giving the fuzzer realistic corpus entries.
func seedCSV(t interface{ Fatal(...any) }, d *dataset.Dataset) []byte {
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func seedBasket(t interface{ Fatal(...any) }, d *dataset.Dataset) []byte {
	var buf bytes.Buffer
	if err := dataset.WriteBasket(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadCSV drives the CSV record parser with arbitrary bytes and
// option combinations, checking that it never panics and that every
// accepted parse yields an internally consistent dataset.
func FuzzReadCSV(f *testing.F) {
	votes := synth.Votes(synth.VotesConfig{Democrats: 12, Republicans: 12, Seed: 1})
	labeled := synth.Labeled(synth.LabeledConfig{Records: 16, Classes: 2, Missing: 0.2, Seed: 2})
	f.Add(seedCSV(f, votes), int16(-1), int16(-1), true, "?")
	f.Add(seedCSV(f, labeled), int16(0), int16(-1), true, "?")
	f.Add([]byte("a,b\nx,y\nx,?\n"), int16(1), int16(-1), true, "?")
	f.Add([]byte("x;y;z\n1;2;3\n"), int16(-1), int16(0), false, "")
	f.Add([]byte(""), int16(-1), int16(-1), false, "?")
	f.Add([]byte("a,b\n\"unterminated\n"), int16(-1), int16(-1), true, "?")

	f.Fuzz(func(t *testing.T, data []byte, labelCol, nameCol int16, header bool, missing string) {
		opts := dataset.CSVOptions{
			Comma:     ',',
			HasHeader: header,
			LabelCol:  int(labelCol),
			NameCol:   int(nameCol),
			MissingAs: missing,
		}
		d, err := dataset.ReadCSV(bytes.NewReader(data), opts)
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted CSV produced invalid dataset: %v", err)
		}
		if d.Labels != nil && len(d.Labels) != len(d.Trans) {
			t.Fatalf("labels/transactions mismatch: %d vs %d", len(d.Labels), len(d.Trans))
		}
		// Accepted datasets must survive a write/read round trip with the
		// same shape (values may re-encode, the structure may not). A
		// dataset with no attributes or no rows has no CSV form to check.
		if len(d.Attrs) == 0 || len(d.Trans) == 0 {
			return
		}
		var buf bytes.Buffer
		if err := dataset.WriteCSV(&buf, d); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		rt, err := dataset.ReadCSV(&buf, dataset.CSVOptions{
			Comma: ',', HasHeader: true,
			LabelCol: rtLabelCol(d), NameCol: -1, MissingAs: "",
		})
		if err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
		if len(rt.Trans) != len(d.Trans) {
			t.Fatalf("round trip changed row count: %d vs %d", len(rt.Trans), len(d.Trans))
		}
	})
}

// rtLabelCol locates the label column WriteCSV appends, if any.
func rtLabelCol(d *dataset.Dataset) int {
	if d.Labels == nil {
		return -1
	}
	return len(d.Attrs)
}

// FuzzReadBasket drives the market-basket parser with arbitrary bytes
// and option combinations: no panics, consistent outputs, and lossless
// write/read round trips for accepted inputs.
func FuzzReadBasket(f *testing.F) {
	basket := synth.Basket(synth.BasketConfig{Transactions: 30, Clusters: 3, Seed: 1})
	labeled := synth.Labeled(synth.LabeledConfig{Records: 20, Classes: 2, Seed: 1})
	f.Add(seedBasket(f, basket), false, false, byte(0))
	f.Add(seedBasket(f, labeled), true, false, byte('#'))
	f.Add([]byte("milk bread eggs\nbeer chips\n"), false, false, byte(0))
	f.Add([]byte("c1 t1 milk bread\nc2 t2 beer\n"), true, true, byte('#'))
	f.Add([]byte("# comment\n\n  \nitem\n"), false, false, byte('#'))
	f.Add([]byte("label-only\n"), true, false, byte(0))

	f.Fuzz(func(t *testing.T, data []byte, label, name bool, comment byte) {
		opts := dataset.BasketOptions{
			FirstTokenIsLabel: label,
			FirstTokenIsName:  name,
			Comment:           comment,
		}
		d, err := dataset.ReadBasket(bytes.NewReader(data), opts)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted basket produced invalid dataset: %v", err)
		}
		if label && d.Labels != nil && len(d.Labels) != len(d.Trans) {
			t.Fatalf("labels/transactions mismatch: %d vs %d", len(d.Labels), len(d.Trans))
		}
		for _, tr := range d.Trans {
			if !tr.Valid() {
				t.Fatal("non-canonical transaction from parser")
			}
		}
		// The text format cannot represent every dataset: an empty
		// transaction with no label/name prefix writes a blank line that
		// the reader skips, and tokens containing whitespace would be
		// re-split. Skip the round trip for those.
		if d.Labels == nil && d.Names == nil {
			for _, tr := range d.Trans {
				if len(tr) == 0 {
					return
				}
			}
		}
		for i := 0; i < d.Vocab.Len(); i++ {
			if strings.ContainsFunc(d.Vocab.Name(dataset.Item(i)), unicode.IsSpace) {
				return
			}
		}
		for _, s := range append(append([]string{}, d.Labels...), d.Names...) {
			if s == "" || strings.ContainsFunc(s, unicode.IsSpace) {
				return
			}
		}
		var buf bytes.Buffer
		if err := dataset.WriteBasket(&buf, d); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		rt, err := dataset.ReadBasket(&buf, dataset.BasketOptions{
			FirstTokenIsLabel: d.Labels != nil,
			FirstTokenIsName:  d.Names != nil,
		})
		if err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
		if len(rt.Trans) != len(d.Trans) {
			t.Fatalf("round trip changed transaction count: %d vs %d", len(rt.Trans), len(d.Trans))
		}
		for i := range d.Trans {
			if len(rt.Trans[i]) != len(d.Trans[i]) {
				t.Fatalf("round trip changed transaction %d size", i)
			}
		}
	})
}
