package dataset

import (
	"reflect"
	"testing"
)

func histData() []Transaction {
	return []Transaction{
		NewTransaction(1, 2, 3),
		NewTransaction(1, 2),
		NewTransaction(1, 4),
		NewTransaction(9),
	}
}

func TestBuildHistogram(t *testing.T) {
	h := BuildHistogram(histData(), []int{0, 1, 2})
	if h.N != 3 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Counts[1] != 3 || h.Counts[2] != 2 || h.Counts[3] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Counts[9] != 0 {
		t.Fatal("item outside group counted")
	}
	if h.Support(1) != 1 || h.Support(2) != 2.0/3.0 {
		t.Fatalf("supports wrong: %g %g", h.Support(1), h.Support(2))
	}
}

func TestHistogramTop(t *testing.T) {
	h := BuildHistogram(histData(), []int{0, 1, 2})
	top := h.Top(2)
	want := []ItemCount{{1, 3}, {2, 2}}
	if !reflect.DeepEqual(top, want) {
		t.Fatalf("Top = %v, want %v", top, want)
	}
	// Ties break toward the smaller item id.
	h2 := BuildHistogram([]Transaction{NewTransaction(5, 7)}, []int{0})
	top2 := h2.Top(10)
	if top2[0].Item != 5 || top2[1].Item != 7 {
		t.Fatalf("tie order = %v", top2)
	}
}

func TestHistogramLargeItems(t *testing.T) {
	h := BuildHistogram(histData(), []int{0, 1, 2})
	if got := h.LargeItems(0.6); !reflect.DeepEqual(got, []Item{1, 2}) {
		t.Fatalf("LargeItems(0.6) = %v", got)
	}
	if got := h.LargeItems(1.1); len(got) != 0 {
		t.Fatalf("impossible support returned items: %v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := BuildHistogram(nil, nil)
	if h.N != 0 || h.Support(1) != 0 || len(h.Top(3)) != 0 {
		t.Fatal("empty histogram misbehaves")
	}
}
