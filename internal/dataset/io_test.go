package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestEncodeRecordsDropsMissing(t *testing.T) {
	attrs := []string{"color", "shape"}
	recs := []Record{{"red", "round"}, {"?", "square"}, {"blue", ""}}
	d := EncodeRecords(attrs, recs, []string{"a", "b", "a"}, EncodeOptions{})
	if d.Trans[0].Len() != 2 {
		t.Fatalf("record 0 encoded to %d items, want 2", d.Trans[0].Len())
	}
	if d.Trans[1].Len() != 1 || d.Trans[2].Len() != 1 {
		t.Fatalf("missing values not dropped: %v %v", d.Trans[1], d.Trans[2])
	}
	if _, ok := d.Vocab.Lookup("color=?"); ok {
		t.Fatal("missing value was interned despite MissingAsValue=false")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRecordsMissingAsValue(t *testing.T) {
	d := EncodeRecords([]string{"a"}, []Record{{"?"}}, nil, EncodeOptions{MissingAsValue: true})
	if d.Trans[0].Len() != 1 {
		t.Fatalf("want 1 item, got %v", d.Trans[0])
	}
	if _, ok := d.Vocab.Lookup("a=?"); !ok {
		t.Fatal("a=? not interned")
	}
}

func TestEncodeAgreementSemantics(t *testing.T) {
	// Two records share exactly one common item per attribute on which
	// they agree — the paper's reduction of categorical records to
	// transactions.
	attrs := []string{"a", "b", "c"}
	d := EncodeRecords(attrs, []Record{{"1", "2", "3"}, {"1", "2", "9"}}, nil, EncodeOptions{})
	if got := d.Trans[0].IntersectSize(d.Trans[1]); got != 2 {
		t.Fatalf("agreement count = %d, want 2", got)
	}
}

func TestDecodeRecordRoundTrip(t *testing.T) {
	attrs := []string{"x", "y", "z"}
	recs := []Record{{"p", "?", "q"}}
	d := EncodeRecords(attrs, recs, nil, EncodeOptions{})
	got := DecodeRecord(d, d.Trans[0])
	want := Record{"p", Missing, "q"}
	if len(got) != len(want) {
		t.Fatalf("DecodeRecord len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DecodeRecord = %v, want %v", got, want)
		}
	}
}

const votesCSV = `class,handicapped,water,budget
republican,n,y,n
democrat,y,n,y
democrat,y,?,y
`

func TestReadCSV(t *testing.T) {
	opts := DefaultCSVOptions()
	opts.LabelCol = 0
	d, err := ReadCSV(strings.NewReader(votesCSV), opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	if d.Labels[0] != "republican" || d.Labels[2] != "democrat" {
		t.Fatalf("labels = %v", d.Labels)
	}
	if len(d.Attrs) != 3 {
		t.Fatalf("attrs = %v", d.Attrs)
	}
	// Row 2 has one missing value: 2 items instead of 3.
	if d.Trans[2].Len() != 2 {
		t.Fatalf("row 2 items = %d, want 2", d.Trans[2].Len())
	}
	// The two democrats agree on handicapped and budget.
	if got := d.Trans[1].IntersectSize(d.Trans[2]); got != 2 {
		t.Fatalf("democrat agreement = %d, want 2", got)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	opts := CSVOptions{Comma: ',', HasHeader: false, LabelCol: -1, NameCol: -1}
	d, err := ReadCSV(strings.NewReader("a,b\nc,d\n"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || len(d.Attrs) != 2 {
		t.Fatalf("got %d rows, attrs %v", d.Len(), d.Attrs)
	}
}

func TestReadCSVErrors(t *testing.T) {
	opts := DefaultCSVOptions()
	opts.LabelCol = 9
	if _, err := ReadCSV(strings.NewReader(votesCSV), opts); err == nil {
		t.Fatal("out-of-range label column accepted")
	}
	opts = DefaultCSVOptions()
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n"), opts); err == nil {
		t.Fatal("ragged row accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	opts := DefaultCSVOptions()
	opts.LabelCol = 0
	d, err := ReadCSV(strings.NewReader(votesCSV), opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	opts2 := DefaultCSVOptions()
	opts2.LabelCol = 3 // class column is appended last by WriteCSV
	d2, err := ReadCSV(&buf, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("round trip changed size: %d != %d", d2.Len(), d.Len())
	}
	for i := range d.Trans {
		if d.Trans[i].Len() != d2.Trans[i].Len() {
			t.Fatalf("row %d changed arity", i)
		}
		if d.Labels[i] != d2.Labels[i] {
			t.Fatalf("row %d label changed", i)
		}
	}
}

func TestReadBasket(t *testing.T) {
	in := "# comment\nmilk bread butter\n\nbeer chips\n"
	d, err := ReadBasket(strings.NewReader(in), BasketOptions{Comment: '#'})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Trans[0].Len() != 3 || d.Trans[1].Len() != 2 {
		t.Fatalf("sizes = %d,%d", d.Trans[0].Len(), d.Trans[1].Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadBasketLabelAndName(t *testing.T) {
	in := "bond FUND1 d1 d2 d3\nequity FUND2 d2 d4\n"
	d, err := ReadBasket(strings.NewReader(in), BasketOptions{FirstTokenIsLabel: true, FirstTokenIsName: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Labels[0] != "bond" || d.Names[1] != "FUND2" {
		t.Fatalf("labels=%v names=%v", d.Labels, d.Names)
	}
	if d.Trans[0].Len() != 3 {
		t.Fatalf("items = %v", d.Trans[0])
	}
}

func TestBasketRoundTrip(t *testing.T) {
	in := "a x1 x2\nb x2 x3 x4\n"
	d, err := ReadBasket(strings.NewReader(in), BasketOptions{FirstTokenIsLabel: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBasket(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadBasket(&buf, BasketOptions{FirstTokenIsLabel: true})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatal("round trip changed size")
	}
	for i := range d.Trans {
		if d.Labels[i] != d2.Labels[i] || d.Trans[i].Len() != d2.Trans[i].Len() {
			t.Fatalf("row %d changed", i)
		}
	}
}
