package dataset

import "sort"

// Histogram is the item-frequency profile of a group of transactions —
// the compact cluster representation used across the categorical
// clustering literature (cluster summaries, Squeezer-style histograms).
type Histogram struct {
	Counts map[Item]int
	N      int // transactions summarized
}

// BuildHistogram profiles the transactions at the given indices.
func BuildHistogram(ts []Transaction, members []int) *Histogram {
	h := &Histogram{Counts: make(map[Item]int), N: len(members)}
	for _, p := range members {
		for _, it := range ts[p] {
			h.Counts[it]++
		}
	}
	return h
}

// Support returns the fraction of the group's transactions containing it.
func (h *Histogram) Support(it Item) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[it]) / float64(h.N)
}

// ItemCount pairs an item with its frequency.
type ItemCount struct {
	Item  Item
	Count int
}

// Top returns the k most frequent items, ties broken toward the smaller
// item id for determinism.
func (h *Histogram) Top(k int) []ItemCount {
	out := make([]ItemCount, 0, len(h.Counts))
	for it, c := range h.Counts {
		out = append(out, ItemCount{it, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// LargeItems returns the items whose support reaches minSupport — the
// "large items" of a cluster in the transaction-clustering sense, sorted
// ascending by id.
func (h *Histogram) LargeItems(minSupport float64) []Item {
	var out []Item
	for it := range h.Counts {
		if h.Support(it) >= minSupport {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
