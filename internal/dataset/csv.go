package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSVOptions control ReadCSV.
type CSVOptions struct {
	Comma      rune // field separator; 0 means ','
	HasHeader  bool // first row names the attributes
	LabelCol   int  // index of the ground-truth label column, -1 for none
	NameCol    int  // index of the record-name column, -1 for none
	MissingAs  string
	MissingVal bool // forwarded to EncodeOptions.MissingAsValue
}

// DefaultCSVOptions returns the options used by the command-line tools:
// comma-separated, header row, no label or name columns, "?" missing.
func DefaultCSVOptions() CSVOptions {
	return CSVOptions{Comma: ',', HasHeader: true, LabelCol: -1, NameCol: -1, MissingAs: Missing}
}

// ReadCSV parses categorical records from CSV and encodes them as
// transactions via EncodeRecords. Label and name columns, when set, are
// excluded from the encoded attributes and captured on the Dataset.
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return &Dataset{Vocab: NewVocabulary()}, nil
	}
	width := len(rows[0])
	var attrs []string
	if opts.HasHeader {
		attrs = rows[0]
		rows = rows[1:]
	} else {
		attrs = make([]string, width)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%d", i)
		}
	}
	if opts.LabelCol >= width || opts.NameCol >= width {
		return nil, fmt.Errorf("dataset: label/name column out of range for %d columns", width)
	}

	keep := make([]int, 0, width)
	var keptAttrs []string
	for i := 0; i < width; i++ {
		if i == opts.LabelCol || i == opts.NameCol {
			continue
		}
		keep = append(keep, i)
		keptAttrs = append(keptAttrs, attrs[i])
	}

	records := make([]Record, 0, len(rows))
	var labels, names []string
	for rn, row := range rows {
		if len(row) != width {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", rn+1, len(row), width)
		}
		rec := make(Record, len(keep))
		for j, col := range keep {
			v := row[col]
			if opts.MissingAs != "" && v == opts.MissingAs {
				v = Missing
			}
			rec[j] = v
		}
		records = append(records, rec)
		if opts.LabelCol >= 0 {
			labels = append(labels, row[opts.LabelCol])
		}
		if opts.NameCol >= 0 {
			names = append(names, row[opts.NameCol])
		}
	}
	d := EncodeRecords(keptAttrs, records, labels, EncodeOptions{MissingAsValue: opts.MissingVal})
	d.Names = names
	return d, nil
}

// WriteCSV writes the dataset back out as categorical records, one row per
// transaction, decoding items via DecodeRecord. A label column named
// "class" is appended when the dataset carries labels. It is the inverse
// of ReadCSV for datasets built from records.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	header := append([]string(nil), d.Attrs...)
	if d.Labels != nil {
		header = append(header, "class")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing csv header: %w", err)
	}
	for i, t := range d.Trans {
		row := []string(DecodeRecord(d, t))
		if d.Labels != nil {
			row = append(row, d.Labels[i])
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
