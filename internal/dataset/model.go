// Package dataset defines the data model shared by every other package in
// this module: interned categorical items, transactions (sets of items),
// categorical records, and the Dataset container that binds transactions to
// optional ground-truth labels and display names.
//
// ROCK treats all categorical inputs uniformly as market-basket
// transactions. A categorical record (a tuple of attribute values) is
// encoded as the transaction of its "attribute=value" pairs, with missing
// values contributing no items, exactly as in the paper.
package dataset

import (
	"fmt"
	"sort"
)

// Item is an interned categorical token: an item of a market-basket
// transaction, or an "attribute=value" pair of a categorical record.
// Items are allocated densely from 0 by a Vocabulary.
type Item int32

// Transaction is a set of items stored sorted ascending without
// duplicates. The zero value is the empty transaction.
type Transaction []Item

// NewTransaction builds a canonical (sorted, deduplicated) transaction
// from the given items. The input slice is not modified.
func NewTransaction(items ...Item) Transaction {
	t := make(Transaction, len(items))
	copy(t, items)
	sort.Slice(t, func(i, j int) bool { return t[i] < t[j] })
	// Deduplicate in place.
	out := t[:0]
	for i, it := range t {
		if i == 0 || it != t[i-1] {
			out = append(out, it)
		}
	}
	return out
}

// Len reports the number of items in the transaction.
func (t Transaction) Len() int { return len(t) }

// Contains reports whether the transaction contains item it.
func (t Transaction) Contains(it Item) bool {
	i := sort.Search(len(t), func(i int) bool { return t[i] >= it })
	return i < len(t) && t[i] == it
}

// Equal reports whether two transactions contain the same items.
func (t Transaction) Equal(u Transaction) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the transaction.
func (t Transaction) Clone() Transaction {
	u := make(Transaction, len(t))
	copy(u, t)
	return u
}

// IntersectSize returns |t ∩ u| using a linear merge of the two sorted
// item slices.
func (t Transaction) IntersectSize(u Transaction) int {
	i, j, n := 0, 0, 0
	for i < len(t) && j < len(u) {
		switch {
		case t[i] < u[j]:
			i++
		case t[i] > u[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// UnionSize returns |t ∪ u|.
func (t Transaction) UnionSize(u Transaction) int {
	return len(t) + len(u) - t.IntersectSize(u)
}

// Valid reports whether the transaction is canonical: strictly ascending
// item ids. Package functions producing Transactions always return
// canonical values; Valid is exported for property tests and for
// validating externally-constructed values.
func (t Transaction) Valid() bool {
	for i := 1; i < len(t); i++ {
		if t[i] <= t[i-1] {
			return false
		}
	}
	return true
}

// Dataset is a collection of transactions with optional per-transaction
// ground-truth labels and display names, plus the vocabulary that interns
// the item tokens. Labels and Names are either empty or exactly
// parallel to Trans.
type Dataset struct {
	Vocab  *Vocabulary
	Trans  []Transaction
	Labels []string // optional ground-truth class per transaction
	Names  []string // optional display name per transaction
	Attrs  []string // optional attribute names when built from records
}

// Len reports the number of transactions in the dataset.
func (d *Dataset) Len() int { return len(d.Trans) }

// Validate checks internal consistency: parallel slice lengths and
// canonical transactions with in-vocabulary items.
func (d *Dataset) Validate() error {
	if d.Labels != nil && len(d.Labels) != len(d.Trans) {
		return fmt.Errorf("dataset: %d labels for %d transactions", len(d.Labels), len(d.Trans))
	}
	if d.Names != nil && len(d.Names) != len(d.Trans) {
		return fmt.Errorf("dataset: %d names for %d transactions", len(d.Names), len(d.Trans))
	}
	limit := Item(-1)
	if d.Vocab != nil {
		limit = Item(d.Vocab.Len())
	}
	for i, t := range d.Trans {
		if !t.Valid() {
			return fmt.Errorf("dataset: transaction %d is not canonical", i)
		}
		for _, it := range t {
			if it < 0 || (limit >= 0 && it >= limit) {
				return fmt.Errorf("dataset: transaction %d has out-of-vocabulary item %d", i, it)
			}
		}
	}
	return nil
}

// Subset returns a new dataset holding the transactions at the given
// indices (shallow copies; the vocabulary is shared). Labels and names are
// carried over when present.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{Vocab: d.Vocab, Attrs: d.Attrs}
	s.Trans = make([]Transaction, len(idx))
	if d.Labels != nil {
		s.Labels = make([]string, len(idx))
	}
	if d.Names != nil {
		s.Names = make([]string, len(idx))
	}
	for i, j := range idx {
		s.Trans[i] = d.Trans[j]
		if d.Labels != nil {
			s.Labels[i] = d.Labels[j]
		}
		if d.Names != nil {
			s.Names[i] = d.Names[j]
		}
	}
	return s
}

// ClassCounts tallies the ground-truth labels. It returns nil when the
// dataset carries no labels.
func (d *Dataset) ClassCounts() map[string]int {
	if d.Labels == nil {
		return nil
	}
	m := make(map[string]int)
	for _, l := range d.Labels {
		m[l]++
	}
	return m
}
