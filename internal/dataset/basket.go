package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// BasketOptions control ReadBasket.
type BasketOptions struct {
	// FirstTokenIsLabel treats the first whitespace-separated token of
	// each line as the transaction's ground-truth label.
	FirstTokenIsLabel bool
	// FirstTokenIsName treats the first token (after the label, if both
	// are set) as the transaction's display name.
	FirstTokenIsName bool
	// Comment, when non-zero, skips lines starting with this byte.
	Comment byte
}

// ReadBasket parses the classic market-basket text format: one transaction
// per line, items separated by whitespace. Blank lines are skipped.
func ReadBasket(r io.Reader, opts BasketOptions) (*Dataset, error) {
	v := NewVocabulary()
	d := &Dataset{Vocab: v}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || (opts.Comment != 0 && text[0] == opts.Comment) {
			continue
		}
		fields := strings.Fields(text)
		if opts.FirstTokenIsLabel {
			d.Labels = append(d.Labels, fields[0])
			fields = fields[1:]
		}
		if opts.FirstTokenIsName {
			if len(fields) == 0 {
				return nil, fmt.Errorf("dataset: basket line %d: missing name token", line)
			}
			d.Names = append(d.Names, fields[0])
			fields = fields[1:]
		}
		items := make([]Item, len(fields))
		for i, f := range fields {
			items[i] = v.Intern(f)
		}
		d.Trans = append(d.Trans, NewTransaction(items...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading basket file: %w", err)
	}
	return d, nil
}

// WriteBasket writes transactions in the market-basket text format read by
// ReadBasket, emitting label and name prefix tokens when the dataset
// carries them.
func WriteBasket(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for i, t := range d.Trans {
		first := true
		emit := func(tok string) {
			if !first {
				bw.WriteByte(' ')
			}
			bw.WriteString(tok)
			first = false
		}
		if d.Labels != nil {
			emit(d.Labels[i])
		}
		if d.Names != nil {
			emit(d.Names[i])
		}
		for _, it := range t {
			emit(d.Vocab.Name(it))
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("dataset: writing basket line %d: %w", i, err)
		}
	}
	return bw.Flush()
}
