package dataset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewTransactionCanonicalizes(t *testing.T) {
	tr := NewTransaction(5, 1, 3, 1, 5, 2)
	want := Transaction{1, 2, 3, 5}
	if !tr.Equal(want) {
		t.Fatalf("NewTransaction = %v, want %v", tr, want)
	}
	if !tr.Valid() {
		t.Fatalf("NewTransaction produced non-canonical %v", tr)
	}
}

func TestNewTransactionEmpty(t *testing.T) {
	tr := NewTransaction()
	if tr.Len() != 0 {
		t.Fatalf("empty transaction has len %d", tr.Len())
	}
	if !tr.Valid() {
		t.Fatal("empty transaction not valid")
	}
}

func TestTransactionContains(t *testing.T) {
	tr := NewTransaction(2, 4, 6, 8)
	for _, it := range []Item{2, 4, 6, 8} {
		if !tr.Contains(it) {
			t.Errorf("Contains(%d) = false, want true", it)
		}
	}
	for _, it := range []Item{1, 3, 5, 7, 9, 0} {
		if tr.Contains(it) {
			t.Errorf("Contains(%d) = true, want false", it)
		}
	}
}

func TestIntersectUnionSize(t *testing.T) {
	tests := []struct {
		a, b       Transaction
		inter, uni int
	}{
		{NewTransaction(1, 2, 3), NewTransaction(2, 3, 4), 2, 4},
		{NewTransaction(1, 2, 3), NewTransaction(4, 5, 6), 0, 6},
		{NewTransaction(), NewTransaction(1), 0, 1},
		{NewTransaction(1, 2), NewTransaction(1, 2), 2, 2},
		{NewTransaction(), NewTransaction(), 0, 0},
	}
	for _, tc := range tests {
		if got := tc.a.IntersectSize(tc.b); got != tc.inter {
			t.Errorf("IntersectSize(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.inter)
		}
		if got := tc.a.UnionSize(tc.b); got != tc.uni {
			t.Errorf("UnionSize(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.uni)
		}
	}
}

// randomTransaction builds a canonical transaction over a small universe so
// that intersections are common.
func randomTransaction(r *rand.Rand) Transaction {
	n := r.Intn(12)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item(r.Intn(20))
	}
	return NewTransaction(items...)
}

func TestIntersectSizeProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomTransaction(r))
			vals[1] = reflect.ValueOf(randomTransaction(r))
		},
	}
	prop := func(a, b Transaction) bool {
		in := a.IntersectSize(b)
		// Symmetry, bounds, and the inclusion-exclusion identity.
		if in != b.IntersectSize(a) {
			return false
		}
		if in < 0 || in > a.Len() || in > b.Len() {
			return false
		}
		if a.UnionSize(b) != a.Len()+b.Len()-in {
			return false
		}
		// Oracle: brute-force membership count.
		brute := 0
		for _, it := range a {
			if b.Contains(it) {
				brute++
			}
		}
		return in == brute
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionCloneIndependence(t *testing.T) {
	a := NewTransaction(1, 2, 3)
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	a := v.Intern("apple")
	b := v.Intern("banana")
	if a == b {
		t.Fatal("distinct tokens interned to same id")
	}
	if got := v.Intern("apple"); got != a {
		t.Fatalf("re-interning apple gave %d, want %d", got, a)
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if v.Name(a) != "apple" || v.Name(b) != "banana" {
		t.Fatal("Name round-trip failed")
	}
	if _, ok := v.Lookup("cherry"); ok {
		t.Fatal("Lookup found token never interned")
	}
	if id, ok := v.Lookup("banana"); !ok || id != b {
		t.Fatal("Lookup(banana) failed")
	}
	if !reflect.DeepEqual(v.Names(), []string{"apple", "banana"}) {
		t.Fatalf("Names() = %v", v.Names())
	}
}

func TestDatasetSubsetAndValidate(t *testing.T) {
	v := NewVocabulary()
	d := &Dataset{
		Vocab:  v,
		Trans:  []Transaction{NewTransaction(v.Intern("a")), NewTransaction(v.Intern("b")), NewTransaction(v.Intern("c"))},
		Labels: []string{"x", "y", "z"},
		Names:  []string{"r0", "r1", "r2"},
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := d.Subset([]int{2, 0})
	if s.Len() != 2 || s.Labels[0] != "z" || s.Names[1] != "r0" {
		t.Fatalf("Subset wrong: %+v", s)
	}
	if s.Vocab != d.Vocab {
		t.Fatal("Subset must share the vocabulary")
	}

	bad := &Dataset{Vocab: v, Trans: []Transaction{{3, 2}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted non-canonical transaction")
	}
	bad2 := &Dataset{Vocab: v, Trans: []Transaction{{Item(v.Len() + 5)}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-vocabulary item")
	}
	bad3 := &Dataset{Vocab: v, Trans: d.Trans, Labels: []string{"only-one"}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("Validate accepted mismatched label count")
	}
}

func TestClassCounts(t *testing.T) {
	d := &Dataset{Trans: make([]Transaction, 4), Labels: []string{"a", "b", "a", "a"}}
	got := d.ClassCounts()
	if got["a"] != 3 || got["b"] != 1 {
		t.Fatalf("ClassCounts = %v", got)
	}
	var unlabeled Dataset
	if unlabeled.ClassCounts() != nil {
		t.Fatal("ClassCounts on unlabeled dataset should be nil")
	}
}
