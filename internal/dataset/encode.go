package dataset

// Missing is the conventional marker for a missing categorical attribute
// value (the UCI convention). EncodeRecords also treats the empty string
// as missing.
const Missing = "?"

// Record is one categorical tuple: one value per attribute of a schema.
type Record []string

// EncodeOptions control how categorical records are mapped to
// transactions.
type EncodeOptions struct {
	// MissingAsValue, when true, interns missing values as the item
	// "attr=?" instead of dropping them. The paper drops them (a missing
	// value simply contributes no item), which is the default.
	MissingAsValue bool
}

// EncodeRecords converts categorical records into a Dataset of
// transactions, interning each present attribute value as the item
// "attr=value". attrs names the columns; labels may be nil or parallel to
// records. This is the paper's reduction of categorical records to the
// market-basket domain: two records then have one common item per
// attribute on which they agree.
func EncodeRecords(attrs []string, records []Record, labels []string, opts EncodeOptions) *Dataset {
	v := NewVocabulary()
	d := &Dataset{Vocab: v, Attrs: attrs, Labels: labels}
	d.Trans = make([]Transaction, len(records))
	items := make([]Item, 0, len(attrs))
	for i, rec := range records {
		items = items[:0]
		for a := 0; a < len(attrs) && a < len(rec); a++ {
			val := rec[a]
			if val == "" || val == Missing {
				if !opts.MissingAsValue {
					continue
				}
				val = Missing
			}
			items = append(items, v.Intern(attrs[a]+"="+val))
		}
		d.Trans[i] = NewTransaction(items...)
	}
	return d
}

// DecodeRecord reverses EncodeRecords for one transaction: it returns the
// record with each attribute set to its value when the transaction holds
// an item for that attribute, and Missing otherwise. Attribute names must
// match those used at encode time.
func DecodeRecord(d *Dataset, t Transaction) Record {
	rec := make(Record, len(d.Attrs))
	for i := range rec {
		rec[i] = Missing
	}
	pos := make(map[string]int, len(d.Attrs))
	for i, a := range d.Attrs {
		pos[a] = i
	}
	for _, it := range t {
		name := d.Vocab.Name(it)
		for j := 0; j < len(name); j++ {
			if name[j] == '=' {
				if i, ok := pos[name[:j]]; ok {
					rec[i] = name[j+1:]
				}
				break
			}
		}
	}
	return rec
}
