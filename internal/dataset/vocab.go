package dataset

// Vocabulary interns string tokens as dense Item ids. Ids are assigned in
// first-seen order starting from 0, which keeps downstream structures
// (inverted indexes, binary encodings) compact. The zero value is not
// usable; call NewVocabulary.
type Vocabulary struct {
	byName map[string]Item
	names  []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{byName: make(map[string]Item)}
}

// Intern returns the id for name, allocating a fresh id on first use.
func (v *Vocabulary) Intern(name string) Item {
	if id, ok := v.byName[name]; ok {
		return id
	}
	id := Item(len(v.names))
	v.byName[name] = id
	v.names = append(v.names, name)
	return id
}

// Lookup returns the id for name without allocating.
func (v *Vocabulary) Lookup(name string) (Item, bool) {
	id, ok := v.byName[name]
	return id, ok
}

// Name returns the token for id. It panics if id was never allocated,
// mirroring slice indexing semantics.
func (v *Vocabulary) Name(id Item) string { return v.names[id] }

// Len reports the number of distinct tokens interned so far.
func (v *Vocabulary) Len() int { return len(v.names) }

// Names returns the interned tokens in id order. The returned slice is
// shared with the vocabulary and must not be modified.
func (v *Vocabulary) Names() []string { return v.names }
