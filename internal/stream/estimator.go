package stream

// Outlier-rate drift detection.
//
// The streamer needs one number: "what fraction of recently arriving
// points does the frozen model fail to place?" A full sliding window
// would retain W booleans per estimator; an exponentially weighted moving
// average needs two floats and is the standard streaming estimator for
// exactly this shape of signal. The window parameter W maps to the
// smoothing factor α = 2/(W+1) (the same convention as the classic
// W-period EMA), so the estimate carries an effective memory of roughly
// the last W points: after W consecutive identical observations the
// estimate has moved ~86% of the way to the new level.
//
// The estimator is measured in points, not wall time, which keeps the
// drift detector deterministic for a given point sequence — the property
// the soak tests assert — and makes the detection delay bound a count of
// points rather than a duration that depends on ingest rate.

// rateEWMA tracks an exponentially weighted moving average of a 0/1
// indicator stream. Not goroutine-safe; the streamer updates it under its
// mutex.
type rateEWMA struct {
	alpha float64
	rate  float64
	n     int64 // observations since the last reset
}

// newRateEWMA sizes the estimator for an effective window of W points.
func newRateEWMA(window int) *rateEWMA {
	return &rateEWMA{alpha: 2 / (float64(window) + 1)}
}

// observe folds one indicator (1 = outlier, 0 = assigned) into the
// estimate. The first observation after a reset seeds the level directly;
// warm-up gating is the caller's job (the streamer requires Warmup
// observations before the detector may fire).
func (e *rateEWMA) observe(x float64) {
	if e.n == 0 {
		e.rate = x
	} else {
		e.rate += e.alpha * (x - e.rate)
	}
	e.n++
}

// value returns the current rate estimate in [0,1].
func (e *rateEWMA) value() float64 { return e.rate }

// count returns the observations folded in since the last reset.
func (e *rateEWMA) count() int64 { return e.n }

// reset re-arms the estimator: the level and the observation count both
// clear, so the detector must re-warm over a fresh window before it can
// fire again — the post-refresh cooldown.
func (e *rateEWMA) reset() {
	e.rate = 0
	e.n = 0
}
