package stream

import (
	"math"
	"math/rand"
	"testing"
)

// TestOutlierRateEstimatorProperty is the drift-detector property test:
// against seeded Bernoulli(p) indicator streams the EWMA must (a)
// converge to p within a tolerance derived from its stationary variance,
// and (b) after its warmup window never wander far enough above p to
// cross a threshold set margin above the true rate — i.e. the detector
// cannot fire on a stream whose true rate sits below threshold − margin.
//
// The tolerance is principled, not tuned: a W-window EWMA over iid
// Bernoulli(p) has stationary standard deviation
// σ = sqrt(p(1−p)·α/(2−α)) with α = 2/(W+1), and the max of ~N/W
// effectively independent excursions stays within a few σ. We allow 6σ
// plus a small absolute floor. Seeds are fixed; the test is fully
// deterministic — if it passes once it passes always.
func TestOutlierRateEstimatorProperty(t *testing.T) {
	const window = 256
	alpha := 2.0 / (window + 1)
	for _, p := range []float64{0.01, 0.1, 0.5} {
		sigma := math.Sqrt(p * (1 - p) * alpha / (2 - alpha))
		margin := 6*sigma + 0.01
		n := 50 * window

		est := newRateEWMA(window)
		rng := rand.New(rand.NewSource(int64(1000*p) + 42))
		maxAfterWarmup := 0.0
		for i := 0; i < n; i++ {
			x := 0.0
			if rng.Float64() < p {
				x = 1
			}
			est.observe(x)
			if est.count() >= window && est.value() > maxAfterWarmup {
				maxAfterWarmup = est.value()
			}
		}
		if est.count() != int64(n) {
			t.Fatalf("p=%v: count %d, want %d", p, est.count(), n)
		}
		// (a) convergence: the final estimate sits within the tolerance
		// band around the true rate.
		if d := math.Abs(est.value() - p); d > margin {
			t.Errorf("p=%v: final estimate %.4f is %.4f from truth, tolerance %.4f", p, est.value(), d, margin)
		}
		// (b) no spurious firing: a threshold at p+margin is never
		// crossed after warmup, so a detector with threshold T can only
		// fire when the true rate exceeds T − margin.
		if maxAfterWarmup >= p+margin {
			t.Errorf("p=%v: post-warmup max %.4f crossed p+margin = %.4f — detector would fire below threshold−margin", p, maxAfterWarmup, p+margin)
		}
	}
}

// TestOutlierRateEstimatorDetects is the other half of the property: when
// the true rate jumps ABOVE the threshold, the estimate crosses it within
// a bounded number of points. For a jump from ~0 to 1 the deterministic
// crossing time of a W-window EWMA past level T is ln(1−T)/ln(1−α)
// points (≈ 0.55·W for T = 0.5) — we assert crossing within W points of
// the changepoint, the bound the soak test leans on.
func TestOutlierRateEstimatorDetects(t *testing.T) {
	const window = 64
	const threshold = 0.5
	est := newRateEWMA(window)
	for i := 0; i < 10*window; i++ {
		est.observe(0) // long stable phase, rate pinned at 0
	}
	crossed := -1
	for i := 1; i <= window; i++ {
		est.observe(1) // changepoint: every point is now an outlier
		if est.value() >= threshold {
			crossed = i
			break
		}
	}
	if crossed < 0 {
		t.Fatalf("estimate never crossed %.2f within %d all-outlier points (final %.4f)", threshold, window, est.value())
	}
	// The analytic crossing time; the discrete estimate may lag one point.
	alpha := 2.0 / (window + 1)
	want := int(math.Ceil(math.Log(1-threshold)/math.Log(1-alpha))) + 1
	if crossed > want {
		t.Fatalf("crossed after %d points, analytic bound %d", crossed, want)
	}

	// reset() re-arms: count clears so warmup gating starts over, and the
	// level restarts from the next observation.
	est.reset()
	if est.count() != 0 || est.value() != 0 {
		t.Fatalf("reset left count=%d value=%v", est.count(), est.value())
	}
	est.observe(1)
	if est.value() != 1 {
		t.Fatalf("first post-reset observation should seed the level, got %v", est.value())
	}
}
