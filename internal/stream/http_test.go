package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/serve"
	"github.com/rockclust/rock/internal/vclock"
)

// vocabStreamModel freezes a small named-item model for the HTTP and
// fuzz tests; built once, shared read-only (frozen models are immutable).
var vocabStreamModel = sync.OnceValue(func() *core.Model {
	g := newRegime(0, 2, 11)
	ts, _ := g.batch(120)
	v := dataset.NewVocabulary()
	d := &dataset.Dataset{Vocab: v}
	for _, tx := range ts {
		items := make([]dataset.Item, len(tx))
		for i, it := range tx {
			items[i] = v.Intern(fmt.Sprintf("i%d", it))
		}
		d.Trans = append(d.Trans, dataset.NewTransaction(items...))
	}
	cfg := core.Config{Theta: soakTheta, K: 2, Seed: 1}
	res, err := core.Cluster(d.Trans, cfg)
	if err != nil {
		panic(err)
	}
	m, err := core.FreezeDataset(d, res, cfg)
	if err != nil {
		panic(err)
	}
	return m
})

// newHTTPStreamer builds a streamer with the detector disabled and a
// size-1 batch so every request flushes without clock advance.
func newHTTPStreamer(t testing.TB) *Streamer {
	t.Helper()
	st, err := New(vocabStreamModel(), Config{
		Serve:            serve.Config{MaxBatch: 1},
		RefreshThreshold: 2, // the rate never reaches 2: detector off
		Clock:            vclock.NewFake(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStreamHTTP drives the streamer's HTTP surface end to end: /ingest
// with names and with ids, the validation rejections, /streamz, and the
// embedded serving stack's /assign and /healthz reached through the same
// handler.
func TestStreamHTTP(t *testing.T) {
	st := newHTTPStreamer(t)
	srv := httptest.NewServer(st.Handler())
	defer srv.Close()

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes()
	}

	// Names: one in-vocabulary query, one unknown-only query.
	code, body := post("/ingest", `{"queries":[["i0","i1","i2"],["brand-new"]]}`)
	if code != http.StatusOK {
		t.Fatalf("ingest names: status %d: %s", code, body)
	}
	var res IngestResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 2 || res.Generation != 1 {
		t.Fatalf("ingest names response: %+v", res)
	}
	if res.Assignments[1] != -1 {
		t.Fatalf("unknown-only query assigned %d, want -1", res.Assignments[1])
	}

	// IDs.
	code, body = post("/ingest", `{"ids":[[0,1,2]]}`)
	if code != http.StatusOK {
		t.Fatalf("ingest ids: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 1 {
		t.Fatalf("ingest ids response: %+v", res)
	}

	// Rejections: both representations (even both EMPTY — an empty JSON
	// array is still "set"), neither, negative id, bad JSON.
	for name, body := range map[string]string{
		"both":        `{"queries":[["a"]],"ids":[[1]]}`,
		"both empty":  `{"queries":[],"ids":[]}`,
		"neither":     `{}`,
		"negative id": `{"ids":[[-3]]}`,
		"bad json":    `{nope`,
	} {
		if code, _ := post("/ingest", body); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, code)
		}
	}

	// An empty batch is valid: zero assignments, and the generation in
	// the response is the live one, not a zero value.
	code, body = post("/ingest", `{"ids":[]}`)
	if code != http.StatusOK {
		t.Fatalf("empty batch: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 0 || res.Generation != 1 {
		t.Fatalf("empty batch response: %+v", res)
	}

	// /streamz reflects the two accepted batches (3 points).
	resp, err := http.Get(srv.URL + "/streamz")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Seen != 3 || stats.Generation != 1 {
		t.Fatalf("streamz: %+v", stats)
	}

	// The embedded serving stack is mounted under the same handler.
	code, body = post("/assign", `{"queries":[["i0","i1","i2"]]}`)
	if code != http.StatusOK {
		t.Fatalf("embedded /assign: status %d: %s", code, body)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("embedded /healthz: status %d", resp.StatusCode)
	}
}

// TestIngestNamesInternsOnce proves the same unknown name arriving twice
// in one batch is interned exactly once: both occurrences resolve to the
// same fresh id, and the streamer's id space grows by one per distinct
// name, not per occurrence.
func TestIngestNamesInternsOnce(t *testing.T) {
	st := newHTTPStreamer(t)
	before := len(st.names)
	res, err := st.IngestNames([][]string{
		{"never-seen", "i0"},
		{"never-seen", "i1"},
		{"also-new", "also-new"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 3 {
		t.Fatalf("assignments: %+v", res)
	}
	if got := len(st.names) - before; got != 2 {
		t.Fatalf("interned %d new names for 2 distinct unknowns", got)
	}
	id, ok := st.byName["never-seen"]
	if !ok {
		t.Fatal("'never-seen' not interned")
	}
	// A later batch reuses the id rather than re-interning.
	if _, err := st.IngestNames([][]string{{"never-seen"}}); err != nil {
		t.Fatal(err)
	}
	if st.byName["never-seen"] != id || len(st.names)-before != 2 {
		t.Fatalf("'never-seen' re-interned: id %d -> %d, %d new names", id, st.byName["never-seen"], len(st.names)-before)
	}
}

// TestIngestBodyLimit proves oversized request bodies are refused with
// 413 and the standard error envelope on both write endpoints, while
// requests under the cap keep working on the same streamer.
func TestIngestBodyLimit(t *testing.T) {
	st, err := New(vocabStreamModel(), Config{
		Serve:            serve.Config{MaxBatch: 1, MaxBodyBytes: 256},
		RefreshThreshold: 2,
		Clock:            vclock.NewFake(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(st.Handler())
	defer srv.Close()

	big := `{"ids":[[` + strings.Repeat("7,", 400) + `7]]}`
	for _, path := range []string{"/ingest", "/assign"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		var env map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("%s: oversize response is not the error envelope: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: oversize body got status %d, want 413", path, resp.StatusCode)
		}
		if env["error"] == "" {
			t.Fatalf("%s: 413 carries no error message", path)
		}
	}

	// Under the cap: still serving.
	resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(`{"ids":[[0,1,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body after 413: status %d", resp.StatusCode)
	}
}

// TestStreamzRefreshError proves a failed refresh's error string reaches
// the /streamz JSON under the documented last_refresh_error key (and is
// omitted entirely while the ledger is clean).
func TestStreamzRefreshError(t *testing.T) {
	st := newHTTPStreamer(t)
	srv := httptest.NewServer(st.Handler())
	defer srv.Close()

	get := func() []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + "/streamz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if body := get(); bytes.Contains(body, []byte("last_refresh_error")) {
		t.Fatalf("clean ledger leaks an empty last_refresh_error: %s", body)
	}
	st.mu.Lock()
	st.lastRefreshErr = "stream: refresh produced no clusters"
	st.mu.Unlock()
	if body := get(); !bytes.Contains(body, []byte(`"last_refresh_error":"stream: refresh produced no clusters"`)) {
		t.Fatalf("failed-refresh error missing from /streamz: %s", body)
	}
}
