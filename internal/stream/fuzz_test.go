package stream

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzStreamAdmit throws arbitrary bodies at POST /ingest. The contract
// under fuzzing: the handler never panics, answers either 400 or 200,
// and a 200 carries exactly one assignment per query in the request —
// malformed, empty, mixed, and huge inputs are all either rejected
// cleanly or served completely. The detector is disabled (threshold
// above any possible rate) so iterations stay cheap and deterministic.
func FuzzStreamAdmit(f *testing.F) {
	f.Add([]byte(`{"ids":[[0,1,2]]}`))
	f.Add([]byte(`{"queries":[["i0","i1","i2"],["never-seen"]]}`))
	f.Add([]byte(`{"queries":[[]]}`))
	f.Add([]byte(`{"ids":[]}`))
	f.Add([]byte(`{"queries":[["a"]],"ids":[[1]]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"ids":[[-1]]}`))
	f.Add([]byte(`{nope`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"ids":[[2147483647],[0,0,0,0]]}`))
	f.Add([]byte(`{"ids":[[` + strings.Repeat("7,", 299) + `7]]}`))

	f.Fuzz(func(t *testing.T, body []byte) {
		st := newHTTPStreamer(t)
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body))
		st.Handler().ServeHTTP(rec, req)

		switch rec.Code {
		case http.StatusBadRequest:
			// Rejected cleanly; nothing may have been ingested.
		case http.StatusOK:
			var res IngestResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
				t.Fatalf("200 with undecodable body %q: %v", rec.Body.String(), err)
			}
			// Re-decode the input the way the handler did to count its
			// queries; a body the handler accepted must re-decode. (A
			// Decoder, not Unmarshal: the handler reads one JSON value
			// and ignores trailing bytes.)
			var in IngestRequest
			if err := json.NewDecoder(bytes.NewReader(body)).Decode(&in); err != nil {
				t.Fatalf("200 for a body that does not decode: %q", body)
			}
			want := len(in.Queries)
			if in.IDs != nil {
				want = len(in.IDs)
			}
			if len(res.Assignments) != want {
				t.Fatalf("%d assignments for %d queries (body %q)", len(res.Assignments), want, body)
			}
			if st.Stats().Seen != int64(want) {
				t.Fatalf("streamer saw %d points for %d ingested queries", st.Stats().Seen, want)
			}
		default:
			t.Fatalf("status %d for body %q — /ingest may only answer 200 or 400", rec.Code, body)
		}
		st.Quiesce()
	})
}
