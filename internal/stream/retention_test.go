package stream

import (
	"testing"
	"time"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/serve"
	"github.com/rockclust/rock/internal/vclock"
)

// assertLedger checks the outlier conservation identity the Stats doc
// promises: with no refresh in flight, every parked point is in exactly
// one bucket — in the ring, consumed by a refresh, re-admitted, or
// dropped. A leak here is the silent-loss bug this ledger exists to
// prevent.
func assertLedger(t *testing.T, s Stats) {
	t.Helper()
	if s.Refreshing {
		t.Fatalf("ledger checked mid-refresh: %+v", s)
	}
	if s.Outliers != s.RefreshedOutliers+s.ReadmittedOutliers+int64(s.PendingOutliers)+s.DroppedOutliers {
		t.Fatalf("outlier ledger leaks points: %d parked != %d refreshed + %d readmitted + %d pending + %d dropped",
			s.Outliers, s.RefreshedOutliers, s.ReadmittedOutliers, s.PendingOutliers, s.DroppedOutliers)
	}
}

// TestOutlierRetentionAcrossRefresh is the regression test for the
// refresh-window loss bug: points parked WHILE a refresh runs used to be
// wiped with the whole ring at swap time, uncounted. The test holds a
// refresh at the gate, parks 40 more points against a 32-slot ring, then
// releases and proves every one of the 64 parked points is accounted
// for: the 24 snapshotted ones entered the refreshed model (including
// those the full ring evicted mid-refresh — eviction consumes the
// snapshot prefix first, so those were NOT lost), the refresh-window
// parks re-admit through the new generation's θ-test, and only the 8
// evictions past the snapshot — points that never reached any model —
// count as dropped. Runs in both refresh modes; the coalescer must also
// record the mid-refresh trigger exactly once.
func TestOutlierRetentionAcrossRefresh(t *testing.T) {
	for name, incremental := range map[string]bool{"full": false, "incremental": true} {
		t.Run(name, func(t *testing.T) {
			g := newRegime(0, 4, 11)
			m := freezeRegime(t, g, 200, 4, 1)
			st, err := New(m, Config{
				Cluster:            core.Config{Theta: soakTheta, K: 6, Seed: 5},
				Serve:              serve.Config{MaxBatch: 1},
				Window:             16,
				Warmup:             16,
				MinRefreshOutliers: 16,
				OutlierBuffer:      32,
				RetainSample:       64,
				Incremental:        incremental,
				Clock:              vclock.NewFake(time.Unix(0, 0)),
			})
			if err != nil {
				t.Fatal(err)
			}
			gate := make(chan struct{})
			st.gateRefresh = gate
			st.refreshEntered = make(chan struct{}, 4)

			// Warm the estimator with admitted points, then trigger on 24
			// parked outliers: the refresh snapshots a ring cut of 24.
			warm, _ := g.batch(32)
			st.Ingest(warm)
			regB := newRegime(100000, 2, 9)
			bts, _ := regB.batch(24)
			st.Ingest(bts)
			<-st.refreshEntered // the refresh holds at the gate, snapshot taken

			pre := st.Stats()
			if !pre.Refreshing || pre.PendingOutliers < 24 || pre.DroppedOutliers != 0 {
				t.Fatalf("pre-refresh state: %+v", pre)
			}
			cut := pre.PendingOutliers // snapshotted ring prefix (24 B + any warm parks)

			// Park 40 more mid-refresh. The 32-slot ring fills cut→32, then
			// drop-oldest evictions consume the whole snapshot prefix plus
			// 8 of the newcomers.
			mid, _ := regB.batch(40)
			st.Ingest(mid)
			held := st.Stats()
			if held.PendingOutliers != 32 || held.DroppedOutliers != int64(cut)+8 {
				t.Fatalf("mid-refresh ring state: %+v, want 32 pending / %d dropped", held, cut+8)
			}
			if held.CoalescedTriggers != 1 || !held.PendingRefresh {
				t.Fatalf("mid-refresh trigger not coalesced exactly once: %+v", held)
			}

			close(gate)
			st.Quiesce()
			s := st.Stats()
			assertLedger(t, s)
			if s.Refreshes < 1 || s.FailedRefreshes != 0 || s.LastRefreshError != "" {
				t.Fatalf("refresh ledger: %+v", s)
			}
			if s.LastRefreshIncremental != incremental || s.IncrementalFallbacks != 0 {
				t.Fatalf("refresh mode: %+v, want incremental=%v", s, incremental)
			}
			// The snapshot's points reached the refreshed model: their
			// mid-refresh evictions must have been reversed, leaving
			// exactly the 8 post-snapshot evictions lost.
			if s.DroppedOutliers != 8 {
				t.Fatalf("dropped %d, want 8 (only evictions that never reached a model)", s.DroppedOutliers)
			}
			if s.RefreshedOutliers < int64(cut) {
				t.Fatalf("refreshed outliers %d, want >= the %d snapshotted", s.RefreshedOutliers, cut)
			}
			// All 32 refresh-window survivors re-admitted, re-parked, or
			// consumed by the coalesced follow-up refresh — none vanished.
			accounted := s.ReadmittedOutliers + int64(s.PendingOutliers) + (s.RefreshedOutliers - int64(cut))
			if accounted != 32 {
				t.Fatalf("refresh-window survivors unaccounted: %+v", s)
			}
			if s.PendingRefresh {
				t.Fatalf("pending-refresh flag stuck: %+v", s)
			}
			// The refreshed generation must actually describe regime B now.
			probe, _ := regB.batch(32)
			res := st.Ingest(probe)
			placed := 0
			for _, ci := range res.Assignments {
				if ci >= 0 {
					placed++
				}
			}
			if placed < 24 {
				t.Fatalf("refreshed model placed only %d/32 regime-B probes", placed)
			}
			t.Logf("%s: refreshed=%d readmitted=%d pending=%d dropped=%d coalesced=%d refreshes=%d",
				name, s.RefreshedOutliers, s.ReadmittedOutliers, s.PendingOutliers, s.DroppedOutliers, s.CoalescedTriggers, s.Refreshes)
		})
	}
}

// TestRefreshCoalescerRunsFollowUp proves a trigger landing mid-refresh
// is not absorbed: when the re-parked remainder still clears the refresh
// floor after the first swap, exactly one follow-up refresh runs over it.
func TestRefreshCoalescerRunsFollowUp(t *testing.T) {
	g := newRegime(0, 4, 11)
	m := freezeRegime(t, g, 200, 4, 1)
	st, err := New(m, Config{
		Cluster:            core.Config{Theta: soakTheta, K: 6, Seed: 5},
		Serve:              serve.Config{MaxBatch: 1},
		Window:             16,
		Warmup:             16,
		MinRefreshOutliers: 16,
		OutlierBuffer:      256,
		RetainSample:       64,
		Incremental:        true,
		Clock:              vclock.NewFake(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	st.gateRefresh = gate
	st.refreshEntered = make(chan struct{}, 4)

	warm, _ := g.batch(32)
	st.Ingest(warm)
	regB := newRegime(100000, 2, 9)
	bts, _ := regB.batch(24)
	st.Ingest(bts)
	<-st.refreshEntered

	// A THIRD regime parks mid-refresh: the first refresh cannot know
	// these points, they fail the second generation's θ-test too, and
	// the queued follow-up must re-cluster them into generation 3.
	regC := newRegime(200000, 2, 13)
	cts, _ := regC.batch(48)
	st.Ingest(cts)

	close(gate)
	// Both refreshes pass the gate: drain the entered signals so neither
	// blocks on the buffered channel.
	st.Quiesce()
	s := st.Stats()
	assertLedger(t, s)
	if s.CoalescedTriggers != 1 {
		t.Fatalf("coalesced %d triggers, want 1", s.CoalescedTriggers)
	}
	if s.Refreshes != 2 || s.Generation != 3 {
		t.Fatalf("follow-up refresh did not run: %+v", s)
	}
	if s.PendingRefresh || s.Refreshing {
		t.Fatalf("refresh state stuck after follow-up: %+v", s)
	}
	// Generation 3 places the third regime.
	probe, _ := regC.batch(32)
	res := st.Ingest(probe)
	placed := 0
	for _, ci := range res.Assignments {
		if ci >= 0 {
			placed++
		}
	}
	if placed < 24 {
		t.Fatalf("follow-up refresh model placed only %d/32 regime-C probes", placed)
	}
}
