package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/serve"
)

// HTTP surface of the streaming loop. The streamer's handler mounts the
// whole serving stack (POST /assign, GET /healthz, GET /stats,
// POST /-/reload) and adds the two online-loop endpoints:
//
//	POST /ingest   admit a batch of arriving points: assignment through
//	               the pinned generation, outliers parked, drift tracked
//	GET  /streamz  the streaming counters (drift estimate, refresh ledger)
//
// /ingest and /assign accept the same two query representations, but
// differ in vocabulary semantics: /assign translates names per-request
// against the pinned model's frozen vocabulary, while /ingest interns
// unknown names permanently into the streamer's id space — an ingested
// item is part of the stream's universe and may become a real model item
// after the next refresh.

// IngestRequest is the POST /ingest body. Exactly one of Queries (item
// names) or IDs (raw ids in the streamer's id space) must be set.
type IngestRequest struct {
	Queries [][]string `json:"queries,omitempty"`
	IDs     [][]int32  `json:"ids,omitempty"`
}

// IngestResponse answers POST /ingest.
type IngestResponse struct {
	Assignments []int   `json:"assignments"`
	Generation  uint64  `json:"generation"`
	OutlierRate float64 `json:"outlier_rate"`
	Refreshing  bool    `json:"refreshing"`
}

// Handler returns the streamer's HTTP surface: the embedded serving
// stack's endpoints plus POST /ingest and GET /streamz.
func (s *Streamer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.srv.Handler())
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /streamz", s.handleStreamz)
	return mux
}

func (s *Streamer) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.srv.LimitBody(w, r)
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, serve.DecodeStatus(err), fmt.Errorf("decoding request: %w", err))
		return
	}
	var res IngestResult
	switch {
	case req.Queries != nil && req.IDs != nil:
		httpError(w, http.StatusBadRequest, errors.New("request sets both queries and ids; send one"))
		return
	case req.Queries != nil:
		var err error
		res, err = s.IngestNames(req.Queries)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	case req.IDs != nil:
		ts := make([]dataset.Transaction, len(req.IDs))
		for i, q := range req.IDs {
			items := make([]dataset.Item, len(q))
			for j, id := range q {
				if id < 0 {
					httpError(w, http.StatusBadRequest, fmt.Errorf("query %d has negative item id %d", i, id))
					return
				}
				items[j] = dataset.Item(id)
			}
			ts[i] = dataset.NewTransaction(items...)
		}
		res = s.Ingest(ts)
	default:
		httpError(w, http.StatusBadRequest, errors.New("request carries neither queries nor ids"))
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{
		Assignments: res.Assignments,
		Generation:  res.Generation,
		OutlierRate: res.OutlierRate,
		Refreshing:  res.Refreshing,
	})
}

func (s *Streamer) handleStreamz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
