package stream

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/serve"
	"github.com/rockclust/rock/internal/vclock"
)

// regimeGen draws market-basket transactions from per-template item
// pools: template g owns the raw ids [base+64g, base+64g+width), so
// templates are mutually disjoint and two regimes with different bases
// share no items at all — a point of one regime can never be a θ-neighbor
// of the other's, which is what makes the synthetic changepoint crisp.
// Deterministic given its seed.
type regimeGen struct {
	base, templates, width, size int
	rng                          *rand.Rand
}

func newRegime(base, templates int, seed int64) *regimeGen {
	return &regimeGen{base: base, templates: templates, width: 12, size: 8, rng: rand.New(rand.NewSource(seed))}
}

// batch draws n transactions with their generator labels.
func (g *regimeGen) batch(n int) ([]dataset.Transaction, []string) {
	ts := make([]dataset.Transaction, n)
	labels := make([]string, n)
	for i := range ts {
		tpl := g.rng.Intn(g.templates)
		items := make([]dataset.Item, 0, g.size)
		for len(items) < g.size {
			items = append(items, dataset.Item(g.base+tpl*64+g.rng.Intn(g.width)))
		}
		ts[i] = dataset.NewTransaction(items...)
		labels[i] = fmt.Sprintf("b%d-t%d", g.base, tpl)
	}
	return ts, labels
}

// soakTheta is the neighbor threshold every streaming test clusters and
// freezes with: same-template points sit around Jaccard ≈ 0.5, cross
// template at exactly 0.
const soakTheta = 0.35

// freezeRegime clusters n points of the regime and freezes the result —
// the initial model of a streaming test.
func freezeRegime(t testing.TB, g *regimeGen, n, k, workers int) *core.Model {
	t.Helper()
	ts, _ := g.batch(n)
	cfg := core.Config{Theta: soakTheta, K: k, Seed: 1, Workers: workers}
	res, err := core.Cluster(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Freeze(ts, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestIngestMatchesModel pins the admission θ-test: whatever the batcher
// and workers do, Ingest must return exactly what the pinned generation's
// AssignBatch computes, and must count admitted vs parked correctly.
func TestIngestMatchesModel(t *testing.T) {
	g := newRegime(0, 4, 11)
	m := freezeRegime(t, g, 200, 4, 1)
	st, err := New(m, Config{Serve: serve.Config{MaxBatch: 1}, Clock: vclock.NewFake(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}

	in, _ := g.batch(30)
	other, _ := newRegime(50000, 2, 3).batch(10) // disjoint ids: all outliers
	in = append(in, other...)
	want := m.AssignBatch(in, 1)

	res := st.Ingest(in)
	if !reflect.DeepEqual(res.Assignments, want) {
		t.Fatalf("ingest answered %v, model says %v", res.Assignments, want)
	}
	if res.Generation != 1 {
		t.Fatalf("generation %d at startup", res.Generation)
	}
	stats := st.Stats()
	outliers := 0
	for _, ci := range want {
		if ci < 0 {
			outliers++
		}
	}
	if stats.Seen != 40 || stats.Outliers != int64(outliers) || stats.Assigned != int64(40-outliers) {
		t.Fatalf("counters: %+v (want %d outliers of 40)", stats, outliers)
	}
	if stats.PendingOutliers != outliers {
		t.Fatalf("parked %d, want %d", stats.PendingOutliers, outliers)
	}
	if empty := st.Ingest(nil); len(empty.Assignments) != 0 || empty.Generation != 1 {
		t.Fatalf("empty ingest: %+v", empty)
	}
}

// TestOutlierRingBounds proves the parked-outlier buffer is bounded: past
// capacity, the oldest parked point is dropped and counted, never an
// unbounded slice.
func TestOutlierRingBounds(t *testing.T) {
	g := newRegime(0, 4, 11)
	m := freezeRegime(t, g, 200, 4, 1)
	st, err := New(m, Config{Serve: serve.Config{MaxBatch: 1}, OutlierBuffer: 4, RefreshThreshold: 2, Clock: vclock.NewFake(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := newRegime(50000, 2, 3).batch(7) // all outliers
	st.Ingest(out)
	stats := st.Stats()
	if stats.PendingOutliers != 4 || stats.DroppedOutliers != 3 || stats.Outliers != 7 {
		t.Fatalf("ring state: %+v, want 4 pending / 3 dropped / 7 total", stats)
	}
	// The ring holds the NEWEST 4: refresh input must contain them, and
	// the recorded ring cut must cover exactly them.
	st.mu.Lock()
	in := st.refreshInputLocked()
	st.mu.Unlock()
	if len(in.outliers) != 4 || in.cutLen != 4 {
		t.Fatalf("refresh input snapshotted %d outliers (cut %d), want the 4 retained", len(in.outliers), in.cutLen)
	}
	for i, tx := range in.outliers {
		if !tx.Equal(out[3+i]) {
			t.Fatalf("ring slot %d holds the wrong point (want newest-4 in arrival order)", i)
		}
	}
}

// TestIngestNames proves name translation through the streamer-owned
// vocabulary: known names map to the frozen ids, unknown names intern
// permanently (the same name maps to the same fresh id across calls),
// and a vocabless model rejects names.
func TestIngestNames(t *testing.T) {
	// A vocab model: items i0..i? from the regime generator interned in a
	// dataset, clustered and frozen with FreezeDataset.
	g := newRegime(0, 2, 11)
	ts, _ := g.batch(120)
	v := dataset.NewVocabulary()
	d := &dataset.Dataset{Vocab: v}
	for _, tx := range ts {
		items := make([]dataset.Item, len(tx))
		for i, it := range tx {
			items[i] = v.Intern(fmt.Sprintf("i%d", it))
		}
		d.Trans = append(d.Trans, dataset.NewTransaction(items...))
	}
	cfg := core.Config{Theta: soakTheta, K: 2, Seed: 1}
	res, err := core.Cluster(d.Trans, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.FreezeDataset(d, res, cfg)
	if err != nil {
		t.Fatal(err)
	}

	st, err := New(m, Config{Serve: serve.Config{MaxBatch: 1}, RefreshThreshold: 2, Clock: vclock.NewFake(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	// Known names answer like AssignDataset; unknown names dilute.
	known := make([]string, 0, 8)
	for _, it := range d.Trans[0] {
		known = append(known, v.Name(it))
	}
	res1, err := st.IngestNames([][]string{known, {"never-seen", "also-new"}})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Assignments[0] < 0 {
		t.Fatalf("a frozen point's own items answered outlier: %v", res1.Assignments)
	}
	if res1.Assignments[1] != -1 {
		t.Fatalf("unknown-only query assigned %d, want -1", res1.Assignments[1])
	}
	// Interned ids are stable: the same unknown name twice is one id.
	st.mu.Lock()
	id1, ok1 := st.byName["never-seen"]
	n1 := len(st.names)
	st.mu.Unlock()
	if !ok1 {
		t.Fatal("unknown name was not interned")
	}
	if _, err := st.IngestNames([][]string{{"never-seen"}}); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	id2 := st.byName["never-seen"]
	n2 := len(st.names)
	st.mu.Unlock()
	if id1 != id2 || n1 != n2 {
		t.Fatalf("re-ingesting a known-unknown name re-interned it: id %d→%d, vocab %d→%d", id1, id2, n1, n2)
	}

	// Raw-id model: names rejected.
	raw, err := New(freezeRegime(t, newRegime(0, 2, 11), 100, 2, 1), Config{Serve: serve.Config{MaxBatch: 1}, Clock: vclock.NewFake(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.IngestNames([][]string{{"milk"}}); err == nil {
		t.Fatal("vocabless streamer accepted item names")
	}
}

// TestRefreshUsesLSH proves the refresh honors the LSH escape hatch for
// large buffers: with LSHAbove forced to 1, the background re-cluster
// runs the LSH neighbor path and still produces a model that places the
// drifted points.
func TestRefreshUsesLSH(t *testing.T) {
	g := newRegime(0, 2, 11)
	m := freezeRegime(t, g, 200, 2, 1)
	st, err := New(m, Config{
		Cluster:            core.Config{Theta: soakTheta, K: 4, Seed: 5},
		Serve:              serve.Config{MaxBatch: 1},
		Window:             16,
		Warmup:             16,
		MinRefreshOutliers: 16,
		RetainSample:       64,
		LSHAbove:           1,
		Clock:              vclock.NewFake(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the estimator with admitted points, then drift hard.
	warm, _ := g.batch(64)
	st.Ingest(warm)
	drift := newRegime(70000, 2, 9)
	dts, _ := drift.batch(64)
	st.Ingest(dts)
	st.Quiesce()

	stats := st.Stats()
	if stats.Refreshes != 1 || stats.FailedRefreshes != 0 {
		t.Fatalf("refresh ledger: %+v", stats)
	}
	if !stats.LastRefreshLSH {
		t.Fatal("refresh did not take the LSH neighbor path despite LSHAbove=1")
	}
	if stats.Generation != 2 {
		t.Fatalf("generation %d after refresh", stats.Generation)
	}
	probe, _ := drift.batch(32)
	res := st.Ingest(probe)
	placed := 0
	for _, ci := range res.Assignments {
		if ci >= 0 {
			placed++
		}
	}
	if placed < 28 {
		t.Fatalf("refreshed model placed only %d/32 drifted probes", placed)
	}
}

// TestRefreshFailureKeepsServing proves a refresh that cannot produce a
// model (here: every refresh input point pruned as a link-outlier, so
// there is nothing to freeze) counts a failure, keeps the old generation
// serving, and re-arms the detector instead of hot-looping.
func TestRefreshFailureKeepsServing(t *testing.T) {
	g := newRegime(0, 2, 11)
	m := freezeRegime(t, g, 200, 2, 1)
	st, err := New(m, Config{
		// MinNeighbors beyond any neighbor count: the refresh run prunes
		// every point, clusters nothing, and Freeze must reject.
		Cluster:            core.Config{Theta: soakTheta, K: 4, Seed: 5, MinNeighbors: 1 << 20},
		Serve:              serve.Config{MaxBatch: 1},
		Window:             16,
		Warmup:             16,
		MinRefreshOutliers: 8,
		RetainSample:       32,
		Clock:              vclock.NewFake(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	warm, _ := g.batch(32)
	st.Ingest(warm)
	drift, _ := newRegime(70000, 2, 9).batch(48)
	st.Ingest(drift)
	st.Quiesce()

	stats := st.Stats()
	if stats.FailedRefreshes != 1 || stats.Refreshes != 0 {
		t.Fatalf("failure ledger: %+v", stats)
	}
	if stats.Generation != 1 {
		t.Fatalf("failed refresh bumped the generation to %d", stats.Generation)
	}
	// The failure still lands in the refresh ledger: cost and input size
	// are recorded alongside the error, and no follow-up stays queued.
	if stats.LastRefreshError == "" {
		t.Fatalf("failed refresh left no error in the ledger: %+v", stats)
	}
	if stats.LastRefreshPoints <= 0 {
		t.Fatalf("failed refresh recorded no input size: %+v", stats)
	}
	if stats.LastRefreshSec < 0 {
		t.Fatalf("failed refresh recorded negative cost: %+v", stats)
	}
	if stats.PendingRefresh || stats.Refreshing {
		t.Fatalf("failed refresh left the state machine armed: %+v", stats)
	}
	assertLedger(t, stats)
	// Still serving: admitted points keep answering on generation 1.
	ok, _ := g.batch(8)
	res := st.Ingest(ok)
	if res.Generation != 1 {
		t.Fatalf("post-failure generation %d", res.Generation)
	}
	// The estimator re-armed: another drift burst can trigger again (and
	// fail again) only after a fresh warmup window.
	if stats.OutlierRate != 0 {
		t.Fatalf("estimator not reset after failed refresh: %+v", stats)
	}
}
