package stream

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/metrics"
	"github.com/rockclust/rock/internal/serve"
	"github.com/rockclust/rock/internal/vclock"
)

// TestStreamSoak is the streaming loop's proof harness: a deterministic
// virtual-clock soak that drives a stable regime, then a drifted one,
// through the streamer and asserts the three properties the design
// claims, at Workers ∈ {1,4} (run under -race in CI):
//
//  1. Swap safety — every ingested batch is answered by exactly the
//     generation it was pinned to: replaying the batch through that
//     generation's model reproduces the answer bit-for-bit, the pinned
//     generation is never older than the generation current at submit
//     time (no request answered by a retired generation), and every
//     point gets exactly one answer (zero dropped).
//  2. Bounded detection — after the changepoint the drift detector fires
//     within 4·Window points.
//  3. Quality recovery — the refreshed model's accuracy on fresh drifted
//     probes (generator labels, internal/metrics) is within ε = 0.05 of
//     a from-scratch batch run over the drifted regime.
//
// Time is a vclock.Fake and the detector counts points, so there are no
// sleeps and no flakes: reruns are bit-identical. Ingest batches match
// Serve.MaxBatch so every submit size-flushes without clock advance; the
// deadline path gets its own coverage at the end, where a partial batch
// is flushed purely by advancing the fake clock.
func TestStreamSoak(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "workers=1", 4: "workers=4"}[workers], func(t *testing.T) {
			soak(t, workers)
		})
	}
}

// soakBatch records one ingested batch for post-hoc replay.
type soakBatch struct {
	qs        []dataset.Transaction
	out       []int
	genBefore uint64 // serving generation observed just before Ingest
	gen       uint64 // generation that actually answered
}

func soak(t *testing.T, workers int) {
	const (
		batchSize = 16
		window    = 64
	)
	fake := vclock.NewFake(time.Unix(0, 0))

	// Generation ledger: OnSwap registers every model that ever served, so
	// replay can ask "what would generation g have answered?".
	var genMu sync.Mutex
	genModels := map[uint64]*core.Model{}

	regA := newRegime(0, 4, 11)
	m := freezeRegime(t, regA, 400, 4, workers)
	st, err := New(m, Config{
		Cluster:            core.Config{Theta: soakTheta, K: 8, Seed: 5, Workers: workers},
		Serve:              serve.Config{MaxBatch: batchSize, FlushEvery: 50 * time.Millisecond, Workers: workers},
		RefreshThreshold:   0.5,
		Window:             window,
		Warmup:             window,
		MinRefreshOutliers: 48,
		OutlierBuffer:      256,
		RetainSample:       256,
		Seed:               7,
		Clock:              fake,
		OnSwap: func(gen uint64, m *core.Model) {
			genMu.Lock()
			genModels[gen] = m
			genMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var records []soakBatch
	ingest := func(g *regimeGen) ([]int, []string) {
		qs, labels := g.batch(batchSize)
		genBefore := st.Generation()
		res := st.Ingest(qs)
		if len(res.Assignments) != len(qs) {
			t.Fatalf("ingest dropped points: %d answers for %d queries", len(res.Assignments), len(qs))
		}
		records = append(records, soakBatch{qs: qs, out: res.Assignments, genBefore: genBefore, gen: res.Generation})
		return res.Assignments, labels
	}

	// --- Phase 1: stable regime. The frozen model describes the stream;
	// no refresh may trigger. ---
	for i := 0; i < 40; i++ {
		ingest(regA)
	}
	s1 := st.Stats()
	if s1.Refreshes != 0 || s1.Refreshing {
		t.Fatalf("stable phase triggered a refresh: %+v", s1)
	}
	if s1.OutlierRate > 0.2 {
		t.Fatalf("stable phase outlier rate %.3f", s1.OutlierRate)
	}
	if s1.Generation != 1 {
		t.Fatalf("stable phase ended on generation %d", s1.Generation)
	}
	changepoint := s1.Seen

	// --- Phase 2: drifted regime (disjoint item universe — every point is
	// an outlier to generation 1). The detector must fire within 4·Window
	// points of the changepoint. ---
	regB := newRegime(100000, 4, 13)
	triggered := false
	for i := 0; i < 4*window/batchSize && !triggered; i++ {
		ingest(regB)
		triggered = st.Stats().LastTriggerSeen > changepoint
	}
	s2 := st.Stats()
	if !triggered {
		t.Fatalf("drift detector never fired within %d points of the changepoint: %+v", 4*window, s2)
	}
	if delay := s2.LastTriggerSeen - changepoint; delay > 4*window {
		t.Fatalf("detection delay %d points, bound %d", delay, 4*window)
	}

	// Keep ingesting while the background refresh runs — these batches
	// race the swap and must land cleanly on whichever generation they
	// pin (this is the traffic that crosses the swap boundary).
	for i := 0; i < 6; i++ {
		ingest(regB)
	}
	st.Quiesce()
	s3 := st.Stats()
	assertLedger(t, s3)
	if s3.Refreshes != 1 || s3.FailedRefreshes != 0 {
		t.Fatalf("refresh ledger after drift: %+v", s3)
	}
	if s3.Generation != 2 {
		t.Fatalf("generation %d after refresh, want 2", s3.Generation)
	}
	if s3.LastRefreshPoints == 0 {
		t.Fatalf("refresh ledger recorded no input points: %+v", s3)
	}

	// --- Phase 3: the drifted regime is now the stable one. The refreshed
	// model absorbs it and the detector must NOT re-fire. ---
	for i := 0; i < 30; i++ {
		ingest(regB)
	}
	s4 := st.Stats()
	if s4.Refreshes != 1 {
		t.Fatalf("detector re-fired on the regime it just absorbed: %+v", s4)
	}
	if s4.OutlierRate > 0.2 {
		t.Fatalf("post-refresh outlier rate %.3f — the refreshed model does not describe the drifted regime", s4.OutlierRate)
	}

	// --- Quality recovery: fresh drifted probes through the live path vs
	// a from-scratch batch run over the drifted regime. ---
	probes := newRegime(100000, 4, 17)
	var streamAssign []int
	var probeLabels []string
	var probeQs []dataset.Transaction
	for i := 0; i < 25; i++ {
		out, labels := ingest(probes)
		streamAssign = append(streamAssign, out...)
		probeLabels = append(probeLabels, labels...)
		probeQs = append(probeQs, records[len(records)-1].qs...)
	}
	accStream := metrics.Evaluate(streamAssign, probeLabels).Accuracy

	trainB, _ := newRegime(100000, 4, 19).batch(512)
	bcfg := core.Config{Theta: soakTheta, K: 4, Seed: 3, Workers: workers}
	bres, err := core.Cluster(trainB, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := core.Freeze(trainB, bres, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	accBatch := metrics.Evaluate(bm.AssignBatch(probeQs, 1), probeLabels).Accuracy
	const eps = 0.05
	if accStream < accBatch-eps {
		t.Fatalf("post-refresh accuracy %.4f, from-scratch batch run %.4f — recovery gap exceeds ε=%.2f", accStream, accBatch, eps)
	}
	t.Logf("quality: stream %.4f vs batch %.4f (ε=%.2f); detection delay %d points",
		accStream, accBatch, eps, s2.LastTriggerSeen-changepoint)

	// --- Deadline path: a partial batch (smaller than MaxBatch) must
	// flush purely by virtual-clock advance, answered exactly once. ---
	partQs, _ := regB.batch(5)
	done := make(chan IngestResult, 1)
	go func() { done <- st.Ingest(partQs) }()
	var part IngestResult
	for received := false; !received; {
		select {
		case part = <-done:
			received = true
		default:
			fake.Advance(50 * time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	}
	if len(part.Assignments) != len(partQs) {
		t.Fatalf("deadline flush answered %d of %d queries", len(part.Assignments), len(partQs))
	}
	records = append(records, soakBatch{qs: partQs, out: part.Assignments, genBefore: 2, gen: part.Generation})

	// --- Replay: the swap-safety ledger. ---
	st.Quiesce()
	assertLedger(t, st.Stats())
	genMu.Lock()
	defer genMu.Unlock()
	total := int64(0)
	for i, rec := range records {
		total += int64(len(rec.qs))
		if rec.gen < rec.genBefore {
			t.Fatalf("batch %d answered by retired generation %d (generation %d was current at submit)", i, rec.gen, rec.genBefore)
		}
		gm := genModels[rec.gen]
		if gm == nil {
			t.Fatalf("batch %d answered by unknown generation %d", i, rec.gen)
		}
		if want := gm.AssignBatch(rec.qs, 1); !reflect.DeepEqual(want, rec.out) {
			t.Fatalf("batch %d misattributed: generation %d's model answers %v, streamer returned %v", i, rec.gen, want, rec.out)
		}
	}
	if got := st.Stats().Seen; got != total {
		t.Fatalf("streamer saw %d points, test ingested %d — points dropped or double-counted", got, total)
	}
}

// TestStreamSoakIncremental drives TWO regime changes through the
// incremental refresh path and proves the seeded re-cluster earns its
// keep: every refresh runs seeded (zero fallbacks to the full path), the
// refresh input stays bounded by the frozen model's representatives plus
// the outlier ring (instead of the whole retained reservoir), the
// outlier conservation ledger balances at every quiesce point across
// both changepoints, and the final model still serves the FIRST regime
// — the seed carries old clusters across refreshes that a from-scratch
// re-cluster over recent traffic would forget. Quality on the newest
// regime must match a from-scratch batch run within the same ε as the
// full-path soak.
func TestStreamSoakIncremental(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "workers=1", 4: "workers=4"}[workers], func(t *testing.T) {
			soakIncremental(t, workers)
		})
	}
}

func soakIncremental(t *testing.T, workers int) {
	const (
		batchSize = 16
		window    = 64
	)
	fake := vclock.NewFake(time.Unix(0, 0))

	var genMu sync.Mutex
	genModels := map[uint64]*core.Model{}

	regA := newRegime(0, 4, 11)
	m := freezeRegime(t, regA, 400, 4, workers)
	st, err := New(m, Config{
		Cluster:            core.Config{Theta: soakTheta, K: 8, Seed: 5, Workers: workers},
		Serve:              serve.Config{MaxBatch: batchSize, FlushEvery: 50 * time.Millisecond, Workers: workers},
		RefreshThreshold:   0.5,
		Window:             window,
		Warmup:             window,
		MinRefreshOutliers: 48,
		OutlierBuffer:      256,
		RetainSample:       256,
		Incremental:        true,
		Seed:               7,
		Clock:              fake,
		OnSwap: func(gen uint64, m *core.Model) {
			genMu.Lock()
			genModels[gen] = m
			genMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var records []soakBatch
	ingest := func(g *regimeGen) ([]int, []string) {
		qs, labels := g.batch(batchSize)
		genBefore := st.Generation()
		res := st.Ingest(qs)
		if len(res.Assignments) != len(qs) {
			t.Fatalf("ingest dropped points: %d answers for %d queries", len(res.Assignments), len(qs))
		}
		records = append(records, soakBatch{qs: qs, out: res.Assignments, genBefore: genBefore, gen: res.Generation})
		return res.Assignments, labels
	}
	// driftUntil pushes a drifted regime until the detector fires, then
	// quiesces and checks the refresh landed incrementally with the
	// ledger balanced. Returns the refresh-input bound check input.
	driftUntil := func(g *regimeGen, wantRefreshes int64, wantGen uint64) Stats {
		changepoint := st.Stats().Seen
		// Bound on the NEXT refresh's input: the seed model's labeled
		// representatives plus at most a full outlier ring.
		inputBound := st.srv.Model().LabeledPoints() + 256
		triggered := false
		for i := 0; i < 4*window/batchSize && !triggered; i++ {
			ingest(g)
			triggered = st.Stats().LastTriggerSeen > changepoint
		}
		if !triggered {
			t.Fatalf("drift detector never fired within %d points of changepoint %d", 4*window, changepoint)
		}
		for i := 0; i < 6; i++ {
			ingest(g) // traffic crossing the swap boundary
		}
		st.Quiesce()
		s := st.Stats()
		assertLedger(t, s)
		if s.Refreshes != wantRefreshes || s.FailedRefreshes != 0 {
			t.Fatalf("refresh ledger: %+v, want %d refreshes", s, wantRefreshes)
		}
		if !s.LastRefreshIncremental || s.IncrementalFallbacks != 0 {
			t.Fatalf("refresh fell back to the full path: %+v", s)
		}
		if s.Generation != wantGen {
			t.Fatalf("generation %d, want %d", s.Generation, wantGen)
		}
		if s.LastRefreshPoints > inputBound {
			t.Fatalf("incremental refresh input %d exceeds seed+ring bound %d — it re-clustered the reservoir", s.LastRefreshPoints, inputBound)
		}
		return s
	}

	// Stable regime A, then two successive regime changes, each absorbed
	// by a seeded refresh: gen 1 → 2 → 3.
	for i := 0; i < 30; i++ {
		ingest(regA)
	}
	if s := st.Stats(); s.Refreshes != 0 || s.Generation != 1 {
		t.Fatalf("stable phase: %+v", s)
	}
	regB := newRegime(100000, 4, 13)
	driftUntil(regB, 1, 2)
	for i := 0; i < 20; i++ {
		ingest(regB) // B is the stable regime now; detector must settle
	}
	regC := newRegime(200000, 4, 23)
	s := driftUntil(regC, 2, 3)
	if s.Refreshes != 2 {
		t.Fatalf("second regime change not absorbed: %+v", s)
	}

	// Quality on the newest regime: live path vs from-scratch batch run.
	probes := newRegime(200000, 4, 17)
	var streamAssign []int
	var probeLabels []string
	var probeQs []dataset.Transaction
	for i := 0; i < 25; i++ {
		out, labels := ingest(probes)
		streamAssign = append(streamAssign, out...)
		probeLabels = append(probeLabels, labels...)
		probeQs = append(probeQs, records[len(records)-1].qs...)
	}
	accStream := metrics.Evaluate(streamAssign, probeLabels).Accuracy

	trainC, _ := newRegime(200000, 4, 19).batch(512)
	bcfg := core.Config{Theta: soakTheta, K: 4, Seed: 3, Workers: workers}
	bres, err := core.Cluster(trainC, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := core.Freeze(trainC, bres, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	accBatch := metrics.Evaluate(bm.AssignBatch(probeQs, 1), probeLabels).Accuracy
	const eps = 0.05
	if accStream < accBatch-eps {
		t.Fatalf("post-swap accuracy %.4f, from-scratch batch run %.4f — gap exceeds ε=%.2f", accStream, accBatch, eps)
	}

	// Memory: the generation-3 model was seeded from generation 2, which
	// was seeded from generation 1 — regime A's clusters survived two
	// refreshes it never appeared in. A from-scratch re-cluster over the
	// refresh window would have forgotten A entirely.
	aProbes, _ := newRegime(0, 4, 29).batch(64)
	res := st.Ingest(aProbes)
	records = append(records, soakBatch{qs: aProbes, out: res.Assignments, genBefore: 3, gen: res.Generation})
	placed := 0
	for _, ci := range res.Assignments {
		if ci >= 0 {
			placed++
		}
	}
	if placed < 48 {
		t.Fatalf("generation 3 placed only %d/64 regime-A probes — the seed lost the original clusters", placed)
	}
	t.Logf("quality: stream %.4f vs batch %.4f; regime-A memory %d/64 placed", accStream, accBatch, placed)

	// Replay: swap safety across both changepoints.
	st.Quiesce()
	assertLedger(t, st.Stats())
	genMu.Lock()
	defer genMu.Unlock()
	total := int64(0)
	for i, rec := range records {
		total += int64(len(rec.qs))
		if rec.gen < rec.genBefore {
			t.Fatalf("batch %d answered by retired generation %d (generation %d was current at submit)", i, rec.gen, rec.genBefore)
		}
		gm := genModels[rec.gen]
		if gm == nil {
			t.Fatalf("batch %d answered by unknown generation %d", i, rec.gen)
		}
		if want := gm.AssignBatch(rec.qs, 1); !reflect.DeepEqual(want, rec.out) {
			t.Fatalf("batch %d misattributed: generation %d's model answers %v, streamer returned %v", i, rec.gen, want, rec.out)
		}
	}
	if got := st.Stats().Seen; got != total {
		t.Fatalf("streamer saw %d points, test ingested %d — points dropped or double-counted", got, total)
	}
}
