// Package stream runs the paper's "cluster a sample, label the rest"
// loop forever: a long-lived Streamer admits arriving points against the
// currently frozen rock model (the labeling phase's θ-test, served
// through the coalescing batcher of internal/serve), parks the points the
// model cannot place in a bounded outlier buffer, and watches a windowed
// estimate of the outlier rate. When the rate crosses the refresh
// threshold — the frozen model no longer describes the arriving
// distribution — the streamer re-clusters a retained sample of admitted
// points together with the accumulated outliers in the background,
// freezes the result, and swaps it in atomically through the serving
// stack's generation-refcount machinery. Assignment traffic never stops:
// requests pinned to the retiring generation finish on it, new requests
// land on the refreshed model, and no request is ever dropped or answered
// by a generation it was not pinned to.
//
// The admission test is Squeezer-shaped (one pass, compare the arriving
// point against per-cluster summaries, admit or park), but the summary is
// ROCK's own labeling index, so admission is bit-identical to what the
// offline labeling phase would have decided. Drift detection is measured
// in points, not wall time: the EWMA over the last ~Window indicators is
// deterministic for a given point sequence, which is what lets the soak
// tests assert a bounded detection delay with no sleeps and no flakes.
//
// Item id discipline: the streamer owns the id space. A model frozen with
// a vocabulary seeds the streamer's name→id table; names never seen
// before are interned permanently (monotonically growing ids), so parked
// outliers, the retained sample, and every query live in ONE id space
// across generations — a refreshed model is frozen over that same space,
// which is what makes "cluster the outliers later" coherent. Models
// frozen from raw ids skip translation; callers must then send ids.
package stream

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/serve"
	"github.com/rockclust/rock/internal/similarity"
	"github.com/rockclust/rock/internal/vclock"
)

// Config parameterizes a Streamer. The zero value works: every field has
// a default, and the refresh clustering parameters are inherited from the
// initial model.
type Config struct {
	// Cluster parameterizes the background re-cluster runs. Zero Theta,
	// K, and Measure inherit the initial model's frozen values; Workers,
	// sampling, and the phase-crossover knobs apply as in core.Cluster.
	// The measure must be (or default to) a built-in similarity — the
	// refreshed model has to freeze.
	Cluster core.Config
	// Serve parameterizes the embedded serving stack (batch size, flush
	// deadline, AssignBatch workers, drain timeout). Its Clock defaults
	// to Config.Clock.
	Serve serve.Config

	// RefreshThreshold is the outlier-rate level that triggers a
	// background refresh (default 0.5). A threshold above 1 disables the
	// detector — the rate estimate never exceeds 1.
	RefreshThreshold float64
	// Window is the effective width, in points, of the outlier-rate
	// EWMA (default 512).
	Window int
	// Warmup is how many points the estimator must absorb after a reset
	// before the detector may fire (default Window). Prevents the first
	// few arrivals from triggering a refresh off a seed estimate.
	Warmup int
	// MinRefreshOutliers is the fewest parked outliers a refresh needs
	// (default 32) — re-clustering a near-empty buffer cannot improve
	// the model.
	MinRefreshOutliers int
	// OutlierBuffer bounds the parked-outlier ring (default 4096). When
	// full, the oldest parked point is dropped and counted in
	// Stats.DroppedOutliers.
	OutlierBuffer int
	// RetainSample bounds the reservoir of admitted points retained as
	// re-clustering context (default 4096). The reservoir is a uniform
	// sample of everything admitted so far, seeded by Seed.
	RetainSample int
	// LSHAbove switches the refresh run's neighbor phase to the LSH
	// pipeline when the re-cluster input (reservoir + outliers) reaches
	// this many points (default 50000; negative disables).
	LSHAbove int
	// Incremental switches the background refresh to the seeded
	// re-cluster: the frozen model's labeled clusters seed the
	// agglomeration arena (core.ClusterSeeded) and only the parked
	// outliers enter as new points, so the refresh input is
	// reps+outliers instead of reservoir+outliers — typically an order
	// of magnitude smaller. When the seeded run rejects the refresh
	// config or fails, the refresh falls back to the full re-cluster in
	// the same attempt and counts Stats.IncrementalFallbacks. Default
	// false (full re-cluster over the retained sample).
	Incremental bool
	// Seed drives the retained-sample reservoir and the refresh runs'
	// randomized steps.
	Seed int64

	// Clock supplies all timing (nil = vclock.Real). Tests inject a
	// vclock.Fake so the batcher deadlines and refresh bookkeeping are
	// deterministic.
	Clock vclock.Clock
	// OnSwap, when set, is called once with the initial model at
	// generation 1, then after every refresh with the newly serving
	// generation and model — the hook the soak tests use to verify no
	// assignment was ever misattributed, and rockserve uses to log.
	OnSwap func(gen uint64, m *core.Model)
}

// withDefaults fills the zero fields (the Cluster inheritance needs the
// initial model and happens in New).
func (c Config) withDefaults() Config {
	if c.RefreshThreshold <= 0 {
		c.RefreshThreshold = 0.5
	}
	if c.Window <= 0 {
		c.Window = 512
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Window
	}
	if c.MinRefreshOutliers <= 0 {
		c.MinRefreshOutliers = 32
	}
	if c.OutlierBuffer <= 0 {
		c.OutlierBuffer = 4096
	}
	if c.RetainSample <= 0 {
		c.RetainSample = 4096
	}
	if c.LSHAbove == 0 {
		c.LSHAbove = 50000
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	if c.Serve.Clock == nil {
		c.Serve.Clock = c.Clock
	}
	return c
}

// IngestResult answers one Ingest call.
type IngestResult struct {
	// Assignments holds one cluster index per ingested point in input
	// order, -1 for points parked as outliers — exactly what the
	// answering generation's Model.AssignBatch computes.
	Assignments []int
	// Generation identifies the model generation that answered.
	Generation uint64
	// OutlierRate is the windowed outlier-rate estimate after this
	// batch.
	OutlierRate float64
	// Refreshing reports whether a background refresh was in flight
	// when the batch completed.
	Refreshing bool
}

// Stats snapshots the streaming loop for monitoring and the soak tests.
//
// The outlier ledger is loss-proof by construction: once no refresh is
// in flight, every parked point (Outliers) is in exactly one bucket —
// still in the ring (PendingOutliers), consumed by a completed refresh
// (RefreshedOutliers), re-admitted into a refreshed generation
// (ReadmittedOutliers), or evicted without ever reaching a model
// (DroppedOutliers):
//
//	Outliers == RefreshedOutliers + ReadmittedOutliers +
//	            PendingOutliers + DroppedOutliers
//
// The soak tests assert the identity at every quiesce point.
type Stats struct {
	Generation  uint64  `json:"generation"`
	Seen        int64   `json:"seen"`
	Assigned    int64   `json:"assigned"`
	Outliers    int64   `json:"outliers"`
	OutlierRate float64 `json:"outlier_rate"`

	PendingOutliers    int   `json:"pending_outliers"`
	DroppedOutliers    int64 `json:"dropped_outliers"`
	RefreshedOutliers  int64 `json:"refreshed_outliers"`
	ReadmittedOutliers int64 `json:"readmitted_outliers"`
	RetainedSample     int   `json:"retained_sample"`

	Refreshing             bool    `json:"refreshing"`
	PendingRefresh         bool    `json:"pending_refresh"`
	Refreshes              int64   `json:"refreshes"`
	FailedRefreshes        int64   `json:"failed_refreshes"`
	CoalescedTriggers      int64   `json:"coalesced_triggers"`
	IncrementalFallbacks   int64   `json:"incremental_fallbacks"`
	LastTriggerSeen        int64   `json:"last_trigger_seen"`
	LastRefreshPoints      int     `json:"last_refresh_points"`
	LastRefreshLSH         bool    `json:"last_refresh_lsh"`
	LastRefreshIncremental bool    `json:"last_refresh_incremental"`
	LastRefreshSec         float64 `json:"last_refresh_sec"`
	LastSwapPauseSec       float64 `json:"last_swap_pause_sec"`
	LastRefreshError       string  `json:"last_refresh_error,omitempty"`
}

// Streamer is the long-lived ingestion loop. Create one with New; Ingest,
// IngestNames, Stats, and Quiesce are safe for concurrent use.
type Streamer struct {
	cfg   Config
	srv   *serve.Server
	clock vclock.Clock

	mu              sync.Mutex
	names           []string                // streamer-owned vocabulary; nil = raw-id mode
	byName          map[string]dataset.Item // name → id over names
	est             *rateEWMA               // windowed outlier-rate estimate
	rng             *rand.Rand              // reservoir replacement draws
	outRing         []dataset.Transaction   // parked-outlier ring, len == OutlierBuffer
	outHead, outLen int
	reservoir       []dataset.Transaction // retained sample of admitted points
	resSeen         int64                 // admitted points offered to the reservoir

	seen, admitted, parked, dropped int64
	refreshed, readmitted           int64 // ring points consumed by refreshes / re-admitted after a swap
	refreshing                      bool
	refreshPending                  bool  // a trigger landed mid-refresh; run one follow-up
	dropsAtTrigger                  int64 // s.dropped when the in-flight refresh snapshotted the ring
	refreshWG                       sync.WaitGroup

	refreshes, failedRefreshes int64
	coalescedTriggers          int64
	incrementalFallbacks       int64
	lastTriggerSeen            int64
	lastRefreshPoints          int
	lastRefreshLSH             bool
	lastRefreshIncremental     bool
	lastRefreshSec             float64
	lastSwapPauseSec           float64
	lastRefreshErr             string

	// Test seams: when gateRefresh is non-nil, every refresh goroutine
	// signals refreshEntered (if non-nil) and then blocks until
	// gateRefresh is closed — how the retention tests hold a refresh
	// mid-flight while parking more points. Both must be set before the
	// first Ingest and never mutated afterwards.
	gateRefresh    chan struct{}
	refreshEntered chan struct{}
}

// New builds a Streamer serving the given initial model at generation 1.
// Refresh clustering parameters left zero in cfg.Cluster inherit the
// model's frozen θ, cluster count, and measure.
func New(m *core.Model, cfg Config) (*Streamer, error) {
	cfg = cfg.withDefaults()
	cc := &cfg.Cluster
	if cc.Theta == 0 {
		cc.Theta = m.Theta()
	}
	if cc.K == 0 {
		cc.K = m.K()
	}
	if cc.Measure == nil {
		cc.Measure = similarity.ByName(m.MeasureName())
	}
	// The refresh input is already a bounded subsample (reservoir +
	// outlier ring), and the drifted regime's points in it are few by
	// construction — subsampling AGAIN at labeling time would leave the
	// new clusters with one or two labeled points and gut admission
	// quality. Label with whole clusters unless the caller says otherwise;
	// MaxLabelPoints still caps the per-cluster cost.
	if cc.LabelFraction == 0 {
		cc.LabelFraction = 1
	}
	if err := cc.Validate(); err != nil {
		return nil, fmt.Errorf("stream: refresh config: %w", err)
	}
	if similarity.Name(cc.Measure) == "" {
		return nil, fmt.Errorf("stream: refresh measure must be a built-in similarity — the refreshed model has to freeze")
	}
	s := &Streamer{
		cfg:     cfg,
		srv:     serve.New(m, cfg.Serve),
		clock:   cfg.Clock,
		est:     newRateEWMA(cfg.Window),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		outRing: make([]dataset.Transaction, cfg.OutlierBuffer),
	}
	if items := m.Items(); items != nil {
		s.names = items
		s.byName = make(map[string]dataset.Item, len(items))
		for id, name := range items {
			s.byName[name] = dataset.Item(id)
		}
	}
	if cfg.OnSwap != nil {
		cfg.OnSwap(1, m)
	}
	return s, nil
}

// Server exposes the embedded serving stack: its Handler carries the
// /assign, /healthz, /stats, and /-/reload endpoints, and its Stats the
// batching counters. Swapping models through it directly is the
// streamer's job — use the refresh machinery, not Server.Swap.
func (s *Streamer) Server() *serve.Server { return s.srv }

// Generation returns the currently serving model generation.
func (s *Streamer) Generation() uint64 { return s.srv.Generation() }

// Ingest admits one batch of arriving points, already in the streamer's
// item id space. Every point is assigned through the coalescing batcher
// against one pinned model generation; points the θ-test cannot place are
// parked in the outlier buffer and move the drift estimate. Crossing the
// refresh threshold starts (at most one) background re-cluster; Ingest
// never blocks on it.
func (s *Streamer) Ingest(ts []dataset.Transaction) IngestResult {
	if len(ts) == 0 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return IngestResult{Assignments: []int{}, Generation: s.srv.Generation(), OutlierRate: s.est.value(), Refreshing: s.refreshing}
	}
	out, gen := s.srv.Submit(ts)

	s.mu.Lock()
	for i, ci := range out {
		s.seen++
		if ci < 0 {
			s.parked++
			s.est.observe(1)
			s.parkLocked(ts[i].Clone())
		} else {
			s.admitted++
			s.est.observe(0)
			s.retainLocked(ts[i])
		}
	}
	rate := s.est.value()
	if s.est.count() >= int64(s.cfg.Warmup) &&
		rate >= s.cfg.RefreshThreshold &&
		s.outLen >= s.cfg.MinRefreshOutliers {
		if !s.refreshing {
			s.triggerLocked()
		} else if !s.refreshPending {
			// A trigger landing mid-refresh queues exactly one follow-up:
			// the in-flight refresh cannot see the points parked after its
			// snapshot, so when it finishes (and the ring is still worth
			// re-clustering) one more refresh runs over them.
			s.refreshPending = true
			s.coalescedTriggers++
		}
	}
	refreshing := s.refreshing
	s.mu.Unlock()
	return IngestResult{Assignments: out, Generation: gen, OutlierRate: rate, Refreshing: refreshing}
}

// IngestNames is Ingest for points arriving as item names: names
// translate through the streamer's own vocabulary, and names never seen
// before are interned permanently so the id space stays stable across
// refreshes. Requires an initial model frozen with a vocabulary.
func (s *Streamer) IngestNames(queries [][]string) (IngestResult, error) {
	s.mu.Lock()
	if s.byName == nil {
		s.mu.Unlock()
		return IngestResult{}, fmt.Errorf("stream: model was frozen without a vocabulary; ingest ids instead of item names")
	}
	ts := make([]dataset.Transaction, len(queries))
	items := make([]dataset.Item, 0, 32)
	for i, q := range queries {
		items = items[:0]
		for _, name := range q {
			id, ok := s.byName[name]
			if !ok {
				id = dataset.Item(len(s.names))
				s.names = append(s.names, name)
				s.byName[name] = id
			}
			items = append(items, id)
		}
		ts[i] = dataset.NewTransaction(items...)
	}
	s.mu.Unlock()
	return s.Ingest(ts), nil
}

// Quiesce blocks until no background refresh is in flight — the hook the
// deterministic tests and graceful shutdown use to join the swap.
func (s *Streamer) Quiesce() { s.refreshWG.Wait() }

// Stats snapshots the streaming counters.
func (s *Streamer) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Generation:  s.srv.Generation(),
		Seen:        s.seen,
		Assigned:    s.admitted,
		Outliers:    s.parked,
		OutlierRate: s.est.value(),

		PendingOutliers:    s.outLen,
		DroppedOutliers:    s.dropped,
		RefreshedOutliers:  s.refreshed,
		ReadmittedOutliers: s.readmitted,
		RetainedSample:     len(s.reservoir),

		Refreshing:             s.refreshing,
		PendingRefresh:         s.refreshPending,
		Refreshes:              s.refreshes,
		FailedRefreshes:        s.failedRefreshes,
		CoalescedTriggers:      s.coalescedTriggers,
		IncrementalFallbacks:   s.incrementalFallbacks,
		LastTriggerSeen:        s.lastTriggerSeen,
		LastRefreshPoints:      s.lastRefreshPoints,
		LastRefreshLSH:         s.lastRefreshLSH,
		LastRefreshIncremental: s.lastRefreshIncremental,
		LastRefreshSec:         s.lastRefreshSec,
		LastSwapPauseSec:       s.lastSwapPauseSec,
		LastRefreshError:       s.lastRefreshErr,
	}
}

// parkLocked appends one unplaceable point to the outlier ring, dropping
// the oldest parked point when the ring is full. Caller holds s.mu.
func (s *Streamer) parkLocked(t dataset.Transaction) {
	n := len(s.outRing)
	if s.outLen < n {
		s.outRing[(s.outHead+s.outLen)%n] = t
		s.outLen++
		return
	}
	s.outRing[s.outHead] = t
	s.outHead = (s.outHead + 1) % n
	s.dropped++
}

// retainLocked offers one admitted point to the retained-sample
// reservoir (classic reservoir sampling, seeded). Caller holds s.mu.
func (s *Streamer) retainLocked(t dataset.Transaction) {
	s.resSeen++
	if len(s.reservoir) < s.cfg.RetainSample {
		s.reservoir = append(s.reservoir, t.Clone())
		return
	}
	if j := s.rng.Int63n(s.resSeen); j < int64(s.cfg.RetainSample) {
		s.reservoir[j] = t.Clone()
	}
}

// refreshInput is the snapshot a refresh runs over: the retained sample
// and the parked outliers at trigger time, the vocabulary as of then,
// the generation being refreshed (its labeled clusters seed the
// incremental path), and cutLen — how many ring entries the snapshot
// consumed, so the swap clears exactly that prefix and nothing parked
// after it.
type refreshInput struct {
	reservoir []dataset.Transaction
	outliers  []dataset.Transaction // the ring's first cutLen entries, oldest first
	names     []string
	model     *core.Model
	cutLen    int
}

// triggerLocked starts the background refresh: record the trigger point
// and the drop count (the drop-reversal accounting in
// settleRingLocked needs it), snapshot the input, and launch the
// goroutine. Caller holds s.mu; s.refreshing must be false.
func (s *Streamer) triggerLocked() {
	s.refreshing = true
	s.refreshPending = false
	s.lastTriggerSeen = s.seen
	s.dropsAtTrigger = s.dropped
	in := s.refreshInputLocked()
	s.refreshWG.Add(1)
	go s.refresh(in)
}

// refreshInputLocked snapshots the re-cluster input. Transactions are
// immutable, so sharing them with the background run is safe — later
// ingests replace ring slots, never mutate contents. Caller holds s.mu.
func (s *Streamer) refreshInputLocked() refreshInput {
	in := refreshInput{
		reservoir: append([]dataset.Transaction(nil), s.reservoir...),
		outliers:  make([]dataset.Transaction, 0, s.outLen),
		model:     s.srv.Model(),
		cutLen:    s.outLen,
	}
	for i := 0; i < s.outLen; i++ {
		in.outliers = append(in.outliers, s.outRing[(s.outHead+i)%len(s.outRing)])
	}
	if s.names != nil {
		in.names = append([]string(nil), s.names...)
	}
	return in
}

// refresh is the background re-cluster → freeze → swap arc. It runs on
// its own goroutine; ingestion keeps answering from the old generation
// until the swap, and the swap itself completes every request pinned to
// the retiring generation before the drain is reported. On success the
// snapshotted ring prefix clears (those points are in the new model),
// the points parked during the refresh window re-admit through the new
// generation's θ-test (re-parked when they still fail), and the drift
// estimator resets, re-arming the detector over a fresh warmup window.
// A failed re-cluster leaves the old model serving, records the attempt
// in the ledger (duration, size, error string), and resets the
// estimator as a cooldown so the detector cannot hot-loop; a queued
// follow-up is absorbed by the cooldown too.
func (s *Streamer) refresh(in refreshInput) {
	defer s.refreshWG.Done()
	if s.gateRefresh != nil {
		if s.refreshEntered != nil {
			s.refreshEntered <- struct{}{}
		}
		<-s.gateRefresh
	}
	start := s.clock.Now()

	m, incremental, npts, lsh, err := s.recluster(in)
	if err != nil {
		s.mu.Lock()
		s.failedRefreshes++
		s.lastRefreshPoints = npts
		s.lastRefreshLSH = lsh
		s.lastRefreshIncremental = incremental
		s.lastRefreshSec = s.clock.Now().Sub(start).Seconds()
		s.lastRefreshErr = err.Error()
		s.est.reset()
		s.refreshPending = false
		s.refreshing = false
		s.mu.Unlock()
		return
	}

	swapStart := s.clock.Now()
	gen, _ := s.srv.Swap(m)
	pause := s.clock.Now().Sub(swapStart)
	if s.cfg.OnSwap != nil {
		s.cfg.OnSwap(gen, m)
	}

	s.mu.Lock()
	s.refreshes++
	s.lastRefreshPoints = npts
	s.lastRefreshLSH = lsh
	s.lastRefreshIncremental = incremental
	s.lastRefreshSec = s.clock.Now().Sub(start).Seconds()
	s.lastSwapPauseSec = pause.Seconds()
	s.lastRefreshErr = ""
	survivors := s.settleRingLocked(in.cutLen)
	s.est.reset()
	s.readmitLocked(survivors)
	s.finishRefreshLocked()
	s.mu.Unlock()
}

// recluster builds the refreshed model from the snapshot: the seeded
// incremental path when configured (old generation's labeled clusters +
// the snapshotted outliers), falling back to the full re-cluster over
// reservoir+outliers when the seeded run rejects the config or fails.
// Called without s.mu held.
func (s *Streamer) recluster(in refreshInput) (m *core.Model, incremental bool, npts int, lsh bool, err error) {
	if s.cfg.Incremental {
		reps, groups := in.model.LabeledGroups()
		pts := append(reps, in.outliers...)
		npts = len(pts)
		rcfg := s.cfg.Cluster
		lsh = s.cfg.LSHAbove >= 0 && npts >= s.cfg.LSHAbove
		if lsh {
			rcfg.LSHNeighbors = true
		}
		m, err = seededFreeze(pts, groups, in.names, rcfg)
		if err == nil {
			return m, true, npts, lsh, nil
		}
		s.mu.Lock()
		s.incrementalFallbacks++
		s.lastRefreshErr = err.Error() // overwritten by the fallback's outcome
		s.mu.Unlock()
	}
	sample := make([]dataset.Transaction, 0, len(in.reservoir)+len(in.outliers))
	sample = append(sample, in.reservoir...)
	sample = append(sample, in.outliers...)
	npts = len(sample)
	rcfg := s.cfg.Cluster
	lsh = s.cfg.LSHAbove >= 0 && npts >= s.cfg.LSHAbove
	if lsh {
		rcfg.LSHNeighbors = true
	}
	m, err = reclusterFreeze(sample, in.names, rcfg)
	return m, false, npts, lsh, err
}

// settleRingLocked reconciles the outlier ring after a successful swap.
// The snapshotted prefix (cutLen entries at trigger time) entered the
// refreshed model: clear whatever of it is still in the ring, and
// reverse the drop counts of snapshotted entries the ring evicted
// mid-refresh — drop-oldest evicts the snapshot first, and those points
// were NOT lost, they are in the new model. Everything else in the ring
// was parked during the refresh window against the old generation; it
// is extracted and returned for re-admission. The ring is empty on
// return. Caller holds s.mu.
func (s *Streamer) settleRingLocked(cutLen int) []dataset.Transaction {
	s.refreshed += int64(cutLen)
	rescued := s.dropped - s.dropsAtTrigger // mid-refresh evictions, oldest-first = snapshot-first
	if rescued > int64(cutLen) {
		rescued = int64(cutLen)
	}
	s.dropped -= rescued
	n := len(s.outRing)
	for remain := cutLen - int(rescued); remain > 0; remain-- {
		s.outRing[s.outHead] = nil
		s.outHead = (s.outHead + 1) % n
		s.outLen--
	}
	survivors := make([]dataset.Transaction, 0, s.outLen)
	for i := 0; i < s.outLen; i++ {
		j := (s.outHead + i) % n
		survivors = append(survivors, s.outRing[j])
		s.outRing[j] = nil
	}
	s.outHead, s.outLen = 0, 0
	return survivors
}

// readmitLocked runs the refresh-window survivors through the new
// generation's θ-test: points the refreshed model places are admitted
// (and offered to the reservoir), the rest re-park. The assignment goes
// through the serve stack's direct path, not the coalescing batcher — a
// partial batch would strand against a test-controlled clock, and there
// is no concurrent traffic to amortize with. Survivors re-entering the
// ring do not re-count in Stats.Outliers (each parked point counts
// once); the drift estimator is not fed either — it just reset, and
// these are not new arrivals. Caller holds s.mu.
func (s *Streamer) readmitLocked(survivors []dataset.Transaction) {
	if len(survivors) == 0 {
		return
	}
	out, _ := s.srv.SubmitDirect(survivors)
	for i, ci := range out {
		if ci >= 0 {
			s.readmitted++
			s.retainLocked(survivors[i])
		} else {
			s.parkLocked(survivors[i])
		}
	}
}

// finishRefreshLocked closes out a successful refresh: when a trigger
// landed mid-refresh and the re-parked remainder still clears the
// refresh floor, the queued follow-up starts immediately (the points it
// needs are already in the ring; waiting for the estimator to re-warm
// would just delay it); otherwise the streamer returns to steady state.
// Caller holds s.mu.
func (s *Streamer) finishRefreshLocked() {
	if s.refreshPending && s.outLen >= s.cfg.MinRefreshOutliers {
		s.triggerLocked()
		return
	}
	s.refreshPending = false
	s.refreshing = false
}

// reclusterFreeze runs the offline pipeline over the refresh input and
// freezes the result, attaching the streamer's vocabulary snapshot when
// it owns one (so the serving stack's name-translating /assign keeps
// working across refreshes).
func reclusterFreeze(sample []dataset.Transaction, names []string, cfg core.Config) (*core.Model, error) {
	res, err := core.Cluster(sample, cfg)
	if err != nil {
		return nil, fmt.Errorf("stream: refresh clustering: %w", err)
	}
	return freezeRefreshed(sample, names, res, cfg)
}

// seededFreeze is reclusterFreeze on the incremental path: the input is
// the old model's labeled points (grouped by groups) followed by the
// snapshotted outliers, clustered by core.ClusterSeeded.
func seededFreeze(pts []dataset.Transaction, groups [][]int, names []string, cfg core.Config) (*core.Model, error) {
	res, err := core.ClusterSeeded(pts, groups, cfg)
	if err != nil {
		return nil, fmt.Errorf("stream: incremental refresh clustering: %w", err)
	}
	return freezeRefreshed(pts, names, res, cfg)
}

// freezeRefreshed freezes a refresh run's result, over the vocabulary
// snapshot when the streamer owns one.
func freezeRefreshed(sample []dataset.Transaction, names []string, res *core.Result, cfg core.Config) (*core.Model, error) {
	if names != nil {
		v := dataset.NewVocabulary()
		for _, n := range names {
			v.Intern(n)
		}
		m, err := core.FreezeDataset(&dataset.Dataset{Vocab: v, Trans: sample}, res, cfg)
		if err != nil {
			return nil, fmt.Errorf("stream: freezing refreshed model: %w", err)
		}
		return m, nil
	}
	m, err := core.Freeze(sample, res, cfg)
	if err != nil {
		return nil, fmt.Errorf("stream: freezing refreshed model: %w", err)
	}
	return m, nil
}
