package serve

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestServeReloadFuzzSchedule extends the reload-drain contract to a
// fuzz-style swap schedule: sustained batched traffic from several
// clients while the model is swapped many times at seeded-random
// intervals, alternating between two models that answer the same query
// differently. The schedule's timing varies run to run — that is the
// point — but the assertions are interleaving-independent: every
// response must match what the generation stamped on it would answer
// (generation parity decides, since the swap alternates models), no
// request may be dropped, and every retired generation must drain.
// Run under -race in CI.
func TestServeReloadFuzzSchedule(t *testing.T) {
	v1 := rawModel(t, false)
	v2 := rawModel(t, true)
	s := New(v1, Config{MaxBatch: 4, FlushEvery: 100 * time.Microsecond, DrainTimeout: 30 * time.Second})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Odd generations serve v1 (answer 0), even generations v2 (answer 1).
	ids := [][]int32{{0, 1, 4}}
	want := func(gen uint64) int {
		if gen%2 == 1 {
			return 0
		}
		return 1
	}

	const clients = 6
	var sent, answered, torn atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sent.Add(1)
				got, code := postAssign(t, srv.URL, AssignRequest{IDs: ids})
				if code != http.StatusOK {
					continue // leaves sent > answered: caught below
				}
				answered.Add(1)
				if len(got.Assignments) != 1 || got.Assignments[0] != want(got.Generation) {
					torn.Add(1)
				}
			}
		}()
	}

	// Swap only once traffic is demonstrably flowing, then run the
	// randomized schedule.
	for s.Stats().Requests == 0 {
		time.Sleep(time.Millisecond)
	}
	rng := rand.New(rand.NewSource(41))
	const swaps = 8
	for i := 0; i < swaps; i++ {
		time.Sleep(time.Duration(rng.Intn(2500)) * time.Microsecond)
		next := v2
		if i%2 == 1 {
			next = v1
		}
		gen, drained := s.Swap(next)
		if gen != uint64(i+2) {
			t.Errorf("swap %d produced generation %d, want %d", i, gen, i+2)
		}
		if !drained {
			t.Errorf("swap %d: generation %d did not drain", i, gen-1)
		}
	}
	close(stop)
	wg.Wait()

	if torn.Load() != 0 {
		t.Fatalf("%d responses inconsistent with their stamped generation's model", torn.Load())
	}
	if sent.Load() != answered.Load() {
		t.Fatalf("dropped requests across the swap schedule: sent %d, answered %d", sent.Load(), answered.Load())
	}
	if got := s.Generation(); got != swaps+1 {
		t.Fatalf("final generation %d, want %d", got, swaps+1)
	}
	if st := s.Stats(); st.Reloads != swaps {
		t.Fatalf("stats count %d reloads, want %d", st.Reloads, swaps)
	}
}
