package serve

import (
	"testing"
	"time"
)

// TestLatencyHistQuantileEdges pins the quantile estimator's boundary
// behavior: the empty histogram, a single observation, all mass in one
// bucket (where interpolation must be exactly linear — bucket widths are
// powers of two, so the expected values are exact in float64), the
// sub-microsecond bucket whose floor is forced to zero, and observations
// beyond the histogram's horizon, which saturate in the last bucket
// rather than overflow.
func TestLatencyHistQuantileEdges(t *testing.T) {
	// Empty: every quantile, including the extremes, estimates zero.
	var empty latencyHist
	for _, q := range []float64{0, 0.001, 0.5, 0.999, 1} {
		if got := empty.quantile(q); got != 0 {
			t.Fatalf("empty histogram q=%v estimated %v", q, got)
		}
	}

	// Single observation at 100µs lands in [64µs, 128µs): q=0 pins the
	// bucket floor, q=1 the ceiling, and interior quantiles interpolate
	// monotonically between them.
	var one latencyHist
	one.observe(100 * time.Microsecond)
	if got := one.quantile(0); got != 64*time.Microsecond {
		t.Fatalf("single obs q=0: %v, want bucket floor 64µs", got)
	}
	if got := one.quantile(1); got != 128*time.Microsecond {
		t.Fatalf("single obs q=1: %v, want bucket ceiling 128µs", got)
	}
	if lo, hi := one.quantile(0.25), one.quantile(0.75); lo > hi || lo < 64*time.Microsecond || hi > 128*time.Microsecond {
		t.Fatalf("single obs interior quantiles [%v, %v] leave the bucket or invert", lo, hi)
	}

	// All mass in one bucket: 1000 observations of 5ms fill [4096µs,
	// 8192µs) and nothing else, so interpolation is exactly linear.
	var mass latencyHist
	for i := 0; i < 1000; i++ {
		mass.observe(5 * time.Millisecond)
	}
	for q, want := range map[float64]time.Duration{
		0.25: 5120 * time.Microsecond,
		0.50: 6144 * time.Microsecond,
		0.75: 7168 * time.Microsecond,
	} {
		if got := mass.quantile(q); got != want {
			t.Fatalf("one-bucket mass q=%v: %v, want %v", q, got, want)
		}
	}

	// Sub-microsecond observations: bucket 0's floor is forced to 0, so
	// the estimate cannot exceed 2µs and q=0 is exactly zero.
	var tiny latencyHist
	tiny.observe(500 * time.Nanosecond)
	if got := tiny.quantile(0); got != 0 {
		t.Fatalf("sub-µs q=0: %v, want 0", got)
	}
	if got := tiny.quantile(0.5); got != 1*time.Microsecond {
		t.Fatalf("sub-µs q=0.5: %v, want 1µs (midpoint of [0, 2µs))", got)
	}

	// Beyond the horizon: multi-hour latencies saturate in the last
	// bucket; quantiles stay within its bounds instead of overflowing.
	var huge latencyHist
	huge.observe(2 * time.Hour)
	huge.observe(3 * time.Hour)
	lo := time.Duration(1<<31) * time.Microsecond
	hi := time.Duration(1<<32) * time.Microsecond
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := huge.quantile(q); got < lo || got > hi {
			t.Fatalf("beyond-horizon q=%v: %v, outside the last bucket [%v, %v]", q, got, lo, hi)
		}
	}
}
