package serve

import (
	"sync"
	"time"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/vclock"
)

// Request batching / coalescing.
//
// The frozen model's AssignBatch amortizes its sharded-labeler startup
// (goroutine handoff, scratch acquisition) over a whole batch, so many
// small concurrent requests serve far better as one large batch than as
// per-request calls. The batcher accumulates the queries of concurrent
// /assign requests into one open batch and flushes it when either the
// batch reaches MaxBatch queries or FlushEvery elapses since the batch
// opened — the classic size-or-deadline coalescing loop. Requests block
// until their flush completes and receive exactly their slice of the
// results, so coalescing is invisible to callers beyond latency.
//
// Batches never mix model generations: every batch is tied to the
// liveModel its first request acquired, because query transactions are
// remapped into a specific model's item id space before submission. A
// submission under a newer model flushes the older batch immediately —
// which is also what drains in-flight batches promptly during a hot
// swap. Flushes run on their own goroutine so a full batch never
// executes on the submitting request's lock hold.

// waiter is one blocked request: n queries, answered on ch in one send.
type waiter struct {
	ch chan []int
	n  int
}

// batcher coalesces concurrent assignment requests into shared batches.
type batcher struct {
	maxBatch   int
	flushEvery time.Duration
	workers    int
	stats      *serverStats
	clock      vclock.Clock // deadline timer source; vclock.Real in production

	mu      sync.Mutex
	seq     uint64 // open-batch id, so a stale deadline timer cannot flush a successor
	lm      *liveModel
	queries []dataset.Transaction
	waiters []waiter
}

// submit enqueues a request's queries against the model it acquired and
// blocks until the containing batch flushes, returning this request's
// assignments. The caller must hold a reference on lm for the duration
// of the call (the HTTP handler's acquire/release brackets it).
func (b *batcher) submit(lm *liveModel, qs []dataset.Transaction) []int {
	if len(qs) == 0 {
		return []int{}
	}
	ch := make(chan []int, 1)
	b.mu.Lock()
	// A batch opened under an older model must not absorb queries mapped
	// for a newer one — flush it now and open a fresh batch.
	if b.lm != nil && b.lm != lm {
		b.flushLocked()
	}
	if b.lm == nil {
		b.lm = lm
		seq := b.seq
		b.clock.AfterFunc(b.flushEvery, func() { b.flushDeadline(seq) })
	}
	b.queries = append(b.queries, qs...)
	b.waiters = append(b.waiters, waiter{ch, len(qs)})
	if len(b.queries) >= b.maxBatch {
		b.flushLocked()
	}
	b.mu.Unlock()
	return <-ch
}

// flushDeadline is the deadline half of size-or-deadline: it fires
// FlushEvery after a batch opens and flushes it iff it is still the open
// batch (a size flush may already have retired it).
func (b *batcher) flushDeadline(seq uint64) {
	b.mu.Lock()
	if b.lm != nil && b.seq == seq {
		b.flushLocked()
	}
	b.mu.Unlock()
}

// flushLocked hands the open batch to a flusher goroutine and resets the
// open-batch state. Caller holds b.mu.
func (b *batcher) flushLocked() {
	lm, qs, ws := b.lm, b.queries, b.waiters
	b.lm, b.queries, b.waiters = nil, nil, nil
	b.seq++
	b.stats.observeBatch(len(qs), len(ws))
	go func() {
		out := lm.model.AssignBatch(qs, b.workers)
		off := 0
		for _, w := range ws {
			w.ch <- out[off : off+w.n : off+w.n]
			off += w.n
		}
	}()
}

// pendingWaiters reports how many requests sit in the open batch — a
// test hook for the coalescing and generation-boundary tests.
func (b *batcher) pendingWaiters() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.waiters)
}
