package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
)

// rawModel freezes a tiny two-cluster model over raw item ids. With
// flip=true the cluster order is reversed, so the same query answers
// with the other index — the observable difference the hot-swap tests
// key on.
func rawModel(t testing.TB, flip bool) *core.Model {
	t.Helper()
	ts := []dataset.Transaction{
		dataset.NewTransaction(0, 1, 2),
		dataset.NewTransaction(0, 1, 3),
		dataset.NewTransaction(10, 11, 12),
		dataset.NewTransaction(10, 11, 13),
	}
	sets := [][]int{{0, 1}, {2, 3}}
	if flip {
		sets = [][]int{{2, 3}, {0, 1}}
	}
	m, err := core.FreezeSets(ts, sets, nil, 0.4, core.MarketBasketF(0.4), nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// vocabModel clusters a small named-item dataset and freezes it with its
// vocabulary, so /assign accepts item names.
func vocabModel(t testing.TB) (*core.Model, *dataset.Dataset) {
	t.Helper()
	v := dataset.NewVocabulary()
	d := &dataset.Dataset{Vocab: v}
	for _, line := range [][]string{
		{"milk", "bread", "butter"},
		{"milk", "bread", "jam"},
		{"milk", "butter", "jam"},
		{"beer", "chips", "salsa"},
		{"beer", "chips", "dip"},
		{"beer", "salsa", "dip"},
	} {
		var items []dataset.Item
		for _, tok := range line {
			items = append(items, v.Intern(tok))
		}
		d.Trans = append(d.Trans, dataset.NewTransaction(items...))
	}
	cfg := core.Config{Theta: 0.3, K: 2, Seed: 1}
	res, err := core.Cluster(d.Trans, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.FreezeDataset(d, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

// postAssign drives one POST /assign and decodes the response.
func postAssign(t *testing.T, url string, req AssignRequest) (AssignResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/assign", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out AssignResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

// TestAssignIDs pins the raw-id request path against the model's own
// AssignBatch: the HTTP stack may batch and shard however it likes, but
// the assignments must be exactly the model's.
func TestAssignIDs(t *testing.T) {
	m := rawModel(t, false)
	s := New(m, Config{FlushEvery: time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ids := [][]int32{{0, 1, 4}, {10, 11, 4}, {20, 21}, {0, 1, 2, 3}}
	queries := make([]dataset.Transaction, len(ids))
	for i, q := range ids {
		items := make([]dataset.Item, len(q))
		for j, id := range q {
			items[j] = dataset.Item(id)
		}
		queries[i] = dataset.NewTransaction(items...)
	}
	want := m.AssignBatch(queries, 1)

	got, code := postAssign(t, srv.URL, AssignRequest{IDs: ids})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !reflect.DeepEqual(got.Assignments, want) {
		t.Fatalf("served %v, model says %v", got.Assignments, want)
	}
	if got.Generation != 1 {
		t.Fatalf("generation %d at startup", got.Generation)
	}
}

// TestAssignByName pins the item-name path: names translate through the
// frozen vocabulary exactly as AssignDataset translates them — unknown
// names dilute |t| without matching anything.
func TestAssignByName(t *testing.T) {
	m, _ := vocabModel(t)
	s := New(m, Config{FlushEvery: time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	names := [][]string{
		{"milk", "bread", "jam"},
		{"beer", "chips", "quinoa"},
		{"quinoa", "kale"},
	}
	// Expected: the same names read under a fresh vocabulary, assigned
	// through the model's own translation path.
	v := dataset.NewVocabulary()
	q := &dataset.Dataset{Vocab: v}
	for _, line := range names {
		var items []dataset.Item
		for _, tok := range line {
			items = append(items, v.Intern(tok))
		}
		q.Trans = append(q.Trans, dataset.NewTransaction(items...))
	}
	want, err := m.AssignDataset(q, 1)
	if err != nil {
		t.Fatal(err)
	}

	got, code := postAssign(t, srv.URL, AssignRequest{Queries: names})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !reflect.DeepEqual(got.Assignments, want) {
		t.Fatalf("served %v, AssignDataset says %v", got.Assignments, want)
	}
}

// TestAssignRejects pins the request-validation failures: names against
// a vocabless model, both representations at once, neither, negative
// ids, and undecodable JSON — all 400s, all counted, none served.
func TestAssignRejects(t *testing.T) {
	s := New(rawModel(t, false), Config{FlushEvery: time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for name, req := range map[string]AssignRequest{
		"names for a vocabless model": {Queries: [][]string{{"milk"}}},
		"both queries and ids":        {Queries: [][]string{{"a"}}, IDs: [][]int32{{1}}},
		"neither":                     {},
		"negative id":                 {IDs: [][]int32{{-4}}},
	} {
		if _, code := postAssign(t, srv.URL, req); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, code)
		}
	}
	resp, err := http.Post(srv.URL+"/assign", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", resp.StatusCode)
	}
	if st := s.Stats(); st.BadRequests != 5 || st.Requests != 0 {
		t.Fatalf("stats after rejects: %+v", st)
	}
}

// TestBatchCoalescing proves concurrent requests share one flush,
// deterministically: with MaxBatch = n and a deadline too far to fire,
// n−1 single-query submissions park in the open batch and the n-th
// triggers the size flush — one AssignBatch call answers all n.
func TestBatchCoalescing(t *testing.T) {
	const n = 8
	m := rawModel(t, false)
	s := New(m, Config{MaxBatch: n, FlushEvery: time.Hour})

	var wg sync.WaitGroup
	results := make([][]int, n)
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lm := s.acquire()
			defer lm.release()
			results[i] = s.batch.submit(lm, []dataset.Transaction{dataset.NewTransaction(0, 1, 4)})
		}(i)
	}
	for s.batch.pendingWaiters() != n-1 {
		time.Sleep(time.Millisecond)
	}
	lm := s.acquire()
	results[n-1] = s.batch.submit(lm, []dataset.Transaction{dataset.NewTransaction(0, 1, 4)})
	lm.release()
	wg.Wait()

	for i, r := range results {
		if len(r) != 1 || r[0] != 0 {
			t.Fatalf("request %d answered %v, want [0]", i, r)
		}
	}
	st := s.Stats()
	if st.Batches != 1 {
		t.Fatalf("%d flushes for %d concurrent requests; want 1", st.Batches, n)
	}
	if st.CoalescedBatches != 1 || st.MaxBatch != n || st.MeanBatch != n {
		t.Fatalf("batch stats: %+v", st)
	}
}

// TestFlushDeadline proves a lone request is not held hostage by a
// never-filling batch: the deadline flush answers it.
func TestFlushDeadline(t *testing.T) {
	s := New(rawModel(t, false), Config{MaxBatch: 1 << 20, FlushEvery: 2 * time.Millisecond})
	lm := s.acquire()
	defer lm.release()
	start := time.Now()
	got := s.batch.submit(lm, []dataset.Transaction{dataset.NewTransaction(10, 11, 4)})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("answered %v, want [1]", got)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("deadline flush took %v", waited)
	}
}

// TestServeReloadDrain is the hot-swap contract under load, run under
// -race in CI: mid-traffic, the model is swapped for one that answers
// the same queries differently. Every request must complete (none
// dropped), every response must be internally consistent — generation g
// answering exactly as model g does, never a torn mixture — the swap
// must report the old generation drained, and traffic after the swap
// must be answered by the new generation.
func TestServeReloadDrain(t *testing.T) {
	v1 := rawModel(t, false)
	v2 := rawModel(t, true)
	s := New(v1, Config{MaxBatch: 4, FlushEvery: 100 * time.Microsecond, DrainTimeout: 30 * time.Second})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// One query both models answer, differently: v1 says 0, v2 says 1.
	ids := [][]int32{{0, 1, 4}}
	const want1, want2 = 0, 1

	const clients = 4
	const perClient = 60
	var sent, answered, gen1Seen, gen2Seen, torn atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				sent.Add(1)
				got, code := postAssign(t, srv.URL, AssignRequest{IDs: ids})
				if code != http.StatusOK {
					continue // counted as dropped by the final check
				}
				answered.Add(1)
				switch got.Generation {
				case 1:
					gen1Seen.Add(1)
					if got.Assignments[0] != want1 {
						torn.Add(1)
					}
				case 2:
					gen2Seen.Add(1)
					if got.Assignments[0] != want2 {
						torn.Add(1)
					}
				default:
					torn.Add(1)
				}
			}
		}()
	}

	// Swap only once v1 has demonstrably served traffic, so both
	// generations are exercised.
	for s.Stats().Requests == 0 {
		time.Sleep(time.Millisecond)
	}
	gen, drained := s.Swap(v2)
	if gen != 2 {
		t.Fatalf("swap produced generation %d", gen)
	}
	if !drained {
		t.Fatal("swap reports the v1 in-flight requests did not drain")
	}
	wg.Wait()

	if torn.Load() != 0 {
		t.Fatalf("%d responses were inconsistent with their generation's model", torn.Load())
	}
	if sent.Load() != answered.Load() {
		t.Fatalf("dropped requests across the swap: sent %d, answered %d", sent.Load(), answered.Load())
	}
	if gen1Seen.Load() == 0 {
		t.Fatal("no response from generation 1; the swap raced ahead of all traffic")
	}
	if gen2Seen.Load() == 0 {
		t.Fatal("no response from generation 2 after the swap")
	}
	// The swap drained: everything arriving now is generation 2.
	got, _ := postAssign(t, srv.URL, AssignRequest{IDs: ids})
	if got.Generation != 2 || got.Assignments[0] != want2 {
		t.Fatalf("post-swap response %+v, want generation 2 answering %d", got, want2)
	}
	if st := s.Stats(); st.Reloads != 1 || st.Generation != 2 {
		t.Fatalf("stats after swap: %+v", st)
	}
}

// TestSwapGenerationBoundary pins the batcher's defining hot-swap rule:
// a batch opened under v1 is flushed with v1 — never mixed into v2's id
// space — and the v1 waiter completes even though the swap happened
// while it was parked. The swap's drain wait and the flush are mutually
// dependent, so this is also the deadlock regression test.
func TestSwapGenerationBoundary(t *testing.T) {
	v1 := rawModel(t, false)
	v2 := rawModel(t, true)
	// Deadline far out: only the generation boundary can flush v1's batch,
	// and only the size threshold can flush v2's.
	s := New(v1, Config{MaxBatch: 2, FlushEvery: time.Hour, DrainTimeout: 30 * time.Second})

	lm1 := s.acquire()
	r1 := make(chan []int, 1)
	go func() {
		defer lm1.release()
		r1 <- s.batch.submit(lm1, []dataset.Transaction{dataset.NewTransaction(0, 1, 4)})
	}()
	for s.batch.pendingWaiters() != 1 {
		time.Sleep(time.Millisecond)
	}

	swapped := make(chan bool)
	go func() {
		_, drained := s.Swap(v2)
		swapped <- drained
	}()
	for s.Generation() != 2 {
		time.Sleep(time.Millisecond)
	}

	// v1's parked request is still waiting; the first v2 submission must
	// flush it rather than absorb into the same batch. Two queries reach
	// MaxBatch, so v2's own batch flushes on size.
	lm2 := s.acquire()
	got2 := s.batch.submit(lm2, []dataset.Transaction{
		dataset.NewTransaction(0, 1, 4),
		dataset.NewTransaction(10, 11, 4),
	})
	lm2.release()
	if len(got2) != 2 || got2[0] != 1 || got2[1] != 0 {
		t.Fatalf("v2 request answered %v, want [1 0] (v2's flipped order)", got2)
	}
	got1 := <-r1
	if len(got1) != 1 || got1[0] != 0 {
		t.Fatalf("v1's parked request answered %v, want [0] (v1's order)", got1)
	}
	if drained := <-swapped; !drained {
		t.Fatal("swap did not report v1 drained")
	}
	if st := s.Stats(); st.Batches != 2 {
		t.Fatalf("%d flushes; the generation boundary should force exactly 2", st.Batches)
	}
}

// TestReloadEndpoint drives POST /-/reload end to end: a valid file
// swaps generations; a corrupt file is rejected with 422 while the old
// generation keeps serving; a missing body reloads from ModelPath.
func TestReloadEndpoint(t *testing.T) {
	dir := t.TempDir()
	writeModel := func(name string, m *core.Model) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	v1 := rawModel(t, false)
	defaultPath := writeModel("default.rock", v1)
	v2Path := writeModel("v2.rock", rawModel(t, true))
	corruptPath := filepath.Join(dir, "corrupt.rock")
	if err := os.WriteFile(corruptPath, []byte("ROCKMODLgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(v1, Config{ModelPath: defaultPath, FlushEvery: time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	reload := func(body string) (*http.Response, ReloadResponse) {
		var buf bytes.Buffer
		buf.WriteString(body)
		resp, err := http.Post(srv.URL+"/-/reload", "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out ReloadResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return resp, out
	}

	resp, out := reload(fmt.Sprintf(`{"path": %q}`, v2Path))
	if resp.StatusCode != http.StatusOK || out.Generation != 2 || !out.Drained {
		t.Fatalf("reload v2: status %d, %+v", resp.StatusCode, out)
	}
	got, _ := postAssign(t, srv.URL, AssignRequest{IDs: [][]int32{{0, 1, 4}}})
	if got.Generation != 2 || got.Assignments[0] != 1 {
		t.Fatalf("after reload: %+v, want generation 2 answering 1", got)
	}

	// A corrupt file must not displace the serving model.
	resp, _ = reload(fmt.Sprintf(`{"path": %q}`, corruptPath))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt reload: status %d, want 422", resp.StatusCode)
	}
	if s.Generation() != 2 {
		t.Fatalf("corrupt reload bumped the generation to %d", s.Generation())
	}

	// No body: fall back to ModelPath (v1's file), generation 3.
	resp, out = reload("")
	if resp.StatusCode != http.StatusOK || out.Generation != 3 {
		t.Fatalf("default-path reload: status %d, %+v", resp.StatusCode, out)
	}
	if st := s.Stats(); st.Reloads != 2 || st.FailedReloads != 1 {
		t.Fatalf("stats after reloads: %+v", st)
	}
}

// TestHealthzAndStats smokes the observability endpoints.
func TestHealthzAndStats(t *testing.T) {
	s := New(rawModel(t, false), Config{FlushEvery: time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	postAssign(t, srv.URL, AssignRequest{IDs: [][]int32{{0, 1, 4}, {20, 21}}})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, health)
	}

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests != 1 || st.Queries != 2 || st.Assigned != 1 || st.Outliers != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.LatencyP50Ms <= 0 || st.LatencyP99Ms < st.LatencyP50Ms {
		t.Fatalf("latency quantiles misordered: %+v", st)
	}
}

// TestLatencyHist pins the histogram's quantile estimator on a known
// distribution: observations spanning buckets must produce ordered,
// bracketed quantiles and an exact mean.
func TestLatencyHist(t *testing.T) {
	var h latencyHist
	for i := 0; i < 90; i++ {
		h.observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(10 * time.Millisecond)
	}
	p50, p95, p99 := h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)
	if p50 < 64*time.Microsecond || p50 > 128*time.Microsecond {
		t.Fatalf("p50 = %v, want within the 100µs bucket", p50)
	}
	if p95 < 8*time.Millisecond || p95 > 16*time.Millisecond {
		t.Fatalf("p95 = %v, want within the 10ms bucket", p95)
	}
	if p99 < p95 || p95 < p50 {
		t.Fatalf("quantiles misordered: %v %v %v", p50, p95, p99)
	}
	wantMean := (90*100*time.Microsecond + 10*10*time.Millisecond) / 100
	if h.mean() != wantMean {
		t.Fatalf("mean = %v, want %v", h.mean(), wantMean)
	}
	var empty latencyHist
	if empty.quantile(0.5) != 0 || empty.mean() != 0 {
		t.Fatal("empty histogram should estimate zero")
	}
}
