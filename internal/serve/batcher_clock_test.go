package serve

import (
	"testing"
	"time"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/vclock"
)

// TestBatcherDeadlineSeqGuard is the deadline-pathology regression test,
// driven entirely by a virtual clock: a batch is size-flushed BEFORE its
// deadline fires, and a new request opens the successor batch at the
// exact instant the stale deadline timer goes off. Without the batcher's
// seq guard the stale timer would flush the successor early (and, in the
// worst interleaving, race its real deadline for a double flush); with
// it, the new request must still be parked after the stale instant and
// must be served exactly once, at its own deadline.
func TestBatcherDeadlineSeqGuard(t *testing.T) {
	fake := vclock.NewFake(time.Unix(0, 0))
	s := New(rawModel(t, false), Config{MaxBatch: 2, FlushEvery: 10 * time.Millisecond, Clock: fake})

	// Registered FIRST so that at the shared 10ms instant it fires before
	// the stale batch timer (equal deadlines fire in creation order):
	// this is what makes request D arrive "exactly as the deadline fires".
	dResult := make(chan []int, 1)
	fake.AfterFunc(10*time.Millisecond, func() {
		go func() {
			lm := s.acquire()
			defer lm.release()
			dResult <- s.batch.submit(lm, []dataset.Transaction{dataset.NewTransaction(10, 11, 4)})
		}()
		for s.batch.pendingWaiters() != 1 {
			time.Sleep(50 * time.Microsecond)
		}
	})

	// A parks at t=0, opening batch seq 0 with a deadline timer at 10ms.
	aResult := make(chan []int, 1)
	go func() {
		lm := s.acquire()
		defer lm.release()
		aResult <- s.batch.submit(lm, []dataset.Transaction{dataset.NewTransaction(0, 1, 4)})
	}()
	for s.batch.pendingWaiters() != 1 {
		time.Sleep(50 * time.Microsecond)
	}

	// B fills the batch: seq 0 is size-flushed well before its deadline,
	// leaving its 10ms timer armed but stale.
	lm := s.acquire()
	gotB := s.batch.submit(lm, []dataset.Transaction{dataset.NewTransaction(0, 1, 2)})
	lm.release()
	if len(gotB) != 1 || gotB[0] != 0 {
		t.Fatalf("B answered %v, want [0]", gotB)
	}
	if gotA := <-aResult; len(gotA) != 1 || gotA[0] != 0 {
		t.Fatalf("A answered %v, want [0]", gotA)
	}

	// The 10ms instant: D parks (opening seq 1, deadline 20ms), then the
	// STALE seq-0 timer fires against the open seq-1 batch.
	fake.Advance(10 * time.Millisecond)
	if n := s.batch.pendingWaiters(); n != 1 {
		t.Fatalf("stale deadline timer flushed the successor batch early (%d waiters parked, want 1)", n)
	}
	select {
	case got := <-dResult:
		t.Fatalf("D was answered %v by the stale timer, before its own deadline", got)
	default:
	}

	// D's own deadline serves it — exactly once.
	fake.Advance(10 * time.Millisecond)
	if gotD := <-dResult; len(gotD) != 1 || gotD[0] != 1 {
		t.Fatalf("D answered %v, want [1]", gotD)
	}
	select {
	case got := <-dResult:
		t.Fatalf("D was answered twice; second answer %v", got)
	case <-time.After(20 * time.Millisecond):
	}
	if st := s.Stats(); st.Batches != 2 {
		t.Fatalf("%d flushes; want exactly 2 (A+B size flush, D deadline flush)", st.Batches)
	}
}
