package serve

import (
	"sync/atomic"
	"time"
)

// Service statistics.
//
// Counters are plain atomics updated on the request path; the latency
// histogram uses fixed power-of-two buckets so observation is two atomic
// adds and quantile estimation needs no samples retained. The numbers are
// operational (monitoring, /stats, the rockbench -serve summary) — exact
// per-request latencies for benchmarking are measured client-side.

// histBuckets is the number of latency buckets: bucket i counts requests
// with latency in [2^i, 2^(i+1)) microseconds, the last bucket catching
// everything beyond ~0.5h.
const histBuckets = 32

// latencyHist is a lock-free exponential histogram of request latencies.
type latencyHist struct {
	counts [histBuckets]atomic.Int64
	n      atomic.Int64
	sumNs  atomic.Int64
}

// observe records one request latency.
func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	h.counts[b].Add(1)
	h.n.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// quantile estimates the q-th latency quantile (q in (0,1)) by linear
// interpolation inside the bucket where the cumulative count crosses
// q·n. Zero observations estimate zero.
func (h *latencyHist) quantile(q float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	rank := q * float64(n)
	cum := 0.0
	for b := 0; b < histBuckets; b++ {
		c := float64(h.counts[b].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := time.Duration(1<<b) * time.Microsecond
			if b == 0 {
				lo = 0
			}
			hi := time.Duration(1<<(b+1)) * time.Microsecond
			frac := (rank - cum) / c
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	return time.Duration(1<<histBuckets) * time.Microsecond
}

// mean returns the mean observed latency.
func (h *latencyHist) mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// serverStats aggregates the counters behind GET /stats.
type serverStats struct {
	started time.Time

	requests     atomic.Int64 // /assign requests answered
	queries      atomic.Int64 // transactions assigned
	assigned     atomic.Int64 // queries that matched a cluster
	outliers     atomic.Int64 // queries answered -1
	badRequests  atomic.Int64 // /assign requests rejected before batching
	reloads      atomic.Int64 // successful model swaps
	failedLoads  atomic.Int64 // reload attempts rejected at load/validate
	batches      atomic.Int64 // AssignBatch flushes
	batchQueries atomic.Int64 // queries across all flushes
	coalesced    atomic.Int64 // flushes serving more than one request
	maxBatch     atomic.Int64 // largest flush, in queries

	latency latencyHist
}

// observeBatch records one flush of the coalescing batcher.
func (st *serverStats) observeBatch(queries, requests int) {
	st.batches.Add(1)
	st.batchQueries.Add(int64(queries))
	if requests > 1 {
		st.coalesced.Add(1)
	}
	for {
		cur := st.maxBatch.Load()
		if int64(queries) <= cur || st.maxBatch.CompareAndSwap(cur, int64(queries)) {
			return
		}
	}
}

// Stats is the JSON shape of GET /stats — a monitoring snapshot of the
// serving process: traffic counters, batching effectiveness, model
// generation, and latency quantiles estimated from the histogram.
type Stats struct {
	Generation    uint64  `json:"generation"`
	Model         string  `json:"model"`
	UptimeSec     float64 `json:"uptime_sec"`
	Requests      int64   `json:"requests"`
	Queries       int64   `json:"queries"`
	Assigned      int64   `json:"assigned"`
	Outliers      int64   `json:"outliers"`
	BadRequests   int64   `json:"bad_requests"`
	Reloads       int64   `json:"reloads"`
	FailedReloads int64   `json:"failed_reloads"`

	Batches          int64   `json:"batches"`
	CoalescedBatches int64   `json:"coalesced_batches"`
	MeanBatch        float64 `json:"mean_batch"`
	MaxBatch         int64   `json:"max_batch"`

	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP95Ms  float64 `json:"latency_p95_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
}

// snapshot renders the counters into the exported Stats shape.
func (st *serverStats) snapshot(gen uint64, model string) Stats {
	s := Stats{
		Generation:    gen,
		Model:         model,
		UptimeSec:     time.Since(st.started).Seconds(),
		Requests:      st.requests.Load(),
		Queries:       st.queries.Load(),
		Assigned:      st.assigned.Load(),
		Outliers:      st.outliers.Load(),
		BadRequests:   st.badRequests.Load(),
		Reloads:       st.reloads.Load(),
		FailedReloads: st.failedLoads.Load(),

		Batches:          st.batches.Load(),
		CoalescedBatches: st.coalesced.Load(),
		MaxBatch:         st.maxBatch.Load(),

		LatencyMeanMs: st.latency.mean().Seconds() * 1e3,
		LatencyP50Ms:  st.latency.quantile(0.50).Seconds() * 1e3,
		LatencyP95Ms:  st.latency.quantile(0.95).Seconds() * 1e3,
		LatencyP99Ms:  st.latency.quantile(0.99).Seconds() * 1e3,
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(st.batchQueries.Load()) / float64(s.Batches)
	}
	return s
}
