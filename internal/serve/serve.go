// Package serve is the HTTP serving stack over frozen rock models — the
// "millions of users" leg of the paper's scaling story: cluster a
// Chernoff-sized sample once, freeze it into a Model, and answer
// assignment traffic from the frozen index forever.
//
// The server wraps Model.AssignBatch with two service-grade mechanisms:
//
//   - Request coalescing (batcher.go): concurrent POST /assign requests
//     accumulate into a shared batch flushed by size or deadline, so the
//     sharded labeler's startup cost amortizes across requests instead of
//     being paid per call.
//   - Atomic hot-swap reload: the current model lives behind an
//     atomic.Pointer; POST /-/reload (or SIGHUP in cmd/rockserve) loads
//     and fully validates the new file BEFORE swapping, then waits for
//     requests pinned to the old generation to drain. In-flight requests
//     finish on the model they started with, new requests are answered by
//     the new generation, and no request is ever dropped — a failed load
//     leaves the old model serving untouched.
//
// Endpoints: POST /assign (queries by item name or raw id), GET /healthz,
// GET /stats (counters, batching effectiveness, latency quantiles),
// POST /-/reload. The handler composes with any http.Server; graceful
// shutdown is the caller's http.Server.Shutdown, which waits for the
// in-flight handlers — and therefore for their batches — to finish.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/vclock"
)

// Config parameterizes a Server. The zero value serves with the defaults
// noted per field.
type Config struct {
	// ModelPath is the file Reload falls back to when a reload request
	// names no path — the path cmd/rockserve loaded the model from.
	ModelPath string
	// MaxBatch flushes the open batch when it reaches this many queries
	// (default 256).
	MaxBatch int
	// FlushEvery flushes the open batch this long after it opens, whatever
	// its size (default 1ms). The deadline bounds the latency cost a
	// lone request pays for coalescing.
	FlushEvery time.Duration
	// Workers is the AssignBatch worker count per flush (0 = GOMAXPROCS).
	Workers int
	// DrainTimeout bounds how long a swap waits for the retired
	// generation's in-flight requests (default 30s). Requests past the
	// deadline still complete — the timeout only stops the reload
	// response from waiting on them.
	DrainTimeout time.Duration
	// Clock supplies the batcher's flush-deadline timers (nil =
	// vclock.Real). Tests inject a vclock.Fake to drive the
	// size-or-deadline race deterministically; production callers leave
	// it nil.
	Clock vclock.Clock
	// MaxBodyBytes caps request body sizes on the JSON endpoints (POST
	// /assign here, POST /ingest in the streaming handler); an oversized
	// body gets 413 instead of an unbounded decode. Default 8 MiB;
	// negative disables the cap.
	MaxBodyBytes int64
}

// DefaultMaxBodyBytes is the request-body cap applied when
// Config.MaxBodyBytes is zero.
const DefaultMaxBodyBytes = 8 << 20

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	return c
}

// liveModel is one generation of the served model: the frozen Model, its
// name→id index for query translation, and the reference count that lets
// a hot swap wait for the generation's in-flight requests to drain.
type liveModel struct {
	model  *core.Model
	gen    uint64
	byName map[string]dataset.Item // nil when the model froze no vocabulary

	refs      atomic.Int64
	retired   atomic.Bool
	drained   chan struct{}
	drainOnce sync.Once
}

func newLive(m *core.Model, gen uint64) *liveModel {
	lm := &liveModel{model: m, gen: gen, drained: make(chan struct{})}
	if items := m.Items(); items != nil {
		lm.byName = make(map[string]dataset.Item, len(items))
		for id, name := range items {
			lm.byName[name] = dataset.Item(id)
		}
	}
	return lm
}

// tryAcquire pins the generation for one request. It fails when the
// generation was retired between the caller's pointer load and the pin —
// the caller re-loads the current pointer and retries, landing on the
// new generation.
func (lm *liveModel) tryAcquire() bool {
	lm.refs.Add(1)
	if lm.retired.Load() {
		lm.release()
		return false
	}
	return true
}

// release unpins one request and closes the drain gate when this was the
// last request of a retired generation.
func (lm *liveModel) release() {
	if lm.refs.Add(-1) == 0 && lm.retired.Load() {
		lm.drainOnce.Do(func() { close(lm.drained) })
	}
}

// retire marks the generation as no longer current and waits up to
// timeout for its pinned requests to finish. The retired flag is set
// before the count is read, and tryAcquire re-checks the flag after
// incrementing — so either the acquirer sees the retirement and backs
// off, or the retirer sees the acquirer's count and waits for it; no
// request is ever stranded on a generation the drain wait missed.
func (lm *liveModel) retire(timeout time.Duration) bool {
	lm.retired.Store(true)
	if lm.refs.Load() == 0 {
		lm.drainOnce.Do(func() { close(lm.drained) })
	}
	select {
	case <-lm.drained:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Server serves assignment queries from a hot-swappable frozen model.
// Create one with New; all methods are safe for concurrent use.
type Server struct {
	cfg   Config
	cur   atomic.Pointer[liveModel]
	swap  sync.Mutex // serializes generation bumps
	batch *batcher
	stats *serverStats
}

// New builds a Server serving the given model.
func New(m *core.Model, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		stats: &serverStats{started: time.Now()},
	}
	s.batch = &batcher{
		maxBatch:   cfg.MaxBatch,
		flushEvery: cfg.FlushEvery,
		workers:    cfg.Workers,
		stats:      s.stats,
		clock:      cfg.Clock,
	}
	s.cur.Store(newLive(m, 1))
	return s
}

// acquire pins the current generation for one request. The loop resolves
// the acquire/retire race: a generation retired mid-acquire rejects the
// pin and the re-loaded pointer holds its successor.
func (s *Server) acquire() *liveModel {
	for {
		if lm := s.cur.Load(); lm.tryAcquire() {
			return lm
		}
	}
}

// Generation returns the current model generation (1 at startup,
// incremented per successful swap).
func (s *Server) Generation() uint64 { return s.cur.Load().gen }

// Model returns the currently served model.
func (s *Server) Model() *core.Model { return s.cur.Load().model }

// Swap atomically replaces the served model: new requests land on the
// new generation immediately, and the call then waits up to DrainTimeout
// for requests pinned to the old generation to finish. Returns the new
// generation and whether the old one fully drained within the deadline.
func (s *Server) Swap(m *core.Model) (gen uint64, drained bool) {
	s.swap.Lock()
	old := s.cur.Load()
	lm := newLive(m, old.gen+1)
	s.cur.Store(lm)
	s.swap.Unlock()
	drained = old.retire(s.cfg.DrainTimeout)
	s.stats.reloads.Add(1)
	return lm.gen, drained
}

// Reload loads, validates, and swaps in a model file. An unreadable or
// invalid file (wrong magic, version, checksum, corrupt payload — the
// ErrModel* taxonomy) leaves the current model serving and returns the
// load error; the swap happens only once the new model fully validated.
func (s *Server) Reload(path string) (gen uint64, drained bool, err error) {
	if path == "" {
		path = s.cfg.ModelPath
	}
	if path == "" {
		return 0, false, errors.New("serve: no model path to reload from")
	}
	f, err := os.Open(path)
	if err != nil {
		s.stats.failedLoads.Add(1)
		return 0, false, fmt.Errorf("serve: reload: %w", err)
	}
	m, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		s.stats.failedLoads.Add(1)
		return 0, false, fmt.Errorf("serve: reload %s: %w", path, err)
	}
	gen, drained = s.Swap(m)
	return gen, drained, nil
}

// Submit answers one batch of queries (already in the served model's
// item id space) through the coalescing batcher — the programmatic
// equivalent of POST /assign, used by the streaming ingester and the
// bench drivers. It pins the current generation for the duration of the
// call, so the returned assignments are exactly what AssignBatch on that
// generation's model computes, and the returned generation identifies
// which model answered. Counted in the serving stats like an HTTP
// request. Safe for concurrent use.
func (s *Server) Submit(qs []dataset.Transaction) (assignments []int, gen uint64) {
	start := s.cfg.Clock.Now()
	lm := s.acquire()
	defer lm.release()
	assignments = s.batch.submit(lm, qs)

	s.stats.requests.Add(1)
	s.stats.queries.Add(int64(len(qs)))
	for _, ci := range assignments {
		if ci >= 0 {
			s.stats.assigned.Add(1)
		} else {
			s.stats.outliers.Add(1)
		}
	}
	s.stats.latency.observe(s.cfg.Clock.Now().Sub(start))
	return assignments, lm.gen
}

// SubmitDirect answers one batch of queries on the current generation,
// bypassing the coalescing batcher: the assignment runs synchronously on
// the calling goroutine. The streaming refresh uses it to re-admit ring
// survivors against a just-swapped generation — going through the
// batcher there could strand a partial batch against a test-controlled
// clock, and the refresh goroutine has no latency to amortize. Counted
// in the serving stats like any other request. Safe for concurrent use.
func (s *Server) SubmitDirect(qs []dataset.Transaction) (assignments []int, gen uint64) {
	start := s.cfg.Clock.Now()
	lm := s.acquire()
	defer lm.release()
	assignments = lm.model.AssignBatch(qs, s.cfg.Workers)

	s.stats.requests.Add(1)
	s.stats.queries.Add(int64(len(qs)))
	for _, ci := range assignments {
		if ci >= 0 {
			s.stats.assigned.Add(1)
		} else {
			s.stats.outliers.Add(1)
		}
	}
	s.stats.latency.observe(s.cfg.Clock.Now().Sub(start))
	return assignments, lm.gen
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	lm := s.cur.Load()
	return s.stats.snapshot(lm.gen, lm.model.String())
}

// --- HTTP surface ---

// AssignRequest is the POST /assign body. Exactly one of Queries (item
// names, translated through the model's frozen vocabulary) or IDs (raw
// ids already in the model's item space) must be set.
type AssignRequest struct {
	Queries [][]string `json:"queries,omitempty"`
	IDs     [][]int32  `json:"ids,omitempty"`
}

// AssignResponse answers POST /assign: one cluster index per query in
// request order (-1 = outlier), plus the generation that answered —
// readers correlating answers across a hot swap can pin on it.
type AssignResponse struct {
	Assignments []int  `json:"assignments"`
	Generation  uint64 `json:"generation"`
}

// ReloadRequest is the optional POST /-/reload body.
type ReloadRequest struct {
	Path string `json:"path,omitempty"`
}

// ReloadResponse reports a completed reload.
type ReloadResponse struct {
	Generation uint64 `json:"generation"`
	Drained    bool   `json:"drained"`
	Model      string `json:"model"`
}

// Handler returns the server's HTTP surface, ready to mount on any
// http.Server (cmd/rockserve) or httptest server (the bench driver).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /assign", s.handleAssign)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /-/reload", s.handleReload)
	return mux
}

// queries translates a request into the pinned model's item id space.
// Unknown item names get fresh ids past the frozen vocabulary, distinct
// per name within the request — the RemapDataset semantics, so an unseen
// item dilutes |t| exactly as it would in-process.
func (lm *liveModel) queries(req *AssignRequest) ([]dataset.Transaction, error) {
	switch {
	case req.Queries != nil && req.IDs != nil:
		return nil, errors.New("request sets both queries and ids; send one")
	case req.Queries != nil:
		if lm.byName == nil {
			return nil, errors.New("model was frozen without a vocabulary; send ids instead of item names")
		}
		unknown := map[string]dataset.Item{}
		next := dataset.Item(len(lm.byName))
		out := make([]dataset.Transaction, len(req.Queries))
		items := make([]dataset.Item, 0, 32)
		for i, q := range req.Queries {
			items = items[:0]
			for _, name := range q {
				id, ok := lm.byName[name]
				if !ok {
					id, ok = unknown[name]
					if !ok {
						id = next
						next++
						unknown[name] = id
					}
				}
				items = append(items, id)
			}
			out[i] = dataset.NewTransaction(items...)
		}
		return out, nil
	case req.IDs != nil:
		out := make([]dataset.Transaction, len(req.IDs))
		for i, q := range req.IDs {
			items := make([]dataset.Item, len(q))
			for j, id := range q {
				if id < 0 {
					return nil, fmt.Errorf("query %d has negative item id %d", i, id)
				}
				items[j] = dataset.Item(id)
			}
			out[i] = dataset.NewTransaction(items...)
		}
		return out, nil
	default:
		return nil, errors.New("request carries neither queries nor ids")
	}
}

// LimitBody wraps a request body with the server's configured size cap
// (http.MaxBytesReader, so an oversized body aborts the decode and the
// connection, not the process). The streaming handler shares the cap for
// POST /ingest. A non-positive configured cap disables limiting.
func (s *Server) LimitBody(w http.ResponseWriter, r *http.Request) {
	if s.cfg.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
}

// DecodeStatus maps a JSON body-decode error to its HTTP status: 413
// when the body limit tripped, 400 otherwise.
func DecodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.LimitBody(w, r)
	var req AssignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.stats.badRequests.Add(1)
		httpError(w, DecodeStatus(err), fmt.Errorf("decoding request: %w", err))
		return
	}
	lm := s.acquire()
	defer lm.release()
	qs, err := lm.queries(&req)
	if err != nil {
		s.stats.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	assignments := s.batch.submit(lm, qs)

	s.stats.requests.Add(1)
	s.stats.queries.Add(int64(len(qs)))
	for _, ci := range assignments {
		if ci >= 0 {
			s.stats.assigned.Add(1)
		} else {
			s.stats.outliers.Add(1)
		}
	}
	writeJSON(w, http.StatusOK, AssignResponse{Assignments: assignments, Generation: lm.gen})
	s.stats.latency.observe(time.Since(start))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	lm := s.cur.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"generation": lm.gen,
		"model":      lm.model.String(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
	}
	gen, drained, err := s.Reload(req.Path)
	if err != nil {
		// 422: the request was well-formed but the named model was not —
		// the previous generation is still serving.
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Generation: gen, Drained: drained, Model: s.Model().String()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
