// Package chunkwork provides the chunked atomic-cursor work-claiming
// loop shared by the pipeline's sharded phases: the labeling phase and
// Model.AssignBatch (core), the neighbor computations and every stage of
// the sort-based LSH pipeline (similarity).
//
// The pattern: workers goroutines (the calling goroutine participates as
// one of them, so a Run costs workers−1 spawns) repeatedly claim
// fixed-size chunks [lo,hi) of the index range [0,n) off a shared atomic
// cursor. Compared with handing out one index per channel operation, a
// claim is a single atomic add amortized over chunk items, and a chunk
// with expensive items cannot stall a statically-assigned shard — the
// other workers simply claim past it. Because each worker writes only
// the output slots of the indices it claimed, any per-index computation
// run through this loop is byte-identical for every worker count by
// construction.
package chunkwork

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultChunk is the claim size used when the caller passes chunk <= 0.
// Large enough to amortize the atomic add, small enough that tail
// imbalance stays below a chunk per worker.
const DefaultChunk = 64

// Run executes worker(next) on `workers` goroutines (0 means
// GOMAXPROCS; the caller participates as one worker, matching the merge
// and labeling phases). Each invocation's next() claims the following
// chunk of [0,n): it returns lo < hi and ok=true until the range is
// drained, then ok=false forever. A worker typically allocates or
// fetches its scratch once, loops next(), and releases the scratch —
// the scratch-pooling shape the labeler and the LSH signature stage
// share. Run returns when every worker has returned.
func Run(n, workers, chunk int, worker func(next func() (lo, hi int, ok bool))) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if max := (n + chunk - 1) / chunk; workers > max {
		workers = max
	}

	var cursor atomic.Int64
	next := func() (int, int, bool) {
		lo := int(cursor.Add(int64(chunk))) - chunk
		if lo >= n {
			return 0, 0, false
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return lo, hi, true
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	body := func() {
		defer wg.Done()
		worker(next)
	}
	for w := 1; w < workers; w++ {
		go body()
	}
	body() // the coordinator participates
	wg.Wait()
}

// Rows runs fn(i) for every i in [0,n), claiming chunks off the shared
// cursor — the convenience form for loops without per-worker scratch.
func Rows(n, workers, chunk int, fn func(i int)) {
	Run(n, workers, chunk, func(next func() (int, int, bool)) {
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
	})
}
