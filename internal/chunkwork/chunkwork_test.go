package chunkwork

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		for _, workers := range []int{1, 2, 4, 8} {
			hits := make([]atomic.Int32, max(n, 1))
			Rows(n, workers, 64, func(i int) { hits[i].Add(1) })
			for i := 0; i < n; i++ {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, got)
				}
			}
		}
	}
}

func TestRunChunksAreInRangeAndDisjoint(t *testing.T) {
	const n = 503
	var total atomic.Int64
	Run(n, 4, 32, func(next func() (int, int, bool)) {
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d)", lo, hi)
				return
			}
			total.Add(int64(hi - lo))
		}
	})
	if total.Load() != n {
		t.Fatalf("chunks covered %d indices, want %d", total.Load(), n)
	}
}

func TestRunPerWorkerScratchIsExclusive(t *testing.T) {
	// Each worker mutates its own scratch on every claim; the final sums
	// must account for every index exactly once even under -race.
	const n = 4096
	var grand atomic.Int64
	Run(n, 8, 16, func(next func() (int, int, bool)) {
		sum := 0 // per-worker scratch
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			for i := lo; i < hi; i++ {
				sum += i
			}
		}
		grand.Add(int64(sum))
	})
	want := int64(n) * int64(n-1) / 2
	if grand.Load() != want {
		t.Fatalf("scratch sums total %d, want %d", grand.Load(), want)
	}
}

func TestRunDefaults(t *testing.T) {
	// workers=0 (GOMAXPROCS) and chunk=0 (DefaultChunk) must still cover
	// the range; n=0 must not call the worker at all.
	seen := make([]atomic.Int32, 100)
	Rows(100, 0, 0, func(i int) { seen[i].Add(1) })
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, seen[i].Load())
		}
	}
	Run(0, 4, 8, func(func() (int, int, bool)) { t.Error("worker invoked for n=0") })
}
