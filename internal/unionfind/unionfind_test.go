package unionfind

import (
	"math/rand"
	"testing"
)

func TestBasic(t *testing.T) {
	f := New(5)
	if f.Count() != 5 || f.Len() != 5 {
		t.Fatalf("fresh forest: count %d len %d", f.Count(), f.Len())
	}
	if !f.Union(0, 1) || !f.Union(1, 2) {
		t.Fatal("unions failed")
	}
	if f.Union(0, 2) {
		t.Fatal("union of already-joined sets reported a merge")
	}
	if f.Count() != 3 {
		t.Fatalf("Count = %d, want 3", f.Count())
	}
	if !f.Same(0, 2) || f.Same(0, 3) {
		t.Fatal("Same wrong")
	}
}

func TestLabelsAndComponents(t *testing.T) {
	f := New(6)
	f.Union(4, 5)
	f.Union(0, 2)
	labels := f.Labels()
	if labels[0] != labels[2] || labels[4] != labels[5] {
		t.Fatalf("labels = %v", labels)
	}
	if labels[0] == labels[4] || labels[1] == labels[0] {
		t.Fatalf("labels merged distinct sets: %v", labels)
	}
	// Dense 0..k-1 labeling in order of first appearance.
	if labels[0] != 0 || labels[1] != 1 || labels[3] != 2 || labels[4] != 3 {
		t.Fatalf("labels not dense/ordered: %v", labels)
	}
	comps := f.Components()
	if len(comps) != 4 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 2 || comps[0][0] != 0 || comps[0][1] != 2 {
		t.Fatalf("comps[0] = %v", comps[0])
	}
}

// Randomized equivalence against a naive labeling model.
func TestAgainstNaiveModel(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	const n = 120
	f := New(n)
	model := make([]int, n) // model[i] = set id
	for i := range model {
		model[i] = i
	}
	relabel := func(from, to int) {
		for i := range model {
			if model[i] == from {
				model[i] = to
			}
		}
	}
	for step := 0; step < 3000; step++ {
		x, y := r.Intn(n), r.Intn(n)
		merged := f.Union(x, y)
		if merged != (model[x] != model[y]) {
			t.Fatalf("step %d: Union(%d,%d) = %v, model disagree", step, x, y, merged)
		}
		if merged {
			relabel(model[y], model[x])
		}
		if step%97 == 0 {
			a, b := r.Intn(n), r.Intn(n)
			if f.Same(a, b) != (model[a] == model[b]) {
				t.Fatalf("step %d: Same(%d,%d) disagrees with model", step, a, b)
			}
		}
	}
	distinct := map[int]bool{}
	for _, s := range model {
		distinct[s] = true
	}
	if f.Count() != len(distinct) {
		t.Fatalf("Count = %d, model %d", f.Count(), len(distinct))
	}
}
