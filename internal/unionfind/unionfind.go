// Package unionfind implements a disjoint-set forest with union by rank
// and path compression. It backs the QROCK variant of ROCK (clusters as
// connected components of the θ-neighbor graph) and component diagnostics
// in the experiment harness.
package unionfind

// Forest is a disjoint-set forest over the integers [0, n). The zero value
// is an empty forest; use New.
type Forest struct {
	parent []int32
	rank   []int8
	count  int
}

// New returns a forest of n singleton sets.
func New(n int) *Forest {
	f := &Forest{parent: make([]int32, n), rank: make([]int8, n), count: n}
	for i := range f.parent {
		f.parent[i] = int32(i)
	}
	return f
}

// Len reports the number of elements.
func (f *Forest) Len() int { return len(f.parent) }

// Count reports the current number of disjoint sets.
func (f *Forest) Count() int { return f.count }

// Find returns the canonical representative of x's set.
func (f *Forest) Find(x int) int {
	root := x
	for f.parent[root] != int32(root) {
		root = int(f.parent[root])
	}
	for f.parent[x] != int32(root) {
		f.parent[x], x = int32(root), int(f.parent[x])
	}
	return root
}

// Union merges the sets containing x and y, reporting whether a merge
// happened (false when they were already together).
func (f *Forest) Union(x, y int) bool {
	rx, ry := f.Find(x), f.Find(y)
	if rx == ry {
		return false
	}
	if f.rank[rx] < f.rank[ry] {
		rx, ry = ry, rx
	}
	f.parent[ry] = int32(rx)
	if f.rank[rx] == f.rank[ry] {
		f.rank[rx]++
	}
	f.count--
	return true
}

// Same reports whether x and y are in the same set.
func (f *Forest) Same(x, y int) bool { return f.Find(x) == f.Find(y) }

// Labels returns a dense labeling of elements: elements in the same set
// share a label, labels are assigned 0,1,... in order of first appearance.
func (f *Forest) Labels() []int {
	labels := make([]int, len(f.parent))
	next := 0
	seen := make(map[int]int)
	for i := range f.parent {
		r := f.Find(i)
		l, ok := seen[r]
		if !ok {
			l = next
			seen[r] = l
			next++
		}
		labels[i] = l
	}
	return labels
}

// Components returns the members of each set, grouped, ordered by first
// appearance and ascending within each group.
func (f *Forest) Components() [][]int {
	labels := f.Labels()
	n := 0
	for _, l := range labels {
		if l+1 > n {
			n = l + 1
		}
	}
	out := make([][]int, n)
	for i, l := range labels {
		out[l] = append(out[l], i)
	}
	return out
}
