package similarity

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/synth"
)

// The LSH oracle: the sort-based sharded pipeline (ComputeLSH) must
// produce neighbor lists identical to the prototype implementation
// (ComputeLSHReference) for every configuration and worker count — same
// hash family, same banding, same verification. Run under -race in CI.

// lshOracleData mixes the regimes the pipeline has to get right:
// clustered groups, duplicate transactions, empty transactions, and a
// few hub items present in most rows.
func lshOracleData(seed int64, n int) []dataset.Transaction {
	r := rand.New(rand.NewSource(seed))
	ts := make([]dataset.Transaction, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%37 == 36:
			ts = append(ts, dataset.NewTransaction()) // empty
		case i%11 == 10 && i > 0:
			ts = append(ts, ts[r.Intn(i)]) // duplicate of an earlier row
		default:
			base := (i % 5) * 25
			items := make([]dataset.Item, 0, 12)
			for k := 0; k < 10; k++ {
				items = append(items, dataset.Item(base+r.Intn(18)))
			}
			items = append(items, dataset.Item(200+r.Intn(3))) // hubs
			ts = append(ts, dataset.NewTransaction(items...))
		}
	}
	return ts
}

func TestLSHOracle(t *testing.T) {
	ts := lshOracleData(71, 300)
	configs := []struct {
		name  string
		theta float64
		opts  LSHOptions
	}{
		{"defaults", 0.5, LSHOptions{Seed: 1}},
		{"uneven-rounded", 0.5, LSHOptions{Hashes: 100, Bands: 24, Seed: 2}},
		{"bands-exceed-hashes", 0.5, LSHOptions{Hashes: 8, Bands: 50, Seed: 3}},
		{"include-self", 0.6, LSHOptions{Seed: 4, IncludeSelf: true}},
		{"theta-zero-self", 0, LSHOptions{Seed: 5, IncludeSelf: true}},
		{"dice", 0.55, LSHOptions{Seed: 6, Measure: Dice}},
		{"cosine", 0.55, LSHOptions{Seed: 7, Measure: Cosine}},
		{"overlap", 0.7, LSHOptions{Seed: 8, Measure: Overlap}},
		{"custom-measure", 0.4, LSHOptions{Seed: 9, Measure: Attribute(12)}},
		{"sharp-bands", 0.45, LSHOptions{Hashes: 96, Bands: 32, Seed: 10}},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			ref := ComputeLSHReference(ts, cfg.theta, cfg.opts)
			for _, workers := range []int{1, 2, 4, 8} {
				opts := cfg.opts
				opts.Workers = workers
				got := ComputeLSH(ts, cfg.theta, opts)
				if !neighborsEqual(ref, got) {
					t.Fatalf("workers=%d: pipeline diverges from reference", workers)
				}
			}
		})
	}
}

func TestLSHWorkerInvariance(t *testing.T) {
	ts := lshOracleData(72, 400)
	base := ComputeLSH(ts, 0.5, LSHOptions{Seed: 11, Workers: 1})
	for _, workers := range []int{2, 4, 8} {
		got := ComputeLSH(ts, 0.5, LSHOptions{Seed: 11, Workers: workers})
		if !neighborsEqual(base, got) {
			t.Fatalf("workers=%d produced different neighbor lists than workers=1", workers)
		}
		if got.LSH.CandidatePairs != base.LSH.CandidatePairs ||
			got.LSH.VerifiedEdges != base.LSH.VerifiedEdges ||
			got.LSH.Recall != base.LSH.Recall ||
			got.LSH.RecallSampled != base.LSH.RecallSampled {
			t.Fatalf("workers=%d ledger %+v differs from workers=1 ledger %+v", workers, got.LSH, base.LSH)
		}
	}
}

func TestLSHOptionsRounding(t *testing.T) {
	cases := []struct {
		in            LSHOptions
		hashes, bands int
	}{
		{LSHOptions{}, 96, 24},                        // defaults
		{LSHOptions{Hashes: 96, Bands: 24}, 96, 24},   // already even
		{LSHOptions{Hashes: 100, Bands: 24}, 120, 24}, // rounded up, not truncated
		{LSHOptions{Hashes: 97, Bands: 32}, 128, 32},
		{LSHOptions{Hashes: 8, Bands: 50}, 8, 8}, // bands clamped to hashes
		{LSHOptions{Hashes: 5, Bands: 3}, 6, 3},  // clamp then round
		{LSHOptions{Hashes: -1, Bands: -1}, 96, 24},
	}
	for _, c := range cases {
		got := c.in.withDefaults()
		if got.Hashes != c.hashes || got.Bands != c.bands {
			t.Errorf("withDefaults(%+v) = hashes %d bands %d, want %d/%d",
				c.in, got.Hashes, got.Bands, c.hashes, c.bands)
		}
		if got.Hashes%got.Bands != 0 {
			t.Errorf("withDefaults(%+v): %d hashes not divisible by %d bands — rows would be dropped",
				c.in, got.Hashes, got.Bands)
		}
	}
}

// TestLSHRecallPropertyHubHeavy is the recall property test against the
// exact oracle on the hub-heavy basket workload (universally popular
// noise items whose posting lists grow with n): at θ = 0.45 with the
// sharp 96/32 banding (band threshold ≈ 0.31), measured edge recall
// must be ≥ 0.95, the ledger's sampled estimate must agree with the
// true recall, and no false positives may appear.
func TestLSHRecallPropertyHubHeavy(t *testing.T) {
	d := synth.Basket(synth.BasketConfig{
		Transactions:    3000,
		Clusters:        15,
		TemplateItems:   15,
		TransactionSize: 12,
		NoiseItems:      15,
		NoiseRate:       0.15,
		Seed:            99,
	})
	theta := 0.45
	exact := ComputeIndexed(d.Trans, theta, Options{})
	approx := ComputeLSH(d.Trans, theta, LSHOptions{Hashes: 96, Bands: 32, Seed: 12, RecallSample: 500})

	var exactTotal, hit int
	for i := range d.Trans {
		for _, j := range exact.Lists[i] {
			exactTotal++
			if approx.Contains(i, j) {
				hit++
			}
		}
		for _, j := range approx.Lists[i] {
			if !exact.Contains(i, j) {
				t.Fatalf("false positive %d-%d", i, j)
			}
		}
	}
	if exactTotal == 0 {
		t.Fatal("degenerate workload: no exact edges")
	}
	recall := float64(hit) / float64(exactTotal)
	if recall < 0.95 {
		t.Fatalf("edge recall %.4f < 0.95 (%d of %d edges)", recall, hit, exactTotal)
	}

	st := approx.LSH
	if st == nil {
		t.Fatal("no LSH ledger on the result")
	}
	if st.RecallSampled != 500 {
		t.Fatalf("ledger sampled %d rows, want 500", st.RecallSampled)
	}
	if st.VerifiedEdges <= 0 || st.CandidatePairs < st.VerifiedEdges {
		t.Fatalf("implausible ledger: %+v", st)
	}
	if diff := st.Recall - recall; diff < -0.03 || diff > 0.03 {
		t.Fatalf("sampled recall %.4f far from true recall %.4f", st.Recall, recall)
	}
}

// TestLSHRecallSampleKnob: negative disables the estimate, and the
// estimate stays deterministic for a fixed seed.
func TestLSHRecallSampleKnob(t *testing.T) {
	ts := lshOracleData(73, 200)
	off := ComputeLSH(ts, 0.5, LSHOptions{Seed: 13, RecallSample: -1})
	if off.LSH.RecallSampled != 0 || off.LSH.Recall != 1 {
		t.Fatalf("disabled estimate still measured: %+v", off.LSH)
	}
	a := ComputeLSH(ts, 0.5, LSHOptions{Seed: 13})
	b := ComputeLSH(ts, 0.5, LSHOptions{Seed: 13, Workers: 4})
	if a.LSH.Recall != b.LSH.Recall || a.LSH.RecallSampled != b.LSH.RecallSampled {
		t.Fatalf("recall estimate not deterministic: %+v vs %+v", a.LSH, b.LSH)
	}
	if !neighborsEqual(off, a) {
		t.Fatal("recall sampling changed the neighbor lists")
	}
}

// TestLSHCustomMeasureBruteRecall: with a custom measure the recall
// estimator cannot use the item index (the measure may be positive on
// disjoint pairs) and must fall back to the brute scan.
func TestLSHCustomMeasureBruteRecall(t *testing.T) {
	ts := lshOracleData(74, 150)
	nb := ComputeLSH(ts, 0.4, LSHOptions{Seed: 14, Measure: Attribute(12), RecallSample: 50})
	if nb.LSH.RecallSampled != 50 {
		t.Fatalf("sampled %d rows, want 50", nb.LSH.RecallSampled)
	}
	if nb.LSH.Recall < 0 || nb.LSH.Recall > 1 {
		t.Fatalf("recall %g outside [0,1]", nb.LSH.Recall)
	}
}

func ExampleLSHOptions() {
	// The banding S-curve: with 96 hashes in 32 bands of 3 rows, a pair
	// with Jaccard s becomes a candidate with probability
	// 1-(1-s³)³², putting the candidate threshold near (1/32)^(1/3)≈0.31
	// — comfortably under a θ of 0.45, which is what keeps recall high.
	d := synth.Basket(synth.BasketConfig{Transactions: 500, Clusters: 5, Seed: 7})
	nb := ComputeLSH(d.Trans, 0.45, LSHOptions{Hashes: 96, Bands: 32, Seed: 1})
	fmt.Println(nb.LSH.VerifiedEdges > 0, nb.LSH.CandidatePairs >= nb.LSH.VerifiedEdges)
	// Output: true true
}
