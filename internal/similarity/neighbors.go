package similarity

import (
	"runtime"
	"sort"

	"github.com/rockclust/rock/internal/chunkwork"
	"github.com/rockclust/rock/internal/dataset"
)

// Neighbors holds the θ-neighbor lists of a dataset: Lists[i] is the
// sorted slice of indices j with sim(i,j) ≥ θ. Whether i itself appears in
// Lists[i] is controlled by Options.IncludeSelf.
type Neighbors struct {
	Lists [][]int32
	// LSH carries the quality ledger of the run when the lists were
	// produced by the approximate ComputeLSH pipeline; nil for the exact
	// computations.
	LSH *LSHStats
}

// Len reports the number of points.
func (nb *Neighbors) Len() int { return len(nb.Lists) }

// Degree reports the number of neighbors of point i.
func (nb *Neighbors) Degree(i int) int { return len(nb.Lists[i]) }

// Contains reports whether j is a neighbor of i.
func (nb *Neighbors) Contains(i int, j int32) bool {
	l := nb.Lists[i]
	k := sort.Search(len(l), func(k int) bool { return l[k] >= j })
	return k < len(l) && l[k] == j
}

// Stats summarizes neighbor-list sizes: the average and maximum degree,
// written m_a and m_m in the paper's complexity analysis, and the total
// number of directed neighbor entries.
func (nb *Neighbors) Stats() (avg float64, max int, total int) {
	for _, l := range nb.Lists {
		total += len(l)
		if len(l) > max {
			max = len(l)
		}
	}
	if len(nb.Lists) > 0 {
		avg = float64(total) / float64(len(nb.Lists))
	}
	return avg, max, total
}

// Options configure neighbor computation.
type Options struct {
	// Measure is the similarity; nil means Jaccard.
	Measure Measure
	// IncludeSelf adds each point to its own neighbor list (sim(p,p)=1 ≥ θ
	// always holds for the provided measures on non-empty transactions).
	// The default, matching pyclustering and cba, is to exclude self.
	IncludeSelf bool
	// Workers bounds the number of goroutines used; 0 means GOMAXPROCS.
	// Results are identical regardless of worker count.
	Workers int
}

func (o Options) measure() Measure {
	if o.Measure == nil {
		return Jaccard
	}
	return o.Measure
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return defaultWorkers()
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Compute builds neighbor lists by brute force, evaluating the measure on
// all O(n²) pairs. It works with any Measure and any θ. Rows are computed
// in parallel; output is deterministic.
func Compute(ts []dataset.Transaction, theta float64, opts Options) *Neighbors {
	n := len(ts)
	sim := opts.measure()
	nb := &Neighbors{Lists: make([][]int32, n)}
	chunkwork.Rows(n, opts.workers(), 16, func(i int) {
		var l []int32
		for j := 0; j < n; j++ {
			if j == i {
				if opts.IncludeSelf && sim(ts[i], ts[i]) >= theta {
					l = append(l, int32(j))
				}
				continue
			}
			if sim(ts[i], ts[j]) >= theta {
				l = append(l, int32(j))
			}
		}
		nb.Lists[i] = l
	})
	return nb
}

// ComputeIndexed builds neighbor lists through an inverted index over
// items: only pairs sharing at least one item are examined, which is exact
// for the intersection-based measures in this package whenever θ > 0
// (pairs with empty intersection have similarity 0 < θ). For θ ≤ 0 or a
// custom Measure that can be positive on disjoint transactions, use
// Compute.
//
// The index yields intersection sizes directly, so each candidate pair
// costs O(1) on top of the posting-list scan.
func ComputeIndexed(ts []dataset.Transaction, theta float64, opts Options) *Neighbors {
	n := len(ts)
	if theta <= 0 {
		return Compute(ts, theta, opts)
	}
	sim := opts.measure()

	// Build postings: item -> ascending ids of transactions holding it.
	var nitems int
	for _, t := range ts {
		for _, it := range t {
			if int(it) >= nitems {
				nitems = int(it) + 1
			}
		}
	}
	postings := make([][]int32, nitems)
	for i, t := range ts {
		for _, it := range t {
			postings[it] = append(postings[it], int32(i))
		}
	}

	// With a built-in measure the similarity follows directly from the
	// accumulated intersection count — O(1) per candidate, bit-identical
	// to the pairwise evaluation because both share one counted form. A
	// custom Measure falls back to re-evaluating on the candidate pair.
	cm := Counted(opts.Measure)

	nb := &Neighbors{Lists: make([][]int32, n)}
	chunkwork.Run(n, opts.workers(), 64, func(next func() (int, int, bool)) {
		counts := make([]int32, n) // per-worker scratch
		touched := make([]int32, 0, 256)
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			for i := lo; i < hi; i++ {
				// Accumulate |ts[i] ∩ ts[j]| for every j sharing an item.
				for _, it := range ts[i] {
					for _, j := range postings[it] {
						if int(j) == i {
							continue
						}
						if counts[j] == 0 {
							touched = append(touched, j)
						}
						counts[j]++
					}
				}
				var l []int32
				if opts.IncludeSelf && len(ts[i]) > 0 {
					l = append(l, int32(i))
				}
				for _, j := range touched {
					if cm != nil {
						if cm(int(counts[j]), len(ts[i]), len(ts[j])) >= theta {
							l = append(l, j)
						}
					} else if sim(ts[i], ts[int(j)]) >= theta {
						l = append(l, j)
					}
					counts[j] = 0
				}
				touched = touched[:0]
				sort.Slice(l, func(a, b int) bool { return l[a] < l[b] })
				nb.Lists[i] = l
			}
		}
	})
	return nb
}
