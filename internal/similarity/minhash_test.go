package similarity

import (
	"math/rand"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

// lshData builds clustered transactions with high within-group Jaccard.
func lshData(r *rand.Rand, groups, perGroup int) []dataset.Transaction {
	var ts []dataset.Transaction
	for g := 0; g < groups; g++ {
		base := g * 30
		for i := 0; i < perGroup; i++ {
			items := make([]dataset.Item, 0, 10)
			for k := 0; k < 10; k++ {
				items = append(items, dataset.Item(base+r.Intn(12)))
			}
			ts = append(ts, dataset.NewTransaction(items...))
		}
	}
	return ts
}

func TestLSHNoFalsePositives(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	ts := lshData(r, 3, 40)
	theta := 0.5
	exact := Compute(ts, theta, Options{})
	approx := ComputeLSH(ts, theta, LSHOptions{Seed: 1})
	for i := range ts {
		for _, j := range approx.Lists[i] {
			if !exact.Contains(i, j) {
				t.Fatalf("false positive: %d-%d (sim %g)", i, j, Jaccard(ts[i], ts[int(j)]))
			}
		}
	}
}

func TestLSHHighRecallAboveThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	ts := lshData(r, 4, 50)
	theta := 0.6 // well above the default band threshold ≈ (1/24)^(1/4) ≈ 0.45
	exact := Compute(ts, theta, Options{})
	approx := ComputeLSH(ts, theta, LSHOptions{Seed: 2})
	_, _, exactTotal := exact.Stats()
	_, _, approxTotal := approx.Stats()
	if exactTotal == 0 {
		t.Fatal("degenerate test data: no exact neighbors")
	}
	recall := float64(approxTotal) / float64(exactTotal)
	if recall < 0.95 {
		t.Fatalf("recall %.3f < 0.95 (%d of %d edges)", recall, approxTotal, exactTotal)
	}
}

func TestLSHDeterministicPerSeed(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	ts := lshData(r, 2, 30)
	a := ComputeLSH(ts, 0.5, LSHOptions{Seed: 9})
	b := ComputeLSH(ts, 0.5, LSHOptions{Seed: 9})
	if !neighborsEqual(a, b) {
		t.Fatal("same seed produced different neighbor lists")
	}
}

func TestLSHSelfAndEmpty(t *testing.T) {
	ts := []dataset.Transaction{
		dataset.NewTransaction(1, 2, 3),
		dataset.NewTransaction(1, 2, 3),
		dataset.NewTransaction(), // empty: never anyone's neighbor
	}
	nb := ComputeLSH(ts, 0.9, LSHOptions{Seed: 1, IncludeSelf: true})
	if !nb.Contains(0, 0) || !nb.Contains(0, 1) {
		t.Fatalf("identical transactions not found: %v", nb.Lists)
	}
	if nb.Degree(2) != 0 {
		t.Fatalf("empty transaction has neighbors: %v", nb.Lists[2])
	}
	empty := ComputeLSH(nil, 0.5, LSHOptions{})
	if empty.Len() != 0 {
		t.Fatal("nil input mishandled")
	}
}

func TestLSHMoreBandsRaiseRecall(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	ts := lshData(r, 3, 40)
	theta := 0.5
	few := ComputeLSH(ts, theta, LSHOptions{Hashes: 32, Bands: 4, Seed: 3})
	many := ComputeLSH(ts, theta, LSHOptions{Hashes: 96, Bands: 32, Seed: 3})
	_, _, fewTotal := few.Stats()
	_, _, manyTotal := many.Stats()
	if manyTotal < fewTotal {
		t.Fatalf("more bands found fewer neighbors: %d vs %d", manyTotal, fewTotal)
	}
}
