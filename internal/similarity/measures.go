// Package similarity provides the set-similarity measures used by ROCK and
// the computation of θ-neighbor lists over a dataset, both by brute force
// and through an inverted index over items.
//
// Throughout the package, similarity values lie in [0,1] and two
// transactions are θ-neighbors when sim(a,b) ≥ θ. Following the paper, the
// default measure for market-basket data (and for categorical records
// encoded as attribute=value transactions) is the Jaccard coefficient.
package similarity

import (
	"github.com/rockclust/rock/internal/dataset"
)

// Measure computes a similarity in [0,1] between two transactions.
type Measure func(a, b dataset.Transaction) float64

// The four built-ins delegate to their CountedMeasure forms (counted.go),
// so index-driven paths that recover the intersection size from postings
// compute bit-identical similarities to the pairwise evaluations here.

// Jaccard returns |a ∩ b| / |a ∪ b|, the paper's similarity for
// market-basket transactions. Two empty transactions are defined to have
// similarity 0: an empty record supports no evidence of association.
func Jaccard(a, b dataset.Transaction) float64 {
	return countedJaccard(a.IntersectSize(b), len(a), len(b))
}

// Dice returns 2|a ∩ b| / (|a| + |b|).
func Dice(a, b dataset.Transaction) float64 {
	return countedDice(a.IntersectSize(b), len(a), len(b))
}

// Cosine returns |a ∩ b| / √(|a|·|b|), the cosine of the angle between the
// transactions' binary vectors.
func Cosine(a, b dataset.Transaction) float64 {
	return countedCosine(a.IntersectSize(b), len(a), len(b))
}

// Overlap returns |a ∩ b| / min(|a|, |b|).
func Overlap(a, b dataset.Transaction) float64 {
	return countedOverlap(a.IntersectSize(b), len(a), len(b))
}

// Attribute returns the fraction of a fixed number of categorical
// attributes on which two encoded records agree: |a ∩ b| / nattrs. It is
// the complement of the Hamming distance for records without missing
// values and is provided for datasets where every record has full arity.
func Attribute(nattrs int) Measure {
	return func(a, b dataset.Transaction) float64 {
		if nattrs <= 0 {
			return 0
		}
		return float64(a.IntersectSize(b)) / float64(nattrs)
	}
}
