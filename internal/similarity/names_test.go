package similarity

import "testing"

// Name/ByName must round-trip every built-in measure and reject
// everything else — the property the model file format leans on.
func TestMeasureNames(t *testing.T) {
	for _, m := range []Measure{Jaccard, Dice, Cosine, Overlap} {
		name := Name(m)
		if name == "" {
			t.Fatal("built-in measure has no name")
		}
		back := ByName(name)
		if back == nil || Name(back) != name {
			t.Fatalf("ByName(%q) does not round-trip", name)
		}
	}
	if Name(nil) != NameJaccard {
		t.Fatal("nil must name Jaccard, matching Config defaulting")
	}
	if Name(Attribute(4)) != "" {
		t.Fatal("closures must have no name — they cannot be serialized")
	}
	if ByName("nope") != nil {
		t.Fatal("unknown name must return nil")
	}
}
