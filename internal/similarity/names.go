package similarity

import "reflect"

// Measure names — the stable identifiers a frozen model file records so a
// later process can reconstruct the exact similarity it was built with.
// Only the built-in counted measures have names: a custom Measure func
// cannot be serialized, and Name returning "" is how callers detect that.
const (
	NameJaccard = "jaccard"
	NameDice    = "dice"
	NameCosine  = "cosine"
	NameOverlap = "overlap"
)

// Name returns the canonical name of a built-in measure, or "" for any
// other function. nil names Jaccard, matching Options.Measure and
// Config.Measure defaulting. Like Counted, identification compares
// function code pointers, so only this package's top-level functions
// match; closures such as Attribute(n) never do.
func Name(m Measure) string {
	if m == nil {
		return NameJaccard
	}
	switch reflect.ValueOf(m).Pointer() {
	case reflect.ValueOf(Jaccard).Pointer():
		return NameJaccard
	case reflect.ValueOf(Dice).Pointer():
		return NameDice
	case reflect.ValueOf(Cosine).Pointer():
		return NameCosine
	case reflect.ValueOf(Overlap).Pointer():
		return NameOverlap
	}
	return ""
}

// ByName returns the built-in measure with the given canonical name, or
// nil when the name is unknown. ByName(Name(m)) == m for every built-in
// measure, which is what makes the round trip through a model file exact.
func ByName(name string) Measure {
	switch name {
	case NameJaccard:
		return Jaccard
	case NameDice:
		return Dice
	case NameCosine:
		return Cosine
	case NameOverlap:
		return Overlap
	}
	return nil
}
