package similarity

import (
	"sort"

	"github.com/rockclust/rock/internal/chunkwork"
	"github.com/rockclust/rock/internal/dataset"
)

// ComputeLSHReference is the original prototype LSH implementation, kept
// as the oracle fixture for the sort-based pipeline in ComputeLSH (the
// repo's established discipline: every rewritten phase keeps its
// predecessor and a byte-identity proof). It materializes the full
// signature matrix, buckets each band through a map[uint64][]int32, and
// accumulates per-point candidate sets in n maps — the allocation
// behavior the pipeline exists to avoid. Same hash family, same band
// keys, same defaulting: for every input, seed, and worker count its
// neighbor lists equal ComputeLSH's exactly (TestLSHOracle).
func ComputeLSHReference(ts []dataset.Transaction, theta float64, opts LSHOptions) *Neighbors {
	opts = opts.withDefaults()
	n := len(ts)
	nb := &Neighbors{Lists: make([][]int32, n)}
	if n == 0 {
		return nb
	}
	sim := Options{Measure: opts.Measure}.measure()
	as, bs, _ := lshHashFamily(opts.Seed, opts.Hashes)

	// Signatures, computed in parallel.
	sigs := make([][]uint32, n)
	chunkwork.Rows(n, opts.workers(), 64, func(i int) {
		sig := make([]uint32, opts.Hashes)
		minhashSig(ts[i], as, bs, sig)
		sigs[i] = sig
	})

	// Banded bucketing: transactions sharing a band key are candidates.
	rowsPerBand := opts.Hashes / opts.Bands
	candidates := make([]map[int32]struct{}, n)
	for i := range candidates {
		candidates[i] = make(map[int32]struct{})
	}
	for b := 0; b < opts.Bands; b++ {
		buckets := make(map[uint64][]int32)
		for i := 0; i < n; i++ {
			if len(ts[i]) == 0 {
				continue // empty transactions hash to the sentinel; skip
			}
			key := bandKey(sigs[i][b*rowsPerBand : (b+1)*rowsPerBand])
			buckets[key] = append(buckets[key], int32(i))
		}
		for _, bucket := range buckets {
			for x := 0; x < len(bucket); x++ {
				for y := x + 1; y < len(bucket); y++ {
					candidates[bucket[x]][bucket[y]] = struct{}{}
					candidates[bucket[y]][bucket[x]] = struct{}{}
				}
			}
		}
	}

	// Exact verification.
	chunkwork.Rows(n, opts.workers(), 64, func(i int) {
		var l []int32
		if opts.IncludeSelf && sim(ts[i], ts[i]) >= theta {
			l = append(l, int32(i))
		}
		for j := range candidates[i] {
			if sim(ts[i], ts[int(j)]) >= theta {
				l = append(l, j)
			}
		}
		sort.Slice(l, func(a, b int) bool { return l[a] < l[b] })
		nb.Lists[i] = l
	})
	return nb
}
