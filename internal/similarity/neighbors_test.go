package similarity

import (
	"math/rand"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

func TestComputeSmall(t *testing.T) {
	ts := []dataset.Transaction{
		tr(1, 2, 3), // 0
		tr(1, 2, 4), // 1: sim with 0 = 0.5
		tr(3, 4, 5), // 2: sim with 0 = 0.2, with 1 = 0.2
		tr(9),       // 3: disjoint from all
	}
	nb := Compute(ts, 0.5, Options{})
	want := [][]int32{{1}, {0}, {}, {}}
	for i := range want {
		if len(nb.Lists[i]) != len(want[i]) {
			t.Fatalf("Lists[%d] = %v, want %v", i, nb.Lists[i], want[i])
		}
		for k := range want[i] {
			if nb.Lists[i][k] != want[i][k] {
				t.Fatalf("Lists[%d] = %v, want %v", i, nb.Lists[i], want[i])
			}
		}
	}
	if !nb.Contains(0, 1) || nb.Contains(0, 2) {
		t.Fatal("Contains wrong")
	}
	avg, max, total := nb.Stats()
	if total != 2 || max != 1 || avg != 0.5 {
		t.Fatalf("Stats = %g,%d,%d", avg, max, total)
	}
}

func TestIncludeSelf(t *testing.T) {
	ts := []dataset.Transaction{tr(1), tr(2), tr()} // note: empty transaction
	for _, f := range []func([]dataset.Transaction, float64, Options) *Neighbors{Compute, ComputeIndexed} {
		nb := f(ts, 0.9, Options{IncludeSelf: true})
		if !nb.Contains(0, 0) || !nb.Contains(1, 1) {
			t.Fatal("self missing from neighbor list")
		}
		// sim(∅,∅) = 0 < θ: the empty transaction is not its own neighbor.
		if nb.Contains(2, 2) {
			t.Fatal("empty transaction must not be its own neighbor")
		}
	}
}

func TestThetaBoundaries(t *testing.T) {
	ts := []dataset.Transaction{tr(1, 2), tr(1, 2), tr(3)}
	// θ=1 keeps only identical non-empty transactions.
	nb := Compute(ts, 1.0, Options{})
	if !nb.Contains(0, 1) || nb.Contains(0, 2) || nb.Degree(2) != 0 {
		t.Fatalf("theta=1 lists: %v", nb.Lists)
	}
	// θ=0 makes everything a neighbor of everything (brute force path).
	nb0 := Compute(ts, 0, Options{})
	for i := 0; i < 3; i++ {
		if nb0.Degree(i) != 2 {
			t.Fatalf("theta=0 degree(%d) = %d, want 2", i, nb0.Degree(i))
		}
	}
	// ComputeIndexed falls back to brute force for θ ≤ 0.
	nbi := ComputeIndexed(ts, 0, Options{})
	if !neighborsEqual(nb0, nbi) {
		t.Fatal("indexed fallback at theta=0 differs from brute force")
	}
}

func neighborsEqual(a, b *Neighbors) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Lists {
		if len(a.Lists[i]) != len(b.Lists[i]) {
			return false
		}
		for k := range a.Lists[i] {
			if a.Lists[i][k] != b.Lists[i][k] {
				return false
			}
		}
	}
	return true
}

// The inverted-index path must agree exactly with brute force across
// random datasets, thresholds, worker counts, and self-inclusion.
func TestIndexedMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 5 + r.Intn(60)
		ts := make([]dataset.Transaction, n)
		for i := range ts {
			ts[i] = randTrans(r, 25, 10)
		}
		theta := []float64{0.1, 0.25, 0.5, 0.75, 1.0}[r.Intn(5)]
		opts := Options{IncludeSelf: r.Intn(2) == 0, Workers: 1 + r.Intn(4)}
		brute := Compute(ts, theta, opts)
		indexed := ComputeIndexed(ts, theta, opts)
		if !neighborsEqual(brute, indexed) {
			t.Fatalf("trial %d (n=%d θ=%g opts=%+v): indexed differs from brute", trial, n, theta, opts)
		}
	}
}

func TestWorkerCountIrrelevant(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ts := make([]dataset.Transaction, 80)
	for i := range ts {
		ts[i] = randTrans(r, 30, 8)
	}
	ref := Compute(ts, 0.4, Options{Workers: 1})
	for _, w := range []int{2, 3, 8} {
		if !neighborsEqual(ref, Compute(ts, 0.4, Options{Workers: w})) {
			t.Fatalf("brute force with %d workers differs", w)
		}
		if !neighborsEqual(ref, ComputeIndexed(ts, 0.4, Options{Workers: w})) {
			t.Fatalf("indexed with %d workers differs", w)
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ts := make([]dataset.Transaction, 100)
	for i := range ts {
		ts[i] = randTrans(r, 20, 9)
	}
	nb := ComputeIndexed(ts, 0.3, Options{})
	for i := range ts {
		for _, j := range nb.Lists[i] {
			if !nb.Contains(int(j), int32(i)) {
				t.Fatalf("asymmetric: %d has neighbor %d but not vice versa", i, j)
			}
		}
	}
}

func TestCustomMeasureWithIndex(t *testing.T) {
	// Overlap is intersection-based, so the index remains exact for θ > 0.
	r := rand.New(rand.NewSource(5))
	ts := make([]dataset.Transaction, 60)
	for i := range ts {
		ts[i] = randTrans(r, 18, 7)
	}
	opts := Options{Measure: Overlap}
	if !neighborsEqual(Compute(ts, 0.6, opts), ComputeIndexed(ts, 0.6, opts)) {
		t.Fatal("indexed overlap differs from brute force")
	}
}

func TestNeighborsStatsEmpty(t *testing.T) {
	var nb Neighbors
	avg, max, total := nb.Stats()
	if avg != 0 || max != 0 || total != 0 {
		t.Fatal("Stats on empty neighbors should be zeros")
	}
}
