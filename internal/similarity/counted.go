package similarity

import (
	"math"
	"reflect"
)

// CountedMeasure computes a similarity from the intersection size and the
// two transaction lengths alone, without touching the transactions. Every
// built-in Measure is a pure function of (|a ∩ b|, |a|, |b|), which is
// what makes inverted-index driven neighbor counting exact: an index scan
// yields the intersection size, and the counted form turns it into the
// identical float the Measure would have produced.
type CountedMeasure func(inter, la, lb int) float64

// countedJaccard, countedDice, countedCosine and countedOverlap are the
// counted forms the exported Measures delegate to. Keeping a single
// implementation guarantees the index path and the pairwise path compute
// bit-identical floats — there is no second expression to drift.

func countedJaccard(inter, la, lb int) float64 {
	union := la + lb - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func countedDice(inter, la, lb int) float64 {
	if la+lb == 0 {
		return 0
	}
	return 2 * float64(inter) / float64(la+lb)
}

func countedCosine(inter, la, lb int) float64 {
	if la == 0 || lb == 0 {
		return 0
	}
	return float64(inter) / math.Sqrt(float64(la)*float64(lb))
}

func countedOverlap(inter, la, lb int) float64 {
	m := la
	if lb < m {
		m = lb
	}
	if m == 0 {
		return 0
	}
	return float64(inter) / float64(m)
}

// Counted returns the counted form of m when m is one of the package's
// built-in measures (nil selects Jaccard, matching Options.Measure), and
// nil for any other function. A nil return means the caller must evaluate
// the measure pairwise: a custom Measure may depend on the transactions'
// contents beyond the three counts, or be positive on disjoint pairs,
// and no index path can be exact for it.
//
// Identification compares function code pointers, so only the package's
// own top-level functions match; closures such as Attribute(n) never do.
func Counted(m Measure) CountedMeasure {
	if m == nil {
		return countedJaccard
	}
	p := reflect.ValueOf(m).Pointer()
	switch p {
	case reflect.ValueOf(Jaccard).Pointer():
		return countedJaccard
	case reflect.ValueOf(Dice).Pointer():
		return countedDice
	case reflect.ValueOf(Cosine).Pointer():
		return countedCosine
	case reflect.ValueOf(Overlap).Pointer():
		return countedOverlap
	}
	return nil
}
