package similarity

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/rockclust/rock/internal/dataset"
)

func tr(items ...dataset.Item) dataset.Transaction { return dataset.NewTransaction(items...) }

func TestJaccardValues(t *testing.T) {
	tests := []struct {
		a, b dataset.Transaction
		want float64
	}{
		{tr(1, 2, 3), tr(1, 2, 3), 1},
		{tr(1, 2, 3), tr(4, 5, 6), 0},
		{tr(1, 2, 3), tr(2, 3, 4), 0.5},
		{tr(1, 2), tr(1, 2, 3, 4), 0.5},
		{tr(), tr(), 0},
		{tr(), tr(1), 0},
	}
	for _, tc := range tests {
		if got := Jaccard(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Jaccard(%v,%v) = %g, want %g", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPaperNeighborExample(t *testing.T) {
	// The paper's market-basket example: {1,2,3,4,5}-subsets of size 3
	// have sim = 2/4 = 0.5 when sharing two items and 1/5 = 0.2 when
	// sharing one.
	a := tr(1, 2, 3)
	b := tr(1, 2, 4)
	c := tr(3, 4, 5)
	if got := Jaccard(a, b); got != 0.5 {
		t.Errorf("sim({1,2,3},{1,2,4}) = %g, want 0.5", got)
	}
	if got := Jaccard(a, c); got != 0.2 {
		t.Errorf("sim({1,2,3},{3,4,5}) = %g, want 0.2", got)
	}
}

func TestOtherMeasures(t *testing.T) {
	a, b := tr(1, 2, 3), tr(2, 3, 4, 5)
	if got := Dice(a, b); math.Abs(got-4.0/7.0) > 1e-12 {
		t.Errorf("Dice = %g", got)
	}
	if got := Cosine(a, b); math.Abs(got-2/math.Sqrt(12)) > 1e-12 {
		t.Errorf("Cosine = %g", got)
	}
	if got := Overlap(a, b); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Overlap = %g", got)
	}
	if got := Attribute(4)(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Attribute(4) = %g", got)
	}
	if got := Attribute(0)(a, b); got != 0 {
		t.Errorf("Attribute(0) = %g, want 0", got)
	}
	for _, m := range []Measure{Dice, Cosine, Overlap} {
		if got := m(tr(), tr()); got != 0 {
			t.Errorf("measure on empty pair = %g, want 0", got)
		}
	}
}

func randTrans(r *rand.Rand, universe, maxLen int) dataset.Transaction {
	n := r.Intn(maxLen + 1)
	items := make([]dataset.Item, n)
	for i := range items {
		items[i] = dataset.Item(r.Intn(universe))
	}
	return dataset.NewTransaction(items...)
}

func TestMeasureProperties(t *testing.T) {
	measures := map[string]Measure{"jaccard": Jaccard, "dice": Dice, "cosine": Cosine, "overlap": Overlap}
	for name, m := range measures {
		cfg := &quick.Config{
			MaxCount: 250,
			Values: func(vals []reflect.Value, r *rand.Rand) {
				vals[0] = reflect.ValueOf(randTrans(r, 15, 8))
				vals[1] = reflect.ValueOf(randTrans(r, 15, 8))
			},
		}
		prop := func(a, b dataset.Transaction) bool {
			s := m(a, b)
			if s < 0 || s > 1+1e-12 {
				return false // range
			}
			if math.Abs(s-m(b, a)) > 1e-12 {
				return false // symmetry
			}
			if len(a) > 0 && m(a, a) != 1 {
				return false // self-similarity
			}
			if a.IntersectSize(b) == 0 && s != 0 {
				return false // disjoint sets are maximally dissimilar
			}
			return true
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Jaccard is a true metric on sets via 1 - J; spot-check the triangle
// inequality property on random triples.
func TestJaccardTriangle(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randTrans(r, 12, 8))
			}
		},
	}
	prop := func(a, b, c dataset.Transaction) bool {
		dab := 1 - Jaccard(a, b)
		dbc := 1 - Jaccard(b, c)
		dac := 1 - Jaccard(a, c)
		return dac <= dab+dbc+1e-9
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Every built-in measure's counted form must be the measure, bit for bit,
// on (|a∩b|, |a|, |b|) — the premise that lets inverted-index paths
// (neighbor phase, labeling phase) decide the θ-test without touching the
// transactions. Custom functions and closures must not be claimed.
func TestCountedFormsMatchMeasures(t *testing.T) {
	builtins := []struct {
		name string
		m    Measure
	}{
		{"jaccard", Jaccard},
		{"dice", Dice},
		{"cosine", Cosine},
		{"overlap", Overlap},
	}
	r := rand.New(rand.NewSource(2))
	for _, tc := range builtins {
		cm := Counted(tc.m)
		if cm == nil {
			t.Fatalf("Counted(%s) = nil for a built-in", tc.name)
		}
		for trial := 0; trial < 3000; trial++ {
			a := randTrans(r, 15, 9)
			b := randTrans(r, 15, 9)
			if trial%50 == 0 {
				a = dataset.Transaction{} // exercise the empty edge cases
			}
			want := tc.m(a, b)
			got := cm(a.IntersectSize(b), len(a), len(b))
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: counted form %v != measure %v on |a∩b|=%d |a|=%d |b|=%d",
					tc.name, got, want, a.IntersectSize(b), len(a), len(b))
			}
		}
	}
	if Counted(nil) == nil {
		t.Fatal("Counted(nil) must select Jaccard, mirroring Options.Measure")
	}
	if Counted(Attribute(5)) != nil {
		t.Fatal("Counted claimed an Attribute closure")
	}
	custom := func(a, b dataset.Transaction) float64 { return 1 }
	if Counted(custom) != nil {
		t.Fatal("Counted claimed a custom measure")
	}
}
