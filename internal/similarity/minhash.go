package similarity

import (
	"math/rand"
	"slices"
	"sync"

	"github.com/rockclust/rock/internal/chunkwork"
	"github.com/rockclust/rock/internal/dataset"
)

// This file is the production MinHash/LSH neighbor pipeline: a
// high-throughput, sort-based, sharded rewrite of the prototype kept in
// minhash_reference.go. Both implementations share the hash family, the
// band-key function, and the option defaulting below, and the oracle
// test proves their outputs byte-identical — the rewrite changes
// constant factors only:
//
//   - signatures are computed with per-worker pooled scratch over
//     chunked atomic-cursor claims (chunkwork.Run, the labeler's
//     pattern) and immediately folded into band keys, so no n×Hashes
//     signature matrix is ever materialized;
//   - candidate generation replaces the serial per-band
//     map[uint64][]int32 buckets and the n allocation-heavy
//     map[int32]struct{} candidate sets with packed (bandKey, id)
//     entries sorted per band and packed (i,j) pairs deduplicated by a
//     global sort-unique;
//   - exact verification goes through the counted forms
//     (similarity.Counted) — one sorted-list intersection per unique
//     unordered pair instead of two Measure closure calls per directed
//     candidate.

// LSHOptions configure approximate neighbor computation via MinHash
// signatures with banded locality-sensitive hashing. Candidate pairs are
// verified with the exact measure, so the output has no false positives —
// only (tunably rare) false negatives.
type LSHOptions struct {
	// Hashes is the signature length (default 96). More hashes sharpen
	// the band probabilities. Hashes is rounded up to the next multiple
	// of Bands so that every signature row participates in exactly one
	// band (the defaulting rule below).
	Hashes int
	// Bands divides the signature into Bands groups of Hashes/Bands rows
	// (default 24). Two transactions become candidates when any band of
	// their signatures matches exactly. The probability a pair with
	// Jaccard s becomes a candidate is 1 − (1 − s^(Hashes/Bands))^Bands —
	// an S-curve whose threshold sits near (1/Bands)^(Bands/Hashes).
	Bands int
	// Seed drives the hash functions; fixed seed ⇒ deterministic output.
	Seed int64
	// Measure and IncludeSelf mirror Options; the measure is used for the
	// exact verification of candidates (nil = Jaccard).
	Measure     Measure
	IncludeSelf bool
	// Workers bounds parallelism; 0 means GOMAXPROCS. Neighbor lists are
	// byte-identical for every worker count.
	Workers int
	// RecallSample sets how many rows the pipeline samples to estimate
	// edge recall against an exact computation (the quality ledger in
	// LSHStats). 0 means DefaultRecallSample; negative disables the
	// estimate. Sampling is deterministic under Seed and does not affect
	// the neighbor lists.
	RecallSample int
}

// DefaultRecallSample is the number of rows sampled for the recall
// estimate when LSHOptions.RecallSample is zero. The estimate reuses an
// inverted item index for the built-in measures, so its cost is a few
// posting-list scans — negligible next to the pipeline itself.
const DefaultRecallSample = 64

// withDefaults resolves the banding parameters. The rule: Bands is
// clamped to [1, Hashes], then Hashes is rounded UP to the next multiple
// of Bands. Rounding up (rather than truncating Hashes/Bands) means a
// requested signature length is never silently weakened: every signature
// row lands in exactly one band of equal width. The historical prototype
// silently dropped the trailing Hashes mod Bands rows; both
// implementations now share this resolution, so the oracle covers uneven
// requests too.
func (o LSHOptions) withDefaults() LSHOptions {
	if o.Hashes <= 0 {
		o.Hashes = 96
	}
	if o.Bands <= 0 {
		o.Bands = 24
	}
	if o.Bands > o.Hashes {
		o.Bands = o.Hashes
	}
	if rem := o.Hashes % o.Bands; rem != 0 {
		o.Hashes += o.Bands - rem
	}
	return o
}

func (o LSHOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return defaultWorkers()
}

// LSHStats is the quality ledger of one ComputeLSH run: how many
// candidates banding generated, how many survived exact verification,
// and a sampled estimate of edge recall against the exact neighbor
// relation.
type LSHStats struct {
	// Hashes and Bands are the resolved banding parameters (after the
	// rounding rule of LSHOptions).
	Hashes int
	Bands  int
	// CandidatePairs counts the unique unordered pairs that shared at
	// least one band key — the work the exact verifier had to do.
	CandidatePairs int64
	// VerifiedEdges counts the candidate pairs whose exact similarity
	// passed θ in at least one direction (for the built-in symmetric
	// measures: the undirected edges of the output graph).
	VerifiedEdges int64
	// RecallSampled is the number of rows the recall estimate visited
	// (0 = estimate disabled).
	RecallSampled int
	// Recall estimates edge recall: over the sampled rows, the fraction
	// of exact θ-neighbors the pipeline found. 1 when the sample
	// contained no exact edges.
	Recall float64
}

// lshPrime is the modulus of the hash family h_k(x) = (a_k·x + b_k) mod p.
const lshPrime = uint64(4294967311)

// lshHashFamily draws the hash family deterministically from the seed.
// Both LSH implementations call this with the same seed and hash count,
// so their signatures are identical by construction. Callers that draw
// further values from the returned rng (the recall sampler) do so after
// the family, leaving the family unchanged.
func lshHashFamily(seed int64, hashes int) (as, bs []uint64, rng *rand.Rand) {
	rng = rand.New(rand.NewSource(seed))
	as = make([]uint64, hashes)
	bs = make([]uint64, hashes)
	for k := range as {
		as[k] = uint64(rng.Int63n(int64(lshPrime-2))) + 1
		bs[k] = uint64(rng.Int63n(int64(lshPrime - 1)))
	}
	return as, bs, rng
}

// minhashSig fills sig with the MinHash signature of t: sig[k] is the
// minimum of h_k over t's items (the sentinel 2³¹… for empty t, as in
// the prototype).
func minhashSig(t dataset.Transaction, as, bs []uint64, sig []uint32) {
	for k := range sig {
		min := uint64(1<<63 - 1)
		for _, it := range t {
			if h := (as[k]*uint64(it) + bs[k]) % lshPrime; h < min {
				min = h
			}
		}
		sig[k] = uint32(min)
	}
}

// bandKey hashes one band's signature rows (FNV-1a over the row values).
func bandKey(rows []uint32) uint64 {
	key := uint64(14695981039346656037)
	for _, r := range rows {
		key ^= uint64(r)
		key *= 1099511628211
	}
	return key
}

// bandEntry is one (bandKey, id) pair of the candidate-generation sort.
type bandEntry struct {
	key uint64
	id  int32
}

// pairBuf accumulates packed (i,j) candidate pairs (i<j, i in the high
// word) with amortized sort-unique compaction: bands re-discover the
// same similar pair many times, and compacting whenever the buffer
// doubles keeps memory near the number of UNIQUE pairs instead of the
// number of emissions, at the cost of a constant factor in sorting.
type pairBuf struct {
	pairs     []uint64
	compactAt int
}

const pairBufMinCompact = 1 << 20

func (b *pairBuf) add(p uint64) {
	b.pairs = append(b.pairs, p)
	if b.compactAt == 0 {
		b.compactAt = pairBufMinCompact
	}
	if len(b.pairs) >= b.compactAt {
		b.compact()
	}
}

func (b *pairBuf) compact() {
	slices.Sort(b.pairs)
	b.pairs = slices.Compact(b.pairs)
	b.compactAt = 2 * len(b.pairs)
	if b.compactAt < pairBufMinCompact {
		b.compactAt = pairBufMinCompact
	}
}

// mergeUniqueRuns merges sorted, internally-unique runs into one sorted
// unique slice. The run count is at most the worker count, so a simple
// scan over the heads is cheaper than heap machinery.
func mergeUniqueRuns(runs [][]uint64) []uint64 {
	runs = slices.DeleteFunc(runs, func(r []uint64) bool { return len(r) == 0 })
	if len(runs) == 0 {
		return nil
	}
	if len(runs) == 1 {
		return runs[0]
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]uint64, 0, total)
	heads := make([]int, len(runs))
	for {
		best := -1
		var min uint64
		for r, h := range heads {
			if h >= len(runs[r]) {
				continue
			}
			if v := runs[r][h]; best < 0 || v < min {
				best, min = r, v
			}
		}
		if best < 0 {
			return out
		}
		if len(out) == 0 || out[len(out)-1] != min {
			out = append(out, min)
		}
		for r := range runs {
			if h := heads[r]; h < len(runs[r]) && runs[r][h] == min {
				heads[r]++
			}
		}
	}
}

// ComputeLSH builds approximate θ-neighbor lists: MinHash signatures,
// banded bucketing to generate candidate pairs, exact verification of
// every candidate. For θ well above the band threshold the recall is
// near 1 while the candidate set stays near-linear — the cure for the
// O(n²) neighbor phase that dominates ROCK on large samples, and the
// first-class road to clustering 10⁶ points on one machine.
//
// The pipeline is sort-based and sharded (see the file comment); its
// output is byte-identical to ComputeLSHReference for every worker
// count, and nb.LSH carries the run's quality ledger.
func ComputeLSH(ts []dataset.Transaction, theta float64, opts LSHOptions) *Neighbors {
	opts = opts.withDefaults()
	n := len(ts)
	nb := &Neighbors{
		Lists: make([][]int32, n),
		LSH:   &LSHStats{Hashes: opts.Hashes, Bands: opts.Bands, Recall: 1},
	}
	if n == 0 {
		return nb
	}
	workers := opts.workers()
	bands := opts.Bands
	rowsPerBand := opts.Hashes / opts.Bands
	as, bs, rng := lshHashFamily(opts.Seed, opts.Hashes)

	// Stage 1: band keys. Each worker claims chunks of points, computes
	// the signature into its pooled scratch, and folds it into the
	// point's Bands keys — the full signature matrix never exists.
	keys := make([]uint64, n*bands)
	chunkwork.Run(n, workers, 64, func(next func() (int, int, bool)) {
		sig := make([]uint32, opts.Hashes) // per-worker scratch
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			for i := lo; i < hi; i++ {
				minhashSig(ts[i], as, bs, sig)
				for b := 0; b < bands; b++ {
					keys[i*bands+b] = bandKey(sig[b*rowsPerBand : (b+1)*rowsPerBand])
				}
			}
		}
	})

	// Stage 2: candidate pairs. Workers claim bands; within a band the
	// (key, id) entries are sorted and each equal-key run emits its
	// packed pairs. Empty transactions hash to the sentinel signature
	// and are excluded, as in the reference.
	var (
		runsMu sync.Mutex
		runs   [][]uint64
	)
	chunkwork.Run(bands, workers, 1, func(next func() (int, int, bool)) {
		entries := make([]bandEntry, 0, n) // per-worker scratch, reused across bands
		var buf pairBuf
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			for b := lo; b < hi; b++ {
				entries = entries[:0]
				for i := 0; i < n; i++ {
					if len(ts[i]) == 0 {
						continue
					}
					entries = append(entries, bandEntry{keys[i*bands+b], int32(i)})
				}
				slices.SortFunc(entries, func(x, y bandEntry) int {
					switch {
					case x.key < y.key:
						return -1
					case x.key > y.key:
						return 1
					case x.id < y.id:
						return -1
					case x.id > y.id:
						return 1
					}
					return 0
				})
				for s := 0; s < len(entries); {
					e := s + 1
					for e < len(entries) && entries[e].key == entries[s].key {
						e++
					}
					for x := s; x < e; x++ {
						for y := x + 1; y < e; y++ {
							buf.add(uint64(uint32(entries[x].id))<<32 | uint64(uint32(entries[y].id)))
						}
					}
					s = e
				}
			}
		}
		buf.compact()
		runsMu.Lock()
		runs = append(runs, buf.pairs)
		runsMu.Unlock()
	})
	pairs := mergeUniqueRuns(runs)
	nb.LSH.CandidatePairs = int64(len(pairs))

	// Stage 3: exact verification through the counted forms. One sorted
	// intersection per unique unordered pair; bit 0 records i→j passing,
	// bit 1 records j→i (they differ only for custom asymmetric
	// measures, where the reference also evaluated both directions).
	cm := Counted(opts.Measure)
	sim := Options{Measure: opts.Measure}.measure()
	bits := make([]uint8, len(pairs))
	chunkwork.Run(len(pairs), workers, 512, func(next func() (int, int, bool)) {
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			for p := lo; p < hi; p++ {
				i := int(pairs[p] >> 32)
				j := int(uint32(pairs[p]))
				if cm != nil {
					if cm(ts[i].IntersectSize(ts[j]), len(ts[i]), len(ts[j])) >= theta {
						bits[p] = 3
					}
					continue
				}
				var b uint8
				if sim(ts[i], ts[j]) >= theta {
					b |= 1
				}
				if sim(ts[j], ts[i]) >= theta {
					b |= 2
				}
				bits[p] = b
			}
		}
	})

	// Self-edges mirror the reference: with IncludeSelf, point i is its
	// own neighbor whenever sim(i,i) ≥ θ (false for empty transactions
	// under the built-ins unless θ ≤ 0).
	var self []bool
	if opts.IncludeSelf {
		self = make([]bool, n)
		chunkwork.Rows(n, workers, 256, func(i int) {
			if cm != nil {
				self[i] = cm(len(ts[i]), len(ts[i]), len(ts[i])) >= theta
			} else {
				self[i] = sim(ts[i], ts[i]) >= theta
			}
		})
	}

	// Stage 4: assemble the lists in one arena. Pairs are sorted by
	// (i,j), so for a given row r the reverse entries (i<r) arrive
	// ascending while iterating groups before r, the forward entries
	// (j>r) ascending within group r, and the self entry sits exactly
	// between — each row is sorted without any per-row sort.
	rowLen := make([]int32, n)
	revDeg := make([]int32, n)
	var verified int64
	for p, b := range bits {
		if b == 0 {
			continue
		}
		verified++
		i := pairs[p] >> 32
		j := uint32(pairs[p])
		if b&1 != 0 {
			rowLen[i]++
		}
		if b&2 != 0 {
			rowLen[j]++
			revDeg[j]++
		}
	}
	nb.LSH.VerifiedEdges = verified
	rowStart := make([]int64, n+1)
	for i := 0; i < n; i++ {
		l := int64(rowLen[i])
		if self != nil && self[i] {
			l++
		}
		rowStart[i+1] = rowStart[i] + l
	}
	arena := make([]int32, rowStart[n])
	fwdPos := make([]int64, n)
	revPos := make([]int64, n)
	for r := 0; r < n; r++ {
		revPos[r] = rowStart[r]
		base := rowStart[r] + int64(revDeg[r])
		if self != nil && self[r] {
			arena[base] = int32(r)
			base++
		}
		fwdPos[r] = base
	}
	for p, b := range bits {
		if b == 0 {
			continue
		}
		i := int32(pairs[p] >> 32)
		j := int32(uint32(pairs[p]))
		if b&1 != 0 {
			arena[fwdPos[i]] = j
			fwdPos[i]++
		}
		if b&2 != 0 {
			arena[revPos[j]] = i
			revPos[j]++
		}
	}
	for i := 0; i < n; i++ {
		if row := arena[rowStart[i]:rowStart[i+1]]; len(row) > 0 {
			nb.Lists[i] = row
		}
	}

	lshSampledRecall(ts, theta, opts, cm, sim, nb, rng)
	return nb
}

// lshSampledRecall estimates edge recall on a deterministic sample of
// rows: each sampled row's exact θ-neighbors are recomputed (through an
// inverted item index for the built-in measures with θ > 0, by a brute
// scan otherwise) and checked against the approximate lists. The rng
// continues the hash-family stream, so the sample depends only on Seed.
func lshSampledRecall(ts []dataset.Transaction, theta float64, opts LSHOptions, cm CountedMeasure, sim Measure, nb *Neighbors, rng *rand.Rand) {
	if opts.RecallSample < 0 {
		return
	}
	n := len(ts)
	size := opts.RecallSample
	if size == 0 {
		size = DefaultRecallSample
	}
	if size > n {
		size = n
	}
	sample := rng.Perm(n)[:size]
	nb.LSH.RecallSampled = size

	indexed := cm != nil && theta > 0
	var postings [][]int32
	if indexed {
		var nitems int
		for _, t := range ts {
			for _, it := range t {
				if int(it) >= nitems {
					nitems = int(it) + 1
				}
			}
		}
		postings = make([][]int32, nitems)
		for i, t := range ts {
			for _, it := range t {
				postings[it] = append(postings[it], int32(i))
			}
		}
	}

	var mu sync.Mutex
	var exactTotal, hitTotal int64
	chunkwork.Run(size, opts.workers(), 4, func(next func() (int, int, bool)) {
		var counts []int32
		var touched []int32
		if indexed {
			counts = make([]int32, n)
			touched = make([]int32, 0, 1024)
		}
		var exact, hit int64
		check := func(i int, j int32) {
			exact++
			if nb.Contains(i, j) {
				hit++
			}
		}
		for lo, hi, ok := next(); ok; lo, hi, ok = next() {
			for s := lo; s < hi; s++ {
				i := sample[s]
				if indexed {
					for _, it := range ts[i] {
						for _, j := range postings[it] {
							if int(j) == i {
								continue
							}
							if counts[j] == 0 {
								touched = append(touched, j)
							}
							counts[j]++
						}
					}
					for _, j := range touched {
						if cm(int(counts[j]), len(ts[i]), len(ts[j])) >= theta {
							check(i, j)
						}
						counts[j] = 0
					}
					touched = touched[:0]
					continue
				}
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					if sim(ts[i], ts[j]) >= theta {
						check(i, int32(j))
					}
				}
			}
		}
		mu.Lock()
		exactTotal += exact
		hitTotal += hit
		mu.Unlock()
	})
	if exactTotal > 0 {
		nb.LSH.Recall = float64(hitTotal) / float64(exactTotal)
	}
}
