package similarity

import (
	"math/rand"
	"sort"
	"sync"

	"github.com/rockclust/rock/internal/dataset"
)

// LSHOptions configure approximate neighbor computation via MinHash
// signatures with banded locality-sensitive hashing. Candidate pairs are
// verified with the exact measure, so the output has no false positives —
// only (tunably rare) false negatives.
type LSHOptions struct {
	// Hashes is the signature length (default 96). More hashes sharpen
	// the band probabilities.
	Hashes int
	// Bands divides the signature into Bands groups of Hashes/Bands rows
	// (default 24). Two transactions become candidates when any band of
	// their signatures matches exactly. The probability a pair with
	// Jaccard s becomes a candidate is 1 − (1 − s^(Hashes/Bands))^Bands —
	// an S-curve whose threshold sits near (1/Bands)^(Bands/Hashes).
	Bands int
	// Seed drives the hash functions; fixed seed ⇒ deterministic output.
	Seed int64
	// Measure and IncludeSelf mirror Options; the measure is used for the
	// exact verification of candidates (nil = Jaccard).
	Measure     Measure
	IncludeSelf bool
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (o LSHOptions) withDefaults() LSHOptions {
	if o.Hashes == 0 {
		o.Hashes = 96
	}
	if o.Bands == 0 {
		o.Bands = 24
	}
	if o.Bands > o.Hashes {
		o.Bands = o.Hashes
	}
	return o
}

// ComputeLSH builds approximate θ-neighbor lists: MinHash signatures,
// banded bucketing to generate candidate pairs, exact verification of
// every candidate. For θ well above the band threshold the recall is
// near 1 while the candidate set stays near-linear — the standard cure
// for the O(n²) neighbor phase that dominates ROCK on large samples.
func ComputeLSH(ts []dataset.Transaction, theta float64, opts LSHOptions) *Neighbors {
	opts = opts.withDefaults()
	n := len(ts)
	nb := &Neighbors{Lists: make([][]int32, n)}
	if n == 0 {
		return nb
	}
	sim := Options{Measure: opts.Measure}.measure()

	// Universe size for hashing.
	maxItem := 0
	for _, t := range ts {
		for _, it := range t {
			if int(it) >= maxItem {
				maxItem = int(it) + 1
			}
		}
	}

	// Hash functions h_k(x) = (a_k·x + b_k) mod p over a large prime.
	const prime = uint64(4294967311)
	rng := rand.New(rand.NewSource(opts.Seed))
	as := make([]uint64, opts.Hashes)
	bs := make([]uint64, opts.Hashes)
	for k := range as {
		as[k] = uint64(rng.Int63n(int64(prime-2))) + 1
		bs[k] = uint64(rng.Int63n(int64(prime - 1)))
	}

	// Signatures, computed in parallel.
	sigs := make([][]uint32, n)
	parallelRows(n, opts.Workers, func(i int) {
		sig := make([]uint32, opts.Hashes)
		for k := range sig {
			min := uint64(1<<63 - 1)
			for _, it := range ts[i] {
				if h := (as[k]*uint64(it) + bs[k]) % prime; h < min {
					min = h
				}
			}
			sig[k] = uint32(min)
		}
		sigs[i] = sig
	})

	// Banded bucketing: transactions sharing a band key are candidates.
	rowsPerBand := opts.Hashes / opts.Bands
	candidates := make([]map[int32]struct{}, n)
	for i := range candidates {
		candidates[i] = make(map[int32]struct{})
	}
	for b := 0; b < opts.Bands; b++ {
		buckets := make(map[uint64][]int32)
		for i := 0; i < n; i++ {
			if len(ts[i]) == 0 {
				continue // empty transactions hash to the sentinel; skip
			}
			key := uint64(14695981039346656037)
			for r := b * rowsPerBand; r < (b+1)*rowsPerBand; r++ {
				key ^= uint64(sigs[i][r])
				key *= 1099511628211
			}
			buckets[key] = append(buckets[key], int32(i))
		}
		for _, bucket := range buckets {
			for x := 0; x < len(bucket); x++ {
				for y := x + 1; y < len(bucket); y++ {
					candidates[bucket[x]][bucket[y]] = struct{}{}
					candidates[bucket[y]][bucket[x]] = struct{}{}
				}
			}
		}
	}

	// Exact verification.
	parallelRows(n, opts.Workers, func(i int) {
		var l []int32
		if opts.IncludeSelf && sim(ts[i], ts[i]) >= theta {
			l = append(l, int32(i))
		}
		for j := range candidates[i] {
			if sim(ts[i], ts[int(j)]) >= theta {
				l = append(l, j)
			}
		}
		sort.Slice(l, func(a, b int) bool { return l[a] < l[b] })
		nb.Lists[i] = l
	})
	return nb
}

// parallelRows runs fn(i) for i in [0,n) across workers goroutines.
func parallelRows(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()
}
