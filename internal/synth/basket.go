// Package synth generates the synthetic datasets that stand in for the
// paper's evaluation data (see DESIGN.md §3 for the substitution
// rationale): market-basket streams for the scalability experiments,
// votes-like and mushroom-like categorical records for the quality tables,
// simulated mutual-fund NAV series for the time-series case study, and a
// generic labeled categorical generator for ablations and property tests.
//
// Every generator is fully deterministic given its Seed.
package synth

import (
	"fmt"
	"math/rand"

	"github.com/rockclust/rock/internal/dataset"
)

// BasketConfig parameterizes the market-basket generator. Transactions
// are drawn from per-cluster item templates, the same generative family as
// the paper's scalability datasets: a transaction picks a subset of its
// cluster's template and sprinkles in noise items.
type BasketConfig struct {
	Transactions    int     // total transactions
	Clusters        int     // number of cluster templates
	TemplateItems   int     // items per cluster template (default 20)
	TransactionSize int     // items drawn per transaction (default 8)
	OverlapItems    int     // template items shared with the next cluster (default 0)
	NoiseItems      int     // size of the global noise pool (default 50)
	NoiseRate       float64 // probability an item is replaced by noise (default 0.05)
	Seed            int64
}

func (c BasketConfig) withDefaults() BasketConfig {
	if c.TemplateItems == 0 {
		c.TemplateItems = 20
	}
	if c.TransactionSize == 0 {
		c.TransactionSize = 8
	}
	if c.NoiseItems == 0 {
		c.NoiseItems = 50
	}
	if c.NoiseRate == 0 {
		c.NoiseRate = 0.05
	}
	return c
}

// Basket generates a labeled market-basket dataset. Labels are the
// template index of each transaction ("c0", "c1", ...). Cluster sizes are
// equal up to rounding.
func Basket(cfg BasketConfig) *dataset.Dataset {
	cfg = cfg.withDefaults()
	if cfg.Transactions <= 0 || cfg.Clusters <= 0 {
		return &dataset.Dataset{Vocab: dataset.NewVocabulary()}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := dataset.NewVocabulary()

	// Template g owns items [g·stride, g·stride+TemplateItems), where the
	// stride leaves OverlapItems shared with template g+1.
	stride := cfg.TemplateItems - cfg.OverlapItems
	if stride < 1 {
		stride = 1
	}
	itemName := func(raw int) string { return fmt.Sprintf("i%d", raw) }
	noiseBase := (cfg.Clusters-1)*stride + cfg.TemplateItems

	d := &dataset.Dataset{Vocab: v}
	d.Trans = make([]dataset.Transaction, 0, cfg.Transactions)
	d.Labels = make([]string, 0, cfg.Transactions)
	for i := 0; i < cfg.Transactions; i++ {
		g := i * cfg.Clusters / cfg.Transactions // balanced labels
		base := g * stride
		items := make([]dataset.Item, 0, cfg.TransactionSize)
		for len(items) < cfg.TransactionSize {
			var raw int
			if rng.Float64() < cfg.NoiseRate {
				raw = noiseBase + rng.Intn(cfg.NoiseItems)
			} else {
				raw = base + rng.Intn(cfg.TemplateItems)
			}
			items = append(items, v.Intern(itemName(raw)))
		}
		d.Trans = append(d.Trans, dataset.NewTransaction(items...))
		d.Labels = append(d.Labels, fmt.Sprintf("c%d", g))
	}
	return d
}

// LabeledConfig parameterizes the generic labeled categorical generator:
// k classes over m attributes with per-class preferred values and a noise
// rate that substitutes a uniformly random value.
type LabeledConfig struct {
	Records    int
	Classes    int
	Attributes int     // default 10
	Alphabet   int     // values per attribute (default 5)
	Noise      float64 // probability of replacing a value (default 0.1)
	Missing    float64 // probability of a missing value (default 0)
	Seed       int64
}

func (c LabeledConfig) withDefaults() LabeledConfig {
	if c.Attributes == 0 {
		c.Attributes = 10
	}
	if c.Alphabet == 0 {
		c.Alphabet = 5
	}
	if c.Noise == 0 {
		c.Noise = 0.1
	}
	return c
}

// Labeled generates categorical records where class g prefers value
// (g + a) mod Alphabet on attribute a, corrupted by noise and missing
// values. It is the workhorse for ablation experiments and tests.
func Labeled(cfg LabeledConfig) *dataset.Dataset {
	cfg = cfg.withDefaults()
	if cfg.Records <= 0 || cfg.Classes <= 0 {
		return &dataset.Dataset{Vocab: dataset.NewVocabulary()}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	attrs := make([]string, cfg.Attributes)
	for a := range attrs {
		attrs[a] = fmt.Sprintf("a%d", a)
	}
	records := make([]dataset.Record, cfg.Records)
	labels := make([]string, cfg.Records)
	for i := range records {
		g := i * cfg.Classes / cfg.Records
		rec := make(dataset.Record, cfg.Attributes)
		for a := range rec {
			switch {
			case cfg.Missing > 0 && rng.Float64() < cfg.Missing:
				rec[a] = dataset.Missing
			case rng.Float64() < cfg.Noise:
				rec[a] = fmt.Sprintf("v%d", rng.Intn(cfg.Alphabet))
			default:
				rec[a] = fmt.Sprintf("v%d", (g+a)%cfg.Alphabet)
			}
		}
		records[i] = rec
		labels[i] = fmt.Sprintf("g%d", g)
	}
	return dataset.EncodeRecords(attrs, records, labels, dataset.EncodeOptions{})
}
