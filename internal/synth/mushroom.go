package synth

import (
	"fmt"
	"math/rand"

	"github.com/rockclust/rock/internal/dataset"
)

// mushroomAttrs lists the 22 categorical attributes of the UCI Mushroom
// dataset with the sizes of their value alphabets. The first six are the
// "jitter" attributes: near-constant across species (as many real mushroom
// attributes are) but noisy within every record.
var mushroomAttrs = []struct {
	name     string
	alphabet int
}{
	// Jitter attributes (species-independent base value, per-record noise).
	{"cap-surface", 4}, {"gill-attachment", 2}, {"gill-spacing", 2},
	{"veil-color", 4}, {"ring-number", 3}, {"population", 6},
	// Informative attributes (species templates differ here).
	{"cap-shape", 6}, {"cap-color", 10}, {"bruises", 2}, {"odor", 9},
	{"gill-size", 2}, {"gill-color", 12}, {"stalk-shape", 2},
	{"stalk-root", 5}, {"stalk-surface-above-ring", 4},
	{"stalk-surface-below-ring", 4}, {"stalk-color-above-ring", 9},
	{"stalk-color-below-ring", 9}, {"veil-type", 2}, {"ring-type", 8},
	{"spore-print-color", 9}, {"habitat", 7},
}

const (
	numJitterAttrs = 6
	numInformative = 16
	numFamilies    = 11
)

// Species are organized in 11 families of one edible and one poisonous
// variant. The two variants of a family differ in variantDiff (=3)
// informative attributes — geometrically close, which is what defeats
// centroid-based clustering — while distinct families differ in at least
// 6 informative attributes. Family 8 is the engineered exception: its
// variants differ in only 2 attributes, putting cross-class pairs within
// Jaccard reach of θ = 0.8 and reproducing the paper's single mixed ROCK
// cluster. Sizes sum to 8124 with 4208 edible / 3916 poisonous, the UCI
// totals, and are deliberately very uneven.
var (
	edibleSizes    = []int{1728, 1488, 384, 192, 144, 96, 64, 48, 32, 24, 8}
	poisonousSizes = []int{1184, 1040, 576, 432, 288, 144, 96, 72, 48, 24, 12}

	variantDiff   = 3
	mixedFamily   = 8
	mixedDiff     = 2
	jitterDefault = 0.2
)

// MushroomConfig parameterizes the mushroom-like generator.
type MushroomConfig struct {
	// Jitter is the per-record probability that each of the six jitter
	// attributes deviates from its base value (default 0.2). At the
	// default, ~65% of same-species record pairs exceed Jaccard 0.8
	// (dense θ-neighborhoods) while no cross-species pair outside the
	// engineered family can reach it — yet in squared Euclidean terms
	// within-species spread overlaps the distance to the cross-class
	// sibling species, which is what the paper's traditional baseline
	// trips over.
	Jitter float64
	Seed   int64
}

func (c MushroomConfig) withDefaults() MushroomConfig {
	if c.Jitter == 0 {
		c.Jitter = jitterDefault
	}
	return c
}

// Mushroom generates the stand-in for the UCI Mushroom dataset
// (DESIGN.md E3/E4): 8124 records, 22 attributes, 22 species in 11
// edible/poisonous families. Records are interleaved across species so
// prefix samples stay representative. Names carry the ground-truth
// species for diagnostics.
func Mushroom(cfg MushroomConfig) *dataset.Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	attrs := make([]string, len(mushroomAttrs))
	for i, a := range mushroomAttrs {
		attrs[i] = a.name
	}

	templates, edible := mushroomTemplates()
	nspecies := len(templates)

	sizes := make([]int, nspecies)
	for f := 0; f < numFamilies; f++ {
		sizes[2*f] = edibleSizes[f]
		sizes[2*f+1] = poisonousSizes[f]
	}
	order := interleave(sizes)

	records := make([]dataset.Record, 0, len(order))
	labels := make([]string, 0, len(order))
	names := make([]string, 0, len(order))
	for _, s := range order {
		rec := make(dataset.Record, len(mushroomAttrs))
		for a, at := range mushroomAttrs {
			val := templates[s][a]
			if a < numJitterAttrs && rng.Float64() < cfg.Jitter {
				val = (val + 1 + rng.Intn(at.alphabet-1)) % at.alphabet
			}
			rec[a] = fmt.Sprintf("%c", 'a'+val)
		}
		records = append(records, rec)
		if edible[s] {
			labels = append(labels, "edible")
		} else {
			labels = append(labels, "poisonous")
		}
		names = append(names, fmt.Sprintf("sp%02d", s))
	}
	d := dataset.EncodeRecords(attrs, records, labels, dataset.EncodeOptions{})
	d.Names = names
	return d
}

// mushroomTemplates builds the 22 species templates (value index per
// attribute) and their classes. Even species indices are the edible
// variants, odd the poisonous ones; species 2f and 2f+1 form family f.
func mushroomTemplates() (templates [][]int, edible []bool) {
	templates = make([][]int, 2*numFamilies)
	edible = make([]bool, 2*numFamilies)
	for f := 0; f < numFamilies; f++ {
		base := make([]int, len(mushroomAttrs))
		for a, at := range mushroomAttrs {
			if a < numJitterAttrs {
				base[a] = 0 // jitter attributes share a global base value
				continue
			}
			// Family templates: a fixed mixing rule; pairwise informative
			// distance ≥ 6 is asserted by tests.
			base[a] = (f*5 + 2*a) % at.alphabet
		}
		templates[2*f] = base
		edible[2*f] = true

		variant := append([]int(nil), base...)
		diff := variantDiff
		if f == mixedFamily {
			diff = mixedDiff
		}
		for d := 0; d < diff; d++ {
			a := numJitterAttrs + (f+d*5)%numInformative
			variant[a] = (variant[a] + 1) % mushroomAttrs[a].alphabet
		}
		templates[2*f+1] = variant
	}
	return templates, edible
}

// MushroomSpeciesCount reports the number of ground-truth species (the
// natural cluster count before the engineered family merges).
func MushroomSpeciesCount() int { return 2 * numFamilies }
