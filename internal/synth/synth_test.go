package synth

import (
	"testing"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/similarity"
)

// meanSim averages pairwise Jaccard over up to lim pairs within/across the
// label groups of d.
func meanSims(d *dataset.Dataset, lim int) (within, across float64) {
	var wn, an int
	var ws, as float64
	n := d.Len()
	step := 1
	if n > 400 {
		step = n / 400
	}
	for i := 0; i < n && wn+an < lim; i += step {
		for j := i + step; j < n; j += step {
			s := similarity.Jaccard(d.Trans[i], d.Trans[j])
			if d.Labels[i] == d.Labels[j] {
				ws += s
				wn++
			} else {
				as += s
				an++
			}
		}
	}
	if wn > 0 {
		within = ws / float64(wn)
	}
	if an > 0 {
		across = as / float64(an)
	}
	return within, across
}

func TestBasketShape(t *testing.T) {
	d := Basket(BasketConfig{Transactions: 300, Clusters: 3, Seed: 1})
	if d.Len() != 300 {
		t.Fatalf("len = %d", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := d.ClassCounts()
	if len(counts) != 3 {
		t.Fatalf("classes = %v", counts)
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %s has %d records, want 100", c, n)
		}
	}
	within, across := meanSims(d, 100000)
	if within < 2*across {
		t.Fatalf("basket not separable: within %g across %g", within, across)
	}
}

func TestBasketDeterminism(t *testing.T) {
	a := Basket(BasketConfig{Transactions: 50, Clusters: 2, Seed: 7})
	b := Basket(BasketConfig{Transactions: 50, Clusters: 2, Seed: 7})
	for i := range a.Trans {
		if !a.Trans[i].Equal(b.Trans[i]) {
			t.Fatal("same seed produced different data")
		}
	}
	c := Basket(BasketConfig{Transactions: 50, Clusters: 2, Seed: 8})
	same := true
	for i := range a.Trans {
		if !a.Trans[i].Equal(c.Trans[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestBasketEmptyAndOverlap(t *testing.T) {
	if d := Basket(BasketConfig{}); d.Len() != 0 {
		t.Fatal("zero config should be empty")
	}
	d := Basket(BasketConfig{Transactions: 200, Clusters: 2, OverlapItems: 10, Seed: 2})
	within, across := meanSims(d, 100000)
	d2 := Basket(BasketConfig{Transactions: 200, Clusters: 2, Seed: 2})
	w2, a2 := meanSims(d2, 100000)
	if across <= a2 {
		t.Fatalf("overlap should raise cross-cluster similarity: %g vs %g", across, a2)
	}
	_ = within
	_ = w2
}

func TestLabeledShape(t *testing.T) {
	d := Labeled(LabeledConfig{Records: 120, Classes: 4, Seed: 3})
	if d.Len() != 120 || len(d.ClassCounts()) != 4 {
		t.Fatalf("len %d classes %v", d.Len(), d.ClassCounts())
	}
	within, across := meanSims(d, 100000)
	if within < across+0.2 {
		t.Fatalf("labeled data not separable: %g vs %g", within, across)
	}
	// Missing values reduce arity.
	dm := Labeled(LabeledConfig{Records: 50, Classes: 2, Missing: 0.3, Seed: 3})
	short := 0
	for _, tr := range dm.Trans {
		if tr.Len() < 10 {
			short++
		}
	}
	if short == 0 {
		t.Fatal("missing rate produced no short records")
	}
}

func TestVotesShape(t *testing.T) {
	d := Votes(VotesConfig{Seed: 5})
	if d.Len() != 435 {
		t.Fatalf("len = %d, want 435", d.Len())
	}
	counts := d.ClassCounts()
	if counts["democrat"] != 267 || counts["republican"] != 168 {
		t.Fatalf("classes = %v", counts)
	}
	if len(d.Attrs) != 16 {
		t.Fatalf("attrs = %d", len(d.Attrs))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Missing votes exist; most records are near-complete, with a small
	// low-attendance fringe allowed to be much shorter.
	shorter, veryShort := 0, 0
	for _, tr := range d.Trans {
		if tr.Len() < 16 {
			shorter++
		}
		if tr.Len() < 12 {
			veryShort++
		}
		if tr.Len() < 3 {
			t.Fatalf("record with %d items — missing rate too high", tr.Len())
		}
	}
	if shorter == 0 {
		t.Fatal("no records with missing votes")
	}
	if veryShort > d.Len()/5 {
		t.Fatalf("%d of %d records very short — absentee fringe too large", veryShort, d.Len())
	}
	within, across := meanSims(d, 100000)
	if within <= across {
		t.Fatalf("party structure absent: within %g across %g", within, across)
	}
}

func TestVotesPartisanAttribute(t *testing.T) {
	d := Votes(VotesConfig{Seed: 6})
	// physician-fee-freeze=y must be overwhelmingly republican.
	it, ok := d.Vocab.Lookup("physician-fee-freeze=y")
	if !ok {
		t.Fatal("attribute item missing")
	}
	rep, dem := 0, 0
	for i, tr := range d.Trans {
		if tr.Contains(it) {
			if d.Labels[i] == "republican" {
				rep++
			} else {
				dem++
			}
		}
	}
	// The role model leaves moderate/crossover Democrats voting yes here,
	// but the Republican lean must remain strong despite the 267/168
	// class imbalance.
	if rep < 2*dem {
		t.Fatalf("fee-freeze=y: %d rep vs %d dem — not partisan", rep, dem)
	}
}

func TestMushroomShape(t *testing.T) {
	d := Mushroom(MushroomConfig{Seed: 7})
	if d.Len() != 8124 {
		t.Fatalf("len = %d, want 8124", d.Len())
	}
	counts := d.ClassCounts()
	if counts["edible"] != 4208 || counts["poisonous"] != 3916 {
		t.Fatalf("classes = %v", counts)
	}
	if len(d.Attrs) != 22 {
		t.Fatalf("attrs = %d", len(d.Attrs))
	}
	// Every record has full arity (no missing values).
	for i, tr := range d.Trans {
		if tr.Len() != 22 {
			t.Fatalf("record %d has %d items", i, tr.Len())
		}
	}
	// Species counts match the size tables.
	species := map[string]int{}
	for _, n := range d.Names {
		species[n]++
	}
	if len(species) != MushroomSpeciesCount() {
		t.Fatalf("species = %d, want %d", len(species), MushroomSpeciesCount())
	}
	if species["sp00"] != 1728 || species["sp01"] != 1184 || species["sp20"] != 8 || species["sp21"] != 12 {
		t.Fatalf("species sizes wrong: %v", species)
	}
}

// The generator's defining geometry: no cross-species pair outside the
// engineered mixed family can reach θ = 0.8 (ROCK separates), within-
// species pairs are dense θ-neighbors (ROCK's clusters stay connected),
// the mixed family has cross-class neighbors (one impure ROCK cluster),
// and in squared Euclidean terms within-species spread overlaps the
// distance to the cross-class sibling (the traditional baseline's trap).
func TestMushroomSimilarityStructure(t *testing.T) {
	d := Mushroom(MushroomConfig{Seed: 8})
	bySpecies := map[string][]int{}
	for i, n := range d.Names {
		bySpecies[n] = append(bySpecies[n], i)
	}
	s0 := bySpecies["sp00"]
	neighbors, pairs := 0, 0
	for k := 0; k+1 < len(s0) && k < 300; k += 2 {
		s := similarity.Jaccard(d.Trans[s0[k]], d.Trans[s0[k+1]])
		if s < 0.57 {
			t.Fatalf("within-species sim %g below the construction bound", s)
		}
		if s >= 0.8 {
			neighbors++
		}
		pairs++
	}
	if float64(neighbors) < 0.5*float64(pairs) {
		t.Fatalf("within-species neighbor rate %d/%d too sparse", neighbors, pairs)
	}
	// Cross-species (including the non-mixed sibling sp02/sp03): never
	// neighbors at θ = 0.8.
	for _, other := range []string{"sp02", "sp01", "sp04", "sp07"} {
		so := bySpecies[other]
		for k := 0; k < 60 && k < len(so); k++ {
			if s := similarity.Jaccard(d.Trans[s0[k]], d.Trans[so[k]]); s >= 0.8 {
				t.Fatalf("cross-species pair sp00/%s has sim %g ≥ 0.8", other, s)
			}
		}
	}
	// The mixed family (sp16 edible / sp17 poisonous) has cross-class
	// neighbor pairs.
	a, b := bySpecies["sp16"], bySpecies["sp17"]
	cross := 0
	for _, i := range a {
		for _, j := range b {
			if similarity.Jaccard(d.Trans[i], d.Trans[j]) >= 0.8 {
				cross++
			}
		}
	}
	if cross < 5 {
		t.Fatalf("mixed family has only %d cross neighbors", cross)
	}
	// Euclidean overlap: the largest within-species squared distance
	// exceeds the smallest distance to the sibling species.
	sib := bySpecies["sp01"]
	maxWithin, minCross := 0, 1<<30
	for k := 0; k+1 < 300; k += 2 {
		dd := sqDist(d.Trans[s0[k]], d.Trans[s0[k+1]])
		if dd > maxWithin {
			maxWithin = dd
		}
	}
	for k := 0; k < 300 && k < len(sib); k++ {
		dd := sqDist(d.Trans[s0[k]], d.Trans[sib[k]])
		if dd < minCross {
			minCross = dd
		}
	}
	if maxWithin < minCross {
		t.Fatalf("no Euclidean overlap (within max %d < cross min %d): traditional would win trivially", maxWithin, minCross)
	}
}

func sqDist(a, b dataset.Transaction) int {
	return len(a) + len(b) - 2*a.IntersectSize(b)
}

// Template sanity: informative distances are ≥ 3 across families (no
// cross neighbors possible at θ=0.8), exactly variantDiff within a
// family, and exactly mixedDiff for the engineered family.
func TestMushroomTemplateDistances(t *testing.T) {
	templates, edible := mushroomTemplates()
	dist := func(a, b []int) int {
		d := 0
		for i := numJitterAttrs; i < len(a); i++ {
			if a[i] != b[i] {
				d++
			}
		}
		return d
	}
	for i := 0; i < len(templates); i++ {
		if edible[i] != (i%2 == 0) {
			t.Fatalf("species %d class wrong", i)
		}
		for j := i + 1; j < len(templates); j++ {
			d := dist(templates[i], templates[j])
			sameFamily := i/2 == j/2
			switch {
			case sameFamily && i/2 == mixedFamily:
				if d != mixedDiff {
					t.Fatalf("mixed family distance = %d, want %d", d, mixedDiff)
				}
			case sameFamily:
				if d != variantDiff {
					t.Fatalf("family %d variant distance = %d, want %d", i/2, d, variantDiff)
				}
			default:
				if d < 3 {
					t.Fatalf("species %d,%d informative distance %d < 3 — cross neighbors possible", i, j, d)
				}
			}
		}
	}
}

func TestFundsShape(t *testing.T) {
	d := Funds(FundsConfig{Seed: 9})
	if d.Len() != 795 {
		t.Fatalf("funds = %d, want 795", d.Len())
	}
	if len(d.ClassCounts()) != FundSectorCount() {
		t.Fatalf("sectors = %v", d.ClassCounts())
	}
	// Roughly half the days are up-days.
	for i := 0; i < d.Len(); i += 97 {
		n := d.Trans[i].Len()
		if n < 550/4 || n > 550*3/4 {
			t.Fatalf("fund %d has %d up-days", i, n)
		}
	}
	within, across := meanSims(d, 200000)
	if within < 0.8 {
		t.Fatalf("within-sector similarity %g too low for θ=0.8", within)
	}
	if across > 0.62 {
		t.Fatalf("cross-sector similarity %g too high", across)
	}
}

func TestFundsDeterminism(t *testing.T) {
	a := Funds(FundsConfig{Days: 60, Seed: 1})
	b := Funds(FundsConfig{Days: 60, Seed: 1})
	for i := range a.Trans {
		if !a.Trans[i].Equal(b.Trans[i]) {
			t.Fatal("same seed produced different funds")
		}
	}
}

func TestInterleaveSpreadsGroups(t *testing.T) {
	order := interleave([]int{6, 3, 1})
	if len(order) != 10 {
		t.Fatalf("len = %d", len(order))
	}
	counts := map[int]int{}
	for _, g := range order {
		counts[g]++
	}
	if counts[0] != 6 || counts[1] != 3 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	// The first half must already contain the majority group ~ half its
	// share — i.e. groups are interleaved, not concatenated.
	firstHalf := 0
	for _, g := range order[:5] {
		if g == 0 {
			firstHalf++
		}
	}
	if firstHalf < 2 || firstHalf == 5 {
		t.Fatalf("interleave degenerate: %v", order)
	}
}
