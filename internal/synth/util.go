package synth

// interleave emits group indices so that each group's occurrences are
// spread evenly across the output (largest-remaining-fraction order), so
// prefix samples of a generated dataset remain representative of every
// group.
func interleave(sizes []int) []int {
	total := 0
	for _, s := range sizes {
		total += s
	}
	acc := make([]int, len(sizes))
	out := make([]int, 0, total)
	remaining := append([]int(nil), sizes...)
	for len(out) < total {
		best, bestVal := -1, 0
		for g := range sizes {
			if remaining[g] == 0 {
				continue
			}
			acc[g] += sizes[g]
			if best == -1 || acc[g] > bestVal {
				best, bestVal = g, acc[g]
			}
		}
		acc[best] -= total
		remaining[best]--
		out = append(out, best)
	}
	return out
}
