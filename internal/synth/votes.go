package synth

import (
	"math/rand"

	"github.com/rockclust/rock/internal/dataset"
)

// voteAttr describes one roll-call vote. Attributes with a clear partisan
// split carry a per-party consensus position; near-nonpartisan votes
// (water-project, immigration) are modeled as independent coin flips for
// everyone, as in the real data. Missing rates follow the UCI dataset's
// per-attribute profile.
type voteAttr struct {
	name     string
	demYes   bool // Democratic consensus position (partisan attrs)
	repYes   bool // Republican consensus position
	partisan bool
	pMissing float64
}

var voteProfile = []voteAttr{
	{"handicapped-infants", true, false, true, 0.03},
	{"water-project-cost-sharing", false, false, false, 0.11},
	{"adoption-of-the-budget-resolution", true, false, true, 0.03},
	{"physician-fee-freeze", false, true, true, 0.03},
	{"el-salvador-aid", false, true, true, 0.03},
	{"religious-groups-in-schools", false, true, true, 0.03},
	{"anti-satellite-test-ban", true, false, true, 0.03},
	{"aid-to-nicaraguan-contras", true, false, true, 0.03},
	{"mx-missile", true, false, true, 0.05},
	{"immigration", false, false, false, 0.02},
	{"synfuels-corporation-cutback", true, false, true, 0.05},
	{"education-spending", false, true, true, 0.07},
	{"superfund-right-to-sue", false, true, true, 0.06},
	{"crime", false, true, true, 0.04},
	{"duty-free-exports", true, false, true, 0.06},
	// Both parties leaned yes on the South Africa sanctions vote.
	{"export-administration-act-south-africa", true, true, true, 0.24},
}

// Role probabilities and voting fidelities reproduce the cohesion
// asymmetry of the 1984 House: a tight Republican core, a somewhat looser
// Democratic core, a diffuse moderate fringe in both parties (ROCK's
// outliers; the trap for centroid clustering), and a minority of
// cross-voting members — the "boll weevil" Democrats behind the paper's
// 22-Democrat contamination of the Republican cluster.
const (
	demModerate  = 0.16
	demCrossover = 0.08
	repModerate  = 0.10
	repCrossover = 0.03

	demCoreFidelity  = 0.85
	repCoreFidelity  = 0.90
	crossFidelity    = 0.88
	moderateFidelity = 0.62

	// Low-attendance members (both parties) abstain on a large fraction
	// of votes, like the heavily-'?' records of the UCI file. Jaccard
	// normalizes by the union, so ROCK simply prunes them; the binary
	// embedding instead places them between the party cores.
	absentee            = 0.06
	absenteeMissingRate = 0.45
)

// VotesConfig parameterizes the votes-like generator. The defaults match
// the UCI dataset's shape: 267 Democrats, 168 Republicans, 16 boolean
// attributes with realistic missing rates.
type VotesConfig struct {
	Democrats   int // default 267
	Republicans int // default 168
	Seed        int64
}

func (c VotesConfig) withDefaults() VotesConfig {
	if c.Democrats == 0 {
		c.Democrats = 267
	}
	if c.Republicans == 0 {
		c.Republicans = 168
	}
	return c
}

// Votes generates the stand-in for the UCI Congressional Voting Records
// dataset used in the paper's first quality experiment (DESIGN.md E1/E2).
// Records interleave parties (as the UCI file does) so prefix sampling
// stays representative.
func Votes(cfg VotesConfig) *dataset.Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.Democrats + cfg.Republicans

	attrs := make([]string, len(voteProfile))
	for i, a := range voteProfile {
		attrs[i] = a.name
	}

	// Interleave parties deterministically in proportion (Bresenham-style
	// error accumulation yields exactly cfg.Democrats true entries).
	parties := make([]bool, total) // true = democrat
	acc := 0
	for i := range parties {
		acc += cfg.Democrats
		if acc >= total {
			acc -= total
			parties[i] = true
		}
	}

	records := make([]dataset.Record, total)
	labels := make([]string, total)
	for i := range records {
		dem := parties[i]

		// Draw the member's role. Moderates follow a centrist platform —
		// the Democratic position on the first half of the partisan votes
		// and the Republican position on the rest — loosely (fidelity
		// 0.62). Geometrically that is a diffuse blob midway between the
		// party cores: centroid-based clustering must attach it to one
		// party (mixing that cluster), while in Jaccard terms no moderate
		// gets close enough to anything to form links — ROCK sets them
		// aside as outliers, exactly the paper's account of its votes run.
		var fidelity float64
		voteAs := dem // which party's consensus the member follows
		centrist := false
		r := rng.Float64()
		switch {
		case dem && r < demModerate:
			fidelity, centrist = moderateFidelity, true
		case dem && r < demModerate+demCrossover:
			fidelity, voteAs = crossFidelity, false
		case dem:
			fidelity = demCoreFidelity
		case !dem && r < repModerate:
			fidelity, centrist = moderateFidelity, true
		case !dem && r < repModerate+repCrossover:
			fidelity, voteAs = crossFidelity, true
		default:
			fidelity = repCoreFidelity
		}

		missingBoost := 0.0
		if rng.Float64() < absentee {
			missingBoost = absenteeMissingRate
		}

		rec := make(dataset.Record, len(voteProfile))
		for a, va := range voteProfile {
			if rng.Float64() < va.pMissing+missingBoost {
				rec[a] = dataset.Missing
				continue
			}
			var yes bool
			if !va.partisan {
				yes = rng.Float64() < 0.5
			} else {
				var consensus bool
				switch {
				case centrist:
					if a < len(voteProfile)/2 {
						consensus = va.demYes
					} else {
						consensus = va.repYes
					}
				case voteAs:
					consensus = va.demYes
				default:
					consensus = va.repYes
				}
				yes = consensus
				if rng.Float64() >= fidelity {
					yes = !yes
				}
			}
			if yes {
				rec[a] = "y"
			} else {
				rec[a] = "n"
			}
		}
		records[i] = rec
		if dem {
			labels[i] = "democrat"
		} else {
			labels[i] = "republican"
		}
	}
	return dataset.EncodeRecords(attrs, records, labels, dataset.EncodeOptions{})
}
