package synth

import (
	"fmt"
	"math/rand"

	"github.com/rockclust/rock/internal/dataset"
)

// fundSector describes one sector of the simulated fund universe: how
// many funds it holds and how its daily returns load on the three common
// factors (rates, market, gold) plus a sector-specific factor. The
// loadings are chosen so that, converting each fund to the transaction of
// its NAV up-days as the paper did, within-sector Jaccard lands near 0.88,
// sectors sharing a group factor (the bond sectors, the equity sectors)
// land near 0.70, and unrelated sectors near 1/3 — reproducing the
// dependency structure of the paper's Jan'93–Mar'95 fund universe.
type fundSector struct {
	name  string
	funds int
	// factor loadings: rates, market, gold, own-sector; idiosyncratic
	// noise gets weight noise.
	rates, market, gold, own, noise float64
}

var fundSectors = []fundSector{
	{"bond-municipal", 120, 0.92, 0, 0, 0.36, 0.14},
	{"bond-corporate", 100, 0.92, 0.10, 0, 0.35, 0.14},
	{"bond-government", 80, 0.92, 0, 0, 0.36, 0.14},
	{"equity-growth", 150, 0, 0.92, 0, 0.36, 0.14},
	{"equity-value", 120, 0.10, 0.92, 0, 0.35, 0.14},
	{"equity-smallcap", 60, 0, 0.92, 0, 0.36, 0.14},
	{"equity-international", 50, 0, 0.60, 0, 0.78, 0.16},
	{"precious-metals", 40, 0, -0.35, 0.90, 0.24, 0.14},
	{"balanced", 75, 0.64, 0.64, 0, 0.40, 0.14},
}

// FundsConfig parameterizes the fund-NAV simulator.
type FundsConfig struct {
	Days int // trading days simulated (default 550 ≈ Jan'93–Mar'95)
	Seed int64
}

func (c FundsConfig) withDefaults() FundsConfig {
	if c.Days == 0 {
		c.Days = 550
	}
	return c
}

// Funds simulates the mutual-fund case study (DESIGN.md E5): a three-
// factor daily return model over nine sectors, 795 funds total. Each fund
// becomes the transaction of the days on which its NAV rose — the paper's
// conversion of the time series to the categorical domain. Labels carry
// the sector, Names a per-fund ticker.
func Funds(cfg FundsConfig) *dataset.Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := dataset.NewVocabulary()

	// Pre-intern day items so ids are dense and ordered.
	dayItems := make([]dataset.Item, cfg.Days)
	for t := range dayItems {
		dayItems[t] = v.Intern(fmt.Sprintf("d%03d", t))
	}

	// Common factor paths.
	rates := make([]float64, cfg.Days)
	market := make([]float64, cfg.Days)
	gold := make([]float64, cfg.Days)
	for t := 0; t < cfg.Days; t++ {
		rates[t] = rng.NormFloat64()
		market[t] = rng.NormFloat64()
		gold[t] = rng.NormFloat64()
	}

	d := &dataset.Dataset{Vocab: v}
	fundNo := 0
	for _, sec := range fundSectors {
		own := make([]float64, cfg.Days)
		for t := range own {
			own[t] = rng.NormFloat64()
		}
		for f := 0; f < sec.funds; f++ {
			items := make([]dataset.Item, 0, cfg.Days/2)
			for t := 0; t < cfg.Days; t++ {
				r := sec.rates*rates[t] + sec.market*market[t] + sec.gold*gold[t] +
					sec.own*own[t] + sec.noise*rng.NormFloat64()
				if r > 0 {
					items = append(items, dayItems[t])
				}
			}
			d.Trans = append(d.Trans, dataset.NewTransaction(items...))
			d.Labels = append(d.Labels, sec.name)
			d.Names = append(d.Names, fmt.Sprintf("FUND%03d", fundNo))
			fundNo++
		}
	}
	return d
}

// FundSectorCount reports the number of sectors in the simulated fund
// universe — the natural cluster count for the E5 experiment.
func FundSectorCount() int { return len(fundSectors) }
