// Package metrics evaluates clusterings against ground-truth class
// labels. It implements the clustering accuracy r = (Σ_i a_i)/n used
// throughout the categorical-clustering literature (a_i = the count of the
// majority class in cluster i), its complements e = 1−r and ace = e·n, and
// the standard external indices ARI and NMI.
//
// Outlier handling: points assigned -1 are unclustered. They count against
// accuracy (they contribute to no majority) and are treated as singleton
// clusters by ARI/NMI so that both arguments remain partitions of the same
// set.
package metrics

import (
	"math"
	"sort"
)

// Eval summarizes the agreement between a clustering and the ground truth.
type Eval struct {
	N         int // total points
	Clustered int // points assigned to some cluster
	Outliers  int // points assigned -1
	Majority  int // Σ_i a_i over real clusters

	Accuracy      float64 // Majority / N — the literature's r
	Error         float64 // 1 − Accuracy — the literature's e
	AbsoluteError int     // N − Majority — the literature's ace
	ARI           float64 // adjusted Rand index
	NMI           float64 // normalized mutual information (√ normalization)
}

// Evaluate computes all metrics for a cluster assignment (cluster index
// per point, -1 for outliers) against parallel ground-truth labels.
func Evaluate(assign []int, labels []string) Eval {
	if len(assign) != len(labels) {
		panic("metrics: assign and labels length mismatch")
	}
	var ev Eval
	ev.N = len(assign)
	if ev.N == 0 {
		return ev
	}

	_, counts := ContingencyTable(assign, labels)
	k := realClusterCount(assign)
	for ci, row := range counts {
		if ci >= k {
			break // remaining rows are outlier singletons
		}
		best := 0
		for _, c := range row {
			if c > best {
				best = c
			}
		}
		ev.Majority += best
	}
	for _, a := range assign {
		if a >= 0 {
			ev.Clustered++
		} else {
			ev.Outliers++
		}
	}
	ev.Accuracy = float64(ev.Majority) / float64(ev.N)
	ev.Error = 1 - ev.Accuracy
	ev.AbsoluteError = ev.N - ev.Majority
	ev.ARI = ari(counts, ev.N)
	ev.NMI = nmi(counts, ev.N)
	return ev
}

// realClusterCount returns 1 + max cluster index, the number of non-outlier
// clusters referenced by assign.
func realClusterCount(assign []int) int {
	k := 0
	for _, a := range assign {
		if a+1 > k {
			k = a + 1
		}
	}
	return k
}

// ContingencyTable builds the cluster × class count matrix. Rows 0..k-1
// are the real clusters; each outlier point contributes one extra
// singleton row, keeping the row space a partition. Classes are returned
// sorted; columns follow that order.
func ContingencyTable(assign []int, labels []string) (classes []string, counts [][]int) {
	classIdx := map[string]int{}
	for _, l := range labels {
		if _, ok := classIdx[l]; !ok {
			classIdx[l] = 0
		}
	}
	for c := range classIdx {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for i, c := range classes {
		classIdx[c] = i
	}

	k := realClusterCount(assign)
	nOut := 0
	for _, a := range assign {
		if a < 0 {
			nOut++
		}
	}
	counts = make([][]int, k+nOut)
	for i := range counts {
		counts[i] = make([]int, len(classes))
	}
	out := k
	for p, a := range assign {
		row := a
		if a < 0 {
			row = out
			out++
		}
		counts[row][classIdx[labels[p]]]++
	}
	return classes, counts
}

// choose2 returns n·(n−1)/2 as a float to avoid overflow in index sums.
func choose2(n int) float64 { return float64(n) * float64(n-1) / 2 }

// ari computes the adjusted Rand index from a contingency table.
func ari(counts [][]int, n int) float64 {
	if n < 2 {
		return 1
	}
	var sumCells, sumRows, sumCols float64
	colTotals := map[int]int{}
	for _, row := range counts {
		rowTotal := 0
		for j, c := range row {
			sumCells += choose2(c)
			rowTotal += c
			colTotals[j] += c
		}
		sumRows += choose2(rowTotal)
	}
	for _, c := range colTotals {
		sumCols += choose2(c)
	}
	expected := sumRows * sumCols / choose2(n)
	maxIdx := (sumRows + sumCols) / 2
	if maxIdx == expected {
		return 1 // both partitions trivial in the same way
	}
	return (sumCells - expected) / (maxIdx - expected)
}

// nmi computes normalized mutual information I(C;L)/√(H(C)·H(L)).
func nmi(counts [][]int, n int) float64 {
	if n == 0 {
		return 1
	}
	nf := float64(n)
	rowT := make([]float64, len(counts))
	var colT []float64
	for i, row := range counts {
		if colT == nil {
			colT = make([]float64, len(row))
		}
		for j, c := range row {
			rowT[i] += float64(c)
			colT[j] += float64(c)
		}
	}
	var mi, hr, hc float64
	for i, row := range counts {
		for j, c := range row {
			if c == 0 {
				continue
			}
			p := float64(c) / nf
			mi += p * math.Log(p*nf*nf/(rowT[i]*colT[j]))
		}
	}
	for _, t := range rowT {
		if t > 0 {
			p := t / nf
			hr -= p * math.Log(p)
		}
	}
	for _, t := range colT {
		if t > 0 {
			p := t / nf
			hc -= p * math.Log(p)
		}
	}
	if hr == 0 && hc == 0 {
		return 1 // both partitions trivial: identical
	}
	if hr == 0 || hc == 0 {
		return 0
	}
	return mi / math.Sqrt(hr*hc)
}

// ClusterEntropy returns the weighted mean class entropy over clusters (in
// nats): 0 for pure clusters, higher for mixed ones. Outlier singletons
// contribute zero entropy but full weight.
func ClusterEntropy(assign []int, labels []string) float64 {
	_, counts := ContingencyTable(assign, labels)
	n := len(assign)
	if n == 0 {
		return 0
	}
	total := 0.0
	for _, row := range counts {
		size := 0
		for _, c := range row {
			size += c
		}
		if size == 0 {
			continue
		}
		h := 0.0
		for _, c := range row {
			if c > 0 {
				p := float64(c) / float64(size)
				h -= p * math.Log(p)
			}
		}
		total += float64(size) / float64(n) * h
	}
	return total
}
