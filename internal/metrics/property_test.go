package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// naiveNMI computes normalized mutual information straight from the
// definition — joint distribution over (cluster, class), MI from the
// log-ratio sum, √ normalization — independently of the contingency
// helper. Outliers become unique singleton ids, mirroring Evaluate.
func naiveNMI(assign []int, labels []string) float64 {
	n := len(assign)
	if n == 0 {
		return 1
	}
	ids := make([]int, n)
	next := 1 << 20
	for i, a := range assign {
		if a < 0 {
			ids[i] = next
			next++
		} else {
			ids[i] = a
		}
	}
	joint := map[[2]string]int{}
	rowN := map[int]int{}
	colN := map[string]int{}
	for i := range ids {
		joint[[2]string{string(rune(ids[i])), labels[i]}]++
		rowN[ids[i]]++
		colN[labels[i]]++
	}
	nf := float64(n)
	hr, hc := 0.0, 0.0
	for _, c := range rowN {
		p := float64(c) / nf
		hr -= p * math.Log(p)
	}
	for _, c := range colN {
		p := float64(c) / nf
		hc -= p * math.Log(p)
	}
	mi := 0.0
	for i := range ids {
		// Sum MI point-wise (each point contributes (1/n)·log n·n_{cl}/(n_c·n_l)
		// for its own cell), which visits every non-zero cell c_{cl} times.
		key := [2]string{string(rune(ids[i])), labels[i]}
		mi += (1 / nf) * math.Log(nf*float64(joint[key])/(float64(rowN[ids[i]])*float64(colN[labels[i]])))
	}
	if hr == 0 && hc == 0 {
		return 1
	}
	if hr == 0 || hc == 0 {
		return 0
	}
	return mi / math.Sqrt(hr*hc)
}

func TestNMIAgainstDefinitionOracle(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(60)
		assign := make([]int, n)
		labels := make([]string, n)
		for i := range assign {
			assign[i] = r.Intn(5) - 1 // -1..3, includes outliers
			labels[i] = string(rune('a' + r.Intn(3)))
		}
		got := Evaluate(assign, labels).NMI
		want := naiveNMI(assign, labels)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: NMI %g != oracle %g (assign=%v labels=%v)", trial, got, want, assign, labels)
		}
	}
}

// TestMetricProperties checks the invariants any external index must
// satisfy, on random partitions: ranges, perfect agreement, and
// invariance under cluster-id relabeling.
func TestMetricProperties(t *testing.T) {
	r := rand.New(rand.NewSource(80))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(80)
		assign := make([]int, n)
		labels := make([]string, n)
		for i := range assign {
			assign[i] = r.Intn(4)
			labels[i] = string(rune('a' + r.Intn(3)))
		}
		ev := Evaluate(assign, labels)
		if ev.NMI < -1e-12 || ev.NMI > 1+1e-12 {
			t.Fatalf("trial %d: NMI %g outside [0,1]", trial, ev.NMI)
		}
		if ev.ARI > 1+1e-12 {
			t.Fatalf("trial %d: ARI %g above 1", trial, ev.ARI)
		}
		if ev.Accuracy < 1/float64(n)-1e-12 || ev.Accuracy > 1+1e-12 {
			t.Fatalf("trial %d: purity %g outside [1/n,1]", trial, ev.Accuracy)
		}

		// Perfect agreement: cluster id = class id.
		perfect := make([]int, n)
		for i, l := range labels {
			perfect[i] = int(l[0] - 'a')
		}
		pv := Evaluate(perfect, labels)
		if pv.Accuracy != 1 || math.Abs(pv.ARI-1) > 1e-12 || math.Abs(pv.NMI-1) > 1e-12 {
			t.Fatalf("trial %d: perfect clustering scored purity=%g ARI=%g NMI=%g", trial, pv.Accuracy, pv.ARI, pv.NMI)
		}

		// Relabeling clusters (here: reversing ids) changes nothing.
		flipped := make([]int, n)
		for i, a := range assign {
			flipped[i] = 3 - a
		}
		fv := Evaluate(flipped, labels)
		if fv.Majority != ev.Majority || math.Abs(fv.ARI-ev.ARI) > 1e-12 || math.Abs(fv.NMI-ev.NMI) > 1e-12 {
			t.Fatalf("trial %d: metrics not invariant under cluster relabeling", trial)
		}
	}
}

// TestDegeneratePartitions pins the boundary conventions: the
// all-singletons clustering is trivially pure, the one-cluster
// clustering scores the majority class, and a random clustering of
// balanced classes lands near ARI 0 (the index's whole point is that
// chance agreement is adjusted away).
func TestDegeneratePartitions(t *testing.T) {
	n := 600
	r := rand.New(rand.NewSource(81))
	labels := make([]string, n)
	for i := range labels {
		labels[i] = string(rune('a' + i%3))
	}

	singletons := make([]int, n)
	for i := range singletons {
		singletons[i] = i
	}
	if ev := Evaluate(singletons, labels); ev.Accuracy != 1 {
		t.Fatalf("all-singletons purity = %g, want 1", ev.Accuracy)
	}

	lump := make([]int, n)
	ev := Evaluate(lump, labels)
	if ev.Majority != n/3 {
		t.Fatalf("one-cluster majority = %d, want %d", ev.Majority, n/3)
	}
	if math.Abs(ev.ARI) > 1e-12 || math.Abs(ev.NMI) > 1e-12 {
		t.Fatalf("one-cluster ARI=%g NMI=%g, want 0 (no information)", ev.ARI, ev.NMI)
	}

	random := make([]int, n)
	for i := range random {
		random[i] = r.Intn(3)
	}
	rv := Evaluate(random, labels)
	if math.Abs(rv.ARI) > 0.1 || rv.NMI > 0.1 {
		t.Fatalf("random clustering ARI=%g NMI=%g, want ≈0", rv.ARI, rv.NMI)
	}
}

// TestHandComputedFixtures pins exact values worked out by hand, so a
// sign or normalization slip cannot hide behind oracle symmetry.
func TestHandComputedFixtures(t *testing.T) {
	// Crossed partition: clusters {0,2} vs {1,3}, classes aabb. Every
	// cluster splits both classes evenly. Contingency rows (1,1),(1,1):
	// Σ C(cell,2)=0, Σ C(row,2)=2, Σ C(col,2)=2, C(4,2)=6 →
	// ARI = (0 − 2·2/6)/((2+2)/2 − 2·2/6) = (−2/3)/(4/3) = −1/2,
	// and every joint cell has p = pc·pl = 1/4 → MI = 0 → NMI = 0.
	ev := Evaluate([]int{0, 1, 0, 1}, []string{"a", "a", "b", "b"})
	if math.Abs(ev.ARI-(-0.5)) > 1e-12 {
		t.Fatalf("crossed ARI = %g, want -0.5", ev.ARI)
	}
	if math.Abs(ev.NMI) > 1e-12 {
		t.Fatalf("crossed NMI = %g, want 0", ev.NMI)
	}
	if ev.Majority != 2 || ev.AbsoluteError != 2 {
		t.Fatalf("crossed majority = %d ace = %d, want 2/2", ev.Majority, ev.AbsoluteError)
	}

	// Partial agreement: clusters {0,1},{2,3}, classes aaab.
	// Joint cells: (c0,a)=2, (c1,a)=1, (c1,b)=1 over n=4:
	//   MI = ½·ln(½/(½·¾)) + ¼·ln(¼/(½·¾)) + ¼·ln(¼/(½·¼))
	//      = ½·ln(4/3) + ¼·ln(2/3) + ¼·ln 2 = 0.2157615543…
	//   H(C) = ln 2 = 0.6931471806…, H(L) = ¾·ln(4/3) + ¼·ln 4
	//        = 0.5623351446…
	//   NMI = MI/√(H(C)·H(L)) = 0.2157616/√0.3897810 = 0.3455920…
	ev = Evaluate([]int{0, 0, 1, 1}, []string{"a", "a", "a", "b"})
	if math.Abs(ev.NMI-0.3455920) > 1e-6 {
		t.Fatalf("partial NMI = %.7f, want 0.3455920", ev.NMI)
	}
	if ev.Majority != 3 {
		t.Fatalf("partial majority = %d, want 3", ev.Majority)
	}

	// One outlier: assign (0,0,-1), classes aab. The outlier becomes a
	// singleton row {b}; the real cluster is pure a. Purity counts only
	// real-cluster majorities: 2/3.
	ev = Evaluate([]int{0, 0, -1}, []string{"a", "a", "b"})
	if math.Abs(ev.Accuracy-2.0/3) > 1e-12 {
		t.Fatalf("outlier purity = %g, want 2/3", ev.Accuracy)
	}
	if math.Abs(ev.ARI-1) > 1e-12 || math.Abs(ev.NMI-1) > 1e-12 {
		t.Fatalf("outlier-as-singleton ARI=%g NMI=%g, want 1 (partitions coincide)", ev.ARI, ev.NMI)
	}
}
