package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestEvaluatePerfect(t *testing.T) {
	assign := []int{0, 0, 1, 1, 2}
	labels := []string{"a", "a", "b", "b", "c"}
	ev := Evaluate(assign, labels)
	if ev.Accuracy != 1 || ev.Error != 0 || ev.AbsoluteError != 0 {
		t.Fatalf("perfect clustering: %+v", ev)
	}
	if math.Abs(ev.ARI-1) > 1e-12 {
		t.Fatalf("ARI = %g, want 1", ev.ARI)
	}
	if math.Abs(ev.NMI-1) > 1e-12 {
		t.Fatalf("NMI = %g, want 1", ev.NMI)
	}
	if ev.Clustered != 5 || ev.Outliers != 0 {
		t.Fatalf("counts: %+v", ev)
	}
}

func TestEvaluateHandComputed(t *testing.T) {
	// Cluster 0: {a,a,b} majority 2; cluster 1: {b,b} majority 2.
	assign := []int{0, 0, 0, 1, 1}
	labels := []string{"a", "a", "b", "b", "b"}
	ev := Evaluate(assign, labels)
	if ev.Majority != 4 {
		t.Fatalf("Majority = %d, want 4", ev.Majority)
	}
	if math.Abs(ev.Accuracy-0.8) > 1e-12 || ev.AbsoluteError != 1 {
		t.Fatalf("accuracy %g abs %d", ev.Accuracy, ev.AbsoluteError)
	}
}

func TestEvaluateOutliersCountAgainstAccuracy(t *testing.T) {
	assign := []int{0, 0, -1, -1}
	labels := []string{"a", "a", "a", "a"}
	ev := Evaluate(assign, labels)
	if ev.Majority != 2 || ev.Accuracy != 0.5 {
		t.Fatalf("outliers must not count toward majority: %+v", ev)
	}
	if ev.Outliers != 2 || ev.Clustered != 2 {
		t.Fatalf("counts: %+v", ev)
	}
}

func TestEvaluateRelabelInvariance(t *testing.T) {
	labels := []string{"a", "a", "b", "b", "c", "c"}
	a := Evaluate([]int{0, 0, 1, 1, 2, 2}, labels)
	b := Evaluate([]int{2, 2, 0, 0, 1, 1}, labels)
	if a.Accuracy != b.Accuracy || math.Abs(a.ARI-b.ARI) > 1e-12 || math.Abs(a.NMI-b.NMI) > 1e-12 {
		t.Fatal("metrics not invariant to cluster relabeling")
	}
}

func TestARIRandomNearZero(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 4000
	assign := make([]int, n)
	labels := make([]string, n)
	for i := range assign {
		assign[i] = r.Intn(4)
		labels[i] = string(rune('a' + r.Intn(4)))
	}
	ev := Evaluate(assign, labels)
	if math.Abs(ev.ARI) > 0.03 {
		t.Fatalf("ARI of independent partitions = %g, want ≈ 0", ev.ARI)
	}
	if ev.NMI > 0.05 {
		t.Fatalf("NMI of independent partitions = %g, want ≈ 0", ev.NMI)
	}
}

func TestARIBounds(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(40)
		assign := make([]int, n)
		labels := make([]string, n)
		for i := range assign {
			assign[i] = r.Intn(3) - 1 // includes outliers
			labels[i] = string(rune('a' + r.Intn(3)))
		}
		ev := Evaluate(assign, labels)
		if ev.ARI > 1+1e-9 {
			t.Fatalf("ARI %g > 1", ev.ARI)
		}
		if ev.NMI < -1e-9 || ev.NMI > 1+1e-9 {
			t.Fatalf("NMI %g outside [0,1]", ev.NMI)
		}
		if ev.Accuracy < 0 || ev.Accuracy > 1 {
			t.Fatalf("accuracy %g outside [0,1]", ev.Accuracy)
		}
		if ev.AbsoluteError != ev.N-ev.Majority {
			t.Fatal("ace identity violated")
		}
	}
}

func TestContingencyTable(t *testing.T) {
	assign := []int{0, 1, 0, -1}
	labels := []string{"x", "y", "y", "x"}
	classes, counts := ContingencyTable(assign, labels)
	if len(classes) != 2 || classes[0] != "x" || classes[1] != "y" {
		t.Fatalf("classes = %v", classes)
	}
	// rows: cluster0, cluster1, outlier singleton.
	if len(counts) != 3 {
		t.Fatalf("rows = %d", len(counts))
	}
	if counts[0][0] != 1 || counts[0][1] != 1 {
		t.Fatalf("cluster 0 row = %v", counts[0])
	}
	if counts[1][1] != 1 || counts[2][0] != 1 {
		t.Fatalf("rows = %v", counts)
	}
}

func TestClusterEntropy(t *testing.T) {
	// Pure clusters: zero entropy.
	if got := ClusterEntropy([]int{0, 0, 1, 1}, []string{"a", "a", "b", "b"}); got != 0 {
		t.Fatalf("pure entropy = %g", got)
	}
	// One maximally mixed cluster of two classes: ln 2.
	got := ClusterEntropy([]int{0, 0, 0, 0}, []string{"a", "a", "b", "b"})
	if math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("mixed entropy = %g, want ln2", got)
	}
	// Mixing lowers NMI and raises entropy monotonically.
	mixed := ClusterEntropy([]int{0, 0, 1, 1}, []string{"a", "b", "a", "b"})
	if mixed <= 0 {
		t.Fatal("mixed clustering should have positive entropy")
	}
	if ClusterEntropy(nil, nil) != 0 {
		t.Fatal("empty entropy should be 0")
	}
}

func TestEvaluateEmptyAndMismatch(t *testing.T) {
	ev := Evaluate(nil, nil)
	if ev.N != 0 {
		t.Fatal("empty eval wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	Evaluate([]int{0}, []string{"a", "b"})
}

func TestDegenerateSingleCluster(t *testing.T) {
	// Everything in one cluster, one class: trivially perfect.
	ev := Evaluate([]int{0, 0, 0}, []string{"a", "a", "a"})
	if ev.ARI != 1 || ev.NMI != 1 || ev.Accuracy != 1 {
		t.Fatalf("trivial agreement: %+v", ev)
	}
	// Everything in one cluster, two classes: accuracy = majority share.
	ev = Evaluate([]int{0, 0, 0, 0}, []string{"a", "a", "a", "b"})
	if ev.Accuracy != 0.75 {
		t.Fatalf("accuracy = %g", ev.Accuracy)
	}
}
