package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// naiveARI computes the adjusted Rand index by direct O(n²) pair
// counting — an independent oracle for the contingency-table
// implementation. Outliers are treated as singleton clusters by giving
// each a unique id, mirroring Evaluate's convention.
func naiveARI(assign []int, labels []string) float64 {
	n := len(assign)
	ids := make([]int, n)
	next := 1 << 20
	for i, a := range assign {
		if a < 0 {
			ids[i] = next
			next++
		} else {
			ids[i] = a
		}
	}
	var a, b, c, d float64 // same/same, same/diff, diff/same, diff/diff
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameCluster := ids[i] == ids[j]
			sameClass := labels[i] == labels[j]
			switch {
			case sameCluster && sameClass:
				a++
			case sameCluster:
				b++
			case sameClass:
				c++
			default:
				d++
			}
		}
	}
	// Hubert–Arabie ARI from pair counts.
	num := 2 * (a*d - b*c)
	den := (a+b)*(b+d) + (a+c)*(c+d)
	if den == 0 {
		return 1
	}
	return num / den
}

func TestARIAgainstPairCountingOracle(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(60)
		assign := make([]int, n)
		labels := make([]string, n)
		for i := range assign {
			assign[i] = r.Intn(4) - 1 // -1..2, includes outliers
			labels[i] = string(rune('a' + r.Intn(3)))
		}
		got := Evaluate(assign, labels).ARI
		want := naiveARI(assign, labels)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: ARI %g != oracle %g (assign=%v labels=%v)", trial, got, want, assign, labels)
		}
	}
}

// The accuracy metric has a simple oracle too: sort each cluster's label
// multiset and take the max count.
func TestMajorityAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(50)
		assign := make([]int, n)
		labels := make([]string, n)
		for i := range assign {
			assign[i] = r.Intn(3) - 1
			labels[i] = string(rune('a' + r.Intn(4)))
		}
		want := 0
		byCluster := map[int]map[string]int{}
		for i, a := range assign {
			if a < 0 {
				continue
			}
			if byCluster[a] == nil {
				byCluster[a] = map[string]int{}
			}
			byCluster[a][labels[i]]++
		}
		for _, counts := range byCluster {
			best := 0
			for _, c := range counts {
				if c > best {
					best = c
				}
			}
			want += best
		}
		if got := Evaluate(assign, labels).Majority; got != want {
			t.Fatalf("trial %d: majority %d != oracle %d", trial, got, want)
		}
	}
}
