package stirr

import (
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

// Companion edges to TestRunEdgeCases, driven by the zoo conformance
// work: the read-out paths must stay panic-free when the dynamical
// system had nothing to converge on.

func TestRunRejectsNegativeAttrs(t *testing.T) {
	for _, nattrs := range []int{0, -1, -100} {
		if _, err := Run([]dataset.Record{{"a"}}, nattrs, Config{}); err == nil {
			t.Fatalf("nattrs=%d accepted", nattrs)
		}
	}
}

func TestClusterRecordsOnNodelessResult(t *testing.T) {
	// All-missing records build zero nodes, so Run returns converged
	// empty weights; every read-out basin is then out of range and the
	// split must degrade to a single cluster without panicking.
	records := []dataset.Record{{"?", "?"}, {"", "?"}, {"?", ""}}
	res, err := Run(records, 2, Config{Revised: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 0 || !res.Converged {
		t.Fatalf("nodeless input: %d nodes converged=%v", len(res.Nodes), res.Converged)
	}
	for _, basin := range []int{0, 1, 5} {
		assign := ClusterRecords(res, records, basin)
		if len(assign) != len(records) {
			t.Fatalf("basin %d: %d assignments", basin, len(assign))
		}
		for p, a := range assign {
			if a != 0 {
				t.Fatalf("basin %d: record %d in cluster %d, want 0", basin, p, a)
			}
		}
	}
}

func TestClusterRecordsUnseenValues(t *testing.T) {
	// Records scored at read-out time may hold values the system never
	// saw (out-of-sample data); they must contribute zero weight rather
	// than panic or skew the sign.
	train := []dataset.Record{{"a", "x"}, {"a", "x"}, {"b", "y"}, {"b", "y"}}
	res, err := Run(train, 2, Config{Revised: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	probe := []dataset.Record{{"never", "seen"}, {"a", "unseen"}}
	assign := ClusterRecords(res, probe, 1)
	if assign[0] != 0 {
		t.Fatalf("all-unseen record scored nonzero: cluster %d", assign[0])
	}
	known := ClusterRecords(res, train[:1], 1)
	if assign[1] != known[0] {
		t.Fatalf("partially-seen record landed in cluster %d, its seen value alone says %d", assign[1], known[0])
	}
}
