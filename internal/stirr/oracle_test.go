package stirr

import (
	"math"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

// TestRevisedAgainstExplicitMatrixOracle rebuilds the revised iteration
// as an explicit matrix power method — materialize the value
// co-occurrence matrix M, add the spectral shift λ0·I, iterate and
// normalize — and checks that Run's principal basin lands on the same
// vector.
func TestRevisedAgainstExplicitMatrixOracle(t *testing.T) {
	records := []dataset.Record{
		{"A1", "A2", "A3"}, {"A1", "A2", "A3"}, {"A1", "A2b", "A3"},
		{"B1", "B2", "B3"}, {"B1", "B2b", "B3"},
		{"A1", "B2", "A3"}, // a bridge record keeps the operator irreducible
	}
	res, err := Run(records, 3, Config{Revised: true, Seed: 3, Iters: 2000, Basins: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("revised system did not converge")
	}

	// Oracle: explicit matrix.
	nn := len(res.Nodes)
	m := make([][]float64, nn)
	for i := range m {
		m[i] = make([]float64, nn)
	}
	for _, rec := range records {
		var ids []int
		for a, v := range rec {
			ids = append(ids, res.Index[Node{a, v}])
		}
		for _, i := range ids {
			for _, j := range ids {
				if i != j {
					m[i][j]++
				}
			}
		}
	}
	shift := 0.0
	for i := range m {
		row := 0.0
		for j := range m[i] {
			row += m[i][j]
		}
		if row > shift {
			shift = row
		}
	}
	w := make([]float64, nn)
	for i := range w {
		w[i] = 1
	}
	next := make([]float64, nn)
	for it := 0; it < 2000; it++ {
		for i := range next {
			next[i] = shift * w[i]
			for j := range m[i] {
				next[i] += m[i][j] * w[j]
			}
		}
		norm := 0.0
		for _, x := range next {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		for i := range w {
			w[i] = next[i] / norm
		}
	}

	for i := range w {
		if math.Abs(w[i]-res.Weights[0][i]) > 1e-6 {
			t.Fatalf("node %d (%v): Run %g != oracle %g", i, res.Nodes[i], res.Weights[0][i], w[i])
		}
	}
}
