package stirr

import (
	"math"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

// twoBlockRecords builds records from two disjoint value blocks: class 0
// uses values A*, class 1 uses B*, with a configurable number of shared
// "bridge" records.
func twoBlockRecords(perClass int) ([]dataset.Record, []int) {
	var recs []dataset.Record
	var truth []int
	for i := 0; i < perClass; i++ {
		recs = append(recs, dataset.Record{"A1", "A2", "A3"})
		truth = append(truth, 0)
		recs = append(recs, dataset.Record{"B1", "B2", "B3"})
		truth = append(truth, 1)
	}
	// Light within-class variation so each block has >1 value per attr.
	recs = append(recs, dataset.Record{"A1", "A2b", "A3"}, dataset.Record{"B1", "B2b", "B3"})
	truth = append(truth, 0, 1)
	return recs, truth
}

func TestRevisedSeparatesBlocks(t *testing.T) {
	recs, truth := twoBlockRecords(10)
	res, err := Run(recs, 3, Config{Revised: true, Seed: 1, Iters: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("revised system did not converge in %d iterations", res.Iters)
	}
	assign := ClusterRecords(res, recs, 1)
	// The second basin's sign structure must match the block structure
	// (up to a global flip).
	agree, disagree := 0, 0
	for i := range assign {
		if assign[i] == truth[i] {
			agree++
		} else {
			disagree++
		}
	}
	if agree != len(recs) && disagree != len(recs) {
		t.Fatalf("basin split impure: %d/%d agree", agree, len(recs))
	}
}

// The classic per-attribute-normalized system is exactly what Zhang et
// al. (ICDE 2000) criticize: it need not converge to a useful basin even
// on cleanly separable data. We pin down the contrast: the classic run
// must at least stay finite, and the revised run on the same data must
// separate the blocks perfectly.
func TestClassicVersusRevised(t *testing.T) {
	recs, truth := twoBlockRecords(8)
	classic, err := Run(recs, 3, Config{Combiner: Sum, Seed: 2, Iters: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, basin := range classic.Weights {
		for _, w := range basin {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				t.Fatal("classic system produced non-finite weight")
			}
		}
	}
	revised, err := Run(recs, 3, Config{Revised: true, Seed: 2, Iters: 500})
	if err != nil {
		t.Fatal(err)
	}
	assign := ClusterRecords(revised, recs, 1)
	agree := 0
	for i := range assign {
		if assign[i] == truth[i] {
			agree++
		}
	}
	if agree != len(recs) && agree != 0 {
		t.Fatalf("revised split impure: %d/%d", agree, len(recs))
	}
}

func TestProductCombinerFiniteWeights(t *testing.T) {
	recs, _ := twoBlockRecords(6)
	res, err := Run(recs, 3, Config{Combiner: Product, Seed: 3, Iters: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, basin := range res.Weights {
		for _, w := range basin {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				t.Fatal("non-finite weight")
			}
		}
	}
}

func TestPrincipalBasinAllPositiveRevised(t *testing.T) {
	recs, _ := twoBlockRecords(6)
	res, err := Run(recs, 3, Config{Revised: true, Seed: 4, Iters: 500})
	if err != nil {
		t.Fatal(err)
	}
	// Perron–Frobenius: the principal eigenvector of a connected
	// non-negative operator has one sign. (The two blocks here are
	// disconnected, so allow zeros but no mixed signs per component —
	// check global: no strictly negative coexists with strictly positive
	// within a tolerance... simplest: all entries ≥ -1e-9 or all ≤ 1e-9.)
	pos, neg := 0, 0
	for _, w := range res.Weights[0] {
		if w > 1e-9 {
			pos++
		}
		if w < -1e-9 {
			neg++
		}
	}
	if pos > 0 && neg > 0 {
		t.Fatalf("principal basin mixes signs: %d pos, %d neg", pos, neg)
	}
}

func TestBasinOrthogonality(t *testing.T) {
	recs, _ := twoBlockRecords(10)
	res, err := Run(recs, 3, Config{Revised: true, Seed: 5, Iters: 500, Basins: 3})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < len(res.Weights); a++ {
		for b := a + 1; b < len(res.Weights); b++ {
			dot := 0.0
			for i := range res.Weights[a] {
				dot += res.Weights[a][i] * res.Weights[b][i]
			}
			if math.Abs(dot) > 1e-6 {
				t.Fatalf("basins %d,%d not orthogonal: %g", a, b, dot)
			}
		}
	}
}

func TestRunEdgeCases(t *testing.T) {
	if _, err := Run(nil, 0, Config{}); err == nil {
		t.Fatal("nattrs=0 accepted")
	}
	res, err := Run(nil, 3, Config{})
	if err != nil || !res.Converged {
		t.Fatal("empty input mishandled")
	}
	// Records of only missing values produce no nodes.
	res, err = Run([]dataset.Record{{"?", "?"}}, 2, Config{})
	if err != nil || len(res.Nodes) != 0 {
		t.Fatal("missing-only records mishandled")
	}
}

func TestClusterRecordsMissingBasin(t *testing.T) {
	recs, _ := twoBlockRecords(2)
	res, _ := Run(recs, 3, Config{Basins: 1, Revised: true})
	assign := ClusterRecords(res, recs, 5) // basin out of range
	for _, a := range assign {
		if a != 0 {
			t.Fatal("missing basin should yield all-zero assignment")
		}
	}
}

func TestDeterminism(t *testing.T) {
	recs, _ := twoBlockRecords(5)
	a, _ := Run(recs, 3, Config{Revised: true, Seed: 9})
	b, _ := Run(recs, 3, Config{Revised: true, Seed: 9})
	for bi := range a.Weights {
		for i := range a.Weights[bi] {
			if a.Weights[bi][i] != b.Weights[bi][i] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
}
