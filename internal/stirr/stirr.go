// Package stirr implements the STIRR dynamical system of Gibson,
// Kleinberg and Raghavan (VLDB 1998) for clustering categorical data, and
// a revised, convergence-guaranteed iteration in the spirit of Zhang, Fu,
// Cai and Heng ("Clustering Categorical Data", ICDE 2000), who showed
// that STIRR's non-linear systems need not converge and repaired them.
//
// STIRR views each attribute value as a node carrying a weight. One
// iteration propagates weights through every tuple: the new weight of a
// node is the sum over tuples containing it of a combiner ⊕ applied to
// the weights of the other values in the tuple, followed by
// re-normalization. Maintaining a second, orthogonalized weight vector
// (a "non-principal basin") yields a signed partition of the attribute
// values — and through them of the records — into two clusters.
//
// The Revised option replaces the non-linear per-attribute scheme with a
// single linear operator iteration (sum combiner, global L2
// normalization): a power iteration on the non-negative value
// co-occurrence matrix, which converges for any non-degenerate start by
// Perron–Frobenius — the convergence guarantee that is the ICDE 2000
// paper's point. See DESIGN.md (A5).
package stirr

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/rockclust/rock/internal/dataset"
)

// Combiner selects how the weights of a tuple's other values merge into a
// node's contribution.
type Combiner int

const (
	// Sum is the linear combiner Σ w_j — the analytically tractable
	// choice, and the one the revised system builds on.
	Sum Combiner = iota
	// Product is Π w_j, STIRR's original emphasis.
	Product
)

// Config parameterizes a STIRR run.
type Config struct {
	Combiner Combiner
	// Basins is the number of weight vectors maintained; vector 0 is the
	// principal basin, later ones are kept orthogonal to the earlier ones
	// (Gram–Schmidt) and carry the cluster structure. Default 2.
	Basins int
	// Iters bounds the iterations (default 100).
	Iters int
	// Tol stops iteration when the max weight change drops below it
	// (default 1e-9).
	Tol float64
	// Revised selects the convergence-guaranteed linear iteration.
	Revised bool
	Seed    int64
}

func (c Config) withDefaults() Config {
	if c.Basins == 0 {
		c.Basins = 2
	}
	if c.Iters == 0 {
		c.Iters = 100
	}
	if c.Tol == 0 {
		c.Tol = 1e-9
	}
	return c
}

// Node identifies one attribute value.
type Node struct {
	Attr  int
	Value string
}

// Result carries the converged weight vectors.
type Result struct {
	Nodes     []Node
	Index     map[Node]int
	Weights   [][]float64 // [basin][node]
	Iters     int
	Converged bool

	attrNodes [][]int // node ids per attribute, for per-attribute scaling
}

// Run executes the dynamical system over categorical records with the
// given attribute count. Missing values contribute no nodes.
func Run(records []dataset.Record, nattrs int, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if nattrs <= 0 {
		return nil, fmt.Errorf("stirr: nattrs = %d", nattrs)
	}

	// Build the node table and per-record node lists.
	res := &Result{Index: make(map[Node]int)}
	tuples := make([][]int, len(records))
	for ri, rec := range records {
		for a := 0; a < nattrs && a < len(rec); a++ {
			v := rec[a]
			if v == "" || v == dataset.Missing {
				continue
			}
			nd := Node{a, v}
			id, ok := res.Index[nd]
			if !ok {
				id = len(res.Nodes)
				res.Index[nd] = id
				res.Nodes = append(res.Nodes, nd)
			}
			tuples[ri] = append(tuples[ri], id)
		}
	}
	nn := len(res.Nodes)
	if nn == 0 {
		res.Converged = true
		return res, nil
	}
	res.attrNodes = make([][]int, nattrs)
	for id, nd := range res.Nodes {
		res.attrNodes[nd.Attr] = append(res.attrNodes[nd.Attr], id)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	res.Weights = make([][]float64, cfg.Basins)
	for b := range res.Weights {
		w := make([]float64, nn)
		if b == 0 {
			for i := range w {
				w[i] = 1
			}
		} else {
			for i := range w {
				w[i] = rng.NormFloat64()
			}
		}
		res.Weights[b] = w
	}
	normalize(res, cfg)

	comb := cfg.Combiner
	var shift float64
	if cfg.Revised {
		comb = Sum // the revised system is the linear iteration
		// Spectral shift: iterate M + λ0·I instead of M, where λ0 bounds
		// the operator norm (max row sum). The shift keeps every
		// eigenvector and the eigenvalue ordering while making all
		// shifted eigenvalues non-negative, so the power iteration
		// provably settles — without it, two-attribute data makes the
		// value co-occurrence graph bipartite (a ±λ-symmetric spectrum)
		// and the iteration oscillates forever, one of the convergence
		// failures the ICDE 2000 revision addresses.
		rowSum := make([]float64, nn)
		for _, tuple := range tuples {
			for _, v := range tuple {
				rowSum[v] += float64(len(tuple) - 1)
			}
		}
		for _, s := range rowSum {
			if s > shift {
				shift = s
			}
		}
	}
	next := make([]float64, nn)
	var prev [][]float64
	for it := 0; it < cfg.Iters; it++ {
		for b := range res.Weights {
			w := res.Weights[b]
			for i := range next {
				next[i] = shift * w[i]
			}
			for _, tuple := range tuples {
				for i, v := range tuple {
					next[v] += combine(comb, w, tuple, i)
				}
			}
			copy(w, next)
		}
		normalize(res, cfg)
		// Scale-free convergence test: compare normalized vectors (up to
		// sign, since power iteration may alternate sign on negative
		// eigenvalues).
		if prev != nil && maxDeltaUpToSign(res.Weights, prev) < cfg.Tol {
			res.Iters = it + 1
			res.Converged = true
			return res, nil
		}
		prev = snapshot(res.Weights, prev)
	}
	res.Iters = cfg.Iters
	return res, nil
}

// snapshot copies weights into dst, allocating on first use.
func snapshot(weights [][]float64, dst [][]float64) [][]float64 {
	if dst == nil {
		dst = make([][]float64, len(weights))
		for b := range weights {
			dst[b] = make([]float64, len(weights[b]))
		}
	}
	for b := range weights {
		copy(dst[b], weights[b])
	}
	return dst
}

// maxDeltaUpToSign measures the movement of each basin, allowing a global
// sign flip per basin.
func maxDeltaUpToSign(cur, prev [][]float64) float64 {
	d := 0.0
	for b := range cur {
		direct, flipped := 0.0, 0.0
		for i, w := range cur[b] {
			if x := math.Abs(w - prev[b][i]); x > direct {
				direct = x
			}
			if x := math.Abs(w + prev[b][i]); x > flipped {
				flipped = x
			}
		}
		if flipped < direct {
			direct = flipped
		}
		if direct > d {
			d = direct
		}
	}
	return d
}

// combine merges the weights of tuple's values other than position skip.
func combine(c Combiner, w []float64, tuple []int, skip int) float64 {
	switch c {
	case Product:
		p := 1.0
		for j, v := range tuple {
			if j != skip {
				p *= w[v]
			}
		}
		return p
	default: // Sum
		s := 0.0
		for j, v := range tuple {
			if j != skip {
				s += w[v]
			}
		}
		return s
	}
}

// normalize rescales weight vectors after an update. Non-principal basins
// are first orthogonalized against earlier ones (Gram–Schmidt), so basin b
// tracks the (b+1)-th dominant direction. The classic STIRR scheme then
// normalizes each attribute's value weights to unit norm independently —
// one of the non-linearities behind its convergence failures; the revised
// system uses a single global L2 normalization, turning the whole
// iteration into a power method on the value co-occurrence operator.
func normalize(res *Result, cfg Config) {
	for b := range res.Weights {
		w := res.Weights[b]
		for p := 0; p < b; p++ {
			dot := 0.0
			for i := range w {
				dot += w[i] * res.Weights[p][i]
			}
			for i := range w {
				w[i] -= dot * res.Weights[p][i]
			}
		}
		if cfg.Revised {
			scale(w, allNodes(len(w)))
			continue
		}
		for _, ids := range res.attrNodes {
			scale(w, ids)
		}
	}
}

// allNodes returns the identity index list 0..n-1.
func allNodes(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// scale normalizes the selected entries of w to unit L2 norm in place
// (no-op on zero segments).
func scale(w []float64, ids []int) {
	norm := 0.0
	for _, i := range ids {
		norm += w[i] * w[i]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return
	}
	for _, i := range ids {
		w[i] /= norm
	}
}

// ClusterRecords splits records in two by the sign of their total weight
// under the given basin (the standard STIRR read-out): cluster 0 for
// non-negative scores, 1 for negative.
func ClusterRecords(res *Result, records []dataset.Record, basin int) []int {
	assign := make([]int, len(records))
	if basin >= len(res.Weights) {
		return assign
	}
	w := res.Weights[basin]
	for ri, rec := range records {
		score := 0.0
		for a, v := range rec {
			if v == "" || v == dataset.Missing {
				continue
			}
			if id, ok := res.Index[Node{a, v}]; ok {
				score += w[id]
			}
		}
		if score < 0 {
			assign[ri] = 1
		}
	}
	return assign
}
