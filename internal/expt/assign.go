package expt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
)

// AssignBenchRow is one point of the frozen-model serving sweep: the
// serial pairwise reference assignment, the model's indexed Assign, and
// AssignBatch across worker counts, all answering the same queries from
// the same frozen model — plus the Save/Load cost and file size of the
// model itself.
type AssignBenchRow struct {
	N         int     `json:"n"`
	Queries   int     `json:"queries"`
	Sets      int     `json:"sets"`
	SetPoints int     `json:"set_points"` // Σ|L_i| frozen into the model
	Theta     float64 `json:"theta"`
	Assigned  int     `json:"assigned"`
	Outliers  int     `json:"outliers"`
	// Timing: best of 3 runs against the prebuilt model, so only the
	// serving path is measured.
	PairwiseSec float64 `json:"pairwise_sec"`
	AssignSec   float64 `json:"assign_sec"`
	Speedup     float64 `json:"speedup"` // pairwise_sec / assign_sec
	// AssignBatch at each worker count, against the single-worker batch
	// as baseline.
	Parallel []AssignParallelPoint `json:"parallel"`
	// The frozen artifact itself.
	ModelBytes int     `json:"model_bytes"`
	SaveSec    float64 `json:"save_sec"`
	LoadSec    float64 `json:"load_sec"`
}

// AssignParallelPoint is AssignBatch's timing at one worker count.
type AssignParallelPoint struct {
	Workers int     `json:"workers"`
	Sec     float64 `json:"sec"`
	Speedup float64 `json:"speedup"` // assign_sec / sec
}

// AssignBenchReport is the BENCH_assign.json payload.
type AssignBenchReport struct {
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"numcpu"`
	Quick      bool             `json:"quick"`
	Rows       []AssignBenchRow `json:"rows"`
	Notes      []string         `json:"notes"`
}

// BenchAssign times the serial pairwise reference against a frozen
// model's Assign/AssignBatch on the labeling workload, and records the
// model's Save/Load round-trip cost — the perf trajectory record behind
// `rockbench -assign`. Assignment agreement between the reference, the
// model, and a save→load→assign round trip is re-verified on every row
// before timing (the model oracle test provides the byte-level
// guarantee; this is the belt to its suspenders).
func BenchAssign(w io.Writer, opts Options) error {
	ns := []int{5000, 12500, 25000}
	if opts.Quick {
		ns = []int{1000, 2500}
	}
	theta := labelFixtureTheta

	report := AssignBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      opts.Quick,
		Notes: []string{
			cpuNote(),
			"pairwise is the paper's labeling loop run per query; assign serves the same queries from a frozen model (inverted index over the frozen labeled points, θ-test decided from (|t∩q|, |t|, |q|)).",
			"the model is frozen from the same clustered sample and L_i sets the -label sweep uses (every 5th transaction clustered; sets per LabelFraction/MaxLabelPoints defaults); queries are the remaining points.",
			"times are best-of-3 seconds for the serving path alone; speedup = pairwise_sec / assign_sec.",
			"parallel rows run AssignBatch across workers on the same model: speedup = assign_sec / sec.",
			"model_bytes / save_sec / load_sec measure the frozen artifact: a versioned, checksummed binary whose save→load→save round trip is byte-identical.",
			"parallel numbers only show scaling when GOMAXPROCS exceeds one — at GOMAXPROCS=1 the workers serialize and pay only the chunk-handoff overhead; rerun on a multi-core host to capture the curve.",
			"reference, in-process model, and reloaded model agree on every row (verified before timing); the model oracle test enforces bit-identity under -race.",
		},
	}
	for _, n := range ns {
		ts, candidates, sets, err := LabelFixture(n, opts.Seed)
		if err != nil {
			return err
		}
		model, err := core.FreezeSets(ts, sets, nil, theta, core.MarketBasketF(theta), nil)
		if err != nil {
			return fmt.Errorf("expt: freezing the assign fixture model: %w", err)
		}
		queries := make([]dataset.Transaction, 0, len(candidates))
		for _, p := range candidates {
			queries = append(queries, ts[p])
		}

		ref := core.BenchAssignReference(model, queries)
		got := model.AssignBatch(queries, 1)
		if !reflect.DeepEqual(ref, got) {
			return fmt.Errorf("expt: model disagrees with the pairwise reference at n=%d — refusing to record timings", n)
		}
		var file bytes.Buffer
		if err := model.Save(&file); err != nil {
			return err
		}
		loaded, err := core.LoadModel(bytes.NewReader(file.Bytes()))
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(ref, loaded.AssignBatch(queries, 1)) {
			return fmt.Errorf("expt: reloaded model disagrees at n=%d — refusing to record timings", n)
		}

		setPoints := 0
		for _, li := range sets {
			setPoints += len(li)
		}
		row := AssignBenchRow{
			N: n, Queries: len(queries),
			Sets: len(sets), SetPoints: setPoints, Theta: theta,
			PairwiseSec: bestOf(3, func() { core.BenchAssignReference(model, queries) }),
			AssignSec:   bestOf(3, func() { model.AssignBatch(queries, 1) }),
			ModelBytes:  file.Len(),
			SaveSec:     bestOf(3, func() { model.Save(io.Discard) }),
			LoadSec: bestOf(3, func() {
				if _, err := core.LoadModel(bytes.NewReader(file.Bytes())); err != nil {
					panic(err)
				}
			}),
		}
		for _, a := range ref {
			if a >= 0 {
				row.Assigned++
			} else {
				row.Outliers++
			}
		}
		row.Speedup = row.PairwiseSec / row.AssignSec
		for _, workers := range []int{1, 2, 4} {
			wk := workers
			if !reflect.DeepEqual(ref, model.AssignBatch(queries, wk)) {
				return fmt.Errorf("expt: AssignBatch disagrees at n=%d workers=%d — refusing to record timings", n, wk)
			}
			sec := bestOf(3, func() { model.AssignBatch(queries, wk) })
			row.Parallel = append(row.Parallel, AssignParallelPoint{
				Workers: wk, Sec: sec, Speedup: row.AssignSec / sec,
			})
		}
		report.Rows = append(report.Rows, row)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("expt: encoding assign bench report: %w", err)
	}
	return nil
}
