package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/rockclust/rock/internal/linkage"
	"github.com/rockclust/rock/internal/similarity"
	"github.com/rockclust/rock/internal/synth"
)

// LinkBenchRow is one point of the serial-vs-parallel link sweep.
type LinkBenchRow struct {
	N         int                 `json:"n"`
	Theta     float64             `json:"theta"`
	LinkPairs int                 `json:"link_pairs"`
	SerialSec float64             `json:"serial_sec"`
	Parallel  []LinkBenchParallel `json:"parallel"`
	// SpeedupBest is SerialSec over the fastest parallel time — the
	// headline number of the perf trajectory.
	SpeedupBest float64 `json:"speedup_best"`
}

// LinkBenchParallel is the parallel CSR builder timed at one worker count.
type LinkBenchParallel struct {
	Workers int     `json:"workers"`
	Sec     float64 `json:"sec"`
	Speedup float64 `json:"speedup"` // serial_sec / sec
}

// LinkBenchReport is the BENCH_links.json payload.
type LinkBenchReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"numcpu"`
	Quick      bool           `json:"quick"`
	Rows       []LinkBenchRow `json:"rows"`
	Notes      []string       `json:"notes"`
}

// BenchLinks times the serial map-based link builder (FromNeighbors)
// against the sharded parallel CSR builder (FromNeighborsCSR) on the E6
// ScaleUp workload sizes and writes the result as JSON — the perf
// trajectory record behind `rockbench -links`. Every timing is the best
// of three runs; oracle agreement between the builders is re-verified on
// each dataset before timing.
func BenchLinks(w io.Writer, opts Options) error {
	ns := []int{1000, 2000, 5000}
	if opts.Quick {
		ns = []int{500, 1000}
	}
	theta := 0.6
	workerCounts := uniqueInts([]int{1, 2, 4, runtime.GOMAXPROCS(0)})

	report := LinkBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      opts.Quick,
		Notes: []string{
			cpuNote(),
			"serial is the paper's map-accumulating FromNeighbors; parallel is the sharded CSR builder FromNeighborsCSR.",
			"times are best-of-3 seconds on the E6 ScaleUp basket workload; speedup = serial_sec / sec.",
			"the parallel builder wins even at workers=1 by replacing map inserts with dense array counting.",
		},
	}
	if report.GOMAXPROCS < 4 {
		report.Notes = append(report.Notes,
			fmt.Sprintf("measured at GOMAXPROCS=%d: worker counts above the core count timeshare one CPU, so only the algorithmic (workers=1) speedup is observable here; rerun on a multi-core host for the scaling curve.", report.GOMAXPROCS))
	}
	for _, n := range ns {
		d := synth.Basket(synth.BasketConfig{
			Transactions:    n,
			Clusters:        10,
			TemplateItems:   15,
			TransactionSize: 12,
			Seed:            opts.Seed + int64(n),
		})
		nb := similarity.ComputeIndexed(d.Trans, theta, similarity.Options{})

		serialTable := linkage.FromNeighbors(nb)
		if !linkage.CompactFrom(serialTable).Equal(linkage.FromNeighborsCSR(nb, 0)) {
			return fmt.Errorf("expt: link builders disagree at n=%d — refusing to record timings", n)
		}

		row := LinkBenchRow{
			N:         n,
			Theta:     theta,
			LinkPairs: serialTable.Pairs(),
			SerialSec: bestOf(3, func() { linkage.FromNeighbors(nb) }),
		}
		best := 0.0
		for _, workers := range workerCounts {
			sec := bestOf(3, func() { linkage.FromNeighborsCSR(nb, workers) })
			p := LinkBenchParallel{Workers: workers, Sec: sec, Speedup: row.SerialSec / sec}
			row.Parallel = append(row.Parallel, p)
			if p.Speedup > best {
				best = p.Speedup
			}
		}
		row.SpeedupBest = best
		report.Rows = append(report.Rows, row)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("expt: encoding link bench report: %w", err)
	}
	return nil
}

// bestOf returns the fastest of k timed runs of f, in seconds.
func bestOf(k int, f func()) float64 {
	best := 0.0
	for i := 0; i < k; i++ {
		start := time.Now()
		f()
		if s := time.Since(start).Seconds(); i == 0 || s < best {
			best = s
		}
	}
	return best
}

// uniqueInts returns a new slice with duplicates dropped, preserving
// first-seen order.
func uniqueInts(xs []int) []int {
	seen := map[int]bool{}
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
