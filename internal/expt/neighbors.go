package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/similarity"
	"github.com/rockclust/rock/internal/synth"
)

// NeighborBenchRow is one point of the neighbor-phase sweep: the exact
// inverted index against the prototype map-based LSH and the sort-based
// sharded pipeline, on the hub-heavy basket workload where the exact
// index degrades toward O(n²).
type NeighborBenchRow struct {
	N     int     `json:"n"`
	Theta float64 `json:"theta"`
	// ExactSec and RefSec are zero when the variant was skipped (the
	// million-point row times only the pipeline).
	ExactSec float64 `json:"exact_sec,omitempty"`
	RefSec   float64 `json:"ref_sec,omitempty"`
	LSHSec   float64 `json:"lsh_sec"`
	// SpeedupVsExact/Ref are LSH pipeline speedups (exact_sec/lsh_sec,
	// ref_sec/lsh_sec); zero when the comparator was skipped.
	SpeedupVsExact float64 `json:"speedup_vs_exact,omitempty"`
	SpeedupVsRef   float64 `json:"speedup_vs_ref,omitempty"`
	// Recall is edge recall against the exact neighbor relation:
	// measured over every exact edge when the exact index ran
	// (RecallMeasured), otherwise the pipeline's sampled-ledger estimate.
	Recall         float64 `json:"recall"`
	RecallMeasured bool    `json:"recall_measured"`
	ExactEdges     int64   `json:"exact_edges,omitempty"`
	CandidatePairs int64   `json:"candidate_pairs"`
	VerifiedEdges  int64   `json:"verified_edges"`
	RecallSampled  int     `json:"recall_sampled"`
}

// NeighborBenchChunked records the end-to-end chunked clustering run at
// the long-mode scale: the acceptance artifact for "a million points
// through the LSH path with the quality ledger populated".
type NeighborBenchChunked struct {
	N              int     `json:"n"`
	K              int     `json:"k"`
	ChunkSize      int     `json:"chunk_size"`
	ChunkK         int     `json:"chunk_k"`
	Sec            float64 `json:"sec"`
	Clusters       int     `json:"clusters"`
	Outliers       int     `json:"outliers"`
	CandidatePairs int64   `json:"candidate_pairs"`
	VerifiedEdges  int64   `json:"verified_edges"`
	RecallSampled  int     `json:"recall_sampled"`
	Recall         float64 `json:"recall"`
}

// NeighborBenchReport is the BENCH_neighbors.json payload.
type NeighborBenchReport struct {
	GOMAXPROCS int                   `json:"gomaxprocs"`
	NumCPU     int                   `json:"numcpu"`
	Quick      bool                  `json:"quick"`
	Long       bool                  `json:"long"`
	Rows       []NeighborBenchRow    `json:"rows"`
	Chunked    *NeighborBenchChunked `json:"chunked,omitempty"`
	Notes      []string              `json:"notes"`
}

// neighborBenchData builds the hub-heavy basket workload: a pool of
// universally popular noise items whose posting lists grow linearly with
// n, so the exact inverted index slides toward O(n²) candidate work,
// while cluster count scales with n to keep the true neighbor graph
// sparse. This is the regime (realistic for market baskets) where
// approximate neighbors earn their keep.
func neighborBenchData(n int, seed int64) []dataset.Transaction {
	clusters := n / 200
	if clusters < 5 {
		clusters = 5
	}
	d := synth.Basket(synth.BasketConfig{
		Transactions:    n,
		Clusters:        clusters,
		TemplateItems:   15,
		TransactionSize: 12,
		NoiseItems:      15,
		NoiseRate:       0.15,
		Seed:            seed + int64(n),
	})
	return d.Trans
}

// BenchNeighbors times the neighbor phase three ways — exact inverted
// index (ComputeIndexed), prototype map-based LSH (ComputeLSHReference),
// sort-based sharded LSH pipeline (ComputeLSH) — and writes the result
// as JSON: the perf-trajectory record behind `rockbench -neighbors`.
// Recall is measured exactly wherever the exact index is feasible. With
// Options.Long the sweep adds a 10⁶-point pipeline-only row (comparators
// skipped: the prototype's maps and the index's hub postings are the
// problem being escaped) and an end-to-end ChunkedCluster run at 10⁶
// through the LSH path.
func BenchNeighbors(w io.Writer, opts Options) error {
	ns := []int{10000, 30000, 100000}
	if opts.Quick {
		ns = []int{2000, 5000}
	}
	theta := 0.45
	lshOpts := func() similarity.LSHOptions {
		// Band threshold (1/32)^(1/3) ≈ 0.31 < θ = 0.45 keeps recall high.
		return similarity.LSHOptions{Hashes: 96, Bands: 32, Seed: opts.Seed + 1, RecallSample: 256}
	}

	report := NeighborBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      opts.Quick,
		Long:       opts.Long,
		Notes: []string{
			cpuNote(),
			"workload: hub-heavy baskets (15 universal noise items, rate 0.15) with n/200 clusters — hub posting lists grow with n, degrading the exact index toward O(n²) candidate work.",
			"exact is the counted inverted index ComputeIndexed; ref is the prototype map-based ComputeLSHReference; lsh is the sort-based sharded pipeline ComputeLSH (96 hashes / 32 bands, θ=0.45; neighbor lists byte-identical to ref, see TestLSHOracle).",
			"recall_measured=true rows compare every exact edge against the pipeline's lists; the million-point row reports the pipeline's own sampled-recall ledger instead.",
			"timings are best-of-3 below n=10⁵ and single-run at or above it.",
		},
	}

	for _, n := range ns {
		ts := neighborBenchData(n, opts.Seed)
		runs := 3
		if n >= 100000 {
			runs = 1
		}
		var exact, approx *similarity.Neighbors
		row := NeighborBenchRow{N: n, Theta: theta}
		row.ExactSec = bestOf(runs, func() { exact = similarity.ComputeIndexed(ts, theta, similarity.Options{}) })
		row.RefSec = bestOf(runs, func() { similarity.ComputeLSHReference(ts, theta, lshOpts()) })
		row.LSHSec = bestOf(runs, func() { approx = similarity.ComputeLSH(ts, theta, lshOpts()) })
		row.SpeedupVsExact = row.ExactSec / row.LSHSec
		row.SpeedupVsRef = row.RefSec / row.LSHSec

		var hit int64
		for i := range ts {
			for _, j := range exact.Lists[i] {
				row.ExactEdges++
				if approx.Contains(i, j) {
					hit++
				}
			}
		}
		row.Recall = 1
		if row.ExactEdges > 0 {
			row.Recall = float64(hit) / float64(row.ExactEdges)
		}
		row.RecallMeasured = true
		row.CandidatePairs = approx.LSH.CandidatePairs
		row.VerifiedEdges = approx.LSH.VerifiedEdges
		row.RecallSampled = approx.LSH.RecallSampled
		report.Rows = append(report.Rows, row)
	}

	if opts.Long {
		n := 1000000
		ts := neighborBenchData(n, opts.Seed)
		var approx *similarity.Neighbors
		row := NeighborBenchRow{N: n, Theta: theta}
		row.LSHSec = timeIt(func() { approx = similarity.ComputeLSH(ts, theta, lshOpts()) })
		row.Recall = approx.LSH.Recall
		row.RecallSampled = approx.LSH.RecallSampled
		row.CandidatePairs = approx.LSH.CandidatePairs
		row.VerifiedEdges = approx.LSH.VerifiedEdges
		report.Rows = append(report.Rows, row)
		approx = nil

		// End-to-end: a million points through ChunkedCluster on the LSH
		// neighbor path, quality ledger aggregated across every sub-run.
		ch := &NeighborBenchChunked{N: n, K: 100, ChunkSize: 50000, ChunkK: 200}
		var res *core.Result
		ch.Sec = timeIt(func() {
			var err error
			res, err = core.ChunkedCluster(ts, core.ChunkedConfig{
				Base: core.Config{
					Theta: theta, K: ch.K, Seed: opts.Seed + 1,
					MinNeighbors: 1,
					LSHNeighbors: true, LSHHashes: 96, LSHBands: 32,
				},
				ChunkSize: ch.ChunkSize,
				ChunkK:    ch.ChunkK,
			})
			if err != nil {
				panic(err) // configuration is static and valid
			}
		})
		ch.Clusters = res.K()
		ch.Outliers = len(res.Outliers)
		ch.CandidatePairs = res.Stats.LSHCandidatePairs
		ch.VerifiedEdges = res.Stats.LSHVerifiedEdges
		ch.RecallSampled = res.Stats.LSHRecallSampled
		ch.Recall = res.Stats.LSHRecall
		report.Chunked = ch
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("expt: encoding neighbor bench report: %w", err)
	}
	return nil
}
