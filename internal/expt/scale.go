package expt

import (
	"fmt"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/synth"
)

// runE6 reproduces the paper's timing figure: ROCK execution time as the
// number of (sample) points grows, one curve per θ ∈ {0.5,0.6,0.7,0.8}.
// Lower θ admits more neighbors, hence more links and more expensive
// merging — the curves separate with θ and grow superlinearly in n.
func runE6(opts Options) (*Report, error) {
	ns := []int{1000, 2000, 3000, 4000, 5000}
	if opts.Quick {
		ns = []int{200, 400, 600}
	}
	thetas := []float64{0.5, 0.6, 0.7, 0.8}

	series := make([]Series, len(thetas))
	for ti, theta := range thetas {
		series[ti].Name = fmt.Sprintf("θ=%.1f", theta)
	}
	var statNotes []string
	for _, n := range ns {
		d := synth.Basket(synth.BasketConfig{
			Transactions:    n,
			Clusters:        10,
			TemplateItems:   15,
			TransactionSize: 12,
			Seed:            opts.Seed + int64(n),
		})
		for ti, theta := range thetas {
			cfg := core.Config{Theta: theta, K: 10, Seed: 1}
			var res *core.Result
			secs := timeIt(func() {
				var err error
				if res, err = core.Cluster(d.Trans, cfg); err != nil {
					panic(err) // configuration is static and valid
				}
			})
			series[ti].X = append(series[ti].X, float64(n))
			series[ti].Y = append(series[ti].Y, secs)
			if n == ns[len(ns)-1] {
				statNotes = append(statNotes, fmt.Sprintf("θ=%.1f at n=%d: %s", theta, n, linkStatsNote(res.Stats)))
			}
		}
	}
	return &Report{
		Series: series,
		Notes: append([]string{
			"y-values are seconds of wall-clock time for the full ROCK pipeline (neighbors + links + merging).",
			"paper shape: time grows superlinearly with the number of points and drops as θ rises (fewer neighbors ⇒ fewer links).",
		}, statNotes...),
	}, nil
}
