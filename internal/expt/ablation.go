package expt

import (
	"fmt"

	"github.com/rockclust/rock/internal/baseline"
	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/metrics"
	"github.com/rockclust/rock/internal/stirr"
	"github.com/rockclust/rock/internal/synth"
)

// overlapBasket is the stress workload for A1/A2: adjacent cluster
// templates share a third of their items, creating genuine cross links.
func overlapBasket(opts Options) *overlapData {
	n := 600
	if opts.Quick {
		n = 300
	}
	d := synth.Basket(synth.BasketConfig{
		Transactions:    n,
		Clusters:        4,
		TemplateItems:   15,
		OverlapItems:    5,
		TransactionSize: 10,
		Seed:            opts.Seed + 17,
	})
	return &overlapData{d.Trans, d.Labels}
}

type overlapData struct {
	trans  []dataset.Transaction
	labels []string
}

// runA1 probes the goodness normalization: the paper's expected-link
// denominator versus raw link counts and links-per-pair. Raw counts let
// big clusters swallow neighbors through sheer mass; the normalized form
// resists.
func runA1(opts Options) (*Report, error) {
	data := overlapBasket(opts)
	kinds := []struct {
		name string
		g    core.GoodnessFunc
	}{
		{"rock (links/expected)", core.RockGoodness},
		{"raw link count", core.LinkCountGoodness},
		{"links per pair", core.AverageLinkGoodness},
	}
	headers := []string{"goodness", "clusters", "error e", "ARI"}
	var rows [][]string
	for _, kind := range kinds {
		res, err := core.Cluster(data.trans, core.Config{Theta: 0.4, K: 4, Goodness: kind.g, Seed: 1})
		if err != nil {
			return nil, err
		}
		ev := metrics.Evaluate(res.Assign, data.labels)
		rows = append(rows, []string{kind.name, fmt.Sprintf("%d", res.K()), fmt.Sprintf("%.4f", ev.Error), fmt.Sprintf("%.4f", ev.ARI)})
	}
	return &Report{
		Tables: []string{FormatTable(headers, rows)},
		Notes:  []string{"expected shape: the normalized goodness dominates or ties with links-per-pair; raw link counts collapse overlapping clusters into one."},
	}, nil
}

// runA2 contrasts QROCK (θ-neighbor connected components) with full ROCK.
// Where components coincide with clusters (mushroom at θ=0.8) QROCK gets
// the same answer at a fraction of the cost; where clusters overlap
// (basket with shared template items) components bridge and QROCK
// collapses while ROCK's goodness ordering resists.
func runA2(opts Options) (*Report, error) {
	headers := []string{"workload", "algorithm", "clusters", "error e", "ARI"}
	var rows [][]string

	// Workload 1: mushroom prefix (species are exact components).
	md := synth.Mushroom(synth.MushroomConfig{Seed: opts.Seed + 7})
	n := 1500
	if opts.Quick {
		n = 600
	}
	mush := subsetPrefix(md, n)
	rockRes, err := core.Cluster(mush.Trans, core.Config{Theta: 0.8, K: 20, MinNeighbors: 1, Seed: 1})
	if err != nil {
		return nil, err
	}
	qRes, err := core.QRock(mush.Trans, core.QRockConfig{Theta: 0.8, MinClusterSize: 2})
	if err != nil {
		return nil, err
	}
	evR := metrics.Evaluate(rockRes.Assign, mush.Labels)
	evQ := metrics.Evaluate(qRes.Assign, mush.Labels)
	rows = append(rows,
		[]string{"mushroom", "ROCK", fmt.Sprintf("%d", rockRes.K()), fmt.Sprintf("%.4f", evR.Error), fmt.Sprintf("%.4f", evR.ARI)},
		[]string{"mushroom", "QROCK", fmt.Sprintf("%d", qRes.K()), fmt.Sprintf("%.4f", evQ.Error), fmt.Sprintf("%.4f", evQ.ARI)},
	)

	// Workload 2: overlapping baskets (components bridge).
	data := overlapBasket(opts)
	rockRes, err = core.Cluster(data.trans, core.Config{Theta: 0.4, K: 4, Seed: 1})
	if err != nil {
		return nil, err
	}
	qRes, err = core.QRock(data.trans, core.QRockConfig{Theta: 0.4, MinClusterSize: 2})
	if err != nil {
		return nil, err
	}
	evR = metrics.Evaluate(rockRes.Assign, data.labels)
	evQ = metrics.Evaluate(qRes.Assign, data.labels)
	rows = append(rows,
		[]string{"overlap-basket", "ROCK", fmt.Sprintf("%d", rockRes.K()), fmt.Sprintf("%.4f", evR.Error), fmt.Sprintf("%.4f", evR.ARI)},
		[]string{"overlap-basket", "QROCK", fmt.Sprintf("%d", qRes.K()), fmt.Sprintf("%.4f", evQ.Error), fmt.Sprintf("%.4f", evQ.ARI)},
	)
	return &Report{
		Tables: []string{FormatTable(headers, rows)},
		Notes:  []string{"expected shape: parity on component-separable data; QROCK collapses (few clusters, high error) once neighbor components bridge."},
	}, nil
}

// runA3 sweeps the exponent f: the criterion's model of how many
// neighbors a point has inside a cluster. The market-basket choice
// f(θ)=(1−θ)/(1+θ) is the paper's; extreme exponents distort the
// normalization.
func runA3(opts Options) (*Report, error) {
	d := synth.Votes(synth.VotesConfig{Seed: opts.Seed + 42})
	fs := []struct {
		name string
		f    core.FTheta
	}{
		{"f=(1-θ)/(1+θ) (paper)", core.MarketBasketF},
		{"f=0.05", core.ConstantF(0.05)},
		{"f=0.3", core.ConstantF(0.3)},
		{"f=0.5", core.ConstantF(0.5)},
		{"f=1.0", core.ConstantF(1.0)},
	}
	headers := []string{"exponent", "clusters", "error e", "ARI", "outliers"}
	var rows [][]string
	for _, fk := range fs {
		cfg := votesROCKConfig()
		cfg.F = fk.f
		res, err := core.Cluster(d.Trans, cfg)
		if err != nil {
			return nil, err
		}
		ev := metrics.Evaluate(res.Assign, d.Labels)
		rows = append(rows, []string{fk.name, fmt.Sprintf("%d", res.K()), fmt.Sprintf("%.4f", ev.Error), fmt.Sprintf("%.4f", ev.ARI), fmt.Sprintf("%d", ev.Outliers)})
	}
	return &Report{
		Tables: []string{FormatTable(headers, rows)},
		Notes:  []string{"expected shape: quality is stable across moderate f and the paper's choice sits in the stable region."},
	}, nil
}

// runA4 toggles the two outlier devices (neighbor pruning, cluster
// weeding) on the votes data.
func runA4(opts Options) (*Report, error) {
	d := synth.Votes(synth.VotesConfig{Seed: opts.Seed + 42})
	variants := []struct {
		name         string
		minNeighbors int
		weedAt       float64
	}{
		{"no outlier handling", 0, 0},
		{"prune only (min 2 neighbors)", 2, 0},
		{"weed only (tail, ≤2)", 0, 0.03},
		{"prune + weed (paper)", 2, 0.03},
	}
	headers := []string{"variant", "clusters", "error e", "ARI", "outliers"}
	var rows [][]string
	for _, v := range variants {
		cfg := votesROCKConfig()
		cfg.MinNeighbors = v.minNeighbors
		cfg.WeedAt = v.weedAt
		res, err := core.Cluster(d.Trans, cfg)
		if err != nil {
			return nil, err
		}
		ev := metrics.Evaluate(res.Assign, d.Labels)
		rows = append(rows, []string{v.name, fmt.Sprintf("%d", res.K()), fmt.Sprintf("%.4f", ev.Error), fmt.Sprintf("%.4f", ev.ARI), fmt.Sprintf("%d", ev.Outliers)})
	}
	return &Report{
		Tables: []string{FormatTable(headers, rows)},
		Notes: []string{
			"expected shape: outlier handling trades a minority of outliers for visibly purer clusters (paper: 41 outliers on votes).",
			"on this substitute the neighbor-count prune does the heavy lifting; weeding alone fires before the fringe has merged anywhere and removes too little too early.",
		},
	}, nil
}

// runA5 pits the STIRR dynamical systems against ROCK on the votes data:
// the classic per-attribute-normalized iteration (convergence not
// guaranteed — the ICDE 2000 critique) and the revised linear iteration.
func runA5(opts Options) (*Report, error) {
	d := synth.Votes(synth.VotesConfig{Seed: opts.Seed + 42})
	records := baseline.RecordsOf(d)

	headers := []string{"algorithm", "converged", "error e", "ARI"}
	var rows [][]string
	for _, variant := range []struct {
		name    string
		revised bool
	}{{"STIRR (classic, sum combiner)", false}, {"revised dynamical system", true}} {
		res, err := stirr.Run(records, len(d.Attrs), stirr.Config{Revised: variant.revised, Seed: opts.Seed + 5, Iters: 300})
		if err != nil {
			return nil, err
		}
		assign := stirr.ClusterRecords(res, records, 1)
		ev := metrics.Evaluate(assign, d.Labels)
		rows = append(rows, []string{variant.name, fmt.Sprintf("%v", res.Converged), fmt.Sprintf("%.4f", ev.Error), fmt.Sprintf("%.4f", ev.ARI)})
	}
	rockRes, err := core.Cluster(d.Trans, votesROCKConfig())
	if err != nil {
		return nil, err
	}
	evR := metrics.Evaluate(rockRes.Assign, d.Labels)
	rows = append(rows, []string{fmt.Sprintf("ROCK (θ=%.2f)", votesTheta), "-", fmt.Sprintf("%.4f", evR.Error), fmt.Sprintf("%.4f", evR.ARI)})
	return &Report{
		Tables: []string{FormatTable(headers, rows)},
		Notes:  []string{"expected shape: the revised system converges and splits the parties; classic STIRR may fail to converge or split arbitrarily; ROCK matches or beats both at the cost of outliers."},
	}, nil
}
