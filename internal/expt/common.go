package expt

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/metrics"
)

// cpuNote pins the CPU context a benchmark ran under. Every BENCH JSON
// carries it: parallel and latency numbers are meaningless without
// knowing how many CPUs the workers actually had.
func cpuNote() string {
	return fmt.Sprintf("measured at GOMAXPROCS=%d on a host with %d CPUs (runtime.NumCPU).",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
}

// compositionTable renders the classic cluster-composition table of the
// paper's quality experiments: one row per cluster with its size and
// per-class member counts, plus an outliers row when any point is
// unassigned. Clusters are ordered by size descending for readability.
func compositionTable(labels []string, assign []int) string {
	classes, counts := metrics.ContingencyTable(assign, labels)
	k := 0
	for _, a := range assign {
		if a+1 > k {
			k = a + 1
		}
	}
	type row struct {
		id   int
		size int
		per  []int
	}
	rows := make([]row, 0, k)
	for ci := 0; ci < k; ci++ {
		r := row{id: ci, per: counts[ci]}
		for _, c := range counts[ci] {
			r.size += c
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].size != rows[j].size {
			return rows[i].size > rows[j].size
		}
		return rows[i].id < rows[j].id
	})

	outliers := make([]int, len(classes))
	nOut := 0
	for ri := k; ri < len(counts); ri++ {
		for j, c := range counts[ri] {
			outliers[j] += c
			nOut += c
		}
	}

	headers := append([]string{"cluster", "size"}, classes...)
	var cells [][]string
	for _, r := range rows {
		line := []string{fmt.Sprintf("%d", r.id), fmt.Sprintf("%d", r.size)}
		for _, c := range r.per {
			line = append(line, fmt.Sprintf("%d", c))
		}
		cells = append(cells, line)
	}
	if nOut > 0 {
		line := []string{"outliers", fmt.Sprintf("%d", nOut)}
		for _, c := range outliers {
			line = append(line, fmt.Sprintf("%d", c))
		}
		cells = append(cells, line)
	}
	return FormatTable(headers, cells)
}

// evalNote summarizes an evaluation in one line.
func evalNote(name string, ev metrics.Eval) string {
	return fmt.Sprintf("%s: accuracy r=%.4f, error e=%.4f, ace=%d, ARI=%.4f, NMI=%.4f, clustered=%d, outliers=%d",
		name, ev.Accuracy, ev.Error, ev.AbsoluteError, ev.ARI, ev.NMI, ev.Clustered, ev.Outliers)
}

// linkStatsNote renders one ROCK run's pipeline ledger in the shared
// form of the E-report notes: neighbor densities (the paper's m_a/m_m),
// the CSR link table volume (link-entries is the directed entry count
// the sharded builder materialized, 2× the undirected pairs), and the
// outlier/merge counters. When the run used the approximate LSH
// neighbor phase its quality ledger is appended.
func linkStatsNote(st core.Stats) string {
	s := fmt.Sprintf("stats: m_a=%.1f m_m=%d link-pairs=%d link-entries=%d pruned=%d weeded=%d merges=%d",
		st.AvgNeighbors, st.MaxNeighbors, st.LinkPairs, st.LinkEntries, st.Pruned, st.Weeded, st.Merges)
	if st.LSHCandidatePairs > 0 {
		s += fmt.Sprintf("; lsh: candidates=%d verified=%d recall≈%.3f (%d rows sampled)",
			st.LSHCandidatePairs, st.LSHVerifiedEdges, st.LSHRecall, st.LSHRecallSampled)
	}
	return s
}

// timeIt measures the wall-clock duration of f in seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// subsetPrefix takes the first n records of a dataset (generators
// interleave classes, so prefixes are representative).
func subsetPrefix(d *dataset.Dataset, n int) *dataset.Dataset {
	if n >= d.Len() {
		return d
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return d.Subset(idx)
}
