package expt

import (
	"fmt"

	"github.com/rockclust/rock/internal/baseline"
	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/linkage"
	"github.com/rockclust/rock/internal/similarity"
)

// motivatingTransactions is the paper's worked example: the ten size-3
// subsets of {1..5} (one cluster) and the {1,2,6,7} family (another).
// Several cross pairs tie the within-cluster Jaccard of 0.5 — similarity
// alone cannot separate the groups, links can.
func motivatingTransactions() ([]dataset.Transaction, []string) {
	tr := func(items ...dataset.Item) dataset.Transaction { return dataset.NewTransaction(items...) }
	ts := []dataset.Transaction{
		tr(1, 2, 3), tr(1, 2, 4), tr(1, 2, 5), tr(1, 3, 4), tr(1, 3, 5),
		tr(1, 4, 5), tr(2, 3, 4), tr(2, 3, 5), tr(2, 4, 5), tr(3, 4, 5),
		tr(1, 2, 6), tr(1, 2, 7), tr(1, 6, 7), tr(2, 6, 7),
	}
	labels := make([]string, len(ts))
	for i := range labels {
		if i < 10 {
			labels[i] = "A({1..5} subsets)"
		} else {
			labels[i] = "B({1,2,6,7} family)"
		}
	}
	return ts, labels
}

// runE8 contrasts links with raw similarity on the motivating example:
// the cross-group pairs reach the same similarity as within-group pairs,
// but their link counts are strictly smaller, and ROCK's clusters respect
// the boundary that centroid merging tramples.
func runE8(opts Options) (*Report, error) {
	ts, labels := motivatingTransactions()
	nb := similarity.Compute(ts, 0.5, similarity.Options{})
	lt := linkage.Build(nb, linkage.Options{})

	simTable := FormatTable(
		[]string{"pair", "groups", "jaccard", "links"},
		[][]string{
			{"{1,2,3} vs {1,2,4}", "A-A", fmt.Sprintf("%.2f", similarity.Jaccard(ts[0], ts[1])), fmt.Sprintf("%d", lt.Get(0, 1))},
			{"{1,2,3} vs {3,4,5}", "A-A", fmt.Sprintf("%.2f", similarity.Jaccard(ts[0], ts[9])), fmt.Sprintf("%d", lt.Get(0, 9))},
			{"{1,2,3} vs {1,2,6}", "A-B", fmt.Sprintf("%.2f", similarity.Jaccard(ts[0], ts[10])), fmt.Sprintf("%d", lt.Get(0, 10))},
			{"{1,6,7} vs {2,6,7}", "B-B", fmt.Sprintf("%.2f", similarity.Jaccard(ts[12], ts[13])), fmt.Sprintf("%d", lt.Get(12, 13))},
		},
	)

	rock, err := core.Cluster(ts, core.Config{Theta: 0.5, K: 2, Seed: 1})
	if err != nil {
		return nil, err
	}
	trad, err := baseline.Hierarchical(ts, baseline.HierarchicalConfig{K: 2, Linkage: baseline.Centroid})
	if err != nil {
		return nil, err
	}
	return &Report{
		Tables: []string{
			simTable,
			"ROCK clusters (θ=0.5, k=2):\n" + compositionTable(labels, rock.Assign),
			"Traditional centroid clusters (k=2):\n" + compositionTable(labels, trad.Assign),
		},
		Notes: []string{
			linkStatsNote(rock.Stats),
			"cross-group pairs reach Jaccard 0.50 — exactly the within-group similarity — but carry strictly fewer links (3 across vs 5 within; the family core pair {1,6,7}/{2,6,7} has no cross links at all).",
			"on this 14-point toy both algorithms settle on the same split at k=2, absorbing the two genuinely ambiguous border transactions {1,2,6} and {1,2,7}; the link statistics are the paper's point — at scale, where similarity ties abound (see E1/E3), only the link-based criterion stays robust.",
		},
	}, nil
}
