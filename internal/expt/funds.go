package expt

import (
	"fmt"
	"sort"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/metrics"
	"github.com/rockclust/rock/internal/synth"
)

// runE5 is the mutual-fund case study: ROCK at θ=0.8 over the up-day
// transactions of 795 simulated funds. The paper's shape: clusters align
// with fund groups — the bond sectors, the equity sectors, precious
// metals on its own — with no cross-group contamination.
func runE5(opts Options) (*Report, error) {
	days := 550
	if opts.Quick {
		days = 250
	}
	d := synth.Funds(synth.FundsConfig{Days: days, Seed: opts.Seed + 3})
	cfg := core.Config{
		Theta:        0.8,
		K:            synth.FundSectorCount(),
		MinNeighbors: 2,
		Seed:         opts.Seed + 1,
	}
	res, err := core.Cluster(d.Trans, cfg)
	if err != nil {
		return nil, err
	}
	ev := metrics.Evaluate(res.Assign, d.Labels)

	// Per-cluster sector breakdown with the dominant sector named.
	headers := []string{"cluster", "size", "dominant sector", "purity"}
	var rows [][]string
	for ci, members := range res.Clusters {
		counts := map[string]int{}
		for _, p := range members {
			counts[d.Labels[p]]++
		}
		best, bestN := "", 0
		keys := make([]string, 0, len(counts))
		for s := range counts {
			keys = append(keys, s)
		}
		sort.Strings(keys)
		for _, s := range keys {
			if counts[s] > bestN {
				best, bestN = s, counts[s]
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", ci),
			fmt.Sprintf("%d", len(members)),
			best,
			fmt.Sprintf("%.3f", float64(bestN)/float64(len(members))),
		})
	}
	return &Report{
		Tables: []string{FormatTable(headers, rows), compositionTable(d.Labels, res.Assign)},
		Notes: []string{
			evalNote(fmt.Sprintf("ROCK (θ=0.8, k=%d) on %d funds", cfg.K, d.Len()), ev),
			linkStatsNote(res.Stats),
			"paper shape: bond funds, equity funds and precious-metals funds fall into separate clusters; metals sit alone (anti-correlated with equities).",
		},
	}, nil
}
