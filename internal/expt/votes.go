package expt

import (
	"fmt"

	"github.com/rockclust/rock/internal/baseline"
	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/metrics"
	"github.com/rockclust/rock/internal/synth"
)

// votesTheta is the neighbor threshold for the votes experiment. The
// paper used θ=0.73 on the real UCI data; our generator draws votes with
// independent per-attribute jitter, which lowers within-party Jaccard
// relative to the real data's correlated voting, so the threshold is
// recalibrated to the value giving the same neighbor density (see
// EXPERIMENTS.md).
const votesTheta = 0.56

// votesROCKConfig is the tuned configuration for E2/A3/A4: the paper
// prunes sparsely-connected records up front and weeds tiny clusters, so
// a minority of records end as outliers (41 of 435 in the paper's run).
func votesROCKConfig() core.Config {
	return core.Config{
		Theta:        votesTheta,
		K:            2,
		MinNeighbors: 2,
		WeedAt:       0.03,
		WeedMaxSize:  2,
		Seed:         1,
	}
}

// runE1 reproduces the paper's "traditional hierarchical" votes table:
// centroid-linkage agglomeration over the binary encoding with k=2, which
// mixes the parties because the two blocks overlap geometrically.
func runE1(opts Options) (*Report, error) {
	d := synth.Votes(synth.VotesConfig{Seed: opts.Seed + 42})
	res, err := baseline.Hierarchical(d.Trans, baseline.HierarchicalConfig{K: 2, Linkage: baseline.Centroid})
	if err != nil {
		return nil, err
	}
	ev := metrics.Evaluate(res.Assign, d.Labels)
	rep := &Report{
		Tables: []string{compositionTable(d.Labels, res.Assign)},
		Notes: []string{
			evalNote("traditional centroid (k=2)", ev),
			"paper shape: both clusters heavily mixed — centroid distance cannot separate the parties.",
		},
	}
	return rep, nil
}

// runE2 reproduces the ROCK votes table: k=2 with neighbor
// pruning and weeding discarding a minority of records as outliers; the
// surviving clusters are nearly pure.
func runE2(opts Options) (*Report, error) {
	d := synth.Votes(synth.VotesConfig{Seed: opts.Seed + 42})
	cfg := votesROCKConfig()
	res, err := core.Cluster(d.Trans, cfg)
	if err != nil {
		return nil, err
	}
	ev := metrics.Evaluate(res.Assign, d.Labels)
	rep := &Report{
		Tables: []string{compositionTable(d.Labels, res.Assign)},
		Notes: []string{
			evalNote(fmt.Sprintf("ROCK (θ=%.2f, k=2)", cfg.Theta), ev),
			linkStatsNote(res.Stats),
			"paper shape: one ≈95%-Democrat cluster and one ≈88%-Republican cluster, ~10% of records set aside as outliers (paper: 41 of 435).",
		},
	}
	return rep, nil
}
