package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/linkage"
	"github.com/rockclust/rock/internal/similarity"
	"github.com/rockclust/rock/internal/synth"
)

// MergeBenchRow is one point of the agglomeration sweep: the map-based
// reference, the serial arena, and the parallel batched engine on the
// same prebuilt link table.
type MergeBenchRow struct {
	N         int     `json:"n"`
	K         int     `json:"k"`
	Theta     float64 `json:"theta"`
	LinkPairs int     `json:"link_pairs"`
	Merges    int     `json:"merges"`
	Clusters  int     `json:"clusters"`
	// Timing: best of 3 runs over a prebuilt link table, so only the
	// agglomeration phase is measured.
	MapSec   float64 `json:"map_sec"`
	ArenaSec float64 `json:"arena_sec"`
	Speedup  float64 `json:"speedup"` // map_sec / arena_sec
	// The serial-vs-parallel column: the batched engine at each worker
	// count, against the serial arena as baseline.
	Parallel []MergeParallelPoint `json:"parallel"`
	// Allocation counts for a single run of each engine (runtime.Mallocs
	// delta), and their ratio — the arena's headline win.
	MapAllocs   uint64  `json:"map_allocs"`
	ArenaAllocs uint64  `json:"arena_allocs"`
	AllocRatio  float64 `json:"alloc_ratio"` // map_allocs / arena_allocs
}

// MergeParallelPoint is the batched engine's timing at one worker count.
type MergeParallelPoint struct {
	Workers int     `json:"workers"`
	Sec     float64 `json:"sec"`
	Speedup float64 `json:"speedup"` // arena_sec / sec
}

// MergeBenchReport is the BENCH_merge.json payload.
type MergeBenchReport struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numcpu"`
	Quick      bool            `json:"quick"`
	Rows       []MergeBenchRow `json:"rows"`
	Notes      []string        `json:"notes"`
}

// BenchMerge times the reference map-based agglomeration engine against
// the arena engine on basket workloads and writes the result as JSON —
// the perf trajectory record behind `rockbench -merge`. Output agreement
// between the engines is re-verified on each dataset before timing (the
// oracle test provides the byte-level guarantee; this is the belt to its
// suspenders).
func BenchMerge(w io.Writer, opts Options) error {
	ns := []int{2000, 5000, 10000}
	if opts.Quick {
		ns = []int{500, 1000}
	}
	theta := 0.6

	report := MergeBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      opts.Quick,
		Notes: []string{
			cpuNote(),
			"map is the reference engine (map[int]*clus, per-merge map rebuilds, one indexed heap per cluster); arena is the flat-slot engine with sorted link rows and a single lazy heap.",
			"times are best-of-3 seconds for the agglomeration phase alone, over a prebuilt CSR link table on the basket workload; speedup = map_sec / arena_sec.",
			"parallel rows time the batched merge engine (conflict-free merge rounds executed across workers) against the serial arena: speedup = arena_sec / sec.",
			"parallel numbers only show scaling when GOMAXPROCS exceeds one — at GOMAXPROCS=1 the workers serialize and the batched engine pays its round overhead for at most the round-level heap-repair win; rerun on a multi-core host to capture the curve.",
			"alloc counts are runtime.Mallocs deltas for one run of each engine; alloc_ratio = map_allocs / arena_allocs.",
			"all engines produce identical clusterings on every row (verified before timing); the engine oracle test enforces byte-identical output across configurations and worker counts.",
		},
	}
	for _, n := range ns {
		k := n / 100
		if k < 2 {
			k = 2
		}
		d := synth.Basket(synth.BasketConfig{
			Transactions:    n,
			Clusters:        k,
			TemplateItems:   15,
			TransactionSize: 12,
			Seed:            opts.Seed + int64(n),
		})
		nb := similarity.ComputeIndexed(d.Trans, theta, similarity.Options{})
		lt := linkage.Build(nb, linkage.Options{})
		f := core.MarketBasketF(theta)

		mc, mm := core.BenchAgglomerateMap(n, lt, k, f)
		ac, am := core.BenchAgglomerateArena(n, lt, k, f)
		if mc != ac || mm != am {
			return fmt.Errorf("expt: engines disagree at n=%d (map %d/%d, arena %d/%d) — refusing to record timings", n, mc, mm, ac, am)
		}

		row := MergeBenchRow{
			N: n, K: k, Theta: theta,
			LinkPairs: lt.Pairs(),
			Merges:    am, Clusters: ac,
			MapSec:      bestOf(3, func() { core.BenchAgglomerateMap(n, lt, k, f) }),
			ArenaSec:    bestOf(3, func() { core.BenchAgglomerateArena(n, lt, k, f) }),
			MapAllocs:   mallocsOf(func() { core.BenchAgglomerateMap(n, lt, k, f) }),
			ArenaAllocs: mallocsOf(func() { core.BenchAgglomerateArena(n, lt, k, f) }),
		}
		row.Speedup = row.MapSec / row.ArenaSec
		if row.ArenaAllocs > 0 {
			row.AllocRatio = float64(row.MapAllocs) / float64(row.ArenaAllocs)
		}
		for _, workers := range []int{1, 2, 4} {
			pc, pm := core.BenchAgglomerateParallel(n, lt, k, f, workers)
			if pc != ac || pm != am {
				return fmt.Errorf("expt: batched engine disagrees at n=%d workers=%d (arena %d/%d, batched %d/%d) — refusing to record timings", n, workers, ac, am, pc, pm)
			}
			w := workers
			sec := bestOf(3, func() { core.BenchAgglomerateParallel(n, lt, k, f, w) })
			row.Parallel = append(row.Parallel, MergeParallelPoint{
				Workers: w, Sec: sec, Speedup: row.ArenaSec / sec,
			})
		}
		report.Rows = append(report.Rows, row)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("expt: encoding merge bench report: %w", err)
	}
	return nil
}

// mallocsOf counts heap allocations performed by one call of f.
func mallocsOf(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}
