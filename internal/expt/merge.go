package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/linkage"
	"github.com/rockclust/rock/internal/similarity"
	"github.com/rockclust/rock/internal/synth"
)

// MergeBenchRow is one point of the map-vs-arena agglomeration sweep.
type MergeBenchRow struct {
	N         int     `json:"n"`
	K         int     `json:"k"`
	Theta     float64 `json:"theta"`
	LinkPairs int     `json:"link_pairs"`
	Merges    int     `json:"merges"`
	Clusters  int     `json:"clusters"`
	// Timing: best of 3 runs over a prebuilt link table, so only the
	// agglomeration phase is measured.
	MapSec   float64 `json:"map_sec"`
	ArenaSec float64 `json:"arena_sec"`
	Speedup  float64 `json:"speedup"` // map_sec / arena_sec
	// Allocation counts for a single run of each engine (runtime.Mallocs
	// delta), and their ratio — the arena's headline win.
	MapAllocs   uint64  `json:"map_allocs"`
	ArenaAllocs uint64  `json:"arena_allocs"`
	AllocRatio  float64 `json:"alloc_ratio"` // map_allocs / arena_allocs
}

// MergeBenchReport is the BENCH_merge.json payload.
type MergeBenchReport struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	Quick      bool            `json:"quick"`
	Rows       []MergeBenchRow `json:"rows"`
	Notes      []string        `json:"notes"`
}

// BenchMerge times the reference map-based agglomeration engine against
// the arena engine on basket workloads and writes the result as JSON —
// the perf trajectory record behind `rockbench -merge`. Output agreement
// between the engines is re-verified on each dataset before timing (the
// oracle test provides the byte-level guarantee; this is the belt to its
// suspenders).
func BenchMerge(w io.Writer, opts Options) error {
	ns := []int{2000, 5000, 10000}
	if opts.Quick {
		ns = []int{500, 1000}
	}
	theta := 0.6

	report := MergeBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      opts.Quick,
		Notes: []string{
			"map is the reference engine (map[int]*clus, per-merge map rebuilds, one indexed heap per cluster); arena is the flat-slot engine with sorted link rows and a single lazy heap.",
			"times are best-of-3 seconds for the agglomeration phase alone, over a prebuilt CSR link table on the basket workload; speedup = map_sec / arena_sec.",
			"alloc counts are runtime.Mallocs deltas for one run of each engine; alloc_ratio = map_allocs / arena_allocs.",
			"both engines produce identical clusterings on every row (verified before timing); the engine oracle test enforces byte-identical output across configurations.",
		},
	}
	for _, n := range ns {
		k := n / 100
		if k < 2 {
			k = 2
		}
		d := synth.Basket(synth.BasketConfig{
			Transactions:    n,
			Clusters:        k,
			TemplateItems:   15,
			TransactionSize: 12,
			Seed:            opts.Seed + int64(n),
		})
		nb := similarity.ComputeIndexed(d.Trans, theta, similarity.Options{})
		lt := linkage.Build(nb, linkage.Options{})
		f := core.MarketBasketF(theta)

		mc, mm := core.BenchAgglomerateMap(n, lt, k, f)
		ac, am := core.BenchAgglomerateArena(n, lt, k, f)
		if mc != ac || mm != am {
			return fmt.Errorf("expt: engines disagree at n=%d (map %d/%d, arena %d/%d) — refusing to record timings", n, mc, mm, ac, am)
		}

		row := MergeBenchRow{
			N: n, K: k, Theta: theta,
			LinkPairs: lt.Pairs(),
			Merges:    am, Clusters: ac,
			MapSec:      bestOf(3, func() { core.BenchAgglomerateMap(n, lt, k, f) }),
			ArenaSec:    bestOf(3, func() { core.BenchAgglomerateArena(n, lt, k, f) }),
			MapAllocs:   mallocsOf(func() { core.BenchAgglomerateMap(n, lt, k, f) }),
			ArenaAllocs: mallocsOf(func() { core.BenchAgglomerateArena(n, lt, k, f) }),
		}
		row.Speedup = row.MapSec / row.ArenaSec
		if row.ArenaAllocs > 0 {
			row.AllocRatio = float64(row.MapAllocs) / float64(row.ArenaAllocs)
		}
		report.Rows = append(report.Rows, row)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("expt: encoding merge bench report: %w", err)
	}
	return nil
}

// mallocsOf counts heap allocations performed by one call of f.
func mallocsOf(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}
