package expt

import (
	"fmt"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/metrics"
	"github.com/rockclust/rock/internal/synth"
)

// runE7 probes the random-sampling + labeling pipeline: clustering error
// over the full Mushroom dataset as the clustered sample shrinks. The
// paper's account: quality degrades gracefully until the sample is too
// small to hit every sizeable cluster (the Chernoff bound), below which
// whole clusters go missing.
func runE7(opts Options) (*Report, error) {
	d := synth.Mushroom(synth.MushroomConfig{Seed: opts.Seed + 7})
	sizes := []int{500, 1000, 1500, 2000, 3000}
	if opts.Quick {
		sizes = []int{300, 600}
	}
	s := Series{Name: "clustering error e"}
	kSeries := Series{Name: "clusters found"}
	var lastStats core.Stats
	for _, n := range sizes {
		cfg := core.Config{
			Theta:        0.8,
			K:            20,
			SampleSize:   n,
			MinNeighbors: 1,
			Seed:         opts.Seed + 11,
		}
		res, err := core.Cluster(d.Trans, cfg)
		if err != nil {
			return nil, err
		}
		ev := metrics.Evaluate(res.Assign, d.Labels)
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, ev.Error)
		kSeries.X = append(kSeries.X, float64(n))
		kSeries.Y = append(kSeries.Y, float64(res.K()))
		lastStats = res.Stats
	}
	// Chernoff bound: sample needed to catch half of a 48-record species
	// (the engineered mixed family's poisonous side) with 99% confidence.
	bound := core.ChernoffSampleSize(d.Len(), 48, 0.5, 0.01)
	return &Report{
		Series: []Series{s, kSeries},
		Notes: []string{
			fmt.Sprintf("Chernoff bound: catching f=0.5 of a 48-record species w.p. 0.99 needs a sample of %d of %d.", bound, d.Len()),
			fmt.Sprintf("largest sample (%d): %s", sizes[len(sizes)-1], linkStatsNote(lastStats)),
			"paper shape: error stays low and flat for samples past the bound; small samples miss small species entirely (fewer clusters found).",
		},
	}, nil
}
