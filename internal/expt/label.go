package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/synth"
)

// LabelBenchRow is one point of the labeling sweep: the serial pairwise
// reference, the indexed labeler, and the indexed labeler sharded across
// workers, all assigning the same candidates against the same L_i sets.
type LabelBenchRow struct {
	N          int     `json:"n"`
	Sampled    int     `json:"sampled"`
	Candidates int     `json:"candidates"`
	Sets       int     `json:"sets"`
	SetPoints  int     `json:"set_points"` // Σ|L_i|
	Theta      float64 `json:"theta"`
	Labeled    int     `json:"labeled"`
	Unlabeled  int     `json:"unlabeled"`
	// Timing: best of 3 runs over prebuilt sets, so only the labeling
	// phase is measured.
	PairwiseSec float64 `json:"pairwise_sec"`
	IndexedSec  float64 `json:"indexed_sec"`
	Speedup     float64 `json:"speedup"` // pairwise_sec / indexed_sec
	// The sharded labeler at each worker count, against the serial
	// indexed labeler as baseline.
	Parallel []LabelParallelPoint `json:"parallel"`
}

// LabelParallelPoint is the sharded labeler's timing at one worker count.
type LabelParallelPoint struct {
	Workers int     `json:"workers"`
	Sec     float64 `json:"sec"`
	Speedup float64 `json:"speedup"` // indexed_sec / sec
}

// LabelBenchReport is the BENCH_label.json payload.
type LabelBenchReport struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numcpu"`
	Quick      bool            `json:"quick"`
	Rows       []LabelBenchRow `json:"rows"`
	Notes      []string        `json:"notes"`
}

// labelFixtureTheta is the θ the labeling workload is built and timed at.
const labelFixtureTheta = 0.6

// LabelFixture builds the standard labeling workload shared by the
// rockbench -label sweep and the BenchmarkLabel* micro-benchmarks: a
// basket dataset of n transactions whose every 5th transaction forms the
// sample (the generator orders by cluster template, so a prefix would
// miss most clusters), clustered with full ROCK at θ=0.6; L_i sets take
// every 4th member of each cluster capped at 50 — the shape the default
// LabelFraction/MaxLabelPoints would draw — mapped back to
// dataset-global indices; the remaining points are the candidates.
func LabelFixture(n int, seed int64) (ts []dataset.Transaction, candidates []int, sets [][]int, err error) {
	k := 10
	d := synth.Basket(synth.BasketConfig{
		Transactions:    n,
		Clusters:        k,
		TemplateItems:   15,
		TransactionSize: 12,
		Seed:            seed + int64(n),
	})
	var sampleIdx []int
	var sampleTrans []dataset.Transaction
	for i := 0; i < n; i += 5 {
		sampleIdx = append(sampleIdx, i)
		sampleTrans = append(sampleTrans, d.Trans[i])
	}
	res, err := core.Cluster(sampleTrans, core.Config{Theta: labelFixtureTheta, K: k, Seed: seed + 1})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("expt: clustering the label fixture sample: %w", err)
	}
	sets = make([][]int, 0, len(res.Clusters))
	for _, members := range res.Clusters {
		var li []int
		for i := 0; i < len(members) && len(li) < 50; i += 4 {
			li = append(li, sampleIdx[members[i]])
		}
		sets = append(sets, li)
	}
	candidates = make([]int, 0, n-len(sampleIdx))
	for p := 0; p < n; p++ {
		if p%5 != 0 {
			candidates = append(candidates, p)
		}
	}
	return d.Trans, candidates, sets, nil
}

// BenchLabel times the serial pairwise reference labeler against the
// inverted-index labeler (serial and sharded) on the sampled basket
// workload and writes the result as JSON — the perf trajectory record
// behind `rockbench -label`. Assignment agreement across all three paths
// is re-verified on each dataset before timing (the label oracle test
// provides the byte-level guarantee; this is the belt to its suspenders).
func BenchLabel(w io.Writer, opts Options) error {
	ns := []int{5000, 12500, 25000}
	if opts.Quick {
		ns = []int{1000, 2500}
	}
	theta := labelFixtureTheta

	report := LabelBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      opts.Quick,
		Notes: []string{
			cpuNote(),
			"pairwise is the paper's labeling loop (every candidate against every labeled point); indexed counts intersections through an inverted index over the labeled points and decides the θ-test exactly from (|t∩q|, |t|, |q|).",
			"the sample is every 5th transaction, clustered with full ROCK; L_i sets take every 4th member of each cluster capped at 50, as Config.LabelFraction/MaxLabelPoints defaults would.",
			"times are best-of-3 seconds for the labeling phase alone over prebuilt sets on the basket workload; speedup = pairwise_sec / indexed_sec.",
			"parallel rows shard candidates across workers over the same index: speedup = indexed_sec / sec.",
			"parallel numbers only show scaling when GOMAXPROCS exceeds one — at GOMAXPROCS=1 the workers serialize and pay only the chunk-handoff overhead; rerun on a multi-core host to capture the curve.",
			"all three paths produce identical assignments on every row (verified before timing); the label oracle test enforces byte-identical pipeline output across measures and worker counts.",
		},
	}
	for _, n := range ns {
		ts, candidates, sets, err := LabelFixture(n, opts.Seed)
		if err != nil {
			return err
		}
		setPoints := 0
		for _, li := range sets {
			setPoints += len(li)
		}
		s := n - len(candidates)
		f := core.MarketBasketF(theta)

		ref := core.BenchLabelReference(ts, candidates, sets, theta, f)
		indexed := core.BenchLabelIndexed(ts, candidates, sets, theta, f)
		if !reflect.DeepEqual(ref, indexed) {
			return fmt.Errorf("expt: labelers disagree at n=%d — refusing to record timings", n)
		}

		row := LabelBenchRow{
			N: n, Sampled: s, Candidates: len(candidates),
			Sets: len(sets), SetPoints: setPoints, Theta: theta,
			PairwiseSec: bestOf(3, func() { core.BenchLabelReference(ts, candidates, sets, theta, f) }),
			IndexedSec:  bestOf(3, func() { core.BenchLabelIndexed(ts, candidates, sets, theta, f) }),
		}
		for _, a := range ref {
			if a >= 0 {
				row.Labeled++
			} else {
				row.Unlabeled++
			}
		}
		row.Speedup = row.PairwiseSec / row.IndexedSec
		for _, workers := range []int{1, 2, 4} {
			wk := workers
			par := core.BenchLabelParallel(ts, candidates, sets, theta, f, wk)
			if !reflect.DeepEqual(ref, par) {
				return fmt.Errorf("expt: sharded labeler disagrees at n=%d workers=%d — refusing to record timings", n, wk)
			}
			sec := bestOf(3, func() { core.BenchLabelParallel(ts, candidates, sets, theta, f, wk) })
			row.Parallel = append(row.Parallel, LabelParallelPoint{
				Workers: wk, Sec: sec, Speedup: row.IndexedSec / sec,
			})
		}
		report.Rows = append(report.Rows, row)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("expt: encoding label bench report: %w", err)
	}
	return nil
}
