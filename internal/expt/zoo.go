package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/metrics"
	"github.com/rockclust/rock/internal/synth"
	"github.com/rockclust/rock/internal/zoo"
)

// ZooBenchRow is one engine on one dataset in the algorithm-zoo
// shootout: quality (purity/NMI/ARI against ground truth) bought at a
// measured wall-clock price.
type ZooBenchRow struct {
	Dataset string  `json:"dataset"`
	Engine  string  `json:"engine"`
	N       int     `json:"n"`
	K       int     `json:"k"`       // target cluster count handed to the engine
	KFound  int     `json:"k_found"` // clusters actually produced
	Purity  float64 `json:"purity"`
	NMI     float64 `json:"nmi"`
	ARI     float64 `json:"ari"`
	Sec     float64 `json:"sec"`
	Iters   int     `json:"iters,omitempty"`
	Cost    float64 `json:"cost,omitempty"` // the engine's own objective; scales differ
	Err     string  `json:"err,omitempty"`
}

// ZooBenchReport is the BENCH_zoo.json payload.
type ZooBenchReport struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numcpu"`
	Quick      bool          `json:"quick"`
	Rows       []ZooBenchRow `json:"rows"`
	Notes      []string      `json:"notes"`
}

// zooWorkload is one labeled dataset of the shootout, with the target K
// and the per-dataset ROCK theta (the same values the E-experiments use
// for these generators).
type zooWorkload struct {
	name  string
	d     *dataset.Dataset
	k     int
	theta float64
}

// zooWorkloads builds the shootout datasets: the planted-label
// generator, the votes stand-in, and a mushroom prefix — two synthetic
// regimes plus the paper's two quality datasets' stand-ins.
func zooWorkloads(opts Options) []zooWorkload {
	labeledN, mushroomN := 2000, 2000
	if opts.Quick {
		labeledN, mushroomN = 400, 400
	}
	labeled := synth.Labeled(synth.LabeledConfig{
		Records: labeledN, Classes: 4, Attributes: 10, Alphabet: 5, Noise: 0.1, Seed: opts.Seed + 1,
	})
	votes := synth.Votes(synth.VotesConfig{Seed: opts.Seed + 2})
	mushroom := subsetPrefix(synth.Mushroom(synth.MushroomConfig{Seed: opts.Seed + 3}), mushroomN)
	return []zooWorkload{
		{name: "labeled", d: labeled, k: 4, theta: 0.5},
		{name: "votes", d: votes, k: 2, theta: 0.73},
		{name: "mushroom", d: mushroom, k: synth.MushroomSpeciesCount(), theta: 0.8},
	}
}

// BenchZoo runs every registered zoo engine over the shootout workloads
// and writes purity/NMI/ARI-vs-wallclock rows as JSON: the record behind
// `rockbench -zoo`. ROCK runs through its zoo adapter with the
// per-dataset theta, so the comparison covers the exact contract the
// conformance suite enforces on all engines alike.
func BenchZoo(w io.Writer, opts Options) error {
	report := ZooBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      opts.Quick,
		Notes: []string{
			cpuNote(),
			"engines are the zoo registry defaults (coolcat, hierarchical, k-histograms, k-modes, rock, squeezer, stirr); every partition passed zoo.Check before scoring.",
			"rock runs with per-dataset theta (labeled 0.5, votes 0.73, mushroom 0.8 — the E-experiment settings); its outliers count as singleton clusters under the zoo contract.",
			"stirr and squeezer ignore k: stirr's sign read-out yields two clusters, squeezer's count follows its threshold (default 0.5).",
			"cost is each engine's own objective (mismatch for k-modes, entropy for coolcat, histogram distance for k-histograms) — comparable down a column, not across engines.",
			"timings are single-run wall clock for the whole Fit, including any sampling.",
		},
	}

	for _, wl := range zooWorkloads(opts) {
		for _, e := range zoo.Engines() {
			if e.Name() == "rock" {
				e = &zoo.ROCKEngine{Theta: wl.theta}
			}
			row := ZooBenchRow{Dataset: wl.name, Engine: e.Name(), N: wl.d.Len(), K: wl.k}
			var res *zoo.Result
			var err error
			row.Sec = timeIt(func() {
				res, err = e.Fit(wl.d, zoo.Config{K: wl.k, Seed: opts.Seed + 7})
			})
			if err == nil {
				err = zoo.Check(res, wl.d.Len())
			}
			if err != nil {
				row.Err = err.Error()
				report.Rows = append(report.Rows, row)
				continue
			}
			ev := metrics.Evaluate(res.Assign, wl.d.Labels)
			row.KFound = res.K()
			row.Purity = ev.Accuracy
			row.NMI = ev.NMI
			row.ARI = ev.ARI
			row.Iters = res.Stats.Iters
			row.Cost = res.Stats.Cost
			report.Rows = append(report.Rows, row)
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("expt: encoding zoo bench report: %w", err)
	}
	return nil
}
