package expt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/serve"
)

// ServeBenchRow is one point of the HTTP serving sweep: a fresh rockserve
// stack (coalescing batcher + hot-swappable model) under a fixed client
// concurrency, with client-side latency percentiles and server-side
// batching effectiveness.
type ServeBenchRow struct {
	N                 int     `json:"n"`
	QueryPool         int     `json:"query_pool"`
	Workers           int     `json:"workers"`
	Concurrency       int     `json:"concurrency"`
	Requests          int     `json:"requests"`
	QueriesPerRequest int     `json:"queries_per_request"`
	Sec               float64 `json:"sec"`
	RPS               float64 `json:"rps"`
	QPS               float64 `json:"qps"`
	// Client-side exact request latencies (not the server histogram).
	LatMeanMs float64 `json:"lat_mean_ms"`
	LatP50Ms  float64 `json:"lat_p50_ms"`
	LatP95Ms  float64 `json:"lat_p95_ms"`
	LatP99Ms  float64 `json:"lat_p99_ms"`
	// Server-side batching counters for the same run.
	Batches          int64   `json:"batches"`
	CoalescedBatches int64   `json:"coalesced_batches"`
	MeanBatch        float64 `json:"mean_batch"`
	MaxBatch         int64   `json:"max_batch"`
}

// ServeBenchReport is the BENCH_serve.json payload.
type ServeBenchReport struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numcpu"`
	Quick      bool            `json:"quick"`
	Rows       []ServeBenchRow `json:"rows"`
	Notes      []string        `json:"notes"`
}

// BenchServe drives concurrent assignment load against an in-process
// rockserve HTTP stack and writes latency percentiles, throughput, and
// batching effectiveness as JSON — the perf trajectory record behind
// `rockbench -serve`. The server is the real thing end to end: a TCP
// listener, the serve.Handler mux, JSON bodies, and the coalescing
// batcher; only the network is loopback. Response correctness against
// Model.AssignBatch is verified before any timing.
func BenchServe(w io.Writer, opts Options) error {
	n := 12500
	perClient := 100
	if opts.Quick {
		n = 2500
		perClient = 40
	}
	const queriesPerRequest = 8
	theta := labelFixtureTheta

	ts, candidates, sets, err := LabelFixture(n, opts.Seed)
	if err != nil {
		return err
	}
	model, err := core.FreezeSets(ts, sets, nil, theta, core.MarketBasketF(theta), nil)
	if err != nil {
		return fmt.Errorf("expt: freezing the serve fixture model: %w", err)
	}
	pool := make([]dataset.Transaction, 0, len(candidates))
	for _, p := range candidates {
		pool = append(pool, ts[p])
	}
	want := model.AssignBatch(pool, 1)

	report := ServeBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      opts.Quick,
		Notes: []string{
			cpuNote(),
			"each row is a fresh in-process rockserve stack (TCP loopback listener + serve.Handler) under `concurrency` client goroutines, each issuing `requests/concurrency` POST /assign calls of `queries_per_request` raw-id queries from the labeling workload's candidate pool.",
			"latency percentiles are exact client-side wall times per request (JSON encode → HTTP round trip → decode), not the server's bucketed histogram; throughput counts completed requests (rps) and queries (qps) over the whole run.",
			"batches/coalesced_batches/mean_batch/max_batch are the server's own counters for the run: how effectively concurrent requests shared AssignBatch flushes (MaxBatch 256, FlushEvery 1ms — the server defaults).",
			"every response was verified against Model.AssignBatch before timing; a mismatched response aborts the sweep.",
			"latency at higher concurrency includes queueing delay on a saturated host — compare rows at the same workers setting to see the coalescing win, and across workers for scaling (meaningful only when GOMAXPROCS exceeds one).",
		},
	}

	for _, workers := range []int{1, 2} {
		for _, concurrency := range []int{4, 16} {
			row, err := serveOnce(model, pool, want, workers, concurrency, perClient, queriesPerRequest)
			if err != nil {
				return err
			}
			row.N = n
			report.Rows = append(report.Rows, row)
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("expt: encoding serve bench report: %w", err)
	}
	return nil
}

// serveOnce runs one (workers, concurrency) cell: boots a fresh server on
// a loopback listener, fires the client fleet, and collapses the measured
// latencies into a row.
func serveOnce(model *core.Model, pool []dataset.Transaction, want []int, workers, concurrency, perClient, queriesPerRequest int) (ServeBenchRow, error) {
	srv := serve.New(model, serve.Config{Workers: workers})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServeBenchRow{}, fmt.Errorf("expt: serve bench listener: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String() + "/assign"

	// Pre-encode each client's request bodies so the timed loop measures
	// the serving stack, not the load generator building JSON.
	type call struct {
		body []byte
		want []int
	}
	clients := make([][]call, concurrency)
	next := 0
	for c := range clients {
		clients[c] = make([]call, perClient)
		for r := range clients[c] {
			ids := make([][]int32, queriesPerRequest)
			expect := make([]int, queriesPerRequest)
			for q := range ids {
				t := pool[next%len(pool)]
				expect[q] = want[next%len(pool)]
				next++
				row := make([]int32, len(t))
				for j, it := range t {
					row[j] = int32(it)
				}
				ids[q] = row
			}
			body, err := json.Marshal(serve.AssignRequest{IDs: ids})
			if err != nil {
				return ServeBenchRow{}, err
			}
			clients[c][r] = call{body: body, want: expect}
		}
	}

	latencies := make([][]float64, concurrency)
	errs := make([]error, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for c := range clients {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			latencies[c] = make([]float64, 0, perClient)
			for _, call := range clients[c] {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(call.body))
				if err != nil {
					errs[c] = err
					return
				}
				var out serve.AssignResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs[c] = err
					return
				}
				latencies[c] = append(latencies[c], time.Since(t0).Seconds())
				if !reflect.DeepEqual(out.Assignments, call.want) {
					errs[c] = fmt.Errorf("expt: served assignments disagree with Model.AssignBatch — refusing to record timings")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return ServeBenchRow{}, err
		}
	}

	var all []float64
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Float64s(all)
	mean := 0.0
	for _, l := range all {
		mean += l
	}
	mean /= float64(len(all))

	st := srv.Stats()
	requests := concurrency * perClient
	return ServeBenchRow{
		QueryPool:         len(pool),
		Workers:           workers,
		Concurrency:       concurrency,
		Requests:          requests,
		QueriesPerRequest: queriesPerRequest,
		Sec:               wall,
		RPS:               float64(requests) / wall,
		QPS:               float64(requests*queriesPerRequest) / wall,
		LatMeanMs:         mean * 1e3,
		LatP50Ms:          percentile(all, 0.50) * 1e3,
		LatP95Ms:          percentile(all, 0.95) * 1e3,
		LatP99Ms:          percentile(all, 0.99) * 1e3,
		Batches:           st.Batches,
		CoalescedBatches:  st.CoalescedBatches,
		MeanBatch:         st.MeanBatch,
		MaxBatch:          st.MaxBatch,
	}, nil
}

// percentile reads the q-th percentile from an ascending-sorted sample by
// nearest rank.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	if i > len(sorted)-1 {
		i = len(sorted) - 1
	}
	return sorted[i]
}
