package expt

import (
	"fmt"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/metrics"
	"github.com/rockclust/rock/internal/similarity"
	"github.com/rockclust/rock/internal/synth"
)

// runA6 compares the exact inverted-index neighbor phase against MinHash
// banded LSH on growing market-basket inputs: wall-clock time for the
// neighbor phase, edge recall, and end-to-end clustering quality. The
// expected shape: recall stays near 1 for θ above the band threshold,
// clustering quality is unchanged, and the LSH advantage grows with n.
func runA6(opts Options) (*Report, error) {
	ns := []int{2000, 4000, 8000}
	if opts.Quick {
		ns = []int{500, 1000}
	}
	// The workload includes a pool of universally popular "hub" items
	// (NoiseItems/NoiseRate): their posting lists grow linearly with n,
	// so the exact inverted index degrades toward O(n²) candidate pairs,
	// while MinHash signatures are insensitive to individual hub items.
	// This is the regime (realistic for market baskets) where LSH earns
	// its keep; on hub-free disjoint templates the exact index is already
	// near-optimal and LSH only adds signature cost.
	theta := 0.45
	lshOpts := func() similarity.LSHOptions {
		// Band threshold (1/32)^(1/3) ≈ 0.31 < θ.
		return similarity.LSHOptions{Hashes: 96, Bands: 32, Seed: opts.Seed + 1}
	}

	timeExact := Series{Name: "exact (s)"}
	timeRef := Series{Name: "lsh reference (s)"}
	timeLSH := Series{Name: "lsh pipeline (s)"}
	recall := Series{Name: "edge recall"}
	headers := []string{"n", "exact s", "ref s", "lsh s", "recall", "exact err", "lsh err"}
	var rows [][]string
	for _, n := range ns {
		d := synth.Basket(synth.BasketConfig{
			Transactions:    n,
			Clusters:        10,
			TemplateItems:   15,
			TransactionSize: 12,
			NoiseItems:      15,
			NoiseRate:       0.15,
			Seed:            opts.Seed + int64(n),
		})
		var exact, approx *similarity.Neighbors
		te := timeIt(func() { exact = similarity.ComputeIndexed(d.Trans, theta, similarity.Options{}) })
		tr := timeIt(func() { similarity.ComputeLSHReference(d.Trans, theta, lshOpts()) })
		tl := timeIt(func() { approx = similarity.ComputeLSH(d.Trans, theta, lshOpts()) })
		_, _, exactEdges := exact.Stats()
		_, _, lshEdges := approx.Stats()
		rec := 1.0
		if exactEdges > 0 {
			rec = float64(lshEdges) / float64(exactEdges)
		}
		timeExact.X = append(timeExact.X, float64(n))
		timeExact.Y = append(timeExact.Y, te)
		timeRef.X = append(timeRef.X, float64(n))
		timeRef.Y = append(timeRef.Y, tr)
		timeLSH.X = append(timeLSH.X, float64(n))
		timeLSH.Y = append(timeLSH.Y, tl)
		recall.X = append(recall.X, float64(n))
		recall.Y = append(recall.Y, rec)

		exactRes, err := core.Cluster(d.Trans, core.Config{Theta: theta, K: 10, Seed: 1})
		if err != nil {
			return nil, err
		}
		lshRes, err := core.Cluster(d.Trans, core.Config{Theta: theta, K: 10, Seed: 1,
			LSHNeighbors: true, LSHHashes: 96, LSHBands: 32})
		if err != nil {
			return nil, err
		}
		evE := metrics.Evaluate(exactRes.Assign, d.Labels)
		evL := metrics.Evaluate(lshRes.Assign, d.Labels)
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", te), fmt.Sprintf("%.3f", tr), fmt.Sprintf("%.3f", tl),
			fmt.Sprintf("%.4f", rec),
			fmt.Sprintf("%.4f", evE.Error), fmt.Sprintf("%.4f", evL.Error),
		})
	}
	return &Report{
		Tables: []string{FormatTable(headers, rows)},
		Series: []Series{timeExact, timeRef, timeLSH, recall},
		Notes: []string{
			"LSH: 96 hashes, 32 bands (candidate threshold ≈ 0.31 < θ = 0.45); candidates verified exactly, so no false-positive neighbors.",
			"columns: 'ref s' is the prototype map-based ComputeLSHReference, 'lsh s' the sort-based sharded pipeline (byte-identical neighbor lists, see TestLSHOracle).",
			"measured shape: recall ≈ 0.97 at identical clustering error. An earlier revision recorded an honest negative result here — the prototype LSH lost to the count-based exact index at every in-suite scale. The sort-based pipeline flips that verdict: it retires the per-band hash maps and per-point candidate sets that dominated the prototype's runtime, and overtakes the exact index once hub posting lists make the index superlinear (n ≳ 10⁵ — beyond this table; see BENCH_neighbors.json for the crossover and the 10⁶-point runs).",
		},
	}, nil
}
