package expt

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Options tune experiment execution.
type Options struct {
	// Quick shrinks dataset sizes and sweeps so the full suite runs in
	// seconds — used by tests; the defaults reproduce the paper-scale
	// runs.
	Quick bool
	Seed  int64
	// Long unlocks the million-point rows of the neighbor sweep
	// (BenchNeighbors): a 10⁶-point LSH neighbor run and a full chunked
	// clustering at that scale. Minutes of runtime; off by default.
	Long bool
}

// Report is the outcome of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []string // formatted text tables
	Series []Series // figure curves, if any
	Notes  []string // paper-shape commentary and measured summaries
}

// WriteTo renders the report as text.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t)
		b.WriteByte('\n')
	}
	if len(r.Series) > 0 {
		b.WriteString(FormatSeries(r.Series))
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// runner produces a report for one experiment id.
type runner func(Options) (*Report, error)

var registry = map[string]struct {
	title string
	run   runner
}{
	"E1": {"Traditional centroid hierarchical on Congressional Votes", runE1},
	"E2": {"ROCK on Congressional Votes (θ=0.56, k=2)", runE2},
	"E3": {"Traditional centroid hierarchical on Mushroom (sampled + labeled)", runE3},
	"E4": {"ROCK on Mushroom (θ=0.8, k=20, sample + label)", runE4},
	"E5": {"ROCK on the mutual-fund universe (θ=0.8)", runE5},
	"E6": {"Execution time vs sample size for θ ∈ {0.5,0.6,0.7,0.8}", runE6},
	"E7": {"Clustering error vs sample size (random sampling + labeling)", runE7},
	"E8": {"Motivating example: links vs similarity-only merging", runE8},
	"A1": {"Ablation: goodness normalization", runA1},
	"A2": {"Ablation: QROCK (neighbor components) vs full ROCK", runA2},
	"A3": {"Ablation: f(θ) exponent sensitivity", runA3},
	"A4": {"Ablation: outlier pruning and weeding", runA4},
	"A5": {"Extension: STIRR and the revised dynamical system vs ROCK", runA5},
	"A6": {"Extension: MinHash LSH neighbors vs exact index (time, recall, quality)", runA6},
}

// IDs lists the experiment ids in canonical order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the registered title for an experiment id.
func Title(id string) string { return registry[id].title }

// Run executes one experiment and writes its report.
func Run(id string, w io.Writer, opts Options) error {
	ent, ok := registry[id]
	if !ok {
		return fmt.Errorf("expt: unknown experiment %q (have %v)", id, IDs())
	}
	rep, err := ent.run(opts)
	if err != nil {
		return fmt.Errorf("expt: %s: %w", id, err)
	}
	rep.ID, rep.Title = id, ent.title
	_, err = rep.WriteTo(w)
	return err
}

// RunAll executes every experiment in canonical order.
func RunAll(w io.Writer, opts Options) error {
	for _, id := range IDs() {
		if err := Run(id, w, opts); err != nil {
			return err
		}
	}
	return nil
}
