package expt

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func TestIDsStableAndTitled(t *testing.T) {
	ids := IDs()
	if len(ids) != 14 {
		t.Fatalf("have %d experiments, want 14: %v", len(ids), ids)
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Fatalf("experiment %s has no title", id)
		}
	}
	// Canonical order: ablations then evaluation tables (lexicographic).
	if ids[0] != "A1" || ids[len(ids)-1] != "E8" {
		t.Fatalf("order = %v", ids)
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("E99", &buf, Options{Quick: true}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// Every experiment must run in Quick mode and emit a non-trivial report
// containing its id and at least one table or series.
func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := Run(id, &buf, Options{Quick: true, Seed: 1}); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "== "+id+":") {
				t.Fatalf("report missing header: %q", out[:min(80, len(out))])
			}
			if !strings.Contains(out, "---") {
				t.Fatal("report contains no table or series")
			}
			if !strings.Contains(out, "note:") {
				t.Fatal("report contains no notes")
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "long-header"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Aligned: all rows same width.
	w := len(lines[0])
	for _, l := range lines[1:] {
		if len(strings.TrimRight(l, " ")) > w {
			t.Fatalf("misaligned table:\n%s", out)
		}
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatal("missing separator row")
	}
}

func TestFormatSeries(t *testing.T) {
	s := []Series{
		{Name: "y1", X: []float64{1, 2}, Y: []float64{0.5, 1}},
		{Name: "y2", X: []float64{1, 2}, Y: []float64{3, 4}},
	}
	out := FormatSeries(s)
	if !strings.Contains(out, "y1") || !strings.Contains(out, "y2") {
		t.Fatalf("missing series names:\n%s", out)
	}
	if !strings.Contains(out, "0.5") || !strings.Contains(out, "4") {
		t.Fatalf("missing values:\n%s", out)
	}
	if FormatSeries(nil) != "" {
		t.Fatal("empty series should format to empty string")
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(3) != "3" {
		t.Fatalf("trimFloat(3) = %q", trimFloat(3))
	}
	if trimFloat(0.25) != "0.25" {
		t.Fatalf("trimFloat(0.25) = %q", trimFloat(0.25))
	}
}

func TestCompositionTable(t *testing.T) {
	labels := []string{"a", "a", "b", "b", "a"}
	assign := []int{0, 0, 1, 1, -1}
	out := compositionTable(labels, assign)
	if !strings.Contains(out, "outliers") {
		t.Fatalf("missing outliers row:\n%s", out)
	}
	if !strings.Contains(out, "cluster") || !strings.Contains(out, "size") {
		t.Fatalf("missing headers:\n%s", out)
	}
}

// The quality experiments must reproduce the paper's shape, not just run:
// ROCK beats the traditional baseline on votes, and the mushroom run
// yields uneven near-pure clusters while the baseline mixes classes.
func TestPaperShapesQuick(t *testing.T) {
	t.Run("votes", func(t *testing.T) {
		t.Parallel()
		rockRep, err := registry["E2"].run(Options{Quick: true, Seed: 0})
		if err != nil {
			t.Fatal(err)
		}
		tradRep, err := registry["E1"].run(Options{Quick: true, Seed: 0})
		if err != nil {
			t.Fatal(err)
		}
		re := extractError(t, rockRep)
		te := extractError(t, tradRep)
		if re >= te {
			t.Fatalf("ROCK error %.3f not below traditional %.3f", re, te)
		}
	})
	t.Run("mushroom", func(t *testing.T) {
		t.Parallel()
		rockRep, err := registry["E4"].run(Options{Quick: true, Seed: 0})
		if err != nil {
			t.Fatal(err)
		}
		tradRep, err := registry["E3"].run(Options{Quick: true, Seed: 0})
		if err != nil {
			t.Fatal(err)
		}
		re := extractError(t, rockRep)
		te := extractError(t, tradRep)
		if re > 0.1 {
			t.Fatalf("ROCK mushroom error %.3f too high", re)
		}
		if te < 2*re {
			t.Fatalf("traditional error %.3f not well above ROCK %.3f", te, re)
		}
	})
}

// extractError pulls "error e=0.1234" from a report's notes.
func extractError(t *testing.T, rep *Report) float64 {
	t.Helper()
	for _, n := range rep.Notes {
		i := strings.Index(n, "error e=")
		if i < 0 {
			continue
		}
		s := n[i+len("error e="):]
		end := 0
		for end < len(s) && (s[end] == '.' || (s[end] >= '0' && s[end] <= '9')) {
			end++
		}
		v, err := strconv.ParseFloat(s[:end], 64)
		if err != nil {
			t.Fatalf("unparseable error note %q: %v", n, err)
		}
		return v
	}
	t.Fatalf("no error note in %v", rep.Notes)
	return 0
}

func TestBenchNeighborsQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := BenchNeighbors(&buf, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	var rep NeighborBenchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Quick || rep.Long || len(rep.Rows) != 2 {
		t.Fatalf("unexpected report shape: quick=%v long=%v rows=%d", rep.Quick, rep.Long, len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.ExactSec <= 0 || row.RefSec <= 0 || row.LSHSec <= 0 {
			t.Fatalf("missing timing in row %+v", row)
		}
		if !row.RecallMeasured || row.Recall < 0.9 {
			t.Fatalf("row n=%d: recall %.4f (measured=%v), want measured ≥ 0.9", row.N, row.Recall, row.RecallMeasured)
		}
		if row.CandidatePairs < row.VerifiedEdges || row.VerifiedEdges <= 0 {
			t.Fatalf("implausible ledger in row %+v", row)
		}
	}
	if rep.Chunked != nil {
		t.Fatal("chunked row present without -long")
	}
}

func TestBenchZooQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := BenchZoo(&buf, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	var rep ZooBenchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	wantRows := 3 * 7 // three workloads, seven engines
	if !rep.Quick || len(rep.Rows) != wantRows {
		t.Fatalf("unexpected report shape: quick=%v rows=%d (want %d)", rep.Quick, len(rep.Rows), wantRows)
	}
	for _, row := range rep.Rows {
		if row.Err != "" {
			t.Fatalf("row %s/%s errored: %s", row.Dataset, row.Engine, row.Err)
		}
		if row.Sec < 0 || row.KFound < 1 || row.N < 1 {
			t.Fatalf("implausible row %+v", row)
		}
		if row.Purity < 1/float64(row.N) || row.Purity > 1 || row.NMI < 0 || row.NMI > 1+1e-9 {
			t.Fatalf("out-of-range metrics in row %+v", row)
		}
	}
	// The shootout must be a real contest: on the two-class votes
	// workload most engines clearly beat the 61.4% majority-class
	// baseline. (Not all — centroid-linkage hierarchical collapsing to
	// the majority there is the paper's own motivating failure.)
	winners := 0
	for _, row := range rep.Rows {
		if row.Dataset == "votes" && row.Purity >= 0.8 {
			winners++
		}
	}
	if winners < 4 {
		t.Fatalf("only %d engines beat purity 0.8 on votes — shootout implausibly weak", winners)
	}
}
