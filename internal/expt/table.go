// Package expt regenerates every table and figure of the paper's
// evaluation, plus the repo's own ablations, on the synthetic stand-in
// datasets. Each experiment is addressed by a stable id (E1..E8 for the
// paper's tables, A1..A6 for the ablations), produces a report with
// formatted tables and figure series, and is runnable through
// cmd/rockbench or the bench_test.go targets.
//
// Invariants: every experiment is deterministic under Options.Seed (the
// generators, sampling, and every engine are seed-driven); Options.Quick
// shrinks sweep sizes without changing their shape and is recorded in
// any emitted JSON. The two perf sweeps (BenchLinks → BENCH_links.json,
// BenchMerge → BENCH_merge.json) re-verify that the competing
// implementations agree on every row before recording timings, and
// stamp the GOMAXPROCS they were measured at — parallel columns are
// only meaningful when it exceeds one.
package expt

import (
	"fmt"
	"strings"
)

// FormatTable renders an aligned text table with a header row.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one curve of a figure: paired x/y values.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// FormatSeries renders figure series as aligned columns (x, then one
// column per series), assuming all series share the x grid of the first.
func FormatSeries(series []Series) string {
	if len(series) == 0 {
		return ""
	}
	headers := []string{"x"}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	var rows [][]string
	for i, x := range series[0].X {
		row := []string{trimFloat(x)}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, trimFloat(s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	return FormatTable(headers, rows)
}

// trimFloat prints a float compactly (integers without decimals).
func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
