package expt

import (
	"fmt"

	"github.com/rockclust/rock/internal/baseline"
	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/metrics"
	"github.com/rockclust/rock/internal/synth"
)

const mushroomTheta = 0.8

// runE3 is the traditional baseline on Mushroom: centroid hierarchical on
// a uniform sample with nearest-centroid labeling of the rest (the
// comparator cannot run at n=8124), k=20.
func runE3(opts Options) (*Report, error) {
	d := synth.Mushroom(synth.MushroomConfig{Seed: opts.Seed + 7})
	sampleN := 800
	if opts.Quick {
		sampleN = 250
	}
	sample := make([]int, sampleN)
	for i := range sample {
		sample[i] = i * d.Len() / sampleN // even spread over the interleaved records
	}
	res, err := baseline.HierarchicalSampled(d.Trans, sample, baseline.HierarchicalConfig{K: 20, Linkage: baseline.Centroid})
	if err != nil {
		return nil, err
	}
	ev := metrics.Evaluate(res.Assign, d.Labels)
	evSpecies := metrics.Evaluate(res.Assign, d.Names)
	return &Report{
		Tables: []string{compositionTable(d.Labels, res.Assign)},
		Notes: []string{
			evalNote(fmt.Sprintf("traditional centroid (k=20, sample %d + labeling)", sampleN), ev),
			fmt.Sprintf("against ground-truth species: ARI=%.4f NMI=%.4f", evSpecies.ARI, evSpecies.NMI),
			"paper shape: sizes comparatively uniform and most clusters mix edible with poisonous.",
		},
	}, nil
}

// runE4 is ROCK on Mushroom: θ=0.8, k=20, clustering a Chernoff-scale
// sample and labeling the remaining records — the paper's pipeline. The
// expected shape: ~21 clusters of wildly uneven size, all pure except the
// single cluster covering the engineered edible/poisonous family.
func runE4(opts Options) (*Report, error) {
	d := synth.Mushroom(synth.MushroomConfig{Seed: opts.Seed + 7})
	cfg := core.Config{
		Theta:        mushroomTheta,
		K:            20,
		SampleSize:   1800,
		MinNeighbors: 1,
		Seed:         opts.Seed + 1,
	}
	if opts.Quick {
		cfg.SampleSize = 600
	}
	res, err := core.Cluster(d.Trans, cfg)
	if err != nil {
		return nil, err
	}
	ev := metrics.Evaluate(res.Assign, d.Labels)
	mixed := 0
	for _, members := range res.Clusters {
		e, p := 0, 0
		for _, pt := range members {
			if d.Labels[pt] == "edible" {
				e++
			} else {
				p++
			}
		}
		if e > 0 && p > 0 {
			mixed++
		}
	}
	evSpecies := metrics.Evaluate(res.Assign, d.Names)
	return &Report{
		Tables: []string{compositionTable(d.Labels, res.Assign)},
		Notes: []string{
			evalNote(fmt.Sprintf("ROCK (θ=0.8, k=20, sample %d + labeling)", cfg.SampleSize), ev),
			fmt.Sprintf("against ground-truth species: ARI=%.4f NMI=%.4f", evSpecies.ARI, evSpecies.NMI),
			fmt.Sprintf("clusters found: %d (%d mixed, stopped-early=%v); %s",
				res.K(), mixed, res.Stats.StoppedEarly, linkStatsNote(res.Stats)),
			"paper shape: asked for 20, merging runs out of cross links at 21 clusters; sizes highly uneven; every cluster pure except one mixed edible/poisonous cluster.",
		},
	}, nil
}
