package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"time"

	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/metrics"
	"github.com/rockclust/rock/internal/stream"
)

// StreamBenchRow is one phase of the streaming-ingestion bench: sustained
// Ingest throughput through the full streamer (coalescing batcher, drift
// estimator, outlier parking) during one regime of the synthetic stream.
type StreamBenchRow struct {
	Workers      int     `json:"workers"`
	Mode         string  `json:"mode"`  // full | incremental refresh path
	Phase        string  `json:"phase"` // stable | drift | post-refresh
	Points       int     `json:"points"`
	Batches      int     `json:"batches"`
	Sec          float64 `json:"sec"`
	PointsPerSec float64 `json:"points_per_sec"`
	OutlierRate  float64 `json:"outlier_rate"` // drift estimate at phase end
	Generation   uint64  `json:"generation"`   // serving generation at phase end
}

// StreamBenchSummary is the refresh ledger for one (workers, mode)
// setting: what the drift detector and the background re-cluster + swap
// actually cost, and proof that no parked point was silently discarded.
type StreamBenchSummary struct {
	Workers              int     `json:"workers"`
	Mode                 string  `json:"mode"` // full | incremental
	Refreshes            int64   `json:"refreshes"`
	FailedRefreshes      int64   `json:"failed_refreshes"`
	IncrementalFallbacks int64   `json:"incremental_fallbacks"`
	DetectionDelayPoints int64   `json:"detection_delay_points"`
	RefreshInputPoints   int     `json:"refresh_input_points"`
	RefreshSec           float64 `json:"refresh_sec"`
	SwapPauseMs          float64 `json:"swap_pause_ms"`
	FinalGeneration      uint64  `json:"final_generation"`
	PostSwapAccuracy     float64 `json:"post_swap_accuracy"` // generator-label accuracy on fresh drifted probes
	DroppedOutliers      int64   `json:"dropped_outliers"`   // counted ring evictions (accounted, not silent)
	PointsLost           int64   `json:"points_lost"`        // ledger leak: parked points in NO bucket — must be 0
}

// StreamBenchReport is the BENCH_stream.json payload.
type StreamBenchReport struct {
	GOMAXPROCS int                  `json:"gomaxprocs"`
	NumCPU     int                  `json:"numcpu"`
	Quick      bool                 `json:"quick"`
	Rows       []StreamBenchRow     `json:"rows"`
	Summaries  []StreamBenchSummary `json:"summaries"`
	Notes      []string             `json:"notes"`
}

// streamRegime generates the bench's synthetic stream: market-basket
// transactions drawn from per-template item pools, templates disjoint,
// and two regimes (different base offsets) sharing no items — so a
// regime change makes every arriving point an outlier to the old model.
// Each point's generating template is its ground-truth label, so the
// bench can score post-swap admission accuracy against the generator.
type streamRegime struct {
	base, templates, width, size int
	rng                          *rand.Rand
}

func (g *streamRegime) batch(n int) []dataset.Transaction {
	ts, _ := g.batchLabeled(n)
	return ts
}

func (g *streamRegime) batchLabeled(n int) ([]dataset.Transaction, []string) {
	ts := make([]dataset.Transaction, n)
	labels := make([]string, n)
	for i := range ts {
		tpl := g.rng.Intn(g.templates)
		labels[i] = fmt.Sprintf("t%d", g.base+tpl)
		items := make([]dataset.Item, 0, g.size)
		for len(items) < g.size {
			items = append(items, dataset.Item(g.base+tpl*64+g.rng.Intn(g.width)))
		}
		ts[i] = dataset.NewTransaction(items...)
	}
	return ts, labels
}

// BenchStream drives the streaming ingestion loop through a regime
// change and writes sustained throughput per phase plus the refresh
// ledger (detection delay, re-cluster cost, swap pause, post-swap
// accuracy, outlier conservation) as JSON — the perf record behind
// `rockbench -stream`. Each workers setting runs TWICE, once per refresh
// mode: the full path re-clusters the retained reservoir plus the
// outlier ring from scratch; the incremental path seeds the re-cluster
// with the frozen model's labeled clusters and only adds the parked
// outliers. The streamer is the real thing end to end: the serve
// batcher, the drift estimator, the bounded buffers, and the background
// re-cluster + atomic swap; assignments of the first batch are verified
// against Model.AssignBatch before timing.
func BenchStream(w io.Writer, opts Options) error {
	const theta = 0.35
	stablePoints, postPoints := 50_000, 50_000
	retain := 4096
	if opts.Quick {
		stablePoints, postPoints = 5_000, 5_000
		retain = 1024
	}
	const batchSize = 256

	report := StreamBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      opts.Quick,
		Notes: []string{
			cpuNote(),
			"the stream is synthetic market baskets from disjoint per-template item pools; at the changepoint the generator switches to a second regime sharing no items with the first, so every arriving point is an outlier to the serving model until the refresh.",
			fmt.Sprintf("each phase ingests raw-id batches of %d points through Streamer.Ingest (serve batcher MaxBatch %d, so every batch size-flushes); points_per_sec is wall-clock sustained throughput including admission, parking, and drift accounting.", batchSize, batchSize),
			"the drift phase runs from the changepoint until the background refresh has completed and swapped — its throughput includes ingest concurrent with the re-cluster, i.e. the cost of refreshing while serving.",
			"mode=full re-clusters the retained reservoir + outlier ring from scratch; mode=incremental seeds the re-cluster with the frozen model's labeled clusters and adds only the parked outliers, so refresh_input_points and refresh_sec shrink with the reservoir out of the input.",
			"detection_delay_points counts stream points between the changepoint and the detector firing (EWMA window 512, threshold 0.5); swap_pause_ms is the serve-stack swap itself (generation store + old-generation drain), not the re-cluster, which runs in the background for refresh_sec.",
			"post_swap_accuracy scores fresh drifted probes through the live ingest path against the generator's template labels; points_lost is the outlier-conservation leak (parked points in no ledger bucket) and must be zero in both modes.",
			"the first batch's assignments were verified against Model.AssignBatch before any timing.",
		},
	}

	for _, workers := range []int{1, 4} {
		for _, mode := range []string{"full", "incremental"} {
			regA := &streamRegime{base: 0, templates: 4, width: 12, size: 8, rng: rand.New(rand.NewSource(opts.Seed + 11))}
			regB := &streamRegime{base: 100_000, templates: 4, width: 12, size: 8, rng: rand.New(rand.NewSource(opts.Seed + 13))}

			train := regA.batch(2000)
			ccfg := core.Config{Theta: theta, K: 4, Seed: opts.Seed + 1, Workers: workers}
			res, err := core.Cluster(train, ccfg)
			if err != nil {
				return fmt.Errorf("expt: stream bench warmup clustering: %w", err)
			}
			model, err := core.Freeze(train, res, ccfg)
			if err != nil {
				return fmt.Errorf("expt: stream bench freeze: %w", err)
			}

			st, err := stream.New(model, stream.Config{
				Cluster:       core.Config{Theta: theta, K: 8, Seed: opts.Seed + 2, Workers: workers},
				RetainSample:  retain,
				OutlierBuffer: retain,
				Incremental:   mode == "incremental",
				Seed:          opts.Seed + 3,
			})
			if err != nil {
				return fmt.Errorf("expt: stream bench streamer: %w", err)
			}

			// Verify the ingest path answers exactly as the model before timing.
			probe := regA.batch(batchSize)
			if got := st.Ingest(probe); !reflect.DeepEqual(got.Assignments, model.AssignBatch(probe, 1)) {
				return fmt.Errorf("expt: streamed assignments disagree with Model.AssignBatch — refusing to record timings")
			}

			phase := func(name string, gen *streamRegime, points int, until func() bool) StreamBenchRow {
				batches := 0
				start := time.Now()
				for fed := 0; fed < points || (until != nil && !until()); fed += batchSize {
					st.Ingest(gen.batch(batchSize))
					batches++
					if until != nil && batches*batchSize > 16_000_000 {
						break // refresh never completed; the summary will show it
					}
				}
				sec := time.Since(start).Seconds()
				s := st.Stats()
				return StreamBenchRow{
					Workers:      workers,
					Mode:         mode,
					Phase:        name,
					Points:       batches * batchSize,
					Batches:      batches,
					Sec:          sec,
					PointsPerSec: float64(batches*batchSize) / sec,
					OutlierRate:  s.OutlierRate,
					Generation:   s.Generation,
				}
			}

			report.Rows = append(report.Rows, phase("stable", regA, stablePoints, nil))
			changepoint := st.Stats().Seen

			report.Rows = append(report.Rows, phase("drift", regB, 0, func() bool {
				return st.Stats().Refreshes >= 1
			}))
			st.Quiesce()

			report.Rows = append(report.Rows, phase("post-refresh", regB, postPoints, nil))
			st.Quiesce()

			// Post-swap admission accuracy on fresh drifted probes,
			// scored against the generator's template labels.
			probeQs, probeLabels := regB.batchLabeled(2048)
			acc := metrics.Evaluate(st.Ingest(probeQs).Assignments, probeLabels).Accuracy
			st.Quiesce()

			s := st.Stats()
			report.Summaries = append(report.Summaries, StreamBenchSummary{
				Workers:              workers,
				Mode:                 mode,
				Refreshes:            s.Refreshes,
				FailedRefreshes:      s.FailedRefreshes,
				IncrementalFallbacks: s.IncrementalFallbacks,
				DetectionDelayPoints: s.LastTriggerSeen - changepoint,
				RefreshInputPoints:   s.LastRefreshPoints,
				RefreshSec:           s.LastRefreshSec,
				SwapPauseMs:          s.LastSwapPauseSec * 1e3,
				FinalGeneration:      s.Generation,
				PostSwapAccuracy:     acc,
				DroppedOutliers:      s.DroppedOutliers,
				PointsLost:           s.Outliers - (s.RefreshedOutliers + s.ReadmittedOutliers + int64(s.PendingOutliers) + s.DroppedOutliers),
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("expt: encoding stream bench report: %w", err)
	}
	return nil
}
