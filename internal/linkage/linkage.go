// Package linkage computes ROCK's link counts: link(p,q) is the number of
// common θ-neighbors of p and q. Links aggregate global information about
// the neighborhood graph — the paper's central insight is that merging by
// links is far more robust than merging by raw pairwise similarity.
//
// Three algorithms are provided. FromNeighbors is the paper's: for every
// point l, every pair of l's neighbors gains one link through l; expected
// cost O(Σ_i m_i²) for neighbor-list sizes m_i. FromNeighborsCSR shards
// that pair counting across workers, each owning contiguous rows and
// counting into dense scratch arrays. Dense recomputes every count as a
// bitset intersection popcount and serves as an independent oracle in
// tests and as a compact alternative for small dense samples.
//
// The production representation is Compact, a CSR (compressed sparse
// row) table with these invariants: rowStart is int64 and has length
// n+1, so tables index exactly past 2³¹ total entries; row i occupies
// cols/counts[rowStart[i]:rowStart[i+1]] with column indices strictly
// ascending (int32 — points per sample stay below 2³¹); the relation is
// symmetric (j in row i iff i in row j, equal counts) and irreflexive.
// Build picks the serial or sharded constructor by input size
// (Options.SerialBelow tunes the crossover); both produce bit-identical
// tables at every worker count, so the choice trades constants only.
package linkage

import (
	"github.com/rockclust/rock/internal/bitset"
	"github.com/rockclust/rock/internal/similarity"
)

// Table holds link counts as a symmetric sparse adjacency: Adj[i][j] is
// link(i,j) for every j with link(i,j) > 0.
type Table struct {
	Adj []map[int32]int32
}

// Len reports the number of points.
func (t *Table) Len() int { return len(t.Adj) }

// Get returns link(i,j); zero when the points share no neighbors.
func (t *Table) Get(i, j int) int { return int(t.Adj[i][int32(j)]) }

// Degree reports the number of points linked to i.
func (t *Table) Degree(i int) int { return len(t.Adj[i]) }

// Pairs reports the number of undirected pairs with a positive link count.
func (t *Table) Pairs() int {
	n := 0
	for _, m := range t.Adj {
		n += len(m)
	}
	return n / 2
}

// Equal reports whether two tables hold identical counts.
func (t *Table) Equal(u *Table) bool {
	if t.Len() != u.Len() {
		return false
	}
	for i := range t.Adj {
		if len(t.Adj[i]) != len(u.Adj[i]) {
			return false
		}
		for j, c := range t.Adj[i] {
			if u.Adj[i][j] != c {
				return false
			}
		}
	}
	return true
}

// FromNeighbors computes the link table by the paper's pair-counting
// algorithm: each point l contributes one link to every unordered pair of
// its neighbors.
func FromNeighbors(nb *similarity.Neighbors) *Table {
	n := nb.Len()
	t := &Table{Adj: make([]map[int32]int32, n)}
	for i := 0; i < n; i++ {
		t.Adj[i] = make(map[int32]int32)
	}
	for l := 0; l < n; l++ {
		list := nb.Lists[l]
		for a := 0; a < len(list); a++ {
			ia := list[a]
			for b := a + 1; b < len(list); b++ {
				ib := list[b]
				t.Adj[ia][ib]++
				t.Adj[ib][ia]++
			}
		}
	}
	return t
}

// Dense recomputes every link count as popcount(row(i) AND row(j)) over
// bitset neighbor rows. O(n²·n/64) time, O(n²/8) space: use only for
// modest n (tests, small samples).
func Dense(nb *similarity.Neighbors) *Table {
	n := nb.Len()
	rows := make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		rows[i] = bitset.New(n)
		for _, j := range nb.Lists[i] {
			rows[i].Set(int(j))
		}
	}
	t := &Table{Adj: make([]map[int32]int32, n)}
	for i := 0; i < n; i++ {
		t.Adj[i] = make(map[int32]int32)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c := rows[i].AndCount(rows[j]); c > 0 {
				t.Adj[i][int32(j)] = int32(c)
				t.Adj[j][int32(i)] = int32(c)
			}
		}
	}
	return t
}
