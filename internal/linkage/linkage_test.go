package linkage

import (
	"math/rand"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/similarity"
)

func tr(items ...dataset.Item) dataset.Transaction { return dataset.NewTransaction(items...) }

// The paper's worked example: transactions over items {1..5} from one
// cluster and {1,2,6,7} from another. With θ = 0.5 and Jaccard, size-3
// subsets of {1..5} sharing two items are neighbors.
func paperTransactions() []dataset.Transaction {
	return []dataset.Transaction{
		tr(1, 2, 3), tr(1, 2, 4), tr(1, 2, 5), tr(1, 3, 4), tr(1, 3, 5), // 0-4
		tr(1, 4, 5), tr(2, 3, 4), tr(2, 3, 5), tr(2, 4, 5), tr(3, 4, 5), // 5-9
		tr(1, 2, 6), tr(1, 2, 7), tr(1, 6, 7), tr(2, 6, 7), // 10-13
	}
}

func TestLinksByHand(t *testing.T) {
	ts := []dataset.Transaction{
		tr(1, 2, 3), // 0
		tr(1, 2, 4), // 1
		tr(1, 2, 5), // 2
		tr(8, 9),    // 3 isolated
	}
	nb := similarity.Compute(ts, 0.5, similarity.Options{})
	// 0,1,2 are mutual neighbors (pairwise sim 0.5); 3 has none.
	lt := FromNeighbors(nb)
	// link(0,1): common neighbors of 0 and 1 = {2} → 1.
	if got := lt.Get(0, 1); got != 1 {
		t.Fatalf("link(0,1) = %d, want 1", got)
	}
	if got := lt.Get(1, 2); got != 1 {
		t.Fatalf("link(1,2) = %d, want 1", got)
	}
	if got := lt.Get(0, 3); got != 0 {
		t.Fatalf("link(0,3) = %d, want 0", got)
	}
	if lt.Degree(3) != 0 {
		t.Fatalf("degree(3) = %d", lt.Degree(3))
	}
	if lt.Pairs() != 3 {
		t.Fatalf("pairs = %d, want 3", lt.Pairs())
	}
}

func TestSelfInclusionRaisesLinks(t *testing.T) {
	ts := []dataset.Transaction{tr(1, 2, 3), tr(1, 2, 4), tr(1, 2, 5)}
	lt := FromNeighbors(similarity.Compute(ts, 0.5, similarity.Options{}))
	ltSelf := FromNeighbors(similarity.Compute(ts, 0.5, similarity.Options{IncludeSelf: true}))
	// With self-inclusion, each mutually-neighboring pair gains 2 links
	// (each endpoint counts as a shared neighbor).
	if got, want := ltSelf.Get(0, 1), lt.Get(0, 1)+2; got != want {
		t.Fatalf("self-inclusive link(0,1) = %d, want %d", got, want)
	}
}

func TestPaperExampleLinksSeparateClusters(t *testing.T) {
	ts := paperTransactions()
	nb := similarity.Compute(ts, 0.5, similarity.Options{})
	lt := FromNeighbors(nb)
	// Cross-cluster pairs like ({1,2,3},{1,2,6}) have similarity 0.5 — they
	// are neighbors! — but share far fewer common neighbors than
	// within-cluster pairs. This is the paper's argument for links.
	within := lt.Get(0, 1)  // {1,2,3} vs {1,2,4}
	across := lt.Get(0, 10) // {1,2,3} vs {1,2,6}
	if across >= within {
		t.Fatalf("link across clusters (%d) not below link within (%d)", across, within)
	}
	if lt.Get(9, 13) != 0 {
		t.Fatalf("disconnected pair has links: %d", lt.Get(9, 13))
	}
}

func TestDenseMatchesFromNeighbors(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		n := 10 + r.Intn(80)
		ts := make([]dataset.Transaction, n)
		for i := range ts {
			items := make([]dataset.Item, 1+r.Intn(8))
			for k := range items {
				items[k] = dataset.Item(r.Intn(20))
			}
			ts[i] = dataset.NewTransaction(items...)
		}
		theta := []float64{0.2, 0.4, 0.6}[r.Intn(3)]
		includeSelf := r.Intn(2) == 0
		nb := similarity.ComputeIndexed(ts, theta, similarity.Options{IncludeSelf: includeSelf})
		a := FromNeighbors(nb)
		b := Dense(nb)
		if !a.Equal(b) {
			t.Fatalf("trial %d (n=%d θ=%g self=%v): algorithms disagree", trial, n, theta, includeSelf)
		}
	}
}

func TestLinkSymmetryAndBound(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	ts := make([]dataset.Transaction, 60)
	for i := range ts {
		items := make([]dataset.Item, 1+r.Intn(6))
		for k := range items {
			items[k] = dataset.Item(r.Intn(15))
		}
		ts[i] = dataset.NewTransaction(items...)
	}
	nb := similarity.Compute(ts, 0.3, similarity.Options{})
	lt := FromNeighbors(nb)
	for i := range ts {
		for j32, c := range lt.Adj[i] {
			j := int(j32)
			if lt.Get(j, i) != int(c) {
				t.Fatalf("asymmetric link(%d,%d)", i, j)
			}
			// link(i,j) = |nbr(i) ∩ nbr(j)| ≤ min degree.
			if int(c) > nb.Degree(i) || int(c) > nb.Degree(j) {
				t.Fatalf("link(%d,%d)=%d exceeds degrees %d,%d", i, j, c, nb.Degree(i), nb.Degree(j))
			}
		}
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := &Table{Adj: []map[int32]int32{{1: 2}, {0: 2}}}
	b := &Table{Adj: []map[int32]int32{{1: 2}, {0: 2}}}
	if !a.Equal(b) {
		t.Fatal("identical tables not equal")
	}
	b.Adj[0][1] = 3
	if a.Equal(b) {
		t.Fatal("differing counts reported equal")
	}
	c := &Table{Adj: []map[int32]int32{{}}}
	if a.Equal(c) {
		t.Fatal("differing sizes reported equal")
	}
}
