package linkage

import (
	"slices"
	"sort"
)

// Compact is a read-only CSR (compressed sparse row) link table: one
// sorted adjacency array per point plus parallel counts. It holds the
// same information as Table in a fraction of the memory and with
// cache-friendly iteration, and is the representation the agglomeration
// engine consumes — built directly by the sharded parallel builder
// (FromNeighborsCSR) or converted from a map-based Table (CompactFrom);
// Build picks between the two by input size.
type Compact struct {
	rowStart []int32 // len n+1; row i occupies [rowStart[i], rowStart[i+1])
	cols     []int32
	counts   []int32
}

// CompactFrom converts a Table into its CSR form.
func CompactFrom(t *Table) *Compact {
	n := t.Len()
	c := &Compact{rowStart: make([]int32, n+1)}
	total := 0
	for i := 0; i < n; i++ {
		total += len(t.Adj[i])
	}
	c.cols = make([]int32, 0, total)
	c.counts = make([]int32, 0, total)
	for i := 0; i < n; i++ {
		c.rowStart[i] = int32(len(c.cols))
		row := make([]int32, 0, len(t.Adj[i]))
		for j := range t.Adj[i] {
			row = append(row, j)
		}
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		for _, j := range row {
			c.cols = append(c.cols, j)
			c.counts = append(c.counts, t.Adj[i][j])
		}
	}
	c.rowStart[n] = int32(len(c.cols))
	return c
}

// Len reports the number of points.
func (c *Compact) Len() int { return len(c.rowStart) - 1 }

// Get returns link(i,j) by binary search over row i.
func (c *Compact) Get(i, j int) int {
	lo, hi := c.rowStart[i], c.rowStart[i+1]
	target := int32(j)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case c.cols[mid] < target:
			lo = mid + 1
		case c.cols[mid] > target:
			hi = mid
		default:
			return int(c.counts[mid])
		}
	}
	return 0
}

// Degree reports the number of points linked to i.
func (c *Compact) Degree(i int) int { return int(c.rowStart[i+1] - c.rowStart[i]) }

// Pairs reports the number of undirected positive-link pairs.
func (c *Compact) Pairs() int { return len(c.cols) / 2 }

// Equal reports whether two CSR tables hold identical structure and
// counts.
func (c *Compact) Equal(d *Compact) bool {
	return slices.Equal(c.rowStart, d.rowStart) &&
		slices.Equal(c.cols, d.cols) &&
		slices.Equal(c.counts, d.counts)
}

// Row iterates row i in ascending column order.
func (c *Compact) Row(i int, fn func(j, count int)) {
	for p := c.rowStart[i]; p < c.rowStart[i+1]; p++ {
		fn(int(c.cols[p]), int(c.counts[p]))
	}
}
