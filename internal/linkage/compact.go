package linkage

import (
	"slices"
	"sort"
)

// Compact is a read-only CSR (compressed sparse row) link table: one
// sorted adjacency array per point plus parallel counts. It holds the
// same information as Table in a fraction of the memory and with
// cache-friendly iteration, and is the representation the agglomeration
// engine consumes — built directly by the sharded parallel builder
// (FromNeighborsCSR) or converted from a map-based Table (CompactFrom);
// Build picks between the two by input size.
type Compact struct {
	// rowStart is int64 so the total-entry ceiling is the address space,
	// not 2^31: at ~100k dense points the link table already brushes
	// against int32 offsets. Columns stay int32 — they index points, and
	// point counts beyond 2^31 are out of scope.
	rowStart []int64 // len n+1; row i occupies [rowStart[i], rowStart[i+1])
	cols     []int32
	counts   []int32
}

// CompactFrom converts a Table into its CSR form.
func CompactFrom(t *Table) *Compact {
	n := t.Len()
	lens := make([]int32, n)
	total := 0
	for i := 0; i < n; i++ {
		lens[i] = int32(len(t.Adj[i]))
		total += len(t.Adj[i])
	}
	c := &Compact{rowStart: rowStartFromLengths(lens)}
	c.cols = make([]int32, 0, total)
	c.counts = make([]int32, 0, total)
	for i := 0; i < n; i++ {
		row := make([]int32, 0, len(t.Adj[i]))
		for j := range t.Adj[i] {
			row = append(row, j)
		}
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		for _, j := range row {
			c.cols = append(c.cols, j)
			c.counts = append(c.counts, t.Adj[i][j])
		}
	}
	return c
}

// rowStartFromLengths prefix-sums per-row entry counts into the CSR
// row-start array. The accumulation is int64 throughout, so tables whose
// total entry count exceeds 2^31 index exactly; both builders and the
// boundary test share this path.
func rowStartFromLengths(lens []int32) []int64 {
	rs := make([]int64, len(lens)+1)
	for i, l := range lens {
		rs[i+1] = rs[i] + int64(l)
	}
	return rs
}

// Len reports the number of points.
func (c *Compact) Len() int { return len(c.rowStart) - 1 }

// Get returns link(i,j) by binary search over row i.
func (c *Compact) Get(i, j int) int {
	lo, hi := c.rowStart[i], c.rowStart[i+1]
	target := int32(j)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case c.cols[mid] < target:
			lo = mid + 1
		case c.cols[mid] > target:
			hi = mid
		default:
			return int(c.counts[mid])
		}
	}
	return 0
}

// Degree reports the number of points linked to i.
func (c *Compact) Degree(i int) int { return int(c.rowStart[i+1] - c.rowStart[i]) }

// Entries reports the total number of directed link entries — the length
// of the cols/counts arrays.
func (c *Compact) Entries() int { return len(c.cols) }

// Pairs reports the number of undirected positive-link pairs.
func (c *Compact) Pairs() int { return len(c.cols) / 2 }

// Equal reports whether two CSR tables hold identical structure and
// counts.
func (c *Compact) Equal(d *Compact) bool {
	return slices.Equal(c.rowStart, d.rowStart) &&
		slices.Equal(c.cols, d.cols) &&
		slices.Equal(c.counts, d.counts)
}

// Row iterates row i in ascending column order.
func (c *Compact) Row(i int, fn func(j, count int)) {
	for p := c.rowStart[i]; p < c.rowStart[i+1]; p++ {
		fn(int(c.cols[p]), int(c.counts[p]))
	}
}
