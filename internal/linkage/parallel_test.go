package linkage

import (
	"math/rand"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/similarity"
)

// randomTransactions draws n transactions of 1..maxItems items over a
// vocabulary of vocab ids.
func randomTransactions(r *rand.Rand, n, maxItems, vocab int) []dataset.Transaction {
	ts := make([]dataset.Transaction, n)
	for i := range ts {
		items := make([]dataset.Item, 1+r.Intn(maxItems))
		for k := range items {
			items[k] = dataset.Item(r.Intn(vocab))
		}
		ts[i] = dataset.NewTransaction(items...)
	}
	return ts
}

// The parallel sharded CSR builder must agree bit for bit with both
// reference algorithms — the paper's serial pair counting and the dense
// bitset-intersection oracle — across randomized workloads varying n, θ,
// measure, self-inclusion and worker count. Run under -race this also
// exercises the builder's sharding for data races.
func TestParallelCSRMatchesOracles(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	measures := []struct {
		name string
		m    similarity.Measure
	}{
		{"jaccard", nil}, // nil selects the fast-path Jaccard
		{"dice", similarity.Dice},
		{"cosine", similarity.Cosine},
		{"overlap", similarity.Overlap},
	}
	thetas := []float64{0.1, 0.3, 0.5, 0.7}
	workerCounts := []int{1, 2, 3, 8}

	for trial := 0; trial < 40; trial++ {
		n := r.Intn(160)
		ts := randomTransactions(r, n, 8, 24)
		theta := thetas[r.Intn(len(thetas))]
		me := measures[r.Intn(len(measures))]
		includeSelf := r.Intn(2) == 0
		opts := similarity.Options{Measure: me.m, IncludeSelf: includeSelf}
		var nb *similarity.Neighbors
		if me.m == nil {
			nb = similarity.ComputeIndexed(ts, theta, opts)
		} else {
			nb = similarity.Compute(ts, theta, opts)
		}

		serial := CompactFrom(FromNeighbors(nb))
		dense := CompactFrom(Dense(nb))
		if !serial.Equal(dense) {
			t.Fatalf("trial %d (n=%d θ=%g %s self=%v): reference algorithms disagree",
				trial, n, theta, me.name, includeSelf)
		}
		for _, w := range workerCounts {
			par := FromNeighborsCSR(nb, w)
			if !par.Equal(serial) {
				t.Fatalf("trial %d (n=%d θ=%g %s self=%v workers=%d): parallel CSR differs from serial",
					trial, n, theta, me.name, includeSelf, w)
			}
			if !par.Equal(dense) {
				t.Fatalf("trial %d (n=%d θ=%g %s self=%v workers=%d): parallel CSR differs from dense oracle",
					trial, n, theta, me.name, includeSelf, w)
			}
		}
	}
}

// Above the crossover the builder spans many shards; the table must be
// identical for every worker count, including counts far above the shard
// count.
func TestParallelCSRWorkerInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ts := randomTransactions(r, 1200, 10, 40)
	nb := similarity.ComputeIndexed(ts, 0.4, similarity.Options{})
	want := FromNeighborsCSR(nb, 1)
	if !want.Equal(CompactFrom(FromNeighbors(nb))) {
		t.Fatal("single-worker CSR differs from serial reference")
	}
	for _, w := range []int{2, 3, 4, 16, 64} {
		if got := FromNeighborsCSR(nb, w); !got.Equal(want) {
			t.Fatalf("workers=%d produced a different table", w)
		}
	}
}

// Build's crossover heuristic must be invisible: both paths, forced
// either way, produce the same table the default dispatch does.
func TestBuildCrossoverEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 30, DefaultSerialBelow - 1, DefaultSerialBelow + 50} {
		ts := randomTransactions(r, n, 6, 20)
		nb := similarity.ComputeIndexed(ts, 0.3, similarity.Options{})
		def := Build(nb, Options{})
		serial := Build(nb, Options{SerialBelow: nb.Len() + 1})
		parallel := Build(nb, Options{SerialBelow: -1, Workers: 3})
		if !def.Equal(serial) || !def.Equal(parallel) {
			t.Fatalf("n=%d: crossover paths disagree", n)
		}
	}
}

// The transpose inside FromNeighborsCSR makes it exact even for
// asymmetric neighbor lists (which no built-in measure produces, but the
// pair-counting definition permits): it must match FromNeighbors, whose
// contract is pair counting, not the symmetric-only Dense oracle.
func TestParallelCSRAsymmetricLists(t *testing.T) {
	nb := &similarity.Neighbors{Lists: [][]int32{
		{1, 2, 3}, // 0's neighbors
		{2},       // 1 lists 2 but not 0
		{},        // 2 lists nobody
		{0, 1},    // 3
	}}
	want := CompactFrom(FromNeighbors(nb))
	for _, w := range []int{1, 2, 4} {
		if got := FromNeighborsCSR(nb, w); !got.Equal(want) {
			t.Fatalf("workers=%d: asymmetric lists mishandled", w)
		}
	}
}

// Paper example sanity directly through the parallel builder.
func TestParallelCSRPaperExample(t *testing.T) {
	ts := paperTransactions()
	nb := similarity.Compute(ts, 0.5, similarity.Options{})
	lt := FromNeighborsCSR(nb, 4)
	within := lt.Get(0, 1)
	across := lt.Get(0, 10)
	if across >= within {
		t.Fatalf("link across clusters (%d) not below link within (%d)", across, within)
	}
	if lt.Get(9, 13) != 0 {
		t.Fatalf("disconnected pair has links: %d", lt.Get(9, 13))
	}
}
