package linkage

import (
	"math/rand"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/similarity"
)

func TestCompactMatchesTable(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 20 + r.Intn(60)
		ts := make([]dataset.Transaction, n)
		for i := range ts {
			items := make([]dataset.Item, 2+r.Intn(6))
			for k := range items {
				items[k] = dataset.Item(r.Intn(18))
			}
			ts[i] = dataset.NewTransaction(items...)
		}
		nb := similarity.ComputeIndexed(ts, 0.3, similarity.Options{})
		tbl := FromNeighbors(nb)
		csr := CompactFrom(tbl)

		if csr.Len() != tbl.Len() || csr.Pairs() != tbl.Pairs() {
			t.Fatalf("shape mismatch: %d/%d pairs %d/%d", csr.Len(), tbl.Len(), csr.Pairs(), tbl.Pairs())
		}
		for i := 0; i < n; i++ {
			if csr.Degree(i) != tbl.Degree(i) {
				t.Fatalf("degree(%d): %d != %d", i, csr.Degree(i), tbl.Degree(i))
			}
			for j := 0; j < n; j++ {
				if csr.Get(i, j) != tbl.Get(i, j) {
					t.Fatalf("get(%d,%d): %d != %d", i, j, csr.Get(i, j), tbl.Get(i, j))
				}
			}
		}
		// Row iteration: ascending columns, counts match.
		for i := 0; i < n; i++ {
			last := -1
			csr.Row(i, func(j, count int) {
				if j <= last {
					t.Fatalf("row %d not ascending", i)
				}
				last = j
				if tbl.Get(i, j) != count {
					t.Fatalf("row %d col %d count %d != %d", i, j, count, tbl.Get(i, j))
				}
			})
		}
	}
}

func TestCompactEmpty(t *testing.T) {
	csr := CompactFrom(&Table{})
	if csr.Len() != 0 || csr.Pairs() != 0 {
		t.Fatal("empty compact wrong")
	}
}
