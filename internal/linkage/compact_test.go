package linkage

import (
	"math/rand"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/similarity"
)

func TestCompactMatchesTable(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 20 + r.Intn(60)
		ts := make([]dataset.Transaction, n)
		for i := range ts {
			items := make([]dataset.Item, 2+r.Intn(6))
			for k := range items {
				items[k] = dataset.Item(r.Intn(18))
			}
			ts[i] = dataset.NewTransaction(items...)
		}
		nb := similarity.ComputeIndexed(ts, 0.3, similarity.Options{})
		tbl := FromNeighbors(nb)
		csr := CompactFrom(tbl)

		if csr.Len() != tbl.Len() || csr.Pairs() != tbl.Pairs() {
			t.Fatalf("shape mismatch: %d/%d pairs %d/%d", csr.Len(), tbl.Len(), csr.Pairs(), tbl.Pairs())
		}
		for i := 0; i < n; i++ {
			if csr.Degree(i) != tbl.Degree(i) {
				t.Fatalf("degree(%d): %d != %d", i, csr.Degree(i), tbl.Degree(i))
			}
			for j := 0; j < n; j++ {
				if csr.Get(i, j) != tbl.Get(i, j) {
					t.Fatalf("get(%d,%d): %d != %d", i, j, csr.Get(i, j), tbl.Get(i, j))
				}
			}
		}
		// Row iteration: ascending columns, counts match.
		for i := 0; i < n; i++ {
			last := -1
			csr.Row(i, func(j, count int) {
				if j <= last {
					t.Fatalf("row %d not ascending", i)
				}
				last = j
				if tbl.Get(i, j) != count {
					t.Fatalf("row %d col %d count %d != %d", i, j, count, tbl.Get(i, j))
				}
			})
		}
	}
}

func TestCompactEmpty(t *testing.T) {
	csr := CompactFrom(&Table{})
	if csr.Len() != 0 || csr.Pairs() != 0 {
		t.Fatal("empty compact wrong")
	}
}

// TestRowStartPastInt32 drives the shared prefix-sum path with a
// synthetic degree profile whose total crosses the old int32 offset
// ceiling (~2.1B entries) without allocating the entries themselves: 24
// rows of 200M links total 4.8B. Offsets must stay exact and monotonic
// past 2^31, and Degree must read them back losslessly.
func TestRowStartPastInt32(t *testing.T) {
	const rows = 24
	const perRow = 200_000_000 // fits int32 per row; total does not
	lens := make([]int32, rows)
	for i := range lens {
		lens[i] = perRow
	}
	rs := rowStartFromLengths(lens)
	if len(rs) != rows+1 {
		t.Fatalf("rowStart length %d, want %d", len(rs), rows+1)
	}
	wantTotal := int64(rows) * perRow
	if rs[rows] != wantTotal {
		t.Fatalf("total = %d, want %d (int32 would wrap at %d)", rs[rows], wantTotal, int64(1)<<31)
	}
	if wantTotal <= int64(1)<<31 {
		t.Fatal("test profile no longer crosses the int32 boundary; enlarge it")
	}
	for i := 0; i < rows; i++ {
		if rs[i+1]-rs[i] != perRow {
			t.Fatalf("row %d length %d, want %d", i, rs[i+1]-rs[i], perRow)
		}
		if rs[i+1] <= rs[i] {
			t.Fatalf("rowStart not strictly increasing at %d", i)
		}
	}
	// Degree must be exact through a Compact carrying the int64 offsets.
	c := &Compact{rowStart: rs}
	for i := 0; i < rows; i++ {
		if c.Degree(i) != perRow {
			t.Fatalf("Degree(%d) = %d, want %d", i, c.Degree(i), perRow)
		}
	}
	if c.Len() != rows {
		t.Fatalf("Len = %d, want %d", c.Len(), rows)
	}
}

// TestRowStartUnevenProfile checks the prefix sum on a skewed synthetic
// degree profile (a few huge rows among many small ones) near the
// boundary, the shape a production-scale link table actually has.
func TestRowStartUnevenProfile(t *testing.T) {
	lens := make([]int32, 1000)
	for i := range lens {
		lens[i] = int32(i % 97)
	}
	lens[100] = 1 << 30
	lens[500] = 1 << 30
	lens[900] = 1 << 30
	rs := rowStartFromLengths(lens)
	var want int64
	for i, l := range lens {
		if rs[i] != want {
			t.Fatalf("rowStart[%d] = %d, want %d", i, rs[i], want)
		}
		want += int64(l)
	}
	if rs[len(lens)] != want || want <= int64(1)<<31 {
		t.Fatalf("total %d (want %d, and it must exceed 2^31)", rs[len(lens)], want)
	}
}
