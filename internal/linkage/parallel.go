package linkage

import (
	"runtime"
	"slices"
	"sync"

	"github.com/rockclust/rock/internal/similarity"
)

// Options configure Build.
type Options struct {
	// Workers bounds the number of goroutines used by the parallel
	// builder; 0 means GOMAXPROCS. Output is identical for every value.
	Workers int
	// SerialBelow overrides the crossover point: inputs with fewer rows
	// take the map-based reference path. 0 means DefaultSerialBelow;
	// negative forces the parallel builder for every size.
	SerialBelow int
}

// DefaultSerialBelow is the default crossover: below this many rows the
// sharding and transpose overheads of the parallel builder outweigh the
// O(Σ m_i²) counting work, so Build takes the map-based reference path.
// The paper-scale timing sweeps (E6, n ≥ 1000) all use the parallel path.
const DefaultSerialBelow = 768

// Build computes the link table of nb directly in CSR form — the
// representation the agglomeration engine consumes. Large inputs take
// FromNeighborsCSR, the sharded parallel builder; small inputs convert
// the map-based reference FromNeighbors, which has lower constant
// overhead. Both paths produce bit-identical tables.
func Build(nb *similarity.Neighbors, opts Options) *Compact {
	serialBelow := opts.SerialBelow
	if serialBelow == 0 {
		serialBelow = DefaultSerialBelow
	}
	if nb.Len() < serialBelow {
		return CompactFrom(FromNeighbors(nb))
	}
	return FromNeighborsCSR(nb, opts.Workers)
}

// FromNeighborsCSR computes link counts by sharded row-wise pair
// counting, assembling a CSR Compact directly with no intermediate maps.
//
// The identity it exploits: link(i,j) = |{l : i ∈ N(l) ∧ j ∈ N(l)}|, the
// pair-counting total of FromNeighbors regrouped by row. Each worker owns
// disjoint shards of contiguous rows; for row i it walks every list that
// contains i (via a precomputed transpose of the neighbor lists, so the
// result is exact even for asymmetric lists) and accumulates counts in a
// dense scratch array — array increments instead of map inserts, which is
// what makes this builder faster than FromNeighbors even at one worker.
// Per-shard outputs are concatenated in shard order, so the table is
// deterministic and independent of the worker count. Total work is the
// same O(Σ_l m_l²) as the serial algorithm, spread across workers.
func FromNeighborsCSR(nb *similarity.Neighbors, workers int) *Compact {
	n := nb.Len()
	if n == 0 {
		return &Compact{rowStart: make([]int64, 1)}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Transpose the neighbor relation: revCols[revStart[i]:revStart[i+1]]
	// lists every l with i ∈ N(l), ascending (rows are filled in l order).
	// For the symmetric built-in measures this equals N(i); building it
	// costs O(E) and keeps the builder exact for any list structure.
	revStart := make([]int32, n+1)
	for _, list := range nb.Lists {
		for _, j := range list {
			revStart[j+1]++
		}
	}
	for i := 0; i < n; i++ {
		revStart[i+1] += revStart[i]
	}
	revCols := make([]int32, revStart[n])
	pos := make([]int32, n)
	copy(pos, revStart[:n])
	for l, list := range nb.Lists {
		for _, j := range list {
			revCols[pos[j]] = int32(l)
			pos[j]++
		}
	}

	// Shards are contiguous row ranges; each worker drains the shard
	// channel, writing only its own rows — no synchronization on output.
	const shardRows = 128
	numShards := (n + shardRows - 1) / shardRows
	shardCols := make([][]int32, numShards)
	shardCounts := make([][]int32, numShards)
	rowLen := make([]int32, n)

	shards := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counts := make([]int32, n)
			touched := make([]int32, 0, 512)
			for s := range shards {
				lo := s * shardRows
				hi := lo + shardRows
				if hi > n {
					hi = n
				}
				var cols, cnts []int32
				for i := lo; i < hi; i++ {
					for _, l := range revCols[revStart[i]:revStart[i+1]] {
						for _, j := range nb.Lists[l] {
							if int(j) == i {
								continue
							}
							if counts[j] == 0 {
								touched = append(touched, j)
							}
							counts[j]++
						}
					}
					slices.Sort(touched)
					rowLen[i] = int32(len(touched))
					for _, j := range touched {
						cols = append(cols, j)
						cnts = append(cnts, counts[j])
						counts[j] = 0
					}
					touched = touched[:0]
				}
				shardCols[s] = cols
				shardCounts[s] = cnts
			}
		}()
	}
	for s := 0; s < numShards; s++ {
		shards <- s
	}
	close(shards)
	wg.Wait()

	// Assemble: prefix-sum the row lengths (in int64, so totals past 2^31
	// entries stay exact), then concatenate the shard arenas in shard
	// order — each arena already holds its rows in order.
	c := &Compact{rowStart: rowStartFromLengths(rowLen)}
	total := int(c.rowStart[n])
	c.cols = make([]int32, total)
	c.counts = make([]int32, total)
	off := 0
	for s := 0; s < numShards; s++ {
		copy(c.cols[off:], shardCols[s])
		off += copy(c.counts[off:], shardCounts[s])
	}
	return c
}
