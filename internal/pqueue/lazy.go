package pqueue

// Lazy is a lazy indexed max-heap over a fixed key space [0, n): the
// priority queue behind the arena agglomeration engine. Where Heap keeps
// one live position per key and moves it on every update (two map lookups
// plus a sift), Lazy never moves or deletes interior entries. Each Update
// bumps the key's version and pushes a fresh entry carrying that version;
// superseded entries stay in the array and are discarded when they
// surface at the top of a Pop. Invalidate bumps the version without
// pushing, which removes the key from the queue.
//
// Entries are ordered by priority descending, then by a caller-supplied
// tie-break id ascending. The id is captured in the entry at push time,
// so the comparator is a function of entry contents alone and the heap
// invariant survives keys whose external identity changes between pushes
// (the engine reuses arena slots but ties must break on logical cluster
// ids). Distinct live keys must carry distinct ids for pops to be fully
// deterministic.
//
// Seeding n keys costs O(n) via BulkSet + Fix instead of n sifts. Stale
// entries are garbage-collected wholesale whenever they outnumber live
// entries by more than 2:1, so the array stays within a constant factor
// of the live set and every operation is amortized O(log live).
type Lazy struct {
	entries []lazyEntry
	version []uint32
	present []bool // key has a live entry in the array
	live    int
}

type lazyEntry struct {
	prio float64
	id   int32 // tie-break identity, frozen at push time
	key  int32
	ver  uint32
}

// NewLazy returns an empty lazy heap over keys [0, n).
func NewLazy(n int) *Lazy {
	return &Lazy{version: make([]uint32, n), present: make([]bool, n)}
}

// Len reports the number of entries in the array, stale included —
// exposed for tests asserting the compaction bound.
func (h *Lazy) Len() int { return len(h.entries) }

// Live reports the number of keys with a current entry.
func (h *Lazy) Live() int { return h.live }

// BulkSet appends a live entry for key without restoring heap order; call
// Fix once after the last BulkSet. It must only be used to seed an empty
// heap, at most once per key.
func (h *Lazy) BulkSet(key int, id int32, prio float64) {
	h.entries = append(h.entries, lazyEntry{prio: prio, id: id, key: int32(key), ver: h.version[key]})
	h.present[key] = true
	h.live++
}

// BulkUpdate makes (id, prio) the key's current entry, superseding any
// previous one, without restoring heap order; call Fix once after the last
// BulkUpdate. It is the round-level analogue of Update: the batched merge
// engine repairs all entries touched by a round of merges with BulkUpdate
// and a single Fix instead of one sift per entry. Unlike BulkSet it is
// valid on a populated heap and may be applied to a key repeatedly.
func (h *Lazy) BulkUpdate(key int, id int32, prio float64) {
	h.version[key]++
	if !h.present[key] {
		h.present[key] = true
		h.live++
	}
	h.entries = append(h.entries, lazyEntry{prio: prio, id: id, key: int32(key), ver: h.version[key]})
}

// Fix restores heap order in O(len) — Floyd's heapify. When stale entries
// dominate (as after many BulkUpdate rounds) it compacts first, so the
// heapify runs over the live set plus a bounded stale fraction.
func (h *Lazy) Fix() {
	if h.overStale() {
		h.compact()
	}
	for i := len(h.entries)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// Update makes (id, prio) the key's current entry, superseding any
// previous one.
func (h *Lazy) Update(key int, id int32, prio float64) {
	h.version[key]++
	if !h.present[key] {
		h.present[key] = true
		h.live++
	}
	h.entries = append(h.entries, lazyEntry{prio: prio, id: id, key: int32(key), ver: h.version[key]})
	h.siftUp(len(h.entries) - 1)
	h.maybeCompact()
}

// Invalidate removes the key's current entry, if any, by superseding it
// with nothing.
func (h *Lazy) Invalidate(key int) {
	h.version[key]++
	if h.present[key] {
		h.present[key] = false
		h.live--
	}
}

// Pop removes and returns the live entry with maximal (priority, -id).
// Stale entries encountered at the top are discarded along the way.
func (h *Lazy) Pop() (key int, prio float64, ok bool) {
	for len(h.entries) > 0 {
		top := h.entries[0]
		h.removeTop()
		if top.ver != h.version[top.key] || !h.present[top.key] {
			continue // superseded or invalidated
		}
		h.present[top.key] = false
		h.live--
		return int(top.key), top.prio, true
	}
	return 0, 0, false
}

func (h *Lazy) removeTop() {
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	if last > 0 {
		h.siftDown(0)
	}
}

// overStale reports whether stale entries outnumber live ones by more
// than 2:1 — the array exceeding 3× the live count — which is the
// compaction threshold (small arrays are never worth compacting).
func (h *Lazy) overStale() bool {
	return len(h.entries) >= 64 && len(h.entries) > 3*h.live
}

// compact drops every superseded or invalidated entry in place. The
// caller must re-establish heap order (Fix) afterwards.
func (h *Lazy) compact() {
	kept := h.entries[:0]
	for _, e := range h.entries {
		if e.ver == h.version[e.key] && h.present[e.key] {
			kept = append(kept, e)
		}
	}
	h.entries = kept
}

// maybeCompact rebuilds the array from live entries when stale ones
// dominate, keeping memory and sift depth proportional to the live set.
func (h *Lazy) maybeCompact() {
	if h.overStale() {
		h.Fix()
	}
}

// less orders entries by priority descending, then id ascending; among
// entries for the same key, fresher versions first, making the layout —
// not just the pop sequence — deterministic.
func (h *Lazy) less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	if a.id != b.id {
		return a.id < b.id
	}
	return a.ver > b.ver
}

func (h *Lazy) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.entries[i], h.entries[parent] = h.entries[parent], h.entries[i]
		i = parent
	}
}

func (h *Lazy) siftDown(i int) {
	n := len(h.entries)
	for {
		best := i
		if l := 2*i + 1; l < n && h.less(l, best) {
			best = l
		}
		if r := 2*i + 2; r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.entries[i], h.entries[best] = h.entries[best], h.entries[i]
		i = best
	}
}
