package pqueue

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBasicOrder(t *testing.T) {
	h := New()
	h.Set(1, 0.5)
	h.Set(2, 0.9)
	h.Set(3, 0.1)
	if k, p, ok := h.Peek(); !ok || k != 2 || p != 0.9 {
		t.Fatalf("Peek = %d,%g,%v", k, p, ok)
	}
	var got []int
	for h.Len() > 0 {
		k, _, _ := h.Pop()
		got = append(got, k)
	}
	want := []int{2, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	if _, _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap reported ok")
	}
}

func TestTieBreaksOnSmallerKey(t *testing.T) {
	h := New()
	h.Set(9, 1.0)
	h.Set(4, 1.0)
	h.Set(7, 1.0)
	var got []int
	for h.Len() > 0 {
		k, _, _ := h.Pop()
		got = append(got, k)
	}
	if got[0] != 4 || got[1] != 7 || got[2] != 9 {
		t.Fatalf("tie order = %v, want [4 7 9]", got)
	}
}

func TestSetUpdates(t *testing.T) {
	h := New()
	h.Set(1, 0.1)
	h.Set(2, 0.2)
	h.Set(1, 0.9) // raise
	if k, _, _ := h.Peek(); k != 1 {
		t.Fatal("raise did not float key to top")
	}
	h.Set(1, 0.05) // lower
	if k, _, _ := h.Peek(); k != 2 {
		t.Fatal("lower did not sink key")
	}
	if p, ok := h.Priority(1); !ok || p != 0.05 {
		t.Fatalf("Priority(1) = %g,%v", p, ok)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d after updates, want 2", h.Len())
	}
}

func TestRemove(t *testing.T) {
	h := New()
	for i := 0; i < 10; i++ {
		h.Set(i, float64(i))
	}
	if !h.Remove(9) || h.Remove(9) {
		t.Fatal("Remove existence reporting wrong")
	}
	if !h.Remove(4) {
		t.Fatal("Remove(4) failed")
	}
	if h.Contains(4) || !h.Contains(3) {
		t.Fatal("Contains wrong after Remove")
	}
	var got []int
	for h.Len() > 0 {
		k, _, _ := h.Pop()
		got = append(got, k)
	}
	want := []int{8, 7, 6, 5, 3, 2, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// Exhaustive randomized comparison against a naive priority map.
func TestAgainstNaiveModel(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	h := New()
	model := map[int]float64{}
	naiveBest := func() (int, float64, bool) {
		best, bp, ok := 0, 0.0, false
		for k, p := range model {
			if !ok || p > bp || (p == bp && k < best) {
				best, bp, ok = k, p, true
			}
		}
		return best, bp, ok
	}
	for step := 0; step < 5000; step++ {
		switch op := r.Intn(4); op {
		case 0, 1: // set
			k := r.Intn(40)
			p := float64(r.Intn(20)) / 4 // coarse priorities force ties
			h.Set(k, p)
			model[k] = p
		case 2: // remove
			k := r.Intn(40)
			_, inModel := model[k]
			if got := h.Remove(k); got != inModel {
				t.Fatalf("step %d: Remove(%d) = %v, model %v", step, k, got, inModel)
			}
			delete(model, k)
		case 3: // pop
			mk, mp, mok := naiveBest()
			k, p, ok := h.Pop()
			if ok != mok || (ok && (k != mk || p != mp)) {
				t.Fatalf("step %d: Pop = %d,%g,%v; model %d,%g,%v", step, k, p, ok, mk, mp, mok)
			}
			delete(model, k)
		}
		if h.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model %d", step, h.Len(), len(model))
		}
	}
	// Drain and verify global sortedness.
	type entry struct {
		k int
		p float64
	}
	var drained []entry
	for h.Len() > 0 {
		k, p, _ := h.Pop()
		drained = append(drained, entry{k, p})
	}
	if !sort.SliceIsSorted(drained, func(i, j int) bool {
		if drained[i].p != drained[j].p {
			return drained[i].p > drained[j].p
		}
		return drained[i].k < drained[j].k
	}) {
		t.Fatal("drained sequence not in heap order")
	}
	if len(drained) != len(model) {
		t.Fatal("drain count mismatch")
	}
}

func TestKeys(t *testing.T) {
	h := New()
	h.Set(3, 1)
	h.Set(1, 2)
	ks := h.Keys()
	sort.Ints(ks)
	if len(ks) != 2 || ks[0] != 1 || ks[1] != 3 {
		t.Fatalf("Keys = %v", ks)
	}
	ks[0] = 99 // must not corrupt the heap
	if !h.Contains(1) {
		t.Fatal("Keys leaked internal storage")
	}
}
