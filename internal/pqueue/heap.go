// Package pqueue implements the two priority queues behind ROCK's merge
// engines.
//
// Heap is an eager indexed binary max-heap over integer keys: O(log n)
// insert, pop, and — crucially for the reference engine, which keeps one
// "local" heap per cluster and a "global" heap over clusters — O(log n)
// update and removal of arbitrary keys. Ties in priority break toward
// the smaller key, making heap-driven algorithms deterministic.
//
// Lazy is the version-stamped heap the arena engines use. Its contract:
// every key carries a version counter; Update (and BulkUpdate) bump the
// version and push a fresh entry stamped with it, never moving or
// deleting interior entries; Invalidate bumps the version without
// pushing. An entry is live iff its stamp equals its key's current
// version — superseded entries stay in the array and are discarded when
// they surface at a pop. Each entry freezes a caller-supplied tie-break
// id at push time, so ordering (priority desc, id asc) is a function of
// entry contents alone and survives keys whose external identity changes
// between pushes (arena slots are reused; ties must break on logical
// cluster ids — distinct live keys must carry distinct ids for fully
// deterministic pops). Seeding is O(n) via BulkSet + Fix; a round of
// batched repairs is BulkUpdate× + one Fix; stale entries are compacted
// away whenever they outnumber live ones by more than 2:1 (the array
// exceeding 3× the live count), keeping every operation amortized
// O(log live).
package pqueue

// Heap is an indexed max-heap. The zero value is not usable; call New.
type Heap struct {
	keys []int           // heap-ordered keys
	prio map[int]float64 // key -> priority
	pos  map[int]int     // key -> index in keys
}

// New returns an empty heap.
func New() *Heap {
	return &Heap{prio: make(map[int]float64), pos: make(map[int]int)}
}

// Len reports the number of keys in the heap.
func (h *Heap) Len() int { return len(h.keys) }

// Contains reports whether key is in the heap.
func (h *Heap) Contains(key int) bool {
	_, ok := h.pos[key]
	return ok
}

// Priority returns the priority of key, and whether it is present.
func (h *Heap) Priority(key int) (float64, bool) {
	p, ok := h.prio[key]
	return p, ok
}

// Set inserts key with the given priority, or updates its priority if it
// is already present.
func (h *Heap) Set(key int, prio float64) {
	if i, ok := h.pos[key]; ok {
		old := h.prio[key]
		h.prio[key] = prio
		switch {
		case h.better(prio, key, old, key):
			h.siftUp(i)
		default:
			h.siftDown(i)
		}
		return
	}
	h.prio[key] = prio
	h.pos[key] = len(h.keys)
	h.keys = append(h.keys, key)
	h.siftUp(len(h.keys) - 1)
}

// Remove deletes key from the heap, reporting whether it was present.
func (h *Heap) Remove(key int) bool {
	i, ok := h.pos[key]
	if !ok {
		return false
	}
	last := len(h.keys) - 1
	h.swap(i, last)
	h.keys = h.keys[:last]
	delete(h.pos, key)
	delete(h.prio, key)
	if i < last {
		h.siftDown(i)
		h.siftUp(i)
	}
	return true
}

// Peek returns the maximum-priority key without removing it.
func (h *Heap) Peek() (key int, prio float64, ok bool) {
	if len(h.keys) == 0 {
		return 0, 0, false
	}
	k := h.keys[0]
	return k, h.prio[k], true
}

// Pop removes and returns the maximum-priority key.
func (h *Heap) Pop() (key int, prio float64, ok bool) {
	key, prio, ok = h.Peek()
	if ok {
		h.Remove(key)
	}
	return key, prio, ok
}

// Keys returns the keys currently in the heap in unspecified order.
func (h *Heap) Keys() []int {
	out := make([]int, len(h.keys))
	copy(out, h.keys)
	return out
}

// better reports whether entry (pa, ka) sorts strictly above (pb, kb):
// higher priority first, then smaller key.
func (h *Heap) better(pa float64, ka int, pb float64, kb int) bool {
	if pa != pb {
		return pa > pb
	}
	return ka < kb
}

func (h *Heap) less(i, j int) bool {
	ki, kj := h.keys[i], h.keys[j]
	return h.better(h.prio[ki], ki, h.prio[kj], kj)
}

func (h *Heap) swap(i, j int) {
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.keys[i]] = i
	h.pos[h.keys[j]] = j
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) siftDown(i int) {
	n := len(h.keys)
	for {
		best := i
		if l := 2*i + 1; l < n && h.less(l, best) {
			best = l
		}
		if r := 2*i + 2; r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}
