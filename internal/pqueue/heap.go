// Package pqueue implements an indexed binary max-heap: a priority queue
// over integer keys supporting O(log n) insert, pop, and — crucially for
// ROCK's clustering phase — O(log n) update and removal of an arbitrary
// key. ROCK maintains one such "local" heap per cluster (ordered by merge
// goodness with every linked cluster) and one "global" heap over clusters
// (ordered by the goodness of each cluster's best local entry); merges
// update and delete interior entries constantly.
//
// Ties in priority break toward the smaller key, making heap-driven
// algorithms deterministic.
package pqueue

// Heap is an indexed max-heap. The zero value is not usable; call New.
type Heap struct {
	keys []int           // heap-ordered keys
	prio map[int]float64 // key -> priority
	pos  map[int]int     // key -> index in keys
}

// New returns an empty heap.
func New() *Heap {
	return &Heap{prio: make(map[int]float64), pos: make(map[int]int)}
}

// Len reports the number of keys in the heap.
func (h *Heap) Len() int { return len(h.keys) }

// Contains reports whether key is in the heap.
func (h *Heap) Contains(key int) bool {
	_, ok := h.pos[key]
	return ok
}

// Priority returns the priority of key, and whether it is present.
func (h *Heap) Priority(key int) (float64, bool) {
	p, ok := h.prio[key]
	return p, ok
}

// Set inserts key with the given priority, or updates its priority if it
// is already present.
func (h *Heap) Set(key int, prio float64) {
	if i, ok := h.pos[key]; ok {
		old := h.prio[key]
		h.prio[key] = prio
		switch {
		case h.better(prio, key, old, key):
			h.siftUp(i)
		default:
			h.siftDown(i)
		}
		return
	}
	h.prio[key] = prio
	h.pos[key] = len(h.keys)
	h.keys = append(h.keys, key)
	h.siftUp(len(h.keys) - 1)
}

// Remove deletes key from the heap, reporting whether it was present.
func (h *Heap) Remove(key int) bool {
	i, ok := h.pos[key]
	if !ok {
		return false
	}
	last := len(h.keys) - 1
	h.swap(i, last)
	h.keys = h.keys[:last]
	delete(h.pos, key)
	delete(h.prio, key)
	if i < last {
		h.siftDown(i)
		h.siftUp(i)
	}
	return true
}

// Peek returns the maximum-priority key without removing it.
func (h *Heap) Peek() (key int, prio float64, ok bool) {
	if len(h.keys) == 0 {
		return 0, 0, false
	}
	k := h.keys[0]
	return k, h.prio[k], true
}

// Pop removes and returns the maximum-priority key.
func (h *Heap) Pop() (key int, prio float64, ok bool) {
	key, prio, ok = h.Peek()
	if ok {
		h.Remove(key)
	}
	return key, prio, ok
}

// Keys returns the keys currently in the heap in unspecified order.
func (h *Heap) Keys() []int {
	out := make([]int, len(h.keys))
	copy(out, h.keys)
	return out
}

// better reports whether entry (pa, ka) sorts strictly above (pb, kb):
// higher priority first, then smaller key.
func (h *Heap) better(pa float64, ka int, pb float64, kb int) bool {
	if pa != pb {
		return pa > pb
	}
	return ka < kb
}

func (h *Heap) less(i, j int) bool {
	ki, kj := h.keys[i], h.keys[j]
	return h.better(h.prio[ki], ki, h.prio[kj], kj)
}

func (h *Heap) swap(i, j int) {
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.keys[i]] = i
	h.pos[h.keys[j]] = j
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) siftDown(i int) {
	n := len(h.keys)
	for {
		best := i
		if l := 2*i + 1; l < n && h.less(l, best) {
			best = l
		}
		if r := 2*i + 2; r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}
