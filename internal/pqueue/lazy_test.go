package pqueue

import (
	"math/rand"
	"testing"
)

func TestLazyPopOrder(t *testing.T) {
	h := NewLazy(5)
	h.Update(0, 0, 1.5)
	h.Update(1, 1, 3.0)
	h.Update(2, 2, 2.25)
	h.Update(3, 3, 3.0) // ties with key 1; id 1 must win
	want := []int{1, 3, 2, 0}
	for _, k := range want {
		got, _, ok := h.Pop()
		if !ok || got != k {
			t.Fatalf("pop = %d (%v), want %d", got, ok, k)
		}
	}
	if _, _, ok := h.Pop(); ok {
		t.Fatal("pop from drained heap succeeded")
	}
}

func TestLazyUpdateSupersedes(t *testing.T) {
	h := NewLazy(3)
	h.Update(0, 0, 10)
	h.Update(1, 1, 5)
	h.Update(0, 0, 1) // demote key 0; its old entry is now stale
	k, p, ok := h.Pop()
	if !ok || k != 1 || p != 5 {
		t.Fatalf("pop = %d/%g, want 1/5", k, p)
	}
	k, p, ok = h.Pop()
	if !ok || k != 0 || p != 1 {
		t.Fatalf("pop = %d/%g, want 0/1 (the fresh value, not the stale 10)", k, p)
	}
}

func TestLazyInvalidate(t *testing.T) {
	h := NewLazy(3)
	h.Update(0, 0, 9)
	h.Update(1, 1, 8)
	h.Invalidate(0)
	if h.Live() != 1 {
		t.Fatalf("live = %d, want 1", h.Live())
	}
	k, _, ok := h.Pop()
	if !ok || k != 1 {
		t.Fatalf("pop = %d, want 1 after invalidating 0", k)
	}
	if _, _, ok := h.Pop(); ok {
		t.Fatal("invalidated key surfaced")
	}
	// Re-adding after invalidation works.
	h.Update(0, 0, 2)
	if k, _, ok := h.Pop(); !ok || k != 0 {
		t.Fatalf("pop = %d, want re-added 0", k)
	}
}

func TestLazyBulkInit(t *testing.T) {
	h := NewLazy(6)
	prios := []float64{2, 9, 4, 9, 1, 7}
	for k, p := range prios {
		h.BulkSet(k, int32(k), p)
	}
	h.Fix()
	want := []int{1, 3, 5, 2, 0, 4} // prio desc, ties by id asc
	for _, k := range want {
		got, _, ok := h.Pop()
		if !ok || got != k {
			t.Fatalf("pop = %d, want %d", got, k)
		}
	}
}

// TestLazyCompaction floods one key with updates and checks the array
// stays within the documented bound of the live set.
func TestLazyCompaction(t *testing.T) {
	h := NewLazy(4)
	for i := 0; i < 10000; i++ {
		h.Update(i%4, int32(i%4), float64(i))
	}
	if h.Len() > 64 {
		t.Fatalf("array holds %d entries for %d live keys; compaction failed", h.Len(), h.Live())
	}
	// The four freshest values must pop in order.
	want := []int{3, 2, 1, 0} // prios 9999, 9998, 9997, 9996
	for _, k := range want {
		got, _, ok := h.Pop()
		if !ok || got != k {
			t.Fatalf("pop = %d, want %d", got, k)
		}
	}
}

// TestLazyBulkUpdate: BulkUpdate supersedes existing entries (unlike
// BulkSet) and a single Fix restores pop order for the whole round.
func TestLazyBulkUpdate(t *testing.T) {
	h := NewLazy(5)
	for k := 0; k < 5; k++ {
		h.BulkSet(k, int32(k), float64(k))
	}
	h.Fix()
	// A "round" of repairs: demote the current best, promote two others,
	// touch one key twice (only the last write may win).
	h.BulkUpdate(4, 4, 0.5)
	h.BulkUpdate(1, 1, 9)
	h.BulkUpdate(2, 2, 7)
	h.BulkUpdate(2, 2, 6)
	h.Fix()
	want := []struct {
		k int
		p float64
	}{{1, 9}, {2, 6}, {3, 3}, {4, 0.5}, {0, 0}}
	for _, w := range want {
		k, p, ok := h.Pop()
		if !ok || k != w.k || p != w.p {
			t.Fatalf("pop = %d/%g (%v), want %d/%g", k, p, ok, w.k, w.p)
		}
	}
	if h.Live() != 0 {
		t.Fatalf("live = %d after drain", h.Live())
	}
}

// TestLazyBulkUpdateMatchesUpdate drives two heaps through the same
// random rounds — one with per-entry Update, one with BulkUpdate + Fix —
// and requires identical pop streams between rounds.
func TestLazyBulkUpdateMatchesUpdate(t *testing.T) {
	const n = 32
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		a, b := NewLazy(n), NewLazy(n)
		for k := 0; k < n; k++ {
			p := float64(r.Intn(50))
			a.BulkSet(k, int32(k), p)
			b.BulkSet(k, int32(k), p)
		}
		a.Fix()
		b.Fix()
		for round := 0; round < 30; round++ {
			for i := 0; i < 1+r.Intn(8); i++ {
				k := r.Intn(n)
				if r.Intn(5) == 0 {
					a.Invalidate(k)
					b.Invalidate(k)
					continue
				}
				p := float64(r.Intn(50))
				a.Update(k, int32(k), p)
				b.BulkUpdate(k, int32(k), p)
			}
			b.Fix()
			for i := 0; i < r.Intn(3); i++ {
				ak, ap, aok := a.Pop()
				bk, bp, bok := b.Pop()
				if aok != bok || (aok && (ak != bk || ap != bp)) {
					t.Fatalf("seed %d round %d: update pop (%d,%g,%v) != bulk pop (%d,%g,%v)",
						seed, round, ak, ap, aok, bk, bp, bok)
				}
			}
		}
	}
}

// TestLazyBulkUpdateCompaction floods the heap through the bulk path and
// checks Fix's built-in compaction keeps the array bounded.
func TestLazyBulkUpdateCompaction(t *testing.T) {
	h := NewLazy(4)
	for i := 0; i < 10000; i++ {
		h.BulkUpdate(i%4, int32(i%4), float64(i))
		if i%16 == 15 {
			h.Fix()
		}
	}
	h.Fix()
	if h.Len() > 64 {
		t.Fatalf("array holds %d entries for %d live keys; Fix never compacted", h.Len(), h.Live())
	}
	want := []int{3, 2, 1, 0} // prios 9999, 9998, 9997, 9996
	for _, k := range want {
		got, _, ok := h.Pop()
		if !ok || got != k {
			t.Fatalf("pop = %d, want %d", got, k)
		}
	}
}

// TestLazyMatchesEagerHeap drives Lazy and the eager indexed Heap through
// the same random operation sequence and requires identical pop streams.
func TestLazyMatchesEagerHeap(t *testing.T) {
	const n = 40
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		lazy := NewLazy(n)
		eager := New()
		for op := 0; op < 400; op++ {
			k := r.Intn(n)
			switch r.Intn(4) {
			case 0, 1: // set/update
				p := float64(r.Intn(20))
				lazy.Update(k, int32(k), p)
				eager.Set(k, p)
			case 2: // remove
				lazy.Invalidate(k)
				eager.Remove(k)
			case 3: // pop from both
				lk, lp, lok := lazy.Pop()
				ek, ep, eok := eager.Pop()
				if lok != eok || (lok && (lk != ek || lp != ep)) {
					t.Fatalf("seed %d op %d: lazy pop (%d,%g,%v) != eager pop (%d,%g,%v)",
						seed, op, lk, lp, lok, ek, ep, eok)
				}
			}
		}
		// Drain both and compare the tails.
		var lt, et []int
		for {
			k, _, ok := lazy.Pop()
			if !ok {
				break
			}
			lt = append(lt, k)
		}
		for {
			k, _, ok := eager.Pop()
			if !ok {
				break
			}
			et = append(et, k)
		}
		if len(lt) != len(et) {
			t.Fatalf("seed %d: drain lengths %d vs %d", seed, len(lt), len(et))
		}
		for i := range lt {
			if lt[i] != et[i] {
				t.Fatalf("seed %d: drain[%d] = %d vs %d", seed, i, lt[i], et[i])
			}
		}
	}
}
