package zoo

import (
	"math"
	"math/rand"
	"sort"

	"github.com/rockclust/rock/internal/dataset"
)

// COOLCATEngine implements COOLCAT (Barbara, Li, Couto; CIKM 2002):
// entropy-based clustering of categorical records with the same
// sample-then-assign shape as ROCK's labeling phase. A seeded sample is
// scanned for k maximally-distant seed records (farthest-first on the
// simple-matching distance, which is monotone in the two-record cluster
// entropy COOLCAT maximizes), then every remaining record joins the
// cluster whose expected entropy Σ_i |C_i|·H(C_i) grows least. With
// BatchSize > 0 the paper's re-processing step runs: after each batch,
// the worst-fitting fraction of the batch is removed and re-placed.
//
// Ties break toward the lower cluster index and lower record index, so
// a run is deterministic given Config.Seed.
type COOLCATEngine struct {
	// BatchSize enables COOLCAT's re-processing pass: after every
	// BatchSize placements the worst-fitting RefitFraction of the batch
	// is removed and re-placed. 0 disables re-processing.
	BatchSize int
	// RefitFraction is the fraction of each batch re-placed; 0 selects
	// the default 0.2. Ignored when BatchSize is 0.
	RefitFraction float64
}

// Name implements Engine.
func (*COOLCATEngine) Name() string { return "coolcat" }

// Claims implements Engine: seeded sampling makes the partition
// seed-dependent; the engine is single-threaded, hence trivially
// worker-invariant.
func (*COOLCATEngine) Claims() Claims {
	return Claims{SeedInvariant: false, WorkerInvariant: true, UsesK: true}
}

// coolcatState carries the per-cluster attribute-value counts plus the
// cached Σ_v c·ln(c) per (cluster, attribute) that makes the expected
// entropy delta of a placement O(width).
type coolcatState struct {
	width  int
	counts []map[string]int // cluster*width + attr
	slnl   []float64        // Σ_v count·ln(count) per cluster*width+attr
	sizes  []int
}

// xlnx returns x·ln(x) with the 0·ln 0 = 0 convention.
func xlnx(x int) float64 {
	if x <= 0 {
		return 0
	}
	return float64(x) * math.Log(float64(x))
}

func newCoolcatState(k, width int) *coolcatState {
	st := &coolcatState{
		width:  width,
		counts: make([]map[string]int, k*width),
		slnl:   make([]float64, k*width),
		sizes:  make([]int, k),
	}
	for i := range st.counts {
		st.counts[i] = map[string]int{}
	}
	return st
}

// deltaEntropy returns the increase of |C|·H(C) from adding rec to
// cluster c. Per attribute a with current value count cv and cluster
// size s, the increase is (s+1)ln(s+1) − s·ln s − ((cv+1)ln(cv+1) −
// cv·ln cv), summed over attributes — an O(width) exact evaluation.
func (st *coolcatState) deltaEntropy(c int, rec dataset.Record) float64 {
	s := st.sizes[c]
	sizeTerm := xlnx(s+1) - xlnx(s)
	d := 0.0
	for a := 0; a < st.width; a++ {
		cv := st.counts[c*st.width+a][recVal(rec, a)]
		d += sizeTerm - (xlnx(cv+1) - xlnx(cv))
	}
	return d
}

// recVal reads attribute a of a possibly short record.
func recVal(rec dataset.Record, a int) string {
	if a < len(rec) {
		return rec[a]
	}
	return ""
}

func (st *coolcatState) add(c int, rec dataset.Record) {
	for a := 0; a < st.width; a++ {
		m := st.counts[c*st.width+a]
		v := recVal(rec, a)
		st.slnl[c*st.width+a] += xlnx(m[v]+1) - xlnx(m[v])
		m[v]++
	}
	st.sizes[c]++
}

func (st *coolcatState) remove(c int, rec dataset.Record) {
	for a := 0; a < st.width; a++ {
		m := st.counts[c*st.width+a]
		v := recVal(rec, a)
		st.slnl[c*st.width+a] += xlnx(m[v]-1) - xlnx(m[v])
		m[v]--
		if m[v] == 0 {
			delete(m, v)
		}
	}
	st.sizes[c]--
}

// logFit scores how well rec fits its cluster c: Σ_a ln p_a(rec[a])
// over the cluster's value frequencies (counts include rec itself).
// Higher is better; COOLCAT re-places the lowest scorers.
func (st *coolcatState) logFit(c int, rec dataset.Record) float64 {
	s := st.sizes[c]
	if s == 0 {
		return math.Inf(-1)
	}
	f := 0.0
	for a := 0; a < st.width; a++ {
		cv := st.counts[c*st.width+a][recVal(rec, a)]
		if cv == 0 {
			return math.Inf(-1)
		}
		f += math.Log(float64(cv) / float64(s))
	}
	return f
}

// entropyCost is the COOLCAT objective Σ_c |C_c|·H(C_c) at the current
// state, using |C|·H(C) = Σ_a (|C|·ln|C| − Σ_v c_v·ln c_v).
func (st *coolcatState) entropyCost() float64 {
	total := 0.0
	k := len(st.sizes)
	for c := 0; c < k; c++ {
		for a := 0; a < st.width; a++ {
			total += xlnx(st.sizes[c]) - st.slnl[c*st.width+a]
		}
	}
	return total
}

// place assigns rec to the cluster with the least expected-entropy
// increase, ties toward the lower cluster index, and updates the state.
func (st *coolcatState) place(rec dataset.Record) int {
	best, bestD := 0, math.Inf(1)
	for c := range st.sizes {
		if d := st.deltaEntropy(c, rec); d < bestD {
			best, bestD = c, d
		}
	}
	st.add(best, rec)
	return best
}

// Fit implements Engine.
func (e *COOLCATEngine) Fit(d *dataset.Dataset, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	records, width := recordsOf(d)
	n := len(records)
	k, err := clampK(cfg.K, n)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return &Result{Assign: []int{}}, nil
	}

	// Sample, then pick maximally-distant seeds within it.
	s := cfg.SampleSize
	if s <= 0 {
		s = 20 * k
		if s < 100 {
			s = 100
		}
	}
	if s > n {
		s = n
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sampleIdx := rng.Perm(n)[:s]
	sort.Ints(sampleIdx)
	seeds := coolcatSeeds(records, sampleIdx, k)
	k = len(seeds)

	st := newCoolcatState(k, width)
	assign := make([]int, n)
	isSeed := make(map[int]bool, k)
	for c, p := range seeds {
		isSeed[p] = true
		assign[p] = c
		st.add(c, records[p])
	}

	refitFrac := e.RefitFraction
	if refitFrac <= 0 {
		refitFrac = 0.2
	}
	var batch []int
	flush := func() {
		if len(batch) == 0 {
			return
		}
		// Re-process the worst-fitting fraction of the batch: remove
		// them (in score order, worst first; index breaks ties) and
		// re-place in record order.
		scored := make([]int, len(batch))
		copy(scored, batch)
		sort.SliceStable(scored, func(i, j int) bool {
			fi, fj := st.logFit(assign[scored[i]], records[scored[i]]), st.logFit(assign[scored[j]], records[scored[j]])
			if fi != fj {
				return fi < fj
			}
			return scored[i] < scored[j]
		})
		m := int(math.Ceil(refitFrac * float64(len(batch))))
		redo := scored[:m]
		for _, p := range redo {
			st.remove(assign[p], records[p])
		}
		sort.Ints(redo)
		for _, p := range redo {
			assign[p] = st.place(records[p])
		}
		batch = batch[:0]
	}

	for p := 0; p < n; p++ {
		if isSeed[p] {
			continue
		}
		assign[p] = st.place(records[p])
		if e.BatchSize > 0 {
			batch = append(batch, p)
			if len(batch) >= e.BatchSize {
				flush()
			}
		}
	}
	flush()

	res := canonicalize(assign)
	res.Stats = Stats{Iters: 1, Cost: st.entropyCost()}
	return res, nil
}

// coolcatSeeds picks up to k maximally-distant sample records by
// farthest-first traversal on the simple-matching distance, starting
// from the most distant pair. It stops early when every remaining
// candidate duplicates a chosen seed (distance 0), so degenerate inputs
// yield fewer clusters instead of empty ones.
func coolcatSeeds(records []dataset.Record, sampleIdx []int, k int) []int {
	if k <= 1 || len(sampleIdx) == 1 {
		return sampleIdx[:1]
	}
	bi, bj, bestD := sampleIdx[0], -1, -1
	for x := 0; x < len(sampleIdx); x++ {
		for y := x + 1; y < len(sampleIdx); y++ {
			if d := recMismatch(records[sampleIdx[x]], records[sampleIdx[y]]); d > bestD {
				bi, bj, bestD = sampleIdx[x], sampleIdx[y], d
			}
		}
	}
	if bestD <= 0 {
		return []int{bi} // all sample records identical
	}
	seeds := []int{bi, bj}
	minDist := make(map[int]int, len(sampleIdx))
	for _, p := range sampleIdx {
		di, dj := recMismatch(records[p], records[bi]), recMismatch(records[p], records[bj])
		if dj < di {
			di = dj
		}
		minDist[p] = di
	}
	for len(seeds) < k {
		next, nextD := -1, 0
		for _, p := range sampleIdx {
			if d := minDist[p]; d > nextD || (d == nextD && d > 0 && (next < 0 || p < next)) {
				next, nextD = p, d
			}
		}
		if next < 0 || nextD == 0 {
			break // only duplicates of existing seeds remain
		}
		seeds = append(seeds, next)
		for _, p := range sampleIdx {
			if d := recMismatch(records[p], records[next]); d < minDist[p] {
				minDist[p] = d
			}
		}
	}
	sort.Ints(seeds)
	return seeds
}

// recMismatch counts attributes on which two records differ, padding
// short records with empty values.
func recMismatch(a, b dataset.Record) int {
	w := len(a)
	if len(b) > w {
		w = len(b)
	}
	d := 0
	for i := 0; i < w; i++ {
		if recVal(a, i) != recVal(b, i) {
			d++
		}
	}
	return d
}
