package zoo

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/metrics"
	"github.com/rockclust/rock/internal/synth"
)

// The engine conformance suite: one table-driven contract run over
// every registered engine. Each engine must produce canonical total
// partitions (Check), be deterministic under a fixed seed, survive the
// degenerate inputs without panicking, honor exactly the invariances it
// claims (seed and worker invariance), reject invalid configs
// uniformly, and recover planted clusters above a per-engine floor on
// the labeled generator. New engines get all of this for free by
// registering; an engine that cannot pass does not belong in the zoo.

// plantedDataset builds the planted-label workload: two well-separated
// classes (two, so the STIRR sign read-out competes on equal footing)
// of categorical records with mild noise.
func plantedDataset(n int, seed int64) *dataset.Dataset {
	return synth.Labeled(synth.LabeledConfig{
		Records: n, Classes: 2, Attributes: 8, Alphabet: 4, Noise: 0.05, Seed: seed,
	})
}

// degenerateDatasets are the canonical hostile shapes every engine must
// survive: no points, one point, all points identical, all points
// pairwise disjoint.
func degenerateDatasets() map[string]*dataset.Dataset {
	attrs := []string{"a0", "a1", "a2"}
	rec := dataset.Record{"x", "y", "z"}

	identical := make([]dataset.Record, 24)
	for i := range identical {
		identical[i] = rec
	}
	distinct := make([]dataset.Record, 24)
	for i := range distinct {
		r := make(dataset.Record, len(attrs))
		for a := range r {
			r[a] = fmt.Sprintf("v%d_%d", i, a)
		}
		distinct[i] = r
	}
	return map[string]*dataset.Dataset{
		"empty":         dataset.EncodeRecords(attrs, nil, nil, dataset.EncodeOptions{}),
		"single-point":  dataset.EncodeRecords(attrs, []dataset.Record{rec}, nil, dataset.EncodeOptions{}),
		"all-identical": dataset.EncodeRecords(attrs, identical, nil, dataset.EncodeOptions{}),
		"all-distinct":  dataset.EncodeRecords(attrs, distinct, nil, dataset.EncodeOptions{}),
	}
}

// purityFloor is the minimum clustering accuracy each engine must reach
// on the planted two-class workload. The floors are deliberately below
// the measured values (see TestEngineConformance output with -v) but
// high enough that a collapsed or shuffled partition fails.
func purityFloor(name string) float64 {
	switch name {
	case "stirr":
		// The sign read-out recovers the planted split but rides on a
		// converged eigenvector, not a local objective; give it slack.
		return 0.8
	default:
		return 0.85
	}
}

func mustFit(t *testing.T, e Engine, d *dataset.Dataset, cfg Config) *Result {
	t.Helper()
	res, err := e.Fit(d, cfg)
	if err != nil {
		t.Fatalf("%s: Fit failed: %v", e.Name(), err)
	}
	if err := Check(res, d.Len()); err != nil {
		t.Fatalf("%s: invalid partition: %v", e.Name(), err)
	}
	return res
}

// samePartition compares the cluster structure of two results (the
// stats may legitimately differ only if an engine reported timing-like
// data, which none do — so Stats are compared too).
func samePartition(a, b *Result) bool {
	return reflect.DeepEqual(a.Assign, b.Assign) && reflect.DeepEqual(a.Clusters, b.Clusters)
}

func TestEngineConformance(t *testing.T) {
	engines := Engines()
	if len(engines) < 7 {
		t.Fatalf("registry has %d engines, want the full zoo of 7 (coolcat, squeezer, k-histograms, k-modes, hierarchical, stirr, rock)", len(engines))
	}
	planted := plantedDataset(240, 11)
	degenerates := degenerateDatasets()

	for _, e := range engines {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			cfg := Config{K: 2, Seed: 7}

			t.Run("determinism", func(t *testing.T) {
				r1 := mustFit(t, e, planted, cfg)
				r2 := mustFit(t, e, planted, cfg)
				if !reflect.DeepEqual(r1, r2) {
					t.Fatalf("two identical Fit calls disagree: %d vs %d clusters", r1.K(), r2.K())
				}
			})

			t.Run("degenerate-inputs", func(t *testing.T) {
				for name, d := range degenerates {
					for _, k := range []int{1, 2, 3} {
						res := mustFit(t, e, d, Config{K: k, Seed: 7})
						if d.Len() > 0 && res.K() == 0 {
							t.Fatalf("%s k=%d: no clusters for %d points", name, k, d.Len())
						}
					}
				}
			})

			t.Run("rejects-bad-k", func(t *testing.T) {
				for _, k := range []int{0, -3} {
					if _, err := e.Fit(planted, Config{K: k, Seed: 7}); err == nil {
						t.Fatalf("k=%d accepted", k)
					}
				}
			})

			t.Run("seed-invariance", func(t *testing.T) {
				r1 := mustFit(t, e, planted, Config{K: 2, Seed: 1})
				r2 := mustFit(t, e, planted, Config{K: 2, Seed: 99})
				if e.Claims().SeedInvariant && !samePartition(r1, r2) {
					t.Fatal("claims seed invariance but partitions differ across seeds")
				}
			})

			t.Run("worker-invariance", func(t *testing.T) {
				r1 := mustFit(t, e, planted, Config{K: 2, Seed: 7, Workers: 1})
				r4 := mustFit(t, e, planted, Config{K: 2, Seed: 7, Workers: 4})
				if e.Claims().WorkerInvariant && !samePartition(r1, r4) {
					t.Fatal("claims worker invariance but partitions differ across worker counts")
				}
			})

			t.Run("planted-quality", func(t *testing.T) {
				res := mustFit(t, e, planted, cfg)
				ev := metrics.Evaluate(res.Assign, planted.Labels)
				t.Logf("%s: k=%d purity=%.4f NMI=%.4f ARI=%.4f", e.Name(), res.K(), ev.Accuracy, ev.NMI, ev.ARI)
				if floor := purityFloor(e.Name()); ev.Accuracy < floor {
					t.Fatalf("purity %.4f below floor %.2f (k=%d)", ev.Accuracy, floor, res.K())
				}
				if res.K() < 2 {
					t.Fatalf("collapsed to %d cluster(s) on a two-class workload", res.K())
				}
			})
		})
	}
}

// TestCheckRejectsMalformedPartitions proves the validity oracle itself
// catches every canonical-form violation — otherwise the conformance
// suite would be vacuous.
func TestCheckRejectsMalformedPartitions(t *testing.T) {
	good := func() *Result {
		return &Result{Assign: []int{0, 0, 1}, Clusters: [][]int{{0, 1}, {2}}}
	}
	if err := Check(good(), 3); err != nil {
		t.Fatalf("canonical partition rejected: %v", err)
	}
	cases := map[string]func(*Result){
		"wrong-length":     func(r *Result) { r.Assign = r.Assign[:2] },
		"empty-cluster":    func(r *Result) { r.Clusters = append(r.Clusters, []int{}) },
		"unsorted-members": func(r *Result) { r.Clusters[0] = []int{1, 0} },
		"duplicate-member": func(r *Result) { r.Clusters[1] = []int{1} },
		"out-of-range":     func(r *Result) { r.Clusters[1] = []int{5} },
		"misordered":       func(r *Result) { r.Clusters[0], r.Clusters[1] = r.Clusters[1], r.Clusters[0] },
		"assign-mismatch":  func(r *Result) { r.Assign[2] = 0 },
		"uncovered-point":  func(r *Result) { r.Clusters[1] = nil; r.Clusters = r.Clusters[:1] },
		"negative-assign":  func(r *Result) { r.Assign[0] = -1 },
		"point-in-two":     func(r *Result) { r.Clusters[1] = []int{1, 2} },
	}
	for name, mutate := range cases {
		r := good()
		mutate(r)
		if err := Check(r, 3); err == nil {
			t.Errorf("%s: malformed partition accepted", name)
		}
	}
	if err := Check(nil, 0); err == nil {
		t.Error("nil result accepted")
	}
}

// TestCanonicalizeFoldsOutliers pins the adapter convention: negative
// raw ids become singleton clusters, arbitrary sparse ids are
// renumbered densely by smallest member.
func TestCanonicalizeFoldsOutliers(t *testing.T) {
	res := canonicalize([]int{7, -1, 7, 3, -1})
	if err := Check(res, 5); err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 2}, {1}, {3}, {4}}
	if !reflect.DeepEqual(res.Clusters, want) {
		t.Fatalf("clusters = %v, want %v", res.Clusters, want)
	}
}
