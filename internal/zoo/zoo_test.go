package zoo

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

// randomRecords draws n random records over the given width and
// alphabet — shared scaffolding for the engine property tests.
func randomRecords(rng *rand.Rand, n, width, alphabet int) []dataset.Record {
	records := make([]dataset.Record, n)
	for i := range records {
		r := make(dataset.Record, width)
		for a := range r {
			r[a] = fmt.Sprintf("v%d", rng.Intn(alphabet))
		}
		records[i] = r
	}
	return records
}

// bruteEntropyCost recomputes COOLCAT's objective Σ_c |C_c|·H(C_c)
// from scratch: the oracle for the incremental Σ c·ln c bookkeeping.
func bruteEntropyCost(records []dataset.Record, assign []int, k, width int) float64 {
	total := 0.0
	for c := 0; c < k; c++ {
		var members []int
		for p, a := range assign {
			if a == c {
				members = append(members, p)
			}
		}
		n := float64(len(members))
		if n == 0 {
			continue
		}
		for a := 0; a < width; a++ {
			counts := map[string]int{}
			for _, p := range members {
				counts[recVal(records[p], a)]++
			}
			h := 0.0
			for _, cnt := range counts {
				p := float64(cnt) / n
				h -= p * math.Log(p)
			}
			total += n * h
		}
	}
	return total
}

// TestCoolcatDeltaAgainstBruteForce proves the O(width) expected-entropy
// delta identical to recomputing (n+1)·H(C∪r) − n·H(C) from scratch,
// across random states — the invariant the whole assignment phase rides
// on.
func TestCoolcatDeltaAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	width := 4
	for trial := 0; trial < 30; trial++ {
		records := randomRecords(rng, 20, width, 3)
		k := 2 + rng.Intn(3)
		st := newCoolcatState(k, width)
		assign := make([]int, len(records))
		for p, rec := range records[:15] {
			assign[p] = rng.Intn(k)
			st.add(assign[p], rec)
		}
		before := bruteEntropyCost(records[:15], assign[:15], k, width)
		for _, rec := range records[15:] {
			for c := 0; c < k; c++ {
				got := st.deltaEntropy(c, rec)
				// Brute force: add, recompute, remove.
				st.add(c, rec)
				afterAssign := append(append([]int{}, assign[:15]...), c)
				afterRecords := append(append([]dataset.Record{}, records[:15]...), rec)
				want := bruteEntropyCost(afterRecords, afterAssign, k, width) - before
				st.remove(c, rec)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("trial %d: delta %.12f != brute %.12f", trial, got, want)
				}
			}
		}
		if got := st.entropyCost(); math.Abs(got-before) > 1e-9 {
			t.Fatalf("trial %d: entropyCost %.12f != brute %.12f", trial, got, before)
		}
	}
}

// TestCoolcatSeedsFarthestFirst pins the seed selection: the first two
// seeds are a maximally-distant pair, later seeds maximize the minimum
// distance to earlier ones, and duplicate-only remainders stop the
// traversal early.
func TestCoolcatSeedsFarthestFirst(t *testing.T) {
	records := []dataset.Record{
		{"a", "a", "a"},
		{"a", "a", "b"}, // 1 from seed 0
		{"c", "c", "c"}, // 3 from seed 0
		{"a", "a", "a"}, // duplicate of 0
	}
	all := []int{0, 1, 2, 3}
	seeds := coolcatSeeds(records, all, 3)
	if len(seeds) != 3 || seeds[0] != 0 || seeds[1] != 1 || seeds[2] != 2 {
		t.Fatalf("seeds = %v, want [0 1 2]", seeds)
	}
	// Asking for more seeds than distinct records stops early.
	if got := coolcatSeeds(records, all, 4); len(got) != 3 {
		t.Fatalf("k=4 over 3 distinct records gave %d seeds", len(got))
	}
	// All-identical sample collapses to a single seed.
	same := []dataset.Record{{"x"}, {"x"}, {"x"}}
	if got := coolcatSeeds(same, []int{0, 1, 2}, 3); len(got) != 1 {
		t.Fatalf("identical records gave %d seeds, want 1", len(got))
	}
}

// TestCoolcatReprocessing exercises the batch refit path: it must stay
// deterministic and keep the partition canonical, and with clean data
// placement quality must not degrade.
func TestCoolcatReprocessing(t *testing.T) {
	d := plantedDataset(200, 3)
	e := &COOLCATEngine{BatchSize: 32, RefitFraction: 0.25}
	r1, err := e.Fit(d, Config{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(r1, d.Len()); err != nil {
		t.Fatal(err)
	}
	r2, _ := e.Fit(d, Config{K: 2, Seed: 7})
	if !samePartition(r1, r2) {
		t.Fatal("re-processing run is not deterministic")
	}
	plain, _ := (&COOLCATEngine{}).Fit(d, Config{K: 2, Seed: 7})
	if r1.Stats.Cost > plain.Stats.Cost+1e-9 {
		t.Fatalf("re-processing raised the entropy objective: %.4f > %.4f", r1.Stats.Cost, plain.Stats.Cost)
	}
}

// TestSqueezerStreaming pins the single-pass semantics: cluster ids
// appear in founding order, identical records coalesce, the threshold
// gates admission, and the partition is canonical after every ingest.
func TestSqueezerStreaming(t *testing.T) {
	s := NewSqueezer(2, 0.6)
	a := dataset.Record{"x", "y"}
	b := dataset.Record{"p", "q"}
	if got := s.Ingest(a); got != 0 {
		t.Fatalf("first record in cluster %d, want 0", got)
	}
	if got := s.Ingest(a); got != 0 {
		t.Fatalf("identical record in cluster %d, want 0", got)
	}
	if got := s.Ingest(b); got != 1 {
		t.Fatalf("disjoint record in cluster %d, want a new cluster 1", got)
	}
	if got := s.Ingest(dataset.Record{"x", "q"}); got != 2 {
		// Similarity to cluster 0 is (2/2 + 0)/2 = 0.5 < 0.6, and to
		// cluster 1 it is (0 + 1/1)/2 = 0.5 too; neither admits.
		t.Fatalf("half-matching record joined cluster %d, want a new cluster 2", got)
	}
	if s.K() != 3 || s.Len() != 4 {
		t.Fatalf("K=%d Len=%d, want 3/4", s.K(), s.Len())
	}
	if err := Check(s.Result(), 4); err != nil {
		t.Fatal(err)
	}

	// Threshold 0 funnels everything into the first cluster.
	s0 := NewSqueezer(2, 0)
	s0.Ingest(a)
	if got := s0.Ingest(b); got != 0 {
		t.Fatalf("threshold 0: record founded cluster %d, want join 0", got)
	}

	// Zero-width records are all identical: one cluster regardless.
	sw := NewSqueezer(0, 0.9)
	sw.Ingest(dataset.Record{})
	if got := sw.Ingest(dataset.Record{}); got != 0 {
		t.Fatalf("zero-width: cluster %d, want 0", got)
	}
}

// TestSqueezerIncrementalMatchesEngine proves the engine wrapper is
// exactly the incremental API replayed in input order.
func TestSqueezerIncrementalMatchesEngine(t *testing.T) {
	d := plantedDataset(150, 9)
	records, width := recordsOf(d)
	s := NewSqueezer(width, 0.5)
	for _, rec := range records {
		s.Ingest(rec)
	}
	want := s.Result()
	got, err := (&SqueezerEngine{}).Fit(d, Config{K: 1, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !samePartition(got, want) {
		t.Fatal("engine Fit and incremental Ingest disagree")
	}
}

// TestKHistogramsRefinesKModes pins the center semantics: a cluster's
// histogram distance to a member record is strictly below the distance
// for a record the cluster has never seen, and the engine's objective
// never increases across iterations (checked indirectly: the final cost
// is no worse than the one-iteration cost).
func TestKHistogramsDistance(t *testing.T) {
	h := newHistCenter(2)
	h.add(dataset.Record{"a", "b"}, 2)
	h.add(dataset.Record{"a", "c"}, 2)
	if d := h.distance(dataset.Record{"a", "b"}, 2); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("member distance %.4f, want 0.5 (full match on a, half on b)", d)
	}
	if d := h.distance(dataset.Record{"z", "z"}, 2); math.Abs(d-2) > 1e-12 {
		t.Fatalf("foreign distance %.4f, want 2", d)
	}
	empty := newHistCenter(2)
	if d := empty.distance(dataset.Record{"a", "b"}, 2); d <= 2 {
		t.Fatalf("empty center distance %.4f should exceed any real distance", d)
	}
}

func TestKHistogramsConvergesOnPlanted(t *testing.T) {
	d := plantedDataset(300, 21)
	res, err := (&KHistogramsEngine{}).Fit(d, Config{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(res, d.Len()); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iters < 1 || res.Stats.Iters >= 100 {
		t.Fatalf("iters = %d, expected convergence before MaxIter", res.Stats.Iters)
	}
	if res.Stats.Cost <= 0 {
		t.Fatalf("cost = %.4f, want positive on noisy data", res.Stats.Cost)
	}
}

// TestRegistryNames pins the registry contents and ordering so bench
// rows and CI regexes stay stable.
func TestRegistryNames(t *testing.T) {
	want := []string{"coolcat", "hierarchical", "k-histograms", "k-modes", "rock", "squeezer", "stirr"}
	engines := Engines()
	if len(engines) != len(want) {
		t.Fatalf("registry has %d engines, want %d", len(engines), len(want))
	}
	for i, e := range engines {
		if e.Name() != want[i] {
			t.Fatalf("engine %d = %q, want %q", i, e.Name(), want[i])
		}
	}
	if _, ok := ByName("rock"); !ok {
		t.Fatal("ByName(rock) not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) found")
	}
}

// TestRegisterRejectsDuplicates pins the duplicate guard.
func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(&SqueezerEngine{})
}
