package zoo

import (
	"github.com/rockclust/rock/internal/dataset"
)

// Squeezer is the single-pass streaming clusterer of He, Xu and Deng
// ("Squeezer: an efficient algorithm for clustering categorical data",
// J. Comput. Sci. Technol. 2002), maintained incrementally: each
// ingested record either joins the existing cluster with the highest
// support-weighted similarity (when that similarity reaches the
// threshold) or founds a new cluster. Clusters are summarized by
// per-attribute value-count histograms — no record is ever revisited,
// which is what makes the algorithm a natural seed for streaming-side
// engine alternatives.
//
// The similarity of a record r to a cluster C is the mean per-attribute
// support (1/width)·Σ_a count_C(r[a])/|C|, normalized into [0,1] so the
// threshold is scale-free in the attribute count. Ingest order is the
// only source of nondeterminism the algorithm has; for a fixed stream
// the result is fully deterministic and seed-free.
type Squeezer struct {
	width     int
	threshold float64
	counts    [][]map[string]int // per cluster, per attribute
	sizes     []int
	assign    []int
}

// NewSqueezer creates an empty clusterer over records of the given
// attribute width. threshold is clamped into [0,1].
func NewSqueezer(width int, threshold float64) *Squeezer {
	if width < 0 {
		width = 0
	}
	if threshold < 0 {
		threshold = 0
	}
	if threshold > 1 {
		threshold = 1
	}
	return &Squeezer{width: width, threshold: threshold}
}

// Len reports the number of records ingested so far.
func (s *Squeezer) Len() int { return len(s.assign) }

// K reports the number of clusters formed so far.
func (s *Squeezer) K() int { return len(s.sizes) }

// similarity is the mean per-attribute support of rec in cluster c.
// Zero-width records are all identical, so their similarity is 1.
func (s *Squeezer) similarity(c int, rec dataset.Record) float64 {
	if s.width == 0 {
		return 1
	}
	sum := 0.0
	for a := 0; a < s.width; a++ {
		sum += float64(s.counts[c][a][recVal(rec, a)])
	}
	return sum / (float64(s.width) * float64(s.sizes[c]))
}

// Ingest adds one record and returns the cluster id it was placed in
// (existing when the best similarity reaches the threshold — ties break
// toward the lower cluster id — a fresh id otherwise). Attributes
// beyond the configured width are ignored; short records read as empty
// values, matching the record padding of DecodeRecord.
func (s *Squeezer) Ingest(rec dataset.Record) int {
	best, bestSim := -1, -1.0
	for c := range s.sizes {
		if sim := s.similarity(c, rec); sim > bestSim {
			best, bestSim = c, sim
		}
	}
	if best < 0 || bestSim < s.threshold {
		best = len(s.sizes)
		cnt := make([]map[string]int, s.width)
		for a := range cnt {
			cnt[a] = map[string]int{}
		}
		s.counts = append(s.counts, cnt)
		s.sizes = append(s.sizes, 0)
	}
	for a := 0; a < s.width; a++ {
		s.counts[best][a][recVal(rec, a)]++
	}
	s.sizes[best]++
	s.assign = append(s.assign, best)
	return best
}

// Result snapshots the current clustering in the canonical zoo form.
// Cluster ids are already dense and ordered by first member (clusters
// are founded in stream order), so this is a direct re-grouping.
func (s *Squeezer) Result() *Result {
	res := canonicalize(s.assign)
	res.Stats = Stats{Iters: 1}
	return res
}

// SqueezerEngine adapts the streaming Squeezer to the Engine interface:
// one pass over the records in input order with Config.Threshold as the
// admission bar. Config.K is ignored — the threshold determines the
// cluster count, exactly as in the paper.
type SqueezerEngine struct{}

// Name implements Engine.
func (*SqueezerEngine) Name() string { return "squeezer" }

// Claims implements Engine: the single pass uses no randomness and no
// workers, so the partition is seed- and worker-invariant.
func (*SqueezerEngine) Claims() Claims {
	return Claims{SeedInvariant: true, WorkerInvariant: true, UsesK: false}
}

// Fit implements Engine.
func (*SqueezerEngine) Fit(d *dataset.Dataset, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if _, err := clampK(cfg.K, d.Len()); err != nil {
		return nil, err
	}
	records, width := recordsOf(d)
	s := NewSqueezer(width, cfg.Threshold)
	for _, rec := range records {
		s.Ingest(rec)
	}
	return s.Result(), nil
}
