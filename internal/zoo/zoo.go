// Package zoo collects the categorical-clustering algorithms that ROCK
// is measured against behind one Engine interface: the three new
// first-class engines of the "algorithm zoo" roadmap item — COOLCAT
// (entropy-based sample-then-assign), Squeezer (single-pass streaming),
// and k-histograms (k-modes with attribute-value histograms as centers)
// — together with adapters for the existing k-modes, hierarchical and
// STIRR baselines and for ROCK itself.
//
// The interface contract is deliberately strict so that one conformance
// suite (conformance_test.go) can prove every implementation at once:
//
//   - Fit returns a total partition: every input point lies in exactly
//     one cluster, cluster ids are dense (0..K-1), members are listed
//     ascending, and clusters are ordered by their smallest member.
//     Engines whose native output has outliers (ROCK) park them in
//     singleton clusters; Check verifies the canonical form.
//   - Fit is deterministic: the same dataset and Config always produce
//     the identical partition.
//   - Engines declare their invariances through Claims — seed
//     invariance, worker invariance, whether Config.K is honored — and
//     the conformance suite enforces exactly what is claimed.
//
// Record-based engines (COOLCAT, Squeezer, k-histograms, k-modes,
// STIRR) view the dataset through dataset.DecodeRecord, so a dataset
// built with dataset.EncodeRecords round-trips to its original records;
// datasets without attribute metadata decode to zero-width records,
// which such engines treat as all-identical. Transaction-based engines
// (hierarchical, ROCK) consume Dataset.Trans directly.
package zoo

import (
	"fmt"
	"sort"

	"github.com/rockclust/rock/internal/dataset"
)

// Config is the shared parameterization every engine accepts. Engines
// ignore knobs that do not apply to them (Claims documents which).
type Config struct {
	// K is the target cluster count. Engines that derive their cluster
	// count themselves (Squeezer's threshold test, STIRR's two-basin
	// read-out) ignore it; Claims.UsesK says which. Must be >= 1.
	K int
	// Seed drives every randomized step (sampling, seeding). Engines
	// claiming SeedInvariant produce the same partition for every seed.
	Seed int64
	// Workers bounds parallelism where an engine supports it (the ROCK
	// adapter). Engines claiming WorkerInvariant produce the identical
	// partition for every worker count.
	Workers int
	// MaxIter bounds iterative engines (k-modes, k-histograms, STIRR);
	// 0 selects the engine default (100).
	MaxIter int
	// Threshold is Squeezer's admission threshold: the minimum
	// per-attribute average support, in [0,1], for a record to join an
	// existing cluster. 0 selects the default 0.5.
	Threshold float64
	// SampleSize overrides COOLCAT's clustering sample size (and the
	// ROCK adapter's Config.SampleSize). 0 selects the engine default
	// (COOLCAT: min(n, max(100, 20·K)); ROCK: no sampling).
	SampleSize int
}

// withDefaults resolves the defaulted knobs.
func (c Config) withDefaults() Config {
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	return c
}

// Claims declares the invariances an engine guarantees. The conformance
// suite enforces exactly what is claimed — an engine must not claim an
// invariance it cannot prove, and every engine must be deterministic.
type Claims struct {
	// SeedInvariant: the partition does not depend on Config.Seed.
	SeedInvariant bool
	// WorkerInvariant: the partition does not depend on Config.Workers.
	WorkerInvariant bool
	// UsesK: the engine honors Config.K as its target cluster count
	// (it may still return fewer clusters on degenerate inputs).
	UsesK bool
}

// Stats reports what happened during a Fit.
type Stats struct {
	// Iters is the number of iterations an iterative engine ran (1 for
	// single-pass engines).
	Iters int
	// Cost is the engine's own objective at the returned partition:
	// total mismatch cost for k-modes, Σ|C|·H(C) expected entropy for
	// COOLCAT, total histogram distance for k-histograms; 0 when the
	// engine defines no scalar objective.
	Cost float64
}

// Result is a flat clustering in the canonical zoo form (see Check).
type Result struct {
	// Assign maps each input index to its cluster in Clusters.
	Assign []int
	// Clusters lists member input indices ascending; clusters are
	// ordered by smallest member.
	Clusters [][]int
	Stats    Stats
}

// K returns the number of clusters found.
func (r *Result) K() int { return len(r.Clusters) }

// Engine is one categorical clustering algorithm. Implementations must
// satisfy the contract in the package comment; the conformance suite
// runs every registered engine against it.
type Engine interface {
	// Name identifies the engine in reports and the registry.
	Name() string
	// Claims declares the engine's invariances.
	Claims() Claims
	// Fit clusters the dataset. The returned partition is total and
	// canonical (Check passes), and identical for identical inputs.
	Fit(d *dataset.Dataset, cfg Config) (*Result, error)
}

// registry holds the default-configured engine instances, sorted by
// name. Register panics on duplicates: engine names key bench rows and
// conformance subtests.
var registry []Engine

// Register adds an engine to the global registry.
func Register(e Engine) {
	for _, have := range registry {
		if have.Name() == e.Name() {
			panic(fmt.Sprintf("zoo: duplicate engine %q", e.Name()))
		}
	}
	registry = append(registry, e)
	sort.Slice(registry, func(i, j int) bool { return registry[i].Name() < registry[j].Name() })
}

// Engines returns the registered engines sorted by name.
func Engines() []Engine {
	out := make([]Engine, len(registry))
	copy(out, registry)
	return out
}

// ByName looks an engine up in the registry.
func ByName(name string) (Engine, bool) {
	for _, e := range registry {
		if e.Name() == name {
			return e, true
		}
	}
	return nil, false
}

func init() {
	Register(&COOLCATEngine{})
	Register(&SqueezerEngine{})
	Register(&KHistogramsEngine{})
	Register(&KModesEngine{})
	Register(&HierarchicalEngine{})
	Register(&STIRREngine{})
	Register(&ROCKEngine{})
}

// Check validates the canonical partition form for n input points:
// every point in exactly one cluster, dense cluster ids, ascending
// members, clusters ordered by first member, Assign consistent with
// Clusters. It is the validity oracle of the conformance suite.
func Check(r *Result, n int) error {
	if r == nil {
		return fmt.Errorf("zoo: nil result")
	}
	if len(r.Assign) != n {
		return fmt.Errorf("zoo: %d assignments for %d points", len(r.Assign), n)
	}
	seen := make([]bool, n)
	prevFirst := -1
	for ci, members := range r.Clusters {
		if len(members) == 0 {
			return fmt.Errorf("zoo: cluster %d is empty", ci)
		}
		if members[0] <= prevFirst {
			return fmt.Errorf("zoo: cluster %d out of order (first member %d after %d)", ci, members[0], prevFirst)
		}
		prevFirst = members[0]
		last := -1
		for _, p := range members {
			if p < 0 || p >= n {
				return fmt.Errorf("zoo: cluster %d has out-of-range member %d", ci, p)
			}
			if p <= last {
				return fmt.Errorf("zoo: cluster %d members not strictly ascending at %d", ci, p)
			}
			last = p
			if seen[p] {
				return fmt.Errorf("zoo: point %d in more than one cluster", p)
			}
			seen[p] = true
			if r.Assign[p] != ci {
				return fmt.Errorf("zoo: point %d assigned %d but listed in cluster %d", p, r.Assign[p], ci)
			}
		}
	}
	for p, ok := range seen {
		if !ok {
			return fmt.Errorf("zoo: point %d in no cluster (assign %d)", p, r.Assign[p])
		}
	}
	return nil
}

// canonicalize builds the canonical Result from a raw per-point cluster
// id slice (ids need not be dense; negative ids become singleton
// clusters). It renumbers clusters by smallest member and sorts member
// lists ascending.
func canonicalize(raw []int) *Result {
	n := len(raw)
	res := &Result{Assign: make([]int, n)}
	if n == 0 {
		return res
	}
	groups := map[int][]int{}
	next := -1 // synthetic ids for negative (outlier) entries
	for p, id := range raw {
		if id < 0 {
			groups[next] = []int{p}
			next--
			continue
		}
		groups[id] = append(groups[id], p)
	}
	clusters := make([][]int, 0, len(groups))
	for _, members := range groups {
		sort.Ints(members)
		clusters = append(clusters, members)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
	for ci, members := range clusters {
		for _, p := range members {
			res.Assign[p] = ci
		}
	}
	res.Clusters = clusters
	return res
}

// clampK bounds a target cluster count to the usable range for n
// points, rejecting K < 1.
func clampK(k, n int) (int, error) {
	if k < 1 {
		return 0, fmt.Errorf("zoo: k = %d, need at least 1", k)
	}
	if k > n && n > 0 {
		k = n
	}
	return k, nil
}

// recordsOf decodes the dataset back to categorical records of uniform
// width len(d.Attrs); datasets without attribute metadata yield
// zero-width records. The record view the record-based engines share.
func recordsOf(d *dataset.Dataset) ([]dataset.Record, int) {
	records := make([]dataset.Record, d.Len())
	for i, t := range d.Trans {
		records[i] = dataset.DecodeRecord(d, t)
	}
	return records, len(d.Attrs)
}
