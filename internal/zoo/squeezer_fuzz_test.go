package zoo

import (
	"strings"
	"testing"

	"github.com/rockclust/rock/internal/dataset"
)

// FuzzSqueezerIngest throws arbitrary byte streams at the incremental
// Squeezer API. The first byte sets the admission threshold (scaled into
// [0,1]); the rest is parsed as newline-separated records of
// comma-separated values, so the fuzzer controls record count, widths
// (ragged on purpose — Ingest must pad and truncate), values, and the
// threshold jointly. The contract under fuzz: no panic, every returned
// cluster id is in range and stable in Len/K accounting, and the
// snapshot after every ingest is a canonical total partition.
func FuzzSqueezerIngest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte("\x00a,b\na,b\n"))
	f.Add([]byte("\xffx,y\np,q\nx,q\n"))
	f.Add([]byte("\x80m,m,m\nm\nm,m,m,m,m\n"))
	f.Add([]byte("\x40,,\n,\n\n,,,,\n"))
	f.Add([]byte("\x7fsame\nsame\nsame\nsame\n"))
	f.Add([]byte("\xc0a\nb\nc\nd\ne\nf\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		threshold := 0.0
		if len(data) > 0 {
			threshold = float64(data[0]) / 255
			data = data[1:]
		}
		var records []dataset.Record
		width := 0
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			rec := dataset.Record(strings.Split(line, ","))
			if len(rec) > width {
				width = len(rec)
			}
			records = append(records, rec)
			if len(records) == 256 {
				break // bound the quadratic-in-K scan per input
			}
		}

		s := NewSqueezer(width, threshold)
		for i, rec := range records {
			c := s.Ingest(rec)
			if c < 0 || c >= s.K() {
				t.Fatalf("record %d: cluster id %d out of range [0,%d)", i, c, s.K())
			}
			if s.Len() != i+1 {
				t.Fatalf("record %d: Len = %d", i, s.Len())
			}
			if err := Check(s.Result(), s.Len()); err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
		}
		if s.K() > s.Len() {
			t.Fatalf("more clusters (%d) than records (%d)", s.K(), s.Len())
		}

		// Replaying the identical stream must reproduce the partition.
		s2 := NewSqueezer(width, threshold)
		for _, rec := range records {
			s2.Ingest(rec)
		}
		if !samePartition(s.Result(), s2.Result()) {
			t.Fatal("replayed stream produced a different partition")
		}
	})
}
