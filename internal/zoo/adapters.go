package zoo

import (
	"github.com/rockclust/rock/internal/baseline"
	"github.com/rockclust/rock/internal/core"
	"github.com/rockclust/rock/internal/dataset"
	"github.com/rockclust/rock/internal/stirr"
)

// KModesEngine adapts the baseline.KModes implementation (Huang 1998)
// to the Engine interface.
type KModesEngine struct {
	// Restarts keeps the lowest-cost of this many seeded runs; 0 runs
	// once. Passed through to baseline.KModesConfig.
	Restarts int
}

// Name implements Engine.
func (*KModesEngine) Name() string { return "k-modes" }

// Claims implements Engine: random mode initialization is
// seed-dependent; the implementation is single-threaded.
func (*KModesEngine) Claims() Claims {
	return Claims{SeedInvariant: false, WorkerInvariant: true, UsesK: true}
}

// Fit implements Engine.
func (e *KModesEngine) Fit(d *dataset.Dataset, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if _, err := clampK(cfg.K, d.Len()); err != nil {
		return nil, err
	}
	records, _ := recordsOf(d)
	km, err := baseline.KModes(records, baseline.KModesConfig{
		K: cfg.K, MaxIter: cfg.MaxIter, Seed: cfg.Seed, Restarts: e.Restarts,
	})
	if err != nil {
		return nil, err
	}
	res := canonicalize(km.Assign)
	res.Stats = Stats{Iters: km.Iters, Cost: float64(km.Cost)}
	return res, nil
}

// HierarchicalEngine adapts the baseline centroid-linkage agglomerative
// clusterer (the paper's "traditional hierarchical algorithm") to the
// Engine interface.
type HierarchicalEngine struct {
	// Linkage selects the cluster-distance rule; the zero value is
	// baseline.Centroid, the paper's comparator.
	Linkage baseline.Linkage
}

// Name implements Engine.
func (*HierarchicalEngine) Name() string { return "hierarchical" }

// Claims implements Engine: the agglomeration is exhaustive and
// tie-broken by index — no randomness, no workers.
func (*HierarchicalEngine) Claims() Claims {
	return Claims{SeedInvariant: true, WorkerInvariant: true, UsesK: true}
}

// Fit implements Engine.
func (e *HierarchicalEngine) Fit(d *dataset.Dataset, cfg Config) (*Result, error) {
	if _, err := clampK(cfg.K, d.Len()); err != nil {
		return nil, err
	}
	h, err := baseline.Hierarchical(d.Trans, baseline.HierarchicalConfig{K: cfg.K, Linkage: e.Linkage})
	if err != nil {
		return nil, err
	}
	res := canonicalize(h.Assign)
	res.Stats = Stats{Iters: 1}
	return res, nil
}

// STIRREngine adapts the revised (convergence-guaranteed) STIRR
// dynamical system to the Engine interface: the non-principal basin's
// sign read-out splits the records in two, so Config.K is ignored — the
// engine finds at most two clusters, as in the original read-out.
type STIRREngine struct {
	// Classic runs the original non-linear STIRR iteration instead of
	// the revised convergence-guaranteed linear system (the default,
	// and the ICDE 2000 paper's point).
	Classic bool
}

// Name implements Engine.
func (*STIRREngine) Name() string { return "stirr" }

// Claims implements Engine: basin initialization draws from the seeded
// RNG, so the converged non-principal basin (and with it the sign
// read-out) is seed-dependent; single-threaded.
func (*STIRREngine) Claims() Claims {
	return Claims{SeedInvariant: false, WorkerInvariant: true, UsesK: false}
}

// Fit implements Engine.
func (e *STIRREngine) Fit(d *dataset.Dataset, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := d.Len()
	if _, err := clampK(cfg.K, n); err != nil {
		return nil, err
	}
	if n == 0 {
		return &Result{Assign: []int{}}, nil
	}
	records, width := recordsOf(d)
	if width == 0 {
		// No attributes: every record is identical — one cluster, the
		// same degenerate answer the other record engines give. stirr.Run
		// rejects nattrs <= 0 rather than divide by an empty node set.
		return canonicalize(make([]int, n)), nil
	}
	sr, err := stirr.Run(records, width, stirr.Config{
		Revised: !e.Classic, Iters: cfg.MaxIter, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	res := canonicalize(stirr.ClusterRecords(sr, records, 1))
	res.Stats = Stats{Iters: sr.Iters}
	return res, nil
}

// ROCKEngine adapts the repo's own pipeline to the Engine interface, so
// the conformance suite and the shootout run ROCK under exactly the
// same contract as its competitors.
type ROCKEngine struct {
	// Theta is the neighbor threshold; 0 selects 0.5.
	Theta float64
	// MinNeighbors and WeedAt pass through to core.Config; both default
	// off so the zoo partition stays total. Points ROCK still leaves
	// unclustered (e.g. unlabeled out-of-sample points under sampling)
	// are parked in singleton clusters to keep the contract.
	MinNeighbors int
	WeedAt       float64
}

// Name implements Engine.
func (*ROCKEngine) Name() string { return "rock" }

// Claims implements Engine: worker invariance is the core package's
// oracle-proven guarantee (batched merge rounds replay the serial merge
// sequence); sampling and labeling draw from the seeded RNG.
func (*ROCKEngine) Claims() Claims {
	return Claims{SeedInvariant: false, WorkerInvariant: true, UsesK: true}
}

// Fit implements Engine.
func (e *ROCKEngine) Fit(d *dataset.Dataset, cfg Config) (*Result, error) {
	if _, err := clampK(cfg.K, d.Len()); err != nil {
		return nil, err
	}
	theta := e.Theta
	if theta == 0 {
		theta = 0.5
	}
	cr, err := core.Cluster(d.Trans, core.Config{
		Theta: theta, K: cfg.K, Seed: cfg.Seed, Workers: cfg.Workers,
		SampleSize: cfg.SampleSize, MinNeighbors: e.MinNeighbors, WeedAt: e.WeedAt,
	})
	if err != nil {
		return nil, err
	}
	// canonicalize turns ROCK's -1 outliers into singleton clusters.
	res := canonicalize(cr.Assign)
	res.Stats = Stats{Iters: cr.Stats.Merges}
	return res, nil
}
