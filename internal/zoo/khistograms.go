package zoo

import (
	"math/rand"
	"sort"

	"github.com/rockclust/rock/internal/dataset"
)

// KHistogramsEngine implements k-histograms (He, Xu, Deng; the
// histogram-center refinement of Huang's k-modes): cluster centers are
// per-attribute value histograms rather than single modes, and the
// distance from a record to a center is Σ_a (1 − f_a(r[a])), where f_a
// is the value's relative frequency in the cluster. Keeping the whole
// value distribution instead of collapsing it to the mode removes
// k-modes' mode-tie instability and uses strictly more information per
// iteration.
//
// The iteration is batch (Lloyd-style): assign every record to the
// nearest histogram (ties toward the lower cluster index), rebuild the
// histograms, repeat until assignments fix or Config.MaxIter. Centers
// initialize from Config.K distinct records drawn in seeded random
// order; duplicated records never seed two clusters, so degenerate
// inputs start with fewer centers instead of empty ones. Empty clusters
// keep their previous histogram, mirroring the k-modes baseline.
type KHistogramsEngine struct{}

// Name implements Engine.
func (*KHistogramsEngine) Name() string { return "k-histograms" }

// Claims implements Engine: seeded initialization, single-threaded.
func (*KHistogramsEngine) Claims() Claims {
	return Claims{SeedInvariant: false, WorkerInvariant: true, UsesK: true}
}

// histCenter is one cluster's per-attribute value histogram.
type histCenter struct {
	counts []map[string]int
	size   int
}

// distance is Σ_a (1 − count_a(r[a])/size): 0 for a record every member
// matches everywhere, width for a record the cluster has never seen.
func (h *histCenter) distance(rec dataset.Record, width int) float64 {
	if h.size == 0 {
		return float64(width) + 1 // empty centers attract nothing
	}
	d := 0.0
	for a := 0; a < width; a++ {
		d += 1 - float64(h.counts[a][recVal(rec, a)])/float64(h.size)
	}
	return d
}

func newHistCenter(width int) *histCenter {
	h := &histCenter{counts: make([]map[string]int, width)}
	for a := range h.counts {
		h.counts[a] = map[string]int{}
	}
	return h
}

func (h *histCenter) add(rec dataset.Record, width int) {
	for a := 0; a < width; a++ {
		h.counts[a][recVal(rec, a)]++
	}
	h.size++
}

// Fit implements Engine.
func (*KHistogramsEngine) Fit(d *dataset.Dataset, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	records, width := recordsOf(d)
	n := len(records)
	k, err := clampK(cfg.K, n)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return &Result{Assign: []int{}}, nil
	}

	// Seed centers with k distinct records in seeded random order.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var picks []int
	seen := map[string]bool{}
	for _, p := range rng.Perm(n) {
		key := recKey(records[p])
		if !seen[key] {
			seen[key] = true
			picks = append(picks, p)
			if len(picks) == k {
				break
			}
		}
	}
	sort.Ints(picks)
	k = len(picks)
	centers := make([]*histCenter, k)
	for c, p := range picks {
		centers[c] = newHistCenter(width)
		centers[c].add(records[p], width)
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	iters := 0
	for ; iters < cfg.MaxIter; iters++ {
		changed := false
		for p, rec := range records {
			best, bestD := 0, centers[0].distance(rec, width)
			for c := 1; c < k; c++ {
				if dd := centers[c].distance(rec, width); dd < bestD {
					best, bestD = c, dd
				}
			}
			if assign[p] != best {
				assign[p] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Rebuild histograms; empty clusters keep their previous one.
		next := make([]*histCenter, k)
		for c := range next {
			next[c] = newHistCenter(width)
		}
		for p, rec := range records {
			next[assign[p]].add(rec, width)
		}
		for c := range next {
			if next[c].size == 0 {
				next[c] = centers[c]
			}
		}
		centers = next
	}

	cost := 0.0
	for p, rec := range records {
		cost += centers[assign[p]].distance(rec, width)
	}
	res := canonicalize(assign)
	res.Stats = Stats{Iters: iters, Cost: cost}
	return res, nil
}

// recKey builds a collision-free map key for a record (values cannot
// contain the \x00 separator, which never survives the tokenizers).
func recKey(rec dataset.Record) string {
	key := ""
	for _, v := range rec {
		key += v + "\x00"
	}
	return key
}
