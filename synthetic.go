package rock

import "github.com/rockclust/rock/internal/synth"

// Synthetic-data generator configurations, re-exported so downstream
// users can regenerate the evaluation datasets (all generators are
// deterministic given their Seed).
type (
	// BasketConfig parameterizes the market-basket generator used by the
	// scalability experiments.
	BasketConfig = synth.BasketConfig
	// LabeledConfig parameterizes the generic labeled categorical
	// generator.
	LabeledConfig = synth.LabeledConfig
	// VotesConfig parameterizes the Congressional-votes stand-in.
	VotesConfig = synth.VotesConfig
	// MushroomConfig parameterizes the UCI-Mushroom stand-in.
	MushroomConfig = synth.MushroomConfig
	// FundsConfig parameterizes the mutual-fund NAV simulator.
	FundsConfig = synth.FundsConfig
)

// GenerateBasket produces a labeled market-basket dataset from cluster
// templates (DESIGN.md E6 workload).
func GenerateBasket(cfg BasketConfig) *Dataset { return synth.Basket(cfg) }

// GenerateLabeled produces generic labeled categorical records.
func GenerateLabeled(cfg LabeledConfig) *Dataset { return synth.Labeled(cfg) }

// GenerateVotes produces the 435-record stand-in for the UCI
// Congressional Voting Records dataset (DESIGN.md E1/E2).
func GenerateVotes(cfg VotesConfig) *Dataset { return synth.Votes(cfg) }

// GenerateMushroom produces the 8124-record stand-in for the UCI Mushroom
// dataset (DESIGN.md E3/E4).
func GenerateMushroom(cfg MushroomConfig) *Dataset { return synth.Mushroom(cfg) }

// GenerateFunds produces the 795-fund up-day transactions of the
// mutual-fund case study (DESIGN.md E5).
func GenerateFunds(cfg FundsConfig) *Dataset { return synth.Funds(cfg) }

// FundSectorCount reports the number of sectors in the simulated fund
// universe.
func FundSectorCount() int { return synth.FundSectorCount() }

// MushroomSpeciesCount reports the number of ground-truth species in the
// mushroom stand-in.
func MushroomSpeciesCount() int { return synth.MushroomSpeciesCount() }
