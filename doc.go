// Package rock implements ROCK (RObust Clustering using linKs), the
// classic agglomerative clustering algorithm for categorical and
// market-basket data by Guha, Rastogi and Shim, together with the
// substrates a practitioner needs around it: transaction and categorical
// record data models with CSV/basket IO, similarity measures and
// θ-neighbor computation, link tables, Chernoff-bound sampling and
// out-of-sample labeling, outlier handling, the QROCK
// connected-components variant, evaluation metrics (clustering accuracy,
// ARI, NMI), reference baselines (centroid/average/single/complete
// hierarchical clustering and k-modes), the STIRR dynamical system with
// its convergence-guaranteed revision, and deterministic synthetic data
// generators mirroring the paper's evaluation datasets.
//
// # Quick start
//
//	d, err := rock.ReadBasket(file, rock.BasketOptions{})
//	if err != nil { ... }
//	res, err := rock.Cluster(d.Trans, rock.Config{Theta: 0.5, K: 3})
//	if err != nil { ... }
//	for ci, members := range res.Clusters { ... }
//
// The algorithm: two transactions are neighbors when their Jaccard
// similarity reaches the threshold θ; link(p,q) counts their common
// neighbors; clusters are merged greedily by the goodness measure
// g(Ci,Cj) = link[Ci,Cj] / ((n_i+n_j)^(1+2f(θ)) − n_i^(1+2f(θ)) −
// n_j^(1+2f(θ))) until K clusters remain or no cross links exist. For
// datasets too large to cluster wholesale, set Config.SampleSize: a
// uniform sample is clustered and the remaining points are assigned in a
// labeling pass, exactly as the paper prescribes.
//
// # Performance
//
// All four hot phases parallelize under Config.Workers (0 means
// GOMAXPROCS): θ-neighbor computation shards rows across goroutines;
// link computation — the paper's O(Σ mᵢ²) bottleneck — runs as sharded
// row-wise pair counting that assembles a compressed-sparse-row (CSR)
// link table directly, with no intermediate hash maps; the merge phase
// runs parallel batched merge rounds (below); and the labeling phase
// counts each candidate's θ-neighbors through an inverted index over
// the labeled points, sharding candidates across the workers. CSR row
// offsets are int64, so the table indexes exactly past 2^31 total link
// entries. Small inputs automatically take the serial paths
// (Config.LinkSerialBelow, Config.MergeSerialBelow and
// Config.LabelSerialBelow tune the crossovers); results are
// byte-identical for every worker count and every path.
// `cmd/rockbench -links` records the serial-vs-parallel link sweep in
// BENCH_links.json.
//
// The agglomeration phase — the paper's O(n² log n) merge loop — runs on
// an arena engine: clusters live in flat slots (a merge reuses one
// parent's slot), members chain through an intrusive linked list,
// per-cluster links are sorted rows merged by a two-pointer pass into
// pooled buffers, and the per-cluster heaps collapse into one cached
// best-partner per cluster under a single lazy indexed heap that
// discards superseded entries on pop. The hot loop performs no hashing
// and almost no allocation (~90× fewer allocations than the map-based
// reference engine at n=10k, ~3.5× faster end-to-end).
//
// With Workers > 1 the arena's merges execute in batched rounds: each
// round selects a conflict-free prefix of the heap's pop order — merges
// whose closed neighborhoods are disjoint — computes and commits them
// concurrently, and repairs the heap once. A validation step truncates
// any batch the serial engine would have ordered differently (goodness
// is not monotone under merging), so every round is provably a prefix of
// the serial merge sequence. The invariant across all engines: output —
// clusters, outliers, merge counts, and the full merge trace — is
// byte-identical to the reference engine kept in
// internal/core/engine_reference.go, enforced by a randomized oracle
// test across configurations and worker counts under the race detector.
// `cmd/rockbench -merge` records the map-vs-arena-vs-batched sweep in
// BENCH_merge.json.
//
// The labeling phase (Config.SampleSize set: assign every out-of-sample
// point to the cluster maximizing Nᵢ/(|Lᵢ|+1)^f) follows the same
// discipline. An inverted index over the labeled points yields each
// candidate's intersection sizes in one pass over its items, and the
// θ-test is decided exactly from (|t∩q|, |t|, |q|) — every built-in
// measure is a pure function of those three numbers, computed by the
// very same counted form the pairwise measure delegates to, so the
// index path is bit-identical to pairwise evaluation; custom Measure
// funcs and θ ≤ 0 fall back to the pairwise loop automatically.
// Candidates are independent, so they shard across the workers with
// byte-identical output by construction. The serial pairwise loop is
// kept as the oracle fixture (internal/core/label.go), and
// Result.Stats carries the phase's ledger (LabelCandidates == Labeled
// + Unlabeled). `cmd/rockbench -label` records the pairwise-vs-indexed
// sweep in BENCH_label.json.
//
// See README.md for the architecture tour and benchmark tables, and
// cmd/rockbench for the reproduction of every table and figure in the
// paper's evaluation.
package rock
