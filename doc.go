// Package rock implements ROCK (RObust Clustering using linKs), the
// classic agglomerative clustering algorithm for categorical and
// market-basket data by Guha, Rastogi and Shim, together with the
// substrates a practitioner needs around it: transaction and categorical
// record data models with CSV/basket IO, similarity measures and
// θ-neighbor computation, link tables, Chernoff-bound sampling and
// out-of-sample labeling, frozen servable models with a persistent
// binary format, outlier handling, the QROCK connected-components
// variant, evaluation metrics (clustering accuracy, ARI, NMI), reference
// baselines (centroid/average/single/complete hierarchical clustering
// and k-modes), the STIRR dynamical system with its
// convergence-guaranteed revision, and deterministic synthetic data
// generators mirroring the paper's evaluation datasets.
//
// # Quick start
//
//	d, err := rock.ReadBasket(file, rock.BasketOptions{})
//	if err != nil { ... }
//	res, err := rock.Cluster(d.Trans, rock.Config{Theta: 0.5, K: 3})
//	if err != nil { ... }
//	for ci, members := range res.Clusters { ... }
//
// The algorithm: two transactions are neighbors when their Jaccard
// similarity reaches the threshold θ; link(p,q) counts their common
// neighbors; clusters are merged greedily by the goodness measure
// g(Ci,Cj) = link[Ci,Cj] / ((n_i+n_j)^(1+2f(θ)) − n_i^(1+2f(θ)) −
// n_j^(1+2f(θ))) until K clusters remain or no cross links exist. For
// datasets too large to cluster wholesale, set Config.SampleSize: a
// uniform sample is clustered and the remaining points are assigned in a
// labeling pass, exactly as the paper prescribes.
//
// # Performance
//
// Every heavy phase — θ-neighbors, link computation, merging, labeling —
// parallelizes under Config.Workers (0 means GOMAXPROCS) and produces
// output byte-identical to its retained serial reference at every worker
// count, enforced by randomized oracle tests under the race detector.
// Small inputs take the serial paths automatically; Config's
// LinkSerialBelow, MergeSerialBelow and LabelSerialBelow tune the
// crossovers, trading only constant factors, never results.
// ARCHITECTURE.md is the authoritative description of the machinery (the
// CSR link table, the arena and batched merge engines, the labeling
// index, the oracle discipline), and cmd/rockbench regenerates the
// BENCH_*.json performance records alongside every table and figure of
// the paper's evaluation.
//
// # Serving
//
// A clustering run can be frozen into a Model: an immutable,
// goroutine-safe snapshot of the labeling phase that persists to a
// versioned, checksummed binary file (Model.Save / LoadModel) and serves
// Assign / AssignBatch / AssignDataset queries in any later process,
// bit-identically to the pipeline's labeling — "cluster once, serve
// forever". See Freeze, FreezeDataset, and the Model examples; the file
// format is documented in ARCHITECTURE.md.
//
// See README.md for the tour and benchmark tables.
package rock
