// Package rock implements ROCK (RObust Clustering using linKs), the
// classic agglomerative clustering algorithm for categorical and
// market-basket data by Guha, Rastogi and Shim, together with the
// substrates a practitioner needs around it: transaction and categorical
// record data models with CSV/basket IO, similarity measures and
// θ-neighbor computation, link tables, Chernoff-bound sampling and
// out-of-sample labeling, outlier handling, the QROCK
// connected-components variant, evaluation metrics (clustering accuracy,
// ARI, NMI), reference baselines (centroid/average/single/complete
// hierarchical clustering and k-modes), the STIRR dynamical system with
// its convergence-guaranteed revision, and deterministic synthetic data
// generators mirroring the paper's evaluation datasets.
//
// # Quick start
//
//	d, err := rock.ReadBasket(file, rock.BasketOptions{})
//	if err != nil { ... }
//	res, err := rock.Cluster(d.Trans, rock.Config{Theta: 0.5, K: 3})
//	if err != nil { ... }
//	for ci, members := range res.Clusters { ... }
//
// The algorithm: two transactions are neighbors when their Jaccard
// similarity reaches the threshold θ; link(p,q) counts their common
// neighbors; clusters are merged greedily by the goodness measure
// g(Ci,Cj) = link[Ci,Cj] / ((n_i+n_j)^(1+2f(θ)) − n_i^(1+2f(θ)) −
// n_j^(1+2f(θ))) until K clusters remain or no cross links exist. For
// datasets too large to cluster wholesale, set Config.SampleSize: a
// uniform sample is clustered and the remaining points are assigned in a
// labeling pass, exactly as the paper prescribes.
//
// # Performance
//
// The two hot phases both parallelize under Config.Workers (0 means
// GOMAXPROCS): θ-neighbor computation shards rows across goroutines, and
// link computation — the paper's O(Σ mᵢ²) bottleneck — runs as sharded
// row-wise pair counting that assembles a compressed-sparse-row (CSR)
// link table directly, with no intermediate hash maps. The agglomeration
// engine consumes that CSR form natively. Small inputs automatically take
// the serial reference path (Config.LinkSerialBelow tunes the crossover);
// results are byte-identical for every worker count and both link paths.
// `cmd/rockbench -links` records the serial-vs-parallel sweep in
// BENCH_links.json.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every table and figure in the paper's evaluation.
package rock
