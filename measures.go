package rock

import (
	"github.com/rockclust/rock/internal/metrics"
	"github.com/rockclust/rock/internal/similarity"
)

// Measure computes a similarity in [0,1] between two transactions.
type Measure = similarity.Measure

// Jaccard returns |a ∩ b| / |a ∪ b| — the paper's similarity for
// market-basket and categorical data.
func Jaccard(a, b Transaction) float64 { return similarity.Jaccard(a, b) }

// Dice returns 2|a ∩ b| / (|a| + |b|).
func Dice(a, b Transaction) float64 { return similarity.Dice(a, b) }

// Cosine returns |a ∩ b| / √(|a|·|b|).
func Cosine(a, b Transaction) float64 { return similarity.Cosine(a, b) }

// Overlap returns |a ∩ b| / min(|a|, |b|).
func Overlap(a, b Transaction) float64 { return similarity.Overlap(a, b) }

// AttributeMeasure returns the fraction of nattrs categorical attributes
// on which two encoded records agree.
func AttributeMeasure(nattrs int) Measure { return similarity.Attribute(nattrs) }

// Eval summarizes the agreement between a clustering and ground-truth
// labels: the literature's clustering accuracy r, error e and absolute
// error ace, plus ARI and NMI.
type Eval = metrics.Eval

// Evaluate computes all metrics for a cluster assignment (-1 marks
// outliers) against parallel ground-truth labels.
func Evaluate(assign []int, labels []string) Eval { return metrics.Evaluate(assign, labels) }

// ContingencyTable builds the cluster × class count matrix (outliers
// become singleton rows).
func ContingencyTable(assign []int, labels []string) (classes []string, counts [][]int) {
	return metrics.ContingencyTable(assign, labels)
}

// ClusterEntropy returns the weighted mean class entropy over clusters.
func ClusterEntropy(assign []int, labels []string) float64 {
	return metrics.ClusterEntropy(assign, labels)
}
